package repro

// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation (§7). Each benchmark reloads the store outside the
// timer and measures only the update operation, mirroring the paper's
// methodology (in-memory data, repeated runs). Run with:
//
//	go test -bench=. -benchmem
//
// cmd/xbench prints the same series with explicit statement counts.

import (
	"fmt"
	"testing"

	"repro/internal/bench"
	"repro/internal/datagen"
	"repro/internal/engine"
	"repro/internal/relational"
	"repro/internal/shred"
	"repro/internal/xmltree"
)

var deleteMethods = []engine.DeleteMethod{
	engine.ASRDelete, engine.PerStatementTrigger, engine.PerTupleTrigger,
}

var insertMethods = []engine.InsertMethod{
	engine.TupleInsert, engine.TableInsert, engine.ASRInsert,
}

// benchDelete opens the store once, snapshots it, and times one delete
// workload execution per iteration with an untimed state reset in between.
func benchDelete(b *testing.B, doc *xmltree.Document, m engine.DeleteMethod, workload func(*engine.Store) error) {
	b.Helper()
	s, err := engine.Open(doc, engine.Options{Delete: m})
	if err != nil {
		b.Fatal(err)
	}
	snap := s.Snapshot()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := workload(s); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		s.Restore(snap)
		b.StartTimer()
	}
}

func benchInsert(b *testing.B, doc *xmltree.Document, m engine.InsertMethod, workload func(*engine.Store) error) {
	b.Helper()
	s, err := engine.Open(doc, engine.Options{Insert: m})
	if err != nil {
		b.Fatal(err)
	}
	snap := s.Snapshot()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := workload(s); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		s.Restore(snap)
		b.StartTimer()
	}
}

func bulkDeleteAll(s *engine.Store) error {
	_, err := s.DeleteSubtrees("e1", "")
	return err
}

func randomDelete10(s *engine.Store) error {
	ids, err := subtreeIDs(s, 10)
	if err != nil {
		return err
	}
	for _, id := range ids {
		if _, err := s.DeleteSubtrees("e1", fmt.Sprintf("id = %d", id)); err != nil {
			return err
		}
	}
	return nil
}

func bulkInsertAll(s *engine.Store) error {
	_, err := s.CopySubtrees("e1", "", 1)
	return err
}

func randomInsert10(s *engine.Store) error {
	ids, err := subtreeIDs(s, 10)
	if err != nil {
		return err
	}
	for _, id := range ids {
		if _, err := s.CopySubtrees("e1", fmt.Sprintf("id = %d", id), 1); err != nil {
			return err
		}
	}
	return nil
}

// subtreeIDs picks n deterministic root-level subtree ids (a fixed stride
// through the table, standing in for the paper's random choice while keeping
// benchmark iterations comparable).
func subtreeIDs(s *engine.Store, n int) ([]int64, error) {
	rows, err := s.DB.Query(fmt.Sprintf("SELECT id FROM %s", s.M.Table("e1").Name))
	if err != nil {
		return nil, err
	}
	total := len(rows.Data)
	if n > total {
		n = total
	}
	out := make([]int64, 0, n)
	stride := total / n
	if stride == 0 {
		stride = 1
	}
	for i := 0; i < n; i++ {
		out = append(out, rows.Data[(i*stride)%total][0].MustInt())
	}
	return out, nil
}

// BenchmarkFig6DeleteBulkScaling — Figure 6: delete, bulk workload, fixed
// fanout=1, depth=8, scaling factor on the x-axis.
func BenchmarkFig6DeleteBulkScaling(b *testing.B) {
	for _, sf := range []int{100, 200, 400, 800} {
		doc := datagen.Fixed(datagen.FixedParams{ScalingFactor: sf, Depth: 8, Fanout: 1, Seed: 1})
		for _, m := range deleteMethods {
			b.Run(fmt.Sprintf("method=%s/sf=%d", m, sf), func(b *testing.B) {
				benchDelete(b, doc, m, bulkDeleteAll)
			})
		}
	}
}

// BenchmarkFig7DeleteRandomScaling — Figure 7: delete, random workload (10
// subtrees), fixed fanout=1, depth=8.
func BenchmarkFig7DeleteRandomScaling(b *testing.B) {
	for _, sf := range []int{100, 200, 400, 800} {
		doc := datagen.Fixed(datagen.FixedParams{ScalingFactor: sf, Depth: 8, Fanout: 1, Seed: 1})
		for _, m := range deleteMethods {
			b.Run(fmt.Sprintf("method=%s/sf=%d", m, sf), func(b *testing.B) {
				benchDelete(b, doc, m, randomDelete10)
			})
		}
	}
}

// BenchmarkFig8DeleteBulkDepth — Figure 8: delete, bulk workload, fixed
// scaling factor=100, fanout=4, depth on the x-axis.
func BenchmarkFig8DeleteBulkDepth(b *testing.B) {
	for _, d := range []int{2, 3, 4, 5} {
		doc := datagen.Fixed(datagen.FixedParams{ScalingFactor: 100, Depth: d, Fanout: 4, Seed: 1})
		for _, m := range deleteMethods {
			b.Run(fmt.Sprintf("method=%s/depth=%d", m, d), func(b *testing.B) {
				benchDelete(b, doc, m, bulkDeleteAll)
			})
		}
	}
}

// BenchmarkFig9DeleteRandomDepth — Figure 9: delete, random workload, fixed
// scaling factor=100, fanout=4.
func BenchmarkFig9DeleteRandomDepth(b *testing.B) {
	for _, d := range []int{2, 3, 4, 5} {
		doc := datagen.Fixed(datagen.FixedParams{ScalingFactor: 100, Depth: d, Fanout: 4, Seed: 1})
		for _, m := range deleteMethods {
			b.Run(fmt.Sprintf("method=%s/depth=%d", m, d), func(b *testing.B) {
				benchDelete(b, doc, m, randomDelete10)
			})
		}
	}
}

// BenchmarkFig10InsertBulkDepth — Figure 10: insert (replicate all root
// subtrees), fixed scaling factor=100, fanout=4.
func BenchmarkFig10InsertBulkDepth(b *testing.B) {
	for _, d := range []int{2, 3, 4, 5} {
		doc := datagen.Fixed(datagen.FixedParams{ScalingFactor: 100, Depth: d, Fanout: 4, Seed: 1})
		for _, m := range insertMethods {
			b.Run(fmt.Sprintf("method=%s/depth=%d", m, d), func(b *testing.B) {
				benchInsert(b, doc, m, bulkInsertAll)
			})
		}
	}
}

// BenchmarkFig11InsertRandomDepth — Figure 11: insert (replicate 10
// subtrees), fixed scaling factor=100, fanout=4.
func BenchmarkFig11InsertRandomDepth(b *testing.B) {
	for _, d := range []int{2, 3, 4, 5} {
		doc := datagen.Fixed(datagen.FixedParams{ScalingFactor: 100, Depth: d, Fanout: 4, Seed: 1})
		for _, m := range insertMethods {
			b.Run(fmt.Sprintf("method=%s/depth=%d", m, d), func(b *testing.B) {
				benchInsert(b, doc, m, randomInsert10)
			})
		}
	}
}

// BenchmarkTable2DBLPDelete — Table 2, delete row: remove the year-2000
// publications from the DBLP-like bibliography under all four methods.
func BenchmarkTable2DBLPDelete(b *testing.B) {
	doc := datagen.DBLP(datagen.DBLPParams{Conferences: 40, PubsPerConf: 60, Seed: 11})
	for _, m := range []engine.DeleteMethod{engine.PerTupleTrigger, engine.PerStatementTrigger, engine.CascadingDelete, engine.ASRDelete} {
		b.Run(fmt.Sprintf("method=%s", m), func(b *testing.B) {
			benchDelete(b, doc, m, func(s *engine.Store) error {
				_, err := s.DeleteSubtrees("publication", "a_year = '2000'")
				return err
			})
		})
	}
}

// BenchmarkTable2DBLPInsert — Table 2, insert row: copy the year-2000
// publications under the first conference.
func BenchmarkTable2DBLPInsert(b *testing.B) {
	doc := datagen.DBLP(datagen.DBLPParams{Conferences: 40, PubsPerConf: 60, Seed: 11})
	for _, m := range []engine.InsertMethod{engine.ASRInsert, engine.TableInsert, engine.TupleInsert} {
		b.Run(fmt.Sprintf("method=%s", m), func(b *testing.B) {
			benchInsert(b, doc, m, func(s *engine.Store) error {
				rows, err := s.DB.Query(fmt.Sprintf("SELECT MIN(id) FROM %s", s.M.Table("conference").Name))
				if err != nil {
					return err
				}
				_, err = s.CopySubtrees("publication", "a_year = '2000'", rows.Data[0][0].MustInt())
				return err
			})
		})
	}
}

// BenchmarkASRPathExpression — §7.2: conventional multiway join versus ASR
// two-join path evaluation, fanout 1 and 4, path lengths 3 and 4.
func BenchmarkASRPathExpression(b *testing.B) {
	for _, fanout := range []int{1, 4} {
		doc := datagen.Fixed(datagen.FixedParams{ScalingFactor: 100, Depth: 5, Fanout: fanout, Seed: 9})
		m, err := shred.BuildMapping(doc.DTD, doc.Root.Name, shred.Options{})
		if err != nil {
			b.Fatal(err)
		}
		db := relational.NewDB()
		if _, err := shred.Load(db, m, doc); err != nil {
			b.Fatal(err)
		}
		a, err := bench.BuildASR(db, m)
		if err != nil {
			b.Fatal(err)
		}
		for _, plen := range []int{3, 4} {
			conv, asrSQL, err := bench.PathQueries(db, m, a, plen)
			if err != nil {
				b.Fatal(err)
			}
			b.Run(fmt.Sprintf("strategy=conventional/fanout=%d/pathlen=%d", fanout, plen), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := db.Query(conv); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.Run(fmt.Sprintf("strategy=asr/fanout=%d/pathlen=%d", fanout, plen), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := db.Query(asrSQL); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkCascadeVsPerStatement — §7.3: cascading delete tracks the
// per-statement trigger (same deletes, issued from the application).
func BenchmarkCascadeVsPerStatement(b *testing.B) {
	doc := datagen.Fixed(datagen.FixedParams{ScalingFactor: 200, Depth: 8, Fanout: 1, Seed: 1})
	for _, m := range []engine.DeleteMethod{engine.PerStatementTrigger, engine.CascadingDelete} {
		b.Run(fmt.Sprintf("method=%s", m), func(b *testing.B) {
			benchDelete(b, doc, m, bulkDeleteAll)
		})
	}
}

// BenchmarkRandomizedDocDelete — §7.1.2: delete methods on randomized
// synthetic documents.
func BenchmarkRandomizedDocDelete(b *testing.B) {
	doc := datagen.Randomized(datagen.RandomizedParams{ScalingFactor: 200, MaxDepth: 6, MaxFanout: 4, Seed: 3})
	for _, m := range deleteMethods {
		b.Run(fmt.Sprintf("method=%s", m), func(b *testing.B) {
			benchDelete(b, doc, m, randomDelete10)
		})
	}
}

// BenchmarkTable1DocGen — Table 1: document generation across the full
// parameter grid (the workloads the other benchmarks consume).
func BenchmarkTable1DocGen(b *testing.B) {
	grid := datagen.Table1Grid()
	for _, p := range grid[:6] { // a representative slice; the full grid is validated in datagen tests
		b.Run(fmt.Sprintf("sf=%d/d=%d/f=%d", p.ScalingFactor, p.Depth, p.Fanout), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				datagen.Fixed(p)
			}
		})
	}
}

package repro

// Ablation benchmarks for the design choices DESIGN.md calls out: the
// parentId hash index (what makes per-tuple triggers flat on random
// workloads), the order column (the §8 order-preserving extension's storage
// cost), and the outer union binding phase versus per-table queries.

import (
	"fmt"
	"testing"

	"repro/internal/datagen"
	"repro/internal/engine"
	"repro/internal/outerunion"
	"repro/internal/xmltree"
)

// BenchmarkAblationParentIndex measures a random per-tuple-trigger delete
// with and without the parentId index. Without it, every trigger firing
// scans the child relation — per-tuple deletes degrade to per-statement
// behavior, confirming the index is the mechanism behind Figure 7's flat
// curve.
func BenchmarkAblationParentIndex(b *testing.B) {
	doc := datagen.Fixed(datagen.FixedParams{ScalingFactor: 400, Depth: 8, Fanout: 1, Seed: 1})
	for _, indexed := range []bool{true, false} {
		b.Run(fmt.Sprintf("parentId-index=%v", indexed), func(b *testing.B) {
			s, err := engine.Open(doc, engine.Options{Delete: engine.PerTupleTrigger})
			if err != nil {
				b.Fatal(err)
			}
			if !indexed {
				for _, elem := range s.M.TableOrder {
					s.DB.Table(s.M.Table(elem).Name).DropIndex("parentId")
				}
			}
			snap := s.Snapshot()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.DeleteSubtrees("e1", "id = 2"); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				s.Restore(snap)
				b.StartTimer()
			}
		})
	}
}

// BenchmarkAblationOrderColumn measures the storage extension's cost: the
// same bulk delete with and without the pos column.
func BenchmarkAblationOrderColumn(b *testing.B) {
	doc := datagen.Fixed(datagen.FixedParams{ScalingFactor: 200, Depth: 4, Fanout: 2, Seed: 1})
	for _, ordered := range []bool{false, true} {
		b.Run(fmt.Sprintf("order-column=%v", ordered), func(b *testing.B) {
			s, err := engine.Open(doc, engine.Options{Delete: engine.PerTupleTrigger, OrderColumn: ordered})
			if err != nil {
				b.Fatal(err)
			}
			snap := s.Snapshot()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.DeleteSubtrees("e1", ""); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				s.Restore(snap)
				b.StartTimer()
			}
		})
	}
}

// BenchmarkAblationOuterUnion compares the Sorted Outer Union retrieval of a
// subtree against issuing one query per table level — the alternative §5.2
// rejects for requiring nested cursors or redundant wide joins.
func BenchmarkAblationOuterUnion(b *testing.B) {
	doc := datagen.Fixed(datagen.FixedParams{ScalingFactor: 100, Depth: 4, Fanout: 4, Seed: 1})
	s, err := engine.Open(doc, engine.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("strategy=outer-union", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			subs, err := outerunion.Query(s.DB, s.M, "e1", "T.id = 2")
			if err != nil {
				b.Fatal(err)
			}
			if len(subs) != 1 {
				b.Fatalf("subtrees = %d", len(subs))
			}
		}
	})
	b.Run("strategy=per-level-queries", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := perLevelSubtree(s, 2); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// perLevelSubtree retrieves a subtree with one query per level (the nested
// cursor simulation), materializing elements level by level.
func perLevelSubtree(s *engine.Store, rootID int64) (*xmltree.Element, error) {
	type pending struct {
		elem string
		id   int64
		node *xmltree.Element
	}
	rows, err := s.DB.Query(fmt.Sprintf("SELECT id FROM %s WHERE id = %d", s.M.Table("e1").Name, rootID))
	if err != nil {
		return nil, err
	}
	if len(rows.Data) != 1 {
		return nil, fmt.Errorf("root %d not found", rootID)
	}
	root := xmltree.NewElement("e1")
	frontier := []pending{{elem: "e1", id: rootID, node: root}}
	for len(frontier) > 0 {
		var next []pending
		for _, p := range frontier {
			for _, childElem := range s.M.Table(p.elem).ChildTables {
				ctm := s.M.Table(childElem)
				rows, err := s.DB.Query(fmt.Sprintf("SELECT id FROM %s WHERE parentId = %d", ctm.Name, p.id))
				if err != nil {
					return nil, err
				}
				for _, r := range rows.Data {
					ce := xmltree.NewElement(childElem)
					p.node.AppendChild(ce)
					next = append(next, pending{elem: childElem, id: r[0].MustInt(), node: ce})
				}
			}
		}
		frontier = next
	}
	return root, nil
}

package repro

// End-to-end tests for the relational layer's Volcano pipeline over shredded
// documents: hash join and index nested-loop join must agree with a
// reference nested-loop join computed outside SQL, on randomized datagen
// tables.

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"repro/internal/datagen"
	"repro/internal/outerunion"
	"repro/internal/relational"
	"repro/internal/shred"
)

// joinReference computes parent-child (P.id, C.id) pairs by brute-force
// nested loops over the raw table contents.
func joinReference(pt, ct *relational.Table) []string {
	pid := pt.Schema.ColumnIndex("id")
	cid := ct.Schema.ColumnIndex("id")
	cpid := ct.Schema.ColumnIndex("parentId")
	var out []string
	pt.Scan(func(_ int, prow []relational.Value) bool {
		ct.Scan(func(_ int, crow []relational.Value) bool {
			if !crow[cpid].IsNull() && prow[pid] == crow[cpid] {
				out = append(out, fmt.Sprintf("%v|%v", prow[pid], crow[cid]))
			}
			return true
		})
		return true
	})
	sort.Strings(out)
	return out
}

func joinViaSQL(t *testing.T, db *relational.DB, ptab, ctab string) []string {
	t.Helper()
	rows, err := db.Query(fmt.Sprintf(
		"SELECT P.id, C.id FROM %s P, %s C WHERE C.parentId = P.id", ptab, ctab))
	if err != nil {
		t.Fatal(err)
	}
	out := make([]string, 0, len(rows.Data))
	for _, r := range rows.Data {
		out = append(out, fmt.Sprintf("%v|%v", r[0], r[1]))
	}
	sort.Strings(out)
	return out
}

// TestJoinStrategyEquivalence loads randomized documents and checks that
// the parent-child join returns the identical multiset under index probes
// (as shredded), hash joins (indexes dropped), and a brute-force reference.
func TestJoinStrategyEquivalence(t *testing.T) {
	for _, seed := range []int64{3, 7, 19} {
		doc := datagen.Randomized(datagen.RandomizedParams{
			ScalingFactor: 15, MaxDepth: 4, MaxFanout: 3, Seed: seed,
		})
		m, err := shred.BuildMapping(doc.DTD, doc.Root.Name, shred.Options{})
		if err != nil {
			t.Fatal(err)
		}
		db := relational.NewDB()
		if _, err := shred.Load(db, m, doc); err != nil {
			t.Fatal(err)
		}
		for _, elem := range m.TableOrder {
			tm := m.Table(elem)
			for _, childElem := range tm.ChildTables {
				ctm := m.Table(childElem)
				pt, ct := db.Table(tm.Name), db.Table(ctm.Name)
				want := joinReference(pt, ct)

				db.ResetStats()
				indexed := joinViaSQL(t, db, tm.Name, ctm.Name)
				if st := db.Stats(); st.IndexProbes == 0 {
					t.Errorf("seed %d %s⋈%s: indexed join used no probes", seed, tm.Name, ctm.Name)
				}
				if strings.Join(indexed, ",") != strings.Join(want, ",") {
					t.Fatalf("seed %d %s⋈%s: indexed join diverges from reference (%d vs %d rows)",
						seed, tm.Name, ctm.Name, len(indexed), len(want))
				}

				pt.DropIndex("id")
				ct.DropIndex("parentId")
				db.ResetStats()
				hashed := joinViaSQL(t, db, tm.Name, ctm.Name)
				if st := db.Stats(); st.HashJoinBuilds == 0 {
					t.Errorf("seed %d %s⋈%s: unindexed join built no hash table", seed, tm.Name, ctm.Name)
				}
				if strings.Join(hashed, ",") != strings.Join(want, ",") {
					t.Fatalf("seed %d %s⋈%s: hash join diverges from reference (%d vs %d rows)",
						seed, tm.Name, ctm.Name, len(hashed), len(want))
				}
				if err := pt.CreateIndex("id"); err != nil {
					t.Fatal(err)
				}
				if err := ct.CreateIndex("parentId"); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
}

// TestEngineJoinsUseIndexProbes asserts the acceptance criterion that the
// engine's generated parent-ID joins run as index probes: a Sorted Outer
// Union reconstruction over a shredded document must probe, not scan, its
// child relations.
func TestEngineJoinsUseIndexProbes(t *testing.T) {
	doc := datagen.Fixed(datagen.FixedParams{ScalingFactor: 10, Depth: 4, Fanout: 2, Seed: 5})
	m, err := shred.BuildMapping(doc.DTD, doc.Root.Name, shred.Options{})
	if err != nil {
		t.Fatal(err)
	}
	db := relational.NewDB()
	if _, err := shred.Load(db, m, doc); err != nil {
		t.Fatal(err)
	}
	// The SOU plan for the whole document: every child branch joins
	// T.parentId = Q.(parent id col).
	db.ResetStats()
	rows, err := db.Query(souSQL(t, m))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Data) == 0 {
		t.Fatal("outer union returned nothing")
	}
	st := db.Stats()
	if st.IndexProbes == 0 {
		t.Errorf("SOU child joins should probe the parentId index, stats = %+v", st)
	}
}

func souSQL(t *testing.T, m *shred.Mapping) string {
	t.Helper()
	plan, err := outerunion.BuildPlan(m, "e1")
	if err != nil {
		t.Fatal(err)
	}
	return plan.SQL("")
}

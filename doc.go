// Package repro is a from-scratch Go reproduction of "Updating XML"
// (Tatarinov, Ives, Halevy, Weld — SIGMOD 2001): the XML update language
// (primitive operations and XQuery extensions), a direct-DOM update engine,
// an XML-to-relational storage layer with Shared Inlining, Sorted Outer
// Union and Access Support Relations, the paper's delete and insert
// translation strategies, and the full experimental evaluation.
//
// See README.md for a tour and DESIGN.md for the system inventory and the
// relational layer's three-layer query pipeline. The root package carries
// the benchmark harness (bench_test.go) regenerating every figure and table.
package repro

package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestNilReceiversAreNoOps(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var r *Registry
	c.Add(5)
	g.Set(5)
	g.Add(1)
	h.Observe(5)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatal("nil metric returned a value")
	}
	if s := h.Snapshot(); s.Count != 0 {
		t.Fatal("nil histogram snapshot not empty")
	}
	if r.Counter("x") != nil || r.Gauge("x") != nil || r.Histogram("x") != nil {
		t.Fatal("nil registry created metrics")
	}
	if s := r.Snapshot(); s.Counters != nil {
		t.Fatal("nil registry snapshot not empty")
	}
}

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("stmts")
	c.Add(3)
	r.Counter("stmts").Add(2) // same underlying counter
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("depth")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	vals := []int64{0, 1, 2, 3, 4, 100, 1000, -5}
	for _, v := range vals {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != int64(len(vals)) {
		t.Fatalf("count = %d, want %d", s.Count, len(vals))
	}
	if s.Sum != 0+1+2+3+4+100+1000+0 { // -5 clamps to 0
		t.Fatalf("sum = %d", s.Sum)
	}
	if s.Min != 0 || s.Max != 1000 {
		t.Fatalf("min/max = %d/%d, want 0/1000", s.Min, s.Max)
	}
	var n int64
	for _, b := range s.Buckets {
		if b.Low > b.High {
			t.Fatalf("bucket [%d,%d] inverted", b.Low, b.High)
		}
		n += b.N
	}
	if n != s.Count {
		t.Fatalf("bucket total %d != count %d", n, s.Count)
	}
	// 100 lands in [64,127].
	found := false
	for _, b := range s.Buckets {
		if b.Low <= 100 && 100 <= b.High && b.Low == 64 {
			found = true
		}
	}
	if !found {
		t.Fatalf("no [64,127] bucket for 100: %+v", s.Buckets)
	}
}

func TestHistogramMinTracksSmallest(t *testing.T) {
	var h Histogram
	h.Observe(50)
	h.Observe(10)
	h.Observe(90)
	s := h.Snapshot()
	if s.Min != 10 || s.Max != 90 {
		t.Fatalf("min/max = %d/%d, want 10/90", s.Min, s.Max)
	}
}

func TestQuantile(t *testing.T) {
	var h Histogram
	for i := int64(1); i <= 1000; i++ {
		h.Observe(i)
	}
	s := h.Snapshot()
	p50 := s.Quantile(0.5)
	// log2 buckets: estimate within 2x of the true median (500).
	if p50 < 250 || p50 > 1000 {
		t.Fatalf("p50 = %d, want within [250,1000]", p50)
	}
	if q := s.Quantile(1); q != 1000 {
		t.Fatalf("p100 = %d, want 1000", q)
	}
	if q := s.Quantile(0); q < 1 {
		t.Fatalf("p0 = %d, want >= 1", q)
	}
	var empty HistogramSnapshot
	if empty.Quantile(0.5) != 0 || empty.Mean() != 0 {
		t.Fatal("empty snapshot quantile/mean not zero")
	}
}

func TestConcurrentObserve(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(int64(w*per + i))
			}
		}(w)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != workers*per {
		t.Fatalf("count = %d, want %d", s.Count, workers*per)
	}
	if s.Min != 0 || s.Max != workers*per-1 {
		t.Fatalf("min/max = %d/%d", s.Min, s.Max)
	}
}

func TestWriteJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("commits").Add(3)
	r.Gauge("open_txns").Set(1)
	r.Histogram("commit_ns").Observe(1500)
	var b strings.Builder
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{`"commits": 3`, `"open_txns": 1`, `"commit_ns"`, `"count": 1`, `"sum": 1500`} {
		if !strings.Contains(out, want) {
			t.Fatalf("WriteJSON output missing %q:\n%s", want, out)
		}
	}
}

func TestObserveAllocs(t *testing.T) {
	var h Histogram
	allocs := testing.AllocsPerRun(1000, func() { h.Observe(123) })
	if allocs != 0 {
		t.Fatalf("Observe allocates %.1f/op, want 0", allocs)
	}
}

// Package metrics is a small, allocation-free instrumentation layer:
// atomic counters, gauges, and fixed-bucket latency histograms, collected
// into a Registry that snapshots on demand and dumps in an expvar-compatible
// flat-JSON form.
//
// Every method is safe on a nil receiver and does nothing there, so call
// sites can hold an optional *Histogram and observe unconditionally — a nil
// field is a disabled metric at the cost of one branch. The hot-path methods
// (Add, Set, Observe) never allocate and never take a lock; registration and
// Snapshot are mutex-guarded and expected to be rare.
package metrics

import (
	"fmt"
	"io"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing count.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n. No-op on a nil receiver.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count; 0 on a nil receiver.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous value that can move both ways.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value. No-op on a nil receiver.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add moves the gauge by n. No-op on a nil receiver.
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Value returns the current value; 0 on a nil receiver.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the number of power-of-two buckets. Bucket i counts
// observations v with bits.Len64(v) == i, i.e. bucket 0 holds v==0,
// bucket i (i>0) holds 2^(i-1) <= v < 2^i. 64 buckets cover the full
// non-negative int64 range (bits.Len64 of MaxInt64 is 63), so nanosecond
// latencies from <1ns to ~292y all land somewhere without configuration.
const histBuckets = 64

// Histogram is a fixed-bucket log2 histogram. Observations are int64s —
// by convention nanoseconds for latencies, but any non-negative magnitude
// (batch sizes, rows reclaimed) works. Negative observations clamp to 0.
type Histogram struct {
	count  atomic.Int64
	sum    atomic.Int64
	max    atomic.Int64
	min    atomic.Int64 // stored negated so zero-value means "unset"
	bucket [histBuckets]atomic.Int64
}

// Observe records one observation. No-op on a nil receiver; allocation-free.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.bucket[bits.Len64(uint64(v))].Add(1)
	for {
		// max starts at 0 and v >= 0, so "not above current" always means
		// "nothing to record".
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.min.Load()
		// min is stored as -(v+1): 0 means no observation yet.
		if cur != 0 && -(cur+1) <= v {
			break
		}
		if h.min.CompareAndSwap(cur, -(v + 1)) {
			break
		}
	}
}

// ObserveSince records the elapsed time since t0 in nanoseconds.
// No-op on a nil receiver.
func (h *Histogram) ObserveSince(t0 time.Time) {
	if h != nil {
		h.Observe(int64(time.Since(t0)))
	}
}

// Count returns the number of observations; 0 on a nil receiver.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Snapshot copies the histogram's current state. Concurrent Observe calls
// may land between field reads; the snapshot is consistent enough for
// reporting, not a linearizable cut.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	if h == nil {
		return s
	}
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	s.Max = h.max.Load()
	if m := h.min.Load(); m != 0 {
		s.Min = -(m + 1)
	}
	for i := range h.bucket {
		if n := h.bucket[i].Load(); n != 0 {
			s.Buckets = append(s.Buckets, BucketCount{Low: bucketLow(i), High: bucketHigh(i), N: n})
		}
	}
	return s
}

// bucketLow returns the inclusive lower bound of bucket i.
func bucketLow(i int) int64 {
	if i == 0 {
		return 0
	}
	return int64(1) << (i - 1)
}

// bucketHigh returns the inclusive upper bound of bucket i.
func bucketHigh(i int) int64 {
	if i == 0 {
		return 0
	}
	if i >= 63 {
		return int64(^uint64(0) >> 1) // MaxInt64
	}
	return int64(1)<<i - 1
}

// BucketCount is one non-empty histogram bucket: N observations in
// [Low, High].
type BucketCount struct {
	Low  int64 `json:"low"`
	High int64 `json:"high"`
	N    int64 `json:"n"`
}

// HistogramSnapshot is a point-in-time copy of a Histogram. Only non-empty
// buckets appear.
type HistogramSnapshot struct {
	Count   int64         `json:"count"`
	Sum     int64         `json:"sum"`
	Min     int64         `json:"min"`
	Max     int64         `json:"max"`
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// Mean returns the arithmetic mean of observations, or 0 if empty.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile returns an estimate of the p-quantile (p in [0,1]) assuming a
// uniform distribution within each bucket. With log2 buckets the estimate
// is within 2× of the true value — adequate for p50/p99 reporting.
func (s HistogramSnapshot) Quantile(p float64) int64 {
	if s.Count == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	rank := p * float64(s.Count)
	var seen float64
	for _, b := range s.Buckets {
		if seen+float64(b.N) >= rank {
			frac := 0.0
			if b.N > 0 {
				frac = (rank - seen) / float64(b.N)
			}
			v := float64(b.Low) + frac*float64(b.High-b.Low)
			est := int64(v)
			if est < s.Min {
				est = s.Min
			}
			if est > s.Max {
				est = s.Max
			}
			return est
		}
		seen += float64(b.N)
	}
	return s.Max
}

// Registry is a named collection of metrics. Get-or-create accessors make
// wiring order-independent: the first caller to name a metric creates it,
// later callers share it.
type Registry struct {
	mu     sync.Mutex
	counts map[string]*Counter
	gauges map[string]*Gauge
	hists  map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counts: make(map[string]*Counter),
		gauges: make(map[string]*Gauge),
		hists:  make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
// Returns nil (a disabled counter) on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counts[name]
	if c == nil {
		c = &Counter{}
		r.counts[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
// Returns nil (a disabled gauge) on a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
// Returns nil (a disabled histogram) on a nil registry.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Snapshot captures every registered metric.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot copies the current value of every metric. Nil-safe.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.counts) > 0 {
		s.Counters = make(map[string]int64, len(r.counts))
		for name, c := range r.counts {
			s.Counters[name] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]int64, len(r.gauges))
		for name, g := range r.gauges {
			s.Gauges[name] = g.Value()
		}
	}
	if len(r.hists) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(r.hists))
		for name, h := range r.hists {
			s.Histograms[name] = h.Snapshot()
		}
	}
	return s
}

// WriteJSON writes the registry in expvar's flat-object style: one JSON
// object whose keys are metric names in sorted order. Counters and gauges
// render as bare numbers; histograms as {"count":…,"sum":…,"min":…,
// "max":…,"mean":…,"p50":…,"p99":…}.
func (r *Registry) WriteJSON(w io.Writer) error {
	s := r.Snapshot()
	names := make([]string, 0, len(s.Counters)+len(s.Gauges)+len(s.Histograms))
	for name := range s.Counters {
		names = append(names, name)
	}
	for name := range s.Gauges {
		names = append(names, name)
	}
	for name := range s.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	if _, err := fmt.Fprint(w, "{"); err != nil {
		return err
	}
	for i, name := range names {
		sep := ",\n"
		if i == 0 {
			sep = "\n"
		}
		var err error
		if v, ok := s.Counters[name]; ok {
			_, err = fmt.Fprintf(w, "%s%q: %d", sep, name, v)
		} else if v, ok := s.Gauges[name]; ok {
			_, err = fmt.Fprintf(w, "%s%q: %d", sep, name, v)
		} else {
			h := s.Histograms[name]
			_, err = fmt.Fprintf(w, "%s%q: {\"count\": %d, \"sum\": %d, \"min\": %d, \"max\": %d, \"mean\": %.1f, \"p50\": %d, \"p99\": %d}",
				sep, name, h.Count, h.Sum, h.Min, h.Max, h.Mean(), h.Quantile(0.50), h.Quantile(0.99))
		}
		if err != nil {
			return err
		}
	}
	_, err := fmt.Fprint(w, "\n}\n")
	return err
}

package delta

import (
	"strings"
	"testing"

	"repro/internal/testdocs"
	"repro/internal/update"
	"repro/internal/xmltree"
	"repro/internal/xquery"
)

// recordStatement executes an update statement against doc while recording a
// delta. It reuses the xquery evaluator by driving the update executor
// directly with the recorder attached.
func recordStatement(t *testing.T, doc *xmltree.Document, query string) *Delta {
	t.Helper()
	rec := NewRecorder(doc)
	ev := xquery.NewEvaluator(doc)
	ev.Ctx.Documents = map[string]*xmltree.Document{"bio.xml": doc, "custdb.xml": doc}
	stmt, err := xquery.Parse(query)
	if err != nil {
		t.Fatal(err)
	}
	// Run through the evaluator with an observer-equipped executor: the
	// evaluator constructs its own executor, so replicate its two phases
	// here via the public API — bind with Exec on a throwaway clone is not
	// possible, so instead we wrap: evaluator exposes no hook, hence this
	// test exercises Recorder through update.Executor directly for DOM
	// statements below; here we use the convenience path.
	if err := ExecRecorded(ev, stmt, rec); err != nil {
		t.Fatal(err)
	}
	d, err := rec.Delta()
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestRecordAndReplayExample1(t *testing.T) {
	original := testdocs.Bio()
	replica := testdocs.Bio()

	d := recordStatement(t, original, `
FOR $p IN document("bio.xml")/db/paper,
    $cat IN $p/@category,
    $bio IN $p/ref(biologist,"smith1"),
    $ti IN $p/title
UPDATE $p {
    DELETE $cat,
    DELETE $bio,
    DELETE $ti
}`)
	if len(d.Ops) != 3 {
		t.Fatalf("recorded %d ops, want 3\n%s", len(d.Ops), d.Summary())
	}
	if err := d.Apply(replica, update.Ordered); err != nil {
		t.Fatal(err)
	}
	if got, want := replica.String(), original.String(); got != want {
		t.Errorf("replica diverged:\nreplica:  %s\noriginal: %s", got, want)
	}
}

func TestRecordAndReplayExample2Insert(t *testing.T) {
	original := testdocs.Bio()
	replica := testdocs.Bio()
	d := recordStatement(t, original, `
FOR $bio in document("bio.xml")/db/biologist[@ID="smith1"]
UPDATE $bio {
    INSERT new_attribute(age,"29"),
    INSERT new_ref(worksAt,"ucla"),
    INSERT <firstname>Jeff</firstname>
}`)
	if len(d.Ops) != 3 {
		t.Fatalf("ops = %d\n%s", len(d.Ops), d.Summary())
	}
	if err := d.Apply(replica, update.Ordered); err != nil {
		t.Fatal(err)
	}
	if replica.String() != original.String() {
		t.Error("replica diverged after insert replay")
	}
}

func TestRecordAndReplayPositional(t *testing.T) {
	original := testdocs.Bio()
	replica := testdocs.Bio()
	d := recordStatement(t, original, `
FOR $lab in document("bio.xml")/db/lab[@ID="baselab"],
    $n IN $lab/name,
    $sref IN $lab/ref(managers,"smith1")
UPDATE $lab {
    INSERT "jones1" BEFORE $sref,
    INSERT <street>Oak</street> AFTER $n
}`)
	if err := d.Apply(replica, update.Ordered); err != nil {
		t.Fatal(err)
	}
	if replica.String() != original.String() {
		t.Errorf("positional replay diverged:\nreplica:  %s\noriginal: %s", replica.String(), original.String())
	}
}

func TestRecordAndReplayNestedExample5(t *testing.T) {
	original := testdocs.Bio()
	replica := testdocs.Bio()
	d := recordStatement(t, original, `
FOR $u in document("bio.xml")/db/university[@ID="ucla"],
    $lab IN $u/lab
WHERE $lab.index() = 0
UPDATE $u {
    INSERT new_attribute(labs,"2"),
    INSERT <lab ID="newlab"><name>UCLA Secondary Lab</name></lab> BEFORE $lab,
    FOR $l1 IN $u/lab,
        $labname IN $l1/name,
        $ci IN $l1/city
    UPDATE $l1 {
        REPLACE $labname WITH <name>UCLA Primary Lab</>,
        DELETE $ci
    }
}`)
	if err := d.Apply(replica, update.Ordered); err != nil {
		t.Fatalf("%v\n%s", err, d.Summary())
	}
	if replica.String() != original.String() {
		t.Errorf("nested replay diverged:\nreplica:  %s\noriginal: %s", replica.String(), original.String())
	}
}

func TestXMLRoundTrip(t *testing.T) {
	original := testdocs.Bio()
	d := recordStatement(t, original, `
FOR $lab in document("bio.xml")/db/lab[@ID="lab2"],
    $n IN $lab/name,
    $c IN $lab/city
UPDATE $lab {
    RENAME $n TO title,
    DELETE $c,
    INSERT <country>Canada</country>
}`)
	xml := d.ToXML()
	parsed, err := ParseXML(xml)
	if err != nil {
		t.Fatalf("ParseXML: %v\n%s", err, xml)
	}
	if len(parsed.Ops) != len(d.Ops) {
		t.Fatalf("round trip lost ops: %d vs %d", len(parsed.Ops), len(d.Ops))
	}
	// The parsed delta replays identically.
	replica := testdocs.Bio()
	if err := parsed.Apply(replica, update.Ordered); err != nil {
		t.Fatal(err)
	}
	if replica.String() != original.String() {
		t.Error("parsed delta replay diverged")
	}
}

func TestLocatorParsing(t *testing.T) {
	cases := []string{
		"id(smith1)",
		"id(smith1)#@age",
		"/0/2/1",
		"/",
		"/3#refs(managers)",
		"id(lalab)#ref(managers,1)",
		"/1#text(0)",
	}
	for _, s := range cases {
		l, err := ParseLocator(s)
		if err != nil {
			t.Errorf("ParseLocator(%q): %v", s, err)
			continue
		}
		if l.String() != s {
			t.Errorf("round trip %q → %q", s, l.String())
		}
	}
	for _, bad := range []string{"", "id()", "/x/y", "bogus"} {
		if _, err := ParseLocator(bad); err == nil {
			t.Errorf("ParseLocator(%q) succeeded", bad)
		}
	}
}

func TestApplyFailsOnDivergedReplica(t *testing.T) {
	original := testdocs.Bio()
	d := recordStatement(t, original, `
FOR $p IN document("bio.xml")/db/paper,
    $ti IN $p/title
UPDATE $p { DELETE $ti }`)
	// A replica missing the paper cannot replay the delta.
	replica := testdocs.Bio()
	paper := replica.ByID("Smith991231")
	replica.Root.RemoveChild(paper)
	replica.UnregisterID("Smith991231", paper)
	if err := d.Apply(replica, update.Ordered); err == nil {
		t.Error("apply against diverged replica should fail")
	}
}

func TestParseXMLErrors(t *testing.T) {
	bad := []string{
		`<notdelta/>`,
		`<delta><op kind="delete"/></delta>`, // no target
		`<delta><op kind="frob" target="/0" child="/0"/></delta>`, // bad kind
		`<delta><op kind="insert" target="/0"><content kind="weird"/></op></delta>`,
	}
	for _, src := range bad {
		if _, err := ParseXML(src); err == nil {
			t.Errorf("ParseXML(%q) succeeded", src)
		}
	}
}

func TestSummary(t *testing.T) {
	original := testdocs.Bio()
	d := recordStatement(t, original, `
FOR $b IN document("bio.xml")/db/biologist[@ID="jones1"],
    $a IN $b/@age
UPDATE $b { DELETE $a }`)
	s := d.Summary()
	if !strings.Contains(s, "delete") || !strings.Contains(s, "id(jones1)") {
		t.Errorf("summary = %q", s)
	}
}

package delta

import (
	"repro/internal/xquery"
)

// ExecRecorded executes an update statement through the evaluator while
// recording the primitive operations it performs into rec. The recorder's
// observer is removed afterwards.
func ExecRecorded(ev *xquery.Evaluator, stmt *xquery.Statement, rec *Recorder) error {
	prev := ev.Observer
	ev.Observer = rec.Observe
	defer func() { ev.Observer = prev }()
	_, err := ev.Exec(stmt)
	if err != nil {
		return err
	}
	_, err = rec.Delta()
	return err
}

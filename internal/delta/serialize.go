package delta

import (
	"fmt"
	"strings"

	"repro/internal/xmltree"
)

// The transmission format: a delta is itself an XML document, so it can be
// shipped through the same channels as the data it describes.
//
//	<delta>
//	  <op kind="delete" target="id(Smith991231)" child="id(Smith991231)#@category"/>
//	  <op kind="insert" target="id(smith1)">
//	    <content kind="element"><firstname>Jeff</firstname></content>
//	  </op>
//	</delta>

// ToXML serializes the delta.
func (d *Delta) ToXML() string {
	root := xmltree.NewElement("delta")
	for _, op := range d.Ops {
		oe := xmltree.NewElement("op")
		oe.ReplaceAttrValue("kind", string(op.Kind))
		oe.ReplaceAttrValue("target", op.Target.String())
		if op.Kind != OpInsert {
			oe.ReplaceAttrValue("child", op.Child.String())
		}
		if op.Name != "" {
			oe.ReplaceAttrValue("name", op.Name)
		}
		if op.Content != nil {
			ce := xmltree.NewElement("content")
			ce.ReplaceAttrValue("kind", op.Content.Kind)
			switch op.Content.Kind {
			case "attribute", "ref":
				ce.ReplaceAttrValue("name", op.Content.Name)
				ce.ReplaceAttrValue("value", op.Content.Value)
			case "pcdata":
				ce.AppendChild(xmltree.NewText(op.Content.Value))
			case "element":
				parsed, err := xmltree.Parse(op.Content.XML)
				if err == nil {
					ce.AppendChild(parsed.Root)
				}
			}
			oe.AppendChild(ce)
		}
		root.AppendChild(oe)
	}
	return xmltree.SerializeWith(root, xmltree.SerializeOptions{Indent: "  ", SortAttrs: true})
}

// ParseXML parses a serialized delta.
func ParseXML(src string) (*Delta, error) {
	doc, err := xmltree.ParseWith(src, xmltree.ParseOptions{TrimText: true})
	if err != nil {
		return nil, fmt.Errorf("delta: %w", err)
	}
	if doc.Root.Name != "delta" {
		return nil, fmt.Errorf("delta: root element is <%s>, want <delta>", doc.Root.Name)
	}
	d := &Delta{}
	for _, oe := range doc.Root.ChildElementsNamed("op") {
		kind, _ := oe.AttrValue("kind")
		op := Op{Kind: OpKind(kind)}
		tgt, ok := oe.AttrValue("target")
		if !ok {
			return nil, fmt.Errorf("delta: op without target")
		}
		op.Target, err = ParseLocator(tgt)
		if err != nil {
			return nil, err
		}
		if c, ok := oe.AttrValue("child"); ok {
			op.Child, err = ParseLocator(c)
			if err != nil {
				return nil, err
			}
		}
		op.Name, _ = oe.AttrValue("name")
		if ce := oe.FirstChildNamed("content"); ce != nil {
			content := &Content{}
			content.Kind, _ = ce.AttrValue("kind")
			switch content.Kind {
			case "attribute", "ref":
				content.Name, _ = ce.AttrValue("name")
				content.Value, _ = ce.AttrValue("value")
			case "pcdata":
				content.Value = ce.TextContent()
			case "element":
				kids := ce.ChildElements()
				if len(kids) != 1 {
					return nil, fmt.Errorf("delta: element content must hold exactly one element")
				}
				content.XML = xmltree.Serialize(kids[0])
			default:
				return nil, fmt.Errorf("delta: unknown content kind %q", content.Kind)
			}
			op.Content = content
		}
		switch op.Kind {
		case OpDelete, OpRename, OpInsert, OpInsertBefore, OpInsertAfter, OpReplace:
		default:
			return nil, fmt.Errorf("delta: unknown op kind %q", op.Kind)
		}
		d.Ops = append(d.Ops, op)
	}
	return d, nil
}

// Summary returns a one-line-per-op human-readable description.
func (d *Delta) Summary() string {
	var b strings.Builder
	for i, op := range d.Ops {
		fmt.Fprintf(&b, "%2d. %-13s target=%s", i+1, op.Kind, op.Target)
		if op.Kind != OpInsert {
			fmt.Fprintf(&b, " child=%s", op.Child)
		}
		if op.Name != "" {
			fmt.Fprintf(&b, " name=%s", op.Name)
		}
		if op.Content != nil {
			fmt.Fprintf(&b, " content=%s", op.Content.Kind)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Package delta implements update deltas: serializable logs of primitive
// update operations that can be transmitted and replayed against a replica
// of a document. The paper's introduction motivates update encapsulation for
// exactly this — incremental changes for continuous queries, XML document
// mirroring, caching, and replication (§1).
//
// A Delta records each primitive operation in execution order, locating its
// objects with paths computed against the pre-operation state; replaying the
// operations in order against an identical replica reproduces the update.
package delta

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/update"
	"repro/internal/xmltree"
)

// Locator addresses an object within a document. Elements are addressed by
// their ID when they have one (stable under reordering), otherwise by the
// path of child-node indexes from the root.
type Locator struct {
	// ID addresses an element via the document's ID registry.
	ID string
	// Path is the child-node index path from the root (used when ID == "").
	Path []int
	// Sel selects a non-element object within the element: "" (the element
	// itself), "@name" (attribute), "ref(name,i)" (one reference entry),
	// "refs(name)" (a whole reference list), or "text(i)" (the i-th child
	// node, a PCDATA node).
	Sel string
}

func (l Locator) String() string {
	var b strings.Builder
	if l.ID != "" {
		fmt.Fprintf(&b, "id(%s)", l.ID)
	} else {
		b.WriteByte('/')
		parts := make([]string, len(l.Path))
		for i, p := range l.Path {
			parts[i] = strconv.Itoa(p)
		}
		b.WriteString(strings.Join(parts, "/"))
	}
	if l.Sel != "" {
		b.WriteByte('#')
		b.WriteString(l.Sel)
	}
	return b.String()
}

// ParseLocator parses the String form.
func ParseLocator(s string) (Locator, error) {
	var l Locator
	body := s
	if i := strings.IndexByte(s, '#'); i >= 0 {
		body, l.Sel = s[:i], s[i+1:]
	}
	switch {
	case strings.HasPrefix(body, "id(") && strings.HasSuffix(body, ")"):
		l.ID = body[3 : len(body)-1]
		if l.ID == "" {
			return l, fmt.Errorf("delta: empty id in locator %q", s)
		}
	case strings.HasPrefix(body, "/"):
		trimmed := strings.Trim(body, "/")
		if trimmed != "" {
			for _, part := range strings.Split(trimmed, "/") {
				n, err := strconv.Atoi(part)
				if err != nil {
					return l, fmt.Errorf("delta: bad path segment %q in %q", part, s)
				}
				l.Path = append(l.Path, n)
			}
		}
	default:
		return l, fmt.Errorf("delta: bad locator %q", s)
	}
	return l, nil
}

// OpKind names a recorded operation.
type OpKind string

// Recorded operation kinds.
const (
	OpDelete       OpKind = "delete"
	OpRename       OpKind = "rename"
	OpInsert       OpKind = "insert"
	OpInsertBefore OpKind = "insert-before"
	OpInsertAfter  OpKind = "insert-after"
	OpReplace      OpKind = "replace"
)

// Content is serializable insertion content.
type Content struct {
	// Exactly one of the following is used, discriminated by Kind:
	// "attribute", "ref", "element", "pcdata".
	Kind  string
	Name  string // attribute/reference name
	Value string // attribute value, reference id, or PCDATA
	XML   string // serialized element content
}

// Op is one recorded primitive operation.
type Op struct {
	Kind    OpKind
	Target  Locator // the target element of the operation
	Child   Locator // the child object (delete/rename/replace) or reference point (positional insert)
	Name    string  // rename's new name
	Content *Content
}

// Delta is an ordered operation log.
type Delta struct {
	Ops []Op
}

// Recorder captures the primitive operations an update.Executor performs.
type Recorder struct {
	doc   *xmltree.Document
	delta *Delta
	err   error
}

// NewRecorder returns a recorder for updates against doc. Install it with
// Attach before executing.
func NewRecorder(doc *xmltree.Document) *Recorder {
	return &Recorder{doc: doc, delta: &Delta{}}
}

// Attach installs the recorder on an executor.
func (r *Recorder) Attach(x *update.Executor) {
	x.Observer = r.Observe
}

// Observe records one primitive operation; it is the callback installed on
// executors and evaluators.
func (r *Recorder) Observe(target *xmltree.Element, op update.Op) {
	r.observe(target, op)
}

// Delta returns the recorded log and any recording error.
func (r *Recorder) Delta() (*Delta, error) {
	if r.err != nil {
		return nil, r.err
	}
	return r.delta, nil
}

func (r *Recorder) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("delta: "+format, args...)
	}
}

func (r *Recorder) observe(target *xmltree.Element, op update.Op) {
	tl, ok := r.locateElement(target)
	if !ok {
		r.fail("cannot locate target <%s>", target.Name)
		return
	}
	rec := Op{Target: tl}
	switch o := op.(type) {
	case update.Delete:
		rec.Kind = OpDelete
		rec.Child, ok = r.locateChild(target, o.Child)
	case update.Rename:
		rec.Kind = OpRename
		rec.Name = o.Name
		rec.Child, ok = r.locateChild(target, o.Child)
	case update.Insert:
		rec.Kind = OpInsert
		rec.Content = r.content(o.Content)
		ok = rec.Content != nil
	case update.InsertBefore:
		rec.Kind = OpInsertBefore
		rec.Content = r.content(o.Content)
		var cok bool
		rec.Child, cok = r.locateChild(target, o.Ref)
		ok = cok && rec.Content != nil
	case update.InsertAfter:
		rec.Kind = OpInsertAfter
		rec.Content = r.content(o.Content)
		var cok bool
		rec.Child, cok = r.locateChild(target, o.Ref)
		ok = cok && rec.Content != nil
	case update.Replace:
		rec.Kind = OpReplace
		rec.Content = r.content(o.Content)
		var cok bool
		rec.Child, cok = r.locateChild(target, o.Child)
		ok = cok && rec.Content != nil
	default:
		r.fail("unsupported operation %T", op)
		return
	}
	if !ok {
		r.fail("cannot record %s on <%s>", update.OpName(op), target.Name)
		return
	}
	r.delta.Ops = append(r.delta.Ops, rec)
}

func (r *Recorder) locateElement(e *xmltree.Element) (Locator, bool) {
	if id := r.doc.ID(e); id != "" && r.doc.ByID(id) == e {
		return Locator{ID: id}, true
	}
	var path []int
	for cur := e; cur.Parent() != nil; cur = cur.Parent() {
		idx := cur.Parent().ChildIndex(cur)
		if idx < 0 {
			return Locator{}, false
		}
		path = append(path, idx)
	}
	// The walk built the path leaf-to-root.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	root := e
	for root.Parent() != nil {
		root = root.Parent()
	}
	if root != r.doc.Root {
		return Locator{}, false
	}
	return Locator{Path: path}, true
}

func (r *Recorder) locateChild(target *xmltree.Element, child update.Target) (Locator, bool) {
	base, ok := r.locateElement(target)
	if !ok {
		return Locator{}, false
	}
	switch c := child.(type) {
	case *xmltree.Element:
		return r.locateElement(c)
	case *xmltree.Attr:
		base.Sel = "@" + c.Name
		return base, c.Owner() == target
	case *xmltree.RefList:
		base.Sel = fmt.Sprintf("refs(%s)", c.Name)
		return base, c.Owner() == target
	case xmltree.Ref:
		base.Sel = fmt.Sprintf("ref(%s,%d)", c.List.Name, c.Index)
		return base, c.List.Owner() == target
	case *xmltree.Text:
		idx := target.ChildIndex(c)
		if idx < 0 {
			return Locator{}, false
		}
		base.Sel = fmt.Sprintf("text(%d)", idx)
		return base, true
	default:
		return Locator{}, false
	}
}

func (r *Recorder) content(c update.Content) *Content {
	switch x := c.(type) {
	case update.NewAttribute:
		return &Content{Kind: "attribute", Name: x.Name, Value: x.Value}
	case update.NewRef:
		return &Content{Kind: "ref", Name: x.Name, Value: x.ID}
	case update.PCDATA:
		return &Content{Kind: "pcdata", Value: x.Data}
	case update.ElementContent:
		return &Content{Kind: "element", XML: xmltree.Serialize(x.Element)}
	default:
		return nil
	}
}

// Apply replays the delta against a replica document, in order. The replica
// must be structurally identical to the pre-update original for positional
// locators to resolve.
func (d *Delta) Apply(doc *xmltree.Document, model update.Model) error {
	x := update.NewExecutor(model, doc)
	for i, op := range d.Ops {
		target, err := resolveElement(doc, op.Target)
		if err != nil {
			return fmt.Errorf("delta: op %d: target: %w", i, err)
		}
		prim, err := op.toPrimitive(doc, target)
		if err != nil {
			return fmt.Errorf("delta: op %d: %w", i, err)
		}
		if err := x.Apply(target, []update.Op{prim}); err != nil {
			return fmt.Errorf("delta: op %d (%s): %w", i, op.Kind, err)
		}
	}
	return nil
}

func (op *Op) toPrimitive(doc *xmltree.Document, target *xmltree.Element) (update.Op, error) {
	switch op.Kind {
	case OpDelete:
		child, err := resolveTarget(doc, op.Child)
		if err != nil {
			return nil, err
		}
		return update.Delete{Child: child}, nil
	case OpRename:
		child, err := resolveTarget(doc, op.Child)
		if err != nil {
			return nil, err
		}
		return update.Rename{Child: child, Name: op.Name}, nil
	case OpInsert:
		content, err := op.Content.toContent(doc)
		if err != nil {
			return nil, err
		}
		return update.Insert{Content: content}, nil
	case OpInsertBefore, OpInsertAfter:
		content, err := op.Content.toContent(doc)
		if err != nil {
			return nil, err
		}
		ref, err := resolveTarget(doc, op.Child)
		if err != nil {
			return nil, err
		}
		if op.Kind == OpInsertBefore {
			return update.InsertBefore{Ref: ref, Content: content}, nil
		}
		return update.InsertAfter{Ref: ref, Content: content}, nil
	case OpReplace:
		content, err := op.Content.toContent(doc)
		if err != nil {
			return nil, err
		}
		child, err := resolveTarget(doc, op.Child)
		if err != nil {
			return nil, err
		}
		return update.Replace{Child: child, Content: content}, nil
	default:
		return nil, fmt.Errorf("unknown op kind %q", op.Kind)
	}
}

func (c *Content) toContent(doc *xmltree.Document) (update.Content, error) {
	if c == nil {
		return nil, fmt.Errorf("missing content")
	}
	switch c.Kind {
	case "attribute":
		return update.NewAttribute{Name: c.Name, Value: c.Value}, nil
	case "ref":
		return update.NewRef{Name: c.Name, ID: c.Value}, nil
	case "pcdata":
		return update.PCDATA{Data: c.Value}, nil
	case "element":
		var dtd *xmltree.DTD
		if doc != nil {
			dtd = doc.DTD
		}
		parsed, err := xmltree.ParseWith(c.XML, xmltree.ParseOptions{TrimText: true, DTD: dtd})
		if err != nil {
			return nil, fmt.Errorf("content XML: %w", err)
		}
		return update.ElementContent{Element: parsed.Root}, nil
	default:
		return nil, fmt.Errorf("unknown content kind %q", c.Kind)
	}
}

func resolveElement(doc *xmltree.Document, l Locator) (*xmltree.Element, error) {
	if l.ID != "" {
		e := doc.ByID(l.ID)
		if e == nil {
			return nil, fmt.Errorf("no element with ID %q", l.ID)
		}
		return e, nil
	}
	cur := doc.Root
	for _, idx := range l.Path {
		kids := cur.Children()
		if idx < 0 || idx >= len(kids) {
			return nil, fmt.Errorf("path index %d out of range under <%s>", idx, cur.Name)
		}
		ce, ok := kids[idx].(*xmltree.Element)
		if !ok {
			return nil, fmt.Errorf("path index %d under <%s> is not an element", idx, cur.Name)
		}
		cur = ce
	}
	return cur, nil
}

// resolveTarget resolves a locator with its Sel suffix into an update target.
func resolveTarget(doc *xmltree.Document, l Locator) (update.Target, error) {
	e, err := resolveElement(doc, Locator{ID: l.ID, Path: l.Path})
	if err != nil {
		return nil, err
	}
	sel := l.Sel
	switch {
	case sel == "":
		return e, nil
	case strings.HasPrefix(sel, "@"):
		a := e.Attr(sel[1:])
		if a == nil {
			return nil, fmt.Errorf("no attribute %q on <%s>", sel[1:], e.Name)
		}
		return a, nil
	case strings.HasPrefix(sel, "refs(") && strings.HasSuffix(sel, ")"):
		name := sel[5 : len(sel)-1]
		r := e.Ref(name)
		if r == nil {
			return nil, fmt.Errorf("no reference list %q on <%s>", name, e.Name)
		}
		return r, nil
	case strings.HasPrefix(sel, "ref(") && strings.HasSuffix(sel, ")"):
		body := sel[4 : len(sel)-1]
		comma := strings.LastIndexByte(body, ',')
		if comma < 0 {
			return nil, fmt.Errorf("bad ref selector %q", sel)
		}
		name := body[:comma]
		idx, err := strconv.Atoi(body[comma+1:])
		if err != nil {
			return nil, fmt.Errorf("bad ref index in %q", sel)
		}
		r := e.Ref(name)
		if r == nil || idx < 0 || idx >= len(r.IDs) {
			return nil, fmt.Errorf("no reference %s[%d] on <%s>", name, idx, e.Name)
		}
		return xmltree.Ref{List: r, Index: idx}, nil
	case strings.HasPrefix(sel, "text(") && strings.HasSuffix(sel, ")"):
		idx, err := strconv.Atoi(sel[5 : len(sel)-1])
		if err != nil {
			return nil, fmt.Errorf("bad text index in %q", sel)
		}
		kids := e.Children()
		if idx < 0 || idx >= len(kids) {
			return nil, fmt.Errorf("text index %d out of range", idx)
		}
		t, ok := kids[idx].(*xmltree.Text)
		if !ok {
			return nil, fmt.Errorf("child %d of <%s> is not PCDATA", idx, e.Name)
		}
		return t, nil
	default:
		return nil, fmt.Errorf("unknown selector %q", sel)
	}
}

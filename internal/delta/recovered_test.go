package delta

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/relational"
	"repro/internal/shred"
	"repro/internal/testdocs"
	"repro/internal/update"
	"repro/internal/xmltree"
)

// TestDeltaReplayMatchesRecoveredStore ties the paper's §1 replication
// motivation to the durability layer: a delta recorded while updating a
// document must, replayed against a replica, produce the same state a
// crashed-and-recovered persistent store reconstructs. In other words,
// "delta applied pre-crash" and "delta replayed post-recovery" describe the
// same document.
func TestDeltaReplayMatchesRecoveredStore(t *testing.T) {
	const stmtText = `
FOR $o IN document("custdb.xml")//Order[Status="ready" and OrderLine/ItemName="tire"],
    $st IN $o/Status
UPDATE $o {
    REPLACE $st WITH <Status>suspended</Status>,
    FOR $i IN $o/OrderLine[ItemName="tire"]
    UPDATE $i {
        INSERT <comment>recalled</comment>
    }
}`

	// Record the delta against a DOM copy (the "primary" in the mirroring
	// scenario).
	primary := testdocs.Cust()
	d := recordStatement(t, primary, stmtText)
	if len(d.Ops) == 0 {
		t.Fatal("statement recorded no operations")
	}

	// The same statement runs on a persistent store, which then crashes
	// (abandoned without Close) and recovers from its log.
	dir := t.TempDir()
	s, err := engine.OpenDir(dir, testdocs.Cust(), engine.Options{},
		relational.Options{Sync: relational.SyncOff, CheckpointBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.ExecString(stmtText); err != nil {
		t.Fatal(err)
	}
	rec, err := engine.OpenDir(dir, nil, engine.Options{},
		relational.Options{Sync: relational.SyncOff, CheckpointBytes: -1})
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer rec.Close()
	recovered, err := rec.Reconstruct()
	if err != nil {
		t.Fatal(err)
	}

	// Replay the delta on a fresh replica and normalize it through the same
	// shred/reconstruct pipeline the store's output went through.
	replica := testdocs.Cust()
	if err := d.Apply(replica, update.Ordered); err != nil {
		t.Fatalf("delta replay: %v", err)
	}
	want := reshred(t, replica)
	if recovered.String() != want.String() {
		t.Fatalf("recovered store and delta replica diverge:\nrecovered:\n%s\nreplica:\n%s",
			recovered.String(), want.String())
	}
}

// reshred normalizes a DOM document through the relational pipeline:
// shred into a fresh in-memory DB, then reconstruct.
func reshred(t *testing.T, doc *xmltree.Document) *xmltree.Document {
	t.Helper()
	m, err := shred.BuildMapping(doc.DTD, doc.Root.Name, shred.Options{})
	if err != nil {
		t.Fatal(err)
	}
	db := relational.NewDB()
	if _, err := shred.Load(db, m, doc); err != nil {
		t.Fatal(err)
	}
	out, err := shred.Reconstruct(db, m)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

package bench

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"repro/internal/asr"
	"repro/internal/datagen"
	"repro/internal/outerunion"
	"repro/internal/relational"
	"repro/internal/shred"
)

// Micro-benchmarks for the unboxed row pipeline: scan, hash probe, ordered
// range scan, transient hash join, sort, the §7.2 conventional path query,
// and SOU reconstruction, each reported as min-of-N wall time plus malloc
// counts per operation and per row. On this box wall time is noisy (see the
// benchmarking protocol in DESIGN.md); the malloc columns are the stable
// signal the allocation work optimizes, and the per-PR JSON trajectory
// records both.

// MicroResult is one micro-benchmark's measurement.
type MicroResult struct {
	Name string
	// Rows is the number of rows the operation streams per run.
	Rows int
	// MinSeconds is the fastest of the measured runs (after one discarded
	// warm-up) — the least GC/scheduler-noisy wall-time estimator.
	MinSeconds float64
	// AllocsPerOp is the mean heap allocations per run; AllocsPerRow divides
	// by the rows streamed. The conventional-path pins require the streaming
	// kernels to hold AllocsPerRow at (near) zero.
	AllocsPerOp  float64
	AllocsPerRow float64
	// BytesPerOp is the mean heap bytes allocated per run.
	BytesPerOp float64
}

// microDoc sizes the synthetic document: quick keeps CI fast.
func microScale(cfg Config) int {
	if cfg.Quick {
		return 30
	}
	return 150
}

// measureMicro runs op runs+1 times (first discarded), returning min wall
// time and mean allocation counts. op returns the rows it streamed.
func measureMicro(name string, runs int, op func() (int, error)) (MicroResult, error) {
	res := MicroResult{Name: name}
	var ms0, ms1 runtime.MemStats
	for i := 0; i <= runs; i++ {
		start := time.Now()
		rows, err := op()
		elapsed := time.Since(start).Seconds()
		if err != nil {
			return res, fmt.Errorf("%s: %w", name, err)
		}
		if i == 0 {
			// Warm-up done: caches hot, buffers grown. Count allocations
			// across the measured runs only.
			runtime.GC()
			runtime.ReadMemStats(&ms0)
			continue
		}
		res.Rows = rows
		if res.MinSeconds == 0 || elapsed < res.MinSeconds {
			res.MinSeconds = elapsed
		}
	}
	runtime.ReadMemStats(&ms1)
	res.AllocsPerOp = float64(ms1.Mallocs-ms0.Mallocs) / float64(runs)
	res.BytesPerOp = float64(ms1.TotalAlloc-ms0.TotalAlloc) / float64(runs)
	if res.Rows > 0 {
		res.AllocsPerRow = res.AllocsPerOp / float64(res.Rows)
	}
	return res, nil
}

// RunMicro runs the micro-benchmark suite.
func RunMicro(cfg Config) ([]MicroResult, error) {
	sf := microScale(cfg)
	doc := datagen.Fixed(datagen.FixedParams{ScalingFactor: sf, Depth: 4, Fanout: 4, Seed: 5})
	m, err := shred.BuildMapping(doc.DTD, doc.Root.Name, shred.Options{OrderColumn: true})
	if err != nil {
		return nil, err
	}
	db := relational.NewDB()
	if _, err := shred.Load(db, m, doc); err != nil {
		return nil, err
	}
	a, err := asr.Build(db, m)
	if err != nil {
		return nil, err
	}
	t2, t3 := m.Table("e2").Name, m.Table("e3").Name

	stream := func(q string) func() (int, error) {
		return func() (int, error) {
			n := 0
			_, err := db.QueryEach(q, func([]relational.Value) error { n++; return nil })
			return n, err
		}
	}

	runs := cfg.runs()
	var out []MicroResult
	add := func(name string, op func() (int, error)) error {
		r, err := measureMicro(name, runs, op)
		if err != nil {
			return err
		}
		out = append(out, r)
		return nil
	}

	// Streaming kernels: these are the loops the unboxed representation
	// makes allocation-free per row.
	if err := add("scan", stream(fmt.Sprintf("SELECT id, parentId FROM %s WHERE pos >= 0", t3))); err != nil {
		return nil, err
	}
	if err := add("hash-probe-join", stream(fmt.Sprintf(
		"SELECT C.id FROM %s P, %s C WHERE C.parentId = P.id", t2, t3))); err != nil {
		return nil, err
	}
	if err := add("range-scan", stream(fmt.Sprintf(
		"SELECT C.id FROM %s P, %s C WHERE C.parentId = P.id AND C.pos >= 1 AND C.pos <= 2", t2, t3))); err != nil {
		return nil, err
	}
	if err := add("hash-join", stream(fmt.Sprintf(
		"SELECT C.id FROM %s P, %s C WHERE C.pos = P.pos", t2, t3))); err != nil {
		return nil, err
	}
	if err := add("sort", stream(fmt.Sprintf("SELECT id, k3_v FROM %s ORDER BY k3_v, id", t3))); err != nil {
		return nil, err
	}

	// TEXT kernels over the attribute-heavy catalog: symbol-keyed equality
	// and dedup on low-cardinality columns (the interning fast paths).
	catScale := textCatalog(cfg)
	catScale.Items /= 4
	cdb, _, err := loadCatalog(catScale, false)
	if err != nil {
		return nil, err
	}
	cstream := func(q string) func() (int, error) {
		return func() (int, error) {
			n := 0
			_, err := cdb.QueryEach(q, func([]relational.Value) error { n++; return nil })
			return n, err
		}
	}
	if err := add("text-eq-scan", cstream(`SELECT id FROM item WHERE a_status = 'urn:catalog:status:active'`)); err != nil {
		return nil, err
	}
	if err := add("text-hash-join", cstream(`SELECT i.id FROM item i, supplier s WHERE i.a_vendor = s.name_v`)); err != nil {
		return nil, err
	}
	if err := add("text-distinct", cstream(`SELECT DISTINCT a_vendor, a_category FROM item`)); err != nil {
		return nil, err
	}

	// The §7.2 conventional multiway path query (materialized, as callers
	// use it) and the ASR two-join form.
	conventional, asrSQL, err := PathQueries(db, m, a, 3)
	if err != nil {
		return nil, err
	}
	materialize := func(q string) func() (int, error) {
		return func() (int, error) {
			rows, err := db.Query(q)
			if err != nil {
				return 0, err
			}
			return len(rows.Data), nil
		}
	}
	if err := add("conventional-path", materialize(conventional)); err != nil {
		return nil, err
	}
	if err := add("asr-path", materialize(asrSQL)); err != nil {
		return nil, err
	}

	// SOU reconstruction: the full streaming read path — wide-tuple pipeline
	// with elided sort into XML assembly.
	if err := add("sou-reconstruct", func() (int, error) {
		subs, err := outerunion.Query(db, m, "e1", "")
		if err != nil {
			return 0, err
		}
		n := 0
		for _, st := range subs {
			for _, ids := range st.IDs {
				n += len(ids)
			}
		}
		return n, nil
	}); err != nil {
		return nil, err
	}
	recordStats(db)
	recordStats(cdb)
	return out, nil
}

// WriteMicro prints the micro suite as aligned columns.
func WriteMicro(w io.Writer, res []MicroResult) {
	fmt.Fprintln(w, "# micro — row-pipeline micro-benchmarks (min-of-N wall, mean mallocs)")
	fmt.Fprintf(w, "%-20s %10s %14s %14s %14s %14s\n", "kernel", "rows", "min time (s)", "allocs/op", "allocs/row", "bytes/op")
	for _, r := range res {
		fmt.Fprintf(w, "%-20s %10d %14.6f %14.1f %14.3f %14.0f\n",
			r.Name, r.Rows, r.MinSeconds, r.AllocsPerOp, r.AllocsPerRow, r.BytesPerOp)
	}
}

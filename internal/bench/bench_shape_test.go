package bench

import (
	"fmt"
	"strings"
	"testing"
)

// These tests run the experiments at quick scale and assert the paper's
// qualitative findings — the shapes, not the absolute numbers.

func quickCfg() Config { return Config{Runs: 2, Quick: true} }

func findSeries(t *testing.T, fig *Figure, method string) Series {
	t.Helper()
	for _, s := range fig.Series {
		if s.Method == method {
			return s
		}
	}
	t.Fatalf("figure %s has no series %q", fig.ID, method)
	return Series{}
}

func last(s Series) Point { return s.Points[len(s.Points)-1] }

// TestFig7Shape: on the random workload, per-tuple triggers stay flat as the
// document grows (index probes proportional to deleted content), while
// per-statement triggers scan child tables and degrade.
func TestFig7Shape(t *testing.T) {
	fig, err := RunFig7(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	perTuple := findSeries(t, fig, "per-tuple trigger")
	perStm := findSeries(t, fig, "per-stm trigger")
	// Flatness via the cost model: per-tuple rows scanned grow at most
	// linearly in the (constant) deleted content, so the ratio of largest
	// to smallest document stays near 1; per-statement scans whole child
	// relations and its scan count tracks document size.
	ptFirst, ptLast := perTuple.Points[0], last(perTuple)
	psFirst, psLast := perStm.Points[0], last(perStm)
	sizeRatio := float64(ptLast.Tuples) / float64(ptFirst.Tuples)
	ptGrowth := float64(ptLast.RowsScanned+1) / float64(ptFirst.RowsScanned+1)
	psGrowth := float64(psLast.RowsScanned+1) / float64(psFirst.RowsScanned+1)
	if ptGrowth > sizeRatio/1.5 {
		t.Errorf("per-tuple scan growth %.2f should stay well below size ratio %.2f", ptGrowth, sizeRatio)
	}
	if psGrowth < sizeRatio/1.5 {
		t.Errorf("per-statement scan growth %.2f should track size ratio %.2f", psGrowth, sizeRatio)
	}
	// And per-tuple beats per-statement on the largest random workload.
	if last(perTuple).Seconds >= last(perStm).Seconds {
		t.Errorf("per-tuple (%.6fs) should beat per-statement (%.6fs) on random workload",
			last(perTuple).Seconds, last(perStm).Seconds)
	}
}

// TestFig6Shape: on the bulk workload the trigger methods beat the ASR
// method (which issues more statements and maintains the ASR).
func TestFig6Shape(t *testing.T) {
	fig, err := RunFig6(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	asrS := findSeries(t, fig, "asr")
	perTuple := findSeries(t, fig, "per-tuple trigger")
	perStm := findSeries(t, fig, "per-stm trigger")
	// Quick-scale timings are noisy; assert with a 40% tolerance band.
	if last(asrS).Seconds < 0.6*last(perStm).Seconds {
		t.Errorf("ASR delete (%.6fs) should not beat per-statement triggers (%.6fs) on bulk workload",
			last(asrS).Seconds, last(perStm).Seconds)
	}
	// Statement counts explain it: triggers issue 1 client statement.
	if last(perTuple).Statements != 1 || last(perStm).Statements != 1 {
		t.Errorf("trigger statements = %d/%d, want 1", last(perTuple).Statements, last(perStm).Statements)
	}
	if last(asrS).Statements <= 1 {
		t.Errorf("ASR delete statements = %d, want > 1", last(asrS).Statements)
	}
}

// TestFig10Shape: the table method wins bulk inserts; the tuple method's
// statement count explodes with subtree depth.
func TestFig10Shape(t *testing.T) {
	// Extra runs, min-of-runs, a small band, and one retry of the timing
	// comparison: the table method's temp-table staging is
	// allocation-heavy, shared-machine contention occasionally slows a
	// whole measured sequence at quick scale, and the prepared-plan cache
	// narrowed the gap the paper measured against re-parsed per-tuple
	// INSERTs. The structural statement-count assertions stay strict.
	run := func() (table, tuple Point) {
		fig, err := RunFig10(Config{Runs: 4, Quick: true})
		if err != nil {
			t.Fatal(err)
		}
		return last(findSeries(t, fig, "table")), last(findSeries(t, fig, "tuple"))
	}
	table, tuple := run()
	if table.MinSeconds >= 1.1*tuple.MinSeconds {
		table, tuple = run()
		if table.MinSeconds >= 1.1*tuple.MinSeconds {
			t.Errorf("table insert (%.6fs) should beat tuple insert (%.6fs) on bulk workload",
				table.MinSeconds, tuple.MinSeconds)
		}
	}
	// One INSERT per source tuple for the tuple method.
	if tuple.Statements < int64(tuple.Tuples)/2 {
		t.Errorf("tuple insert statements = %d for %d tuples", tuple.Statements, tuple.Tuples)
	}
	// Table method: statements constant per relation, independent of depth
	// growth in tuple count.
	if table.Statements >= tuple.Statements {
		t.Errorf("table insert statements (%d) should be far below tuple's (%d)",
			table.Statements, tuple.Statements)
	}
}

// TestCascadeTracksPerStatement: §7.3 found the two within ~5%; our engine
// makes the cascade issue the same deletes as client statements, so we allow
// a generous factor while asserting they stay the same order of magnitude.
func TestCascadeTracksPerStatement(t *testing.T) {
	fig, err := RunCascadeComparison(Config{Runs: 3, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	perStm := findSeries(t, fig, "per-stm trigger")
	casc := findSeries(t, fig, "cascade")
	for i := range perStm.Points {
		a, b := perStm.Points[i].Seconds, casc.Points[i].Seconds
		if b > 3*a+0.001 || a > 3*b+0.001 {
			t.Errorf("x=%d: cascade %.6fs vs per-statement %.6fs diverge", perStm.Points[i].X, b, a)
		}
		// The deletes themselves are identical; the cascade just issues
		// more client statements.
		if casc.Points[i].Statements <= perStm.Points[i].Statements {
			t.Errorf("cascade statements (%d) should exceed per-statement trigger's (%d)",
				casc.Points[i].Statements, perStm.Points[i].Statements)
		}
	}
}

// TestTable2Shape: DBLP is bushy and the deletion touches a small fraction,
// so the per-tuple trigger wins and per-statement/cascade do poorly.
func TestTable2Shape(t *testing.T) {
	// Extra runs, min-of-runs, and one retry: quick-scale timings are
	// GC-noisy and the margins here are a few hundred microseconds (see
	// TestFig10Shape).
	run := func() map[string]float64 {
		rows, err := RunTable2(Config{Runs: 4, Quick: true})
		if err != nil {
			t.Fatal(err)
		}
		times := map[string]float64{}
		for _, r := range rows {
			times[r.Operation+"/"+r.Method] = r.MinSeconds
		}
		return times
	}
	// Quick-scale timings are noisy; assert with a tolerance band. One
	// predicate drives both the retry and the final assertions so the two
	// cannot diverge.
	const band = 1.4
	comparisons := []struct{ faster, slower, msg string }{
		{"delete/per-tuple trigger", "delete/per-stm trigger", "DBLP delete: per-tuple (%.6fs) should beat per-statement (%.6fs)"},
		{"delete/per-tuple trigger", "delete/cascade", "DBLP delete: per-tuple (%.6fs) should beat cascade (%.6fs)"},
		{"insert/table", "insert/tuple", "DBLP insert: table (%.6fs) should beat tuple (%.6fs)"},
	}
	failures := func(times map[string]float64) []string {
		var msgs []string
		for _, c := range comparisons {
			if times[c.faster] >= band*times[c.slower] {
				msgs = append(msgs, fmt.Sprintf(c.msg, times[c.faster], times[c.slower]))
			}
		}
		return msgs
	}
	msgs := failures(run())
	if len(msgs) > 0 {
		msgs = failures(run())
	}
	for _, m := range msgs {
		t.Error(m)
	}
}

// TestASRPathRuns exercises the §7.2 study end to end and checks both
// evaluation strategies return and are timed.
func TestASRPathRuns(t *testing.T) {
	pts, err := RunASRPath(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("points = %d, want 4 (fanout × path length)", len(pts))
	}
	for _, p := range pts {
		if p.Conventional <= 0 || p.ASRTime <= 0 {
			t.Errorf("untimed point %+v", p)
		}
	}
	// The ASR grows with fanout (a tuple per full path), the effect behind
	// the paper's fanout-4 slowdown.
	var f1, f4 int
	for _, p := range pts {
		if p.Fanout == 1 {
			f1 = p.ASRRows
		} else {
			f4 = p.ASRRows
		}
	}
	if f4 <= f1 {
		t.Errorf("ASR rows should grow with fanout: f1=%d f4=%d", f1, f4)
	}
}

// TestRandomizedDeleteRuns confirms the §7.1.2 replication executes and
// keeps the per-tuple trigger ahead on random workloads.
func TestRandomizedDeleteRuns(t *testing.T) {
	fig, err := RunRandomizedDelete(Config{Runs: 2, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	perTuple := findSeries(t, fig, "per-tuple trigger")
	perStm := findSeries(t, fig, "per-stm trigger")
	if last(perTuple).Seconds >= last(perStm).Seconds {
		t.Errorf("per-tuple (%.6fs) should beat per-statement (%.6fs) on randomized docs",
			last(perTuple).Seconds, last(perStm).Seconds)
	}
}

func TestWriteFigureFormat(t *testing.T) {
	fig := &Figure{
		ID: "figX", Title: "demo", XLabel: "x",
		Series: []Series{{Method: "m", Points: []Point{{X: 1, Seconds: 0.5, Statements: 2, RowsScanned: 3, Tuples: 4}}}},
	}
	var b strings.Builder
	WriteFigure(&b, fig)
	out := b.String()
	for _, frag := range []string{"figX", "method: m", "0.500000"} {
		if !strings.Contains(out, frag) {
			t.Errorf("output missing %q:\n%s", frag, out)
		}
	}
}

// TestConcurrentReadersShape runs the snapshot-read scenario at quick scale:
// every point must complete, report positive throughput, and observe the
// same store (the writer's transactions all roll back). The speedup column
// is not asserted — it is bounded by GOMAXPROCS, which is 1 on CI-sized
// containers.
func TestConcurrentReadersShape(t *testing.T) {
	pts, err := RunConcurrentReaders(Config{Runs: 1, Quick: true}, 2, "rollback")
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 || pts[0].Readers != 1 || pts[1].Readers != 2 {
		t.Fatalf("unexpected points: %+v", pts)
	}
	for _, p := range pts {
		if p.Seconds <= 0 || p.QueriesSec <= 0 {
			t.Errorf("degenerate point: %+v", p)
		}
		if p.Snapshots == 0 {
			t.Errorf("writer registered no snapshots: %+v", p)
		}
	}
	var b strings.Builder
	WriteConcurrentReads(&b, pts)
	if !strings.Contains(b.String(), "readers") {
		t.Errorf("output missing header:\n%s", b.String())
	}
}

// TestConcurrentReadersLiveWriterShape runs the live-commit variant: the
// writer's renumber/restore transactions all commit, so readers overlap
// genuine version chains, and the document must end at its base state.
func TestConcurrentReadersLiveWriterShape(t *testing.T) {
	pts, err := RunConcurrentReaders(Config{Runs: 1, Quick: true}, 2, "live")
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("unexpected points: %+v", pts)
	}
	for _, p := range pts {
		if p.Seconds <= 0 || p.QueriesSec <= 0 {
			t.Errorf("degenerate point: %+v", p)
		}
		if p.WriterMode != "live" {
			t.Errorf("point mode %q, want live", p.WriterMode)
		}
		if p.Snapshots == 0 {
			t.Errorf("live writer registered no snapshots: %+v", p)
		}
		if p.Conflicts != 0 {
			t.Errorf("single-writer workload reported %d conflicts", p.Conflicts)
		}
	}
	var b strings.Builder
	WriteConcurrentReads(&b, pts)
	if !strings.Contains(b.String(), "live commits") {
		t.Errorf("output missing live-writer header:\n%s", b.String())
	}
}

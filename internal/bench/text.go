package bench

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"repro/internal/datagen"
	"repro/internal/outerunion"
	"repro/internal/relational"
	"repro/internal/shred"
)

// TEXT-heavy kernels measured as an interleaved A/B against the interning
// ablation: the same catalog document is shredded into two databases, one
// with the intern table active (the default) and one with interning
// disabled, and each kernel alternates runs between them so scheduler and
// GC drift land on both sides equally. Wall time is min-of-N; malloc counts
// are the stable signal (see the benchmarking protocol in DESIGN.md).

// TextResult is one kernel's paired measurement.
type TextResult struct {
	Name string
	// Interned ran against the symbol-keyed database, Ablated against the
	// byte-keyed one. Rows match by construction (identical data; the
	// equivalence tests enforce identical answers).
	Interned MicroResult
	Ablated  MicroResult
	// WallSpeedup is Ablated.MinSeconds / Interned.MinSeconds (>1 means
	// interning is faster); AllocRatio is Interned/Ablated mallocs per op
	// (<1 means interning allocates less).
	WallSpeedup float64
	AllocRatio  float64
}

// textCatalog sizes the attribute-heavy document.
func textCatalog(cfg Config) datagen.CatalogParams {
	if cfg.Quick {
		return datagen.CatalogParams{Suppliers: 16, Items: 2_000, Seed: 11}
	}
	return datagen.CatalogParams{Suppliers: 40, Items: 20_000, Seed: 11}
}

// loadCatalog shreds the document into a fresh DB; ablate disables
// interning before any row is stored.
func loadCatalog(p datagen.CatalogParams, ablate bool) (*relational.DB, *shred.Mapping, error) {
	doc := datagen.Catalog(p)
	m, err := shred.BuildMapping(doc.DTD, doc.Root.Name, shred.Options{OrderColumn: true})
	if err != nil {
		return nil, nil, err
	}
	db := relational.NewDB()
	if ablate {
		db.DisableInterning()
	}
	if _, err := shred.Load(db, m, doc); err != nil {
		return nil, nil, err
	}
	return db, m, nil
}

// measurePair interleaves runs of the interned and ablated forms of one
// kernel: warm both once, then alternate I,A,I,A…, attributing wall time
// and malloc counts per side from per-run MemStats deltas.
func measurePair(name string, runs int, interned, ablated func() (int, error)) (TextResult, error) {
	res := TextResult{Name: name}
	res.Interned.Name = name + "/interned"
	res.Ablated.Name = name + "/ablated"
	sides := [2]*MicroResult{&res.Interned, &res.Ablated}
	ops := [2]func() (int, error){interned, ablated}
	for s, op := range ops {
		rows, err := op()
		if err != nil {
			return res, fmt.Errorf("%s warm-up: %w", sides[s].Name, err)
		}
		sides[s].Rows = rows
	}
	runtime.GC()
	var ms0, ms1 runtime.MemStats
	for i := 0; i < runs; i++ {
		for s, op := range ops {
			runtime.ReadMemStats(&ms0)
			start := time.Now()
			if _, err := op(); err != nil {
				return res, fmt.Errorf("%s: %w", sides[s].Name, err)
			}
			elapsed := time.Since(start).Seconds()
			runtime.ReadMemStats(&ms1)
			if sides[s].MinSeconds == 0 || elapsed < sides[s].MinSeconds {
				sides[s].MinSeconds = elapsed
			}
			sides[s].AllocsPerOp += float64(ms1.Mallocs-ms0.Mallocs) / float64(runs)
			sides[s].BytesPerOp += float64(ms1.TotalAlloc-ms0.TotalAlloc) / float64(runs)
		}
	}
	for _, side := range sides {
		if side.Rows > 0 {
			side.AllocsPerRow = side.AllocsPerOp / float64(side.Rows)
		}
	}
	if res.Interned.MinSeconds > 0 {
		res.WallSpeedup = res.Ablated.MinSeconds / res.Interned.MinSeconds
	}
	if res.Ablated.AllocsPerOp > 0 {
		res.AllocRatio = res.Interned.AllocsPerOp / res.Ablated.AllocsPerOp
	}
	return res, nil
}

// RunText runs the TEXT kernel suite: equality scan, transient hash join,
// DISTINCT, and text-predicate SOU reconstruction, each interned vs
// ablated.
func RunText(cfg Config) ([]TextResult, error) {
	p := textCatalog(cfg)
	dbI, m, err := loadCatalog(p, false)
	if err != nil {
		return nil, err
	}
	dbA, _, err := loadCatalog(p, true)
	if err != nil {
		return nil, err
	}

	stream := func(db *relational.DB, q string) func() (int, error) {
		return func() (int, error) {
			n := 0
			_, err := db.QueryEach(q, func([]relational.Value) error { n++; return nil })
			return n, err
		}
	}
	runs := cfg.runs()
	var out []TextResult
	add := func(name, q string) error {
		r, err := measurePair(name, runs, stream(dbI, q), stream(dbA, q))
		if err != nil {
			return err
		}
		out = append(out, r)
		return nil
	}

	// Equality on a low-cardinality attribute: one symbol compare per row
	// on the interned side, full byte compare on the ablated side.
	if err := add("text-eq-scan",
		`SELECT id FROM item WHERE a_status = 'urn:catalog:status:active' AND a_category != 'urn:catalog:category:misc'`); err != nil {
		return nil, err
	}
	// Transient hash join on vendor name: build keys on supplier.name_v,
	// probe with item.a_vendor — symbol-keyed buckets when both interned.
	if err := add("text-hash-join",
		`SELECT i.id FROM item i, supplier s WHERE i.a_vendor = s.name_v`); err != nil {
		return nil, err
	}
	// DISTINCT over two text columns: dedup keys are 5-byte symbol tags
	// interned, full string encodings ablated.
	if err := add("text-distinct",
		`SELECT DISTINCT a_vendor, a_category FROM item`); err != nil {
		return nil, err
	}
	// IN-subquery membership: the set is built from interned supplier
	// names, probed with interned vendor values.
	if err := add("text-in-subquery",
		`SELECT id FROM item WHERE a_vendor IN (SELECT name_v FROM supplier WHERE region_v = 'north')`); err != nil {
		return nil, err
	}
	// SOU reconstruction gated by a text predicate: the streaming read path
	// with a symbol-comparable filter in front.
	souOp := func(db *relational.DB) func() (int, error) {
		return func() (int, error) {
			subs, err := outerunion.Query(db, m, "item", "a_status = 'urn:catalog:status:discontinued'")
			if err != nil {
				return 0, err
			}
			n := 0
			for _, st := range subs {
				for _, ids := range st.IDs {
					n += len(ids)
				}
			}
			return n, nil
		}
	}
	r, err := measurePair("text-sou-reconstruct", runs, souOp(dbI), souOp(dbA))
	if err != nil {
		return nil, err
	}
	out = append(out, r)
	recordStats(dbI)
	recordStats(dbA)
	return out, nil
}

// WriteText prints the paired suite.
func WriteText(w io.Writer, res []TextResult) {
	fmt.Fprintln(w, "# text — TEXT kernels, interned vs interning-disabled ablation (interleaved A/B)")
	fmt.Fprintf(w, "%-22s %8s %14s %14s %9s %12s %12s %8s\n",
		"kernel", "rows", "interned (s)", "ablated (s)", "speedup", "allocs I/op", "allocs A/op", "ratio")
	for _, r := range res {
		fmt.Fprintf(w, "%-22s %8d %14.6f %14.6f %8.2fx %12.1f %12.1f %8.3f\n",
			r.Name, r.Interned.Rows, r.Interned.MinSeconds, r.Ablated.MinSeconds,
			r.WallSpeedup, r.Interned.AllocsPerOp, r.Ablated.AllocsPerOp, r.AllocRatio)
	}
}

// Package bench reproduces the paper's experimental evaluation (§7): one
// runner per figure and table, each regenerating the same series the paper
// plots — delete methods across scaling factor and depth (Figures 6–9),
// insert methods across depth (Figures 10–11), the DBLP workload (Table 2),
// and the §7.2 ASR path-expression study.
package bench

import (
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"strings"
	"time"

	"repro/internal/asr"
	"repro/internal/datagen"
	"repro/internal/engine"
	"repro/internal/relational"
	"repro/internal/shred"
)

// Point is one measurement.
type Point struct {
	// X is the independent variable (scaling factor or depth).
	X int
	// Seconds is the mean wall time of the measured operation (first run
	// discarded, like the paper's methodology). MinSeconds is the fastest
	// measured run — the least GC-noisy estimator, which the shape tests
	// compare at quick scale.
	Seconds    float64
	MinSeconds float64
	// Statements and RowsScanned expose the engine's cost model.
	Statements  int64
	RowsScanned int64
	// IndexProbes and FullScans expose the access paths the executor chose;
	// PlanHits and PlanMisses expose prepared-plan cache effectiveness.
	IndexProbes int64
	FullScans   int64
	PlanHits    int64
	PlanMisses  int64
	// RangeProbes counts B+tree range windows walked; SortPasses and
	// RowsSorted count blocking sorts actually run — sort elision on
	// ordered access paths shows up as zeros here.
	RangeProbes int64
	SortPasses  int64
	RowsSorted  int64
	// Tuples is the document size in tuples.
	Tuples int
}

// Series is one method's curve.
type Series struct {
	Method string
	Points []Point
}

// Figure is a regenerated figure: series over a common x-axis.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	Series []Series
}

// Config controls experiment scale.
type Config struct {
	// Runs is the number of measured runs per point; one extra warm-up run
	// is performed and discarded (§7: five runs, first discarded).
	Runs int
	// Quick shrinks the parameter grid for tests.
	Quick bool
}

// DefaultConfig mirrors the paper's methodology.
func DefaultConfig() Config { return Config{Runs: 4} }

func (c Config) runs() int {
	if c.Runs <= 0 {
		return 2
	}
	return c.Runs
}

func (c Config) scalingFactors() []int {
	if c.Quick {
		return []int{25, 50, 100}
	}
	return []int{100, 200, 400, 800}
}

func (c Config) depths() []int {
	if c.Quick {
		// Depth 4 keeps the bulk workload in the many-tuples regime where
		// Figure 10's table-beats-tuple shape holds: the prepared-plan
		// cache cut the tuple method's per-statement cost, so at shallow
		// depths the two methods now run neck and neck.
		return []int{3, 4}
	}
	return []int{2, 3, 4, 5}
}

// measure opens the store once, snapshots it, and times op Runs+1 times with
// a state restore between runs, discarding the first (warm-up) run — the
// paper's five-runs-drop-first methodology. A collection runs up front so
// one method's garbage does not tax the next method's timings.
func measure(runs int, setup func() (*engine.Store, error), op func(*engine.Store) error) (Point, error) {
	var total float64
	var pt Point
	s, err := setup()
	if err != nil {
		return pt, err
	}
	snap := s.Snapshot()
	pt.Tuples = s.TupleCount() // document size before the operation
	runtime.GC()
	for i := 0; i <= runs; i++ {
		s.DB.ResetStats()
		start := time.Now()
		if err := op(s); err != nil {
			return pt, err
		}
		elapsed := time.Since(start).Seconds()
		if i > 0 {
			total += elapsed
			if pt.MinSeconds == 0 || elapsed < pt.MinSeconds {
				pt.MinSeconds = elapsed
			}
			st := s.DB.Stats()
			recordStatsDelta(st)
			pt.Statements = st.Statements
			pt.RowsScanned = st.RowsScanned
			pt.IndexProbes = st.IndexProbes
			pt.FullScans = st.FullScans
			pt.PlanHits = st.PlanCacheHits
			pt.PlanMisses = st.PlanCacheMisses
			pt.RangeProbes = st.RangeProbes
			pt.SortPasses = st.SortPasses
			pt.RowsSorted = st.RowsSorted
		}
		s.Restore(snap)
	}
	pt.Seconds = total / float64(runs)
	return pt, nil
}

// deleteMethodsForFigures matches the paper's plotted series (cascade is
// omitted from the graphs because it tracks per-statement triggers within
// ~5%; RunCascadeComparison covers that claim).
var deleteMethodsForFigures = []engine.DeleteMethod{
	engine.ASRDelete, engine.PerStatementTrigger, engine.PerTupleTrigger,
}

// randomSubtreeIDs picks n distinct e1 tuple ids (the root-level subtrees)
// deterministically.
func randomSubtreeIDs(s *engine.Store, n int, seed int64) ([]int64, error) {
	rows, err := s.DB.Query(fmt.Sprintf("SELECT id FROM %s", s.M.Table("e1").Name))
	if err != nil {
		return nil, err
	}
	ids := make([]int64, len(rows.Data))
	for i, r := range rows.Data {
		ids[i] = r[0].MustInt()
	}
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
	if n > len(ids) {
		n = len(ids)
	}
	return ids[:n], nil
}

// bulkDelete removes every subtree of the root (§7.1: "a bulk delete would
// leave only the root element"), one SQL statement.
func bulkDelete(s *engine.Store) error {
	_, err := s.DeleteSubtrees("e1", "")
	return err
}

// randomDelete removes 10 randomly chosen subtrees, one statement each.
func randomDelete(s *engine.Store) error {
	ids, err := randomSubtreeIDs(s, 10, 17)
	if err != nil {
		return err
	}
	for _, id := range ids {
		if _, err := s.DeleteSubtrees("e1", fmt.Sprintf("id = %d", id)); err != nil {
			return err
		}
	}
	return nil
}

func deleteFigure(cfg Config, id, title, xlabel string, xs []int, param func(x int) datagen.FixedParams, workload func(*engine.Store) error) (*Figure, error) {
	fig := &Figure{ID: id, Title: title, XLabel: xlabel}
	for _, m := range deleteMethodsForFigures {
		series := Series{Method: m.String()}
		for _, x := range xs {
			p := param(x)
			doc := datagen.Fixed(p)
			method := m
			pt, err := measure(cfg.runs(), func() (*engine.Store, error) {
				return engine.Open(doc, engine.Options{Delete: method})
			}, workload)
			if err != nil {
				return nil, fmt.Errorf("%s/%s x=%d: %w", id, m, x, err)
			}
			pt.X = x
			series.Points = append(series.Points, pt)
		}
		fig.Series = append(fig.Series, series)
	}
	return fig, nil
}

// RunFig6 regenerates Figure 6: delete performance, bulk workload, fixed
// fanout=1, depth=8, scaling factor on the x-axis.
func RunFig6(cfg Config) (*Figure, error) {
	return deleteFigure(cfg, "fig6", "Delete performance on bulk workload, fixed fanout=1, depth=8", "scaling factor",
		cfg.scalingFactors(), func(sf int) datagen.FixedParams {
			return datagen.FixedParams{ScalingFactor: sf, Depth: 8, Fanout: 1, Seed: 1}
		}, bulkDelete)
}

// RunFig7 regenerates Figure 7: delete performance, random workload, fixed
// fanout=1, depth=8.
func RunFig7(cfg Config) (*Figure, error) {
	return deleteFigure(cfg, "fig7", "Delete performance on random workload, fixed fanout=1, depth=8", "scaling factor",
		cfg.scalingFactors(), func(sf int) datagen.FixedParams {
			return datagen.FixedParams{ScalingFactor: sf, Depth: 8, Fanout: 1, Seed: 1}
		}, randomDelete)
}

// RunFig8 regenerates Figure 8: delete performance, bulk workload, fixed
// scaling factor=100, fanout=4, depth on the x-axis.
func RunFig8(cfg Config) (*Figure, error) {
	return deleteFigure(cfg, "fig8", "Delete performance on bulk workload, fixed scaling factor=100, fanout=4", "depth",
		cfg.depths(), func(d int) datagen.FixedParams {
			return datagen.FixedParams{ScalingFactor: sfForDepthSweep(cfg), Depth: d, Fanout: 4, Seed: 1}
		}, bulkDelete)
}

// RunFig9 regenerates Figure 9: delete performance, random workload, fixed
// scaling factor=100, fanout=4.
func RunFig9(cfg Config) (*Figure, error) {
	return deleteFigure(cfg, "fig9", "Delete performance on random workload, fixed scaling factor=100, fanout=4", "depth",
		cfg.depths(), func(d int) datagen.FixedParams {
			return datagen.FixedParams{ScalingFactor: sfForDepthSweep(cfg), Depth: d, Fanout: 4, Seed: 1}
		}, randomDelete)
}

func sfForDepthSweep(cfg Config) int {
	if cfg.Quick {
		return 20
	}
	return 100
}

var insertMethodsForFigures = []engine.InsertMethod{
	engine.TupleInsert, engine.TableInsert, engine.ASRInsert,
}

// bulkInsert replicates every subtree of the root (§7.4).
func bulkInsert(s *engine.Store) error {
	_, err := s.CopySubtrees("e1", "", 1)
	return err
}

// randomInsert replicates 10 randomly chosen subtrees.
func randomInsert(s *engine.Store) error {
	ids, err := randomSubtreeIDs(s, 10, 23)
	if err != nil {
		return err
	}
	for _, id := range ids {
		if _, err := s.CopySubtrees("e1", fmt.Sprintf("id = %d", id), 1); err != nil {
			return err
		}
	}
	return nil
}

func insertFigure(cfg Config, id, title string, workload func(*engine.Store) error) (*Figure, error) {
	fig := &Figure{ID: id, Title: title, XLabel: "depth"}
	for _, m := range insertMethodsForFigures {
		series := Series{Method: m.String()}
		for _, d := range cfg.depths() {
			p := datagen.FixedParams{ScalingFactor: sfForDepthSweep(cfg), Depth: d, Fanout: 4, Seed: 1}
			doc := datagen.Fixed(p)
			method := m
			pt, err := measure(cfg.runs(), func() (*engine.Store, error) {
				return engine.Open(doc, engine.Options{Insert: method})
			}, workload)
			if err != nil {
				return nil, fmt.Errorf("%s/%s d=%d: %w", id, m, d, err)
			}
			pt.X = d
			series.Points = append(series.Points, pt)
		}
		fig.Series = append(fig.Series, series)
	}
	return fig, nil
}

// RunFig10 regenerates Figure 10: insert performance, bulk workload, fixed
// scaling factor=100, fanout=4.
func RunFig10(cfg Config) (*Figure, error) {
	return insertFigure(cfg, "fig10", "Insert performance, bulk workload, fixed scaling factor=100, fanout=4", bulkInsert)
}

// RunFig11 regenerates Figure 11: insert performance, random workload, fixed
// scaling factor=100, fanout=4.
func RunFig11(cfg Config) (*Figure, error) {
	return insertFigure(cfg, "fig11", "Insert performance, random workload, fixed scaling factor=100, fanout=4", randomInsert)
}

// RunCascadeComparison checks the §7.3 claim that the cascading delete
// performs within a few percent of per-statement triggers (it simulates them
// at the application level).
func RunCascadeComparison(cfg Config) (*Figure, error) {
	fig := &Figure{ID: "cascade", Title: "Cascading delete vs per-statement trigger, bulk workload, fanout=1, depth=8", XLabel: "scaling factor"}
	for _, m := range []engine.DeleteMethod{engine.PerStatementTrigger, engine.CascadingDelete} {
		series := Series{Method: m.String()}
		for _, sf := range cfg.scalingFactors() {
			doc := datagen.Fixed(datagen.FixedParams{ScalingFactor: sf, Depth: 8, Fanout: 1, Seed: 1})
			method := m
			pt, err := measure(cfg.runs(), func() (*engine.Store, error) {
				return engine.Open(doc, engine.Options{Delete: method})
			}, bulkDelete)
			if err != nil {
				return nil, err
			}
			pt.X = sf
			series.Points = append(series.Points, pt)
		}
		fig.Series = append(fig.Series, series)
	}
	return fig, nil
}

// RunRandomizedDelete repeats the delete comparison on randomized synthetic
// documents (§7.1.2; the paper reports the results were similar and omits
// them).
func RunRandomizedDelete(cfg Config) (*Figure, error) {
	fig := &Figure{ID: "randdoc", Title: "Delete performance on randomized documents, random workload", XLabel: "scaling factor"}
	for _, m := range deleteMethodsForFigures {
		series := Series{Method: m.String()}
		for _, sf := range cfg.scalingFactors() {
			doc := datagen.Randomized(datagen.RandomizedParams{ScalingFactor: sf, MaxDepth: 6, MaxFanout: 4, Seed: 3})
			method := m
			pt, err := measure(cfg.runs(), func() (*engine.Store, error) {
				return engine.Open(doc, engine.Options{Delete: method})
			}, randomDelete)
			if err != nil {
				return nil, err
			}
			pt.X = sf
			series.Points = append(series.Points, pt)
		}
		fig.Series = append(fig.Series, series)
	}
	return fig, nil
}

// Table2Row is one cell row of Table 2.
type Table2Row struct {
	Operation  string
	Method     string
	Seconds    float64
	MinSeconds float64
}

// RunTable2 regenerates Table 2: delete and insert running times on the
// DBLP-like data set. Deletes remove the year-2000 publications; inserts
// copy them (within the document, under the first conference).
func RunTable2(cfg Config) ([]Table2Row, error) {
	p := datagen.DBLPParams{Conferences: 40, PubsPerConf: 60, Seed: 11}
	if cfg.Quick {
		// Still large enough that the year-2000 copy set is "many tuples":
		// with a tiny copy set the tuple method legitimately wins (§6.2.1),
		// which is the Figure 11 small-copy regime, not the Table 2 one.
		// The prepared-plan cache cut the tuple method's per-statement cost,
		// so the crossover sits higher than it did when every INSERT
		// re-parsed; quick scale must stay above it.
		p = datagen.DBLPParams{Conferences: 30, PubsPerConf: 60, Seed: 11}
	}
	doc := datagen.DBLP(p)
	var rows []Table2Row
	for _, m := range []engine.DeleteMethod{engine.PerTupleTrigger, engine.PerStatementTrigger, engine.CascadingDelete, engine.ASRDelete} {
		method := m
		pt, err := measure(cfg.runs(), func() (*engine.Store, error) {
			return engine.Open(doc, engine.Options{Delete: method})
		}, func(s *engine.Store) error {
			_, err := s.DeleteSubtrees("publication", "a_year = '2000'")
			return err
		})
		if err != nil {
			return nil, fmt.Errorf("table2 delete %s: %w", m, err)
		}
		rows = append(rows, Table2Row{Operation: "delete", Method: m.String(), Seconds: pt.Seconds, MinSeconds: pt.MinSeconds})
	}
	for _, m := range []engine.InsertMethod{engine.ASRInsert, engine.TableInsert, engine.TupleInsert} {
		method := m
		pt, err := measure(cfg.runs(), func() (*engine.Store, error) {
			return engine.Open(doc, engine.Options{Insert: method})
		}, func(s *engine.Store) error {
			rows, err := s.DB.Query(fmt.Sprintf("SELECT MIN(id) FROM %s", s.M.Table("conference").Name))
			if err != nil {
				return err
			}
			dst := rows.Data[0][0].MustInt()
			_, err = s.CopySubtrees("publication", "a_year = '2000'", dst)
			return err
		})
		if err != nil {
			return nil, fmt.Errorf("table2 insert %s: %w", m, err)
		}
		rows = append(rows, Table2Row{Operation: "insert", Method: m.String(), Seconds: pt.Seconds, MinSeconds: pt.MinSeconds})
	}
	return rows, nil
}

// ASRPathPoint is one §7.2 measurement: conventional multiway join versus
// ASR two-join evaluation of a path expression.
type ASRPathPoint struct {
	Fanout       int
	PathLen      int
	Conventional float64
	ASRTime      float64
	ASRRows      int
}

// RunASRPath reproduces the §7.2 path-expression study: path expressions of
// length 3 and 4 over documents with fanout 1 and 4.
func RunASRPath(cfg Config) ([]ASRPathPoint, error) {
	var out []ASRPathPoint
	sf := 100
	if cfg.Quick {
		sf = 20
	}
	for _, fanout := range []int{1, 4} {
		doc := datagen.Fixed(datagen.FixedParams{ScalingFactor: sf, Depth: 5, Fanout: fanout, Seed: 9})
		m, err := shred.BuildMapping(doc.DTD, doc.Root.Name, shred.Options{})
		if err != nil {
			return nil, err
		}
		db := relational.NewDB()
		if _, err := shred.Load(db, m, doc); err != nil {
			return nil, err
		}
		a, err := asr.Build(db, m)
		if err != nil {
			return nil, err
		}
		for _, plen := range []int{3, 4} {
			leaf := fmt.Sprintf("e%d", plen)
			// Pick an existing payload value so the query selects rows.
			probe, err := db.Query(fmt.Sprintf("SELECT %s FROM %s", colV("k", plen), m.Table(leaf).Name))
			if err != nil {
				return nil, err
			}
			val := relational.FormatValue(probe.Data[len(probe.Data)/2][0])

			conventional := conventionalPathSQL(m, plen, val)
			asrSQL, err := a.PathQuerySQL("e1", leaf, "S."+colV("s", 1), fmt.Sprintf("L.%s = %s", colV("k", plen), val))
			if err != nil {
				return nil, err
			}
			convTime, err := timeQuery(db, conventional, cfg.runs())
			if err != nil {
				return nil, fmt.Errorf("conventional: %w", err)
			}
			asrTime, err := timeQuery(db, asrSQL, cfg.runs())
			if err != nil {
				return nil, fmt.Errorf("asr: %w", err)
			}
			out = append(out, ASRPathPoint{
				Fanout:       fanout,
				PathLen:      plen,
				Conventional: convTime,
				ASRTime:      asrTime,
				ASRRows:      db.Table("ASR").RowCount(),
			})
		}
		recordStats(db)
	}
	return out, nil
}

func colV(kind string, level int) string { return fmt.Sprintf("%s%d_v", kind, level) }

// BuildASR exposes ASR construction for the root benchmark harness.
func BuildASR(db *relational.DB, m *shred.Mapping) (*asr.ASR, error) {
	return asr.Build(db, m)
}

// PathQueries returns the conventional-join and ASR-join SQL for a §7.2 path
// query of the given length over a loaded fixed synthetic document.
func PathQueries(db *relational.DB, m *shred.Mapping, a *asr.ASR, plen int) (conventional, asrSQL string, err error) {
	leaf := fmt.Sprintf("e%d", plen)
	probe, err := db.Query(fmt.Sprintf("SELECT %s FROM %s", colV("k", plen), m.Table(leaf).Name))
	if err != nil {
		return "", "", err
	}
	if len(probe.Data) == 0 {
		return "", "", fmt.Errorf("bench: empty leaf table %s", leaf)
	}
	val := relational.FormatValue(probe.Data[len(probe.Data)/2][0])
	conventional = conventionalPathSQL(m, plen, val)
	asrSQL, err = a.PathQuerySQL("e1", leaf, "S."+colV("s", 1), fmt.Sprintf("L.%s = %s", colV("k", plen), val))
	return conventional, asrSQL, err
}

// conventionalPathSQL joins the data relations along the path e1→…→eL.
func conventionalPathSQL(m *shred.Mapping, plen int, val string) string {
	var from []string
	var conds []string
	for i := 1; i <= plen; i++ {
		from = append(from, fmt.Sprintf("%s E%d", m.Table(fmt.Sprintf("e%d", i)).Name, i))
		if i > 1 {
			conds = append(conds, fmt.Sprintf("E%d.parentId = E%d.id", i, i-1))
		}
	}
	conds = append(conds, fmt.Sprintf("E%d.%s = %s", plen, colV("k", plen), val))
	return fmt.Sprintf("SELECT E1.%s FROM %s WHERE %s", colV("s", 1), strings.Join(from, ", "), strings.Join(conds, " AND "))
}

func timeQuery(db *relational.DB, sql string, runs int) (float64, error) {
	var total float64
	for i := 0; i <= runs; i++ {
		start := time.Now()
		if _, err := db.Query(sql); err != nil {
			return 0, err
		}
		if i > 0 {
			total += time.Since(start).Seconds()
		}
	}
	return total / float64(runs), nil
}

// WriteFigure prints a figure as aligned columns, one block per series —
// the same rows/series the paper plots.
func WriteFigure(w io.Writer, fig *Figure) {
	fmt.Fprintf(w, "# %s — %s\n", fig.ID, fig.Title)
	for _, s := range fig.Series {
		fmt.Fprintf(w, "## method: %s\n", s.Method)
		fmt.Fprintf(w, "%-16s %12s %12s %14s %12s %10s %10s %10s %10s %10s %10s %10s\n",
			fig.XLabel, "time (s)", "statements", "rows scanned", "idx probes", "scans", "rng probes", "sorts", "rows srtd", "plan hit", "plan miss", "tuples")
		for _, p := range s.Points {
			fmt.Fprintf(w, "%-16d %12.6f %12d %14d %12d %10d %10d %10d %10d %10d %10d %10d\n",
				p.X, p.Seconds, p.Statements, p.RowsScanned, p.IndexProbes, p.FullScans,
				p.RangeProbes, p.SortPasses, p.RowsSorted, p.PlanHits, p.PlanMisses, p.Tuples)
		}
	}
}

// WriteTable2 prints Table 2 in the paper's layout.
func WriteTable2(w io.Writer, rows []Table2Row) {
	fmt.Fprintln(w, "# table2 — Experimental results on DBLP data (seconds)")
	fmt.Fprintf(w, "%-10s %-20s %12s\n", "operation", "method", "time (s)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %-20s %12.6f\n", r.Operation, r.Method, r.Seconds)
	}
}

// WriteASRPath prints the §7.2 study.
func WriteASRPath(w io.Writer, pts []ASRPathPoint) {
	fmt.Fprintln(w, "# asrpath — §7.2 ASR path-expression evaluation (seconds)")
	fmt.Fprintf(w, "%-8s %-10s %14s %12s %10s\n", "fanout", "path len", "conventional", "asr", "asr rows")
	for _, p := range pts {
		fmt.Fprintf(w, "%-8d %-10d %14.6f %12.6f %10d\n", p.Fanout, p.PathLen, p.Conventional, p.ASRTime, p.ASRRows)
	}
}

package bench

import (
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/relational"
)

// The obsv experiment prices the observability layer itself: commit latency
// distributions straight from the engine's always-on histograms (rather
// than wall-clocking from outside), and an A/B measurement of the tracing
// hook's per-statement cost — the number that backs the "zero overhead when
// off, cheap when on" design claim.

// ObsvCommitPoint is one fsync mode's commit latency distribution, read
// from the engine's commit_ns_<mode> histogram after a serial update burst.
type ObsvCommitPoint struct {
	Mode    string
	Commits int64
	P50us   float64
	P99us   float64
	MeanUs  float64
}

// ObsvOverhead is the tracing A/B: the same query batch timed with the
// trace gate off and with a hook registered.
type ObsvOverhead struct {
	Statements  int
	OffNsPerOp  float64
	OnNsPerOp   float64
	OverheadPct float64
}

// ObsvTrace is one captured statement span (the -trace flag's output).
type ObsvTrace struct {
	Kind     string
	SQL      string
	TotalUs  float64
	CommitUs float64
	Rows     int
}

// ObsvResult bundles the experiment's three views.
type ObsvResult struct {
	Commit   []ObsvCommitPoint
	Overhead ObsvOverhead
	Analyze  string
	Traces   []ObsvTrace
}

// RunObsv measures commit latency per fsync mode via the metrics layer,
// the tracing on/off overhead, and captures an EXPLAIN ANALYZE of a
// representative join. With trace set, it also records the spans of a
// small durable workload.
func RunObsv(cfg Config, trace bool) (*ObsvResult, error) {
	res := &ObsvResult{}
	commits := 96
	if cfg.Quick {
		commits = 24
	}
	for _, mode := range []relational.SyncMode{relational.SyncAlways, relational.SyncGroup, relational.SyncOff} {
		pt, err := obsvCommitLatency(mode, commits)
		if err != nil {
			return nil, err
		}
		res.Commit = append(res.Commit, pt)
	}

	over, analyze, err := obsvOverhead(cfg)
	if err != nil {
		return nil, err
	}
	res.Overhead = over
	res.Analyze = analyze

	if trace {
		spans, err := obsvTraces()
		if err != nil {
			return nil, err
		}
		res.Traces = spans
	}
	return res, nil
}

// obsvCommitLatency runs a serial single-row-update burst under one fsync
// mode and reads the distribution back from the commit histogram.
func obsvCommitLatency(mode relational.SyncMode, commits int) (ObsvCommitPoint, error) {
	var pt ObsvCommitPoint
	dir, err := os.MkdirTemp("", "xbench-obsv-")
	if err != nil {
		return pt, err
	}
	defer os.RemoveAll(dir)
	db, err := relational.Open(dir, relational.Options{Sync: mode, CheckpointBytes: -1})
	if err != nil {
		return pt, err
	}
	defer db.Close()
	if _, err := db.Exec("CREATE TABLE item (id INTEGER, v VARCHAR(64))"); err != nil {
		return pt, err
	}
	if _, err := db.Exec("INSERT INTO item VALUES (1, 'seed')"); err != nil {
		return pt, err
	}
	upd, err := db.Prepare("UPDATE item SET v = ? WHERE id = 1")
	if err != nil {
		return pt, err
	}
	for i := 0; i < commits; i++ {
		if _, err := upd.Exec(relational.Text(fmt.Sprintf("v%d", i))); err != nil {
			return pt, err
		}
	}
	recordStats(db)
	h := db.Metrics().Histograms["commit_ns_"+mode.String()]
	pt = ObsvCommitPoint{
		Mode:    mode.String(),
		Commits: h.Count,
		P50us:   float64(h.Quantile(0.50)) / 1e3,
		P99us:   float64(h.Quantile(0.99)) / 1e3,
		MeanUs:  h.Mean() / 1e3,
	}
	return pt, nil
}

// obsvDB builds the in-memory fixture the overhead A/B and the ANALYZE
// demo share: an indexed parent/child pair sized for a measurable join.
func obsvDB(rows int) (*relational.DB, error) {
	db := relational.NewDB()
	stmts := []string{
		"CREATE TABLE par (id INTEGER, grp INTEGER)",
		"CREATE TABLE kid (id INTEGER, parentId INTEGER, v INTEGER)",
		"CREATE INDEX k_pid ON kid (parentId)",
	}
	for _, s := range stmts {
		if _, err := db.Exec(s); err != nil {
			return nil, err
		}
	}
	for p := 0; p < rows/8; p++ {
		if _, err := db.Exec(fmt.Sprintf("INSERT INTO par VALUES (%d, %d)", p, p%4)); err != nil {
			return nil, err
		}
		for c := 0; c < 8; c++ {
			if _, err := db.Exec(fmt.Sprintf("INSERT INTO kid VALUES (%d, %d, %d)", p*8+c, p, c)); err != nil {
				return nil, err
			}
		}
	}
	return db, nil
}

func obsvOverhead(cfg Config) (ObsvOverhead, string, error) {
	var over ObsvOverhead
	rows := 4096
	iters := 300
	if cfg.Quick {
		rows, iters = 1024, 60
	}
	db, err := obsvDB(rows)
	if err != nil {
		return over, "", err
	}
	const q = "SELECT k.id FROM par p, kid k WHERE k.parentId = p.id AND k.v < 6"
	batch := func() error {
		for i := 0; i < iters; i++ {
			if _, err := db.QueryEach(q, func([]Value) error { return nil }); err != nil {
				return err
			}
		}
		return nil
	}
	timeBatch := func() (float64, error) {
		best := 0.0
		for r := 0; r <= cfg.runs(); r++ {
			start := time.Now()
			if err := batch(); err != nil {
				return 0, err
			}
			el := time.Since(start).Seconds()
			if r == 0 {
				continue
			}
			if best == 0 || el < best {
				best = el
			}
		}
		return best, nil
	}
	off, err := timeBatch()
	if err != nil {
		return over, "", err
	}
	cancel := db.OnTrace(func(*relational.QueryTrace) {})
	on, err := timeBatch()
	cancel()
	if err != nil {
		return over, "", err
	}
	over = ObsvOverhead{
		Statements: iters,
		OffNsPerOp: off / float64(iters) * 1e9,
		OnNsPerOp:  on / float64(iters) * 1e9,
	}
	if off > 0 {
		over.OverheadPct = (on - off) / off * 100
	}

	analyze, err := db.ExplainAnalyze(q)
	if err != nil {
		return over, "", err
	}
	recordStats(db)
	return over, analyze, nil
}

// Value aliases the relational row value for the QueryEach callback above.
type Value = relational.Value

// obsvTraces runs a short durable workload with a trace hook registered and
// returns the captured spans.
func obsvTraces() ([]ObsvTrace, error) {
	dir, err := os.MkdirTemp("", "xbench-trace-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	db, err := relational.Open(dir, relational.Options{Sync: relational.SyncGroup, CheckpointBytes: -1})
	if err != nil {
		return nil, err
	}
	defer db.Close()
	var spans []ObsvTrace
	cancel := db.OnTrace(func(qt *relational.QueryTrace) {
		spans = append(spans, ObsvTrace{
			Kind:     qt.Kind,
			SQL:      qt.SQL,
			TotalUs:  float64(qt.Total) / 1e3,
			CommitUs: float64(qt.Commit) / 1e3,
			Rows:     qt.Rows,
		})
	})
	defer cancel()
	work := []string{
		"CREATE TABLE evt (id INTEGER, tag VARCHAR(16))",
		"INSERT INTO evt VALUES (1, 'open')",
		"INSERT INTO evt VALUES (2, 'close')",
		"UPDATE evt SET tag = 'seen' WHERE id = 1",
		"SELECT id FROM evt WHERE tag != ''",
	}
	for _, s := range work {
		if strings.HasPrefix(s, "SELECT") {
			if _, err := db.Query(s); err != nil {
				return nil, err
			}
			continue
		}
		if _, err := db.Exec(s); err != nil {
			return nil, err
		}
	}
	recordStats(db)
	return spans, nil
}

// WriteObsv renders the experiment like the figure tables.
func WriteObsv(w io.Writer, res *ObsvResult) {
	fmt.Fprintln(w, "obsv: commit latency from the engine's metrics layer (single-row updates)")
	fmt.Fprintf(w, "%8s %9s %10s %10s %10s\n", "fsync", "commits", "p50(us)", "p99(us)", "mean(us)")
	for _, p := range res.Commit {
		fmt.Fprintf(w, "%8s %9d %10.1f %10.1f %10.1f\n", p.Mode, p.Commits, p.P50us, p.P99us, p.MeanUs)
	}
	o := res.Overhead
	fmt.Fprintf(w, "\nobsv: tracing overhead, %d-statement query batch (min-of-runs)\n", o.Statements)
	fmt.Fprintf(w, "%12s %12s %10s\n", "off(ns/op)", "on(ns/op)", "delta")
	fmt.Fprintf(w, "%12.0f %12.0f %9.1f%%\n", o.OffNsPerOp, o.OnNsPerOp, o.OverheadPct)
	fmt.Fprintln(w, "\nobsv: EXPLAIN ANALYZE, indexed join")
	fmt.Fprintln(w, res.Analyze)
	if len(res.Traces) > 0 {
		fmt.Fprintln(w, "obsv: statement traces (durable workload, group fsync)")
		fmt.Fprintf(w, "%-10s %10s %10s %6s  %s\n", "kind", "total(us)", "commit(us)", "rows", "sql")
		for _, tr := range res.Traces {
			fmt.Fprintf(w, "%-10s %10.1f %10.1f %6d  %s\n", tr.Kind, tr.TotalUs, tr.CommitUs, tr.Rows, tr.SQL)
		}
	}
}

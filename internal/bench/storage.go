package bench

import (
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/datagen"
	"repro/internal/engine"
	"repro/internal/relational"
)

// Storage experiment (PR10): prices the paged backend against the default
// in-memory backend along the three axes the design trades on — pool size
// vs scan cost (caching), checkpoint bytes (dirty-page redo vs whole-snapshot
// re-encode), and larger-than-RAM document reconstruction. Like readers and
// parallel it is opt-in (`-exp storage`), not part of "all": the sweep writes
// real page files and its timings are disk-sensitive.

// PoolSweepPoint is one pool-size measurement over a fixed paged dataset:
// repeated full scans with PoolPages resident frames.
type PoolSweepPoint struct {
	PoolPages int
	// FilePages is the physical page count of the dataset, so
	// PoolPages/FilePages is the fraction of the data that fits in RAM.
	FilePages int64
	// HitRatio is PoolHits/(PoolHits+PoolMisses) over the timed scans;
	// Evictions counts CLOCK victims during them.
	HitRatio  float64
	Evictions int64
	// Seconds is the min-of-runs wall time for one full scan, and
	// RowsPerSec the scan throughput derived from it.
	Seconds    float64
	RowsPerSec float64
}

// CheckpointCost is one side of the checkpoint A/B: the bytes and wall time
// one checkpoint costs after a small update batch touched Updated of Rows
// rows.
type CheckpointCost struct {
	Backend string
	Rows    int
	Updated int
	// Bytes is what the checkpoint physically writes: dirty pages plus
	// their doublewrite copies for paged, the full re-encoded snapshot
	// for memory.
	Bytes   int64
	Seconds float64
}

// SOUPoint times structure-of-update document reconstruction (the engine's
// Reconstruct walk) with the shredded tables either fully in memory or
// behind a buffer pool several times smaller than the page file.
type SOUPoint struct {
	Backend   string
	Tuples    int
	PoolPages int
	FilePages int64
	Seconds   float64
	PageReads int64
	Evictions int64
}

// StorageResult bundles the three storage scenarios.
type StorageResult struct {
	Sweep      []PoolSweepPoint
	Checkpoint []CheckpointCost
	SOU        []SOUPoint
}

// storageScale fixes the dataset: Rows table rows of ~64-byte payload on
// 1KiB pages, small enough that quick mode stays under a second per point.
type storageScale struct {
	rows     int
	scans    int
	pageSize int
	updated  int
	sweep    []int
}

func storageScaleFor(cfg Config) storageScale {
	s := storageScale{rows: 4000, scans: 12, pageSize: 1024, sweep: []int{8, 16, 32, 64, 128, 256}}
	if cfg.Quick {
		s = storageScale{rows: 1200, scans: 4, pageSize: 1024, sweep: []int{8, 32, 128}}
	}
	s.updated = s.rows / 100
	return s
}

// RunStorage runs the pool-size sweep, the checkpoint-cost A/B, and the
// larger-than-RAM SOU reconstruction.
func RunStorage(cfg Config) (*StorageResult, error) {
	sc := storageScaleFor(cfg)
	res := &StorageResult{}

	for _, pool := range sc.sweep {
		pt, err := sweepPoint(cfg, sc, pool)
		if err != nil {
			return nil, fmt.Errorf("storage sweep pool=%d: %w", pool, err)
		}
		res.Sweep = append(res.Sweep, pt)
	}

	paged, err := checkpointCost(cfg, sc, true)
	if err != nil {
		return nil, fmt.Errorf("storage checkpoint paged: %w", err)
	}
	mem, err := checkpointCost(cfg, sc, false)
	if err != nil {
		return nil, fmt.Errorf("storage checkpoint memory: %w", err)
	}
	res.Checkpoint = append(res.Checkpoint, paged, mem)

	sou, err := souPoints(cfg)
	if err != nil {
		return nil, fmt.Errorf("storage sou: %w", err)
	}
	res.SOU = sou
	return res, nil
}

// openStorageDB opens a fresh temp-dir store (caller removes dir) and loads
// the fixed row set: id, parentId cycling over 8 groups, and a padded
// payload so each 1KiB page holds only a handful of rows.
func openStorageDB(sc storageScale, opts relational.Options) (string, *relational.DB, error) {
	dir, err := os.MkdirTemp("", "xbench-storage-")
	if err != nil {
		return "", nil, err
	}
	db, err := relational.Open(dir, opts)
	if err != nil {
		os.RemoveAll(dir)
		return "", nil, err
	}
	fail := func(err error) (string, *relational.DB, error) {
		db.Close()
		os.RemoveAll(dir)
		return "", nil, err
	}
	if _, err := db.Exec("CREATE TABLE item (id INTEGER, parentId INTEGER, v VARCHAR(80))"); err != nil {
		return fail(err)
	}
	ins, err := db.Prepare("INSERT INTO item VALUES (?, ?, ?)")
	if err != nil {
		return fail(err)
	}
	for i := 0; i < sc.rows; i++ {
		v := fmt.Sprintf("payload-%05d-%056d", i, i)
		if _, err := ins.Exec(relational.Int(int64(i+1)), relational.Int(int64(i%8)), relational.Text(v)); err != nil {
			return fail(err)
		}
	}
	return dir, db, nil
}

func pagedStorageOpts(sc storageScale, pool int) relational.Options {
	return relational.Options{
		Sync: relational.SyncOff, CheckpointBytes: -1,
		Storage: relational.StoragePaged, PoolPages: pool, PageSize: sc.pageSize,
	}
}

func sweepPoint(cfg Config, sc storageScale, pool int) (PoolSweepPoint, error) {
	var pt PoolSweepPoint
	dir, db, err := openStorageDB(sc, pagedStorageOpts(sc, pool))
	if err != nil {
		return pt, err
	}
	defer os.RemoveAll(dir)
	defer db.Close()
	// Checkpoint flushes the loaded pages and sweeps the pool down to its
	// limit, so the timed scans start from the steady state. DirtyFlushes
	// counts each page written in place exactly once — the file page count.
	if err := db.Checkpoint(); err != nil {
		return pt, err
	}
	pt.PoolPages = pool
	pt.FilePages = db.Stats().DirtyFlushes
	db.ResetStats()

	scan := func() error {
		rows, err := db.Query("SELECT COUNT(*) FROM item WHERE v <> ''")
		if err != nil {
			return err
		}
		if got := rows.Data[0][0].MustInt(); got != int64(sc.rows) {
			return fmt.Errorf("scan saw %d rows, want %d", got, sc.rows)
		}
		return nil
	}
	for run := 0; run <= cfg.runs(); run++ {
		start := time.Now()
		for i := 0; i < sc.scans; i++ {
			if err := scan(); err != nil {
				return pt, err
			}
		}
		elapsed := time.Since(start).Seconds() / float64(sc.scans)
		if run == 0 {
			db.ResetStats() // warm-up, discarded
			continue
		}
		if pt.Seconds == 0 || elapsed < pt.Seconds {
			pt.Seconds = elapsed
		}
	}
	st := db.Stats()
	if probes := st.PoolHits + st.PoolMisses; probes > 0 {
		pt.HitRatio = float64(st.PoolHits) / float64(probes)
	}
	pt.Evictions = st.Evictions
	pt.RowsPerSec = float64(sc.rows) / pt.Seconds
	recordStats(db)
	return pt, nil
}

func checkpointCost(cfg Config, sc storageScale, paged bool) (CheckpointCost, error) {
	pt := CheckpointCost{Backend: "memory", Rows: sc.rows, Updated: sc.updated}
	opts := relational.Options{Sync: relational.SyncOff, CheckpointBytes: -1}
	if paged {
		pt.Backend = "paged"
		opts = pagedStorageOpts(sc, 256)
	}
	dir, db, err := openStorageDB(sc, opts)
	if err != nil {
		return pt, err
	}
	defer os.RemoveAll(dir)
	defer db.Close()
	// Baseline checkpoint: the A/B measures the *incremental* cost after a
	// small batch, so the load itself must already be on disk.
	if err := db.Checkpoint(); err != nil {
		return pt, err
	}
	upd, err := db.Prepare("UPDATE item SET v = ? WHERE id = ?")
	if err != nil {
		return pt, err
	}
	for run := 0; run <= cfg.runs(); run++ {
		for i := 0; i < sc.updated; i++ {
			id := int64((run*sc.updated+i)%sc.rows) + 1
			v := fmt.Sprintf("touched-%03d-%d", run, i)
			if _, err := upd.Exec(relational.Text(v), relational.Int(id)); err != nil {
				return pt, err
			}
		}
		db.ResetStats()
		start := time.Now()
		if err := db.Checkpoint(); err != nil {
			return pt, err
		}
		elapsed := time.Since(start).Seconds()
		if run == 0 {
			continue // warm-up, discarded
		}
		var bytes int64
		if paged {
			// PageWrites counts doublewrite copies and in-place writes, so
			// this is the full physical write cost of the no-steal protocol.
			bytes = db.Stats().PageWrites * int64(sc.pageSize)
		} else {
			enc, err := relational.EncodeSnapshot(db.Snapshot())
			if err != nil {
				return pt, err
			}
			bytes = int64(len(enc))
		}
		if pt.Seconds == 0 || elapsed < pt.Seconds {
			pt.Seconds = elapsed
			pt.Bytes = bytes
		}
	}
	recordStats(db)
	return pt, nil
}

// souPoints shreds a DBLP-like document and times full SOU reconstruction
// on the memory backend versus a paged store whose pool holds only a small
// fraction of the page file.
func souPoints(cfg Config) ([]SOUPoint, error) {
	p := datagen.DBLPParams{Conferences: 24, PubsPerConf: 40, Seed: 7}
	if cfg.Quick {
		p = datagen.DBLPParams{Conferences: 8, PubsPerConf: 20, Seed: 7}
	}
	doc := datagen.DBLP(p)
	const poolPages = 8

	var out []SOUPoint
	for _, paged := range []bool{false, true} {
		dir, err := os.MkdirTemp("", "xbench-sou-")
		if err != nil {
			return nil, err
		}
		dopts := relational.Options{Sync: relational.SyncOff, CheckpointBytes: -1}
		pt := SOUPoint{Backend: "memory"}
		if paged {
			dopts.Storage = relational.StoragePaged
			dopts.PoolPages = poolPages
			dopts.PageSize = 1024
			pt.Backend = "paged"
			pt.PoolPages = poolPages
		}
		s, err := engine.OpenDir(dir, doc, engine.Options{}, dopts)
		if err != nil {
			os.RemoveAll(dir)
			return nil, err
		}
		if err := s.Checkpoint(); err != nil {
			s.Close()
			os.RemoveAll(dir)
			return nil, err
		}
		pt.Tuples = s.TupleCount()
		pt.FilePages = s.DB.Stats().DirtyFlushes
		for run := 0; run <= cfg.runs(); run++ {
			s.DB.ResetStats()
			start := time.Now()
			if _, err := s.Reconstruct(); err != nil {
				s.Close()
				os.RemoveAll(dir)
				return nil, err
			}
			elapsed := time.Since(start).Seconds()
			if run == 0 {
				continue // warm-up, discarded
			}
			if pt.Seconds == 0 || elapsed < pt.Seconds {
				pt.Seconds = elapsed
				st := s.DB.Stats()
				pt.PageReads = st.PageReads
				pt.Evictions = st.Evictions
			}
		}
		recordStats(s.DB)
		s.Close()
		os.RemoveAll(dir)
		out = append(out, pt)
	}
	return out, nil
}

// WriteStorage renders the three scenarios as aligned tables.
func WriteStorage(w io.Writer, res *StorageResult) {
	fmt.Fprintln(w, "storage: paged backend — pool-size sweep (full scans over a fixed page file)")
	fmt.Fprintf(w, "%10s %10s %10s %10s %12s %14s\n", "pool", "file pgs", "hit ratio", "evictions", "scan(s)", "rows/s")
	for _, p := range res.Sweep {
		fmt.Fprintf(w, "%10d %10d %10.3f %10d %12.6f %14.0f\n",
			p.PoolPages, p.FilePages, p.HitRatio, p.Evictions, p.Seconds, p.RowsPerSec)
	}
	fmt.Fprintln(w, "\nstorage: checkpoint cost after a ~1% update batch (paged dirty-page redo vs memory full snapshot)")
	fmt.Fprintf(w, "%10s %8s %9s %12s %12s\n", "backend", "rows", "updated", "bytes", "time(s)")
	for _, p := range res.Checkpoint {
		fmt.Fprintf(w, "%10s %8d %9d %12d %12.6f\n", p.Backend, p.Rows, p.Updated, p.Bytes, p.Seconds)
	}
	fmt.Fprintln(w, "\nstorage: SOU reconstruction, in-memory vs larger-than-RAM buffer pool")
	fmt.Fprintf(w, "%10s %8s %6s %10s %12s %11s %10s\n", "backend", "tuples", "pool", "file pgs", "time(s)", "page reads", "evictions")
	for _, p := range res.SOU {
		fmt.Fprintf(w, "%10s %8d %6d %10d %12.6f %11d %10d\n",
			p.Backend, p.Tuples, p.PoolPages, p.FilePages, p.Seconds, p.PageReads, p.Evictions)
	}
}

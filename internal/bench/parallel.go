package bench

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"repro/internal/datagen"
	"repro/internal/outerunion"
	"repro/internal/relational"
	"repro/internal/shred"
)

// Parallel-executor benchmarks: each kernel is measured serial and at a
// sweep of worker budgets on the SAME database, interleaved A/B within
// each run pair so frequency scaling and cache state hit both sides
// equally. Speedups are computed from min-of-N wall times; the parallel
// counters confirm the fan-out actually engaged. On a single-core box
// (GOMAXPROCS=1) the expected speedup is ~1.0× — the exchange adds only
// its constant setup cost — so speedup claims are only meaningful on
// multi-core hardware; the output header records GOMAXPROCS for that
// reason.

// ParallelResult is one (kernel, workers) measurement.
type ParallelResult struct {
	Kernel  string
	Workers int
	// Rows is the number of rows the kernel streams per run.
	Rows int
	// SerialSec and ParallelSec are min-of-N wall times for the same
	// kernel at budget 1 and at Workers, interleaved run for run.
	SerialSec   float64
	ParallelSec float64
	// Speedup is SerialSec / ParallelSec.
	Speedup float64
	// Fan-out counters accumulated across the measured parallel runs.
	ParallelWorkers   int64
	PartitionsScanned int64
	ExchangeBatches   int64
}

// parallelScale sizes the document: quick keeps CI fast.
func parallelScale(cfg Config) int {
	if cfg.Quick {
		return 60
	}
	return 400
}

// measureParallel interleaves serial and parallel runs of op: one warm-up
// pair (discarded), then runs measured pairs, keeping the min on each
// side. The row counts are cross-checked — a parallel kernel that returns
// a different row count than serial is a correctness bug, not a
// measurement.
func measureParallel(db *relational.DB, name string, workers, runs int, op func() (int, error)) (ParallelResult, error) {
	res := ParallelResult{Kernel: name, Workers: workers}
	for i := 0; i <= runs; i++ {
		db.SetParallelism(1)
		start := time.Now()
		sRows, err := op()
		sSec := time.Since(start).Seconds()
		if err != nil {
			return res, fmt.Errorf("%s serial: %w", name, err)
		}
		db.SetParallelism(workers)
		start = time.Now()
		pRows, err := op()
		pSec := time.Since(start).Seconds()
		if err != nil {
			return res, fmt.Errorf("%s workers=%d: %w", name, workers, err)
		}
		if pRows != sRows {
			return res, fmt.Errorf("%s workers=%d: %d rows parallel, %d serial", name, workers, pRows, sRows)
		}
		if i == 0 {
			db.ResetStats()
			continue
		}
		res.Rows = sRows
		if res.SerialSec == 0 || sSec < res.SerialSec {
			res.SerialSec = sSec
		}
		if res.ParallelSec == 0 || pSec < res.ParallelSec {
			res.ParallelSec = pSec
		}
	}
	st := db.Stats()
	res.ParallelWorkers = st.ParallelWorkers
	res.PartitionsScanned = st.PartitionsScanned
	res.ExchangeBatches = st.ExchangeBatches
	if res.ParallelSec > 0 {
		res.Speedup = res.SerialSec / res.ParallelSec
	}
	db.SetParallelism(1)
	return res, nil
}

// RunParallel measures the parallel executor across a worker sweep
// (1, 2, 4, 8, capped at maxWorkers) on four kernels: a filtered full
// scan, a transient hash join, a grand aggregate, and the sorted
// outer-union reconstruction.
func RunParallel(cfg Config, maxWorkers int) ([]ParallelResult, error) {
	sf := parallelScale(cfg)
	doc := datagen.Fixed(datagen.FixedParams{ScalingFactor: sf, Depth: 4, Fanout: 4, Seed: 5})
	m, err := shred.BuildMapping(doc.DTD, doc.Root.Name, shred.Options{OrderColumn: true})
	if err != nil {
		return nil, err
	}
	db := relational.NewDB()
	if _, err := shred.Load(db, m, doc); err != nil {
		return nil, err
	}
	t2, t3 := m.Table("e2").Name, m.Table("e3").Name

	stream := func(q string) func() (int, error) {
		return func() (int, error) {
			n := 0
			_, err := db.QueryEach(q, func([]relational.Value) error { n++; return nil })
			return n, err
		}
	}
	kernels := []struct {
		name string
		op   func() (int, error)
	}{
		{"scan-filter", stream(fmt.Sprintf(
			`SELECT id, parentId, k2_v FROM %s WHERE k2_v >= 100000`, t2))},
		{"hash-join", stream(fmt.Sprintf(
			`SELECT P.id, C.id FROM %s P, %s C WHERE C.pos = P.pos`, t2, t3))},
		{"aggregate", stream(fmt.Sprintf(
			`SELECT COUNT(id), MIN(k3_v), MAX(k3_v) FROM %s`, t3))},
		{"sou-reconstruct", func() (int, error) {
			subs, err := outerunion.Query(db, m, "e1", "")
			if err != nil {
				return 0, err
			}
			n := 0
			for _, st := range subs {
				for _, ids := range st.IDs {
					n += len(ids)
				}
			}
			return n, nil
		}},
	}

	runs := cfg.runs()
	var out []ParallelResult
	for _, k := range kernels {
		for _, w := range []int{1, 2, 4, 8} {
			if w > maxWorkers {
				break
			}
			res, err := measureParallel(db, k.name, w, runs, k.op)
			if err != nil {
				return nil, err
			}
			out = append(out, res)
		}
	}
	recordStats(db)
	return out, nil
}

// WriteParallel prints the parallel suite as aligned columns.
func WriteParallel(w io.Writer, res []ParallelResult) {
	fmt.Fprintf(w, "# parallel — serial vs partitioned executor (min-of-N wall, interleaved A/B, GOMAXPROCS=%d)\n",
		runtime.GOMAXPROCS(0))
	fmt.Fprintf(w, "%-18s %8s %10s %12s %12s %8s %9s %11s %9s\n",
		"kernel", "workers", "rows", "serial (s)", "parallel (s)", "speedup", "fan-outs", "partitions", "batches")
	for _, r := range res {
		fmt.Fprintf(w, "%-18s %8d %10d %12.6f %12.6f %7.2fx %9d %11d %9d\n",
			r.Kernel, r.Workers, r.Rows, r.SerialSec, r.ParallelSec, r.Speedup,
			r.ParallelWorkers, r.PartitionsScanned, r.ExchangeBatches)
	}
}

package bench

import (
	"testing"

	"repro/internal/datagen"
	"repro/internal/outerunion"
	"repro/internal/relational"
	"repro/internal/shred"
)

// Cross-tree A/B benchmarks for the TEXT kernels: these are written against
// APIs stable since PR 4 (datagen.Catalog is additive and copied alongside)
// so the identical file compiles on the pre-intern tree, letting the repo
// benchmarking protocol interleave `go test -bench ABText` runs between a
// worktree of the previous commit and this one. The in-binary ablation
// (interning disabled at runtime) lives in text.go / profile_text_test.go;
// this file measures the whole-tree delta the acceptance criteria compare.

func abCatalog(b *testing.B) (*relational.DB, *shred.Mapping) {
	b.Helper()
	doc := datagen.Catalog(datagen.CatalogParams{Suppliers: 40, Items: 20_000, Seed: 11})
	m, err := shred.BuildMapping(doc.DTD, doc.Root.Name, shred.Options{OrderColumn: true})
	if err != nil {
		b.Fatal(err)
	}
	db := relational.NewDB()
	if _, err := shred.Load(db, m, doc); err != nil {
		b.Fatal(err)
	}
	return db, m
}

func abTextQ(b *testing.B, q string) {
	db, _ := abCatalog(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		if _, err := db.QueryEach(q, func([]relational.Value) error { n++; return nil }); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkABTextEqScan(b *testing.B) {
	abTextQ(b, `SELECT id FROM item WHERE a_status = 'urn:catalog:status:active' AND a_category != 'urn:catalog:category:misc'`)
}

func BenchmarkABTextHashJoin(b *testing.B) {
	abTextQ(b, `SELECT i.id FROM item i, supplier s WHERE i.a_vendor = s.name_v`)
}

func BenchmarkABTextDistinct(b *testing.B) {
	abTextQ(b, `SELECT DISTINCT a_vendor, a_category FROM item`)
}

func BenchmarkABTextInSubquery(b *testing.B) {
	abTextQ(b, `SELECT id FROM item WHERE a_vendor IN (SELECT name_v FROM supplier WHERE region_v = 'north')`)
}

func BenchmarkABTextSOU(b *testing.B) {
	db, m := abCatalog(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		subs, err := outerunion.Query(db, m, "item", "a_status = 'urn:catalog:status:discontinued'")
		if err != nil {
			b.Fatal(err)
		}
		_ = subs
	}
}

package bench

import (
	"testing"

	"repro/internal/relational"
)

func benchTextQ(b *testing.B, ablate bool, q string) {
	db, _, err := loadCatalog(textCatalog(Config{}), ablate)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		if _, err := db.QueryEach(q, func([]relational.Value) error { n++; return nil }); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTextHashJoinInterned(b *testing.B) {
	benchTextQ(b, false, `SELECT i.id FROM item i, supplier s WHERE i.a_vendor = s.name_v`)
}
func BenchmarkTextHashJoinAblated(b *testing.B) {
	benchTextQ(b, true, `SELECT i.id FROM item i, supplier s WHERE i.a_vendor = s.name_v`)
}
func BenchmarkTextDistinctInterned(b *testing.B) {
	benchTextQ(b, false, `SELECT DISTINCT a_vendor, a_category FROM item`)
}
func BenchmarkTextDistinctAblated(b *testing.B) {
	benchTextQ(b, true, `SELECT DISTINCT a_vendor, a_category FROM item`)
}

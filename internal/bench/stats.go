package bench

import (
	"encoding/json"
	"io"
	"reflect"
	"sync"

	"repro/internal/relational"
)

// Stats aggregation behind `xbench -stats`: experiments retire their
// databases through recordStats (or hand over per-run deltas via
// recordStatsDelta), and when armed the counters accumulate into one
// process-wide total that xbench dumps as JSON after the run — a
// mechanical record of how much engine work an experiment grid performed.

var statsAgg struct {
	mu    sync.Mutex
	armed bool
	total relational.Stats
}

// CollectStats arms (or disarms) stats aggregation and clears the total.
func CollectStats(on bool) {
	statsAgg.mu.Lock()
	statsAgg.armed = on
	statsAgg.total = relational.Stats{}
	statsAgg.mu.Unlock()
}

// recordStats folds db's cumulative counters into the aggregate; call it
// when an experiment is done with a database.
func recordStats(db *relational.DB) {
	statsAgg.mu.Lock()
	defer statsAgg.mu.Unlock()
	if !statsAgg.armed {
		return
	}
	addStats(&statsAgg.total, db.Stats())
}

// recordStatsDelta folds an already-read delta (measure() reads one per
// timed run, resetting the database's counters between runs).
func recordStatsDelta(st relational.Stats) {
	statsAgg.mu.Lock()
	defer statsAgg.mu.Unlock()
	if !statsAgg.armed {
		return
	}
	addStats(&statsAgg.total, st)
}

// addStats sums field-wise by reflection: Stats is a flat struct of int64
// counters, so reflection keeps the aggregator correct as fields are
// added. Not a hot path.
func addStats(dst *relational.Stats, s relational.Stats) {
	dv := reflect.ValueOf(dst).Elem()
	sv := reflect.ValueOf(s)
	for i := 0; i < sv.NumField(); i++ {
		dv.Field(i).SetInt(dv.Field(i).Int() + sv.Field(i).Int())
	}
}

// WriteStats dumps the aggregate as one indented JSON object.
func WriteStats(w io.Writer) error {
	statsAgg.mu.Lock()
	total := statsAgg.total
	statsAgg.mu.Unlock()
	b, err := json.MarshalIndent(total, "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(b, '\n'))
	return err
}

package bench

import (
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"repro/internal/relational"
)

// DurabilityPoint is one commit-throughput measurement against the
// write-ahead log: Commits single-row update transactions issued by
// Committers concurrent goroutines under one fsync policy. Seconds is the
// fastest (min-of-runs) wall time — the least noise-prone estimator on a
// shared box — and CommitsPerSec derives from it.
type DurabilityPoint struct {
	Mode          string
	Committers    int
	Commits       int
	Seconds       float64
	CommitsPerSec float64
}

// RunDurability measures commits/sec across the fsync modes (§ durability
// experiment): `always` pays a synchronous fsync per commit, `group`
// amortizes one fsync across the committers inside a batching window —
// concurrency should widen the gap — and `off` bounds what the log costs
// with the disk out of the picture. Readers-never-block-on-fsync is the
// design point; this experiment prices the committer side of it.
func RunDurability(cfg Config) ([]DurabilityPoint, error) {
	commits := 256
	if cfg.Quick {
		commits = 48
	}
	modes := []relational.SyncMode{relational.SyncAlways, relational.SyncGroup, relational.SyncOff}
	committerCounts := []int{1, 4}

	var out []DurabilityPoint
	for _, mode := range modes {
		for _, nc := range committerCounts {
			actual := (commits / nc) * nc
			best := 0.0
			for run := 0; run <= cfg.runs(); run++ {
				elapsed, err := timeCommits(mode, nc, actual)
				if err != nil {
					return nil, err
				}
				if run == 0 {
					continue // warm-up, discarded
				}
				if best == 0 || elapsed < best {
					best = elapsed
				}
			}
			out = append(out, DurabilityPoint{
				Mode:          mode.String(),
				Committers:    nc,
				Commits:       actual,
				Seconds:       best,
				CommitsPerSec: float64(actual) / best,
			})
		}
	}
	return out, nil
}

// timeCommits opens a fresh store, prefills it, and times `commits` update
// transactions split across `committers` goroutines.
func timeCommits(mode relational.SyncMode, committers, commits int) (float64, error) {
	dir, err := os.MkdirTemp("", "xbench-wal-")
	if err != nil {
		return 0, err
	}
	defer os.RemoveAll(dir)
	db, err := relational.Open(dir, relational.Options{Sync: mode, CheckpointBytes: -1})
	if err != nil {
		return 0, err
	}
	defer db.Close()
	if _, err := db.Exec("CREATE TABLE item (id INTEGER, v VARCHAR(64))"); err != nil {
		return 0, err
	}
	const rows = 64
	for i := 0; i < rows; i++ {
		if _, err := db.Exec(fmt.Sprintf("INSERT INTO item VALUES (%d, 'seed')", i+1)); err != nil {
			return 0, err
		}
	}
	upd, err := db.Prepare("UPDATE item SET v = ? WHERE id = ?")
	if err != nil {
		return 0, err
	}
	// Let the seed commits' group window drain so the timed region starts
	// clean.
	if err := db.Checkpoint(); err != nil {
		return 0, err
	}

	per := commits / committers
	var wg sync.WaitGroup
	errs := make(chan error, committers)
	start := time.Now()
	for c := 0; c < committers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				id := int64((c*per+i)%rows) + 1
				if _, err := upd.Exec(relational.Text(fmt.Sprintf("c%d-%d", c, i)), relational.Int(id)); err != nil {
					errs <- err
					return
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	select {
	case err := <-errs:
		return 0, err
	default:
	}
	recordStats(db)
	return elapsed, nil
}

// WriteDurability renders the experiment like the figure tables.
func WriteDurability(w io.Writer, pts []DurabilityPoint) {
	fmt.Fprintln(w, "durability: WAL commit throughput by fsync mode (single-row update transactions)")
	fmt.Fprintf(w, "%8s %11s %9s %12s %12s\n", "fsync", "committers", "commits", "min-time(s)", "commits/s")
	for _, p := range pts {
		fmt.Fprintf(w, "%8s %11d %9d %12.4f %12.1f\n",
			p.Mode, p.Committers, p.Commits, p.Seconds, p.CommitsPerSec)
	}
}

package bench

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"repro/internal/datagen"
	"repro/internal/engine"
	"repro/internal/outerunion"
)

// ConcurrentReadPoint is one concurrent snapshot-read measurement: N reader
// goroutines each run a fixed count of document-order Sorted-Outer-Union
// reconstructions while one writer cycles pos-renumber transactions and
// rollbacks. Seconds is the fastest (min-of-runs) wall time for all readers
// to finish — the least GC-noisy estimator on a shared box — and Speedup is
// aggregate throughput relative to the single-reader point, which a global
// mutex would pin at ~1.0.
type ConcurrentReadPoint struct {
	Readers    int
	Queries    int // per reader
	Seconds    float64
	QueriesSec float64
	Speedup    float64
}

// RunConcurrentReaders measures reader scaling for 1..maxReaders
// goroutines. Snapshot reads take the DB's shared lock, so throughput
// should grow with N; the writer serializes against each read only at
// transaction granularity.
func RunConcurrentReaders(cfg Config, maxReaders int) ([]ConcurrentReadPoint, error) {
	if maxReaders < 1 {
		maxReaders = 4
	}
	p := datagen.FixedParams{ScalingFactor: 40, Depth: 4, Fanout: 1, Seed: 1}
	queries := 24
	if cfg.Quick {
		p.ScalingFactor = 10
		queries = 6
	}
	doc := datagen.Fixed(p)
	s, err := engine.Open(doc, engine.Options{OrderColumn: true})
	if err != nil {
		return nil, err
	}
	// The reconstruction target: every depth-2 subtree, in document order.
	target := "e2"
	if s.M.Table(target) == nil {
		target = "e1"
	}
	renumber := fmt.Sprintf("UPDATE %s SET pos = pos + 1000", s.M.Table(target).Name)

	// Reader counts: powers of two up to maxReaders, always ending on it.
	var counts []int
	for r := 1; r < maxReaders; r *= 2 {
		counts = append(counts, r)
	}
	counts = append(counts, maxReaders)

	var out []ConcurrentReadPoint
	base := 0.0
	for _, readers := range counts {
		best := 0.0
		for i := 0; i <= cfg.runs(); i++ {
			elapsed, err := measureReaders(s, target, renumber, readers, queries)
			if err != nil {
				return nil, err
			}
			if i == 0 {
				continue // warm-up, discarded
			}
			if best == 0 || elapsed < best {
				best = elapsed
			}
		}
		pt := ConcurrentReadPoint{
			Readers:    readers,
			Queries:    queries,
			Seconds:    best,
			QueriesSec: float64(readers*queries) / best,
		}
		if base == 0 {
			base = pt.QueriesSec
		}
		pt.Speedup = pt.QueriesSec / base
		out = append(out, pt)
	}
	return out, nil
}

// measureReaders times one round: `readers` goroutines each running
// `queries` SOU reconstructions against a rollback-cycling writer.
func measureReaders(s *engine.Store, target, renumber string, readers, queries int) (float64, error) {
	stop := make(chan struct{})
	errs := make(chan error, readers+1)
	var writerWG sync.WaitGroup
	writerWG.Add(1)
	go func() {
		defer writerWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			tx := s.DB.Begin()
			if _, err := tx.Exec(renumber); err != nil {
				tx.Rollback()
				errs <- err
				return
			}
			if err := tx.Rollback(); err != nil {
				errs <- err
				return
			}
			// Throttle: a writer spinning on the exclusive lock models no
			// real workload and only measures lock fairness. A short pause
			// between transactions keeps the writer active across the whole
			// window while letting reads overlap — the behavior under test.
			time.Sleep(500 * time.Microsecond)
		}
	}()
	var readerWG sync.WaitGroup
	start := time.Now()
	for r := 0; r < readers; r++ {
		readerWG.Add(1)
		go func() {
			defer readerWG.Done()
			for q := 0; q < queries; q++ {
				if _, err := outerunion.Query(s.DB, s.M, target, ""); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	readerWG.Wait()
	elapsed := time.Since(start).Seconds()
	close(stop)
	writerWG.Wait()
	select {
	case err := <-errs:
		return 0, err
	default:
	}
	return elapsed, nil
}

// WriteConcurrentReads renders the scenario like the figure tables. The
// speedup ceiling is GOMAXPROCS — on a single-CPU container the curve is
// necessarily flat, so the processor count is part of the record.
func WriteConcurrentReads(w io.Writer, pts []ConcurrentReadPoint) {
	fmt.Fprintf(w, "concurrent snapshot reads: SOU reconstruction vs pos-renumber writer (rollback cycles), GOMAXPROCS=%d\n",
		runtime.GOMAXPROCS(0))
	fmt.Fprintf(w, "%8s %10s %12s %12s %9s\n", "readers", "queries", "min-time(s)", "queries/s", "speedup")
	for _, p := range pts {
		fmt.Fprintf(w, "%8d %10d %12.4f %12.1f %8.2fx\n",
			p.Readers, p.Readers*p.Queries, p.Seconds, p.QueriesSec, p.Speedup)
	}
}

package bench

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"repro/internal/datagen"
	"repro/internal/engine"
	"repro/internal/outerunion"
)

// ConcurrentReadPoint is one concurrent snapshot-read measurement: N reader
// goroutines each run a fixed count of document-order Sorted-Outer-Union
// reconstructions while one writer cycles pos-renumber transactions —
// rolled back (WriterMode "rollback") or committed (WriterMode "live").
// Seconds is the fastest (min-of-runs) wall time for all readers to finish
// — the least GC-noisy estimator on a shared box — and Speedup is aggregate
// throughput relative to the single-reader point, which a global mutex
// would pin at ~1.0. The MVCC counters are totals across the point's
// measured runs: Snapshots registered by the writer's transactions,
// ChainHops walked by readers overlapping uncommitted or superseded
// versions, Conflicts hit by first-committer-wins, and Vacuumed versions
// reclaimed once no snapshot needed them.
type ConcurrentReadPoint struct {
	Readers    int
	Queries    int // per reader
	WriterMode string
	Seconds    float64
	QueriesSec float64
	Speedup    float64
	Snapshots  int64
	ChainHops  int64
	Conflicts  int64
	Vacuumed   int64
}

// RunConcurrentReaders measures reader scaling for 1..maxReaders goroutines
// against a writer in the given mode: "rollback" cycles renumber
// transactions that abort, "live" commits alternating renumber/restore
// transactions so readers continuously observe snapshot boundaries. Reads
// take the DB's shared lock and evaluate row visibility against their
// snapshot, so throughput should grow with N; the writer serializes against
// each read only at statement granularity.
func RunConcurrentReaders(cfg Config, maxReaders int, writerMode string) ([]ConcurrentReadPoint, error) {
	if maxReaders < 1 {
		maxReaders = 4
	}
	live := writerMode == "live"
	p := datagen.FixedParams{ScalingFactor: 40, Depth: 4, Fanout: 1, Seed: 1}
	queries := 24
	if cfg.Quick {
		p.ScalingFactor = 10
		queries = 6
	}
	doc := datagen.Fixed(p)
	s, err := engine.Open(doc, engine.Options{OrderColumn: true})
	if err != nil {
		return nil, err
	}
	// The reconstruction target: every depth-2 subtree, in document order.
	target := "e2"
	if s.M.Table(target) == nil {
		target = "e1"
	}
	table := s.M.Table(target).Name
	renumber := fmt.Sprintf("UPDATE %s SET pos = pos + 1000", table)
	restore := fmt.Sprintf("UPDATE %s SET pos = pos - 1000", table)

	// Reader counts: powers of two up to maxReaders, always ending on it.
	var counts []int
	for r := 1; r < maxReaders; r *= 2 {
		counts = append(counts, r)
	}
	counts = append(counts, maxReaders)

	var out []ConcurrentReadPoint
	base := 0.0
	for _, readers := range counts {
		best := 0.0
		s.DB.ResetStats()
		for i := 0; i <= cfg.runs(); i++ {
			elapsed, err := measureReaders(s, target, renumber, restore, readers, queries, live)
			if err != nil {
				return nil, err
			}
			if i == 0 {
				continue // warm-up, discarded
			}
			if best == 0 || elapsed < best {
				best = elapsed
			}
		}
		st := s.DB.Stats()
		recordStatsDelta(st)
		pt := ConcurrentReadPoint{
			Readers:    readers,
			Queries:    queries,
			WriterMode: writerMode,
			Seconds:    best,
			QueriesSec: float64(readers*queries) / best,
			Snapshots:  st.SnapshotsTaken,
			ChainHops:  st.VersionChainHops,
			Conflicts:  st.WriteConflicts,
			Vacuumed:   st.VersionsVacuumed,
		}
		if base == 0 {
			base = pt.QueriesSec
		}
		pt.Speedup = pt.QueriesSec / base
		out = append(out, pt)
	}
	return out, nil
}

// measureReaders times one round: `readers` goroutines each running
// `queries` SOU reconstructions against the writer. A rollback writer
// cycles renumber-then-abort; a live writer commits a renumber and then a
// restoring transaction, so every committed state is one of two known
// generations and version chains genuinely form and vacuum under load.
func measureReaders(s *engine.Store, target, renumber, restore string, readers, queries int, live bool) (float64, error) {
	// One synchronous cycle before the clock starts: at quick scale a round
	// can finish before the writer goroutine is ever scheduled, and the
	// scenario (and its MVCC counters) assumes the writer ran at all.
	tx := s.DB.Begin()
	if _, err := tx.Exec(renumber); err != nil {
		tx.Rollback()
		return 0, err
	}
	if err := tx.Rollback(); err != nil {
		return 0, err
	}
	stop := make(chan struct{})
	errs := make(chan error, readers+1)
	var writerWG sync.WaitGroup
	writerWG.Add(1)
	go func() {
		defer writerWG.Done()
		up := true
		// A live writer stops only at cycle boundaries; if the last commit
		// was the renumber half, restore the base state so the next round
		// (and the next mode) starts from generation zero.
		defer func() {
			if live && !up {
				if _, err := s.DB.Exec(restore); err != nil {
					errs <- err
				}
			}
		}()
		for {
			select {
			case <-stop:
				return
			default:
			}
			stmt := renumber
			if live && !up {
				stmt = restore
			}
			tx := s.DB.Begin()
			if _, err := tx.Exec(stmt); err != nil {
				tx.Rollback()
				errs <- err
				return
			}
			if live {
				if err := tx.Commit(); err != nil {
					errs <- err
					return
				}
				up = !up
			} else if err := tx.Rollback(); err != nil {
				errs <- err
				return
			}
			// Throttle: a writer spinning on the writer slot models no real
			// workload and only measures lock fairness. A short pause
			// between transactions keeps the writer active across the whole
			// window while letting reads overlap — the behavior under test.
			time.Sleep(500 * time.Microsecond)
		}
	}()
	var readerWG sync.WaitGroup
	start := time.Now()
	for r := 0; r < readers; r++ {
		readerWG.Add(1)
		go func() {
			defer readerWG.Done()
			for q := 0; q < queries; q++ {
				if _, err := outerunion.Query(s.DB, s.M, target, ""); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	readerWG.Wait()
	elapsed := time.Since(start).Seconds()
	close(stop)
	writerWG.Wait()
	select {
	case err := <-errs:
		return 0, err
	default:
	}
	return elapsed, nil
}

// WriteConcurrentReads renders the scenario like the figure tables. The
// speedup ceiling is GOMAXPROCS — on a single-CPU container the curve is
// necessarily flat, so the processor count is part of the record.
func WriteConcurrentReads(w io.Writer, pts []ConcurrentReadPoint) {
	mode := "rollback cycles"
	if len(pts) > 0 && pts[0].WriterMode == "live" {
		mode = "live commits"
	}
	fmt.Fprintf(w, "concurrent snapshot reads: SOU reconstruction vs pos-renumber writer (%s), GOMAXPROCS=%d\n",
		mode, runtime.GOMAXPROCS(0))
	fmt.Fprintf(w, "%8s %10s %12s %12s %9s %10s %10s %10s %10s\n",
		"readers", "queries", "min-time(s)", "queries/s", "speedup", "snapshots", "chainhops", "conflicts", "vacuumed")
	for _, p := range pts {
		fmt.Fprintf(w, "%8d %10d %12.4f %12.1f %8.2fx %10d %10d %10d %10d\n",
			p.Readers, p.Readers*p.Queries, p.Seconds, p.QueriesSec, p.Speedup,
			p.Snapshots, p.ChainHops, p.Conflicts, p.Vacuumed)
	}
}

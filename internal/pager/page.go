// Package pager implements the on-disk page layer of the paged storage
// backend: fixed-size slotted heap pages, each independently checksummed,
// stored in one flat file per relation. The layer is deliberately dumb —
// it knows about pages, records, and CRCs, never about rows, schemas, or
// visibility. The relational layer above owns the mapping from rowids to
// pages and decides what record bytes mean.
//
// Page layout (all integers little-endian):
//
//	[0:4]   CRC32C (Castagnoli) over bytes [4:pageSize]
//	[4:8]   magic "XPG1"
//	[8:12]  page id
//	[12:16] record count
//	[16:]   records: uvarint rid, uvarint length, payload bytes
//	        … free space zero-filled to pageSize
//
// The checksum covers the whole page including free space, so a torn
// write — any prefix, suffix, or interior shred of a page — fails
// verification as a unit. A page never carries pointers to other pages;
// corruption is contained to the page that took the hit.
package pager

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// DefaultPageSize is the page size used when the caller does not choose
// one: large enough that shredded XML rows (a handful of ints and short
// strings) pack hundreds to a page, small enough that a checkpoint's
// dirty-page granularity stays fine-grained.
const DefaultPageSize = 16 << 10

// MinPageSize bounds configuration: a page must hold the header and at
// least one modest record.
const MinPageSize = 256

// HeaderSize is the fixed prefix before the first record; fill
// estimators above this package start from it.
const HeaderSize = 16

// pageHeaderSize is HeaderSize under its historical internal name.
const pageHeaderSize = HeaderSize

const pageMagic = "XPG1"

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Builder packs records into one page image. Records are appended until
// Add reports no room; Seal stamps the header and checksum and returns
// the full pageSize image.
type Builder struct {
	buf   []byte
	count uint32
}

// NewBuilder returns a builder for one page image of the given size.
func NewBuilder(pageSize int, pageID uint32) *Builder {
	b := &Builder{buf: make([]byte, pageHeaderSize, pageSize)}
	copy(b.buf[4:8], pageMagic)
	binary.LittleEndian.PutUint32(b.buf[8:12], pageID)
	return b
}

// Reset reuses the builder's buffer for a new page image.
func (b *Builder) Reset(pageID uint32) {
	b.buf = b.buf[:pageHeaderSize]
	binary.LittleEndian.PutUint32(b.buf[8:12], pageID)
	b.count = 0
}

// RecordSize returns the page bytes one record of n payload bytes
// occupies, including its rid and length prefixes.
func RecordSize(rid uint64, n int) int {
	return uvarintLen(rid) + uvarintLen(uint64(n)) + n
}

// Fits reports whether a record of n payload bytes still fits.
func (b *Builder) Fits(rid uint64, n int) bool {
	return len(b.buf)+RecordSize(rid, n) <= cap(b.buf)
}

// Add appends one record; it reports false (leaving the page unchanged)
// when the record does not fit. A record too large for an empty page is
// the caller's planning error and panics — the relational layer sizes
// its fill decisions before packing.
func (b *Builder) Add(rid uint64, payload []byte) bool {
	if !b.Fits(rid, len(payload)) {
		if b.count == 0 {
			panic(fmt.Sprintf("pager: record of %d bytes exceeds page size %d", len(payload), cap(b.buf)))
		}
		return false
	}
	b.buf = binary.AppendUvarint(b.buf, rid)
	b.buf = binary.AppendUvarint(b.buf, uint64(len(payload)))
	b.buf = append(b.buf, payload...)
	b.count++
	return true
}

// Len returns the bytes currently used, header included.
func (b *Builder) Len() int { return len(b.buf) }

// Count returns the records added so far.
func (b *Builder) Count() int { return int(b.count) }

// Seal zero-fills the free space, stamps the record count and checksum,
// and returns the complete page image. The returned slice aliases the
// builder's buffer; Reset invalidates it.
func (b *Builder) Seal() []byte {
	binary.LittleEndian.PutUint32(b.buf[12:16], b.count)
	page := b.buf[:cap(b.buf)]
	for i := len(b.buf); i < len(page); i++ {
		page[i] = 0
	}
	binary.LittleEndian.PutUint32(page[0:4], crc32.Checksum(page[4:], castagnoli))
	return page
}

// DecodePage verifies a page image and calls fn for each record. Any
// corruption — bad checksum, wrong magic, mismatched page id, truncated
// or overlong record — returns an error without ever calling fn on
// garbage bytes past the failure. It never panics on arbitrary input.
func DecodePage(page []byte, pageID uint32, fn func(rid uint64, payload []byte) error) error {
	if len(page) < pageHeaderSize {
		return fmt.Errorf("pager: page image %d bytes, need at least %d", len(page), pageHeaderSize)
	}
	if got, want := binary.LittleEndian.Uint32(page[0:4]), crc32.Checksum(page[4:], castagnoli); got != want {
		return fmt.Errorf("pager: page %d checksum mismatch (stored %08x, computed %08x)", pageID, got, want)
	}
	if string(page[4:8]) != pageMagic {
		return fmt.Errorf("pager: page %d bad magic", pageID)
	}
	if got := binary.LittleEndian.Uint32(page[8:12]); got != pageID {
		return fmt.Errorf("pager: page id mismatch: header says %d, expected %d", got, pageID)
	}
	count := binary.LittleEndian.Uint32(page[12:16])
	b := page[pageHeaderSize:]
	for i := uint32(0); i < count; i++ {
		rid, n := binary.Uvarint(b)
		if n <= 0 {
			return fmt.Errorf("pager: page %d record %d: bad rid varint", pageID, i)
		}
		b = b[n:]
		ln, n := binary.Uvarint(b)
		if n <= 0 || ln > uint64(len(b)-n) {
			return fmt.Errorf("pager: page %d record %d: bad length", pageID, i)
		}
		if fn != nil {
			if err := fn(rid, b[n:n+int(ln)]); err != nil {
				return err
			}
		}
		b = b[n+int(ln):]
	}
	return nil
}

// uvarintLen returns the encoded size of v.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

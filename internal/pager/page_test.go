package pager

import (
	"bytes"
	"fmt"
	"path/filepath"
	"testing"
)

func TestPageRoundTrip(t *testing.T) {
	b := NewBuilder(1024, 7)
	recs := map[uint64][]byte{
		0:   []byte("alpha"),
		3:   {},
		12:  []byte("gamma gamma"),
		500: bytes.Repeat([]byte{0xAB}, 100),
	}
	for rid, p := range recs {
		if !b.Add(rid, p) {
			t.Fatalf("record %d did not fit", rid)
		}
	}
	page := b.Seal()
	if len(page) != 1024 {
		t.Fatalf("sealed page %d bytes, want 1024", len(page))
	}
	got := map[uint64][]byte{}
	if err := DecodePage(page, 7, func(rid uint64, payload []byte) error {
		got[rid] = append([]byte(nil), payload...)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("decoded %d records, want %d", len(got), len(recs))
	}
	for rid, want := range recs {
		if !bytes.Equal(got[rid], want) {
			t.Errorf("record %d: got %q want %q", rid, got[rid], want)
		}
	}
}

func TestPageFillRejectsOverflow(t *testing.T) {
	b := NewBuilder(MinPageSize, 0)
	rec := bytes.Repeat([]byte{1}, 40)
	added := 0
	for b.Add(uint64(added), rec) {
		added++
	}
	if added == 0 || added > MinPageSize/40 {
		t.Fatalf("added %d records to a %d-byte page", added, MinPageSize)
	}
	// The rejected add must leave the page decodable with exactly the
	// accepted records.
	page := b.Seal()
	n := 0
	if err := DecodePage(page, 0, func(uint64, []byte) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != added {
		t.Fatalf("decoded %d records, want %d", n, added)
	}
}

func TestDecodePageRejectsCorruption(t *testing.T) {
	b := NewBuilder(512, 3)
	b.Add(1, []byte("payload-one"))
	b.Add(2, []byte("payload-two"))
	page := append([]byte(nil), b.Seal()...)

	// Flip one byte anywhere: checksum must catch it.
	for _, off := range []int{0, 5, 9, 13, 20, 200, 511} {
		dup := append([]byte(nil), page...)
		dup[off] ^= 0x40
		if err := DecodePage(dup, 3, nil); err == nil {
			t.Errorf("corruption at byte %d not detected", off)
		}
	}
	// Wrong expected id fails even with a valid image.
	if err := DecodePage(page, 4, nil); err == nil {
		t.Error("page id mismatch not detected")
	}
	// Truncated image fails cleanly.
	if err := DecodePage(page[:15], 3, nil); err == nil {
		t.Error("truncated page not detected")
	}
}

func TestFileReadWrite(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.pages")
	pf, err := CreateFile(path, 512)
	if err != nil {
		t.Fatal(err)
	}
	for pid := uint32(0); pid < 5; pid++ {
		b := NewBuilder(512, pid)
		b.Add(uint64(pid)*10, []byte(fmt.Sprintf("page-%d", pid)))
		if err := pf.WritePage(pid, b.Seal()); err != nil {
			t.Fatal(err)
		}
	}
	if err := pf.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := pf.Close(); err != nil {
		t.Fatal(err)
	}

	pf, err = OpenFile(path, 512)
	if err != nil {
		t.Fatal(err)
	}
	defer pf.Close()
	if pf.NumPages() != 5 {
		t.Fatalf("NumPages = %d, want 5", pf.NumPages())
	}
	buf := make([]byte, 512)
	for pid := uint32(0); pid < 5; pid++ {
		if err := pf.ReadPage(pid, buf); err != nil {
			t.Fatalf("page %d: %v", pid, err)
		}
		want := fmt.Sprintf("page-%d", pid)
		found := false
		DecodePage(buf, pid, func(rid uint64, payload []byte) error {
			if string(payload) == want {
				found = true
			}
			return nil
		})
		if !found {
			t.Fatalf("page %d: record %q not found", pid, want)
		}
	}

	// A torn in-place write must fail the page's read, not be served.
	if _, err := pf.WriteAt(bytes.Repeat([]byte{0xEE}, 100), 2*512+50); err != nil {
		t.Fatal(err)
	}
	if err := pf.ReadPage(2, buf); err == nil {
		t.Fatal("torn page 2 read back without error")
	}
	if err := pf.ReadPage(1, buf); err != nil {
		t.Fatalf("neighbor page 1 damaged by tear: %v", err)
	}
}

// FuzzDecodePage feeds arbitrary bytes through the page decoder: any
// corruption must surface as an error, never a panic or an out-of-range
// access. Mirrors FuzzDecodeCommit on the WAL record decoder.
func FuzzDecodePage(f *testing.F) {
	b := NewBuilder(MinPageSize, 0)
	b.Add(1, []byte("seed-record"))
	b.Add(9, []byte{0, 1, 2, 3})
	f.Add(append([]byte(nil), b.Seal()...), uint32(0))
	f.Add([]byte{}, uint32(1))
	f.Add([]byte("XPG1 but way too short"), uint32(0))
	f.Fuzz(func(t *testing.T, data []byte, pid uint32) {
		DecodePage(data, pid, func(rid uint64, payload []byte) error {
			_ = rid
			_ = len(payload)
			return nil
		})
	})
}

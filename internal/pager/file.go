package pager

import (
	"fmt"
	"os"
	"sync/atomic"
)

// File is one relation's page file: page i lives at byte offset
// i*pageSize. Pages are written in place (the durability protocol above
// this layer — doublewrite plus WAL replay — makes in-place writes
// crash-safe) and read back with checksum verification. Reads and writes
// target disjoint offsets under the buffer pool's no-steal protocol (a
// page being flushed is resident, so no fault can race its bytes), but a
// checkpoint appending pages runs concurrently with reader faults — the
// page count is atomic so that extension is safe to observe.
type File struct {
	f        *os.File
	path     string
	pageSize int
	npages   atomic.Int64
}

// CreateFile opens a fresh, empty page file, truncating any stale file
// left by an earlier incarnation of the relation.
func CreateFile(path string, pageSize int) (*File, error) {
	return openFile(path, pageSize, true)
}

// OpenFile opens an existing page file, deriving its page count from the
// file length. A length that is not a whole number of pages means the
// file itself was torn mid-extension; the partial trailing page is
// dropped (it can only belong to an unacknowledged checkpoint, which the
// recovery protocol re-applies or discards as a unit).
func OpenFile(path string, pageSize int) (*File, error) {
	return openFile(path, pageSize, false)
}

func openFile(path string, pageSize int, create bool) (*File, error) {
	if pageSize < MinPageSize {
		return nil, fmt.Errorf("pager: page size %d below minimum %d", pageSize, MinPageSize)
	}
	flags := os.O_RDWR | os.O_CREATE
	if create {
		flags |= os.O_TRUNC
	}
	f, err := os.OpenFile(path, flags, 0o644)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	pf := &File{f: f, path: path, pageSize: pageSize}
	pf.npages.Store(st.Size() / int64(pageSize))
	return pf, nil
}

// PageSize returns the file's page size.
func (pf *File) PageSize() int { return pf.pageSize }

// NumPages returns the number of whole pages the file holds.
func (pf *File) NumPages() int { return int(pf.npages.Load()) }

// ReadPage reads page pid into buf (which must be pageSize bytes) and
// verifies its checksum, magic, and id. The caller decodes records with
// DecodePage — ReadPage's own verification pass is what guarantees a
// corrupt page is reported before any record bytes are trusted.
func (pf *File) ReadPage(pid uint32, buf []byte) error {
	if len(buf) != pf.pageSize {
		return fmt.Errorf("pager: read buffer %d bytes, page size %d", len(buf), pf.pageSize)
	}
	if n := pf.npages.Load(); int64(pid) >= n {
		return fmt.Errorf("pager: page %d beyond file (%d pages)", pid, n)
	}
	if _, err := pf.f.ReadAt(buf, int64(pid)*int64(pf.pageSize)); err != nil {
		return fmt.Errorf("pager: reading page %d: %w", pid, err)
	}
	return DecodePage(buf, pid, nil)
}

// WritePage writes a sealed page image in place, extending the file when
// pid is the next page. Writing further past the end zero-fills the gap
// pages; they fail verification if ever read, which recovery treats the
// same as any other invalid page.
func (pf *File) WritePage(pid uint32, page []byte) error {
	if len(page) != pf.pageSize {
		return fmt.Errorf("pager: page image %d bytes, page size %d", len(page), pf.pageSize)
	}
	if _, err := pf.f.WriteAt(page, int64(pid)*int64(pf.pageSize)); err != nil {
		return fmt.Errorf("pager: writing page %d: %w", pid, err)
	}
	for {
		n := pf.npages.Load()
		if int64(pid) < n || pf.npages.CompareAndSwap(n, int64(pid)+1) {
			break
		}
	}
	return nil
}

// WriteAt exposes raw positioned writes for tests that simulate torn
// physical writes; normal callers use WritePage.
func (pf *File) WriteAt(b []byte, off int64) (int, error) { return pf.f.WriteAt(b, off) }

// Sync flushes written pages to stable storage.
func (pf *File) Sync() error { return pf.f.Sync() }

// Close releases the file handle.
func (pf *File) Close() error { return pf.f.Close() }

// Remove closes and deletes the file.
func (pf *File) Remove() error {
	pf.f.Close()
	if err := os.Remove(pf.path); err != nil && !os.IsNotExist(err) {
		return err
	}
	return nil
}

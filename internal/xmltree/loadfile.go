package xmltree

import "os"

// LoadFile parses an XML document from a file, optionally classifying its
// attributes against an external DTD file. The shared entry point of the
// command-line tools (xupdate, xshred): trimmed text, DTD attached when
// given.
func LoadFile(docPath, dtdPath string) (*Document, error) {
	src, err := os.ReadFile(docPath)
	if err != nil {
		return nil, err
	}
	opts := ParseOptions{TrimText: true}
	if dtdPath != "" {
		d, err := os.ReadFile(dtdPath)
		if err != nil {
			return nil, err
		}
		dtd, err := ParseDTD(string(d))
		if err != nil {
			return nil, err
		}
		opts.DTD = dtd
	}
	return ParseWith(string(src), opts)
}

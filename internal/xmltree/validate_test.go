package xmltree

import (
	"strings"
	"testing"
)

func validateSrc(t *testing.T, dtdSrc, docSrc string) []*ValidationError {
	t.Helper()
	dtd := MustParseDTD(dtdSrc)
	doc, err := ParseWith(docSrc, ParseOptions{TrimText: true, DTD: dtd})
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return doc.Validate(nil)
}

const vDTD = `
<!ELEMENT db (person*, note?)>
<!ELEMENT person (name, (email | phone)*, pet?)>
<!ELEMENT pet EMPTY>
<!ELEMENT name (#PCDATA)>
<!ELEMENT email (#PCDATA)>
<!ELEMENT phone (#PCDATA)>
<!ELEMENT note (#PCDATA | em)*>
<!ELEMENT em (#PCDATA)>
<!ATTLIST person ID ID #REQUIRED friend IDREF #IMPLIED knows IDREFS #IMPLIED nick CDATA #IMPLIED>
`

func TestValidateCleanDocument(t *testing.T) {
	errs := validateSrc(t, vDTD, `
<db>
  <person ID="p1" knows="p2 p1"><name>A</name><email>a@x</email><phone>1</phone><pet/></person>
  <person ID="p2" friend="p1" nick="bee"><name>B</name></person>
  <note>hello <em>world</em></note>
</db>`)
	if len(errs) != 0 {
		t.Fatalf("clean document has %d errors: %v", len(errs), errs)
	}
}

func TestValidateContentModelViolations(t *testing.T) {
	cases := []struct {
		doc  string
		frag string
	}{
		{`<db><person ID="p"><email>x</email></person></db>`, "content model"},             // missing name
		{`<db><person ID="p"><name>A</name><name>A</name></person></db>`, "content model"}, // name twice
		{`<db><person ID="p"><name>A</name><pet>dog</pet></person></db>`, "EMPTY"},         // EMPTY with content
		{`<db><person ID="p"><name>A</name></person>text</db>`, "PCDATA"},                  // PCDATA in element content
		{`<db><bogus/></db>`, "not declared"},
		{`<db><note><name>x</name></note></db>`, "mixed content"},
	}
	for _, c := range cases {
		errs := validateSrc(t, vDTD, c.doc)
		found := false
		for _, e := range errs {
			if strings.Contains(e.Error(), c.frag) {
				found = true
			}
		}
		if !found {
			t.Errorf("doc %s: expected error containing %q, got %v", c.doc, c.frag, errs)
		}
	}
}

func TestValidateChoiceAndRepetition(t *testing.T) {
	// (email | phone)* admits any interleaving.
	errs := validateSrc(t, vDTD, `
<db><person ID="p"><name>A</name><phone>1</phone><email>e</email><phone>2</phone></person></db>`)
	if len(errs) != 0 {
		t.Fatalf("valid interleaving rejected: %v", errs)
	}
}

func TestValidateAttributeViolations(t *testing.T) {
	// Missing required ID.
	errs := validateSrc(t, vDTD, `<db><person><name>A</name></person></db>`)
	if !hasErr(errs, "required attribute") {
		t.Errorf("missing #REQUIRED not reported: %v", errs)
	}
	// Undeclared attribute.
	errs = validateSrc(t, vDTD, `<db><person ID="p" zap="1"><name>A</name></person></db>`)
	if !hasErr(errs, "not declared") {
		t.Errorf("undeclared attribute not reported: %v", errs)
	}
}

func TestValidateIDsAndReferences(t *testing.T) {
	// Duplicate IDs.
	errs := validateSrc(t, vDTD, `
<db><person ID="p"><name>A</name></person><person ID="p"><name>B</name></person></db>`)
	if !hasErr(errs, "duplicate ID") {
		t.Errorf("duplicate ID not reported: %v", errs)
	}
	// Dangling reference is reported and classified.
	errs = validateSrc(t, vDTD, `<db><person ID="p" friend="ghost"><name>A</name></person></db>`)
	found := false
	for _, e := range errs {
		if e.IsDangling() {
			found = true
		}
	}
	if !found {
		t.Errorf("dangling reference not classified: %v", errs)
	}
}

func TestValidateAfterUpdateAllowsDangling(t *testing.T) {
	dtd := MustParseDTD(vDTD)
	doc, err := ParseWith(`
<db>
  <person ID="p1" friend="p2"><name>A</name></person>
  <person ID="p2"><name>B</name></person>
</db>`, ParseOptions{TrimText: true, DTD: dtd})
	if err != nil {
		t.Fatal(err)
	}
	// Delete p2: p1's reference dangles, which §4.2.1 permits.
	p2 := doc.ByID("p2")
	doc.Root.RemoveChild(p2)
	doc.UnregisterID("p2", p2)
	var hard []*ValidationError
	for _, e := range doc.Validate(nil) {
		if !e.IsDangling() {
			hard = append(hard, e)
		}
	}
	if len(hard) != 0 {
		t.Errorf("post-delete document has non-dangling errors: %v", hard)
	}
}

func TestValidateNoDTD(t *testing.T) {
	doc := MustParse(`<a/>`)
	errs := doc.Validate(nil)
	if len(errs) != 1 || !strings.Contains(errs[0].Error(), "no DTD") {
		t.Errorf("errs = %v", errs)
	}
}

func TestValidateNestedGroups(t *testing.T) {
	dtd := `
<!ELEMENT a ((b, c) | (c, b+))?>
<!ELEMENT b EMPTY>
<!ELEMENT c EMPTY>
`
	valid := []string{`<a/>`, `<a><b/><c/></a>`, `<a><c/><b/></a>`, `<a><c/><b/><b/><b/></a>`}
	invalid := []string{`<a><b/></a>`, `<a><c/></a>`, `<a><b/><c/><b/></a>`, `<a><b/><b/><c/></a>`}
	for _, src := range valid {
		if errs := validateSrc(t, dtd, src); len(errs) != 0 {
			t.Errorf("%s: unexpected errors %v", src, errs)
		}
	}
	for _, src := range invalid {
		if errs := validateSrc(t, dtd, src); len(errs) == 0 {
			t.Errorf("%s: expected content model violation", src)
		}
	}
}

func hasErr(errs []*ValidationError, frag string) bool {
	for _, e := range errs {
		if strings.Contains(e.Error(), frag) {
			return true
		}
	}
	return false
}

package xmltree

import (
	"sort"
	"strings"
)

// SerializeOptions controls XML output.
type SerializeOptions struct {
	// Indent, when non-empty, pretty-prints with the given indent unit.
	Indent string
	// SortAttrs emits attributes and reference lists in name order, which
	// makes output deterministic for comparison in tests. Document order of
	// children is always preserved.
	SortAttrs bool
}

// String serializes the document compactly with sorted attributes.
func (d *Document) String() string {
	return SerializeWith(d.Root, SerializeOptions{SortAttrs: true})
}

// Indented serializes the document pretty-printed with two-space indents.
func (d *Document) Indented() string {
	return SerializeWith(d.Root, SerializeOptions{Indent: "  ", SortAttrs: true})
}

// Serialize renders the element subtree compactly.
func Serialize(e *Element) string {
	return SerializeWith(e, SerializeOptions{SortAttrs: true})
}

// SerializeWith renders the element subtree with the given options.
func SerializeWith(e *Element, opts SerializeOptions) string {
	var b strings.Builder
	writeElement(&b, e, opts, 0)
	return b.String()
}

func writeElement(b *strings.Builder, e *Element, opts SerializeOptions, depth int) {
	if e == nil {
		return
	}
	indent := func(d int) {
		if opts.Indent != "" {
			if b.Len() > 0 {
				b.WriteByte('\n')
			}
			for i := 0; i < d; i++ {
				b.WriteString(opts.Indent)
			}
		}
	}
	indent(depth)
	b.WriteByte('<')
	b.WriteString(e.Name)

	type namedValue struct {
		name, value string
	}
	var nvs []namedValue
	for _, a := range e.attrs {
		nvs = append(nvs, namedValue{a.Name, a.Value})
	}
	for _, r := range e.refs {
		nvs = append(nvs, namedValue{r.Name, strings.Join(r.IDs, " ")})
	}
	if opts.SortAttrs {
		sort.Slice(nvs, func(i, j int) bool { return nvs[i].name < nvs[j].name })
	}
	for _, nv := range nvs {
		b.WriteByte(' ')
		b.WriteString(nv.name)
		b.WriteString(`="`)
		b.WriteString(escapeAttr(nv.value))
		b.WriteByte('"')
	}
	if len(e.children) == 0 {
		b.WriteString("/>")
		return
	}
	b.WriteByte('>')
	// An element whose only child is a single text node renders inline.
	inline := len(e.children) == 1 && e.children[0].Kind() == TextNode
	for _, c := range e.children {
		switch n := c.(type) {
		case *Text:
			if !inline {
				indent(depth + 1)
			}
			b.WriteString(escapeText(n.Data))
		case *Element:
			writeElement(b, n, opts, depth+1)
		}
	}
	if !inline {
		indent(depth)
	}
	b.WriteString("</")
	b.WriteString(e.Name)
	b.WriteByte('>')
}

func escapeText(s string) string {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '<':
			b.WriteString("&lt;")
		case '>':
			b.WriteString("&gt;")
		case '&':
			b.WriteString("&amp;")
		default:
			b.WriteByte(s[i])
		}
	}
	return b.String()
}

func escapeAttr(s string) string {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '<':
			b.WriteString("&lt;")
		case '&':
			b.WriteString("&amp;")
		case '"':
			b.WriteString("&quot;")
		default:
			b.WriteByte(s[i])
		}
	}
	return b.String()
}

package xmltree

import (
	"fmt"
	"strings"
	"unicode/utf8"
)

// AttrType classifies a declared attribute.
type AttrType int

// Attribute types from the XML 1.0 ATTLIST production (the subset the paper
// needs; NMTOKEN and enumerations are treated as CDATA for storage purposes).
const (
	AttrCDATA AttrType = iota
	AttrID
	AttrIDREF
	AttrIDREFS
)

func (t AttrType) String() string {
	switch t {
	case AttrCDATA:
		return "CDATA"
	case AttrID:
		return "ID"
	case AttrIDREF:
		return "IDREF"
	case AttrIDREFS:
		return "IDREFS"
	default:
		return fmt.Sprintf("AttrType(%d)", int(t))
	}
}

// Occurrence describes how many times a particle may appear.
type Occurrence int

// Occurrence indicators.
const (
	OccurOnce       Occurrence = iota // no indicator
	OccurOptional                     // ?
	OccurZeroOrMore                   // *
	OccurOneOrMore                    // +
)

func (o Occurrence) String() string {
	switch o {
	case OccurOnce:
		return ""
	case OccurOptional:
		return "?"
	case OccurZeroOrMore:
		return "*"
	case OccurOneOrMore:
		return "+"
	default:
		return "?"
	}
}

// AtMostOnce reports whether the occurrence admits at most one instance.
func (o Occurrence) AtMostOnce() bool { return o == OccurOnce || o == OccurOptional }

// ContentKind classifies an element declaration's content model.
type ContentKind int

// Content model kinds.
const (
	ContentEmpty    ContentKind = iota // EMPTY
	ContentAny                         // ANY
	ContentPCDATA                      // (#PCDATA)
	ContentChildren                    // element content: sequences/choices
	ContentMixed                       // (#PCDATA | a | b)*
)

// Particle is a node in a content-model expression tree.
type Particle struct {
	// Name is set for a leaf (an element reference); empty for groups.
	Name string
	// Seq and Choice hold group members; at most one is non-nil.
	Seq    []*Particle
	Choice []*Particle
	Occur  Occurrence
}

// ElementDecl is a parsed <!ELEMENT> declaration.
type ElementDecl struct {
	Name    string
	Kind    ContentKind
	Content *Particle // nil unless Kind == ContentChildren
	// MixedNames lists the element names admitted by a mixed model.
	MixedNames []string
}

// AttrDecl is one attribute definition from an <!ATTLIST> declaration.
type AttrDecl struct {
	Element  string
	Name     string
	Type     AttrType
	Required bool
	Default  string
}

// DTD is a parsed document type definition: the element and attribute
// declarations the Shared Inlining mapper (internal/shred) consumes.
type DTD struct {
	Elements map[string]*ElementDecl
	// Attrs maps element name → attribute name → declaration.
	Attrs map[string]map[string]*AttrDecl
	// order preserves declaration order of elements for deterministic
	// schema generation.
	order []string
}

// ElementNames returns element names in declaration order.
func (d *DTD) ElementNames() []string {
	out := make([]string, len(d.order))
	copy(out, d.order)
	return out
}

// AttrKind returns the declared type of (element, attr), defaulting to CDATA.
func (d *DTD) AttrKind(element, attr string) AttrType {
	if m := d.Attrs[element]; m != nil {
		if a := m[attr]; a != nil {
			return a.Type
		}
	}
	return AttrCDATA
}

// IDAttr returns the name of the element's declared ID attribute, if any.
func (d *DTD) IDAttr(element string) (string, bool) {
	for _, a := range d.Attrs[element] {
		if a.Type == AttrID {
			return a.Name, true
		}
	}
	return "", false
}

// AttrDecls returns the attribute declarations for an element, in a
// deterministic (name-sorted at parse time) order.
func (d *DTD) AttrDecls(element string) []*AttrDecl {
	m := d.Attrs[element]
	if m == nil {
		return nil
	}
	var names []string
	for n := range m {
		names = append(names, n)
	}
	sortStrings(names)
	out := make([]*AttrDecl, 0, len(names))
	for _, n := range names {
		out = append(out, m[n])
	}
	return out
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// ChildOccurrences flattens an element's content model into the set of child
// element names with the loosest occurrence bound seen for each. A child that
// can appear more than once (through *, +, or repetition in the model) maps
// to OccurZeroOrMore/OccurOneOrMore; this is what decides inlining (§5.1).
func (d *DTD) ChildOccurrences(element string) map[string]Occurrence {
	decl := d.Elements[element]
	if decl == nil {
		return nil
	}
	out := make(map[string]Occurrence)
	switch decl.Kind {
	case ContentChildren:
		flattenParticle(decl.Content, false, out)
	case ContentMixed:
		for _, n := range decl.MixedNames {
			out[n] = OccurZeroOrMore
		}
	}
	return out
}

// flattenParticle walks a content particle. underStar forces multiplicity.
func flattenParticle(p *Particle, underStar bool, out map[string]Occurrence) {
	if p == nil {
		return
	}
	multi := underStar || p.Occur == OccurZeroOrMore || p.Occur == OccurOneOrMore
	if p.Name != "" {
		occ := p.Occur
		if underStar {
			occ = OccurZeroOrMore
		}
		if prev, ok := out[p.Name]; ok {
			// Seen twice → repeatable regardless of indicators.
			_ = prev
			out[p.Name] = OccurZeroOrMore
		} else {
			out[p.Name] = occ
		}
		return
	}
	members := p.Seq
	inChoice := false
	if members == nil {
		members = p.Choice
		inChoice = true
	}
	for _, m := range members {
		child := multi
		// Inside a choice, each alternative is optional; occurrence for
		// inlining only cares about "can it repeat".
		flattenParticle(m, child, out)
		if inChoice && !child {
			// A child of a non-repeating choice is optional-at-most-once:
			// downgraded below.
			if m.Name != "" && out[m.Name] == OccurOnce {
				out[m.Name] = OccurOptional
			}
		}
	}
}

// ChildNamesOrdered returns the distinct child element names of an element's
// content model in first-appearance order. Schema generation uses this so
// column and table order is deterministic and mirrors the DTD.
func (d *DTD) ChildNamesOrdered(element string) []string {
	decl := d.Elements[element]
	if decl == nil {
		return nil
	}
	var out []string
	seen := make(map[string]bool)
	add := func(n string) {
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	switch decl.Kind {
	case ContentChildren:
		var walk func(p *Particle)
		walk = func(p *Particle) {
			if p == nil {
				return
			}
			if p.Name != "" {
				add(p.Name)
				return
			}
			for _, m := range p.Seq {
				walk(m)
			}
			for _, m := range p.Choice {
				walk(m)
			}
		}
		walk(decl.Content)
	case ContentMixed:
		for _, n := range decl.MixedNames {
			add(n)
		}
	}
	return out
}

// ParseDTD parses the markup declarations of a DTD (the internal-subset
// syntax): <!ELEMENT …> and <!ATTLIST …>. Comments and parameter entities it
// does not understand are skipped; unknown declarations are errors.
func ParseDTD(src string) (*DTD, error) {
	d := &DTD{
		Elements: make(map[string]*ElementDecl),
		Attrs:    make(map[string]map[string]*AttrDecl),
	}
	p := &dtdParser{src: src}
	for {
		p.skipSpace()
		if p.eof() {
			return d, nil
		}
		switch {
		case p.hasPrefix("<!--"):
			if err := p.skipComment(); err != nil {
				return nil, err
			}
		case p.hasPrefix("<!ELEMENT"):
			decl, err := p.parseElementDecl()
			if err != nil {
				return nil, fmt.Errorf("xmltree: dtd: %s", err)
			}
			if _, dup := d.Elements[decl.Name]; !dup {
				d.order = append(d.order, decl.Name)
			}
			d.Elements[decl.Name] = decl
		case p.hasPrefix("<!ATTLIST"):
			decls, err := p.parseAttlist()
			if err != nil {
				return nil, fmt.Errorf("xmltree: dtd: %s", err)
			}
			for _, a := range decls {
				if d.Attrs[a.Element] == nil {
					d.Attrs[a.Element] = make(map[string]*AttrDecl)
				}
				d.Attrs[a.Element][a.Name] = a
			}
		case p.hasPrefix("<?"):
			end := strings.Index(p.src[p.pos:], "?>")
			if end < 0 {
				return nil, fmt.Errorf("xmltree: dtd: unterminated processing instruction")
			}
			p.pos += end + 2
		default:
			return nil, fmt.Errorf("xmltree: dtd: unexpected content at offset %d: %.20q", p.pos, p.src[p.pos:])
		}
	}
}

// MustParseDTD parses a DTD and panics on failure. For tests and examples.
func MustParseDTD(src string) *DTD {
	d, err := ParseDTD(src)
	if err != nil {
		panic(err)
	}
	return d
}

type dtdParser struct {
	src string
	pos int
}

func (p *dtdParser) eof() bool { return p.pos >= len(p.src) }

func (p *dtdParser) peek() byte {
	if p.eof() {
		return 0
	}
	return p.src[p.pos]
}

func (p *dtdParser) hasPrefix(s string) bool { return strings.HasPrefix(p.src[p.pos:], s) }

func (p *dtdParser) skipSpace() {
	for !p.eof() {
		switch p.src[p.pos] {
		case ' ', '\t', '\r', '\n':
			p.pos++
		default:
			return
		}
	}
}

func (p *dtdParser) skipComment() error {
	end := strings.Index(p.src[p.pos+4:], "-->")
	if end < 0 {
		return fmt.Errorf("xmltree: dtd: unterminated comment")
	}
	p.pos += 4 + end + 3
	return nil
}

func (p *dtdParser) expect(s string) error {
	if !p.hasPrefix(s) {
		return fmt.Errorf("expected %q at offset %d", s, p.pos)
	}
	p.pos += len(s)
	return nil
}

func (p *dtdParser) parseName() (string, error) {
	start := p.pos
	r, size := utf8.DecodeRuneInString(p.src[p.pos:])
	if size == 0 || !isNameStart(r) {
		return "", fmt.Errorf("expected name at offset %d", p.pos)
	}
	p.pos += size
	for !p.eof() {
		r, size = utf8.DecodeRuneInString(p.src[p.pos:])
		if !isNameChar(r) {
			break
		}
		p.pos += size
	}
	return p.src[start:p.pos], nil
}

func (p *dtdParser) parseElementDecl() (*ElementDecl, error) {
	if err := p.expect("<!ELEMENT"); err != nil {
		return nil, err
	}
	p.skipSpace()
	name, err := p.parseName()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	decl := &ElementDecl{Name: name}
	switch {
	case p.hasPrefix("EMPTY"):
		p.pos += len("EMPTY")
		decl.Kind = ContentEmpty
	case p.hasPrefix("ANY"):
		p.pos += len("ANY")
		decl.Kind = ContentAny
	case p.peek() == '(':
		if err := p.parseContentModel(decl); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("element %s: expected content model", name)
	}
	p.skipSpace()
	if err := p.expect(">"); err != nil {
		return nil, fmt.Errorf("element %s: %s", name, err)
	}
	return decl, nil
}

func (p *dtdParser) parseContentModel(decl *ElementDecl) error {
	// Look ahead for #PCDATA.
	save := p.pos
	p.pos++ // consume '('
	p.skipSpace()
	if p.hasPrefix("#PCDATA") {
		p.pos += len("#PCDATA")
		p.skipSpace()
		if p.peek() == ')' {
			p.pos++
			// Optional trailing '*' on (#PCDATA)* is allowed.
			if p.peek() == '*' {
				p.pos++
			}
			decl.Kind = ContentPCDATA
			return nil
		}
		// Mixed content: (#PCDATA | a | b)*
		decl.Kind = ContentMixed
		for {
			p.skipSpace()
			if p.peek() == '|' {
				p.pos++
				p.skipSpace()
				n, err := p.parseName()
				if err != nil {
					return err
				}
				decl.MixedNames = append(decl.MixedNames, n)
				continue
			}
			if p.peek() == ')' {
				p.pos++
				if p.peek() != '*' {
					return fmt.Errorf("element %s: mixed content must end with )*", decl.Name)
				}
				p.pos++
				return nil
			}
			return fmt.Errorf("element %s: bad mixed content model", decl.Name)
		}
	}
	p.pos = save
	particle, err := p.parseParticleGroup()
	if err != nil {
		return fmt.Errorf("element %s: %s", decl.Name, err)
	}
	decl.Kind = ContentChildren
	decl.Content = particle
	return nil
}

// parseParticleGroup parses '(' cp (',' cp)* ')' or '(' cp ('|' cp)* ')'
// followed by an optional occurrence indicator.
func (p *dtdParser) parseParticleGroup() (*Particle, error) {
	if err := p.expect("("); err != nil {
		return nil, err
	}
	var members []*Particle
	sep := byte(0)
	for {
		p.skipSpace()
		m, err := p.parseParticle()
		if err != nil {
			return nil, err
		}
		members = append(members, m)
		p.skipSpace()
		switch p.peek() {
		case ',', '|':
			c := p.peek()
			if sep != 0 && sep != c {
				return nil, fmt.Errorf("mixed ',' and '|' in one group")
			}
			sep = c
			p.pos++
		case ')':
			p.pos++
			g := &Particle{}
			if sep == '|' {
				g.Choice = members
			} else {
				g.Seq = members
			}
			g.Occur = p.parseOccur()
			return g, nil
		default:
			return nil, fmt.Errorf("expected ',', '|' or ')' at offset %d", p.pos)
		}
	}
}

func (p *dtdParser) parseParticle() (*Particle, error) {
	if p.peek() == '(' {
		return p.parseParticleGroup()
	}
	n, err := p.parseName()
	if err != nil {
		return nil, err
	}
	return &Particle{Name: n, Occur: p.parseOccur()}, nil
}

func (p *dtdParser) parseOccur() Occurrence {
	switch p.peek() {
	case '?':
		p.pos++
		return OccurOptional
	case '*':
		p.pos++
		return OccurZeroOrMore
	case '+':
		p.pos++
		return OccurOneOrMore
	default:
		return OccurOnce
	}
}

func (p *dtdParser) parseAttlist() ([]*AttrDecl, error) {
	if err := p.expect("<!ATTLIST"); err != nil {
		return nil, err
	}
	p.skipSpace()
	element, err := p.parseName()
	if err != nil {
		return nil, err
	}
	var out []*AttrDecl
	for {
		p.skipSpace()
		if p.peek() == '>' {
			p.pos++
			return out, nil
		}
		name, err := p.parseName()
		if err != nil {
			return nil, fmt.Errorf("attlist %s: %s", element, err)
		}
		p.skipSpace()
		a := &AttrDecl{Element: element, Name: name}
		switch {
		case p.hasPrefix("IDREFS"):
			p.pos += len("IDREFS")
			a.Type = AttrIDREFS
		case p.hasPrefix("IDREF"):
			p.pos += len("IDREF")
			a.Type = AttrIDREF
		case p.hasPrefix("ID"):
			p.pos += len("ID")
			a.Type = AttrID
		case p.hasPrefix("CDATA"):
			p.pos += len("CDATA")
			a.Type = AttrCDATA
		case p.hasPrefix("NMTOKENS"):
			p.pos += len("NMTOKENS")
			a.Type = AttrCDATA
		case p.hasPrefix("NMTOKEN"):
			p.pos += len("NMTOKEN")
			a.Type = AttrCDATA
		case p.peek() == '(':
			// Enumerated type: (a | b | c) — stored as CDATA.
			depth := 0
			for !p.eof() {
				if p.peek() == '(' {
					depth++
				}
				if p.peek() == ')' {
					depth--
					p.pos++
					if depth == 0 {
						break
					}
					continue
				}
				p.pos++
			}
			a.Type = AttrCDATA
		default:
			return nil, fmt.Errorf("attlist %s/%s: unknown attribute type", element, name)
		}
		p.skipSpace()
		switch {
		case p.hasPrefix("#REQUIRED"):
			p.pos += len("#REQUIRED")
			a.Required = true
		case p.hasPrefix("#IMPLIED"):
			p.pos += len("#IMPLIED")
		case p.hasPrefix("#FIXED"):
			p.pos += len("#FIXED")
			p.skipSpace()
			def, err := p.parseQuoted()
			if err != nil {
				return nil, err
			}
			a.Default = def
		case p.peek() == '"' || p.peek() == '\'':
			def, err := p.parseQuoted()
			if err != nil {
				return nil, err
			}
			a.Default = def
		default:
			return nil, fmt.Errorf("attlist %s/%s: expected default declaration", element, name)
		}
		out = append(out, a)
	}
}

func (p *dtdParser) parseQuoted() (string, error) {
	q := p.peek()
	if q != '"' && q != '\'' {
		return "", fmt.Errorf("expected quoted string at offset %d", p.pos)
	}
	p.pos++
	start := p.pos
	for !p.eof() && p.src[p.pos] != q {
		p.pos++
	}
	if p.eof() {
		return "", fmt.Errorf("unterminated quoted string")
	}
	s := p.src[start:p.pos]
	p.pos++
	return s, nil
}

package xmltree

import (
	"fmt"
	"strings"
)

// The paper's update algorithms "assume a valid operation is being
// performed" and defer validation to future work (§6, §8 "typechecking
// updates"). This file supplies that missing piece: structural validation of
// a document against its DTD, so updates can be checked before or after
// execution.

// ValidationError describes one constraint violation.
type ValidationError struct {
	Element *Element
	Msg     string
}

func (e *ValidationError) Error() string {
	if e.Element != nil {
		return fmt.Sprintf("xmltree: validate: <%s> at %s: %s", e.Element.Name, e.Element.Path(), e.Msg)
	}
	return "xmltree: validate: " + e.Msg
}

// Validate checks the document against dtd (or its own DTD when dtd is nil):
// element content models, attribute declarations (#REQUIRED, declared
// types), ID uniqueness, and IDREF/IDREFS resolution. It returns all
// violations found.
func (d *Document) Validate(dtd *DTD) []*ValidationError {
	if dtd == nil {
		dtd = d.DTD
	}
	if dtd == nil {
		return []*ValidationError{{Msg: "no DTD to validate against"}}
	}
	v := &validator{dtd: dtd}
	if d.Root == nil {
		return []*ValidationError{{Msg: "document has no root element"}}
	}
	v.element(d.Root)
	v.checkIDs(d.Root)
	return v.errs
}

type validator struct {
	dtd  *DTD
	errs []*ValidationError
}

func (v *validator) errorf(e *Element, format string, args ...any) {
	v.errs = append(v.errs, &ValidationError{Element: e, Msg: fmt.Sprintf(format, args...)})
}

func (v *validator) element(e *Element) {
	decl := v.dtd.Elements[e.Name]
	if decl == nil {
		v.errorf(e, "element is not declared")
	} else {
		v.content(e, decl)
	}
	v.attributes(e)
	for _, c := range e.Children() {
		if ce, ok := c.(*Element); ok {
			v.element(ce)
		}
	}
}

func (v *validator) attributes(e *Element) {
	decls := v.dtd.Attrs[e.Name]
	for _, a := range e.Attrs() {
		d := decls[a.Name]
		if d == nil {
			v.errorf(e, "attribute %q is not declared", a.Name)
			continue
		}
		switch d.Type {
		case AttrIDREF, AttrIDREFS:
			v.errorf(e, "attribute %q is declared %s but stored as a plain attribute", a.Name, d.Type)
		}
	}
	for _, r := range e.Refs() {
		d := decls[r.Name]
		if d == nil {
			v.errorf(e, "reference list %q is not declared", r.Name)
			continue
		}
		switch d.Type {
		case AttrIDREF:
			if len(r.IDs) != 1 {
				v.errorf(e, "attribute %q is IDREF but holds %d references", r.Name, len(r.IDs))
			}
		case AttrIDREFS:
			if len(r.IDs) == 0 {
				v.errorf(e, "attribute %q is IDREFS but holds no references", r.Name)
			}
		default:
			v.errorf(e, "attribute %q is declared %s but stored as references", r.Name, d.Type)
		}
	}
	// Required attributes must be present in either form.
	for name, d := range decls {
		if !d.Required {
			continue
		}
		if e.Attr(name) == nil && e.Ref(name) == nil {
			v.errorf(e, "required attribute %q is missing", name)
		}
	}
}

// content checks e's child sequence against the declared content model.
func (v *validator) content(e *Element, decl *ElementDecl) {
	switch decl.Kind {
	case ContentEmpty:
		if len(e.Children()) != 0 {
			v.errorf(e, "declared EMPTY but has content")
		}
	case ContentAny:
		// anything goes
	case ContentPCDATA:
		for _, c := range e.Children() {
			if _, ok := c.(*Element); ok {
				v.errorf(e, "declared (#PCDATA) but has element children")
				return
			}
		}
	case ContentMixed:
		allowed := make(map[string]bool, len(decl.MixedNames))
		for _, n := range decl.MixedNames {
			allowed[n] = true
		}
		for _, c := range e.Children() {
			if ce, ok := c.(*Element); ok && !allowed[ce.Name] {
				v.errorf(e, "mixed content does not admit <%s>", ce.Name)
			}
		}
	case ContentChildren:
		var names []string
		for _, c := range e.Children() {
			switch n := c.(type) {
			case *Text:
				if strings.TrimSpace(n.Data) != "" {
					v.errorf(e, "element content does not admit PCDATA %q", abbreviateText(n.Data))
				}
			case *Element:
				names = append(names, n.Name)
			}
		}
		if !matchModel(decl.Content, names) {
			v.errorf(e, "children %v do not match content model %s", names, particleString(decl.Content))
		}
	}
}

func abbreviateText(s string) string {
	s = strings.TrimSpace(s)
	if len(s) > 20 {
		return s[:20] + "…"
	}
	return s
}

// matchModel checks a name sequence against a content-model particle using
// memoized recursive matching (the models in play are small).
func matchModel(p *Particle, names []string) bool {
	ok, rest := matchParticle(p, names)
	return ok && len(rest) == 0
}

// matchParticle greedily matches with backtracking: it returns every
// possible remainder; to bound work it returns the set of distinct suffix
// lengths.
func matchParticle(p *Particle, names []string) (bool, []string) {
	results := matchSet(p, names)
	if len(results) == 0 {
		return false, nil
	}
	// Prefer the longest match (smallest remainder).
	best := results[0]
	for _, r := range results {
		if len(r) < len(best) {
			best = r
		}
	}
	return true, best
}

// matchSet returns all distinct remainders after matching p at the head of
// names. Empty result set means no match.
func matchSet(p *Particle, names []string) [][]string {
	base := matchOnceSet(p, names)
	switch p.Occur {
	case OccurOnce:
		return base
	case OccurOptional:
		return dedupeRemainders(append(base, names))
	case OccurZeroOrMore, OccurOneOrMore:
		out := [][]string{}
		if p.Occur == OccurZeroOrMore {
			out = append(out, names)
		}
		frontier := base
		seen := map[int]bool{}
		for len(frontier) > 0 {
			var next [][]string
			for _, rem := range frontier {
				if seen[len(rem)] {
					continue
				}
				seen[len(rem)] = true
				out = append(out, rem)
				next = append(next, matchOnceSet(p, rem)...)
			}
			frontier = next
		}
		return dedupeRemainders(out)
	default:
		return base
	}
}

// matchOnceSet matches exactly one occurrence of the particle body.
func matchOnceSet(p *Particle, names []string) [][]string {
	if p.Name != "" {
		if len(names) > 0 && names[0] == p.Name {
			return [][]string{names[1:]}
		}
		return nil
	}
	if p.Choice != nil {
		var out [][]string
		for _, alt := range p.Choice {
			out = append(out, matchSet(alt, names)...)
		}
		return dedupeRemainders(out)
	}
	// Sequence.
	current := [][]string{names}
	for _, m := range p.Seq {
		var next [][]string
		for _, rem := range current {
			next = append(next, matchSet(m, rem)...)
		}
		if len(next) == 0 {
			return nil
		}
		current = dedupeRemainders(next)
	}
	return current
}

func dedupeRemainders(rems [][]string) [][]string {
	seen := make(map[int]bool, len(rems))
	var out [][]string
	for _, r := range rems {
		if seen[len(r)] {
			continue
		}
		seen[len(r)] = true
		out = append(out, r)
	}
	return out
}

func particleString(p *Particle) string {
	if p == nil {
		return "()"
	}
	if p.Name != "" {
		return p.Name + p.Occur.String()
	}
	var parts []string
	sep := ", "
	members := p.Seq
	if p.Choice != nil {
		members = p.Choice
		sep = " | "
	}
	for _, m := range members {
		parts = append(parts, particleString(m))
	}
	return "(" + strings.Join(parts, sep) + ")" + p.Occur.String()
}

// checkIDs verifies ID uniqueness and reference resolution. Dangling
// references are reported as warnings-by-convention: the paper allows
// deletes to leave dangling references (§4.2.1), so they are returned with a
// distinguishable message but still as errors for callers that care.
func (v *validator) checkIDs(root *Element) {
	ids := make(map[string]*Element)
	Walk(root, func(e *Element) bool {
		if id := elementID(e, v.dtd); id != "" {
			if prev, dup := ids[id]; dup {
				v.errorf(e, "duplicate ID %q (also on <%s>)", id, prev.Name)
			} else {
				ids[id] = e
			}
		}
		return true
	})
	Walk(root, func(e *Element) bool {
		for _, r := range e.Refs() {
			for _, id := range r.IDs {
				if ids[id] == nil {
					v.errorf(e, "dangling reference %s=%q", r.Name, id)
				}
			}
		}
		return true
	})
}

// IsDangling reports whether a validation error is a dangling-reference
// report, which §4.2.1 permits after deletions.
func (e *ValidationError) IsDangling() bool {
	return strings.Contains(e.Msg, "dangling reference")
}

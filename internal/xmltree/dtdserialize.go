package xmltree

import (
	"fmt"
	"sort"
	"strings"
)

// SerializeDTD renders a parsed DTD back into markup-declaration text that
// ParseDTD accepts, preserving element declaration order (which drives
// deterministic Shared Inlining schema generation). The persistent XML
// store records this form in its metadata so a reopened store can rebuild
// the exact mapping its tables were generated from.
//
// The rendering is faithful to what the parser retained: attribute types
// the parser folds into CDATA (NMTOKEN, enumerations) serialize as CDATA,
// which maps to the same storage schema.
func SerializeDTD(d *DTD) string {
	var b strings.Builder
	for _, name := range d.ElementNames() {
		decl := d.Elements[name]
		fmt.Fprintf(&b, "<!ELEMENT %s %s>\n", name, contentModelString(decl))
		writeAttlist(&b, d, name)
	}
	// Attribute lists for elements without an <!ELEMENT> declaration (legal
	// in the subset; keep them, deterministically ordered).
	var extras []string
	for elem := range d.Attrs {
		if d.Elements[elem] == nil {
			extras = append(extras, elem)
		}
	}
	sort.Strings(extras)
	for _, elem := range extras {
		writeAttlist(&b, d, elem)
	}
	return b.String()
}

func writeAttlist(b *strings.Builder, d *DTD, elem string) {
	decls := d.AttrDecls(elem)
	if len(decls) == 0 {
		return
	}
	fmt.Fprintf(b, "<!ATTLIST %s", elem)
	for _, a := range decls {
		fmt.Fprintf(b, "\n  %s %s %s", a.Name, a.Type, attrDefaultString(a))
	}
	b.WriteString(">\n")
}

func attrDefaultString(a *AttrDecl) string {
	switch {
	case a.Required:
		return "#REQUIRED"
	case a.Default != "":
		return `"` + strings.ReplaceAll(a.Default, `"`, "&quot;") + `"`
	default:
		return "#IMPLIED"
	}
}

func contentModelString(decl *ElementDecl) string {
	switch decl.Kind {
	case ContentEmpty:
		return "EMPTY"
	case ContentAny:
		return "ANY"
	case ContentPCDATA:
		return "(#PCDATA)"
	case ContentMixed:
		if len(decl.MixedNames) == 0 {
			return "(#PCDATA)*"
		}
		return "(#PCDATA | " + strings.Join(decl.MixedNames, " | ") + ")*"
	case ContentChildren:
		p := decl.Content
		if p == nil {
			return "EMPTY"
		}
		// particleString (validate.go) renders groups parenthesized already;
		// a single-name model still needs the grammar's outer parentheses.
		if p.Name != "" {
			return "(" + p.Name + ")" + p.Occur.String()
		}
		return particleString(p)
	default:
		return "ANY"
	}
}

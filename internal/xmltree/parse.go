package xmltree

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
	"unicode/utf8"
)

// ParseOptions controls document parsing.
type ParseOptions struct {
	// TrimText drops whitespace-only PCDATA nodes and trims surrounding
	// whitespace from mixed content. Defaults to true via Parse.
	TrimText bool
	// DTD supplies an external DTD used to classify ID/IDREF/IDREFS
	// attributes. A DOCTYPE internal subset in the document overrides it.
	DTD *DTD
}

// Parse parses src as an XML document with whitespace trimming enabled.
func Parse(src string) (*Document, error) {
	return ParseWith(src, ParseOptions{TrimText: true})
}

// ParseWith parses src using the given options.
func ParseWith(src string, opts ParseOptions) (*Document, error) {
	p := &parser{src: src, opts: opts, dtd: opts.DTD}
	doc, err := p.parseDocument()
	if err != nil {
		return nil, fmt.Errorf("xmltree: %s at offset %d (line %d)", err, p.pos, p.line())
	}
	return doc, nil
}

// MustParse parses src and panics on error. For tests and examples.
func MustParse(src string) *Document {
	d, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return d
}

type parser struct {
	src  string
	pos  int
	opts ParseOptions
	dtd  *DTD
}

func (p *parser) line() int {
	return 1 + strings.Count(p.src[:min(p.pos, len(p.src))], "\n")
}

func (p *parser) eof() bool { return p.pos >= len(p.src) }

func (p *parser) peek() byte {
	if p.eof() {
		return 0
	}
	return p.src[p.pos]
}

func (p *parser) hasPrefix(s string) bool {
	return strings.HasPrefix(p.src[p.pos:], s)
}

func (p *parser) skipSpace() {
	for !p.eof() {
		switch p.src[p.pos] {
		case ' ', '\t', '\r', '\n':
			p.pos++
		default:
			return
		}
	}
}

func (p *parser) expect(s string) error {
	if !p.hasPrefix(s) {
		return fmt.Errorf("expected %q", s)
	}
	p.pos += len(s)
	return nil
}

func (p *parser) parseDocument() (*Document, error) {
	var dtd *DTD
	for {
		p.skipSpace()
		if p.eof() {
			return nil, fmt.Errorf("no root element")
		}
		switch {
		case p.hasPrefix("<?"):
			if err := p.skipPI(); err != nil {
				return nil, err
			}
		case p.hasPrefix("<!--"):
			if err := p.skipComment(); err != nil {
				return nil, err
			}
		case p.hasPrefix("<!DOCTYPE"):
			d, err := p.parseDoctype()
			if err != nil {
				return nil, err
			}
			dtd = d
		case p.peek() == '<':
			if dtd == nil {
				dtd = p.opts.DTD
			}
			p.dtd = dtd
			root, err := p.parseElement()
			if err != nil {
				return nil, err
			}
			// Trailing misc.
			for {
				p.skipSpace()
				switch {
				case p.eof():
					doc := &Document{Root: root, DTD: dtd}
					doc.reindexIDs()
					return doc, nil
				case p.hasPrefix("<!--"):
					if err := p.skipComment(); err != nil {
						return nil, err
					}
				case p.hasPrefix("<?"):
					if err := p.skipPI(); err != nil {
						return nil, err
					}
				default:
					return nil, fmt.Errorf("unexpected content after root element")
				}
			}
		default:
			return nil, fmt.Errorf("unexpected character %q", p.peek())
		}
	}
}

func (p *parser) skipPI() error {
	end := strings.Index(p.src[p.pos:], "?>")
	if end < 0 {
		return fmt.Errorf("unterminated processing instruction")
	}
	p.pos += end + 2
	return nil
}

func (p *parser) skipComment() error {
	end := strings.Index(p.src[p.pos+4:], "-->")
	if end < 0 {
		return fmt.Errorf("unterminated comment")
	}
	p.pos += 4 + end + 3
	return nil
}

func (p *parser) parseDoctype() (*DTD, error) {
	if err := p.expect("<!DOCTYPE"); err != nil {
		return nil, err
	}
	p.skipSpace()
	if _, err := p.parseName(); err != nil {
		return nil, fmt.Errorf("doctype: %s", err)
	}
	p.skipSpace()
	// Optional SYSTEM/PUBLIC external id — recorded but not fetched.
	if p.hasPrefix("SYSTEM") || p.hasPrefix("PUBLIC") {
		for !p.eof() && p.peek() != '[' && p.peek() != '>' {
			if p.peek() == '"' || p.peek() == '\'' {
				if _, err := p.parseQuoted(); err != nil {
					return nil, err
				}
				continue
			}
			p.pos++
		}
	}
	var dtd *DTD
	if p.peek() == '[' {
		p.pos++
		start := p.pos
		depth := 1
		for !p.eof() && depth > 0 {
			switch p.peek() {
			case '[':
				depth++
			case ']':
				depth--
			}
			if depth > 0 {
				p.pos++
			}
		}
		if p.eof() {
			return nil, fmt.Errorf("unterminated DOCTYPE internal subset")
		}
		subset := p.src[start:p.pos]
		p.pos++ // consume ']'
		d, err := ParseDTD(subset)
		if err != nil {
			return nil, err
		}
		dtd = d
	}
	p.skipSpace()
	if err := p.expect(">"); err != nil {
		return nil, fmt.Errorf("doctype: %s", err)
	}
	return dtd, nil
}

func isNameStart(r rune) bool {
	return r == '_' || r == ':' || unicode.IsLetter(r)
}

func isNameChar(r rune) bool {
	return isNameStart(r) || r == '-' || r == '.' || unicode.IsDigit(r)
}

func (p *parser) parseName() (string, error) {
	start := p.pos
	r, size := utf8.DecodeRuneInString(p.src[p.pos:])
	if size == 0 || !isNameStart(r) {
		return "", fmt.Errorf("expected name")
	}
	p.pos += size
	for !p.eof() {
		r, size = utf8.DecodeRuneInString(p.src[p.pos:])
		if !isNameChar(r) {
			break
		}
		p.pos += size
	}
	return p.src[start:p.pos], nil
}

func (p *parser) parseQuoted() (string, error) {
	q := p.peek()
	if q != '"' && q != '\'' {
		return "", fmt.Errorf("expected quoted string")
	}
	p.pos++
	start := p.pos
	for !p.eof() && p.src[p.pos] != q {
		p.pos++
	}
	if p.eof() {
		return "", fmt.Errorf("unterminated quoted string")
	}
	s := p.src[start:p.pos]
	p.pos++
	return s, nil
}

func (p *parser) parseElement() (*Element, error) {
	if err := p.expect("<"); err != nil {
		return nil, err
	}
	name, err := p.parseName()
	if err != nil {
		return nil, err
	}
	e := NewElement(name)
	// Attributes.
	for {
		p.skipSpace()
		if p.eof() {
			return nil, fmt.Errorf("unterminated start tag <%s", name)
		}
		if p.hasPrefix("/>") {
			p.pos += 2
			return e, nil
		}
		if p.peek() == '>' {
			p.pos++
			break
		}
		aname, err := p.parseName()
		if err != nil {
			return nil, fmt.Errorf("in <%s>: %s", name, err)
		}
		p.skipSpace()
		if err := p.expect("="); err != nil {
			return nil, fmt.Errorf("attribute %q in <%s>: %s", aname, name, err)
		}
		p.skipSpace()
		raw, err := p.parseQuoted()
		if err != nil {
			return nil, fmt.Errorf("attribute %q in <%s>: %s", aname, name, err)
		}
		val, err := unescape(raw)
		if err != nil {
			return nil, err
		}
		if err := p.attachAttribute(e, aname, val); err != nil {
			return nil, err
		}
	}
	// Content.
	for {
		if p.eof() {
			return nil, fmt.Errorf("unterminated element <%s>", name)
		}
		switch {
		case p.hasPrefix("</"):
			p.pos += 2
			end, err := p.parseName()
			if err != nil {
				return nil, err
			}
			if end != name {
				return nil, fmt.Errorf("mismatched end tag </%s> for <%s>", end, name)
			}
			p.skipSpace()
			if err := p.expect(">"); err != nil {
				return nil, err
			}
			return e, nil
		case p.hasPrefix("<!--"):
			if err := p.skipComment(); err != nil {
				return nil, err
			}
		case p.hasPrefix("<![CDATA["):
			end := strings.Index(p.src[p.pos+9:], "]]>")
			if end < 0 {
				return nil, fmt.Errorf("unterminated CDATA section")
			}
			data := p.src[p.pos+9 : p.pos+9+end]
			p.pos += 9 + end + 3
			if data != "" {
				e.AppendChild(NewText(data))
			}
		case p.hasPrefix("<?"):
			if err := p.skipPI(); err != nil {
				return nil, err
			}
		case p.peek() == '<':
			child, err := p.parseElement()
			if err != nil {
				return nil, err
			}
			e.AppendChild(child)
		default:
			start := p.pos
			for !p.eof() && p.peek() != '<' {
				p.pos++
			}
			raw := p.src[start:p.pos]
			text, err := unescape(raw)
			if err != nil {
				return nil, err
			}
			if p.opts.TrimText {
				text = strings.TrimSpace(text)
			}
			if text != "" {
				e.AppendChild(NewText(text))
			}
		}
	}
}

// attachAttribute classifies a parsed attribute as a plain attribute or a
// reference list, using the DTD when available and the paper's naming
// convention otherwise: "managers", "source", "biologist"-style reference
// attributes are only recognized via DTD or heuristics supplied by callers,
// so without a DTD every attribute except multi-token ones stays a plain
// attribute. A whitespace-separated multi-token value for a declared IDREFS
// attribute becomes an ordered reference list.
func (p *parser) attachAttribute(e *Element, name, val string) error {
	kind := AttrCDATA
	if p.dtd != nil {
		kind = p.dtd.AttrKind(e.Name, name)
	}
	switch kind {
	case AttrIDREF:
		e.AddRef(name, strings.TrimSpace(val))
		return nil
	case AttrIDREFS:
		ids := strings.Fields(val)
		r := &RefList{Name: name, IDs: ids}
		return e.AttachRefList(r)
	default:
		_, err := e.SetAttr(name, val)
		return err
	}
}

// unescape expands the five predefined entities plus numeric character
// references.
func unescape(s string) (string, error) {
	if !strings.Contains(s, "&") {
		return s, nil
	}
	var b strings.Builder
	for i := 0; i < len(s); {
		c := s[i]
		if c != '&' {
			b.WriteByte(c)
			i++
			continue
		}
		semi := strings.IndexByte(s[i:], ';')
		if semi < 0 {
			return "", fmt.Errorf("unterminated entity reference")
		}
		ent := s[i+1 : i+semi]
		switch {
		case ent == "lt":
			b.WriteByte('<')
		case ent == "gt":
			b.WriteByte('>')
		case ent == "amp":
			b.WriteByte('&')
		case ent == "quot":
			b.WriteByte('"')
		case ent == "apos":
			b.WriteByte('\'')
		case strings.HasPrefix(ent, "#x") || strings.HasPrefix(ent, "#X"):
			n, err := strconv.ParseInt(ent[2:], 16, 32)
			if err != nil {
				return "", fmt.Errorf("bad character reference &%s;", ent)
			}
			b.WriteRune(rune(n))
		case strings.HasPrefix(ent, "#"):
			n, err := strconv.ParseInt(ent[1:], 10, 32)
			if err != nil {
				return "", fmt.Errorf("bad character reference &%s;", ent)
			}
			b.WriteRune(rune(n))
		default:
			return "", fmt.Errorf("unknown entity &%s;", ent)
		}
		i += semi + 1
	}
	return b.String(), nil
}

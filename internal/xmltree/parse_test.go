package xmltree

import (
	"strings"
	"testing"
	"testing/quick"
)

// bioDTD declares the paper's Figure 1 document so reference attributes are
// classified as IDREF/IDREFS.
const bioDTD = `
<!ELEMENT db (university | lab | paper | biologist)*>
<!ELEMENT university (lab*)>
<!ELEMENT lab (name, city?, location?, country?)>
<!ELEMENT location (city, country)>
<!ELEMENT paper (title)>
<!ELEMENT biologist (lastname, firstname?)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT city (#PCDATA)>
<!ELEMENT country (#PCDATA)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT lastname (#PCDATA)>
<!ELEMENT firstname (#PCDATA)>
<!ATTLIST db lab IDREF #IMPLIED>
<!ATTLIST university ID ID #REQUIRED>
<!ATTLIST lab ID ID #REQUIRED managers IDREFS #IMPLIED>
<!ATTLIST paper ID ID #REQUIRED source IDREF #IMPLIED category CDATA #IMPLIED biologist IDREF #IMPLIED>
<!ATTLIST biologist ID ID #REQUIRED age CDATA #IMPLIED>
`

// bioDoc is the paper's Figure 1 sample document.
const bioDoc = `<?xml version="1.0"?>
<db lab="lalab">
  <university ID="ucla">
    <lab ID="lalab" managers="smith1 jones1">
      <name>UCLA Bio Lab</name>
      <city>Los Angeles</city>
    </lab>
  </university>
  <lab ID="baselab" managers="smith1">
    <name>Seattle Bio Lab</name>
    <location>
      <city>Seattle</city>
      <country>USA</country>
    </location>
  </lab>
  <lab ID="lab2">
    <name>PMBL</name>
    <city>Philadelphia</city>
    <country>USA</country>
  </lab>
  <paper ID="Smith991231" source="lab2" category="spectral" biologist="smith1">
    <title>Autocatalysis of Spectral...</title>
  </paper>
  <biologist ID="smith1">
    <lastname>Smith</lastname>
  </biologist>
  <biologist ID="jones1" age="32">
    <lastname>Jones</lastname>
  </biologist>
</db>`

// BioDocument parses the Figure 1 document with its DTD. Shared by tests in
// several packages via copy; here it is the canonical definition.
func BioDocument(t *testing.T) *Document {
	t.Helper()
	dtd, err := ParseDTD(bioDTD)
	if err != nil {
		t.Fatalf("ParseDTD: %v", err)
	}
	doc, err := ParseWith(bioDoc, ParseOptions{TrimText: true, DTD: dtd})
	if err != nil {
		t.Fatalf("ParseWith: %v", err)
	}
	return doc
}

func TestParseBioDocumentStructure(t *testing.T) {
	doc := BioDocument(t)
	if doc.Root.Name != "db" {
		t.Fatalf("root = %q, want db", doc.Root.Name)
	}
	kids := doc.Root.ChildElements()
	if len(kids) != 6 {
		t.Fatalf("root has %d child elements, want 6", len(kids))
	}
	wantNames := []string{"university", "lab", "lab", "paper", "biologist", "biologist"}
	for i, k := range kids {
		if k.Name != wantNames[i] {
			t.Errorf("child %d = %q, want %q", i, k.Name, wantNames[i])
		}
	}
}

func TestParseClassifiesReferences(t *testing.T) {
	doc := BioDocument(t)
	// db's lab attribute is a declared IDREF → singleton RefList.
	if doc.Root.Attr("lab") != nil {
		t.Errorf("db lab should be a reference, not a plain attribute")
	}
	r := doc.Root.Ref("lab")
	if r == nil || len(r.IDs) != 1 || r.IDs[0] != "lalab" {
		t.Fatalf("db ref lab = %+v, want [lalab]", r)
	}
	// lalab's managers is IDREFS with two ordered entries.
	lalab := doc.ByID("lalab")
	if lalab == nil {
		t.Fatal("ByID(lalab) = nil")
	}
	m := lalab.Ref("managers")
	if m == nil || len(m.IDs) != 2 || m.IDs[0] != "smith1" || m.IDs[1] != "jones1" {
		t.Fatalf("managers = %+v, want [smith1 jones1]", m)
	}
	// category is CDATA → plain attribute.
	paper := doc.ByID("Smith991231")
	if paper == nil {
		t.Fatal("ByID(Smith991231) = nil")
	}
	if v, ok := paper.AttrValue("category"); !ok || v != "spectral" {
		t.Errorf("paper category = %q, %v", v, ok)
	}
	if paper.Ref("biologist") == nil {
		t.Errorf("paper biologist should be a reference")
	}
}

func TestParseIDRegistry(t *testing.T) {
	doc := BioDocument(t)
	for _, id := range []string{"ucla", "lalab", "baselab", "lab2", "Smith991231", "smith1", "jones1"} {
		if doc.ByID(id) == nil {
			t.Errorf("ByID(%q) = nil", id)
		}
	}
	if doc.ByID("nosuch") != nil {
		t.Errorf("ByID(nosuch) should be nil")
	}
}

func TestParseTextContent(t *testing.T) {
	doc := BioDocument(t)
	lab2 := doc.ByID("lab2")
	name := lab2.FirstChildNamed("name")
	if got := name.TextContent(); got != "PMBL" {
		t.Errorf("lab2 name = %q, want PMBL", got)
	}
	base := doc.ByID("baselab")
	loc := base.FirstChildNamed("location")
	if got := loc.FirstChildNamed("city").TextContent(); got != "Seattle" {
		t.Errorf("baselab city = %q", got)
	}
}

func TestParseEntitiesAndCDATA(t *testing.T) {
	doc, err := Parse(`<a x="1 &lt; 2 &amp; 3">&#65;&#x42;<![CDATA[<raw>&amp;]]></a>`)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := doc.Root.AttrValue("x"); v != "1 < 2 & 3" {
		t.Errorf("attr = %q", v)
	}
	if got := doc.Root.TextContent(); got != "AB<raw>&amp;" {
		t.Errorf("text = %q", got)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		``,
		`<a>`,
		`<a></b>`,
		`<a x=1></a>`,
		`<a x="1" x="2"></a>`,
		`<a>&nosuch;</a>`,
		`<a><!-- unterminated </a>`,
		`text only`,
		`<a/><b/>`,
		`<a></a>trailing`,
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestSelfClosingAndEmpty(t *testing.T) {
	doc, err := Parse(`<root><empty/><alsoempty></alsoempty></root>`)
	if err != nil {
		t.Fatal(err)
	}
	kids := doc.Root.ChildElements()
	if len(kids) != 2 {
		t.Fatalf("got %d children", len(kids))
	}
	for _, k := range kids {
		if len(k.Children()) != 0 {
			t.Errorf("<%s> should have no children", k.Name)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	doc := BioDocument(t)
	out := doc.String()
	dtd := MustParseDTD(bioDTD)
	doc2, err := ParseWith(out, ParseOptions{TrimText: true, DTD: dtd})
	if err != nil {
		t.Fatalf("re-parse: %v\noutput was:\n%s", err, out)
	}
	if doc2.String() != out {
		t.Errorf("round trip not stable:\nfirst:  %s\nsecond: %s", out, doc2.String())
	}
}

func TestSerializeEscaping(t *testing.T) {
	e := NewElement("a")
	if _, err := e.SetAttr("q", `he said "1<2"`); err != nil {
		t.Fatal(err)
	}
	e.AppendChild(NewText("x < y & z"))
	got := Serialize(e)
	want := `<a q="he said &quot;1&lt;2&quot;">x &lt; y &amp; z</a>`
	if got != want {
		t.Errorf("got %s\nwant %s", got, want)
	}
}

func TestMutators(t *testing.T) {
	doc := BioDocument(t)
	base := doc.ByID("baselab")

	// Insert an attribute; duplicate insert must fail (§3.2).
	if _, err := base.SetAttr("founded", "1990"); err != nil {
		t.Fatal(err)
	}
	if _, err := base.SetAttr("founded", "1991"); err == nil {
		t.Error("duplicate attribute insert should fail")
	}

	// Insert a reference with an existing name appends to the IDREFS.
	base.AddRef("managers", "jones1")
	if got := base.Ref("managers").IDs; len(got) != 2 || got[1] != "jones1" {
		t.Errorf("managers after AddRef = %v", got)
	}

	// Remove a single ref entry preserves the remainder.
	m := base.Ref("managers")
	if !base.RemoveRefEntry(Ref{List: m, Index: 0}) {
		t.Fatal("RemoveRefEntry failed")
	}
	if got := base.Ref("managers").IDs; len(got) != 1 || got[0] != "jones1" {
		t.Errorf("managers after removal = %v", got)
	}
	// Removing the last entry removes the list.
	if !base.RemoveRefEntry(Ref{List: m, Index: 0}) {
		t.Fatal("RemoveRefEntry failed")
	}
	if base.Ref("managers") != nil {
		t.Error("empty reference list should be removed")
	}

	// Positional child insertion.
	name := base.FirstChildNamed("name")
	street := NewElement("street")
	street.AppendChild(NewText("Oak"))
	if err := base.InsertAfter(name, street); err != nil {
		t.Fatal(err)
	}
	kids := base.ChildElements()
	if kids[1].Name != "street" {
		t.Errorf("street not after name: %v", kids[1].Name)
	}

	// InsertBefore with a non-child errors.
	if err := base.InsertBefore(NewElement("x"), NewElement("y")); err == nil {
		t.Error("InsertBefore with non-child should error")
	}
}

func TestRemoveChildDetaches(t *testing.T) {
	doc := BioDocument(t)
	base := doc.ByID("baselab")
	loc := base.FirstChildNamed("location")
	if !base.RemoveChild(loc) {
		t.Fatal("RemoveChild failed")
	}
	if loc.Parent() != nil {
		t.Error("removed child still has parent")
	}
	if base.FirstChildNamed("location") != nil {
		t.Error("location still present")
	}
	if base.RemoveChild(loc) {
		t.Error("second removal should report false")
	}
}

func TestCloneIsDeepAndDetached(t *testing.T) {
	doc := BioDocument(t)
	base := doc.ByID("baselab")
	cp := base.Clone()
	if cp.Parent() != nil {
		t.Error("clone should be detached")
	}
	// Mutating the clone must not affect the original.
	cp.FirstChildNamed("name").Children()[0].(*Text).Data = "CHANGED"
	if got := base.FirstChildNamed("name").TextContent(); got != "Seattle Bio Lab" {
		t.Errorf("original mutated through clone: %q", got)
	}
	cp.Ref("managers").IDs[0] = "CHANGED"
	if base.Ref("managers").IDs[0] != "smith1" {
		t.Error("refs shared between clone and original")
	}
}

func TestRenameSemantics(t *testing.T) {
	doc := BioDocument(t)
	base := doc.ByID("baselab")

	if err := Rename(base.FirstChildNamed("name"), "appellation"); err != nil {
		t.Fatal(err)
	}
	if base.FirstChildNamed("appellation") == nil {
		t.Error("element rename did not apply")
	}

	// Renaming an individual IDREF within an IDREFS is forbidden (§3.2).
	m := base.Ref("managers")
	if err := Rename(Ref{List: m, Index: 0}, "x"); err == nil {
		t.Error("renaming an IDREF entry should fail")
	}
	// Renaming the whole IDREFS is allowed.
	if err := Rename(m, "supervisors"); err != nil {
		t.Fatal(err)
	}
	if base.Ref("supervisors") == nil {
		t.Error("reference list rename did not apply")
	}
	// PCDATA cannot be renamed.
	txt := base.FirstChildNamed("appellation").Children()[0]
	if err := Rename(txt, "x"); err == nil {
		t.Error("renaming PCDATA should fail")
	}
}

func TestDepthSizeContains(t *testing.T) {
	doc := BioDocument(t)
	base := doc.ByID("baselab")
	loc := base.FirstChildNamed("location")
	city := loc.FirstChildNamed("city")
	if city.Depth() != 3 {
		t.Errorf("city depth = %d, want 3", city.Depth())
	}
	if loc.Size() != 3 {
		t.Errorf("location size = %d, want 3", loc.Size())
	}
	if !base.Contains(city) {
		t.Error("baselab should contain city")
	}
	if city.Contains(base) {
		t.Error("city should not contain baselab")
	}
	if doc.Root.Size() != 20 {
		t.Errorf("document has %d elements, want 20", doc.Root.Size())
	}
}

func TestWalkOrder(t *testing.T) {
	doc := MustParse(`<a><b><c/></b><d/></a>`)
	var names []string
	Walk(doc.Root, func(e *Element) bool {
		names = append(names, e.Name)
		return true
	})
	want := "a,b,c,d"
	if got := strings.Join(names, ","); got != want {
		t.Errorf("walk order = %s, want %s", got, want)
	}
	// Pruning skips a subtree.
	names = nil
	Walk(doc.Root, func(e *Element) bool {
		names = append(names, e.Name)
		return e.Name != "b"
	})
	if got := strings.Join(names, ","); got != "a,b,d" {
		t.Errorf("pruned walk = %s, want a,b,d", got)
	}
}

func TestIDRegistryMaintenance(t *testing.T) {
	doc := BioDocument(t)
	e := NewElement("biologist")
	if _, err := e.SetAttr("ID", "newbie"); err != nil {
		t.Fatal(err)
	}
	doc.Root.AppendChild(e)
	doc.RegisterID("newbie", e)
	if doc.ByID("newbie") != e {
		t.Error("RegisterID did not take effect")
	}
	doc.UnregisterID("newbie", e)
	if doc.ByID("newbie") != nil {
		t.Error("UnregisterID did not take effect")
	}
	// Unregister with wrong element is a no-op.
	doc.RegisterID("newbie", e)
	doc.UnregisterID("newbie", NewElement("x"))
	if doc.ByID("newbie") != e {
		t.Error("UnregisterID removed a mapping it does not own")
	}
}

// TestPropertyEscapeRoundTrip checks that any string survives a
// text-serialize/parse round trip.
func TestPropertyEscapeRoundTrip(t *testing.T) {
	f := func(s string) bool {
		// Strip control characters: XML forbids most control chars, and
		// the parser normalizes nothing else.
		clean := strings.Map(func(r rune) rune {
			if r < 0x20 && r != '\t' && r != '\n' {
				return -1
			}
			if r == 0xFFFD { // skip invalid-UTF8 artifacts from quick
				return -1
			}
			return r
		}, s)
		e := NewElement("t")
		if clean != "" {
			e.AppendChild(NewText(clean))
		}
		out := Serialize(e)
		doc, err := Parse(out)
		if err != nil {
			t.Logf("parse error for %q: %v", out, err)
			return false
		}
		return doc.Root.TextContent() == strings.TrimSpace(clean)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestPropertyCloneEquality checks Clone produces an identical serialization
// for arbitrary generated trees.
func TestPropertyCloneEquality(t *testing.T) {
	f := func(seed uint32) bool {
		e := genTree(seed, 3)
		return Serialize(e) == Serialize(e.Clone())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// genTree builds a small deterministic pseudo-random tree from a seed.
func genTree(seed uint32, depth int) *Element {
	state := seed
	next := func(n uint32) uint32 {
		state = state*1664525 + 1013904223
		return state % n
	}
	var build func(d int) *Element
	build = func(d int) *Element {
		e := NewElement([]string{"a", "b", "c"}[next(3)])
		if next(2) == 0 {
			e.ReplaceAttrValue("k", []string{"v1", "v2"}[next(2)])
		}
		if d == 0 {
			e.AppendChild(NewText("leaf"))
			return e
		}
		n := int(next(3))
		for i := 0; i < n; i++ {
			e.AppendChild(build(d - 1))
		}
		return e
	}
	return build(depth)
}

func TestDTDChildOccurrences(t *testing.T) {
	dtd := MustParseDTD(`
<!ELEMENT CustDB (Customer*)>
<!ELEMENT Customer (Name, Address, Order*)>
<!ELEMENT Address (City, State)>
<!ELEMENT Order (Date, OrderLine*)>
<!ELEMENT OrderLine (ItemName, Qty)>
<!ELEMENT Name (#PCDATA)>
<!ELEMENT City (#PCDATA)>
<!ELEMENT State (#PCDATA)>
<!ELEMENT Date (#PCDATA)>
<!ELEMENT ItemName (#PCDATA)>
<!ELEMENT Qty (#PCDATA)>
`)
	occ := dtd.ChildOccurrences("Customer")
	if occ["Name"] != OccurOnce {
		t.Errorf("Name occurrence = %v, want once", occ["Name"])
	}
	if occ["Order"] != OccurZeroOrMore {
		t.Errorf("Order occurrence = %v, want zero-or-more", occ["Order"])
	}
	if !occ["Name"].AtMostOnce() || occ["Order"].AtMostOnce() {
		t.Error("AtMostOnce misclassifies")
	}
	if got := dtd.ChildOccurrences("Name"); len(got) != 0 {
		t.Errorf("PCDATA element has children: %v", got)
	}
}

func TestDTDOptionalAndChoice(t *testing.T) {
	dtd := MustParseDTD(`
<!ELEMENT a (b?, (c | d), e+)>
<!ELEMENT b (#PCDATA)>
<!ELEMENT c (#PCDATA)>
<!ELEMENT d (#PCDATA)>
<!ELEMENT e (#PCDATA)>
`)
	occ := dtd.ChildOccurrences("a")
	if occ["b"] != OccurOptional {
		t.Errorf("b = %v, want optional", occ["b"])
	}
	if occ["e"] != OccurOneOrMore {
		t.Errorf("e = %v, want one-or-more", occ["e"])
	}
	if !occ["c"].AtMostOnce() {
		t.Errorf("c = %v, want at-most-once", occ["c"])
	}
}

func TestDTDRepeatedNameForcesMulti(t *testing.T) {
	dtd := MustParseDTD(`<!ELEMENT a (b, b)> <!ELEMENT b (#PCDATA)>`)
	if occ := dtd.ChildOccurrences("a"); occ["b"].AtMostOnce() {
		t.Errorf("b appears twice; occurrence = %v", occ["b"])
	}
}

func TestDTDMixedAndErrors(t *testing.T) {
	dtd := MustParseDTD(`<!ELEMENT p (#PCDATA | em | strong)*> <!ELEMENT em (#PCDATA)> <!ELEMENT strong (#PCDATA)>`)
	occ := dtd.ChildOccurrences("p")
	if occ["em"] != OccurZeroOrMore || occ["strong"] != OccurZeroOrMore {
		t.Errorf("mixed content occurrences = %v", occ)
	}
	for _, bad := range []string{
		`<!ELEMENT a (b,>`,
		`<!ELEMENT a (b | c, d)>`,
		`<!ATTLIST a x WEIRD #IMPLIED>`,
		`<!BOGUS a>`,
	} {
		if _, err := ParseDTD(bad); err == nil {
			t.Errorf("ParseDTD(%q) succeeded, want error", bad)
		}
	}
}

func TestDTDAttrDecls(t *testing.T) {
	dtd := MustParseDTD(bioDTD)
	if name, ok := dtd.IDAttr("lab"); !ok || name != "ID" {
		t.Errorf("IDAttr(lab) = %q, %v", name, ok)
	}
	if _, ok := dtd.IDAttr("db"); ok {
		t.Error("db has no ID attribute")
	}
	if k := dtd.AttrKind("lab", "managers"); k != AttrIDREFS {
		t.Errorf("managers kind = %v", k)
	}
	if k := dtd.AttrKind("paper", "category"); k != AttrCDATA {
		t.Errorf("category kind = %v", k)
	}
	if k := dtd.AttrKind("nosuch", "nosuch"); k != AttrCDATA {
		t.Errorf("unknown attr kind = %v", k)
	}
	decls := dtd.AttrDecls("paper")
	if len(decls) != 4 {
		t.Errorf("paper has %d attr decls, want 4", len(decls))
	}
}

func TestDoctypeInlineSubset(t *testing.T) {
	src := `<!DOCTYPE db [
<!ELEMENT db (item*)>
<!ELEMENT item (#PCDATA)>
<!ATTLIST item ID ID #REQUIRED ref IDREF #IMPLIED>
]>
<db><item ID="a" ref="b">x</item><item ID="b">y</item></db>`
	doc, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if doc.DTD == nil {
		t.Fatal("internal subset not parsed")
	}
	a := doc.ByID("a")
	if a == nil {
		t.Fatal("ID registry not built from DTD declarations")
	}
	if a.Ref("ref") == nil {
		t.Error("IDREF attribute not classified from internal subset")
	}
}

// Package xmltree implements the XML data model of Tatarinov et al.
// (SIGMOD 2001, §3.1): a node-labeled tree in which an element is a tuple of
// a name, a set of attributes, a set of ordered reference lists (IDREFS), and
// an ordered list of child elements and PCDATA nodes.
//
// The package provides a mutable DOM, a from-scratch XML parser and
// serializer, and a DTD parser. encoding/xml is deliberately not used: its
// token API cannot represent in-place mutation of a document, which is the
// whole point of an update language.
package xmltree

import (
	"fmt"
	"strings"
)

// NodeKind identifies the dynamic type of a Node.
type NodeKind int

// The node kinds of the data model.
const (
	ElementNode NodeKind = iota
	TextNode
)

func (k NodeKind) String() string {
	switch k {
	case ElementNode:
		return "element"
	case TextNode:
		return "text"
	default:
		return fmt.Sprintf("NodeKind(%d)", int(k))
	}
}

// Node is a child of an element: either an *Element or a *Text.
type Node interface {
	// Kind reports the node's kind.
	Kind() NodeKind
	// Parent returns the element containing this node, or nil for a root.
	Parent() *Element
	// setParent is internal; only the tree mutators may re-parent nodes.
	setParent(*Element)
}

// Element is an XML element: a name, unordered attributes, unordered
// reference lists (each internally ordered), and an ordered child list.
type Element struct {
	Name     string
	parent   *Element
	attrs    []*Attr
	refs     []*RefList
	children []Node
}

// NewElement returns a detached element with the given tag name.
func NewElement(name string) *Element {
	return &Element{Name: name}
}

// Kind implements Node.
func (e *Element) Kind() NodeKind { return ElementNode }

// Parent implements Node.
func (e *Element) Parent() *Element { return e.parent }

func (e *Element) setParent(p *Element) { e.parent = p }

// Attrs returns the element's attributes. The returned slice must not be
// mutated directly; use SetAttr and RemoveAttr.
func (e *Element) Attrs() []*Attr { return e.attrs }

// Refs returns the element's IDREFS lists. The returned slice must not be
// mutated directly; use SetRef, AddRef and RemoveRef.
func (e *Element) Refs() []*RefList { return e.refs }

// Children returns the element's ordered child list. The returned slice must
// not be mutated directly; use the Append/Insert/Remove mutators.
func (e *Element) Children() []Node { return e.children }

// Attr is a named string-valued attribute. Following §3.1, attributes are
// unordered with respect to one another.
type Attr struct {
	Name  string
	Value string
	owner *Element
}

// Owner returns the element the attribute belongs to, or nil if detached.
func (a *Attr) Owner() *Element { return a.owner }

// RefList is a named, ordered list of IDs — the model's representation of an
// IDREFS attribute. An IDREF is a singleton RefList (§3.1).
type RefList struct {
	Name  string
	IDs   []string
	owner *Element
}

// Owner returns the element the reference list belongs to, or nil if detached.
func (r *RefList) Owner() *Element { return r.owner }

// Ref identifies a single entry inside a RefList: the pair (list, index).
// Update operations such as Delete and InsertBefore may target an individual
// reference rather than the whole list.
type Ref struct {
	List  *RefList
	Index int
}

// ID returns the referenced ID value.
func (r Ref) ID() string { return r.List.IDs[r.Index] }

// Text is a PCDATA node.
type Text struct {
	Data   string
	parent *Element
}

// NewText returns a detached PCDATA node.
func NewText(data string) *Text { return &Text{Data: data} }

// Kind implements Node.
func (t *Text) Kind() NodeKind { return TextNode }

// Parent implements Node.
func (t *Text) Parent() *Element { return t.parent }

func (t *Text) setParent(p *Element) { t.parent = p }

// Document is a parsed XML document: a root element plus the optional DTD it
// was validated against and a registry of ID-attributed elements.
type Document struct {
	Root *Element
	DTD  *DTD

	ids map[string]*Element
}

// NewDocument wraps a root element into a document and indexes its IDs.
func NewDocument(root *Element) *Document {
	d := &Document{Root: root, ids: make(map[string]*Element)}
	if root != nil {
		d.reindexIDs()
	}
	return d
}

// ByID returns the element whose ID attribute equals id, or nil.
func (d *Document) ByID(id string) *Element {
	return d.ids[id]
}

// RegisterID records id as naming e. It overwrites silently; well-formed
// documents have unique IDs, and updates that duplicate an ID are the
// caller's responsibility to validate.
func (d *Document) RegisterID(id string, e *Element) {
	if d.ids == nil {
		d.ids = make(map[string]*Element)
	}
	d.ids[id] = e
}

// UnregisterID removes id from the registry if it currently names e.
func (d *Document) UnregisterID(id string, e *Element) {
	if d.ids[id] == e {
		delete(d.ids, id)
	}
}

// reindexIDs rebuilds the ID registry by walking the tree. An attribute named
// "ID" (or declared of type ID in the DTD) registers its element.
func (d *Document) reindexIDs() {
	d.ids = make(map[string]*Element)
	Walk(d.Root, func(e *Element) bool {
		if id := elementID(e, d.DTD); id != "" {
			d.ids[id] = e
		}
		return true
	})
}

// elementID returns the value of e's ID attribute under dtd (which may be
// nil, in which case an attribute literally named "ID" is used, matching the
// paper's examples).
func elementID(e *Element, dtd *DTD) string {
	if dtd != nil {
		if name, ok := dtd.IDAttr(e.Name); ok {
			if a := e.Attr(name); a != nil {
				return a.Value
			}
			return ""
		}
	}
	if a := e.Attr("ID"); a != nil {
		return a.Value
	}
	return ""
}

// ID returns the element's ID value using the document's DTD conventions.
func (d *Document) ID(e *Element) string { return elementID(e, d.DTD) }

// Walk performs a pre-order, document-order traversal starting at e, calling
// fn for every element. If fn returns false the element's subtree is skipped.
func Walk(e *Element, fn func(*Element) bool) {
	if e == nil {
		return
	}
	if !fn(e) {
		return
	}
	for _, c := range e.children {
		if ce, ok := c.(*Element); ok {
			Walk(ce, fn)
		}
	}
}

// Attr returns the attribute with the given name, or nil.
func (e *Element) Attr(name string) *Attr {
	for _, a := range e.attrs {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// AttrValue returns the value of the named attribute and whether it exists.
func (e *Element) AttrValue(name string) (string, bool) {
	if a := e.Attr(name); a != nil {
		return a.Value, true
	}
	return "", false
}

// Ref returns the reference list with the given name, or nil.
func (e *Element) Ref(name string) *RefList {
	for _, r := range e.refs {
		if r.Name == name {
			return r
		}
	}
	return nil
}

// SetAttr adds a new attribute. Per §3.2, an attempt to insert an attribute
// with the same name as an existing attribute fails.
func (e *Element) SetAttr(name, value string) (*Attr, error) {
	if e.Attr(name) != nil {
		return nil, fmt.Errorf("xmltree: element <%s> already has attribute %q", e.Name, name)
	}
	if e.Ref(name) != nil {
		return nil, fmt.Errorf("xmltree: element <%s> already has reference list %q", e.Name, name)
	}
	a := &Attr{Name: name, Value: value, owner: e}
	e.attrs = append(e.attrs, a)
	return a, nil
}

// ReplaceAttrValue overwrites the value of an existing attribute, creating it
// if absent. This is the "assignment" convenience used by Replace semantics.
func (e *Element) ReplaceAttrValue(name, value string) *Attr {
	if a := e.Attr(name); a != nil {
		a.Value = value
		return a
	}
	a := &Attr{Name: name, Value: value, owner: e}
	e.attrs = append(e.attrs, a)
	return a
}

// RemoveAttr deletes the attribute if it belongs to e, reporting whether a
// removal happened.
func (e *Element) RemoveAttr(a *Attr) bool {
	for i, x := range e.attrs {
		if x == a {
			e.attrs = append(e.attrs[:i], e.attrs[i+1:]...)
			a.owner = nil
			return true
		}
	}
	return false
}

// AddRef inserts a reference named name pointing at id. Per §3.2, inserting a
// reference whose name matches an existing IDREFS appends an extra entry to
// that list; otherwise a new singleton list is created.
func (e *Element) AddRef(name, id string) *RefList {
	if r := e.Ref(name); r != nil {
		r.IDs = append(r.IDs, id)
		return r
	}
	r := &RefList{Name: name, IDs: []string{id}, owner: e}
	e.refs = append(e.refs, r)
	return r
}

// AttachRefList adds a complete reference list. It fails if a list or
// attribute of the same name exists.
func (e *Element) AttachRefList(r *RefList) error {
	if e.Ref(r.Name) != nil {
		return fmt.Errorf("xmltree: element <%s> already has reference list %q", e.Name, r.Name)
	}
	if e.Attr(r.Name) != nil {
		return fmt.Errorf("xmltree: element <%s> already has attribute %q", e.Name, r.Name)
	}
	r.owner = e
	e.refs = append(e.refs, r)
	return nil
}

// RemoveRefList deletes an entire reference list from e.
func (e *Element) RemoveRefList(r *RefList) bool {
	for i, x := range e.refs {
		if x == r {
			e.refs = append(e.refs[:i], e.refs[i+1:]...)
			r.owner = nil
			return true
		}
	}
	return false
}

// RemoveRefEntry deletes the single entry ref.Index from its list, preserving
// the remainder of the IDREFS (§3.2 Delete). If the list becomes empty it is
// removed from the element entirely.
func (e *Element) RemoveRefEntry(ref Ref) bool {
	r := ref.List
	if r.owner != e || ref.Index < 0 || ref.Index >= len(r.IDs) {
		return false
	}
	r.IDs = append(r.IDs[:ref.Index], r.IDs[ref.Index+1:]...)
	if len(r.IDs) == 0 {
		e.RemoveRefList(r)
	}
	return true
}

// InsertRefAt inserts id into list r at position i (0 ≤ i ≤ len).
func (r *RefList) InsertRefAt(i int, id string) {
	r.IDs = append(r.IDs, "")
	copy(r.IDs[i+1:], r.IDs[i:])
	r.IDs[i] = id
}

// AppendChild attaches n as the last child of e. In the ordered execution
// model all non-attribute insertions occur at the end (§3.2).
func (e *Element) AppendChild(n Node) {
	if n.Parent() != nil {
		panic("xmltree: AppendChild of attached node; detach or clone first")
	}
	n.setParent(e)
	e.children = append(e.children, n)
}

// InsertChildAt inserts n at index i within e's child list.
func (e *Element) InsertChildAt(i int, n Node) {
	if n.Parent() != nil {
		panic("xmltree: InsertChildAt of attached node; detach or clone first")
	}
	if i < 0 || i > len(e.children) {
		panic(fmt.Sprintf("xmltree: InsertChildAt index %d out of range [0,%d]", i, len(e.children)))
	}
	n.setParent(e)
	e.children = append(e.children, nil)
	copy(e.children[i+1:], e.children[i:])
	e.children[i] = n
}

// ChildIndex returns the index of n within e's child list, or -1.
func (e *Element) ChildIndex(n Node) int {
	for i, c := range e.children {
		if c == n {
			return i
		}
	}
	return -1
}

// RemoveChild detaches n from e, reporting whether n was a child of e.
func (e *Element) RemoveChild(n Node) bool {
	i := e.ChildIndex(n)
	if i < 0 {
		return false
	}
	e.children = append(e.children[:i], e.children[i+1:]...)
	n.setParent(nil)
	return true
}

// InsertBefore inserts content directly before ref in e's child list (§3.2
// InsertBefore, ordered model only).
func (e *Element) InsertBefore(ref Node, content Node) error {
	i := e.ChildIndex(ref)
	if i < 0 {
		return fmt.Errorf("xmltree: InsertBefore reference node is not a child of <%s>", e.Name)
	}
	e.InsertChildAt(i, content)
	return nil
}

// InsertAfter inserts content directly after ref in e's child list.
func (e *Element) InsertAfter(ref Node, content Node) error {
	i := e.ChildIndex(ref)
	if i < 0 {
		return fmt.Errorf("xmltree: InsertAfter reference node is not a child of <%s>", e.Name)
	}
	e.InsertChildAt(i+1, content)
	return nil
}

// ChildElements returns the element children of e, in document order.
func (e *Element) ChildElements() []*Element {
	var out []*Element
	for _, c := range e.children {
		if ce, ok := c.(*Element); ok {
			out = append(out, ce)
		}
	}
	return out
}

// ChildElementsNamed returns child elements with the given tag, in order.
func (e *Element) ChildElementsNamed(name string) []*Element {
	var out []*Element
	for _, c := range e.children {
		if ce, ok := c.(*Element); ok && ce.Name == name {
			out = append(out, ce)
		}
	}
	return out
}

// FirstChildNamed returns the first child element with the tag, or nil.
func (e *Element) FirstChildNamed(name string) *Element {
	for _, c := range e.children {
		if ce, ok := c.(*Element); ok && ce.Name == name {
			return ce
		}
	}
	return nil
}

// TextContent concatenates all PCDATA in e's subtree in document order.
func (e *Element) TextContent() string {
	var b strings.Builder
	e.appendText(&b)
	return b.String()
}

func (e *Element) appendText(b *strings.Builder) {
	for _, c := range e.children {
		switch n := c.(type) {
		case *Text:
			b.WriteString(n.Data)
		case *Element:
			n.appendText(b)
		}
	}
}

// Clone deep-copies the element's subtree. The copy is detached.
func (e *Element) Clone() *Element {
	cp := &Element{Name: e.Name}
	for _, a := range e.attrs {
		cp.attrs = append(cp.attrs, &Attr{Name: a.Name, Value: a.Value, owner: cp})
	}
	for _, r := range e.refs {
		ids := make([]string, len(r.IDs))
		copy(ids, r.IDs)
		cp.refs = append(cp.refs, &RefList{Name: r.Name, IDs: ids, owner: cp})
	}
	for _, c := range e.children {
		switch n := c.(type) {
		case *Element:
			child := n.Clone()
			child.parent = cp
			cp.children = append(cp.children, child)
		case *Text:
			t := &Text{Data: n.Data, parent: cp}
			cp.children = append(cp.children, t)
		}
	}
	return cp
}

// Depth returns the number of ancestors of e (the root has depth 0).
func (e *Element) Depth() int {
	d := 0
	for p := e.parent; p != nil; p = p.parent {
		d++
	}
	return d
}

// Size returns the number of elements in e's subtree, including e.
func (e *Element) Size() int {
	n := 0
	Walk(e, func(*Element) bool { n++; return true })
	return n
}

// Contains reports whether other is e or a descendant of e.
func (e *Element) Contains(other *Element) bool {
	for x := other; x != nil; x = x.parent {
		if x == e {
			return true
		}
	}
	return false
}

// Path returns a /-separated tag path from the root to e (for diagnostics).
func (e *Element) Path() string {
	var parts []string
	for x := e; x != nil; x = x.parent {
		parts = append(parts, x.Name)
	}
	for i, j := 0, len(parts)-1; i < j; i, j = i+1, j-1 {
		parts[i], parts[j] = parts[j], parts[i]
	}
	return "/" + strings.Join(parts, "/")
}

// Rename gives a child object a new name (§3.2 Rename). Valid for elements,
// attributes, and whole reference lists; an individual IDREF inside an IDREFS
// cannot be renamed.
func Rename(obj any, name string) error {
	switch o := obj.(type) {
	case *Element:
		o.Name = name
		return nil
	case *Attr:
		if o.owner != nil {
			if o.owner.Attr(name) != nil {
				return fmt.Errorf("xmltree: rename: attribute %q already exists on <%s>", name, o.owner.Name)
			}
		}
		o.Name = name
		return nil
	case *RefList:
		if o.owner != nil {
			if o.owner.Ref(name) != nil {
				return fmt.Errorf("xmltree: rename: reference list %q already exists on <%s>", name, o.owner.Name)
			}
		}
		o.Name = name
		return nil
	case Ref:
		return fmt.Errorf("xmltree: cannot rename an individual IDREF within an IDREFS; rename the whole list")
	case *Text:
		return fmt.Errorf("xmltree: cannot rename PCDATA")
	default:
		return fmt.Errorf("xmltree: rename: unsupported object type %T", obj)
	}
}

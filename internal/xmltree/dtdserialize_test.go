package xmltree_test

import (
	"reflect"
	"testing"

	"repro/internal/shred"
	"repro/internal/testdocs"
	"repro/internal/xmltree"
)

// TestSerializeDTDRoundTrip: parse → serialize → parse must be a fixed
// point (the second serialization is byte-identical), and — the property
// the persistent store depends on — the reparsed DTD must generate exactly
// the same Shared Inlining schema.
func TestSerializeDTDRoundTrip(t *testing.T) {
	samples := map[string]struct {
		dtd  string
		root string
	}{
		"bio":  {testdocs.BioDTD, "db"},
		"cust": {testdocs.CustDTD, "CustDB"},
	}
	for name, s := range samples {
		d1, err := xmltree.ParseDTD(s.dtd)
		if err != nil {
			t.Fatalf("%s: parse: %v", name, err)
		}
		ser1 := xmltree.SerializeDTD(d1)
		d2, err := xmltree.ParseDTD(ser1)
		if err != nil {
			t.Fatalf("%s: reparse of serialized form: %v\n%s", name, err, ser1)
		}
		if ser2 := xmltree.SerializeDTD(d2); ser2 != ser1 {
			t.Fatalf("%s: serialization is not a fixed point:\nfirst:\n%s\nsecond:\n%s", name, ser1, ser2)
		}
		if !reflect.DeepEqual(d1.ElementNames(), d2.ElementNames()) {
			t.Fatalf("%s: element order changed across round-trip", name)
		}
		root := rootElem(t, d1, s.root)
		m1, err := shred.BuildMapping(d1, root, shred.Options{OrderColumn: true})
		if err != nil {
			t.Fatalf("%s: mapping original: %v", name, err)
		}
		m2, err := shred.BuildMapping(d2, root, shred.Options{OrderColumn: true})
		if err != nil {
			t.Fatalf("%s: mapping round-tripped: %v", name, err)
		}
		if !reflect.DeepEqual(m1.CreateTablesSQL(), m2.CreateTablesSQL()) {
			t.Fatalf("%s: round-tripped DTD generates a different schema", name)
		}
		if !reflect.DeepEqual(m1.TableOrder, m2.TableOrder) {
			t.Fatalf("%s: round-tripped DTD generates a different table order", name)
		}
	}
}

func rootElem(t *testing.T, d *xmltree.DTD, want string) string {
	t.Helper()
	for _, n := range d.ElementNames() {
		if n == want {
			return n
		}
	}
	t.Fatalf("root %q not declared", want)
	return ""
}

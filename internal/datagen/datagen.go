// Package datagen generates the paper's test data (§7.1): fixed synthetic
// documents parameterized by scaling factor, depth, and fanout; randomized
// synthetic documents; and a DBLP-like bibliography with the conference →
// publication → author/citation shape of the paper's real-life data set.
package datagen

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/xmltree"
)

// FixedParams are the §7.1.1 document parameters.
type FixedParams struct {
	// ScalingFactor is the number of subtrees at the root level (document
	// length).
	ScalingFactor int
	// Depth is the number of levels in each subtree (document complexity).
	Depth int
	// Fanout is the number of child subelements of internal nodes.
	Fanout int
	// Seed makes the payload deterministic.
	Seed int64
}

// ElementsPerSubtree returns the number of structural elements in one
// subtree: depth levels with fanout^level nodes per level.
func (p FixedParams) ElementsPerSubtree() int {
	if p.Fanout <= 1 {
		return p.Depth
	}
	n := 0
	pow := 1
	for i := 0; i < p.Depth; i++ {
		n += pow
		pow *= p.Fanout
	}
	return n
}

// TotalElements returns the structural element count excluding the root.
func (p FixedParams) TotalElements() int {
	return p.ScalingFactor * p.ElementsPerSubtree()
}

// FixedDTD returns the DTD for fixed synthetic documents of the given depth:
// one element type per level (e1…eD), each with an inlined 50-character
// string subelement and an integer subelement (§7.1.1).
func FixedDTD(depth int) string {
	var b strings.Builder
	b.WriteString("<!ELEMENT root (e1*)>\n")
	for d := 1; d <= depth; d++ {
		if d < depth {
			fmt.Fprintf(&b, "<!ELEMENT e%d (s%d, k%d, e%d*)>\n", d, d, d, d+1)
		} else {
			fmt.Fprintf(&b, "<!ELEMENT e%d (s%d, k%d)>\n", d, d, d)
		}
		fmt.Fprintf(&b, "<!ELEMENT s%d (#PCDATA)>\n<!ELEMENT k%d (#PCDATA)>\n", d, d)
	}
	return b.String()
}

const payloadAlphabet = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"

func randString(rng *rand.Rand, n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = payloadAlphabet[rng.Intn(len(payloadAlphabet))]
	}
	return string(b)
}

// Fixed generates a fixed synthetic document: ScalingFactor subtrees of
// exactly Depth levels with exactly Fanout children per internal node. Each
// element carries a 50-character string and an integer payload.
func Fixed(p FixedParams) *xmltree.Document {
	rng := rand.New(rand.NewSource(p.Seed))
	dtd := xmltree.MustParseDTD(FixedDTD(p.Depth))
	root := xmltree.NewElement("root")
	var build func(level int) *xmltree.Element
	build = func(level int) *xmltree.Element {
		e := xmltree.NewElement(fmt.Sprintf("e%d", level))
		s := xmltree.NewElement(fmt.Sprintf("s%d", level))
		s.AppendChild(xmltree.NewText(randString(rng, 50)))
		e.AppendChild(s)
		k := xmltree.NewElement(fmt.Sprintf("k%d", level))
		k.AppendChild(xmltree.NewText(fmt.Sprint(rng.Intn(1_000_000))))
		e.AppendChild(k)
		if level < p.Depth {
			for i := 0; i < p.Fanout; i++ {
				e.AppendChild(build(level + 1))
			}
		}
		return e
	}
	for i := 0; i < p.ScalingFactor; i++ {
		root.AppendChild(build(1))
	}
	doc := xmltree.NewDocument(root)
	doc.DTD = dtd
	return doc
}

// RandomizedParams are the §7.1.2 parameters: depth and fanout become upper
// bounds.
type RandomizedParams struct {
	ScalingFactor int
	// MaxDepth bounds each subtree's depth; the actual depth is uniform in
	// [2, MaxDepth].
	MaxDepth int
	// MaxFanout bounds each node's fanout; the actual fanout is uniform in
	// [1, MaxFanout].
	MaxFanout int
	Seed      int64
}

// Randomized generates a randomized synthetic document per §7.1.2.
func Randomized(p RandomizedParams) *xmltree.Document {
	if p.MaxDepth < 2 {
		p.MaxDepth = 2
	}
	if p.MaxFanout < 1 {
		p.MaxFanout = 1
	}
	rng := rand.New(rand.NewSource(p.Seed))
	dtd := xmltree.MustParseDTD(FixedDTD(p.MaxDepth))
	root := xmltree.NewElement("root")
	var build func(level, maxLevel int) *xmltree.Element
	build = func(level, maxLevel int) *xmltree.Element {
		e := xmltree.NewElement(fmt.Sprintf("e%d", level))
		s := xmltree.NewElement(fmt.Sprintf("s%d", level))
		s.AppendChild(xmltree.NewText(randString(rng, 50)))
		e.AppendChild(s)
		k := xmltree.NewElement(fmt.Sprintf("k%d", level))
		k.AppendChild(xmltree.NewText(fmt.Sprint(rng.Intn(1_000_000))))
		e.AppendChild(k)
		if level < maxLevel {
			fanout := 1 + rng.Intn(p.MaxFanout)
			for i := 0; i < fanout; i++ {
				e.AppendChild(build(level+1, maxLevel))
			}
		}
		return e
	}
	for i := 0; i < p.ScalingFactor; i++ {
		depth := 2 + rng.Intn(p.MaxDepth-1)
		root.AppendChild(build(1, depth))
	}
	doc := xmltree.NewDocument(root)
	doc.DTD = dtd
	return doc
}

// DBLPParams sizes the DBLP-like bibliography (§7.1.3). The paper's document
// held the conference publications of the DBLP bibliography (40 MB, >400k
// tuples); the defaults here reproduce its shape — very bushy and shallow —
// at a size that fits the test budget, with Scale to grow it.
type DBLPParams struct {
	Conferences int
	// PubsPerConf is the mean number of publications per conference.
	PubsPerConf int
	// YearFrom/YearTo spread publication years; the delete experiment
	// removes year-2000 publications, a small fraction of the document.
	YearFrom, YearTo int
	Seed             int64
}

// DBLPDTD declares the bibliography.
const DBLPDTD = `
<!ELEMENT dblp (conference*)>
<!ELEMENT conference (name, publication*)>
<!ELEMENT publication (title, pages?, author*, citation*)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT pages (#PCDATA)>
<!ELEMENT author (#PCDATA)>
<!ELEMENT citation (#PCDATA)>
<!ATTLIST publication year CDATA #IMPLIED key CDATA #IMPLIED>
`

// DBLP generates the bibliography document.
func DBLP(p DBLPParams) *xmltree.Document {
	if p.YearFrom == 0 {
		p.YearFrom = 1990
	}
	if p.YearTo == 0 {
		p.YearTo = 2001
	}
	rng := rand.New(rand.NewSource(p.Seed))
	dtd := xmltree.MustParseDTD(DBLPDTD)
	root := xmltree.NewElement("dblp")
	for c := 0; c < p.Conferences; c++ {
		conf := xmltree.NewElement("conference")
		nm := xmltree.NewElement("name")
		nm.AppendChild(xmltree.NewText(fmt.Sprintf("Conf-%03d", c)))
		conf.AppendChild(nm)
		// Bushy: publication counts vary around the mean.
		pubs := p.PubsPerConf/2 + rng.Intn(p.PubsPerConf+1)
		for i := 0; i < pubs; i++ {
			pub := xmltree.NewElement("publication")
			year := p.YearFrom + rng.Intn(p.YearTo-p.YearFrom+1)
			pub.ReplaceAttrValue("year", fmt.Sprint(year))
			pub.ReplaceAttrValue("key", fmt.Sprintf("conf/%03d/%d-%d", c, year, i))
			ti := xmltree.NewElement("title")
			ti.AppendChild(xmltree.NewText(randString(rng, 40)))
			pub.AppendChild(ti)
			if rng.Intn(2) == 0 {
				pg := xmltree.NewElement("pages")
				lo := 1 + rng.Intn(400)
				pg.AppendChild(xmltree.NewText(fmt.Sprintf("%d-%d", lo, lo+rng.Intn(20))))
				pub.AppendChild(pg)
			}
			authors := 1 + rng.Intn(4)
			for a := 0; a < authors; a++ {
				au := xmltree.NewElement("author")
				au.AppendChild(xmltree.NewText("Author " + randString(rng, 8)))
				pub.AppendChild(au)
			}
			cites := rng.Intn(8)
			for ct := 0; ct < cites; ct++ {
				ci := xmltree.NewElement("citation")
				ci.AppendChild(xmltree.NewText(fmt.Sprintf("ref-%d", rng.Intn(100000))))
				pub.AppendChild(ci)
			}
			conf.AppendChild(pub)
		}
		root.AppendChild(conf)
	}
	doc := xmltree.NewDocument(root)
	doc.DTD = dtd
	return doc
}

// Table1Grid returns the three §7.1.1 parameter sweeps exactly as Table 1
// specifies them: fixed fanout (f=1, d∈{2,4,8}, sf∈{100..800}), fixed depth
// (d=2, f∈{1,2,4,8}, sf∈{100..800}), and fixed scaling factor (sf=100,
// d∈{2..5}, f∈{2,4,8}).
func Table1Grid() []FixedParams {
	var out []FixedParams
	for _, d := range []int{2, 4, 8} {
		for _, sf := range []int{100, 200, 400, 800} {
			out = append(out, FixedParams{ScalingFactor: sf, Depth: d, Fanout: 1, Seed: 1})
		}
	}
	for _, f := range []int{1, 2, 4, 8} {
		for _, sf := range []int{100, 200, 400, 800} {
			out = append(out, FixedParams{ScalingFactor: sf, Depth: 2, Fanout: f, Seed: 1})
		}
	}
	for _, d := range []int{2, 3, 4, 5} {
		for _, f := range []int{2, 4, 8} {
			out = append(out, FixedParams{ScalingFactor: 100, Depth: d, Fanout: f, Seed: 1})
		}
	}
	return out
}

// CatalogParams sizes the attribute-heavy catalog document used by the TEXT
// benchmarks. Unlike the §7.1 documents — whose payloads are unique random
// strings — the catalog's text columns draw from small vocabularies (vendor
// names, categories, status flags), the regime where string interning pays:
// the same few strings appear across thousands of rows, so equality, joins,
// and DISTINCT on them hit the 4-byte symbol fast paths.
type CatalogParams struct {
	// Suppliers is the number of supplier entries (the vendor vocabulary).
	Suppliers int
	// Items is the number of catalog items; each references a supplier by
	// name (item/@vendor joins supplier/name).
	Items int
	Seed  int64
}

// CatalogDTD declares the catalog: a flat supplier list followed by a flat
// item list whose attributes carry the low-cardinality text.
const CatalogDTD = `
<!ELEMENT catalog (supplier*, item*)>
<!ELEMENT supplier (name, region)>
<!ELEMENT item (title)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT region (#PCDATA)>
<!ELEMENT title (#PCDATA)>
<!ATTLIST item vendor CDATA #REQUIRED category CDATA #REQUIRED status CDATA #REQUIRED>
`

// catalogCategories and catalogStatuses are the fixed attribute
// vocabularies; regions likewise repeat across suppliers. Category and
// status values are namespaced URIs — the idiomatic shape of controlled
// XML attribute vocabularies — so equal-prefix byte comparison is the
// realistic cost interning removes.
var (
	catalogCategories = []string{
		"urn:catalog:category:tools", "urn:catalog:category:fasteners",
		"urn:catalog:category:adhesives", "urn:catalog:category:electrical",
		"urn:catalog:category:plumbing", "urn:catalog:category:lumber",
		"urn:catalog:category:paint", "urn:catalog:category:safety",
		"urn:catalog:category:abrasives", "urn:catalog:category:hardware",
		"urn:catalog:category:lighting", "urn:catalog:category:garden",
		"urn:catalog:category:automotive", "urn:catalog:category:cleaning",
		"urn:catalog:category:storage", "urn:catalog:category:misc",
	}
	catalogStatuses = []string{
		"urn:catalog:status:active", "urn:catalog:status:backordered",
		"urn:catalog:status:discontinued", "urn:catalog:status:seasonal",
	}
	catalogRegions = []string{"north", "south", "east", "west", "central"}
)

// catalogVendor formats supplier s's display name (shared by supplier/name
// and item/@vendor, the join key).
func catalogVendor(s int) string {
	return fmt.Sprintf("Vendor-%03d Industrial Supply Company, Inc.", s)
}

// Catalog generates the attribute-heavy document. Vendor names repeat
// Items/Suppliers times on average; categories and statuses repeat far more.
func Catalog(p CatalogParams) *xmltree.Document {
	if p.Suppliers < 1 {
		p.Suppliers = 1
	}
	rng := rand.New(rand.NewSource(p.Seed))
	dtd := xmltree.MustParseDTD(CatalogDTD)
	root := xmltree.NewElement("catalog")
	vendors := make([]string, p.Suppliers)
	for s := 0; s < p.Suppliers; s++ {
		vendors[s] = catalogVendor(s)
		sup := xmltree.NewElement("supplier")
		nm := xmltree.NewElement("name")
		nm.AppendChild(xmltree.NewText(vendors[s]))
		sup.AppendChild(nm)
		rg := xmltree.NewElement("region")
		rg.AppendChild(xmltree.NewText(catalogRegions[rng.Intn(len(catalogRegions))]))
		sup.AppendChild(rg)
		root.AppendChild(sup)
	}
	for i := 0; i < p.Items; i++ {
		it := xmltree.NewElement("item")
		it.ReplaceAttrValue("vendor", vendors[rng.Intn(len(vendors))])
		it.ReplaceAttrValue("category", catalogCategories[rng.Intn(len(catalogCategories))])
		it.ReplaceAttrValue("status", catalogStatuses[rng.Intn(len(catalogStatuses))])
		ti := xmltree.NewElement("title")
		ti.AppendChild(xmltree.NewText(fmt.Sprintf("Item %s #%d", randString(rng, 6), i)))
		it.AppendChild(ti)
		root.AppendChild(it)
	}
	doc := xmltree.NewDocument(root)
	doc.DTD = dtd
	return doc
}

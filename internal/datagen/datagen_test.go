package datagen

import (
	"testing"
	"testing/quick"

	"repro/internal/engine"
	"repro/internal/shred"
	"repro/internal/xmltree"
)

func TestFixedStructure(t *testing.T) {
	p := FixedParams{ScalingFactor: 5, Depth: 3, Fanout: 2, Seed: 42}
	doc := Fixed(p)
	if doc.Root.Name != "root" {
		t.Fatalf("root = %s", doc.Root.Name)
	}
	subtrees := doc.Root.ChildElementsNamed("e1")
	if len(subtrees) != 5 {
		t.Fatalf("subtrees = %d", len(subtrees))
	}
	// Each subtree: 1 + 2 + 4 = 7 structural elements.
	if p.ElementsPerSubtree() != 7 {
		t.Errorf("ElementsPerSubtree = %d", p.ElementsPerSubtree())
	}
	count := 0
	xmltree.Walk(subtrees[0], func(e *xmltree.Element) bool {
		if e.Name[0] == 'e' {
			count++
		}
		return true
	})
	if count != 7 {
		t.Errorf("structural elements = %d, want 7", count)
	}
	// Payload: every element has s<i> (50 chars) and k<i> (integer).
	s1 := subtrees[0].FirstChildNamed("s1")
	if s1 == nil || len(s1.TextContent()) != 50 {
		t.Error("payload string wrong")
	}
	if subtrees[0].FirstChildNamed("k1") == nil {
		t.Error("payload integer missing")
	}
}

func TestFixedDeterministic(t *testing.T) {
	p := FixedParams{ScalingFactor: 3, Depth: 2, Fanout: 2, Seed: 7}
	a := Fixed(p).String()
	b := Fixed(p).String()
	if a != b {
		t.Error("same seed produced different documents")
	}
	p2 := p
	p2.Seed = 8
	if Fixed(p2).String() == a {
		t.Error("different seeds produced identical documents")
	}
}

// TestTable1TupleCounts checks the headline sizes from Table 1: the fixed-
// fanout sweep peaks at 6400 structural elements, the fixed-depth sweep at
// 7200.
func TestTable1TupleCounts(t *testing.T) {
	ff := FixedParams{ScalingFactor: 800, Depth: 8, Fanout: 1}
	if got := ff.TotalElements(); got != 6400 {
		t.Errorf("fixed-fanout max = %d, want 6400", got)
	}
	fd := FixedParams{ScalingFactor: 800, Depth: 2, Fanout: 8}
	if got := fd.TotalElements(); got != 7200 {
		t.Errorf("fixed-depth max = %d, want 7200", got)
	}
	if got := len(Table1Grid()); got != 12+16+12 {
		t.Errorf("grid size = %d", got)
	}
}

// TestFixedShredsIntoPerLevelTables confirms the mapping shape the
// experiments depend on: one table per level, payload inlined.
func TestFixedShredsIntoPerLevelTables(t *testing.T) {
	p := FixedParams{ScalingFactor: 4, Depth: 3, Fanout: 2, Seed: 1}
	doc := Fixed(p)
	s, err := engine.Open(doc, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Tables: root, e1, e2, e3.
	if got := len(s.M.TableOrder); got != 4 {
		t.Fatalf("tables = %v", s.M.TableOrder)
	}
	if got := s.TupleCount(); got != 1+p.TotalElements() {
		t.Errorf("tuples = %d, want %d", got, 1+p.TotalElements())
	}
	// Round trip.
	re, err := s.Reconstruct()
	if err != nil {
		t.Fatal(err)
	}
	if re.String() != doc.String() {
		t.Error("fixed document round trip mismatch")
	}
}

func TestRandomizedBounds(t *testing.T) {
	p := RandomizedParams{ScalingFactor: 20, MaxDepth: 4, MaxFanout: 3, Seed: 99}
	doc := Randomized(p)
	if got := len(doc.Root.ChildElementsNamed("e1")); got != 20 {
		t.Fatalf("subtrees = %d", got)
	}
	maxDepth := 0
	xmltree.Walk(doc.Root, func(e *xmltree.Element) bool {
		if e.Name[0] == 'e' && e.Depth() > maxDepth {
			maxDepth = e.Depth()
		}
		return true
	})
	if maxDepth > 4 {
		t.Errorf("depth bound exceeded: %d", maxDepth)
	}
	// Randomized docs still shred cleanly.
	if _, err := engine.Open(doc, engine.Options{}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyRandomizedAlwaysShreddable(t *testing.T) {
	f := func(seed int64, sf, d, fo uint8) bool {
		p := RandomizedParams{
			ScalingFactor: 1 + int(sf)%8,
			MaxDepth:      2 + int(d)%4,
			MaxFanout:     1 + int(fo)%3,
			Seed:          seed,
		}
		doc := Randomized(p)
		m, err := shred.BuildMapping(doc.DTD, doc.Root.Name, shred.Options{})
		if err != nil {
			return false
		}
		_, err = shred.NewShredder(m).Shred(doc)
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestDBLPShape(t *testing.T) {
	doc := DBLP(DBLPParams{Conferences: 10, PubsPerConf: 20, Seed: 5})
	confs := doc.Root.ChildElementsNamed("conference")
	if len(confs) != 10 {
		t.Fatalf("conferences = %d", len(confs))
	}
	pubs, year2000 := 0, 0
	xmltree.Walk(doc.Root, func(e *xmltree.Element) bool {
		if e.Name == "publication" {
			pubs++
			if y, _ := e.AttrValue("year"); y == "2000" {
				year2000++
			}
			if e.FirstChildNamed("title") == nil {
				t.Error("publication without title")
			}
			if len(e.ChildElementsNamed("author")) == 0 {
				t.Error("publication without authors")
			}
		}
		return true
	})
	if pubs < 100 {
		t.Errorf("publications = %d, implausibly few", pubs)
	}
	// Year 2000 is a small fraction (the paper deletes it as the random
	// workload analogue).
	if year2000 == 0 || year2000 > pubs/3 {
		t.Errorf("year-2000 fraction = %d/%d", year2000, pubs)
	}
	// DBLP maps and loads.
	s, err := engine.Open(doc, engine.Options{Delete: engine.PerTupleTrigger})
	if err != nil {
		t.Fatal(err)
	}
	// Publications are deletable by year through the mapping.
	n, err := s.DeleteSubtrees("publication", "a_year = '2000'")
	if err != nil {
		t.Fatal(err)
	}
	if n != year2000 {
		t.Errorf("deleted %d, want %d", n, year2000)
	}
}

func TestDBLPBushiness(t *testing.T) {
	doc := DBLP(DBLPParams{Conferences: 5, PubsPerConf: 30, Seed: 1})
	// Shallow: max element depth is 3 (conference/publication/author).
	maxDepth := 0
	xmltree.Walk(doc.Root, func(e *xmltree.Element) bool {
		if e.Depth() > maxDepth {
			maxDepth = e.Depth()
		}
		return true
	})
	if maxDepth != 3 {
		t.Errorf("max depth = %d, want 3 (bushy and shallow)", maxDepth)
	}
}

// TestCatalogShape: the attribute-heavy catalog shreds, round-trips, and
// actually exercises the interning regime — low-cardinality text repeated
// across many rows (intern hits dominate misses).
func TestCatalogShape(t *testing.T) {
	p := CatalogParams{Suppliers: 8, Items: 200, Seed: 7}
	doc := Catalog(p)
	s, err := engine.Open(doc, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	re, err := s.Reconstruct()
	if err != nil {
		t.Fatal(err)
	}
	if re.String() != doc.String() {
		t.Error("catalog round trip mismatch")
	}
	st := s.DB.Stats()
	if st.InternHits < int64(p.Items) {
		t.Errorf("InternHits = %d, want >= %d (vendor/category/status repeat per item)", st.InternHits, p.Items)
	}
	// Misses are dominated by the unique per-item titles; the attribute
	// columns still make hits outnumber them well past parity.
	if st.InternMisses == 0 || st.InternHits < 2*st.InternMisses {
		t.Errorf("hits/misses = %d/%d — catalog should be hit-dominated", st.InternHits, st.InternMisses)
	}
	if Catalog(p).String() != doc.String() {
		t.Error("catalog not deterministic for fixed seed")
	}
}

package shred

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/relational"
	"repro/internal/xmltree"
)

// The Edge mapping (§5.1, after Florescu & Kossmann): every element,
// attribute, reference, and text node is one tuple in a single Edge table.
// It needs no DTD but fragments the document maximally — the paper's stated
// reason for preferring inlining. It is provided as the alternative storage
// scheme the paper says it experimented with.

// Edge tuple kinds.
const (
	EdgeElem = "elem"
	EdgeAttr = "attr"
	EdgeRef  = "ref"
	EdgeText = "text"
)

// EdgeSchemaSQL returns the statements creating the Edge table and its
// indexes.
func EdgeSchemaSQL() []string {
	return []string{
		`CREATE TABLE Edge (id INTEGER, parentId INTEGER, ord INTEGER, kind VARCHAR(8), name VARCHAR(255), value VARCHAR(255))`,
		`CREATE INDEX idx_edge_id ON Edge (id)`,
		`CREATE INDEX idx_edge_parent ON Edge (parentId)`,
		`CREATE INDEX idx_edge_name ON Edge (name)`,
	}
}

// LoadEdge creates the Edge table (if absent) and loads the document,
// returning the number of edge tuples.
func LoadEdge(db *relational.DB, doc *xmltree.Document) (int, error) {
	for _, sql := range EdgeSchemaSQL() {
		if _, err := db.Exec(sql); err != nil {
			if !strings.Contains(err.Error(), "already exists") {
				return 0, err
			}
		}
	}
	t := db.Table("Edge")
	next := int64(1)
	count := 0
	var walk func(e *xmltree.Element, parent int64, ord int) error
	walk = func(e *xmltree.Element, parent int64, ord int) error {
		id := next
		next++
		pid := relational.Null
		if parent != 0 {
			pid = relational.Int(parent)
		}
		if _, err := t.Insert([]relational.Value{relational.Int(id), pid, relational.Int(int64(ord)), relational.Text(EdgeElem), relational.Text(e.Name), relational.Null}); err != nil {
			return err
		}
		count++
		sub := 0
		for _, a := range e.Attrs() {
			aid := next
			next++
			if _, err := t.Insert([]relational.Value{relational.Int(aid), relational.Int(id), relational.Int(int64(sub)), relational.Text(EdgeAttr), relational.Text(a.Name), relational.Text(a.Value)}); err != nil {
				return err
			}
			count++
			sub++
		}
		for _, r := range e.Refs() {
			for _, idv := range r.IDs {
				rid := next
				next++
				if _, err := t.Insert([]relational.Value{relational.Int(rid), relational.Int(id), relational.Int(int64(sub)), relational.Text(EdgeRef), relational.Text(r.Name), relational.Text(idv)}); err != nil {
					return err
				}
				count++
				sub++
			}
		}
		for _, c := range e.Children() {
			switch n := c.(type) {
			case *xmltree.Text:
				tid := next
				next++
				if _, err := t.Insert([]relational.Value{relational.Int(tid), relational.Int(id), relational.Int(int64(sub)), relational.Text(EdgeText), relational.Text(""), relational.Text(n.Data)}); err != nil {
					return err
				}
				count++
				sub++
			case *xmltree.Element:
				if err := walk(n, id, sub); err != nil {
					return err
				}
				sub++
			}
		}
		return nil
	}
	if err := walk(doc.Root, 0, 0); err != nil {
		return 0, err
	}
	return count, nil
}

// ReconstructEdge rebuilds the document from the Edge table, restoring full
// document order (the Edge mapping is the only scheme here that preserves
// order without the optional pos column).
func ReconstructEdge(db *relational.DB) (*xmltree.Document, error) {
	t := db.Table("Edge")
	if t == nil {
		return nil, fmt.Errorf("shred: no Edge table")
	}
	type edge struct {
		id, parent, ord int64
		kind, name      string
		value           relational.Value
	}
	var all []edge
	t.Scan(func(_ int, row []relational.Value) bool {
		e := edge{kind: row[3].MustText()}
		e.id = row[0].MustInt()
		if v, ok := row[1].Int(); ok {
			e.parent = v
		}
		if v, ok := row[2].Int(); ok {
			e.ord = v
		}
		if s, ok := row[4].Text(); ok {
			e.name = s
		}
		e.value = row[5]
		all = append(all, e)
		return true
	})
	children := make(map[int64][]edge)
	var root *edge
	for i := range all {
		e := all[i]
		if e.parent == 0 && e.kind == EdgeElem {
			if root != nil {
				return nil, fmt.Errorf("shred: multiple root edges")
			}
			root = &all[i]
			continue
		}
		children[e.parent] = append(children[e.parent], e)
	}
	if root == nil {
		return nil, fmt.Errorf("shred: no root edge")
	}
	for k := range children {
		kids := children[k]
		sort.Slice(kids, func(i, j int) bool { return kids[i].ord < kids[j].ord })
	}
	var build func(e edge) (*xmltree.Element, error)
	build = func(e edge) (*xmltree.Element, error) {
		el := xmltree.NewElement(e.name)
		for _, c := range children[e.id] {
			switch c.kind {
			case EdgeAttr:
				if _, err := el.SetAttr(c.name, valueAsString(c.value)); err != nil {
					return nil, err
				}
			case EdgeRef:
				el.AddRef(c.name, valueAsString(c.value))
			case EdgeText:
				el.AppendChild(xmltree.NewText(valueAsString(c.value)))
			case EdgeElem:
				ce, err := build(c)
				if err != nil {
					return nil, err
				}
				el.AppendChild(ce)
			}
		}
		return el, nil
	}
	rootEl, err := build(*root)
	if err != nil {
		return nil, err
	}
	return xmltree.NewDocument(rootEl), nil
}

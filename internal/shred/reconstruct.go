package shred

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/relational"
	"repro/internal/xmltree"
)

// Reconstruct rebuilds the XML document from the stored tuples. Without an
// order column, children appear in schema order (inlined children in DTD
// order, then child-table rows by tuple id); with Options.OrderColumn they
// appear by stored position, interleaving table children faithfully.
func Reconstruct(db *relational.DB, m *Mapping) (*xmltree.Document, error) {
	rootRows, err := tableRows(db, m, m.Root)
	if err != nil {
		return nil, err
	}
	roots := rootRows[nilKey]
	if len(roots) != 1 {
		return nil, fmt.Errorf("shred: expected 1 root tuple, found %d", len(roots))
	}
	// Pre-fetch all tables grouped by parentId.
	byParent := map[string]map[int64][]storedRow{m.Root: regroup(rootRows)}
	for _, elem := range m.TableOrder {
		if elem == m.Root {
			continue
		}
		rows, err := tableRows(db, m, elem)
		if err != nil {
			return nil, err
		}
		byParent[elem] = regroup(rows)
	}
	root, err := m.buildElement(m.Root, roots[0], byParent)
	if err != nil {
		return nil, err
	}
	doc := xmltree.NewDocument(root)
	doc.DTD = m.DTD
	return doc, nil
}

// storedRow pairs a tuple with its id and position.
type storedRow struct {
	id   int64
	pos  int64
	vals map[string]relational.Value // keyed by lower-case column name
}

const nilKey = int64(-1)

// tableRows loads an entire table grouped by parentId (nilKey for NULL).
func tableRows(db *relational.DB, m *Mapping, elem string) (map[int64][]storedRow, error) {
	tm := m.Tables[elem]
	t := db.Table(tm.Name)
	if t == nil {
		return nil, fmt.Errorf("shred: table %s missing", tm.Name)
	}
	out := make(map[int64][]storedRow)
	idIdx := t.Schema.ColumnIndex("id")
	pidIdx := t.Schema.ColumnIndex("parentId")
	posIdx := t.Schema.ColumnIndex("pos")
	t.Scan(func(_ int, row []relational.Value) bool {
		sr := storedRow{vals: make(map[string]relational.Value, len(row))}
		for i, c := range t.Schema.Columns {
			sr.vals[strings.ToLower(c.Name)] = row[i]
		}
		if v, ok := row[idIdx].Int(); ok {
			sr.id = v
		}
		if posIdx >= 0 {
			if v, ok := row[posIdx].Int(); ok {
				sr.pos = v
			}
		}
		key := nilKey
		if v, ok := row[pidIdx].Int(); ok {
			key = v
		}
		out[key] = append(out[key], sr)
		return true
	})
	for k := range out {
		rows := out[k]
		sort.Slice(rows, func(i, j int) bool {
			if m.Opts.OrderColumn && rows[i].pos != rows[j].pos {
				return rows[i].pos < rows[j].pos
			}
			return rows[i].id < rows[j].id
		})
	}
	return out, nil
}

func regroup(rows map[int64][]storedRow) map[int64][]storedRow { return rows }

func (m *Mapping) buildElement(elem string, row storedRow, byParent map[string]map[int64][]storedRow) (*xmltree.Element, error) {
	tm := m.Tables[elem]
	e := xmltree.NewElement(elem)
	if err := m.applyInlined(tm, e, nil, row); err != nil {
		return nil, err
	}
	// Children in schema order: the DTD's declared order interleaves
	// inlined children (already applied above, as elements) and table
	// children.
	for _, childElem := range tm.ChildTables {
		for _, childRow := range byParent[childElem][row.id] {
			ce, err := m.buildElement(childElem, childRow, byParent)
			if err != nil {
				return nil, err
			}
			e.AppendChild(ce)
		}
	}
	return e, nil
}

// applyInlined populates e with the attributes, text, and inlined child
// elements stored at the given path prefix.
func (m *Mapping) applyInlined(tm *TableMap, e *xmltree.Element, path []string, row storedRow) error {
	prefix := strings.Join(path, "/")
	// Attributes and text at this path.
	for _, c := range tm.Columns {
		if strings.Join(c.Path, "/") != prefix {
			continue
		}
		v := row.vals[strings.ToLower(c.Name)]
		if v.IsNull() {
			continue
		}
		switch c.Kind {
		case AttrColumn:
			s := valueAsString(v)
			switch c.RefKind {
			case xmltree.AttrIDREF, xmltree.AttrIDREFS:
				ids := strings.Fields(s)
				if len(ids) > 0 {
					if err := e.AttachRefList(&xmltree.RefList{Name: c.Attr, IDs: ids}); err != nil {
						return err
					}
				}
			default:
				if _, err := e.SetAttr(c.Attr, s); err != nil {
					return err
				}
			}
		case TextColumn:
			if s := valueAsString(v); s != "" {
				e.AppendChild(xmltree.NewText(s))
			}
		}
	}
	// Inlined child elements one level deeper.
	elemName := tm.Element
	if len(path) > 0 {
		elemName = path[len(path)-1]
	}
	for _, child := range m.DTD.ChildNamesOrdered(elemName) {
		childPath := append(append([]string(nil), path...), child)
		if !m.pathPresent(tm, childPath, row) {
			continue
		}
		ce := xmltree.NewElement(child)
		if err := m.applyInlined(tm, ce, childPath, row); err != nil {
			return err
		}
		e.AppendChild(ce)
	}
	return nil
}

// pathPresent reports whether the inlined element at path exists in the
// tuple: its flag is set, or any of its (or its descendants') columns are
// non-NULL.
func (m *Mapping) pathPresent(tm *TableMap, path []string, row storedRow) bool {
	prefix := strings.Join(path, "/")
	found := false
	for _, c := range tm.Columns {
		p := strings.Join(c.Path, "/")
		if p != prefix && !strings.HasPrefix(p, prefix+"/") {
			continue
		}
		found = true
		if !row.vals[strings.ToLower(c.Name)].IsNull() {
			return true
		}
	}
	// The path belongs to this table but every column is NULL → absent.
	// A path with no columns at all (pure structural element that has
	// table children only) cannot be inlined, so found=false means absent.
	_ = found
	return false
}

// ElementFromRow materializes the element a single tuple stores — its
// attributes, text, and inlined children — without descending into child
// tables. vals maps lower-case column names to values. The Sorted Outer
// Union reconstructor attaches child-table elements afterwards.
func (m *Mapping) ElementFromRow(tableElem string, vals map[string]relational.Value) (*xmltree.Element, error) {
	tm := m.Tables[tableElem]
	if tm == nil {
		return nil, fmt.Errorf("shred: element %q has no table", tableElem)
	}
	e := xmltree.NewElement(tableElem)
	if err := m.applyInlined(tm, e, nil, storedRow{vals: vals}); err != nil {
		return nil, err
	}
	return e, nil
}

func valueAsString(v relational.Value) string {
	if s, ok := v.Text(); ok {
		return s
	}
	if n, ok := v.Int(); ok {
		return strconv.FormatInt(n, 10)
	}
	return ""
}

// Package shred implements the XML-to-relational storage mappings of §5:
// the Shared Inlining method (the paper's primary storage scheme) and the
// Edge mapping (the DTD-less alternative), together with the shredder that
// loads a document into a relational.DB and the reconstructor that rebuilds
// XML from stored tuples.
package shred

import (
	"fmt"
	"strings"

	"repro/internal/relational"
	"repro/internal/xmltree"
)

// ColumnKind classifies a mapped column.
type ColumnKind int

// Column kinds.
const (
	// AttrColumn stores an attribute value (including IDREF/IDREFS values,
	// which are stored as their space-separated string form).
	AttrColumn ColumnKind = iota
	// TextColumn stores an element's PCDATA content.
	TextColumn
	// FlagColumn records presence of an inlined non-leaf element whose own
	// content is entirely inlined — without it, all-NULL children would be
	// indistinguishable from an absent element (§6.1).
	FlagColumn
)

// ColumnMap maps one relational column back to the XML item it stores.
type ColumnMap struct {
	// Name is the SQL column name.
	Name string
	// Path is the element path from the table's element to the inlined
	// element ("" for the table element itself is an empty path).
	Path []string
	// Attr is the attribute name for AttrColumn ("" otherwise).
	Attr string
	Kind ColumnKind
	// RefKind is the declared attribute type, used to rebuild reference
	// lists on reconstruction.
	RefKind xmltree.AttrType
}

// TableMap describes one generated table.
type TableMap struct {
	// Element is the XML element the table stores.
	Element string
	// Name is the SQL table name (reserved words are suffixed).
	Name string
	// Parent is the element name of the parent table ("" for the root).
	Parent string
	// Columns are the data columns following the id and parentId columns.
	Columns []ColumnMap
	// ChildTables lists child table element names in DTD order.
	ChildTables []string
	// InlinedChildren lists, in DTD order, the inlined child element names
	// (used by the reconstructor to emit children in schema order).
	InlinedChildren []string
}

// ColumnNames returns the full SQL column list: id, parentId, then data.
func (tm *TableMap) ColumnNames() []string {
	out := []string{"id", "parentId"}
	for _, c := range tm.Columns {
		out = append(out, c.Name)
	}
	return out
}

// Column returns the column map with the given SQL name, or nil.
func (tm *TableMap) Column(name string) *ColumnMap {
	for i := range tm.Columns {
		if strings.EqualFold(tm.Columns[i].Name, name) {
			return &tm.Columns[i]
		}
	}
	return nil
}

// Options configures mapping generation.
type Options struct {
	// OrderColumn adds a `pos` column recording each tuple's position among
	// its parent's children — the paper's §8 future-work extension for
	// order-preserving storage.
	OrderColumn bool
}

// Mapping is a generated Shared Inlining schema for one DTD.
type Mapping struct {
	DTD  *xmltree.DTD
	Root string
	Opts Options
	// Tables maps element name → table map, for elements that own tables.
	Tables map[string]*TableMap
	// TableOrder lists table element names parent-before-child.
	TableOrder []string
}

// Table returns the table map for an element name, or nil.
func (m *Mapping) Table(element string) *TableMap { return m.Tables[element] }

// sqlReserved lists identifiers that would collide with the SQL subset's
// keywords in generated statements (the TPC-W schema's Order element is the
// motivating case).
var sqlReserved = map[string]bool{
	"ORDER": true, "SELECT": true, "FROM": true, "WHERE": true, "DELETE": true,
	"UPDATE": true, "INSERT": true, "CREATE": true, "TABLE": true, "INDEX": true,
	"TRIGGER": true, "BY": true, "AND": true, "OR": true, "NOT": true, "IN": true,
	"IS": true, "NULL": true, "VALUES": true, "SET": true, "INTO": true,
	"UNION": true, "ALL": true, "WITH": true, "AS": true, "ON": true, "FOR": true,
	"EACH": true, "ROW": true, "STATEMENT": true, "AFTER": true, "DROP": true,
	"MIN": true, "MAX": true, "COUNT": true, "DISTINCT": true, "ID": true,
	"PARENTID": true, "POS": true, "INTEGER": true, "VARCHAR": true,
}

// sqlName converts an XML name into a safe SQL identifier.
func sqlName(name string) string {
	var b strings.Builder
	for _, r := range name {
		switch {
		case r == '-' || r == '.' || r == ':':
			b.WriteByte('_')
		default:
			b.WriteRune(r)
		}
	}
	s := b.String()
	if sqlReserved[strings.ToUpper(s)] {
		return s + "_t"
	}
	return s
}

// BuildMapping derives the Shared Inlining relational schema from a DTD
// (§5.1): child elements with 1:1 occurrence are inlined as columns of their
// parent's table; children with 1:n occurrence get tables of their own with
// id/parentId linkage. Elements with multiple parents in the DTD, and
// recursive elements, also get their own tables.
func BuildMapping(dtd *xmltree.DTD, root string, opts Options) (*Mapping, error) {
	if dtd.Elements[root] == nil {
		return nil, fmt.Errorf("shred: DTD does not declare root element %q", root)
	}
	m := &Mapping{DTD: dtd, Root: root, Opts: opts, Tables: make(map[string]*TableMap)}

	// Elements with more than one distinct DTD parent cannot be inlined
	// into a single table.
	parents := make(map[string]map[string]bool)
	for _, e := range dtd.ElementNames() {
		for _, c := range dtd.ChildNamesOrdered(e) {
			if parents[c] == nil {
				parents[c] = make(map[string]bool)
			}
			parents[c][e] = true
		}
	}
	multiParent := func(e string) bool { return len(parents[e]) > 1 }

	var buildTable func(element, parentTable string) error
	usedNames := make(map[string]bool)
	buildTable = func(element, parentTable string) error {
		if _, dup := m.Tables[element]; dup {
			// Shared table: the element already has a table (reached via a
			// different parent). The parentId column is shared.
			return nil
		}
		name := sqlName(element)
		for usedNames[strings.ToLower(name)] {
			name += "_x"
		}
		usedNames[strings.ToLower(name)] = true
		tm := &TableMap{Element: element, Name: name, Parent: parentTable}
		m.Tables[element] = tm
		m.TableOrder = append(m.TableOrder, element)

		var pendingChildren []string
		var inline func(elem string, path []string, onPath map[string]bool) error
		inline = func(elem string, path []string, onPath map[string]bool) error {
			prefix := strings.Join(path, "_")
			colName := func(suffix string) string {
				n := suffix
				if prefix != "" {
					n = prefix + "_" + suffix
				}
				n = sqlName(n)
				for tm.Column(n) != nil {
					n += "_x"
				}
				return n
			}
			// Attributes become columns.
			for _, ad := range dtd.AttrDecls(elem) {
				tm.Columns = append(tm.Columns, ColumnMap{
					Name:    colName("a_" + ad.Name),
					Path:    append([]string(nil), path...),
					Attr:    ad.Name,
					Kind:    AttrColumn,
					RefKind: ad.Type,
				})
			}
			decl := dtd.Elements[elem]
			hasText := decl != nil && (decl.Kind == xmltree.ContentPCDATA || decl.Kind == xmltree.ContentMixed || decl.Kind == xmltree.ContentAny)
			if hasText {
				tm.Columns = append(tm.Columns, ColumnMap{
					Name: colName("v"),
					Path: append([]string(nil), path...),
					Kind: TextColumn,
				})
			}
			occ := dtd.ChildOccurrences(elem)
			inlinedAny := false
			for _, child := range dtd.ChildNamesOrdered(elem) {
				switch {
				case !occ[child].AtMostOnce(), multiParent(child), onPath[child], dtd.Elements[child] == nil:
					// Needs its own table (1:n, shared, recursive, or
					// undeclared — treated as repeatable).
					pendingChildren = append(pendingChildren, child)
				default:
					inlinedAny = true
					if len(path) == 0 {
						tm.InlinedChildren = append(tm.InlinedChildren, child)
					}
					onPath[child] = true
					if err := inline(child, append(path, child), onPath); err != nil {
						return err
					}
					delete(onPath, child)
				}
			}
			// A non-root inlined element that is itself non-leaf gets a
			// presence flag (§6.1).
			if len(path) > 0 && (inlinedAny || hasText || len(dtd.AttrDecls(elem)) > 0) {
				if !hasText && len(dtd.AttrDecls(elem)) == 0 {
					tm.Columns = append(tm.Columns, ColumnMap{
						Name: colName("f"),
						Path: append([]string(nil), path...),
						Kind: FlagColumn,
					})
				}
			} else if len(path) > 0 && !hasText {
				// Empty declared element: presence must still be recordable.
				tm.Columns = append(tm.Columns, ColumnMap{
					Name: colName("f"),
					Path: append([]string(nil), path...),
					Kind: FlagColumn,
				})
			}
			return nil
		}
		if err := inline(element, nil, map[string]bool{element: true}); err != nil {
			return err
		}
		for _, child := range pendingChildren {
			tm.ChildTables = append(tm.ChildTables, child)
		}
		for _, child := range pendingChildren {
			if err := buildTable(child, element); err != nil {
				return err
			}
		}
		return nil
	}
	if err := buildTable(root, ""); err != nil {
		return nil, err
	}
	return m, nil
}

// CreateTablesSQL returns the CREATE TABLE and CREATE INDEX statements for
// the mapping: one table per 1:n element with id/parentId columns, indexed
// on both (the paper's schema setup). Ordered B+tree indexes ride along:
// (id) streams each relation in document order for the Sorted Outer Union
// (its writes are ascending-id appends, so maintenance stays cheap), and
// (parentId, pos) — under order-preserving storage — turns sibling-window
// position maintenance into range probes. Child branches of the outer
// union need per-parent id order, which the executor gets by sorting each
// parentId hash bucket; a (parentId, id) B+tree would buy the same order
// at a mid-tree insertion per copied tuple.
func (m *Mapping) CreateTablesSQL() []string {
	var out []string
	for _, elem := range m.TableOrder {
		tm := m.Tables[elem]
		var cols []string
		cols = append(cols, "id INTEGER", "parentId INTEGER")
		if m.Opts.OrderColumn {
			cols = append(cols, "pos INTEGER")
		}
		for _, c := range tm.Columns {
			typ := "VARCHAR(255)"
			if c.Kind == FlagColumn {
				typ = "INTEGER"
			}
			cols = append(cols, c.Name+" "+typ)
		}
		out = append(out, fmt.Sprintf("CREATE TABLE %s (%s)", tm.Name, strings.Join(cols, ", ")))
		out = append(out, fmt.Sprintf("CREATE INDEX idx_%s_id ON %s (id)", tm.Name, tm.Name))
		out = append(out, fmt.Sprintf("CREATE INDEX idx_%s_parent ON %s (parentId)", tm.Name, tm.Name))
		out = append(out, fmt.Sprintf("CREATE ORDERED INDEX oidx_%s_id ON %s (id)", tm.Name, tm.Name))
		if m.Opts.OrderColumn {
			out = append(out, fmt.Sprintf("CREATE ORDERED INDEX oidx_%s_pos ON %s (parentId, pos)", tm.Name, tm.Name))
		}
	}
	return out
}

// ParentChain returns the table elements from the root down to element,
// inclusive. It returns nil if the element has no table.
func (m *Mapping) ParentChain(element string) []string {
	tm := m.Tables[element]
	if tm == nil {
		return nil
	}
	var chain []string
	for e := element; e != ""; {
		chain = append(chain, e)
		e = m.Tables[e].Parent
	}
	for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
		chain[i], chain[j] = chain[j], chain[i]
	}
	return chain
}

// Descendants returns element and every table element below it, in
// parent-before-child order.
func (m *Mapping) Descendants(element string) []string {
	var out []string
	var walk func(e string)
	walk = func(e string) {
		tm := m.Tables[e]
		if tm == nil {
			return
		}
		out = append(out, e)
		for _, c := range tm.ChildTables {
			walk(c)
		}
	}
	walk(element)
	return out
}

// TableForPath resolves a path of element names from the root (e.g.
// CustDB/Customer/Order) to the table element that stores the final step,
// returning also the remaining inlined path within that table.
func (m *Mapping) TableForPath(path []string) (tableElem string, inlined []string, err error) {
	if len(path) == 0 || path[0] != m.Root {
		return "", nil, fmt.Errorf("shred: path must start at root %q", m.Root)
	}
	cur := m.Root
	for i := 1; i < len(path); i++ {
		step := path[i]
		if _, ok := m.Tables[step]; ok && contains(m.Tables[cur].ChildTables, step) {
			cur = step
			continue
		}
		// The rest of the path must be inlined within cur's table.
		return cur, path[i:], nil
	}
	return cur, nil, nil
}

func contains(ss []string, s string) bool {
	for _, x := range ss {
		if x == s {
			return true
		}
	}
	return false
}

// FindColumn locates the column storing the item at the given inlined path
// below a table element: attr != "" selects that attribute's column, attr ==
// "" selects the PCDATA column. It returns nil if the path is not inlined in
// the table.
func (m *Mapping) FindColumn(tableElem string, path []string, attr string) *ColumnMap {
	tm := m.Tables[tableElem]
	if tm == nil {
		return nil
	}
	want := strings.Join(path, "/")
	for i := range tm.Columns {
		c := &tm.Columns[i]
		if strings.Join(c.Path, "/") != want {
			continue
		}
		if attr != "" {
			if c.Kind == AttrColumn && c.Attr == attr {
				return c
			}
			continue
		}
		if c.Kind == TextColumn {
			return c
		}
	}
	return nil
}

// FlagColumnFor returns the presence-flag column of an inlined path, if one
// exists.
func (m *Mapping) FlagColumnFor(tableElem string, path []string) *ColumnMap {
	tm := m.Tables[tableElem]
	if tm == nil {
		return nil
	}
	want := strings.Join(path, "/")
	for i := range tm.Columns {
		c := &tm.Columns[i]
		if c.Kind == FlagColumn && strings.Join(c.Path, "/") == want {
			return c
		}
	}
	return nil
}

// ColumnsUnder returns every column at or below an inlined path, for
// NULLing-out a deleted inlined element (§6.1 "simple" deletions).
func (m *Mapping) ColumnsUnder(tableElem string, path []string) []*ColumnMap {
	tm := m.Tables[tableElem]
	if tm == nil {
		return nil
	}
	prefix := strings.Join(path, "/")
	var out []*ColumnMap
	for i := range tm.Columns {
		c := &tm.Columns[i]
		p := strings.Join(c.Path, "/")
		if p == prefix || strings.HasPrefix(p, prefix+"/") {
			out = append(out, c)
		}
	}
	return out
}

// valueToSQL renders a column value for embedding into generated SQL.
func valueToSQL(v relational.Value) string { return relational.FormatValue(v) }

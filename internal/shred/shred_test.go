package shred

import (
	"strings"
	"testing"

	"repro/internal/relational"
	"repro/internal/testdocs"
	"repro/internal/xmltree"
)

func custMapping(t testing.TB, opts Options) *Mapping {
	dtd := xmltree.MustParseDTD(testdocs.CustDTD)
	m, err := BuildMapping(dtd, "CustDB", opts)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestInliningDecisions verifies the paper's example: the Figure 4 DTD
// produces exactly the tables CustDB, Customer, Order, and OrderLine, each
// with id and parentId, with 1:1 children inlined.
func TestInliningDecisions(t *testing.T) {
	m := custMapping(t, Options{})
	want := []string{"CustDB", "Customer", "Order", "OrderLine"}
	if len(m.TableOrder) != len(want) {
		t.Fatalf("tables = %v, want %v", m.TableOrder, want)
	}
	for i, e := range want {
		if m.TableOrder[i] != e {
			t.Errorf("table %d = %s, want %s", i, m.TableOrder[i], e)
		}
	}
	// Customer inlines Name and Address (City, State).
	cust := m.Table("Customer")
	var colNames []string
	for _, c := range cust.Columns {
		colNames = append(colNames, c.Name)
	}
	joined := strings.Join(colNames, ",")
	for _, want := range []string{"Name_v", "Address_City_v", "Address_State_v"} {
		if !strings.Contains(joined, want) {
			t.Errorf("Customer columns %v missing %s", colNames, want)
		}
	}
	// Order is not inlined (1:n) and its SQL name avoids the keyword.
	ord := m.Table("Order")
	if ord == nil {
		t.Fatal("Order has no table")
	}
	if strings.EqualFold(ord.Name, "ORDER") {
		t.Errorf("Order table name %q collides with SQL keyword", ord.Name)
	}
	if ord.Parent != "Customer" {
		t.Errorf("Order parent = %q", ord.Parent)
	}
	if ol := m.Table("OrderLine"); ol == nil || ol.Parent != "Order" {
		t.Error("OrderLine parentage wrong")
	}
}

func TestMappingParentChainAndDescendants(t *testing.T) {
	m := custMapping(t, Options{})
	chain := m.ParentChain("OrderLine")
	want := []string{"CustDB", "Customer", "Order", "OrderLine"}
	for i := range want {
		if chain[i] != want[i] {
			t.Fatalf("chain = %v, want %v", chain, want)
		}
	}
	desc := m.Descendants("Customer")
	if len(desc) != 3 || desc[0] != "Customer" || desc[2] != "OrderLine" {
		t.Errorf("descendants = %v", desc)
	}
	if m.ParentChain("Name") != nil {
		t.Error("inlined element should have no chain")
	}
}

func TestTableForPath(t *testing.T) {
	m := custMapping(t, Options{})
	elem, inlined, err := m.TableForPath([]string{"CustDB", "Customer", "Address", "City"})
	if err != nil {
		t.Fatal(err)
	}
	if elem != "Customer" || len(inlined) != 2 || inlined[0] != "Address" {
		t.Errorf("TableForPath = %s, %v", elem, inlined)
	}
	elem, inlined, err = m.TableForPath([]string{"CustDB", "Customer", "Order"})
	if err != nil {
		t.Fatal(err)
	}
	if elem != "Order" || inlined != nil {
		t.Errorf("TableForPath = %s, %v", elem, inlined)
	}
	if _, _, err := m.TableForPath([]string{"Wrong"}); err == nil {
		t.Error("bad root should fail")
	}
}

func TestShredAndLoad(t *testing.T) {
	m := custMapping(t, Options{})
	db := relational.NewDB()
	doc := testdocs.Cust()
	ds, err := Load(db, m, doc)
	if err != nil {
		t.Fatal(err)
	}
	// 1 CustDB + 3 Customers + 3 Orders + 4 OrderLines = 11 tuples.
	if got := ds.TupleCount(); got != 11 {
		t.Errorf("tuples = %d, want 11", got)
	}
	if got := db.Table("Customer").RowCount(); got != 3 {
		t.Errorf("Customer rows = %d", got)
	}
	// Inlined values landed in the parent tuple.
	rows, err := db.Query(`SELECT Name_v, Address_City_v FROM Customer WHERE Address_State_v = 'CA'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Data) != 1 || rows.Data[0][0] != relational.Text("John") || rows.Data[0][1] != relational.Text("Sacramento") {
		t.Errorf("CA customer = %v", rows.Data)
	}
	// parentId linkage: John(Seattle)'s orders.
	rows, err = db.Query(`
SELECT COUNT(*) FROM Order_t O, Customer C
WHERE O.parentId = C.id AND C.Address_City_v = 'Seattle'`)
	if err != nil {
		t.Fatal(err)
	}
	if rows.Data[0][0] != relational.Int(2) {
		t.Errorf("Seattle John has %v orders, want 2", rows.Data[0][0])
	}
}

func TestReconstructRoundTrip(t *testing.T) {
	m := custMapping(t, Options{})
	db := relational.NewDB()
	doc := testdocs.Cust()
	if _, err := Load(db, m, doc); err != nil {
		t.Fatal(err)
	}
	re, err := Reconstruct(db, m)
	if err != nil {
		t.Fatal(err)
	}
	// The customer DTD has no mixed ordering issues, so the round trip is
	// exact up to serialization.
	if got, want := re.String(), doc.String(); got != want {
		t.Errorf("round trip mismatch:\ngot:  %s\nwant: %s", got, want)
	}
}

func TestReconstructWithOrderColumn(t *testing.T) {
	m := custMapping(t, Options{OrderColumn: true})
	db := relational.NewDB()
	doc := testdocs.Cust()
	if _, err := Load(db, m, doc); err != nil {
		t.Fatal(err)
	}
	re, err := Reconstruct(db, m)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := re.String(), doc.String(); got != want {
		t.Errorf("ordered round trip mismatch:\ngot:  %s\nwant: %s", got, want)
	}
}

func TestPresenceFlagDistinguishesEmptyFromAbsent(t *testing.T) {
	dtd := xmltree.MustParseDTD(`
<!ELEMENT root (item*)>
<!ELEMENT item (wrapper?)>
<!ELEMENT wrapper (note?)>
<!ELEMENT note (#PCDATA)>
`)
	m, err := BuildMapping(dtd, "root", Options{})
	if err != nil {
		t.Fatal(err)
	}
	db := relational.NewDB()
	doc := xmltree.MustParse(`<root><item><wrapper/></item><item/></root>`)
	doc.DTD = dtd
	if _, err := Load(db, m, doc); err != nil {
		t.Fatal(err)
	}
	re, err := Reconstruct(db, m)
	if err != nil {
		t.Fatal(err)
	}
	items := re.Root.ChildElementsNamed("item")
	if len(items) != 2 {
		t.Fatalf("items = %d", len(items))
	}
	if items[0].FirstChildNamed("wrapper") == nil {
		t.Error("present empty wrapper lost (presence flag not honored)")
	}
	if items[1].FirstChildNamed("wrapper") != nil {
		t.Error("absent wrapper materialized")
	}
}

func TestBioMappingWithReferences(t *testing.T) {
	dtd := xmltree.MustParseDTD(testdocs.BioDTD)
	m, err := BuildMapping(dtd, "db", Options{})
	if err != nil {
		t.Fatal(err)
	}
	db := relational.NewDB()
	doc := testdocs.Bio()
	if _, err := Load(db, m, doc); err != nil {
		t.Fatal(err)
	}
	re, err := Reconstruct(db, m)
	if err != nil {
		t.Fatal(err)
	}
	// IDREFS survive the round trip as ordered lists.
	lalab := re.ByID("lalab")
	if lalab == nil {
		t.Fatal("lalab lost")
	}
	mg := lalab.Ref("managers")
	if mg == nil || len(mg.IDs) != 2 || mg.IDs[0] != "smith1" || mg.IDs[1] != "jones1" {
		t.Errorf("managers = %+v", mg)
	}
	// Multi-parent element lab has a single shared table.
	if m.Table("lab") == nil {
		t.Fatal("lab has no table")
	}
	labRows := db.Table(m.Table("lab").Name).RowCount()
	if labRows != 3 {
		t.Errorf("lab table rows = %d, want 3 (shared across parents)", labRows)
	}
}

func TestRecursiveDTDGetsOwnTable(t *testing.T) {
	dtd := xmltree.MustParseDTD(`
<!ELEMENT part (name, part*)>
<!ELEMENT name (#PCDATA)>
`)
	m, err := BuildMapping(dtd, "part", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.TableOrder) != 1 {
		t.Fatalf("tables = %v", m.TableOrder)
	}
	pt := m.Table("part")
	if len(pt.ChildTables) != 1 || pt.ChildTables[0] != "part" {
		t.Errorf("recursive child tables = %v", pt.ChildTables)
	}
	db := relational.NewDB()
	doc := xmltree.MustParse(`<part><name>a</name><part><name>b</name><part><name>c</name></part></part></part>`)
	doc.DTD = dtd
	ds, err := Load(db, m, doc)
	if err != nil {
		t.Fatal(err)
	}
	if ds.TupleCount() != 3 {
		t.Errorf("tuples = %d, want 3", ds.TupleCount())
	}
}

func TestShredRejectsUnknownElement(t *testing.T) {
	m := custMapping(t, Options{})
	doc := xmltree.MustParse(`<CustDB><Bogus/></CustDB>`)
	if _, err := NewShredder(m).Shred(doc); err == nil {
		t.Error("unknown element should fail shredding")
	}
	other := xmltree.MustParse(`<Other/>`)
	if _, err := NewShredder(m).Shred(other); err == nil {
		t.Error("wrong root should fail shredding")
	}
}

func TestInsertSQLForm(t *testing.T) {
	m := custMapping(t, Options{})
	sh := NewShredder(m)
	ds, err := sh.Shred(testdocs.Cust())
	if err != nil {
		t.Fatal(err)
	}
	stmts := m.InsertSQL(ds)
	if len(stmts) != ds.TupleCount() {
		t.Errorf("%d statements for %d tuples", len(stmts), ds.TupleCount())
	}
	// The statements must execute against a fresh schema.
	db := relational.NewDB()
	for _, sql := range m.CreateTablesSQL() {
		db.MustExec(sql)
	}
	for _, sql := range stmts {
		if _, err := db.Exec(sql); err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
	}
	if got := db.Table("Customer").RowCount(); got != 3 {
		t.Errorf("customers = %d", got)
	}
}

func TestEdgeRoundTrip(t *testing.T) {
	db := relational.NewDB()
	doc := testdocs.Cust()
	n, err := LoadEdge(db, doc)
	if err != nil {
		t.Fatal(err)
	}
	if n < 30 {
		t.Errorf("edge tuples = %d, implausibly few", n)
	}
	re, err := ReconstructEdge(db)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := re.String(), doc.String(); got != want {
		t.Errorf("edge round trip mismatch:\ngot:  %s\nwant: %s", got, want)
	}
}

func TestEdgePreservesMixedContentOrder(t *testing.T) {
	db := relational.NewDB()
	doc := xmltree.MustParse(`<p>alpha<b>beta</b>gamma<i>delta</i></p>`)
	if _, err := LoadEdge(db, doc); err != nil {
		t.Fatal(err)
	}
	re, err := ReconstructEdge(db)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := re.String(), doc.String(); got != want {
		t.Errorf("mixed content order lost:\ngot:  %s\nwant: %s", got, want)
	}
}

func TestEdgeFragmentationVersusInlining(t *testing.T) {
	// The paper's motivation for inlining: the Edge approach fragments each
	// element into many tuples. Confirm the tuple-count gap.
	m := custMapping(t, Options{})
	inlDB := relational.NewDB()
	ds, err := Load(inlDB, m, testdocs.Cust())
	if err != nil {
		t.Fatal(err)
	}
	edgeDB := relational.NewDB()
	edgeCount, err := LoadEdge(edgeDB, testdocs.Cust())
	if err != nil {
		t.Fatal(err)
	}
	if edgeCount <= 2*ds.TupleCount() {
		t.Errorf("edge tuples (%d) should far exceed inlined tuples (%d)", edgeCount, ds.TupleCount())
	}
}

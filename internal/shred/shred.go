package shred

import (
	"fmt"
	"strings"

	"repro/internal/relational"
	"repro/internal/xmltree"
)

// Dataset is the relational image of a shredded document: rows per table
// element, in document order.
type Dataset struct {
	// Rows maps table element name → rows. Row layout matches
	// TableMap.ColumnNames() (plus pos when the mapping orders tuples).
	Rows map[string][][]relational.Value
	// MaxID is the largest tuple id assigned.
	MaxID int64
}

// Shredder converts documents into relational tuples under a mapping.
type Shredder struct {
	M *Mapping
	// NextID is the next tuple id to assign; ids are unique per document.
	NextID int64
}

// NewShredder returns a shredder assigning ids from 1.
func NewShredder(m *Mapping) *Shredder { return &Shredder{M: m, NextID: 1} }

// Shred converts the document into tuples. The root element must match the
// mapping's root.
func (s *Shredder) Shred(doc *xmltree.Document) (*Dataset, error) {
	if doc.Root == nil || doc.Root.Name != s.M.Root {
		return nil, fmt.Errorf("shred: document root %q does not match mapping root %q",
			rootName(doc), s.M.Root)
	}
	ds := &Dataset{Rows: make(map[string][][]relational.Value)}
	if err := s.shredElement(doc.Root, 0, 0, ds); err != nil {
		return nil, err
	}
	ds.MaxID = s.NextID - 1
	return ds, nil
}

func rootName(doc *xmltree.Document) string {
	if doc.Root == nil {
		return ""
	}
	return doc.Root.Name
}

func (s *Shredder) shredElement(e *xmltree.Element, parentID int64, pos int, ds *Dataset) error {
	tm := s.M.Tables[e.Name]
	if tm == nil {
		return fmt.Errorf("shred: element <%s> has no table and was not inlined", e.Name)
	}
	id := s.NextID
	s.NextID++

	row := make([]relational.Value, 0, 2+len(tm.Columns))
	row = append(row, relational.Int(id))
	if parentID == 0 {
		row = append(row, relational.Null)
	} else {
		row = append(row, relational.Int(parentID))
	}
	if s.M.Opts.OrderColumn {
		row = append(row, relational.Int(int64(pos)))
	}
	for _, c := range tm.Columns {
		row = append(row, columnValue(e, &c))
	}
	ds.Rows[e.Name] = append(ds.Rows[e.Name], row)

	// Recurse into child elements that own tables. Inlined children are
	// covered by columns; unexpected elements are errors.
	childPos := 0
	inlined := make(map[string]bool)
	collectInlined(tm, inlined)
	for _, c := range e.ChildElements() {
		if _, ok := s.M.Tables[c.Name]; ok {
			if err := s.shredElement(c, id, childPos, ds); err != nil {
				return err
			}
			childPos++
			continue
		}
		if !inlined[c.Name] {
			return fmt.Errorf("shred: element <%s> under <%s> is not in the DTD mapping", c.Name, e.Name)
		}
	}
	return nil
}

// collectInlined records the first path step of every inlined column.
func collectInlined(tm *TableMap, out map[string]bool) {
	for _, c := range tm.Columns {
		if len(c.Path) > 0 {
			out[c.Path[0]] = true
		}
	}
}

// columnValue extracts a column's value from the element subtree.
func columnValue(e *xmltree.Element, c *ColumnMap) relational.Value {
	target := e
	for _, step := range c.Path {
		target = target.FirstChildNamed(step)
		if target == nil {
			return relational.Null
		}
	}
	switch c.Kind {
	case AttrColumn:
		if c.RefKind == xmltree.AttrIDREF || c.RefKind == xmltree.AttrIDREFS {
			if r := target.Ref(c.Attr); r != nil {
				return relational.Text(strings.Join(r.IDs, " "))
			}
			// A reference attribute parsed without its DTD is a plain attr.
			if v, ok := target.AttrValue(c.Attr); ok {
				return relational.Text(v)
			}
			return relational.Null
		}
		if v, ok := target.AttrValue(c.Attr); ok {
			return relational.Text(v)
		}
		return relational.Null
	case TextColumn:
		// Only direct PCDATA belongs to this element; nested element text
		// is stored with its own element.
		var b strings.Builder
		for _, ch := range target.Children() {
			if t, ok := ch.(*xmltree.Text); ok {
				b.WriteString(t.Data)
			}
		}
		if b.Len() == 0 && len(target.Children()) == 0 {
			return relational.Null
		}
		return relational.Text(b.String())
	case FlagColumn:
		return relational.Int(1)
	default:
		return relational.Null
	}
}

// ShredSubtree converts a subtree rooted at a table element into tuples
// parented at parentID, assigning fresh ids from the shredder's counter.
// The engine's insert path uses this for element-literal content.
func (s *Shredder) ShredSubtree(e *xmltree.Element, parentID int64, pos int) (*Dataset, error) {
	if s.M.Tables[e.Name] == nil {
		return nil, fmt.Errorf("shred: element <%s> has no table", e.Name)
	}
	ds := &Dataset{Rows: make(map[string][][]relational.Value)}
	if err := s.shredElement(e, parentID, pos, ds); err != nil {
		return nil, err
	}
	ds.MaxID = s.NextID - 1
	return ds, nil
}

// Load creates the mapping's tables in db (if absent) and bulk-loads the
// document, returning the number of tuples stored. Bulk load bypasses the
// SQL layer: the paper's experiments measure update translation, not initial
// document loading.
func Load(db *relational.DB, m *Mapping, doc *xmltree.Document) (*Dataset, error) {
	for _, sql := range m.CreateTablesSQL() {
		if _, err := db.Exec(sql); err != nil {
			if !strings.Contains(err.Error(), "already exists") {
				return nil, err
			}
		}
	}
	sh := NewShredder(m)
	ds, err := sh.Shred(doc)
	if err != nil {
		return nil, err
	}
	for _, elem := range m.TableOrder {
		t := db.Table(m.Tables[elem].Name)
		if t == nil {
			return nil, fmt.Errorf("shred: table %s missing", m.Tables[elem].Name)
		}
		for _, row := range ds.Rows[elem] {
			if _, err := t.Insert(row); err != nil {
				return nil, err
			}
		}
	}
	return ds, nil
}

// TupleCount sums the dataset's rows.
func (ds *Dataset) TupleCount() int {
	n := 0
	for _, rows := range ds.Rows {
		n += len(rows)
	}
	return n
}

// InsertSQL renders the dataset as INSERT statements (one per tuple), the
// form the tuple-based insert method issues.
func (m *Mapping) InsertSQL(ds *Dataset) []string {
	var out []string
	for _, elem := range m.TableOrder {
		tm := m.Tables[elem]
		for _, row := range ds.Rows[elem] {
			vals := make([]string, len(row))
			for i, v := range row {
				vals[i] = valueToSQL(v)
			}
			out = append(out, fmt.Sprintf("INSERT INTO %s VALUES (%s)", tm.Name, strings.Join(vals, ", ")))
		}
	}
	return out
}

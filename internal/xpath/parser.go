package xpath

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
	"unicode/utf8"
)

// Parse parses a path expression such as
//
//	document("bio.xml")/db/lab[@ID="baselab"]/name
//	$p/ref(biologist, "smith1")
//	//Order[status="ready" and OrderLine/ItemName="tire"]
//
// A leading variable reference ($x) is not part of this package's grammar —
// the xquery package strips it and supplies the binding as the start item.
// Both "/" and "." are accepted as child-step separators, matching the
// paper's mixed usage (Example 7 writes CustDb.Customer).
func Parse(src string) (*Path, error) {
	p := &pathParser{src: src}
	path, err := p.parsePath()
	if err != nil {
		return nil, fmt.Errorf("xpath: %s in %q", err, src)
	}
	p.skipSpace()
	if !p.eof() {
		return nil, fmt.Errorf("xpath: trailing input at offset %d in %q", p.pos, src)
	}
	return path, nil
}

// MustParse parses a path and panics on failure. For tests and examples.
func MustParse(src string) *Path {
	p, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return p
}

type pathParser struct {
	src string
	pos int
}

func (p *pathParser) eof() bool { return p.pos >= len(p.src) }

func (p *pathParser) peek() byte {
	if p.eof() {
		return 0
	}
	return p.src[p.pos]
}

func (p *pathParser) hasPrefix(s string) bool { return strings.HasPrefix(p.src[p.pos:], s) }

func (p *pathParser) skipSpace() {
	for !p.eof() {
		switch p.src[p.pos] {
		case ' ', '\t', '\r', '\n':
			p.pos++
		default:
			return
		}
	}
}

func (p *pathParser) expect(s string) error {
	if !p.hasPrefix(s) {
		return fmt.Errorf("expected %q at offset %d", s, p.pos)
	}
	p.pos += len(s)
	return nil
}

func (p *pathParser) parseName() (string, error) {
	start := p.pos
	r, size := utf8.DecodeRuneInString(p.src[p.pos:])
	if size == 0 || !(r == '_' || unicode.IsLetter(r)) {
		return "", fmt.Errorf("expected name at offset %d", p.pos)
	}
	p.pos += size
	for !p.eof() {
		r, size = utf8.DecodeRuneInString(p.src[p.pos:])
		if !(r == '_' || r == '-' || unicode.IsLetter(r) || unicode.IsDigit(r)) {
			break
		}
		p.pos += size
	}
	return p.src[start:p.pos], nil
}

func (p *pathParser) parseQuoted() (string, error) {
	q := p.peek()
	if q != '"' && q != '\'' {
		return "", fmt.Errorf("expected string literal at offset %d", p.pos)
	}
	p.pos++
	start := p.pos
	for !p.eof() && p.src[p.pos] != q {
		p.pos++
	}
	if p.eof() {
		return "", fmt.Errorf("unterminated string literal")
	}
	s := p.src[start:p.pos]
	p.pos++
	return s, nil
}

// parsePath parses [document("...")] step*. A bare name with no leading
// separator is treated as a child step (relative paths inside predicates).
func (p *pathParser) parsePath() (*Path, error) {
	path := &Path{}
	p.skipSpace()
	if p.hasPrefix("document") {
		save := p.pos
		p.pos += len("document")
		p.skipSpace()
		if p.peek() == '(' {
			p.pos++
			p.skipSpace()
			doc, err := p.parseQuoted()
			if err != nil {
				return nil, err
			}
			p.skipSpace()
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			path.Doc = doc
		} else {
			p.pos = save
		}
	}
	first := true
	for {
		p.skipSpace()
		switch {
		case p.hasPrefix("//"):
			p.pos += 2
			step, err := p.parseStepBody(DescendantStep)
			if err != nil {
				return nil, err
			}
			path.Steps = append(path.Steps, step)
		case p.peek() == '/' || p.peek() == '.':
			// '.' is only a separator when followed by a step start; this
			// keeps "index()" in predicates unambiguous.
			if p.peek() == '.' && !p.dotIsSeparator() {
				return path, nil
			}
			p.pos++
			step, err := p.parseStepBody(ChildStep)
			if err != nil {
				return nil, err
			}
			path.Steps = append(path.Steps, step)
		case p.hasPrefix("->"):
			p.pos += 2
			name := "*"
			if p.peek() == '*' {
				p.pos++
			} else if n, err := p.parseName(); err == nil {
				name = n
			}
			step := &Step{Kind: DerefStep, Name: name}
			if err := p.parsePredicates(step); err != nil {
				return nil, err
			}
			path.Steps = append(path.Steps, step)
		default:
			if first && path.Doc == "" {
				// Relative path: leading bare step.
				if startsStep(p.peek()) {
					step, err := p.parseStepBody(ChildStep)
					if err != nil {
						return nil, err
					}
					path.Steps = append(path.Steps, step)
					first = false
					continue
				}
			}
			if len(path.Steps) == 0 && path.Doc == "" {
				return nil, fmt.Errorf("empty path")
			}
			return path, nil
		}
		first = false
	}
}

func startsStep(c byte) bool {
	return c == '@' || c == '*' || c == '_' ||
		(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func (p *pathParser) dotIsSeparator() bool {
	if p.pos+1 >= len(p.src) {
		return false
	}
	return startsStep(p.src[p.pos+1])
}

// parseStepBody parses what follows a separator: @name | ref(l, t) | text()
// | nametest, plus predicates.
func (p *pathParser) parseStepBody(kind StepKind) (*Step, error) {
	p.skipSpace()
	var step *Step
	switch {
	case p.peek() == '@':
		p.pos++
		name := "*"
		if p.peek() == '*' {
			p.pos++
		} else {
			n, err := p.parseName()
			if err != nil {
				return nil, err
			}
			name = n
		}
		step = &Step{Kind: AttrStep, Name: name}
	case p.hasPrefix("ref") && p.refFollows():
		p.pos += len("ref")
		p.skipSpace()
		if err := p.expect("("); err != nil {
			return nil, err
		}
		p.skipSpace()
		label := "*"
		if p.peek() == '*' {
			p.pos++
		} else {
			n, err := p.parseName()
			if err != nil {
				return nil, err
			}
			label = n
		}
		p.skipSpace()
		if err := p.expect(","); err != nil {
			return nil, err
		}
		p.skipSpace()
		target := "*"
		if p.peek() == '*' {
			p.pos++
		} else if p.peek() == '"' || p.peek() == '\'' {
			s, err := p.parseQuoted()
			if err != nil {
				return nil, err
			}
			target = s
		} else {
			// Unquoted target, as in ref(lab, lalab).
			n, err := p.parseName()
			if err != nil {
				return nil, err
			}
			target = n
		}
		p.skipSpace()
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		step = &Step{Kind: RefStep, Name: label, RefTarget: target}
	case p.hasPrefix("text()"):
		p.pos += len("text()")
		step = &Step{Kind: TextStep}
	case p.peek() == '*':
		p.pos++
		step = &Step{Kind: kind, Name: "*"}
	default:
		n, err := p.parseName()
		if err != nil {
			return nil, err
		}
		step = &Step{Kind: kind, Name: n}
	}
	if step.Kind != kind && kind == DescendantStep {
		return nil, fmt.Errorf("// must be followed by a name test")
	}
	if err := p.parsePredicates(step); err != nil {
		return nil, err
	}
	return step, nil
}

// refFollows distinguishes the ref(...) constructor from an element named
// "ref…".
func (p *pathParser) refFollows() bool {
	i := p.pos + len("ref")
	for i < len(p.src) && (p.src[i] == ' ' || p.src[i] == '\t' || p.src[i] == '\n' || p.src[i] == '\r') {
		i++
	}
	return i < len(p.src) && p.src[i] == '('
}

func (p *pathParser) parsePredicates(step *Step) error {
	for {
		p.skipSpace()
		if p.peek() != '[' {
			return nil
		}
		p.pos++
		e, err := p.parseOrExpr()
		if err != nil {
			return err
		}
		p.skipSpace()
		if err := p.expect("]"); err != nil {
			return err
		}
		step.Preds = append(step.Preds, e)
	}
}

func (p *pathParser) parseOrExpr() (Expr, error) {
	l, err := p.parseAndExpr()
	if err != nil {
		return nil, err
	}
	for {
		p.skipSpace()
		if !p.keywordFollows("or") {
			return l, nil
		}
		p.pos += 2
		r, err := p.parseAndExpr()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: "or", L: l, R: r}
	}
}

func (p *pathParser) parseAndExpr() (Expr, error) {
	l, err := p.parseComparison()
	if err != nil {
		return nil, err
	}
	for {
		p.skipSpace()
		if !p.keywordFollows("and") {
			return l, nil
		}
		p.pos += 3
		r, err := p.parseComparison()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: "and", L: l, R: r}
	}
}

func (p *pathParser) keywordFollows(kw string) bool {
	if !p.hasPrefix(kw) {
		return false
	}
	after := p.pos + len(kw)
	if after >= len(p.src) {
		return false
	}
	c := p.src[after]
	return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '(' || c == '"' || c == '\''
}

func (p *pathParser) parseComparison() (Expr, error) {
	l, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	for _, op := range []string{"!=", "<=", ">=", "=", "<", ">"} {
		if p.hasPrefix(op) {
			p.pos += len(op)
			r, err := p.parsePrimary()
			if err != nil {
				return nil, err
			}
			return &BinaryExpr{Op: op, L: l, R: r}, nil
		}
	}
	return l, nil
}

func (p *pathParser) parsePrimary() (Expr, error) {
	p.skipSpace()
	switch {
	case p.peek() == '"' || p.peek() == '\'':
		s, err := p.parseQuoted()
		if err != nil {
			return nil, err
		}
		return &StringLit{Value: s}, nil
	case p.peek() >= '0' && p.peek() <= '9', p.peek() == '-' && p.pos+1 < len(p.src) && p.src[p.pos+1] >= '0' && p.src[p.pos+1] <= '9':
		start := p.pos
		if p.peek() == '-' {
			p.pos++
		}
		for !p.eof() && p.peek() >= '0' && p.peek() <= '9' {
			p.pos++
		}
		n, err := strconv.ParseInt(p.src[start:p.pos], 10, 64)
		if err != nil {
			return nil, err
		}
		return &NumberLit{Value: n}, nil
	case p.hasPrefix("index()"):
		p.pos += len("index()")
		return &IndexCall{}, nil
	case p.peek() == '(':
		p.pos++
		e, err := p.parseOrExpr()
		if err != nil {
			return nil, err
		}
		p.skipSpace()
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return e, nil
	default:
		// A relative path expression.
		sub, err := p.parseRelPath()
		if err != nil {
			return nil, err
		}
		return &PathExpr{Path: sub}, nil
	}
}

// parseRelPath parses a relative path inside a predicate (no document()).
func (p *pathParser) parseRelPath() (*Path, error) {
	path := &Path{}
	step, err := p.parseStepBody(ChildStep)
	if err != nil {
		return nil, err
	}
	path.Steps = append(path.Steps, step)
	for {
		p.skipSpace()
		switch {
		case p.hasPrefix("//"):
			p.pos += 2
			s, err := p.parseStepBody(DescendantStep)
			if err != nil {
				return nil, err
			}
			path.Steps = append(path.Steps, s)
		case p.peek() == '/':
			p.pos++
			s, err := p.parseStepBody(ChildStep)
			if err != nil {
				return nil, err
			}
			path.Steps = append(path.Steps, s)
		case p.hasPrefix("->"):
			p.pos += 2
			name := "*"
			if p.peek() == '*' {
				p.pos++
			} else if n, err := p.parseName(); err == nil {
				name = n
			}
			s := &Step{Kind: DerefStep, Name: name}
			if err := p.parsePredicates(s); err != nil {
				return nil, err
			}
			path.Steps = append(path.Steps, s)
		default:
			return path, nil
		}
	}
}

// Package xpath implements the path-expression subset used by the update
// language of Tatarinov et al. (SIGMOD 2001, §4): child and descendant steps,
// wildcards, attribute selection (binding the attribute object itself, not
// just its value), the ref(label, target) constructor for binding individual
// IDREF entries, the -> dereference operator, and predicates.
package xpath

import (
	"fmt"
	"strings"

	"repro/internal/xmltree"
)

// Item is a value a path expression can produce: *xmltree.Element,
// *xmltree.Attr, xmltree.Ref (one entry in an IDREFS list), or *xmltree.Text.
type Item any

// StepKind discriminates the step types of a path.
type StepKind int

// Step kinds.
const (
	// ChildStep selects child elements by name test ("lab", "*").
	ChildStep StepKind = iota
	// DescendantStep selects descendant-or-self elements by name ("//Order").
	DescendantStep
	// AttrStep selects an attribute object ("@category"). Per §4.2 a
	// variable bound to an attribute represents a reference to the
	// attribute within the document, not simply its value.
	AttrStep
	// RefStep selects individual reference entries: ref(label, target).
	// label and target may each be "*".
	RefStep
	// DerefStep follows a reference to the element it identifies ("->").
	// The optional name test restricts the target element's tag.
	DerefStep
	// TextStep selects PCDATA children ("text()").
	TextStep
)

func (k StepKind) String() string {
	switch k {
	case ChildStep:
		return "child"
	case DescendantStep:
		return "descendant"
	case AttrStep:
		return "attribute"
	case RefStep:
		return "ref"
	case DerefStep:
		return "deref"
	case TextStep:
		return "text"
	default:
		return fmt.Sprintf("StepKind(%d)", int(k))
	}
}

// Step is one location step.
type Step struct {
	Kind StepKind
	// Name is the name test: tag for ChildStep/DescendantStep/DerefStep,
	// attribute name for AttrStep, reference label for RefStep. "*" matches
	// anything.
	Name string
	// RefTarget is the target ID for RefStep ("*" matches any).
	RefTarget string
	// Preds are the step's predicates, applied in order.
	Preds []Expr
}

// Path is a parsed path expression.
type Path struct {
	// Doc is the argument of a document("…") prefix, or "".
	Doc string
	// Steps are the location steps, applied left to right.
	Steps []*Step
}

// String reconstructs a canonical form of the path for diagnostics.
func (p *Path) String() string {
	var b strings.Builder
	if p.Doc != "" {
		fmt.Fprintf(&b, "document(%q)", p.Doc)
	}
	for _, s := range p.Steps {
		switch s.Kind {
		case ChildStep:
			b.WriteByte('/')
			b.WriteString(s.Name)
		case DescendantStep:
			b.WriteString("//")
			b.WriteString(s.Name)
		case AttrStep:
			b.WriteString("/@")
			b.WriteString(s.Name)
		case RefStep:
			if s.RefTarget == "*" {
				fmt.Fprintf(&b, "/ref(%s, *)", s.Name)
			} else {
				fmt.Fprintf(&b, "/ref(%s, %q)", s.Name, s.RefTarget)
			}
		case DerefStep:
			b.WriteString("->")
			b.WriteString(s.Name)
		case TextStep:
			b.WriteString("/text()")
		}
		for _, pr := range s.Preds {
			fmt.Fprintf(&b, "[%s]", exprString(pr))
		}
	}
	return b.String()
}

// Expr is a predicate expression node.
type Expr interface{ isExpr() }

// BinaryExpr applies a binary operator: "and", "or", "=", "!=", "<", "<=",
// ">", ">=".
type BinaryExpr struct {
	Op   string
	L, R Expr
}

func (*BinaryExpr) isExpr() {}

// PathExpr embeds a relative path inside a predicate; its truth value is
// non-emptiness, and in comparisons its items' string values are used.
type PathExpr struct{ Path *Path }

func (*PathExpr) isExpr() {}

// StringLit is a string literal.
type StringLit struct{ Value string }

func (*StringLit) isExpr() {}

// NumberLit is a numeric literal (integers suffice for the paper's queries).
type NumberLit struct{ Value int64 }

func (*NumberLit) isExpr() {}

// IndexCall is the paper's index() function: the 0-based position of the
// context element among its parent's child elements.
type IndexCall struct{}

func (*IndexCall) isExpr() {}

func exprString(e Expr) string {
	switch x := e.(type) {
	case *BinaryExpr:
		return fmt.Sprintf("%s %s %s", exprString(x.L), x.Op, exprString(x.R))
	case *PathExpr:
		s := x.Path.String()
		return strings.TrimPrefix(s, "/")
	case *StringLit:
		return fmt.Sprintf("%q", x.Value)
	case *NumberLit:
		return fmt.Sprintf("%d", x.Value)
	case *IndexCall:
		return "index()"
	default:
		return fmt.Sprintf("%T", e)
	}
}

// StringValue returns the comparison value of an item: text content for
// elements and PCDATA, the value for attributes, and the ID for references.
func StringValue(it Item) string {
	switch v := it.(type) {
	case *xmltree.Element:
		return v.TextContent()
	case *xmltree.Attr:
		return v.Value
	case xmltree.Ref:
		return v.ID()
	case *xmltree.Text:
		return v.Data
	default:
		return ""
	}
}

// ItemKind names an item's dynamic type for error messages.
func ItemKind(it Item) string {
	switch it.(type) {
	case *xmltree.Element:
		return "element"
	case *xmltree.Attr:
		return "attribute"
	case xmltree.Ref:
		return "reference"
	case *xmltree.Text:
		return "pcdata"
	default:
		return fmt.Sprintf("%T", it)
	}
}

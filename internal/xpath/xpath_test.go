package xpath

import (
	"testing"

	"repro/internal/testdocs"
	"repro/internal/xmltree"
)

func evalBio(t *testing.T, path string) []Item {
	t.Helper()
	doc := testdocs.Bio()
	p, err := Parse(path)
	if err != nil {
		t.Fatalf("Parse(%q): %v", path, err)
	}
	items, err := p.Eval(&Context{Doc: doc}, nil)
	if err != nil {
		t.Fatalf("Eval(%q): %v", path, err)
	}
	return items
}

func elementNames(items []Item) []string {
	var out []string
	for _, it := range items {
		if e, ok := it.(*xmltree.Element); ok {
			out = append(out, e.Name)
		}
	}
	return out
}

func TestAbsoluteChildSteps(t *testing.T) {
	items := evalBio(t, `/db/lab`)
	if len(items) != 2 {
		t.Fatalf("got %d labs at root level, want 2", len(items))
	}
	for _, it := range items {
		e := it.(*xmltree.Element)
		if id, _ := e.AttrValue("ID"); id != "baselab" && id != "lab2" {
			t.Errorf("unexpected lab %q", id)
		}
	}
}

func TestDocumentPrefix(t *testing.T) {
	items := evalBio(t, `document("bio.xml")/db/biologist`)
	if len(items) != 2 {
		t.Fatalf("got %d biologists, want 2", len(items))
	}
}

func TestDescendantStep(t *testing.T) {
	items := evalBio(t, `//lab`)
	if len(items) != 3 {
		t.Fatalf("//lab found %d, want 3", len(items))
	}
	items = evalBio(t, `//city`)
	if len(items) != 3 {
		t.Fatalf("//city found %d, want 3", len(items))
	}
	// Document order: Los Angeles, Seattle, Philadelphia.
	want := []string{"Los Angeles", "Seattle", "Philadelphia"}
	for i, it := range items {
		if got := StringValue(it); got != want[i] {
			t.Errorf("city %d = %q, want %q", i, got, want[i])
		}
	}
}

func TestWildcardStep(t *testing.T) {
	items := evalBio(t, `/db/*`)
	if len(items) != 6 {
		t.Fatalf("/db/* found %d, want 6", len(items))
	}
}

func TestAttributePredicates(t *testing.T) {
	items := evalBio(t, `/db/biologist[@ID="smith1"]`)
	if len(items) != 1 {
		t.Fatalf("got %d, want 1", len(items))
	}
	items = evalBio(t, `/db/biologist[@age="32"]`)
	if len(items) != 1 || StringValue(items[0]) != "Jones" {
		t.Fatalf("age predicate matched %v", elementNames(items))
	}
	items = evalBio(t, `/db/biologist[@age]`)
	if len(items) != 1 {
		t.Fatalf("existence predicate matched %d, want 1", len(items))
	}
}

func TestValuePredicates(t *testing.T) {
	items := evalBio(t, `/db/lab[name="PMBL"]`)
	if len(items) != 1 {
		t.Fatalf("got %d, want 1", len(items))
	}
	if id, _ := items[0].(*xmltree.Element).AttrValue("ID"); id != "lab2" {
		t.Errorf("matched %q", id)
	}
	// Nested relative path in predicate.
	items = evalBio(t, `/db/lab[location/city="Seattle"]`)
	if len(items) != 1 {
		t.Fatalf("nested predicate matched %d, want 1", len(items))
	}
}

func TestAndOrPredicates(t *testing.T) {
	items := evalBio(t, `/db/lab[name="PMBL" and country="USA"]`)
	if len(items) != 1 {
		t.Fatalf("and: got %d, want 1", len(items))
	}
	items = evalBio(t, `/db/lab[name="PMBL" or name="Seattle Bio Lab"]`)
	if len(items) != 2 {
		t.Fatalf("or: got %d, want 2", len(items))
	}
	items = evalBio(t, `/db/lab[name="PMBL" and name="Seattle Bio Lab"]`)
	if len(items) != 0 {
		t.Fatalf("contradiction matched %d", len(items))
	}
}

func TestNumericComparison(t *testing.T) {
	items := evalBio(t, `/db/biologist[@age>30]`)
	if len(items) != 1 {
		t.Fatalf("age>30 matched %d, want 1", len(items))
	}
	items = evalBio(t, `/db/biologist[@age<30]`)
	if len(items) != 0 {
		t.Fatalf("age<30 matched %d, want 0", len(items))
	}
	items = evalBio(t, `/db/biologist[@age!=32]`)
	if len(items) != 0 {
		// Only jones1 has an age attribute at all; smith1 has no age so the
		// predicate's path is empty and the comparison is false.
		t.Fatalf("age!=32 matched %d, want 0", len(items))
	}
}

func TestAttrStepBindsAttributeObject(t *testing.T) {
	items := evalBio(t, `/db/paper/@category`)
	if len(items) != 1 {
		t.Fatalf("got %d, want 1", len(items))
	}
	a, ok := items[0].(*xmltree.Attr)
	if !ok {
		t.Fatalf("bound %s, want attribute object", ItemKind(items[0]))
	}
	if a.Value != "spectral" || a.Owner() == nil {
		t.Errorf("attr = %+v", a)
	}
}

func TestRefStepBindsIndividualEntries(t *testing.T) {
	// ref(managers, "smith1") on lalab: one entry out of two.
	items := evalBio(t, `/db/university/lab/ref(managers, "smith1")`)
	if len(items) != 1 {
		t.Fatalf("got %d, want 1", len(items))
	}
	r, ok := items[0].(xmltree.Ref)
	if !ok {
		t.Fatalf("bound %s, want reference", ItemKind(items[0]))
	}
	if r.ID() != "smith1" || r.Index != 0 {
		t.Errorf("ref = %+v", r)
	}
	// Wildcard target matches all entries in order.
	items = evalBio(t, `/db/university/lab/ref(managers, *)`)
	if len(items) != 2 {
		t.Fatalf("wildcard target matched %d, want 2", len(items))
	}
	if StringValue(items[0]) != "smith1" || StringValue(items[1]) != "jones1" {
		t.Errorf("order wrong: %v, %v", items[0], items[1])
	}
	// Wildcard label.
	items = evalBio(t, `/db/paper/ref(*, *)`)
	if len(items) != 2 { // source and biologist
		t.Fatalf("paper refs matched %d, want 2", len(items))
	}
}

func TestDerefStep(t *testing.T) {
	// Follow paper's source reference to the lab element.
	items := evalBio(t, `/db/paper/ref(source, *)->lab`)
	if len(items) != 1 {
		t.Fatalf("deref matched %d, want 1", len(items))
	}
	e := items[0].(*xmltree.Element)
	if id, _ := e.AttrValue("ID"); id != "lab2" {
		t.Errorf("deref target = %q, want lab2", id)
	}
	// Name test filters the target.
	items = evalBio(t, `/db/paper/ref(source, *)->biologist`)
	if len(items) != 0 {
		t.Fatalf("mistyped deref matched %d, want 0", len(items))
	}
	// Dereference through an attribute-step-like ref path with wildcard.
	items = evalBio(t, `/db/ref(lab, *)->*`)
	if len(items) != 1 {
		t.Fatalf("db lab deref matched %d, want 1", len(items))
	}
}

func TestDanglingReferenceAllowed(t *testing.T) {
	doc := testdocs.Bio()
	// Remove the referenced biologist; the paper allows dangling refs.
	smith := doc.ByID("smith1")
	doc.Root.RemoveChild(smith)
	doc.UnregisterID("smith1", smith)
	p := MustParse(`/db/paper/ref(biologist, *)->*`)
	items, err := p.Eval(&Context{Doc: doc}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 0 {
		t.Errorf("dangling deref yielded %d items, want 0", len(items))
	}
}

func TestTextStep(t *testing.T) {
	items := evalBio(t, `/db/lab[@ID="lab2"]/name/text()`)
	if len(items) != 1 {
		t.Fatalf("got %d, want 1", len(items))
	}
	if _, ok := items[0].(*xmltree.Text); !ok {
		t.Fatalf("bound %s, want pcdata", ItemKind(items[0]))
	}
	if StringValue(items[0]) != "PMBL" {
		t.Errorf("text = %q", StringValue(items[0]))
	}
}

func TestIndexPredicate(t *testing.T) {
	items := evalBio(t, `/db/*[index()=0]`)
	if len(items) != 1 || items[0].(*xmltree.Element).Name != "university" {
		t.Fatalf("index()=0 matched %v", elementNames(items))
	}
	items = evalBio(t, `/db/lab[index()=2]`)
	if len(items) != 1 {
		t.Fatalf("index()=2 matched %d, want 1 (lab2 is third child)", len(items))
	}
}

func TestDottedSeparator(t *testing.T) {
	// Example 7 writes CustDb.Customer — '.' is accepted as separator.
	doc := testdocs.Cust()
	p := MustParse(`/CustDB.Customer[Name="John"]`)
	items, err := p.Eval(&Context{Doc: doc}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 2 {
		t.Fatalf("got %d Johns, want 2", len(items))
	}
}

func TestRelativeEvalFromElement(t *testing.T) {
	doc := testdocs.Bio()
	base := doc.ByID("baselab")
	p := MustParse(`location/city`)
	items, err := p.Eval(&Context{Doc: doc}, base)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 1 || StringValue(items[0]) != "Seattle" {
		t.Fatalf("relative eval = %v", items)
	}
}

func TestMultiDocumentResolution(t *testing.T) {
	bio := testdocs.Bio()
	cust := testdocs.Cust()
	ctx := &Context{
		Doc:       bio,
		Documents: map[string]*xmltree.Document{"bio.xml": bio, "custdb.xml": cust},
	}
	p := MustParse(`document("custdb.xml")/CustDB/Customer`)
	items, err := p.Eval(ctx, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 3 {
		t.Fatalf("cross-document eval got %d customers, want 3", len(items))
	}
}

func TestExample8Selection(t *testing.T) {
	// The Example 8 order selection: ready orders containing a tire line.
	doc := testdocs.Cust()
	p := MustParse(`//Order[Status="ready" and OrderLine/ItemName="tire"]`)
	items, err := p.Eval(&Context{Doc: doc}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 1 {
		t.Fatalf("matched %d orders, want 1", len(items))
	}
	if got := items[0].(*xmltree.Element).FirstChildNamed("Date").TextContent(); got != "2000-05-01" {
		t.Errorf("wrong order selected: %s", got)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`/db/[x]`,
		`/db/lab[`,
		`/db/lab[name=]`,
		`/db/ref(managers)`,
		`/db/ref(,x)`,
		`document("x"`,
		`/db/lab[name="x" and ]`,
		`//`,
		`/db/lab]`,
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestPathString(t *testing.T) {
	for _, src := range []string{
		`/db/lab`,
		`//Order`,
		`/db/paper/@category`,
	} {
		p := MustParse(src)
		re, err := Parse(p.String())
		if err != nil {
			t.Errorf("String() of %q is unparseable: %v (%q)", src, err, p.String())
			continue
		}
		if re.String() != p.String() {
			t.Errorf("String round trip unstable: %q vs %q", p.String(), re.String())
		}
	}
}

func TestElementIndex(t *testing.T) {
	doc := xmltree.MustParse(`<a>t1<b/>t2<c/><d/></a>`)
	kids := doc.Root.ChildElements()
	for i, k := range kids {
		if got := ElementIndex(k); got != i {
			t.Errorf("ElementIndex(%s) = %d, want %d", k.Name, got, i)
		}
	}
	if ElementIndex(doc.Root) != 0 {
		t.Errorf("root index = %d", ElementIndex(doc.Root))
	}
}

func TestEvalEmptyIntermediate(t *testing.T) {
	items := evalBio(t, `/db/nosuch/child`)
	if len(items) != 0 {
		t.Errorf("empty intermediate should yield no items")
	}
}

func TestRefNamedElementNotConfused(t *testing.T) {
	// An element literally named "ref" must still be addressable.
	doc := xmltree.MustParse(`<a><ref>x</ref></a>`)
	p := MustParse(`/a/ref`)
	items, err := p.Eval(&Context{Doc: doc}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 1 || items[0].(*xmltree.Element).Name != "ref" {
		t.Fatalf("element named ref not matched: %v", items)
	}
}

package xpath

import (
	"fmt"

	"repro/internal/xmltree"
)

// Context carries the evaluation environment: the document (for ID lookups
// and document() resolution).
type Context struct {
	Doc *xmltree.Document
	// Documents resolves document("name") prefixes when updates span
	// multiple documents (Example 10). Keys are the names used in queries.
	Documents map[string]*xmltree.Document
}

// Resolve returns the document a path's document() prefix names, defaulting
// to ctx.Doc.
func (ctx *Context) Resolve(name string) (*xmltree.Document, error) {
	if name == "" {
		if ctx.Doc == nil {
			return nil, fmt.Errorf("xpath: no current document")
		}
		return ctx.Doc, nil
	}
	if d, ok := ctx.Documents[name]; ok {
		return d, nil
	}
	if ctx.Doc != nil {
		return ctx.Doc, nil
	}
	return nil, fmt.Errorf("xpath: unknown document %q", name)
}

// Eval evaluates the path starting from start (nil means the document root's
// parent, so the first child step matches the root element itself, XPath
// style: /db matches the root <db>). Results preserve document order.
func (p *Path) Eval(ctx *Context, start Item) ([]Item, error) {
	doc, err := ctx.Resolve(p.Doc)
	if err != nil {
		return nil, err
	}
	evalCtx := &evalContext{doc: doc, outer: ctx}
	var current []Item
	if start == nil {
		current = []Item{rootHolder{doc.Root}}
	} else {
		current = []Item{start}
	}
	for _, step := range p.Steps {
		next, err := evalCtx.applyStep(step, current)
		if err != nil {
			return nil, err
		}
		current = next
		if len(current) == 0 {
			return nil, nil
		}
	}
	// A bare document("x") path with no steps yields the root.
	if len(p.Steps) == 0 {
		return []Item{doc.Root}, nil
	}
	return current, nil
}

// rootHolder is a virtual document node whose only element child is the root;
// it lets absolute paths address the root element by name.
type rootHolder struct{ root *xmltree.Element }

type evalContext struct {
	doc   *xmltree.Document
	outer *Context
}

func (ec *evalContext) applyStep(step *Step, input []Item) ([]Item, error) {
	var out []Item
	seen := make(map[Item]bool)
	emit := func(it Item) {
		// References (struct values) are deduplicated by value; pointers by
		// identity. Document order is preserved by construction.
		if _, dup := it.(xmltree.Ref); !dup {
			if seen[it] {
				return
			}
			seen[it] = true
		}
		out = append(out, it)
	}
	for _, in := range input {
		items, err := ec.stepFrom(step, in)
		if err != nil {
			return nil, err
		}
		for _, it := range items {
			ok, err := ec.predicatesHold(step.Preds, it)
			if err != nil {
				return nil, err
			}
			if ok {
				emit(it)
			}
		}
	}
	return out, nil
}

func (ec *evalContext) stepFrom(step *Step, in Item) ([]Item, error) {
	switch step.Kind {
	case ChildStep:
		switch v := in.(type) {
		case rootHolder:
			if step.Name == "*" || v.root.Name == step.Name {
				return []Item{v.root}, nil
			}
			return nil, nil
		case *xmltree.Element:
			var out []Item
			for _, c := range v.Children() {
				if ce, ok := c.(*xmltree.Element); ok {
					if step.Name == "*" || ce.Name == step.Name {
						out = append(out, ce)
					}
				}
			}
			return out, nil
		default:
			return nil, nil
		}
	case DescendantStep:
		var root *xmltree.Element
		switch v := in.(type) {
		case rootHolder:
			root = v.root
		case *xmltree.Element:
			root = v
		default:
			return nil, nil
		}
		var out []Item
		xmltree.Walk(root, func(e *xmltree.Element) bool {
			if step.Name == "*" || e.Name == step.Name {
				out = append(out, e)
			}
			return true
		})
		return out, nil
	case AttrStep:
		e, ok := in.(*xmltree.Element)
		if !ok {
			return nil, nil
		}
		var out []Item
		for _, a := range e.Attrs() {
			if step.Name == "*" || a.Name == step.Name {
				out = append(out, a)
			}
		}
		return out, nil
	case RefStep:
		e, ok := in.(*xmltree.Element)
		if !ok {
			return nil, nil
		}
		var out []Item
		for _, r := range e.Refs() {
			if step.Name != "*" && r.Name != step.Name {
				continue
			}
			for i, id := range r.IDs {
				if step.RefTarget == "*" || id == step.RefTarget {
					out = append(out, xmltree.Ref{List: r, Index: i})
				}
			}
		}
		return out, nil
	case DerefStep:
		var ids []string
		switch v := in.(type) {
		case xmltree.Ref:
			ids = []string{v.ID()}
		case *xmltree.Attr:
			ids = []string{v.Value}
		case *xmltree.RefList:
			ids = v.IDs
		default:
			return nil, nil
		}
		var out []Item
		for _, id := range ids {
			target := ec.doc.ByID(id)
			if target == nil {
				continue // dangling references are allowed (§4.2.1)
			}
			if step.Name == "*" || target.Name == step.Name {
				out = append(out, target)
			}
		}
		return out, nil
	case TextStep:
		e, ok := in.(*xmltree.Element)
		if !ok {
			return nil, nil
		}
		var out []Item
		for _, c := range e.Children() {
			if t, ok := c.(*xmltree.Text); ok {
				out = append(out, t)
			}
		}
		return out, nil
	default:
		return nil, fmt.Errorf("xpath: unknown step kind %v", step.Kind)
	}
}

func (ec *evalContext) predicatesHold(preds []Expr, it Item) (bool, error) {
	for _, p := range preds {
		v, err := ec.evalExpr(p, it)
		if err != nil {
			return false, err
		}
		if !truthy(v) {
			return false, nil
		}
	}
	return true, nil
}

// exprValue is a predicate value: bool, string, int64, or []Item.
type exprValue any

func truthy(v exprValue) bool {
	switch x := v.(type) {
	case bool:
		return x
	case string:
		return x != ""
	case int64:
		return x != 0
	case []Item:
		return len(x) > 0
	case nil:
		return false
	default:
		return true
	}
}

func (ec *evalContext) evalExpr(e Expr, context Item) (exprValue, error) {
	switch x := e.(type) {
	case *StringLit:
		return x.Value, nil
	case *NumberLit:
		return x.Value, nil
	case *IndexCall:
		el, ok := context.(*xmltree.Element)
		if !ok {
			return nil, fmt.Errorf("xpath: index() on non-element %s", ItemKind(context))
		}
		return int64(ElementIndex(el)), nil
	case *PathExpr:
		items, err := x.Path.Eval(&Context{Doc: ec.doc, Documents: ec.outer.Documents}, context)
		if err != nil {
			return nil, err
		}
		return items, nil
	case *BinaryExpr:
		switch x.Op {
		case "and":
			l, err := ec.evalExpr(x.L, context)
			if err != nil {
				return nil, err
			}
			if !truthy(l) {
				return false, nil
			}
			r, err := ec.evalExpr(x.R, context)
			if err != nil {
				return nil, err
			}
			return truthy(r), nil
		case "or":
			l, err := ec.evalExpr(x.L, context)
			if err != nil {
				return nil, err
			}
			if truthy(l) {
				return true, nil
			}
			r, err := ec.evalExpr(x.R, context)
			if err != nil {
				return nil, err
			}
			return truthy(r), nil
		default:
			l, err := ec.evalExpr(x.L, context)
			if err != nil {
				return nil, err
			}
			r, err := ec.evalExpr(x.R, context)
			if err != nil {
				return nil, err
			}
			return compare(x.Op, l, r)
		}
	default:
		return nil, fmt.Errorf("xpath: unknown expression %T", e)
	}
}

// compare implements existential comparison semantics: if either side is a
// node set, the comparison holds when it holds for some member.
func compare(op string, l, r exprValue) (bool, error) {
	ls, lok := l.([]Item)
	rs, rok := r.([]Item)
	switch {
	case lok && rok:
		for _, a := range ls {
			for _, b := range rs {
				if cmpAtom(op, StringValue(a), StringValue(b)) {
					return true, nil
				}
			}
		}
		return false, nil
	case lok:
		for _, a := range ls {
			ok, err := cmpScalar(op, StringValue(a), r)
			if err != nil {
				return false, err
			}
			if ok {
				return true, nil
			}
		}
		return false, nil
	case rok:
		inv := map[string]string{"<": ">", ">": "<", "<=": ">=", ">=": "<=", "=": "=", "!=": "!="}[op]
		return compare(inv, r, l)
	default:
		switch lv := l.(type) {
		case string:
			return cmpScalar(op, lv, r)
		case int64:
			switch rv := r.(type) {
			case int64:
				return cmpInt(op, lv, rv), nil
			case string:
				return cmpAtom(op, fmt.Sprint(lv), rv), nil
			}
		case bool:
			if rv, ok := r.(bool); ok && op == "=" {
				return lv == rv, nil
			}
		}
		return false, fmt.Errorf("xpath: cannot compare %T %s %T", l, op, r)
	}
}

func cmpScalar(op, a string, r exprValue) (bool, error) {
	switch rv := r.(type) {
	case string:
		return cmpAtom(op, a, rv), nil
	case int64:
		// Numeric comparison when the node value parses as an integer.
		var n int64
		if _, err := fmt.Sscanf(a, "%d", &n); err == nil {
			return cmpInt(op, n, rv), nil
		}
		return cmpAtom(op, a, fmt.Sprint(rv)), nil
	default:
		return false, fmt.Errorf("xpath: cannot compare string %s %T", op, r)
	}
}

func cmpAtom(op, a, b string) bool {
	switch op {
	case "=":
		return a == b
	case "!=":
		return a != b
	case "<":
		return a < b
	case "<=":
		return a <= b
	case ">":
		return a > b
	case ">=":
		return a >= b
	default:
		return false
	}
}

func cmpInt(op string, a, b int64) bool {
	switch op {
	case "=":
		return a == b
	case "!=":
		return a != b
	case "<":
		return a < b
	case "<=":
		return a <= b
	case ">":
		return a > b
	case ">=":
		return a >= b
	default:
		return false
	}
}

// CompareValues applies a comparison operator to two predicate values, each
// a bool, string, int64, or []Item, with existential node-set semantics. It
// is shared with the xquery WHERE-clause evaluator.
func CompareValues(op string, l, r any) (bool, error) {
	return compare(op, l, r)
}

// Truthy reports the boolean interpretation of a predicate value.
func Truthy(v any) bool { return truthy(v) }

// ElementIndex returns e's 0-based position among its parent's child
// elements; a root element has index 0.
func ElementIndex(e *xmltree.Element) int {
	p := e.Parent()
	if p == nil {
		return 0
	}
	i := 0
	for _, c := range p.Children() {
		if ce, ok := c.(*xmltree.Element); ok {
			if ce == e {
				return i
			}
			i++
		}
	}
	return -1
}

package xpath

import (
	"testing"

	"repro/internal/testdocs"
	"repro/internal/xmltree"
)

// Additional evaluator coverage: comparison semantics, wildcard attributes,
// mixed item kinds, and resolution edge cases.

func TestAttrWildcard(t *testing.T) {
	items := evalBio(t, `/db/paper/@*`)
	// category is the paper's only plain attribute besides ID.
	if len(items) != 2 {
		t.Fatalf("paper attributes = %d, want 2 (ID, category)", len(items))
	}
	for _, it := range items {
		if _, ok := it.(*xmltree.Attr); !ok {
			t.Errorf("bound %s, want attribute", ItemKind(it))
		}
	}
}

func TestStringValueKinds(t *testing.T) {
	doc := testdocs.Bio()
	lalab := doc.ByID("lalab")
	if got := StringValue(lalab); got != "UCLA Bio LabLos Angeles" {
		t.Errorf("element value = %q", got)
	}
	if got := StringValue(lalab.Attr("ID")); got != "lalab" {
		t.Errorf("attr value = %q", got)
	}
	ref := xmltree.Ref{List: lalab.Ref("managers"), Index: 1}
	if got := StringValue(ref); got != "jones1" {
		t.Errorf("ref value = %q", got)
	}
	if got := StringValue(42); got != "" {
		t.Errorf("unknown item value = %q", got)
	}
}

func TestItemKindNames(t *testing.T) {
	doc := testdocs.Bio()
	lalab := doc.ByID("lalab")
	cases := []struct {
		item Item
		want string
	}{
		{lalab, "element"},
		{lalab.Attr("ID"), "attribute"},
		{xmltree.Ref{List: lalab.Ref("managers"), Index: 0}, "reference"},
		{xmltree.NewText("x"), "pcdata"},
	}
	for _, c := range cases {
		if got := ItemKind(c.item); got != c.want {
			t.Errorf("ItemKind = %q, want %q", got, c.want)
		}
	}
}

func TestCompareValuesExported(t *testing.T) {
	ok, err := CompareValues("=", "a", "a")
	if err != nil || !ok {
		t.Errorf("= comparison failed: %v %v", ok, err)
	}
	ok, err = CompareValues("<", int64(3), int64(5))
	if err != nil || !ok {
		t.Errorf("< comparison failed")
	}
	// Node-set comparisons are existential.
	doc := testdocs.Bio()
	p := MustParse(`/db/lab/name`)
	items, err := p.Eval(&Context{Doc: doc}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ok, err = CompareValues("=", items, "PMBL")
	if err != nil || !ok {
		t.Error("existential node-set comparison failed")
	}
	ok, _ = CompareValues("=", items, "Nonexistent Lab")
	if ok {
		t.Error("node-set comparison matched nothing")
	}
	// Reversed operand order.
	ok, err = CompareValues(">", "zzz", items)
	if err != nil || !ok {
		t.Error("reversed node-set comparison failed")
	}
}

func TestTruthy(t *testing.T) {
	cases := []struct {
		v    any
		want bool
	}{
		{true, true}, {false, false},
		{"", false}, {"x", true},
		{int64(0), false}, {int64(2), true},
		{[]Item{}, false}, {[]Item{nil}, true},
		{nil, false},
	}
	for _, c := range cases {
		if got := Truthy(c.v); got != c.want {
			t.Errorf("Truthy(%v) = %v", c.v, got)
		}
	}
}

func TestPredicateOnDerefTarget(t *testing.T) {
	// Filter the dereferenced element.
	items := evalBio(t, `/db/paper/ref(source, *)->lab[name="PMBL"]`)
	if len(items) != 1 {
		t.Fatalf("matched %d, want 1", len(items))
	}
	items = evalBio(t, `/db/paper/ref(source, *)->lab[name="Wrong"]`)
	if len(items) != 0 {
		t.Fatalf("matched %d, want 0", len(items))
	}
}

func TestChainedDerefs(t *testing.T) {
	// db's lab reference → lalab; lalab's managers → biologists.
	items := evalBio(t, `/db/ref(lab, *)->lab/ref(managers, *)->biologist/lastname`)
	if len(items) != 2 {
		t.Fatalf("matched %d lastnames, want 2", len(items))
	}
	got := map[string]bool{}
	for _, it := range items {
		got[StringValue(it)] = true
	}
	if !got["Smith"] || !got["Jones"] {
		t.Errorf("lastnames = %v", got)
	}
}

func TestDescendantFromMidTree(t *testing.T) {
	doc := testdocs.Bio()
	base := doc.ByID("baselab")
	p := MustParse(`//city`)
	items, err := p.Eval(&Context{Doc: doc}, base)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 1 || StringValue(items[0]) != "Seattle" {
		t.Errorf("descendant from subtree = %v", items)
	}
}

func TestStepsFromNonElementYieldNothing(t *testing.T) {
	doc := testdocs.Bio()
	paper := doc.ByID("Smith991231")
	attr := paper.Attr("category")
	p := MustParse(`title`)
	items, err := p.Eval(&Context{Doc: doc}, attr)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 0 {
		t.Errorf("child step from attribute yielded %d items", len(items))
	}
}

func TestResolveUnknownDocumentFallsBack(t *testing.T) {
	doc := testdocs.Bio()
	ctx := &Context{Doc: doc}
	// Unknown document names fall back to the current document (the paper's
	// queries name files loosely).
	p := MustParse(`document("unknown.xml")/db`)
	items, err := p.Eval(ctx, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 1 {
		t.Errorf("fallback resolution failed")
	}
	// With no document at all, evaluation errors.
	empty := &Context{}
	if _, err := p.Eval(empty, nil); err == nil {
		t.Error("evaluation without documents should fail")
	}
}

func TestBareDocumentPath(t *testing.T) {
	doc := testdocs.Bio()
	p := MustParse(`document("bio.xml")`)
	items, err := p.Eval(&Context{Doc: doc}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 1 || items[0].(*xmltree.Element).Name != "db" {
		t.Errorf("bare document() = %v", items)
	}
}

func TestIndexOnNonElementErrors(t *testing.T) {
	doc := testdocs.Bio()
	p := MustParse(`/db/paper/@category[index()=0]`)
	if _, err := p.Eval(&Context{Doc: doc}, nil); err == nil {
		t.Error("index() on attribute should error")
	}
}

func TestOrPredicateShortCircuit(t *testing.T) {
	items := evalBio(t, `/db/lab[@ID="baselab" or nosuchchild="x"]`)
	if len(items) != 1 {
		t.Fatalf("or short-circuit matched %d", len(items))
	}
}

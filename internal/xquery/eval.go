package xquery

import (
	"fmt"

	"repro/internal/update"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// Evaluator executes parsed statements directly against the DOM — the "XML
// repository" execution path. The relational execution path lives in
// internal/engine.
type Evaluator struct {
	Ctx   *xpath.Context
	Model update.Model
	// Observer, when non-nil, is installed on the update executor so each
	// primitive operation is reported before it executes (delta recording).
	Observer func(target *xmltree.Element, op update.Op)
}

// NewEvaluator returns an ordered-model evaluator over doc.
func NewEvaluator(doc *xmltree.Document) *Evaluator {
	return &Evaluator{Ctx: &xpath.Context{Doc: doc}, Model: update.Ordered}
}

// Result reports what a statement did.
type Result struct {
	// Tuples is the number of variable-binding tuples the statement matched.
	Tuples int
	// Items holds the query results for a FOR…RETURN statement.
	Items []xpath.Item
}

// env is one tuple of variable bindings. Values are xpath.Item for FOR
// bindings and []xpath.Item for LET bindings.
type env map[string]any

func (e env) clone() env {
	c := make(env, len(e)+1)
	for k, v := range e {
		c[k] = v
	}
	return c
}

// ExecString parses and executes src.
func (ev *Evaluator) ExecString(src string) (*Result, error) {
	stmt, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return ev.Exec(stmt)
}

// Exec executes a parsed statement. For updates, all variable bindings —
// including nested sub-update bindings — are computed over the input before
// any mutation (§3.2), then the per-tuple operation sequences execute
// consecutively.
func (ev *Evaluator) Exec(stmt *Statement) (*Result, error) {
	envs, err := ev.bindTuples(stmt.For, stmt.Let, stmt.Where, env{})
	if err != nil {
		return nil, err
	}
	res := &Result{Tuples: len(envs)}

	if stmt.IsQuery() {
		for _, e := range envs {
			items, err := ev.evalVarPath(*stmt.Return, e)
			if err != nil {
				return nil, err
			}
			res.Items = append(res.Items, items...)
		}
		return res, nil
	}

	// Binding phase: build fully bound plans for every tuple before
	// executing anything.
	type boundPlan struct {
		target *xmltree.Element
		ops    []update.Op
	}
	var plans []boundPlan
	for _, e := range envs {
		target, ops, err := ev.buildUpdate(stmt.Update, e)
		if err != nil {
			return nil, err
		}
		plans = append(plans, boundPlan{target, ops})
	}

	// Execution phase.
	var doc *xmltree.Document
	if len(plans) > 0 {
		doc = ev.docOf(plans[0].target)
	}
	if doc == nil {
		doc = ev.Ctx.Doc
	}
	x := update.NewExecutor(ev.Model, doc)
	x.Observer = ev.Observer
	for _, p := range plans {
		if err := x.Apply(p.target, p.ops); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// docOf finds the document containing e among the evaluator's documents.
func (ev *Evaluator) docOf(e *xmltree.Element) *xmltree.Document {
	root := e
	for root.Parent() != nil {
		root = root.Parent()
	}
	if ev.Ctx.Doc != nil && ev.Ctx.Doc.Root == root {
		return ev.Ctx.Doc
	}
	for _, d := range ev.Ctx.Documents {
		if d.Root == root {
			return d
		}
	}
	return nil
}

// bindTuples expands FOR clauses into binding tuples, applies LET bindings,
// and filters by WHERE predicates.
func (ev *Evaluator) bindTuples(fors []ForBinding, lets []LetBinding, where []WhereExpr, base env) ([]env, error) {
	envs := []env{base}
	for _, fb := range fors {
		var next []env
		for _, e := range envs {
			items, err := ev.evalVarPath(fb.Path, e)
			if err != nil {
				return nil, err
			}
			for _, it := range items {
				ne := e.clone()
				ne[fb.Var] = it
				next = append(next, ne)
			}
		}
		envs = next
	}
	for _, lb := range lets {
		for _, e := range envs {
			items, err := ev.evalVarPath(lb.Path, e)
			if err != nil {
				return nil, err
			}
			e[lb.Var] = items
		}
	}
	if len(where) > 0 {
		var kept []env
		for _, e := range envs {
			ok := true
			for _, w := range where {
				hold, err := ev.evalWhere(w, e)
				if err != nil {
					return nil, err
				}
				if !hold {
					ok = false
					break
				}
			}
			if ok {
				kept = append(kept, e)
			}
		}
		envs = kept
	}
	return envs, nil
}

// evalVarPath evaluates a variable-rooted or absolute path under an
// environment.
func (ev *Evaluator) evalVarPath(vp VarPath, e env) ([]xpath.Item, error) {
	if vp.Var == "" {
		if vp.Path == nil {
			return nil, fmt.Errorf("xquery: empty path expression")
		}
		return vp.Path.Eval(ev.Ctx, nil)
	}
	bound, ok := e[vp.Var]
	if !ok {
		return nil, fmt.Errorf("xquery: unbound variable $%s", vp.Var)
	}
	starts, err := itemsOf(bound, vp.Var)
	if err != nil {
		return nil, err
	}
	if vp.Path == nil || len(vp.Path.Steps) == 0 {
		return starts, nil
	}
	var out []xpath.Item
	for _, s := range starts {
		items, err := vp.Path.Eval(ev.Ctx, s)
		if err != nil {
			return nil, err
		}
		out = append(out, items...)
	}
	return out, nil
}

// itemsOf converts an environment value into an item list.
func itemsOf(v any, name string) ([]xpath.Item, error) {
	switch x := v.(type) {
	case []xpath.Item:
		return x, nil
	case nil:
		return nil, fmt.Errorf("xquery: variable $%s is nil", name)
	default:
		return []xpath.Item{x}, nil
	}
}

// singleItem resolves a variable to exactly one item.
func singleItem(e env, name string) (xpath.Item, error) {
	v, ok := e[name]
	if !ok {
		return nil, fmt.Errorf("xquery: unbound variable $%s", name)
	}
	items, err := itemsOf(v, name)
	if err != nil {
		return nil, err
	}
	if len(items) != 1 {
		return nil, fmt.Errorf("xquery: variable $%s binds %d items where exactly one is required", name, len(items))
	}
	return items[0], nil
}

func (ev *Evaluator) evalWhere(w WhereExpr, e env) (bool, error) {
	switch x := w.(type) {
	case BoolOp:
		l, err := ev.evalWhere(x.L, e)
		if err != nil {
			return false, err
		}
		if x.Op == "and" && !l {
			return false, nil
		}
		if x.Op == "or" && l {
			return true, nil
		}
		return ev.evalWhere(x.R, e)
	case Comparison:
		l, err := ev.evalVal(x.L, e)
		if err != nil {
			return false, err
		}
		r, err := ev.evalVal(x.R, e)
		if err != nil {
			return false, err
		}
		return xpath.CompareValues(x.Op, l, r)
	case ExistsExpr:
		items, err := ev.evalVarPath(x.Path, e)
		if err != nil {
			return false, err
		}
		return len(items) > 0, nil
	default:
		return false, fmt.Errorf("xquery: unknown predicate %T", w)
	}
}

func (ev *Evaluator) evalVal(v ValExpr, e env) (any, error) {
	switch x := v.(type) {
	case StringVal:
		return x.Value, nil
	case NumberVal:
		return x.Value, nil
	case IndexVal:
		it, err := singleItem(e, x.Var)
		if err != nil {
			return nil, err
		}
		el, ok := it.(*xmltree.Element)
		if !ok {
			return nil, fmt.Errorf("xquery: $%s.index() requires an element binding", x.Var)
		}
		return int64(xpath.ElementIndex(el)), nil
	case PathVal:
		items, err := ev.evalVarPath(x.Path, e)
		if err != nil {
			return nil, err
		}
		return items, nil
	default:
		return nil, fmt.Errorf("xquery: unknown value expression %T", v)
	}
}

// buildUpdate resolves an UPDATE clause against one binding tuple into a
// target element and a primitive-operation sequence. Nested updates are
// bound immediately (over the current, pre-update document state) and
// embedded as pre-resolved Sub-Updates.
func (ev *Evaluator) buildUpdate(up *UpdateOp, e env) (*xmltree.Element, []update.Op, error) {
	it, err := singleItem(e, up.Binding)
	if err != nil {
		return nil, nil, err
	}
	target, ok := it.(*xmltree.Element)
	if !ok {
		return nil, nil, fmt.Errorf("xquery: UPDATE target $%s is a %s, not an element", up.Binding, xpath.ItemKind(it))
	}
	ops, err := ev.buildOps(up.Ops, e)
	if err != nil {
		return nil, nil, err
	}
	return target, ops, nil
}

func (ev *Evaluator) buildOps(subOps []SubOp, e env) ([]update.Op, error) {
	var ops []update.Op
	for _, so := range subOps {
		switch o := so.(type) {
		case DeleteOp:
			child, err := singleItem(e, o.Child)
			if err != nil {
				return nil, err
			}
			ops = append(ops, update.Delete{Child: child})
		case RenameOp:
			child, err := singleItem(e, o.Child)
			if err != nil {
				return nil, err
			}
			ops = append(ops, update.Rename{Child: child, Name: o.Name})
		case InsertOp:
			content, err := ev.buildContent(o.Content, e)
			if err != nil {
				return nil, err
			}
			switch o.Position {
			case "":
				ops = append(ops, update.Insert{Content: content})
			case "before", "after":
				ref, err := singleItem(e, o.Ref)
				if err != nil {
					return nil, err
				}
				if o.Position == "before" {
					ops = append(ops, update.InsertBefore{Ref: ref, Content: content})
				} else {
					ops = append(ops, update.InsertAfter{Ref: ref, Content: content})
				}
			}
		case ReplaceOp:
			child, err := singleItem(e, o.Child)
			if err != nil {
				return nil, err
			}
			content, err := ev.buildContent(o.Content, e)
			if err != nil {
				return nil, err
			}
			ops = append(ops, update.Replace{Child: child, Content: content})
		case NestedUpdate:
			sub, err := ev.buildNested(o, e)
			if err != nil {
				return nil, err
			}
			ops = append(ops, sub)
		default:
			return nil, fmt.Errorf("xquery: unknown sub-operation %T", so)
		}
	}
	return ops, nil
}

// buildNested binds a nested FOR…WHERE…UPDATE immediately and packages the
// resulting per-tuple updates as a pre-resolved Sub-Update.
func (ev *Evaluator) buildNested(n NestedUpdate, outer env) (update.Op, error) {
	envs, err := ev.bindTuples(n.For, nil, n.Where, outer)
	if err != nil {
		return nil, err
	}
	var targets []*xmltree.Element
	var opLists [][]update.Op
	for _, e := range envs {
		target, ops, err := ev.buildUpdate(n.Update, e)
		if err != nil {
			return nil, err
		}
		targets = append(targets, target)
		opLists = append(opLists, ops)
	}
	i := 0
	return update.SubUpdate{
		Bind: func(*xmltree.Element) ([]*xmltree.Element, error) {
			return targets, nil
		},
		Ops: func(*xmltree.Element) ([]update.Op, error) {
			if i >= len(opLists) {
				return nil, fmt.Errorf("xquery: internal: sub-update op list exhausted")
			}
			ops := opLists[i]
			i++
			return ops, nil
		},
	}, nil
}

func (ev *Evaluator) buildContent(c ContentExpr, e env) (update.Content, error) {
	switch x := c.(type) {
	case NewAttributeExpr:
		return update.NewAttribute{Name: x.Name, Value: x.Value}, nil
	case NewRefExpr:
		return update.NewRef{Name: x.Name, ID: x.ID}, nil
	case StringContent:
		return update.PCDATA{Data: x.Value}, nil
	case ElementLiteral:
		var dtd *xmltree.DTD
		if ev.Ctx.Doc != nil {
			dtd = ev.Ctx.Doc.DTD
		}
		doc, err := xmltree.ParseWith(x.XML, xmltree.ParseOptions{TrimText: true, DTD: dtd})
		if err != nil {
			return nil, fmt.Errorf("xquery: element literal: %w", err)
		}
		return update.ElementContent{Element: doc.Root}, nil
	case VarContent:
		it, err := singleItem(e, x.Var)
		if err != nil {
			return nil, err
		}
		switch v := it.(type) {
		case *xmltree.Element:
			return update.ElementContent{Element: v}, nil
		case *xmltree.Attr:
			return update.NewAttribute{Name: v.Name, Value: v.Value}, nil
		case xmltree.Ref:
			return update.NewRef{Name: v.List.Name, ID: v.ID()}, nil
		case *xmltree.Text:
			return update.PCDATA{Data: v.Data}, nil
		default:
			return nil, fmt.Errorf("xquery: $%s is not usable as content", x.Var)
		}
	default:
		return nil, fmt.Errorf("xquery: unsupported content %s", contentName(c))
	}
}

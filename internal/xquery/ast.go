// Package xquery implements the update extensions to XQuery proposed by
// Tatarinov et al. (SIGMOD 2001, §4): a FOR…LET…WHERE…UPDATE statement whose
// UPDATE clause contains a sequence of sub-operations (DELETE, RENAME,
// INSERT [BEFORE|AFTER], REPLACE…WITH, and nested FOR…WHERE…UPDATE), plus a
// FOR…WHERE…RETURN query form used by the storage experiments.
//
// The package provides the parser and a direct-DOM evaluator; translation to
// SQL over shredded storage lives in internal/engine.
package xquery

import (
	"fmt"
	"strings"

	"repro/internal/xpath"
)

// Statement is a parsed top-level statement: either an update or a query.
type Statement struct {
	For    []ForBinding
	Let    []LetBinding
	Where  []WhereExpr
	Update *UpdateOp // exactly one of Update / Return is set
	Return *VarPath
}

// IsQuery reports whether the statement is a FOR…RETURN query.
func (s *Statement) IsQuery() bool { return s.Return != nil }

// ForBinding is one `$var IN path` clause member.
type ForBinding struct {
	Var  string
	Path VarPath
}

// LetBinding is one `$var := path` clause member.
type LetBinding struct {
	Var  string
	Path VarPath
}

// VarPath is a path expression optionally rooted at a variable:
// `$p/title` has Var "p"; `document("bio.xml")/db` has Var "".
// A bare `$p` has Var "p" and a Path with no steps.
type VarPath struct {
	Var  string
	Path *xpath.Path
}

func (vp VarPath) String() string {
	var b strings.Builder
	if vp.Var != "" {
		b.WriteByte('$')
		b.WriteString(vp.Var)
	}
	if vp.Path != nil {
		b.WriteString(vp.Path.String())
	}
	return b.String()
}

// UpdateOp is `UPDATE $binding { subOp, … }`.
type UpdateOp struct {
	Binding string
	Ops     []SubOp
}

// SubOp is one sub-operation inside an UPDATE clause.
type SubOp interface{ isSubOp() }

// DeleteOp is `DELETE $child`.
type DeleteOp struct {
	Child string // variable name
}

func (DeleteOp) isSubOp() {}

// RenameOp is `RENAME $child TO name`.
type RenameOp struct {
	Child string
	Name  string
}

func (RenameOp) isSubOp() {}

// InsertOp is `INSERT content [BEFORE|AFTER $ref]`.
type InsertOp struct {
	Content ContentExpr
	// Position is "" (append), "before", or "after".
	Position string
	Ref      string // variable name when Position != ""
}

func (InsertOp) isSubOp() {}

// ReplaceOp is `REPLACE $child WITH content`.
type ReplaceOp struct {
	Child   string
	Content ContentExpr
}

func (ReplaceOp) isSubOp() {}

// NestedUpdate is `FOR $v IN path, … [WHERE pred, …] UPDATE $b { … }`:
// a new pattern match starting at the enclosing bindings, recursively
// invoking an update operation (§3.2 Sub-Update).
type NestedUpdate struct {
	For    []ForBinding
	Where  []WhereExpr
	Update *UpdateOp
}

func (NestedUpdate) isSubOp() {}

// ContentExpr constructs insertion content.
type ContentExpr interface{ isContent() }

// NewAttributeExpr is `new_attribute(name, "value")`.
type NewAttributeExpr struct {
	Name  string
	Value string
}

func (NewAttributeExpr) isContent() {}

// NewRefExpr is `new_ref(label, "id")`.
type NewRefExpr struct {
	Name string
	ID   string
}

func (NewRefExpr) isContent() {}

// ElementLiteral is inline XML content such as `<firstname>Jeff</firstname>`.
// The paper's `</>` shorthand closes the innermost open tag.
type ElementLiteral struct {
	XML string // normalized serialized form
}

func (ElementLiteral) isContent() {}

// StringContent is a bare string literal (an ID when inserted relative to a
// reference, PCDATA otherwise).
type StringContent struct {
	Value string
}

func (StringContent) isContent() {}

// VarContent inserts the value of a binding (Example 10: INSERT $source).
type VarContent struct {
	Var string
}

func (VarContent) isContent() {}

// WhereExpr is a predicate in a WHERE clause.
type WhereExpr interface{ isWhere() }

// Comparison compares two value expressions with =, !=, <, <=, >, >=.
type Comparison struct {
	Op   string
	L, R ValExpr
}

func (Comparison) isWhere() {}

// BoolOp combines predicates with "and" / "or".
type BoolOp struct {
	Op   string
	L, R WhereExpr
}

func (BoolOp) isWhere() {}

// ExistsExpr is a bare path used as a predicate: true when non-empty.
type ExistsExpr struct {
	Path VarPath
}

func (ExistsExpr) isWhere() {}

// ValExpr is a scalar-valued expression inside a comparison.
type ValExpr interface{ isVal() }

// PathVal evaluates a variable-rooted path; in comparisons its items'
// string values participate existentially.
type PathVal struct {
	Path VarPath
}

func (PathVal) isVal() {}

// IndexVal is `$var.index()` — the 0-based position of the bound element
// among its parent's child elements (Example 5).
type IndexVal struct {
	Var string
}

func (IndexVal) isVal() {}

// StringVal is a string literal.
type StringVal struct{ Value string }

func (StringVal) isVal() {}

// NumberVal is an integer literal.
type NumberVal struct{ Value int64 }

func (NumberVal) isVal() {}

// contentName describes a content expression for error messages.
func contentName(c ContentExpr) string {
	switch c.(type) {
	case NewAttributeExpr:
		return "new_attribute(…)"
	case NewRefExpr:
		return "new_ref(…)"
	case ElementLiteral:
		return "element literal"
	case StringContent:
		return "string literal"
	case VarContent:
		return "variable"
	default:
		return fmt.Sprintf("%T", c)
	}
}

package xquery

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
	"unicode/utf8"

	"repro/internal/xpath"
)

// Parse parses an update statement or a FOR…RETURN query in the paper's
// syntax, e.g.
//
//	FOR $p IN document("bio.xml")/db/paper,
//	    $cat IN $p/@category
//	UPDATE $p {
//	    DELETE $cat
//	}
//
// Keywords are recognized case-insensitively.
func Parse(src string) (*Statement, error) {
	p := &parser{src: src}
	stmt, err := p.parseStatement()
	if err != nil {
		return nil, fmt.Errorf("xquery: %s (at offset %d, line %d)", err, p.pos, p.line())
	}
	p.skipSpace()
	if !p.eof() {
		return nil, fmt.Errorf("xquery: trailing input at offset %d (line %d): %.30q", p.pos, p.line(), p.src[p.pos:])
	}
	return stmt, nil
}

// MustParse parses a statement and panics on failure. For tests and examples.
func MustParse(src string) *Statement {
	s, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return s
}

type parser struct {
	src string
	pos int
}

func (p *parser) line() int { return 1 + strings.Count(p.src[:min(p.pos, len(p.src))], "\n") }

func (p *parser) eof() bool { return p.pos >= len(p.src) }

func (p *parser) peek() byte {
	if p.eof() {
		return 0
	}
	return p.src[p.pos]
}

func (p *parser) skipSpace() {
	for !p.eof() {
		switch p.src[p.pos] {
		case ' ', '\t', '\r', '\n':
			p.pos++
		default:
			return
		}
	}
}

// keyword reports whether the case-insensitive keyword kw occurs at the
// cursor as a whole word, and consumes it if so.
func (p *parser) keyword(kw string) bool {
	p.skipSpace()
	if p.peekKeyword(kw) {
		p.pos += len(kw)
		return true
	}
	return false
}

func (p *parser) peekKeyword(kw string) bool {
	end := p.pos + len(kw)
	if end > len(p.src) {
		return false
	}
	if !strings.EqualFold(p.src[p.pos:end], kw) {
		return false
	}
	if end == len(p.src) {
		return true
	}
	r, _ := utf8.DecodeRuneInString(p.src[end:])
	return !(r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r))
}

func (p *parser) expect(s string) error {
	p.skipSpace()
	if !strings.HasPrefix(p.src[p.pos:], s) {
		return fmt.Errorf("expected %q", s)
	}
	p.pos += len(s)
	return nil
}

func (p *parser) parseVar() (string, error) {
	p.skipSpace()
	if p.peek() != '$' {
		return "", fmt.Errorf("expected variable reference ($name)")
	}
	p.pos++
	return p.parseIdent()
}

func (p *parser) parseIdent() (string, error) {
	start := p.pos
	r, size := utf8.DecodeRuneInString(p.src[p.pos:])
	if size == 0 || !(r == '_' || unicode.IsLetter(r)) {
		return "", fmt.Errorf("expected identifier")
	}
	p.pos += size
	for !p.eof() {
		r, size = utf8.DecodeRuneInString(p.src[p.pos:])
		if !(r == '_' || r == '-' || unicode.IsLetter(r) || unicode.IsDigit(r)) {
			break
		}
		p.pos += size
	}
	return p.src[start:p.pos], nil
}

func (p *parser) parseQuoted() (string, error) {
	p.skipSpace()
	q := p.peek()
	if q != '"' && q != '\'' {
		return "", fmt.Errorf("expected string literal")
	}
	p.pos++
	start := p.pos
	for !p.eof() && p.src[p.pos] != q {
		p.pos++
	}
	if p.eof() {
		return "", fmt.Errorf("unterminated string literal")
	}
	s := p.src[start:p.pos]
	p.pos++
	return s, nil
}

// stopKeywords end a path expression at nesting depth 0.
var stopKeywords = []string{"WHERE", "UPDATE", "LET", "FOR", "RETURN", "TO", "WITH", "BEFORE", "AFTER", "AND", "OR"}

// scanPathText extracts the raw text of a path expression: everything up to
// a top-level ',', '{', '}', comparison operator (when inWhere), or stop
// keyword. Parentheses, brackets and quotes nest.
func (p *parser) scanPathText(inWhere bool) (string, error) {
	p.skipSpace()
	start := p.pos
	depth := 0
	for !p.eof() {
		c := p.src[p.pos]
		switch c {
		case '"', '\'':
			q := c
			p.pos++
			for !p.eof() && p.src[p.pos] != q {
				p.pos++
			}
			if p.eof() {
				return "", fmt.Errorf("unterminated string in path expression")
			}
			p.pos++
			continue
		case '(', '[':
			depth++
		case ')', ']':
			depth--
			if depth < 0 {
				return p.src[start:p.pos], nil
			}
		case ',', '{', '}':
			if depth == 0 {
				return p.src[start:p.pos], nil
			}
		case '=', '!', '<', '>':
			if inWhere && depth == 0 {
				return p.src[start:p.pos], nil
			}
		case ' ', '\t', '\r', '\n':
			if depth == 0 {
				// Peek the following word for a stop keyword.
				save := p.pos
				p.skipSpace()
				for _, kw := range stopKeywords {
					if p.peekKeyword(kw) {
						text := p.src[start:save]
						return text, nil
					}
				}
				continue
			}
		}
		p.pos++
	}
	return p.src[start:p.pos], nil
}

// parseVarPath parses `$var[path]` or an absolute/document() path.
func (p *parser) parseVarPath(inWhere bool) (VarPath, error) {
	p.skipSpace()
	var vp VarPath
	if p.peek() == '$' {
		p.pos++
		name, err := p.parseIdent()
		if err != nil {
			return vp, err
		}
		vp.Var = name
	}
	text, err := p.scanPathText(inWhere)
	if err != nil {
		return vp, err
	}
	text = strings.TrimSpace(text)
	if text == "" {
		if vp.Var == "" {
			return vp, fmt.Errorf("empty path expression")
		}
		return vp, nil // bare $var
	}
	if vp.Var != "" {
		// $v/title → relative path; strip one leading separator.
		text = strings.TrimPrefix(text, "/")
		// `.index()` is handled by the WHERE value parser, not here.
	}
	path, err := xpath.Parse(text)
	if err != nil {
		return vp, err
	}
	vp.Path = path
	return vp, nil
}

func (p *parser) parseStatement() (*Statement, error) {
	stmt := &Statement{}
	if !p.keyword("FOR") {
		return nil, fmt.Errorf("statement must begin with FOR")
	}
	fors, err := p.parseForBindings()
	if err != nil {
		return nil, err
	}
	stmt.For = fors

	if p.keyword("LET") {
		for {
			v, err := p.parseVar()
			if err != nil {
				return nil, err
			}
			if err := p.expect(":="); err != nil {
				return nil, err
			}
			vp, err := p.parseVarPath(false)
			if err != nil {
				return nil, err
			}
			stmt.Let = append(stmt.Let, LetBinding{Var: v, Path: vp})
			p.skipSpace()
			if p.peek() == ',' {
				p.pos++
				// A comma may precede the next LET binding or (illegally)
				// nothing; FOR-style lookahead is not needed here.
				continue
			}
			break
		}
	}

	if p.keyword("WHERE") {
		preds, err := p.parseWhereList()
		if err != nil {
			return nil, err
		}
		stmt.Where = preds
	}

	p.skipSpace()
	switch {
	case p.peekKeyword("UPDATE"):
		up, err := p.parseUpdateOp()
		if err != nil {
			return nil, err
		}
		stmt.Update = up
	case p.peekKeyword("RETURN"):
		p.keyword("RETURN")
		vp, err := p.parseVarPath(false)
		if err != nil {
			return nil, err
		}
		stmt.Return = &vp
	default:
		return nil, fmt.Errorf("expected UPDATE or RETURN clause")
	}
	return stmt, nil
}

func (p *parser) parseForBindings() ([]ForBinding, error) {
	var out []ForBinding
	for {
		v, err := p.parseVar()
		if err != nil {
			return nil, err
		}
		p.skipSpace()
		if !p.keyword("IN") {
			return nil, fmt.Errorf("expected IN after $%s", v)
		}
		vp, err := p.parseVarPath(false)
		if err != nil {
			return nil, err
		}
		out = append(out, ForBinding{Var: v, Path: vp})
		p.skipSpace()
		if p.peek() == ',' {
			p.pos++
			continue
		}
		return out, nil
	}
}

// parseWhereList parses comma-separated predicates (each a conjunction of
// and/or comparisons). The comma acts as AND.
func (p *parser) parseWhereList() ([]WhereExpr, error) {
	var out []WhereExpr
	for {
		e, err := p.parseWhereOr()
		if err != nil {
			return nil, err
		}
		out = append(out, e)
		p.skipSpace()
		if p.peek() == ',' {
			// Lookahead: the comma might belong to an enclosing FOR list in
			// a nested update — the caller handles that; here a comma is
			// only consumed when a new predicate follows. Predicates start
			// with $, ", ', a digit, or a path.
			save := p.pos
			p.pos++
			p.skipSpace()
			if p.eof() || p.peekKeyword("UPDATE") || p.peekKeyword("RETURN") || p.peekKeyword("FOR") {
				p.pos = save
				return out, nil
			}
			continue
		}
		return out, nil
	}
}

func (p *parser) parseWhereOr() (WhereExpr, error) {
	l, err := p.parseWhereAnd()
	if err != nil {
		return nil, err
	}
	for p.keyword("OR") {
		r, err := p.parseWhereAnd()
		if err != nil {
			return nil, err
		}
		l = BoolOp{Op: "or", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseWhereAnd() (WhereExpr, error) {
	l, err := p.parseWherePrimary()
	if err != nil {
		return nil, err
	}
	for p.keyword("AND") {
		r, err := p.parseWherePrimary()
		if err != nil {
			return nil, err
		}
		l = BoolOp{Op: "and", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseWherePrimary() (WhereExpr, error) {
	p.skipSpace()
	if p.peek() == '(' {
		p.pos++
		e, err := p.parseWhereOr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return e, nil
	}
	l, err := p.parseValExpr()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	for _, op := range []string{"!=", "<=", ">=", "=", "<", ">"} {
		if strings.HasPrefix(p.src[p.pos:], op) {
			p.pos += len(op)
			r, err := p.parseValExpr()
			if err != nil {
				return nil, err
			}
			return Comparison{Op: op, L: l, R: r}, nil
		}
	}
	// Bare path predicate: existence.
	pv, ok := l.(PathVal)
	if !ok {
		return nil, fmt.Errorf("predicate must be a comparison or a path")
	}
	return ExistsExpr{Path: pv.Path}, nil
}

func (p *parser) parseValExpr() (ValExpr, error) {
	p.skipSpace()
	switch c := p.peek(); {
	case c == '"' || c == '\'':
		s, err := p.parseQuoted()
		if err != nil {
			return nil, err
		}
		return StringVal{Value: s}, nil
	case c >= '0' && c <= '9' || c == '-':
		start := p.pos
		if c == '-' {
			p.pos++
		}
		for !p.eof() && p.peek() >= '0' && p.peek() <= '9' {
			p.pos++
		}
		n, err := strconv.ParseInt(p.src[start:p.pos], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad number %q", p.src[start:p.pos])
		}
		return NumberVal{Value: n}, nil
	case c == '$':
		// $var, optionally followed by .index() or a path.
		save := p.pos
		p.pos++
		name, err := p.parseIdent()
		if err != nil {
			return nil, err
		}
		if strings.HasPrefix(p.src[p.pos:], ".index()") {
			p.pos += len(".index()")
			return IndexVal{Var: name}, nil
		}
		p.pos = save
		vp, err := p.parseVarPath(true)
		if err != nil {
			return nil, err
		}
		return PathVal{Path: vp}, nil
	default:
		vp, err := p.parseVarPath(true)
		if err != nil {
			return nil, err
		}
		return PathVal{Path: vp}, nil
	}
}

func (p *parser) parseUpdateOp() (*UpdateOp, error) {
	if !p.keyword("UPDATE") {
		return nil, fmt.Errorf("expected UPDATE")
	}
	v, err := p.parseVar()
	if err != nil {
		return nil, err
	}
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	up := &UpdateOp{Binding: v}
	for {
		p.skipSpace()
		if p.peek() == '}' {
			p.pos++
			if len(up.Ops) == 0 {
				return nil, fmt.Errorf("empty UPDATE clause")
			}
			return up, nil
		}
		op, err := p.parseSubOp()
		if err != nil {
			return nil, err
		}
		up.Ops = append(up.Ops, op)
		p.skipSpace()
		if p.peek() == ',' {
			p.pos++
		}
	}
}

func (p *parser) parseSubOp() (SubOp, error) {
	p.skipSpace()
	switch {
	case p.peekKeyword("DELETE"):
		p.keyword("DELETE")
		v, err := p.parseVar()
		if err != nil {
			return nil, err
		}
		return DeleteOp{Child: v}, nil
	case p.peekKeyword("RENAME"):
		p.keyword("RENAME")
		v, err := p.parseVar()
		if err != nil {
			return nil, err
		}
		if !p.keyword("TO") {
			return nil, fmt.Errorf("expected TO in RENAME")
		}
		p.skipSpace()
		name, err := p.parseIdent()
		if err != nil {
			return nil, err
		}
		return RenameOp{Child: v, Name: name}, nil
	case p.peekKeyword("INSERT"):
		p.keyword("INSERT")
		content, err := p.parseContent()
		if err != nil {
			return nil, err
		}
		op := InsertOp{Content: content}
		if p.keyword("BEFORE") {
			op.Position = "before"
		} else if p.keyword("AFTER") {
			op.Position = "after"
		}
		if op.Position != "" {
			ref, err := p.parseVar()
			if err != nil {
				return nil, err
			}
			op.Ref = ref
		}
		return op, nil
	case p.peekKeyword("REPLACE"):
		p.keyword("REPLACE")
		v, err := p.parseVar()
		if err != nil {
			return nil, err
		}
		if !p.keyword("WITH") {
			return nil, fmt.Errorf("expected WITH in REPLACE")
		}
		content, err := p.parseContent()
		if err != nil {
			return nil, err
		}
		return ReplaceOp{Child: v, Content: content}, nil
	case p.peekKeyword("FOR"):
		p.keyword("FOR")
		fors, err := p.parseForBindings()
		if err != nil {
			return nil, err
		}
		nested := NestedUpdate{For: fors}
		if p.keyword("WHERE") {
			preds, err := p.parseWhereList()
			if err != nil {
				return nil, err
			}
			nested.Where = preds
		}
		up, err := p.parseUpdateOp()
		if err != nil {
			return nil, err
		}
		nested.Update = up
		return nested, nil
	default:
		return nil, fmt.Errorf("expected DELETE, RENAME, INSERT, REPLACE or nested FOR")
	}
}

func (p *parser) parseContent() (ContentExpr, error) {
	p.skipSpace()
	switch {
	case p.peekKeyword("new_attribute"):
		p.keyword("new_attribute")
		name, value, err := p.parseConstructorArgs()
		if err != nil {
			return nil, err
		}
		return NewAttributeExpr{Name: name, Value: value}, nil
	case p.peekKeyword("new_ref"):
		p.keyword("new_ref")
		name, id, err := p.parseConstructorArgs()
		if err != nil {
			return nil, err
		}
		return NewRefExpr{Name: name, ID: id}, nil
	case p.peek() == '<':
		xml, err := p.scanElementLiteral()
		if err != nil {
			return nil, err
		}
		return ElementLiteral{XML: xml}, nil
	case p.peek() == '"' || p.peek() == '\'':
		s, err := p.parseQuoted()
		if err != nil {
			return nil, err
		}
		return StringContent{Value: s}, nil
	case p.peek() == '$':
		v, err := p.parseVar()
		if err != nil {
			return nil, err
		}
		return VarContent{Var: v}, nil
	default:
		return nil, fmt.Errorf("expected content expression (constructor, element literal, string, or variable)")
	}
}

// parseConstructorArgs parses `(name, "value")` where the first argument is
// an unquoted name and the second may be quoted or a bare token.
func (p *parser) parseConstructorArgs() (string, string, error) {
	if err := p.expect("("); err != nil {
		return "", "", err
	}
	p.skipSpace()
	name, err := p.parseIdent()
	if err != nil {
		return "", "", err
	}
	if err := p.expect(","); err != nil {
		return "", "", err
	}
	p.skipSpace()
	var value string
	if p.peek() == '"' || p.peek() == '\'' {
		value, err = p.parseQuoted()
		if err != nil {
			return "", "", err
		}
	} else {
		value, err = p.parseIdent()
		if err != nil {
			return "", "", err
		}
	}
	if err := p.expect(")"); err != nil {
		return "", "", err
	}
	return name, value, nil
}

// scanElementLiteral consumes a complete inline XML element, normalizing the
// paper's `</>` shorthand into an explicit closing tag.
func (p *parser) scanElementLiteral() (string, error) {
	var b strings.Builder
	var stack []string
	for {
		if p.eof() {
			return "", fmt.Errorf("unterminated element literal (open tags: %v)", stack)
		}
		c := p.src[p.pos]
		if c != '<' {
			// Text content up to the next tag.
			start := p.pos
			for !p.eof() && p.src[p.pos] != '<' {
				p.pos++
			}
			b.WriteString(p.src[start:p.pos])
			continue
		}
		switch {
		case strings.HasPrefix(p.src[p.pos:], "</>"):
			if len(stack) == 0 {
				return "", fmt.Errorf("</> with no open tag")
			}
			name := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			b.WriteString("</")
			b.WriteString(name)
			b.WriteByte('>')
			p.pos += 3
		case strings.HasPrefix(p.src[p.pos:], "</"):
			p.pos += 2
			name, err := p.parseIdent()
			if err != nil {
				return "", fmt.Errorf("bad closing tag: %s", err)
			}
			p.skipSpace()
			if p.peek() != '>' {
				return "", fmt.Errorf("bad closing tag </%s", name)
			}
			p.pos++
			if len(stack) == 0 || stack[len(stack)-1] != name {
				return "", fmt.Errorf("mismatched closing tag </%s>", name)
			}
			stack = stack[:len(stack)-1]
			b.WriteString("</")
			b.WriteString(name)
			b.WriteByte('>')
		default:
			// Opening or self-closing tag: copy verbatim through '>',
			// respecting quoted attribute values.
			p.pos++
			name, err := p.parseIdent()
			if err != nil {
				return "", fmt.Errorf("bad start tag: %s", err)
			}
			b.WriteByte('<')
			b.WriteString(name)
			selfClose := false
			for {
				if p.eof() {
					return "", fmt.Errorf("unterminated start tag <%s", name)
				}
				ch := p.src[p.pos]
				if ch == '"' || ch == '\'' {
					q := ch
					start := p.pos
					p.pos++
					for !p.eof() && p.src[p.pos] != q {
						p.pos++
					}
					if p.eof() {
						return "", fmt.Errorf("unterminated attribute value in <%s", name)
					}
					p.pos++
					b.WriteString(p.src[start:p.pos])
					continue
				}
				if strings.HasPrefix(p.src[p.pos:], "/>") {
					selfClose = true
					b.WriteString("/>")
					p.pos += 2
					break
				}
				if ch == '>' {
					b.WriteByte('>')
					p.pos++
					break
				}
				b.WriteByte(ch)
				p.pos++
			}
			if !selfClose {
				stack = append(stack, name)
			}
		}
		if len(stack) == 0 {
			return b.String(), nil
		}
	}
}

package xquery

import (
	"strings"
	"testing"

	"repro/internal/testdocs"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

func bioEval(t *testing.T) (*Evaluator, *xmltree.Document) {
	t.Helper()
	doc := testdocs.Bio()
	ev := NewEvaluator(doc)
	ev.Ctx.Documents = map[string]*xmltree.Document{"bio.xml": doc}
	return ev, doc
}

// TestExample1 runs the paper's Example 1 verbatim: deleting an attribute,
// an IDREF, and a subelement.
func TestExample1(t *testing.T) {
	ev, doc := bioEval(t)
	res, err := ev.ExecString(`
FOR $p IN document("bio.xml")/db/paper,
    $cat IN $p/@category,
    $bio IN $p/ref(biologist,"smith1"),
    $ti IN $p/title
UPDATE $p {
    DELETE $cat,
    DELETE $bio,
    DELETE $ti
}`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tuples != 1 {
		t.Errorf("tuples = %d, want 1", res.Tuples)
	}
	paper := doc.ByID("Smith991231")
	if paper.Attr("category") != nil || paper.Ref("biologist") != nil || paper.FirstChildNamed("title") != nil {
		t.Error("Example 1 deletions incomplete")
	}
	if paper.Ref("source") == nil {
		t.Error("source reference disturbed")
	}
}

// TestExample2 runs Example 2: inserting an attribute, two references, and a
// subelement.
func TestExample2(t *testing.T) {
	ev, doc := bioEval(t)
	_, err := ev.ExecString(`
FOR $bio in document("bio.xml")/db/biologist[@ID="smith1"]
UPDATE $bio {
    INSERT new_attribute(age,"29"),
    INSERT new_ref(worksAt,"ucla"),
    INSERT new_ref(worksAt,"baselab"),
    INSERT <firstname>Jeff</firstname>
}`)
	if err != nil {
		t.Fatal(err)
	}
	smith := doc.ByID("smith1")
	if v, _ := smith.AttrValue("age"); v != "29" {
		t.Errorf("age = %q", v)
	}
	w := smith.Ref("worksAt")
	if w == nil || len(w.IDs) != 2 || w.IDs[0] != "ucla" || w.IDs[1] != "baselab" {
		t.Errorf("worksAt = %+v", w)
	}
	if smith.FirstChildNamed("firstname") == nil {
		t.Error("firstname not inserted")
	}
}

// TestExample3 runs Example 3: positional insertion of a subelement and a
// reference.
func TestExample3(t *testing.T) {
	ev, doc := bioEval(t)
	_, err := ev.ExecString(`
FOR $lab in document("bio.xml")/db/lab[@ID="baselab"],
    $n IN $lab/name,
    $sref IN $lab/ref(managers,"smith1")
UPDATE $lab {
    INSERT "jones1" BEFORE $sref,
    INSERT <street>Oak</street> AFTER $n
}`)
	if err != nil {
		t.Fatal(err)
	}
	lab := doc.ByID("baselab")
	m := lab.Ref("managers")
	if len(m.IDs) != 2 || m.IDs[0] != "jones1" || m.IDs[1] != "smith1" {
		t.Errorf("managers = %v", m.IDs)
	}
	kids := lab.ChildElements()
	if kids[0].Name != "name" || kids[1].Name != "street" {
		t.Errorf("order = %s, %s", kids[0].Name, kids[1].Name)
	}
	if kids[1].TextContent() != "Oak" {
		t.Errorf("street = %q", kids[1].TextContent())
	}
}

// TestExample4 runs Example 4: replacing an element and a reference, using
// the paper's `</>`-shorthand element literal and wildcard ref().
func TestExample4(t *testing.T) {
	ev, doc := bioEval(t)
	_, err := ev.ExecString(`
FOR $lab in document("bio.xml")/db/lab[@ID="baselab"],
    $name IN $lab/name,
    $mgr IN $lab/ref(managers, *)
UPDATE $lab {
    REPLACE $name WITH <appellation>Fancy Lab</>,
    REPLACE $mgr WITH new_attribute(managers,"jones1")
}`)
	if err != nil {
		t.Fatal(err)
	}
	lab := doc.ByID("baselab")
	if lab.FirstChildNamed("name") != nil {
		t.Error("name not replaced")
	}
	if app := lab.FirstChildNamed("appellation"); app == nil || app.TextContent() != "Fancy Lab" {
		t.Error("appellation wrong")
	}
	if ids := lab.Ref("managers").IDs; len(ids) != 1 || ids[0] != "jones1" {
		t.Errorf("managers = %v", ids)
	}
}

// TestExample5 runs the multi-level nested update and verifies the Figure 3
// output shape.
func TestExample5(t *testing.T) {
	ev, doc := bioEval(t)
	res, err := ev.ExecString(`
FOR $u in document("bio.xml")/db/university[@ID="ucla"],
    $lab IN $u/lab
WHERE $lab.index() = 0
UPDATE $u {
    INSERT new_attribute(labs,"2"),
    INSERT <lab ID="newlab">
        <name>UCLA Secondary Lab</name>
    </lab> BEFORE $lab,
    FOR $l1 IN $u/lab,
        $labname IN $l1/name,
        $ci IN $l1/city
    UPDATE $l1 {
        REPLACE $labname WITH <name>UCLA Primary Lab</>,
        DELETE $ci
    }
}`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tuples != 1 {
		t.Errorf("tuples = %d, want 1", res.Tuples)
	}
	u := doc.ByID("ucla")
	if v, _ := u.AttrValue("labs"); v != "2" {
		t.Errorf("labs = %q", v)
	}
	labs := u.ChildElementsNamed("lab")
	if len(labs) != 2 {
		t.Fatalf("%d labs, want 2", len(labs))
	}
	if id, _ := labs[0].AttrValue("ID"); id != "newlab" {
		t.Errorf("first lab = %q", id)
	}
	if got := labs[0].FirstChildNamed("name").TextContent(); got != "UCLA Secondary Lab" {
		t.Errorf("newlab name = %q (sub-update must bind over the input)", got)
	}
	if got := labs[1].FirstChildNamed("name").TextContent(); got != "UCLA Primary Lab" {
		t.Errorf("lalab name = %q", got)
	}
	if labs[1].FirstChildNamed("city") != nil {
		t.Error("lalab city not deleted")
	}
}

// TestExample6Query runs the Example 6 query form.
func TestExample6Query(t *testing.T) {
	doc := testdocs.Cust()
	ev := NewEvaluator(doc)
	ev.Ctx.Documents = map[string]*xmltree.Document{"custdb.xml": doc}
	res, err := ev.ExecString(`
FOR $c IN document("custdb.xml")/CustDB/Customer[Name="John"]
RETURN $c`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Items) != 2 {
		t.Fatalf("returned %d items, want 2 Johns", len(res.Items))
	}
	for _, it := range res.Items {
		e := it.(*xmltree.Element)
		if e.FirstChildNamed("Name").TextContent() != "John" {
			t.Errorf("wrong customer returned")
		}
	}
}

// TestExample8OrderSuspend runs Example 8 and checks the correctness issue
// the paper highlights: the nested tire-line update must still apply even
// though the outer update changes the status the selection depends on.
func TestExample8OrderSuspend(t *testing.T) {
	doc := testdocs.Cust()
	ev := NewEvaluator(doc)
	ev.Ctx.Documents = map[string]*xmltree.Document{"custdb.xml": doc}
	_, err := ev.ExecString(`
FOR $o IN document("custdb.xml")//Order[Status="ready" and OrderLine/ItemName="tire"]
UPDATE $o {
    INSERT <Status>suspended</Status>,
    FOR $i IN $o/OrderLine[ItemName="tire"]
    UPDATE $i {
        INSERT <comment>recalled</comment>
    }
}`)
	if err != nil {
		t.Fatal(err)
	}
	// The ready+tire order belongs to John (2000-05-01).
	var target *xmltree.Element
	xmltree.Walk(doc.Root, func(e *xmltree.Element) bool {
		if e.Name == "Order" && e.FirstChildNamed("Date") != nil &&
			e.FirstChildNamed("Date").TextContent() == "2000-05-01" {
			target = e
		}
		return true
	})
	if target == nil {
		t.Fatal("order not found")
	}
	stats := target.ChildElementsNamed("Status")
	if len(stats) != 2 || stats[1].TextContent() != "suspended" {
		t.Errorf("status insert wrong: %d statuses", len(stats))
	}
	// The tire line got its comment despite the status change.
	var tireLines, commented int
	for _, ol := range target.ChildElementsNamed("OrderLine") {
		if ol.FirstChildNamed("ItemName").TextContent() == "tire" {
			tireLines++
			if c := ol.FirstChildNamed("comment"); c != nil && c.TextContent() == "recalled" {
				commented++
			}
		}
	}
	if tireLines != 1 || commented != 1 {
		t.Errorf("tire lines = %d, commented = %d", tireLines, commented)
	}
	// The shipped tire order (not ready) must be untouched.
	xmltree.Walk(doc.Root, func(e *xmltree.Element) bool {
		if e.Name == "Order" && e.FirstChildNamed("Date").TextContent() == "2000-06-12" {
			if len(e.ChildElementsNamed("Status")) != 1 {
				t.Error("non-matching order was modified")
			}
		}
		return true
	})
}

// TestExample9DeleteJohns runs the Example 9 whole-subtree delete.
func TestExample9DeleteJohns(t *testing.T) {
	doc := testdocs.Cust()
	ev := NewEvaluator(doc)
	ev.Ctx.Documents = map[string]*xmltree.Document{"custdb.xml": doc}
	res, err := ev.ExecString(`
FOR $d IN document("custdb.xml")/CustDB,
    $c IN $d/Customer[Name="John"]
UPDATE $d {
    DELETE $c
}`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tuples != 2 {
		t.Errorf("tuples = %d, want 2", res.Tuples)
	}
	remaining := doc.Root.ChildElementsNamed("Customer")
	if len(remaining) != 1 {
		t.Fatalf("%d customers remain, want 1", len(remaining))
	}
	if remaining[0].FirstChildNamed("Name").TextContent() != "Mary" {
		t.Error("wrong customer survived")
	}
}

// TestExample10CrossDocumentCopy runs Example 10: copying Californian
// customers into a second document, with copy semantics.
func TestExample10CrossDocumentCopy(t *testing.T) {
	src := testdocs.Cust()
	dst, err := xmltree.ParseWith(`<CustDB/>`,
		xmltree.ParseOptions{TrimText: true, DTD: xmltree.MustParseDTD(testdocs.CustDTD)})
	if err != nil {
		t.Fatal(err)
	}
	ev := NewEvaluator(src)
	ev.Ctx.Documents = map[string]*xmltree.Document{
		"custDB.xml":       src,
		"CA-customers.xml": dst,
	}
	_, err = ev.ExecString(`
FOR $source IN document("custDB.xml")/CustDB/Customer[Address/State="CA"],
    $target IN document("CA-customers.xml")/CustDB
UPDATE $target {
    INSERT $source
}`)
	if err != nil {
		t.Fatal(err)
	}
	copied := dst.Root.ChildElementsNamed("Customer")
	if len(copied) != 1 {
		t.Fatalf("copied %d customers, want 1", len(copied))
	}
	if got := copied[0].FirstChildNamed("Address").FirstChildNamed("City").TextContent(); got != "Sacramento" {
		t.Errorf("copied city = %q", got)
	}
	// Copy semantics: source document still has the customer.
	if len(src.Root.ChildElementsNamed("Customer")) != 3 {
		t.Error("source document lost its customer (move instead of copy)")
	}
	// And the copy is independent storage.
	copied[0].FirstChildNamed("Name").Children()[0].(*xmltree.Text).Data = "CHANGED"
	for _, c := range src.Root.ChildElementsNamed("Customer") {
		if c.FirstChildNamed("Name").TextContent() == "CHANGED" {
			t.Error("copy shares storage with source")
		}
	}
}

func TestRenameStatement(t *testing.T) {
	ev, doc := bioEval(t)
	_, err := ev.ExecString(`
FOR $lab IN document("bio.xml")/db/lab[@ID="lab2"],
    $n IN $lab/name
UPDATE $lab {
    RENAME $n TO title
}`)
	if err != nil {
		t.Fatal(err)
	}
	lab2 := doc.ByID("lab2")
	if lab2.FirstChildNamed("title") == nil || lab2.FirstChildNamed("name") != nil {
		t.Error("rename did not apply")
	}
}

func TestLetBinding(t *testing.T) {
	ev, _ := bioEval(t)
	res, err := ev.ExecString(`
FOR $db IN document("bio.xml")/db
LET $labs := $db/lab
RETURN $labs`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Items) != 2 {
		t.Errorf("LET query returned %d items, want 2", len(res.Items))
	}
}

func TestWhereFiltering(t *testing.T) {
	ev, _ := bioEval(t)
	res, err := ev.ExecString(`
FOR $b IN document("bio.xml")/db/biologist
WHERE $b/@age = "32"
RETURN $b`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Items) != 1 {
		t.Fatalf("%d items, want 1", len(res.Items))
	}
	if got, _ := res.Items[0].(*xmltree.Element).AttrValue("ID"); got != "jones1" {
		t.Errorf("matched %q", got)
	}
}

func TestWhereAndOrComma(t *testing.T) {
	ev, _ := bioEval(t)
	res, err := ev.ExecString(`
FOR $lab IN document("bio.xml")/db/lab
WHERE $lab/country = "USA", $lab/name = "PMBL" OR $lab/name = "Seattle Bio Lab"
RETURN $lab`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Items) != 1 {
		t.Fatalf("%d items, want 1 (only PMBL has country directly)", len(res.Items))
	}
}

func TestNoMatchIsNoop(t *testing.T) {
	ev, doc := bioEval(t)
	before := doc.String()
	res, err := ev.ExecString(`
FOR $p IN document("bio.xml")/db/paper[@ID="nonexistent"],
    $t IN $p/title
UPDATE $p { DELETE $t }`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tuples != 0 {
		t.Errorf("tuples = %d, want 0", res.Tuples)
	}
	if doc.String() != before {
		t.Error("document changed with no matching tuples")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`UPDATE $x { DELETE $y }`, // no FOR
		`FOR $x document("a")/b UPDATE $x { DELETE $y }`, // missing IN
		`FOR $x IN /a/b`,                               // no UPDATE/RETURN
		`FOR $x IN /a/b UPDATE $x { }`,                 // empty update
		`FOR $x IN /a/b UPDATE $x { FROB $y }`,         // unknown op
		`FOR $x IN /a/b UPDATE $x { RENAME $y }`,       // missing TO
		`FOR $x IN /a/b UPDATE $x { REPLACE $y <a/> }`, // missing WITH
		`FOR $x IN /a/b UPDATE $x { INSERT <a> }`,      // unterminated literal
		`FOR $x IN /a/b UPDATE $x { DELETE $y`,         // missing brace
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse succeeded for %q, want error", src)
		}
	}
}

func TestElementLiteralShorthand(t *testing.T) {
	stmt := MustParse(`FOR $x IN /a UPDATE $x { INSERT <b attr="1"><c>t</> x</b> }`)
	ins := stmt.Update.Ops[0].(InsertOp)
	lit := ins.Content.(ElementLiteral)
	want := `<b attr="1"><c>t</c> x</b>`
	if lit.XML != want {
		t.Errorf("literal = %q, want %q", lit.XML, want)
	}
}

func TestCaseInsensitiveKeywords(t *testing.T) {
	ev, doc := bioEval(t)
	_, err := ev.ExecString(`
for $lab in document("bio.xml")/db/lab[@ID="lab2"],
    $c in $lab/city
update $lab {
    delete $c
}`)
	if err != nil {
		t.Fatal(err)
	}
	if doc.ByID("lab2").FirstChildNamed("city") != nil {
		t.Error("lowercase keywords not accepted")
	}
}

func TestUnboundVariableError(t *testing.T) {
	ev, _ := bioEval(t)
	_, err := ev.ExecString(`
FOR $p IN document("bio.xml")/db/paper
UPDATE $p { DELETE $nosuch }`)
	if err == nil || !strings.Contains(err.Error(), "unbound") {
		t.Errorf("expected unbound-variable error, got %v", err)
	}
}

func TestDeletedBindingInLaterOpFails(t *testing.T) {
	ev, _ := bioEval(t)
	_, err := ev.ExecString(`
FOR $lab IN document("bio.xml")/db/lab[@ID="lab2"],
    $n IN $lab/name
UPDATE $lab {
    DELETE $n,
    RENAME $n TO gone
}`)
	if err == nil || !strings.Contains(err.Error(), "deleted") {
		t.Errorf("expected deleted-binding error, got %v", err)
	}
}

func TestMultipleTuplesExecuteConsecutively(t *testing.T) {
	ev, doc := bioEval(t)
	res, err := ev.ExecString(`
FOR $lab IN document("bio.xml")//lab,
    $n IN $lab/name
UPDATE $lab {
    INSERT new_attribute(visited, "yes")
}`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tuples != 3 {
		t.Errorf("tuples = %d, want 3", res.Tuples)
	}
	count := 0
	xmltree.Walk(doc.Root, func(e *xmltree.Element) bool {
		if v, _ := e.AttrValue("visited"); v == "yes" {
			count++
		}
		return true
	})
	if count != 3 {
		t.Errorf("%d labs visited, want 3", count)
	}
	_ = xpath.Item(nil)
}

package relational

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"
	"time"
)

// noAutoCkpt keeps the log untouched so crash tests control exactly what
// survives. Small segments force rotation under every workload.
func noAutoCkpt() Options {
	return Options{Sync: SyncOff, CheckpointBytes: -1, SegmentSize: 512}
}

func mustOpenDB(t *testing.T, dir string, opts Options) *DB {
	t.Helper()
	db, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return db
}

func TestOpenCloseReopenRoundTrip(t *testing.T) {
	dir := t.TempDir()
	db := mustOpenDB(t, dir, noAutoCkpt())
	db.MustExec("CREATE TABLE item (id INTEGER, parentId INTEGER, name VARCHAR(64))")
	db.MustExec("CREATE ORDERED INDEX oi ON item (parentId, id)")
	for i := 0; i < 10; i++ {
		db.MustExec(fmt.Sprintf("INSERT INTO item VALUES (%d, %d, 'n%d')", i+1, i%3, i))
	}
	db.MustExec("DELETE FROM item WHERE parentId = 1")
	db.MustExec("UPDATE item SET name = 'renamed ''x''' WHERE id = 6")
	want := dbDump(db)
	if err := db.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	db2 := mustOpenDB(t, dir, noAutoCkpt())
	defer db2.Close()
	if got := dbDump(db2); got != want {
		t.Fatalf("reopened dump differs:\n got:\n%s\nwant:\n%s", got, want)
	}
}

func TestPreparedStatementReplay(t *testing.T) {
	dir := t.TempDir()
	db := mustOpenDB(t, dir, noAutoCkpt())
	db.MustExec("CREATE TABLE item (id INTEGER, name VARCHAR(64))")
	p, err := db.Prepare("INSERT INTO item VALUES (?, ?)")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Exec(Int(1), Text("it's quoted")); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Exec(Int(2), Null); err != nil {
		t.Fatal(err)
	}
	want := dbDump(db)
	db.Close()

	db2 := mustOpenDB(t, dir, noAutoCkpt())
	defer db2.Close()
	if got := dbDump(db2); got != want {
		t.Fatalf("prepared replay dump differs:\n got:\n%s\nwant:\n%s", got, want)
	}
}

func TestRollbackNotLogged(t *testing.T) {
	dir := t.TempDir()
	db := mustOpenDB(t, dir, noAutoCkpt())
	db.MustExec("CREATE TABLE item (id INTEGER, name VARCHAR(64))")
	db.MustExec("INSERT INTO item VALUES (1, 'keep')")
	tx := db.Begin()
	if _, err := tx.Exec("INSERT INTO item VALUES (2, 'discard')"); err != nil {
		t.Fatal(err)
	}
	tx.Rollback()
	// A failed statement commits nothing either.
	if _, err := db.Exec("INSERT INTO item VALUES (1, 'dup')"); err == nil {
		t.Fatal("duplicate id should fail")
	}
	want := dbDump(db)
	db.Close()

	db2 := mustOpenDB(t, dir, noAutoCkpt())
	defer db2.Close()
	if got := dbDump(db2); got != want {
		t.Fatalf("rolled-back work leaked into the log:\n got:\n%s\nwant:\n%s", got, want)
	}
	if n := db2.RowCount("item"); n != 1 {
		t.Fatalf("RowCount = %d, want 1", n)
	}
}

// crashOp is one workload step applied identically to the durable DB and
// the in-memory shadow.
type crashOp struct {
	tx       bool
	prepared bool
	args     []Value
	stmts    []string
}

// genWorkload builds a deterministic statement mix: inserts, updates,
// deletes, failing statements (unique violations), DDL (index creation,
// temp-table churn), multi-statement transactions, and prepared executions.
func genWorkload(r *rand.Rand, n int) []crashOp {
	ops := []crashOp{
		{stmts: []string{"CREATE TABLE item (id INTEGER, parentId INTEGER, pos INTEGER, name VARCHAR(64))"}},
		{stmts: []string{"CREATE ORDERED INDEX ip ON item (parentId, pos)"}},
	}
	nextID := 1
	for len(ops) < n {
		switch k := r.Intn(10); {
		case k < 4: // plain insert
			ops = append(ops, crashOp{stmts: []string{fmt.Sprintf(
				"INSERT INTO item VALUES (%d, %d, %d, 'n%d')", nextID, r.Intn(4), r.Intn(50), nextID)}})
			nextID++
		case k < 5: // failing insert (duplicate id) — must commit nothing
			if nextID > 1 {
				ops = append(ops, crashOp{stmts: []string{fmt.Sprintf(
					"INSERT INTO item VALUES (%d, 0, 0, 'dup')", 1+r.Intn(nextID-1))}})
			}
		case k < 7: // update a window
			ops = append(ops, crashOp{stmts: []string{fmt.Sprintf(
				"UPDATE item SET pos = pos + 1 WHERE parentId = %d AND pos >= %d", r.Intn(4), r.Intn(40))}})
		case k < 8: // delete
			ops = append(ops, crashOp{stmts: []string{fmt.Sprintf(
				"DELETE FROM item WHERE id = %d", 1+r.Intn(nextID))}})
		case k < 9: // explicit transaction, mixed success/failure inside
			a, b := nextID, nextID+1
			nextID += 2
			ops = append(ops, crashOp{tx: true, stmts: []string{
				fmt.Sprintf("INSERT INTO item VALUES (%d, 1, 0, 'tx-a')", a),
				fmt.Sprintf("INSERT INTO item VALUES (%d, 1, 0, 'dup')", a), // fails, stmt-level rollback
				fmt.Sprintf("INSERT INTO item VALUES (%d, 2, 1, 'tx-b')", b),
				fmt.Sprintf("UPDATE item SET name = 'tx''d' WHERE id = %d", a),
			}})
		default: // prepared insert with args (incl. NULL and quotes)
			ops = append(ops, crashOp{prepared: true,
				stmts: []string{"INSERT INTO item VALUES (?, ?, ?, ?)"},
				args:  []Value{Int(int64(nextID)), Int(int64(r.Intn(4))), Null, Text("pre'par''ed")}})
			nextID++
		}
	}
	return ops
}

// applyOp runs one op, ignoring expected statement failures (both DBs fail
// identically). It reports nothing; callers diff the WAL's LSN to learn
// whether a commit record was produced.
func applyOp(t *testing.T, db *DB, op crashOp) {
	t.Helper()
	switch {
	case op.prepared:
		p, err := db.Prepare(op.stmts[0])
		if err != nil {
			t.Fatal(err)
		}
		p.Exec(op.args...)
	case op.tx:
		tx := db.Begin()
		for _, s := range op.stmts {
			tx.Exec(s)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	default:
		db.Exec(op.stmts[0])
	}
}

// segFiles returns the log's segment files in LSN order.
func segFiles(t *testing.T, dir string) []string {
	t.Helper()
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(segs) // fixed-width hex names sort by first LSN
	return segs
}

// killAt simulates a crash losing everything past the given byte offset of
// the concatenated log: the segment containing the offset is truncated
// there and all later segments are deleted.
func killAt(t *testing.T, dir string, offset int64) {
	t.Helper()
	segs := segFiles(t, dir)
	var cum int64
	cut := false
	for _, seg := range segs {
		st, err := os.Stat(seg)
		if err != nil {
			t.Fatal(err)
		}
		if cut {
			os.Remove(seg)
			continue
		}
		if offset < cum+st.Size() {
			if err := os.Truncate(seg, offset-cum); err != nil {
				t.Fatal(err)
			}
			cut = true
			continue
		}
		cum += st.Size()
	}
}

// TestCrashInjectionRandomKillPoints is the tentpole's proof: for many
// randomized workloads and byte-granular kill points (including mid-record
// torn tails), recovery must reproduce exactly the committed prefix the
// surviving log frames describe — byte-identical dumps against a shadow DB
// that executed the same statements in memory.
func TestCrashInjectionRandomKillPoints(t *testing.T) {
	const killPoints = 60
	for i := 0; i < killPoints; i++ {
		r := rand.New(rand.NewSource(int64(i)))
		dir := t.TempDir()
		db := mustOpenDB(t, dir, noAutoCkpt())
		shadow := NewDB()
		ops := genWorkload(r, 30+r.Intn(20))

		// dumps[k] is the shadow state after the k-th commit record.
		var dumps []string
		for _, op := range ops {
			before := db.wal.LastLSN()
			applyOp(t, db, op)
			applyOp(t, shadow, op)
			after := db.wal.LastLSN()
			switch after - before {
			case 0: // nothing committed (failure or empty transaction)
			case 1:
				dumps = append(dumps, dbDump(shadow))
			default:
				t.Fatalf("op produced %d records", after-before)
			}
		}
		// Abandon db without Close — the OS file contents are the crash
		// image — then lose a random tail.
		var total int64
		for _, seg := range segFiles(t, dir) {
			st, _ := os.Stat(seg)
			total += st.Size()
		}
		cut := r.Int63n(total + 1)
		killAt(t, dir, cut)

		rec := mustOpenDB(t, dir, noAutoCkpt())
		k := rec.RecoveredCommits()
		want := ""
		if k > 0 {
			if k > len(dumps) {
				t.Fatalf("iter %d: recovered %d commits, only %d happened", i, k, len(dumps))
			}
			want = dumps[k-1]
		}
		if got := dbDump(rec); got != want {
			t.Fatalf("iter %d (cut %d of %d, %d/%d commits): recovered state diverges from shadow\n got:\n%s\nwant:\n%s",
				i, cut, total, k, len(dumps), got, want)
		}
		rec.Close()
	}
}

// TestCheckpointPlusTailEqualsFullReplay: the same workload recovered from
// (checkpoint + log tail) and from the full log must agree — with the
// shadow and with each other.
func TestCheckpointPlusTailEqualsFullReplay(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	ops := genWorkload(r, 40)
	mid := len(ops) / 2

	dirCkpt, dirFull := t.TempDir(), t.TempDir()
	dbC := mustOpenDB(t, dirCkpt, noAutoCkpt())
	dbF := mustOpenDB(t, dirFull, noAutoCkpt())
	shadow := NewDB()
	for i, op := range ops {
		applyOp(t, dbC, op)
		applyOp(t, dbF, op)
		applyOp(t, shadow, op)
		if i == mid {
			if err := dbC.Checkpoint(); err != nil {
				t.Fatalf("Checkpoint: %v", err)
			}
		}
	}
	want := dbDump(shadow)
	// Crash both (no Close): recovery runs purely from disk state.
	recC := mustOpenDB(t, dirCkpt, noAutoCkpt())
	defer recC.Close()
	recF := mustOpenDB(t, dirFull, noAutoCkpt())
	defer recF.Close()
	if got := dbDump(recC); got != want {
		t.Fatalf("checkpoint+tail recovery diverges from shadow\n got:\n%s\nwant:\n%s", got, want)
	}
	if got := dbDump(recF); got != want {
		t.Fatalf("full-replay recovery diverges from shadow")
	}
	if recC.RecoveredCommits() >= recF.RecoveredCommits() {
		t.Fatalf("checkpoint did not shorten replay: %d vs %d", recC.RecoveredCommits(), recF.RecoveredCommits())
	}
}

// TestCrashAfterCheckpointKillPoints combines both: checkpoint mid-stream,
// then random kill points in the tail.
func TestCrashAfterCheckpointKillPoints(t *testing.T) {
	for i := 0; i < 10; i++ {
		r := rand.New(rand.NewSource(int64(100 + i)))
		dir := t.TempDir()
		db := mustOpenDB(t, dir, noAutoCkpt())
		shadow := NewDB()
		ops := genWorkload(r, 40)
		mid := len(ops) / 2

		var dumps []string // shadow state after each commit record
		base := 0          // records covered by the checkpoint
		for j, op := range ops {
			before := db.wal.LastLSN()
			applyOp(t, db, op)
			applyOp(t, shadow, op)
			if db.wal.LastLSN() > before {
				dumps = append(dumps, dbDump(shadow))
			}
			if j == mid {
				if err := db.Checkpoint(); err != nil {
					t.Fatal(err)
				}
				base = len(dumps)
			}
		}
		var total int64
		for _, seg := range segFiles(t, dir) {
			st, _ := os.Stat(seg)
			total += st.Size()
		}
		killAt(t, dir, r.Int63n(total+1))

		rec := mustOpenDB(t, dir, noAutoCkpt())
		k := base + rec.RecoveredCommits()
		want := ""
		if k > 0 {
			want = dumps[k-1]
		}
		if got := dbDump(rec); got != want {
			t.Fatalf("iter %d: post-checkpoint crash recovery diverges (k=%d)", i, k)
		}
		rec.Close()
	}
}

// TestDDLRecoveryAndTempTableCompaction: temp-table churn must not bloat
// the schema history, and live DDL (tables, indexes, triggers) must
// recover.
func TestDDLRecoveryAndTempTableCompaction(t *testing.T) {
	dir := t.TempDir()
	db := mustOpenDB(t, dir, noAutoCkpt())
	db.MustExec("CREATE TABLE base (id INTEGER, parentId INTEGER, v VARCHAR(32))")
	db.MustExec("CREATE TABLE child (id INTEGER, parentId INTEGER, v VARCHAR(32))")
	db.MustExec("CREATE TRIGGER cascade_c AFTER DELETE ON base FOR EACH ROW DELETE FROM child WHERE parentId = OLD.id")
	for i := 0; i < 20; i++ {
		db.MustExec(fmt.Sprintf("CREATE TEMP TABLE work%d (id INTEGER)", i))
		db.MustExec(fmt.Sprintf("CREATE INDEX wi%d ON work%d (id)", i, i))
		db.MustExec(fmt.Sprintf("DROP TABLE work%d", i))
	}
	db.MustExec("CREATE TRIGGER dropped AFTER DELETE ON base FOR EACH STATEMENT DELETE FROM child WHERE parentId NOT IN (SELECT id FROM base)")
	db.MustExec("DROP TRIGGER dropped")
	if len(db.ddlHist) != 3 {
		t.Fatalf("schema history holds %d entries, want 3 (temp churn must compact away)", len(db.ddlHist))
	}
	db.MustExec("INSERT INTO base VALUES (1, NULL, 'a')")
	db.MustExec("INSERT INTO child VALUES (10, 1, 'c')")
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	db.MustExec("INSERT INTO base VALUES (2, NULL, 'b')")
	want := dbDump(db)
	db.Close()

	rec := mustOpenDB(t, dir, noAutoCkpt())
	defer rec.Close()
	if got := dbDump(rec); got != want {
		t.Fatalf("DDL recovery dump differs:\n got:\n%s\nwant:\n%s", got, want)
	}
	// The recovered trigger must fire.
	rec.MustExec("DELETE FROM base WHERE id = 1")
	if n := rec.RowCount("child"); n != 0 {
		t.Fatalf("recovered trigger did not cascade: %d child rows left", n)
	}
	// And the dropped trigger must not have come back.
	if _, err := rec.Exec("DROP TRIGGER dropped"); err == nil {
		t.Fatal("trigger 'dropped' resurrected by recovery")
	}
}

// TestGroupCommitConcurrentReadersWriters is the PR 3 concurrency stress
// with durability on: writers commit under the group-commit window while
// readers stream under the shared lock. Run with -race; afterwards the log
// must recover to exactly the final committed state.
func TestGroupCommitConcurrentReadersWriters(t *testing.T) {
	dir := t.TempDir()
	db := mustOpenDB(t, dir, Options{Sync: SyncGroup, GroupWindow: 200 * time.Microsecond, CheckpointBytes: -1})
	db.MustExec("CREATE TABLE item (id INTEGER, parentId INTEGER, pos INTEGER)")
	for i := 0; i < 24; i++ {
		db.MustExec(fmt.Sprintf("INSERT INTO item VALUES (%d, %d, %d)", i+1, i%4, i/4))
	}

	const writers, readers, cycles = 2, 4, 30
	var wg sync.WaitGroup
	errs := make(chan error, writers+readers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for c := 0; c < cycles; c++ {
				if _, err := db.Exec(fmt.Sprintf("UPDATE item SET pos = pos + 1 WHERE parentId = %d", w)); err != nil {
					errs <- err
					return
				}
				tx := db.Begin()
				tx.Exec(fmt.Sprintf("UPDATE item SET pos = pos - 1 WHERE parentId = %d", w))
				if err := tx.Commit(); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	for rd := 0; rd < readers; rd++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for c := 0; c < cycles*2; c++ {
				rows, err := db.Query("SELECT id, parentId, pos FROM item ORDER BY parentId, pos")
				if err != nil {
					errs <- err
					return
				}
				if len(rows.Data) != 24 {
					errs <- fmt.Errorf("reader saw %d rows", len(rows.Data))
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	want := dbDump(db)
	db.Close()

	rec := mustOpenDB(t, dir, noAutoCkpt())
	defer rec.Close()
	if got := dbDump(rec); got != want {
		t.Fatalf("group-commit log does not recover to final state")
	}
}

// TestAutoCheckpoint: crossing the byte threshold must checkpoint and
// truncate the log without losing state.
func TestAutoCheckpoint(t *testing.T) {
	dir := t.TempDir()
	db := mustOpenDB(t, dir, Options{Sync: SyncOff, SegmentSize: 256, CheckpointBytes: 2048})
	db.MustExec("CREATE TABLE item (id INTEGER, name VARCHAR(64))")
	for i := 0; i < 200; i++ {
		db.MustExec(fmt.Sprintf("INSERT INTO item VALUES (%d, 'padding padding padding %d')", i+1, i))
	}
	want := dbDump(db)
	// Close joins any in-flight background checkpoint; at least one must
	// have fired on the way here.
	if err := db.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if db.wal.CheckpointLSN() == 0 {
		t.Fatal("auto-checkpoint never fired")
	}
	rec := mustOpenDB(t, dir, noAutoCkpt())
	defer rec.Close()
	if rec.RecoveredCommits() > 201 {
		t.Fatalf("replayed %d commits; checkpoint should have truncated", rec.RecoveredCommits())
	}
	if got := dbDump(rec); got != want {
		t.Fatalf("auto-checkpointed state differs after recovery")
	}
}

func TestSnapshotCodecRoundTrip(t *testing.T) {
	db := NewDB()
	db.MustExec("CREATE TABLE item (id INTEGER, parentId INTEGER, name VARCHAR(64))")
	db.MustExec("CREATE TABLE empty_t (id INTEGER)")
	db.MustExec("CREATE ORDERED INDEX oi ON item (parentId, id)")
	for i := 0; i < 12; i++ {
		db.MustExec(fmt.Sprintf("INSERT INTO item VALUES (%d, %d, 'v%d')", i+1, i%3, i))
	}
	db.MustExec("DELETE FROM item WHERE id = 5") // tombstone hole
	db.MustExec("UPDATE item SET name = NULL WHERE id = 7")
	db.MustExec("DELETE FROM item WHERE id = 12") // trailing tombstone

	snap := db.Snapshot()
	enc, err := EncodeSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeSnapshot(enc)
	if err != nil {
		t.Fatal(err)
	}
	// Deterministic: re-encoding the decoded snapshot is byte-identical.
	enc2, err := EncodeSnapshot(dec)
	if err != nil {
		t.Fatal(err)
	}
	if string(enc) != string(enc2) {
		t.Fatal("snapshot encoding is not deterministic across a round-trip")
	}
	// Restoring the decoded snapshot reproduces the full observable state
	// (rows, tombstone pattern, hash and ordered indexes).
	want := dbDump(db)
	db.MustExec("DELETE FROM item WHERE parentId = 1")
	db.MustExec("INSERT INTO item VALUES (99, 0, 'later')")
	db.Restore(dec)
	if got := dbDump(db); got != want {
		t.Fatalf("decoded snapshot restore differs:\n got:\n%s\nwant:\n%s", got, want)
	}
	// Corrupt inputs error instead of panicking.
	for cut := 0; cut < len(enc); cut += 11 {
		if _, err := DecodeSnapshot(enc[:cut]); err == nil && cut < len(enc) {
			t.Fatalf("truncated snapshot at %d decoded without error", cut)
		}
	}
}

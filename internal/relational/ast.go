package relational

// Stmt is a parsed SQL statement.
type Stmt interface{ isStmt() }

// CreateTableStmt is CREATE TABLE name (col TYPE, …).
type CreateTableStmt struct {
	Name string
	Cols []Column
	// Temp marks CREATE TEMP TABLE work areas (table-based insert, §6.2.2).
	Temp bool
}

func (*CreateTableStmt) isStmt() {}

// DropTableStmt is DROP TABLE name.
type DropTableStmt struct {
	Name string
	// IfExists suppresses the missing-table error.
	IfExists bool
}

func (*DropTableStmt) isStmt() {}

// CreateIndexStmt is CREATE [ORDERED] INDEX name ON table (col, …). A
// single-column plain index is a hash index; ORDERED (or a multi-column key,
// which only an ordered structure can serve) builds a B+tree index.
type CreateIndexStmt struct {
	Name    string
	Table   string
	Columns []string
	Ordered bool
}

func (*CreateIndexStmt) isStmt() {}

// CreateTriggerStmt is
//
//	CREATE TRIGGER name AFTER DELETE ON table
//	FOR EACH {ROW | STATEMENT} body
//
// where body is a single DELETE or UPDATE statement. Row triggers may
// reference the deleted row as OLD.col.
type CreateTriggerStmt struct {
	Name   string
	Table  string
	PerRow bool
	Body   Stmt
}

func (*CreateTriggerStmt) isStmt() {}

// DropTriggerStmt is DROP TRIGGER name.
type DropTriggerStmt struct{ Name string }

func (*DropTriggerStmt) isStmt() {}

// BeginStmt is BEGIN [TRANSACTION | WORK]: it opens an explicit
// transaction. Through DB.Exec it starts a SQL-level transaction that
// subsequent statements join until COMMIT/ROLLBACK (txn.go).
type BeginStmt struct{}

func (*BeginStmt) isStmt() {}

// CommitStmt is COMMIT [TRANSACTION | WORK].
type CommitStmt struct{}

func (*CommitStmt) isStmt() {}

// RollbackStmt is ROLLBACK [TRANSACTION | WORK].
type RollbackStmt struct{}

func (*RollbackStmt) isStmt() {}

// InsertStmt is INSERT INTO table [(cols)] {VALUES (…), … | select}.
type InsertStmt struct {
	Table  string
	Cols   []string
	Rows   [][]Expr
	Select *SelectStmt
}

func (*InsertStmt) isStmt() {}

// DeleteStmt is DELETE FROM table [WHERE expr].
type DeleteStmt struct {
	Table string
	Where Expr

	plan *levelPlan // compiled access path, set on first execution
}

func (*DeleteStmt) isStmt() {}

// UpdateStmt is UPDATE table SET col = expr, … [WHERE expr].
type UpdateStmt struct {
	Table string
	Set   []SetClause
	Where Expr

	plan *levelPlan // compiled access path, set on first execution
}

func (*UpdateStmt) isStmt() {}

// SetClause is one col = expr assignment.
type SetClause struct {
	Col string
	Val Expr
}

// SelectStmt is [WITH cte, …] body [ORDER BY key, …].
type SelectStmt struct {
	With    []CTE
	Body    []*SimpleSelect // UNION ALL branches, in order
	OrderBy []OrderKey

	// wants caches the per-CTE desired-order translation (order.go) for
	// the statement's own ORDER BY; schema changes invalidate it like the
	// compiled plans. Shape-cached statements re-execute thousands of
	// times, so the propagation walk runs once, not per query.
	wants      map[string][]OrderKey
	wantsVer   int64
	wantsValid bool
}

func (*SelectStmt) isStmt() {}

// CTE is one WITH member: name(cols) AS (select).
type CTE struct {
	Name   string
	Cols   []string
	Select *SelectStmt
}

// OrderKey is one ORDER BY key. Columns are resolved against the output
// schema of the select body.
type OrderKey struct {
	Expr Expr
	Desc bool
}

// SimpleSelect is SELECT [DISTINCT] exprs FROM t [a], … [WHERE expr].
type SimpleSelect struct {
	Distinct bool
	Star     bool
	Exprs    []SelectExpr
	From     []FromItem
	Where    Expr

	plan *simplePlan // compiled plan, set on first execution
}

// SelectExpr is one output expression with an optional alias.
type SelectExpr struct {
	Expr  Expr
	Alias string
}

// FromItem is one FROM member: a base table or CTE name with an optional
// alias.
type FromItem struct {
	Table string
	Alias string
}

// Name returns the binding name of the item (alias if present).
func (f FromItem) Name() string {
	if f.Alias != "" {
		return f.Alias
	}
	return f.Table
}

// Expr is a SQL expression node.
type Expr interface{ isExpr() }

// ColumnRef references a column, optionally qualified (t.c). The qualifier
// "OLD" refers to the deleted row inside a per-row trigger body.
type ColumnRef struct {
	Table string
	Name  string
}

func (*ColumnRef) isExpr() {}

// Literal is a constant: int64, string, or nil for NULL.
type Literal struct{ Value Value }

func (*Literal) isExpr() {}

// Binary applies an operator: comparison (=, !=, <>, <, <=, >, >=), boolean
// (AND, OR), or arithmetic (+, -, *, /).
type Binary struct {
	Op   string
	L, R Expr
}

func (*Binary) isExpr() {}

// Unary is NOT expr or -expr.
type Unary struct {
	Op string
	X  Expr
}

func (*Unary) isExpr() {}

// IsNull is expr IS [NOT] NULL.
type IsNull struct {
	X      Expr
	Negate bool
}

func (*IsNull) isExpr() {}

// InExpr is expr [NOT] IN (subquery) or expr [NOT] IN (v1, v2, …).
type InExpr struct {
	X      Expr
	Select *SelectStmt
	List   []Expr
	Negate bool
}

func (*InExpr) isExpr() {}

// FuncCall is an aggregate call: MIN(x), MAX(x), COUNT(*), COUNT(x).
type FuncCall struct {
	Name string
	Arg  Expr // nil for COUNT(*)
	Star bool
}

func (*FuncCall) isExpr() {}

// Param is a positional placeholder (`?`) bound to a value at execution
// time. The prepared-statement layer replaces literals with params so one
// parsed AST and one plan serve every statement of the same shape.
type Param struct{ Index int }

func (*Param) isExpr() {}

package relational

import (
	"fmt"
	"sort"
	"strings"
	"testing"
)

// tableDump is a canonical rendering of a table's complete observable state:
// the rows array (length and tombstone pattern included), the live count,
// every hash index's contents (rowids sorted per value — bucket order is
// unspecified), and every ordered index's live entries in key order. Two
// equal dumps mean the table is indistinguishable from the compared state.
func tableDump(t *Table) string {
	var b strings.Builder
	fmt.Fprintf(&b, "rows(len=%d live=%d):\n", len(t.rows), t.live)
	for rid := range t.rows {
		// curRow faults evicted pages back in under the paged backend; in
		// memory mode it is the plain slot read.
		row := t.curRow(rid)
		if row == nil {
			fmt.Fprintf(&b, "  %d: <dead>\n", rid)
			continue
		}
		fmt.Fprintf(&b, "  %d:", rid)
		for _, v := range row {
			fmt.Fprintf(&b, " %s", FormatValue(v))
		}
		b.WriteByte('\n')
	}
	var hnames []string
	for name := range t.index {
		hnames = append(hnames, name)
	}
	sort.Strings(hnames)
	for _, name := range hnames {
		idx := t.index[name]
		fmt.Fprintf(&b, "hash %s:\n", name)
		var keys []string
		byKey := make(map[string][]int)
		for v, rids := range idx.entries {
			k := FormatValue(v)
			keys = append(keys, k)
			cp := append([]int(nil), rids...)
			sort.Ints(cp)
			byKey[k] = cp
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&b, "  %s -> %v\n", k, byKey[k])
		}
	}
	for _, oidx := range t.orderedList {
		fmt.Fprintf(&b, "ordered %s:\n", oidx.name)
		for _, k := range oidx.tree.collectLive(t, nil) {
			fmt.Fprintf(&b, "  %v/%v rid=%d\n", FormatValue(k.vals[0]), FormatValue(k.vals[1]), k.rid)
		}
	}
	return b.String()
}

func dbDump(db *DB) string {
	var b strings.Builder
	for _, name := range db.TableNames() {
		fmt.Fprintf(&b, "== %s ==\n%s", name, tableDump(db.Table(name)))
	}
	return b.String()
}

func txnTestDB(t *testing.T) *DB {
	t.Helper()
	db := NewDB()
	db.MustExec("CREATE TABLE item (id INTEGER, parentId INTEGER, pos INTEGER, name VARCHAR(64))")
	db.MustExec("CREATE ORDERED INDEX ip ON item (parentId, pos)")
	for i := 0; i < 20; i++ {
		db.MustExec(fmt.Sprintf("INSERT INTO item VALUES (%d, %d, %d, 'n%d')", i+1, i%4, i/4, i+1))
	}
	return db
}

// TestFailedInsertRollsBackStatement is the partial-mutation regression
// test: a multi-row INSERT whose nth row violates the unique id column must
// leave the table — rows, live count, hash and ordered indexes — identical
// to its pre-statement state, not with rows 1..n-1 applied.
func TestFailedInsertRollsBackStatement(t *testing.T) {
	db := txnTestDB(t)
	before := dbDump(db)
	// Rows 21 and 22 are fine; 5 collides with an existing id.
	_, err := db.Exec("INSERT INTO item VALUES (21, 0, 90, 'a'), (22, 0, 91, 'b'), (5, 0, 92, 'c')")
	if err == nil {
		t.Fatalf("expected unique violation")
	}
	if got := dbDump(db); got != before {
		t.Errorf("table state changed across failed INSERT:\n--- before ---\n%s--- after ---\n%s", before, got)
	}
	// Rowids must also be unchanged for future inserts: the next insert
	// reuses the rowid the rolled-back statement briefly occupied.
	if n := db.MustExec("INSERT INTO item VALUES (21, 0, 90, 'a')"); n != 1 {
		t.Fatalf("insert after rollback: %d rows", n)
	}
	rows, err := db.Query("SELECT id FROM item WHERE id = 21")
	if err != nil || len(rows.Data) != 1 {
		t.Fatalf("row not found after re-insert: %v", err)
	}
}

// TestFailedUpdateRollsBackStatement: an UPDATE hitting a unique violation
// on a later row must undo the rows it already moved, including their hash
// and B+tree index entries.
func TestFailedUpdateRollsBackStatement(t *testing.T) {
	db := txnTestDB(t)
	before := dbDump(db)
	// Shifting every id by 4 collides once the shifted range overlaps the
	// unshifted tail (1+4=5 exists), after some rows have already moved.
	if _, err := db.Exec("UPDATE item SET id = id + 4"); err == nil {
		t.Fatalf("expected unique violation")
	}
	if got := dbDump(db); got != before {
		t.Errorf("table state changed across failed UPDATE:\n--- before ---\n%s--- after ---\n%s", before, got)
	}
	// The ordered index must still serve consistent range scans.
	rows, err := db.Query("SELECT id, pos FROM item WHERE parentId = 1 AND pos >= 1 ORDER BY pos")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Data) != 4 {
		t.Fatalf("range scan after rollback: got %d rows, want 4", len(rows.Data))
	}
}

// TestFailedDeleteTriggerRollsBackStatement: a DELETE whose trigger body
// fails must also undo the deletions that already happened.
func TestFailedDeleteTriggerRollsBackStatement(t *testing.T) {
	db := NewDB()
	db.MustExec("CREATE TABLE parent (id INTEGER, name VARCHAR(16))")
	db.MustExec("CREATE TABLE child (id INTEGER, parentId INTEGER)")
	db.MustExec("INSERT INTO parent VALUES (1, 'a'), (2, 'b')")
	db.MustExec("INSERT INTO child VALUES (10, 1), (11, 2)")
	// The trigger body references a column that does not exist, so it
	// errors at execution time, after the parent rows are gone.
	db.MustExec("CREATE TRIGGER boom AFTER DELETE ON parent FOR EACH ROW DELETE FROM child WHERE nosuch = OLD.id")
	before := dbDump(db)
	if _, err := db.Exec("DELETE FROM parent"); err == nil {
		t.Fatalf("expected trigger failure")
	}
	if got := dbDump(db); got != before {
		t.Errorf("state changed across failed DELETE:\n--- before ---\n%s--- after ---\n%s", before, got)
	}
}

// TestExplicitTxnCommitAndRollback covers the SQL-level BEGIN/COMMIT/
// ROLLBACK statements through DB.Exec.
func TestExplicitTxnCommitAndRollback(t *testing.T) {
	db := txnTestDB(t)
	before := dbDump(db)

	// Rolled-back transaction: inserts, deletes, and updates all revert.
	if _, err := db.Exec("BEGIN"); err != nil {
		t.Fatal(err)
	}
	db.MustExec("INSERT INTO item VALUES (100, 0, 50, 'tmp')")
	db.MustExec("DELETE FROM item WHERE id = 3")
	db.MustExec("UPDATE item SET pos = pos + 10 WHERE parentId = 2")
	if _, err := db.Exec("ROLLBACK"); err != nil {
		t.Fatal(err)
	}
	if got := dbDump(db); got != before {
		t.Errorf("ROLLBACK did not restore state:\n--- before ---\n%s--- after ---\n%s", before, got)
	}

	// Committed transaction: effects persist.
	if _, err := db.Exec("BEGIN TRANSACTION"); err != nil {
		t.Fatal(err)
	}
	db.MustExec("INSERT INTO item VALUES (100, 0, 50, 'kept')")
	if _, err := db.Exec("COMMIT"); err != nil {
		t.Fatal(err)
	}
	rows, err := db.Query("SELECT name FROM item WHERE id = 100")
	if err != nil || len(rows.Data) != 1 || rows.Data[0][0] != Text("kept") {
		t.Fatalf("committed insert missing: %v %v", rows, err)
	}

	// COMMIT with no open transaction errors.
	if _, err := db.Exec("COMMIT"); err == nil {
		t.Fatalf("expected error for COMMIT without BEGIN")
	}
}

// TestTxHandle exercises the Begin() handle API: statement atomicity inside
// the transaction, reads observing uncommitted writes, and rollback.
func TestTxHandle(t *testing.T) {
	db := txnTestDB(t)
	before := dbDump(db)

	tx := db.Begin()
	if _, err := tx.Exec("INSERT INTO item VALUES (50, 9, 0, 'x')"); err != nil {
		t.Fatal(err)
	}
	// The transaction sees its own write.
	rows, err := tx.Query("SELECT id FROM item WHERE id = 50")
	if err != nil || len(rows.Data) != 1 {
		t.Fatalf("txn does not see own write: %v %v", rows, err)
	}
	// A failing statement rolls back itself, not the transaction.
	if _, err := tx.Exec("INSERT INTO item VALUES (51, 9, 1, 'y'), (50, 9, 2, 'dup')"); err == nil {
		t.Fatalf("expected unique violation")
	}
	rows, err = tx.Query("SELECT id FROM item WHERE id IN (50, 51)")
	if err != nil || len(rows.Data) != 1 {
		t.Fatalf("statement rollback wrong: %v %v", rows, err)
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	if got := dbDump(db); got != before {
		t.Errorf("handle rollback did not restore state:\n--- before ---\n%s--- after ---\n%s", before, got)
	}
	// Operations on a finished transaction fail.
	if _, err := tx.Exec("INSERT INTO item VALUES (60, 0, 0, 'z')"); err == nil {
		t.Fatalf("expected error on finished txn")
	}
	if err := tx.Commit(); err == nil {
		t.Fatalf("expected error on double finish")
	}
}

// TestTxnInsertDeleteInterleaved: inserting and then deleting (or updating)
// the same row inside one rolled-back transaction must still restore the
// exact pre-transaction rowid sequence.
func TestTxnInsertDeleteInterleaved(t *testing.T) {
	db := txnTestDB(t)
	before := dbDump(db)
	tx := db.Begin()
	for _, sql := range []string{
		"INSERT INTO item VALUES (70, 5, 0, 'p')",
		"INSERT INTO item VALUES (71, 5, 1, 'q')",
		"UPDATE item SET name = 'p2', pos = 9 WHERE id = 70",
		"DELETE FROM item WHERE id = 70",
		"DELETE FROM item WHERE id = 2",
		"INSERT INTO item VALUES (72, 5, 2, 'r')",
	} {
		if _, err := tx.Exec(sql); err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	if got := dbDump(db); got != before {
		t.Errorf("interleaved rollback wrong:\n--- before ---\n%s--- after ---\n%s", before, got)
	}
}

// TestSnapshotRestoreAfterTxnHistory: Snapshot/Restore round-trips across a
// history of committed and aborted transactions.
func TestSnapshotRestoreAfterTxnHistory(t *testing.T) {
	db := txnTestDB(t)
	snap := db.Snapshot()
	want := dbDump(db)

	tx := db.Begin()
	tx.Exec("UPDATE item SET pos = pos + 100")
	tx.Rollback()
	db.MustExec("DELETE FROM item WHERE id = 7")
	tx = db.Begin()
	tx.Exec("INSERT INTO item VALUES (90, 1, 9, 'w')")
	tx.Commit()

	db.Restore(snap)
	if got := dbDump(db); got != want {
		t.Errorf("Restore after txn history:\n--- want ---\n%s--- got ---\n%s", want, got)
	}
	// And the restored state still accepts transactions.
	tx = db.Begin()
	if _, err := tx.Exec("UPDATE item SET name = 'zz' WHERE id = 1"); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

// TestCommitCompactsOrderedIndexes: lazy B+tree tombstones are reclaimed at
// commit once they outnumber live rows (compaction moved off the read path).
func TestCommitCompactsOrderedIndexes(t *testing.T) {
	db := NewDB()
	db.MustExec("CREATE TABLE t (id INTEGER, k INTEGER)")
	db.MustExec("CREATE ORDERED INDEX tk ON t (k, id)")
	for i := 0; i < 100; i++ {
		db.MustExec(fmt.Sprintf("INSERT INTO t VALUES (%d, %d)", i, i%10))
	}
	db.MustExec("DELETE FROM t WHERE id >= 40") // 60 stale > 40 live
	tab := db.Table("t")
	oidx := tab.orderedList[0]
	if oidx.stale != 0 || oidx.tree.size != 40 {
		t.Fatalf("commit did not compact: stale=%d size=%d", oidx.stale, oidx.tree.size)
	}
	rows, err := db.Query("SELECT id FROM t WHERE k = 3 ORDER BY id")
	if err != nil || len(rows.Data) != 4 {
		t.Fatalf("post-compaction scan: %v %v", rows, err)
	}
}

// TestDDLRollback: schema changes made inside a transaction are reversed on
// rollback — a dropped table comes back with its rows and indexes, and
// created tables, indexes, and triggers disappear again.
func TestDDLRollback(t *testing.T) {
	db := txnTestDB(t)
	db.MustExec("CREATE TABLE keep (id INTEGER)")
	db.MustExec("CREATE TRIGGER tr AFTER DELETE ON item FOR EACH ROW DELETE FROM keep WHERE id = OLD.id")
	before := dbDump(db)

	tx := db.Begin()
	for _, sql := range []string{
		"DROP TABLE keep",
		"CREATE TABLE tmp (id INTEGER, v VARCHAR(8))",
		"INSERT INTO tmp VALUES (1, 'x')",
		"CREATE ORDERED INDEX iv ON item (pos, id)",
		"DROP TRIGGER tr",
		"CREATE TRIGGER tr2 AFTER DELETE ON item FOR EACH STATEMENT DELETE FROM item WHERE id = 0",
	} {
		if _, err := tx.Exec(sql); err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	if got := dbDump(db); got != before {
		t.Errorf("DDL rollback wrong:\n--- before ---\n%s--- after ---\n%s", before, got)
	}
	if db.Table("tmp") != nil {
		t.Errorf("created table survived rollback")
	}
	if got := db.Table("item").OrderedIndexes(); len(got) != 1 {
		t.Errorf("created index survived rollback: %v", got)
	}
	// The restored trigger still fires; tr2 must be gone (its firing would
	// error by deleting during iteration — just check the registry via a
	// working delete).
	db.MustExec("INSERT INTO keep VALUES (1)")
	db.MustExec("DELETE FROM item WHERE id = 1")
	if n := db.RowCount("keep"); n != 0 {
		t.Errorf("restored trigger did not fire: keep has %d rows", n)
	}
}

// TestSQLTxnQueriesJoin: SELECTs issued through the DB while a SQL-level
// transaction is open join it (seeing uncommitted writes) instead of
// deadlocking on the reader lock.
func TestSQLTxnQueriesJoin(t *testing.T) {
	db := txnTestDB(t)
	db.MustExec("BEGIN")
	db.MustExec("INSERT INTO item VALUES (200, 0, 99, 'ghost')")
	rows, err := db.Query("SELECT name FROM item WHERE id = 200")
	if err != nil || len(rows.Data) != 1 {
		t.Fatalf("query inside SQL txn: %v %v", rows, err)
	}
	p, err := db.Prepare("SELECT name FROM item WHERE id = ?")
	if err != nil {
		t.Fatal(err)
	}
	rows, err = p.Query(Int(int64(200)))
	if err != nil || len(rows.Data) != 1 {
		t.Fatalf("prepared query inside SQL txn: %v %v", rows, err)
	}
	db.MustExec("ROLLBACK")
	rows, err = db.Query("SELECT name FROM item WHERE id = 200")
	if err != nil || len(rows.Data) != 0 {
		t.Fatalf("after rollback: %v %v", rows, err)
	}
}

package relational

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// analyzeDB builds a parent/child pair with the three access flavours the
// consistency tests exercise: heap scan (no usable index), hash-index probe
// (parentId), and transient hash join (grp, unindexed).
func analyzeDB(t testing.TB) *DB {
	t.Helper()
	db := NewDB()
	db.MustExec(`CREATE TABLE par (id INTEGER, grp INTEGER, name VARCHAR(20))`)
	db.MustExec(`CREATE TABLE kid (id INTEGER, parentId INTEGER, grp INTEGER, pos INTEGER)`)
	db.MustExec(`CREATE INDEX k_pid ON kid (parentId)`)
	for p := 1; p <= 10; p++ {
		db.MustExec(fmt.Sprintf(`INSERT INTO par VALUES (%d, %d, 'p%d')`, p, p%3, p))
		for c := 0; c < 8; c++ {
			db.MustExec(fmt.Sprintf(`INSERT INTO kid VALUES (%d, %d, %d, %d)`, p*100+c, p, c%3, c))
		}
	}
	return db
}

var scannedRe = regexp.MustCompile(`scanned=(\d+)`)

// sumScanned totals the per-operator scanned= annotations of a rendered
// ANALYZE tree.
func sumScanned(t *testing.T, out string) int64 {
	t.Helper()
	var sum int64
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "Stats:") {
			continue // the footer repeats the delta; only operator lines count
		}
		for _, m := range scannedRe.FindAllStringSubmatch(line, -1) {
			n, err := strconv.ParseInt(m[1], 10, 64)
			if err != nil {
				t.Fatalf("bad scanned annotation %q: %v", m[0], err)
			}
			sum += n
		}
	}
	return sum
}

// TestAnalyzeScannedMatchesStats: on scan, probe, and join plans the
// per-operator scanned counts must sum to exactly the RowsScanned the
// statement moved — the acceptance invariant tying the per-operator actuals
// to the engine counters.
func TestAnalyzeScannedMatchesStats(t *testing.T) {
	db := analyzeDB(t)
	queries := []string{
		`SELECT id FROM kid WHERE pos >= 5`,                                   // heap scan
		`SELECT k.id FROM par p, kid k WHERE k.parentId = p.id`,               // hash-index probe
		`SELECT k.id FROM par p, kid k WHERE k.grp = p.grp`,                   // transient hash join (build + probe)
		`SELECT k.id FROM par p, kid k WHERE k.parentId = p.id ORDER BY k.id`, // probe + sort
		`SELECT COUNT(id) FROM kid`,                                           // aggregate over scan
		`SELECT id FROM kid WHERE pos = 0 UNION ALL SELECT id FROM par`,       // multi-body
	}
	for _, q := range queries {
		base := db.Stats()
		out, err := db.ExplainAnalyze(q)
		if err != nil {
			t.Fatalf("%q: %v", q, err)
		}
		delta := statsSub(db.Stats(), base)
		if got := sumScanned(t, out); got != delta.RowsScanned {
			t.Errorf("%q: operator scanned sum = %d, stats RowsScanned delta = %d\n%s",
				q, got, delta.RowsScanned, out)
		}
		if !strings.Contains(out, "(actual ") {
			t.Errorf("%q: no actuals annotated:\n%s", q, out)
		}
		if !strings.Contains(out, "Execution: rows=") {
			t.Errorf("%q: missing execution footer:\n%s", q, out)
		}
	}
}

// TestAnalyzeRowsMatchResult: the top operator's rows= must equal the
// statement's result cardinality.
func TestAnalyzeRowsMatchResult(t *testing.T) {
	db := analyzeDB(t)
	rows, err := db.Query(`SELECT id FROM kid WHERE pos >= 5`)
	if err != nil {
		t.Fatal(err)
	}
	out, err := db.ExplainAnalyze(`SELECT id FROM kid WHERE pos >= 5`)
	if err != nil {
		t.Fatal(err)
	}
	want := fmt.Sprintf("rows=%d", len(rows.Data))
	first := strings.SplitN(out, "\n", 2)[0]
	if !strings.Contains(first, want) {
		t.Errorf("top operator %q does not report %s", first, want)
	}
	if !strings.Contains(out, fmt.Sprintf("Execution: rows=%d", len(rows.Data))) {
		t.Errorf("footer does not report %s:\n%s", want, out)
	}
}

// TestAnalyzeSQLPath: EXPLAIN ANALYZE and the ANALYZE shorthand round-trip
// through Query as one-column plan results, and plain EXPLAIN still matches
// the Explain method.
func TestAnalyzeSQLPath(t *testing.T) {
	db := analyzeDB(t)
	for _, prefix := range []string{"EXPLAIN ANALYZE ", "explain analyze ", "ANALYZE ", "analyze "} {
		rows, err := db.Query(prefix + `SELECT id FROM kid WHERE pos >= 5`)
		if err != nil {
			t.Fatalf("%q: %v", prefix, err)
		}
		if len(rows.Cols) != 1 || rows.Cols[0] != "plan" {
			t.Fatalf("%q: cols = %v, want [plan]", prefix, rows.Cols)
		}
		var b strings.Builder
		for _, r := range rows.Data {
			s, _ := r[0].Text()
			b.WriteString(s)
			b.WriteByte('\n')
		}
		if !strings.Contains(b.String(), "(actual ") {
			t.Errorf("%q: result carries no actuals:\n%s", prefix, b.String())
		}
	}
	want, err := db.Explain(`SELECT id FROM kid WHERE pos >= 5`)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := db.Query(`EXPLAIN SELECT id FROM kid WHERE pos >= 5`)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, r := range rows.Data {
		s, _ := r[0].Text()
		got = append(got, s)
	}
	if strings.Join(got, "\n") != want {
		t.Errorf("EXPLAIN via Query = %q, Explain() = %q", strings.Join(got, "\n"), want)
	}
}

// TestAnalyzeDMLExecutes: ANALYZE of a DML statement runs it for real —
// rows actually change — and the match access line carries actuals.
func TestAnalyzeDMLExecutes(t *testing.T) {
	db := analyzeDB(t)
	out, err := db.ExplainAnalyze(`UPDATE kid SET pos = pos + 100 WHERE parentId = 3`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Update kid") || !strings.Contains(out, "(actual rows=8") {
		t.Errorf("unexpected ANALYZE UPDATE output:\n%s", out)
	}
	rows, err := db.Query(`SELECT COUNT(id) FROM kid WHERE pos >= 100`)
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := rows.Data[0][0].Int(); n != 8 {
		t.Errorf("ANALYZE UPDATE mutated %d rows, want 8", n)
	}
	out, err = db.ExplainAnalyze(`DELETE FROM kid WHERE pos >= 100`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Delete kid") || !strings.Contains(out, "rowsDeleted=8") {
		t.Errorf("unexpected ANALYZE DELETE output:\n%s", out)
	}
}

// TestAnalyzeCTETree: the annotated tree recurses into CTE blocks like
// EXPLAIN does, with each CTE's operators carrying their own actuals.
func TestAnalyzeCTETree(t *testing.T) {
	db := analyzeDB(t)
	out, err := db.ExplainAnalyze(
		`WITH a(id, grp) AS (SELECT id, grp FROM kid WHERE pos >= 4)
		 SELECT a.id FROM a, par p WHERE a.grp = p.grp ORDER BY a.id`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "CTE a") {
		t.Fatalf("no CTE block:\n%s", out)
	}
	cteAt := strings.Index(out, "CTE a")
	if !strings.Contains(out[cteAt:], "(actual ") {
		t.Errorf("CTE subtree carries no actuals:\n%s", out)
	}
}

// TestParallelAnalyzeExchange: under parallelism the annotated plan shows
// the exchange with its worker/partition actuals, and worker-level scan
// counts still sum to the stats delta.
func TestParallelAnalyzeExchange(t *testing.T) {
	db := NewDB()
	db.MustExec(`CREATE TABLE w (id INTEGER, v INTEGER)`)
	// 256 rows: past the parMinRows gate with enough chunk headroom
	// (parChunkRows=32) for the full k=4 fan-out.
	for i := 0; i < 256; i++ {
		db.MustExec(fmt.Sprintf(`INSERT INTO w VALUES (%d, %d)`, i, i%7))
	}
	db.SetParallelism(4)
	defer db.SetParallelism(1)
	base := db.Stats()
	out, err := db.ExplainAnalyze(`SELECT id FROM w WHERE v >= 0`)
	if err != nil {
		t.Fatal(err)
	}
	delta := statsSub(db.Stats(), base)
	if delta.ParallelWorkers == 0 {
		t.Fatalf("parallel executor did not engage:\n%s", out)
	}
	if !strings.Contains(out, "Exchange (workers=4, ordered)") ||
		!strings.Contains(out, "workers=4 parts=4") {
		t.Errorf("exchange actuals missing:\n%s", out)
	}
	if got := sumScanned(t, out); got != delta.RowsScanned {
		t.Errorf("parallel scanned sum = %d, stats delta = %d\n%s", got, delta.RowsScanned, out)
	}
}

// TestAnalyzeRejectsNonStatements: transaction control and DDL are not
// analyzable.
func TestAnalyzeRejectsNonStatements(t *testing.T) {
	db := analyzeDB(t)
	for _, sql := range []string{"BEGIN", "CREATE TABLE x (id INTEGER)"} {
		if _, err := db.ExplainAnalyze(sql); err == nil {
			t.Errorf("ExplainAnalyze(%q) succeeded, want error", sql)
		}
	}
}

// TestIterCloseFlushIdempotent: a pipeline closed twice must flush its
// batched counters exactly once (satellite a) — and an abandoned pipeline
// (opened, partially drained, then closed) must still flush what it
// counted.
func TestIterCloseFlushIdempotent(t *testing.T) {
	db := analyzeDB(t)
	stmt, err := ParseSQL(`SELECT id FROM kid WHERE pos >= 0`)
	if err != nil {
		t.Fatal(err)
	}
	sel := stmt.(*SelectStmt)

	// Full drain, double Close: the 80-row scan counts once, not twice.
	base := db.Stats()
	it, _, err := db.buildSelectIter(sel, newEnv(nil), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := it.Open(); err != nil {
		t.Fatal(err)
	}
	for {
		_, ok, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
	}
	it.Close()
	it.Close()
	if d := statsSub(db.Stats(), base); d.RowsScanned != 80 || d.FullScans != 1 {
		t.Errorf("double Close: RowsScanned=%d FullScans=%d, want 80/1", d.RowsScanned, d.FullScans)
	}

	// Abandoned mid-stream: the partial count still flushes on Close.
	base = db.Stats()
	it, _, err = db.buildSelectIter(sel, newEnv(nil), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := it.Open(); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := it.Next(); err != nil || !ok {
		t.Fatalf("first row: ok=%v err=%v", ok, err)
	}
	it.Close()
	it.Close()
	if d := statsSub(db.Stats(), base); d.RowsScanned == 0 {
		t.Error("abandoned pipeline flushed no scan count on Close")
	}
}

// TestParallelStatsCountersExact pins the parallel bookkeeping counters to
// their exact values for a 256-row partitioned scan (satellite c): K
// workers, K partitions, and the batch count the parBatchRows=128 batching
// implies — k=2 cuts 128-row partitions (one full batch each), k=4 cuts
// 64-row partitions (one remainder batch each).
func TestParallelStatsCountersExact(t *testing.T) {
	db := NewDB()
	db.MustExec(`CREATE TABLE w (id INTEGER, v INTEGER)`)
	for i := 0; i < 256; i++ {
		db.MustExec(fmt.Sprintf(`INSERT INTO w VALUES (%d, %d)`, i, i%7))
	}
	for _, k := range []int{2, 4} {
		db.SetParallelism(k)
		base := db.Stats()
		rows, err := db.Query(`SELECT id FROM w WHERE v >= 0`)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows.Data) != 256 {
			t.Fatalf("k=%d: %d rows, want 256", k, len(rows.Data))
		}
		d := statsSub(db.Stats(), base)
		wantBatches := int64(k) // 256/2=128 → 1 full batch/worker; 256/4=64 → 1 tail batch/worker
		if d.ParallelWorkers != int64(k) || d.PartitionsScanned != int64(k) || d.ExchangeBatches != wantBatches {
			t.Errorf("k=%d: workers=%d partitions=%d batches=%d, want %d/%d/%d",
				k, d.ParallelWorkers, d.PartitionsScanned, d.ExchangeBatches, k, k, wantBatches)
		}

		// Parallel aggregation: workers and partitions count, no exchange
		// traffic at all.
		base = db.Stats()
		if _, err := db.Query(`SELECT COUNT(id) FROM w`); err != nil {
			t.Fatal(err)
		}
		d = statsSub(db.Stats(), base)
		if d.ParallelWorkers != int64(k) || d.PartitionsScanned != int64(k) || d.ExchangeBatches != 0 {
			t.Errorf("k=%d agg: workers=%d partitions=%d batches=%d, want %d/%d/0",
				k, d.ParallelWorkers, d.PartitionsScanned, d.ExchangeBatches, k, k)
		}
	}
	db.SetParallelism(1)
}

package relational

import (
	"fmt"
	"strings"
)

// Logical planning for SELECT bodies and DML row matching. A SimpleSelect is
// compiled into a simplePlan: an execution order over its FROM sources, the
// WHERE conjuncts gated at each join level, and the equality candidates each
// level can use as an access path (index probe or hash join). Ordering is
// greedy and reads selectivity from syntax alone — an equality against a
// constant seeds the pipeline, equality join edges onto indexed key columns
// extend it — in the spirit of pattern-selectivity join ordering; no
// cardinality statistics are consulted, so plans are stable and cacheable.

// probeCand is an equality conjunct `col = expr` usable as an access path
// for one source: col belongs to the source and expr references only
// sources bound at earlier levels (or nothing at all).
type probeCand struct {
	col  string
	expr Expr
	// cond is the conjunct this candidate was derived from. When a
	// hash-keyed access path (hash index probe, transient hash join) is
	// chosen for the candidate, the probe enforces the equality exactly —
	// symKey equality coincides with SQL equality, and NULLs are excluded
	// on both the stored and probe sides — so the executor skips
	// re-evaluating this conjunct per row.
	cond Expr
	// correlated reports whether expr references earlier sources (a join
	// edge) rather than only constants/params/OLD.
	correlated bool
}

// rangeCand is an inequality conjunct `col OP expr` (OP ∈ <, <=, >, >=,
// with BETWEEN already desugared by the parser) usable as a B+tree range
// bound: col belongs to the source and expr references only earlier-bound
// sources. op is normalized so col is always on the left.
type rangeCand struct {
	col  string
	op   string
	expr Expr
}

// flipOp mirrors a comparison across its operands (`5 <= pos` → `pos >= 5`).
func flipOp(op string) string {
	switch op {
	case "<":
		return ">"
	case "<=":
		return ">="
	case ">":
		return "<"
	case ">=":
		return "<="
	}
	return op
}

// levelPlan is one pipeline stage of a join: which FROM slot it binds, the
// conjuncts first checkable here, and its access-path candidates.
// schemaVer is used only when a levelPlan stands alone as a DML access
// path (matchPlanFor); inside a simplePlan the enclosing plan carries it.
type levelPlan struct {
	slot      int // index into the original FROM list (and the binding)
	conds     []Expr
	cands     []probeCand
	ranges    []rangeCand
	schemaVer int64
}

// simplePlan is the compiled form of one SimpleSelect body. schemaVer
// records the DB schema version it was planned under: name resolution and
// conjunct gating bake in column membership, so DDL invalidates the plan.
type simplePlan struct {
	levels    []levelPlan
	schemaVer int64

	// access caches the physical access-path choice for executions with no
	// order interest, valid while the source tables' summed indexEpoch is
	// unchanged (accessValid gates first use). Bodies over CTE sources are
	// not cached — their result sets differ per execution.
	access      []accessPlan
	accessEpoch int64
	accessValid bool
}

// planFor returns the plan compiled into a SimpleSelect, building it on
// first use and rebuilding it when DDL has changed the schema since. The
// plan lives on the AST node, so it shares the lifetime of whatever holds
// the statement — the shape cache, a Prepared, a trigger body — and
// disappears with it. The cache slot is guarded by planMu: shape-cached
// ASTs are shared between concurrent shared-lock readers. Plans record
// only column names and expression references, so they stay valid across
// data changes; access-path choice is re-validated against live indexes at
// execution time.
func (db *DB) planFor(s *SimpleSelect, srcs []*source) *simplePlan {
	db.planMu.Lock()
	defer db.planMu.Unlock()
	if s.plan == nil || s.plan.schemaVer != db.schemaVer {
		p := planSimple(s, srcs)
		p.schemaVer = db.schemaVer
		s.plan = p
	}
	return s.plan
}

// planSimple compiles a SimpleSelect body against resolved sources.
func planSimple(s *SimpleSelect, srcs []*source) *simplePlan {
	var conjs []Expr
	if s.Where != nil {
		conjs = splitAnd(s.Where)
	}
	refs := make([][]int, len(conjs))
	for i, c := range conjs {
		refs[i] = refSlots(c, srcs)
	}
	order := orderSources(srcs, conjs, refs)

	// posOf[slot] = level at which the slot is bound.
	posOf := make([]int, len(srcs))
	for lvl, slot := range order {
		posOf[slot] = lvl
	}

	plan := &simplePlan{levels: make([]levelPlan, len(order))}
	for lvl, slot := range order {
		plan.levels[lvl] = levelPlan{slot: slot}
	}

	// Gate each conjunct at the first level where all its references are
	// bound.
	for i, c := range conjs {
		lvl := 0
		for _, slot := range refs[i] {
			if posOf[slot] > lvl {
				lvl = posOf[slot]
			}
		}
		if len(plan.levels) == 0 {
			continue // no FROM: WHERE is ignored, matching prior semantics
		}
		plan.levels[lvl].conds = append(plan.levels[lvl].conds, c)
	}

	// Collect access-path candidates per level from its gated conjuncts.
	for lvl := range plan.levels {
		slot := plan.levels[lvl].slot
		for _, c := range plan.levels[lvl].conds {
			if col, expr, ok := probeCandidate(c, slot, srcs, posOf, lvl); ok {
				plan.levels[lvl].cands = append(plan.levels[lvl].cands, probeCand{
					col:        col,
					expr:       expr,
					cond:       c,
					correlated: len(refSlots(expr, srcs)) > 0,
				})
				continue
			}
			if rc, ok := rangeCandidate(c, slot, srcs, posOf, lvl); ok {
				plan.levels[lvl].ranges = append(plan.levels[lvl].ranges, rc)
			}
		}
	}
	return plan
}

// matchPlanFor returns the DML access-path plan compiled into a
// DELETE/UPDATE statement node, building it on first use and rebuilding it
// after DDL — trigger bodies fire the same AST thousands of times, so
// per-firing re-planning is avoided. planMu guards the slot like the other
// AST-resident caches (DML runs under the exclusive lock, but EXPLAIN
// shares this path).
func (db *DB) matchPlanFor(slot **levelPlan, name string, t *Table, where Expr) levelPlan {
	db.planMu.Lock()
	defer db.planMu.Unlock()
	if *slot == nil || (*slot).schemaVer != db.schemaVer {
		p := planMatch(name, t, where)
		p.schemaVer = db.schemaVer
		*slot = &p
	}
	return **slot
}

// bodyWorkers decides whether a compiled body's pipeline fans out, and to
// how many workers — the parallel-eligibility annotation of a plan. Only
// the driving level partitions, and only for access kinds whose
// enumeration is computed once per query (partitionableKind); everything
// downstream of it — inner probes, hash joins, filters, projection —
// replicates per worker unchanged. EXPLAIN consults the same decision, so
// the rendered plan matches what runs; a body driven by a CTE source sizes
// against the materialized row count at runtime and against the stub's
// predicted cardinality (Rows.est) at EXPLAIN time.
func (db *DB) bodyWorkers(bc *bodyCompiled) int {
	if db.par() <= 1 || bc.plan == nil || len(bc.plan.levels) == 0 || len(bc.access) == 0 {
		return 1
	}
	if !partitionableKind(bc.access[0].kind) {
		return 1
	}
	src := bc.srcs[bc.plan.levels[0].slot]
	n := 0
	if src.table != nil {
		n = src.table.live
	} else if src.rows != nil {
		n = len(src.rows.Data)
		if n == 0 {
			// EXPLAIN stub: no materialized rows, size the fan-out
			// against the predicted cardinality instead.
			n = src.rows.est
		}
	}
	return db.parWorkersFor(n)
}

// planMatch compiles a single-table WHERE into a one-level plan (the DML
// access path of DELETE/UPDATE).
func planMatch(name string, t *Table, where Expr) levelPlan {
	src := &source{name: name, table: t}
	srcs := []*source{src}
	lp := levelPlan{slot: 0}
	if where == nil {
		return lp
	}
	lp.conds = splitAnd(where)
	posOf := []int{0}
	for _, c := range lp.conds {
		if col, expr, ok := probeCandidate(c, 0, srcs, posOf, 0); ok {
			lp.cands = append(lp.cands, probeCand{col: col, expr: expr, cond: c})
			continue
		}
		if rc, ok := rangeCandidate(c, 0, srcs, posOf, 0); ok {
			lp.ranges = append(lp.ranges, rc)
		}
	}
	return lp
}

// refSlots returns the (deduplicated) source slots an expression references.
// OLD-qualified references and unresolvable names contribute nothing.
func refSlots(e Expr, srcs []*source) []int {
	var out []int
	var walk func(e Expr)
	walk = func(e Expr) {
		switch x := e.(type) {
		case *ColumnRef:
			slot := resolveSlot(x, srcs)
			if slot < 0 {
				return
			}
			for _, s := range out {
				if s == slot {
					return
				}
			}
			out = append(out, slot)
		case *Binary:
			walk(x.L)
			walk(x.R)
		case *Unary:
			walk(x.X)
		case *IsNull:
			walk(x.X)
		case *InExpr:
			walk(x.X)
			for _, l := range x.List {
				walk(l)
			}
		case *FuncCall:
			if x.Arg != nil {
				walk(x.Arg)
			}
		}
	}
	walk(e)
	return out
}

// resolveSlot maps a column reference to the FROM slot it binds against, or
// -1 (OLD rows, unknown names). Unqualified references resolve to the last
// source having the column, matching binding resolution order; ambiguity is
// rejected earlier by validateRefs.
func resolveSlot(cr *ColumnRef, srcs []*source) int {
	if strings.EqualFold(cr.Table, "OLD") {
		return -1
	}
	if cr.Table != "" {
		for i, src := range srcs {
			if strings.EqualFold(src.name, cr.Table) {
				return i
			}
		}
		return -1
	}
	for i := len(srcs) - 1; i >= 0; i-- {
		if srcs[i].columnIndex(cr.Name) >= 0 {
			return i
		}
	}
	return -1
}

// probeCandidate checks whether conjunct c is `slot.col = expr` (either
// side) with expr referencing only earlier-bound sources and containing no
// aggregate, returning the column and probe expression.
func probeCandidate(c Expr, slot int, srcs []*source, posOf []int, lvl int) (string, Expr, bool) {
	b, ok := c.(*Binary)
	if !ok || b.Op != "=" {
		return "", nil, false
	}
	try := func(l, r Expr) (string, Expr, bool) {
		cr, ok := l.(*ColumnRef)
		if !ok || resolveSlot(cr, srcs) != slot {
			return "", nil, false
		}
		if containsAggregate(r) {
			return "", nil, false
		}
		for _, s := range refSlots(r, srcs) {
			if posOf[s] >= lvl {
				return "", nil, false
			}
		}
		return cr.Name, r, true
	}
	if col, e, ok := try(b.L, b.R); ok {
		return col, e, ok
	}
	return try(b.R, b.L)
}

// rangeCandidate checks whether conjunct c is `slot.col OP expr` (either
// side, OP an inequality) with expr referencing only earlier-bound sources,
// returning the normalized candidate.
func rangeCandidate(c Expr, slot int, srcs []*source, posOf []int, lvl int) (rangeCand, bool) {
	b, ok := c.(*Binary)
	if !ok {
		return rangeCand{}, false
	}
	switch b.Op {
	case "<", "<=", ">", ">=":
	default:
		return rangeCand{}, false
	}
	try := func(l, r Expr, op string) (rangeCand, bool) {
		cr, ok := l.(*ColumnRef)
		if !ok || resolveSlot(cr, srcs) != slot {
			return rangeCand{}, false
		}
		if containsAggregate(r) {
			return rangeCand{}, false
		}
		for _, s := range refSlots(r, srcs) {
			if posOf[s] >= lvl {
				return rangeCand{}, false
			}
		}
		return rangeCand{col: cr.Name, op: op, expr: r}, true
	}
	if rc, ok := try(b.L, b.R, b.Op); ok {
		return rc, true
	}
	return try(b.R, b.L, flipOp(b.Op))
}

// orderSources greedily orders the FROM slots: the most syntactically
// selective source seeds the pipeline, then the source best connected to
// the already-bound set is appended, preferring equality edges onto indexed
// columns (index probes), then any equality edge (hash join), then any
// connecting predicate, and finally cross products. Ties keep the written
// FROM order, so queries with no exploitable structure run exactly as
// before.
func orderSources(srcs []*source, conjs []Expr, refs [][]int) []int {
	n := len(srcs)
	order := make([]int, 0, n)
	if n <= 1 {
		for i := 0; i < n; i++ {
			order = append(order, i)
		}
		return order
	}
	bound := make([]bool, n)
	for len(order) < n {
		best, bestScore := -1, -1
		for slot := 0; slot < n; slot++ {
			if bound[slot] {
				continue
			}
			score := accessScore(slot, srcs, conjs, refs, bound)
			if score > bestScore {
				best, bestScore = slot, score
			}
		}
		bound[best] = true
		order = append(order, best)
	}
	return order
}

// accessScore rates binding `slot` next, given the already-bound set:
//
//	8 — equality on an indexed column whose other side is already computable
//	6 — equality whose other side is already computable (hash-joinable /
//	    constant selection)
//	5 — inequality on the leading column of an ordered index with the other
//	    side computable (a B+tree range probe)
//	4 — some conjunct becomes fully checkable here
//	2 — the source has any single-source predicate at all
//	0 — cross product
//
// The range tier sits between equality and mere checkability: a bounded
// B+tree walk reads only the window, but an equality probe is still tighter.
func accessScore(slot int, srcs []*source, conjs []Expr, refs [][]int, bound []bool) int {
	score := 0
	for i, c := range conjs {
		mentionsSlot := false
		allBoundOrSelf := true
		for _, s := range refs[i] {
			if s == slot {
				mentionsSlot = true
			} else if !bound[s] {
				allBoundOrSelf = false
			}
		}
		if !mentionsSlot {
			continue
		}
		if !allBoundOrSelf {
			if score < 2 {
				score = 2
			}
			continue
		}
		// Fully checkable once slot binds.
		if score < 4 {
			score = 4
		}
		b, ok := c.(*Binary)
		if !ok {
			continue
		}
		if b.Op == "=" {
			if col, ok := equalitySide(b, slot, srcs, bound); ok {
				if t := srcs[slot].table; t != nil && (t.lookupIndex(col) != nil || t.orderedLeadIndex(col) != nil) {
					return 8
				}
				if score < 6 {
					score = 6
				}
			}
		} else if score < 5 && (b.Op == "<" || b.Op == "<=" || b.Op == ">" || b.Op == ">=") {
			if col, ok := inequalitySide(b, slot, srcs, bound); ok {
				if t := srcs[slot].table; t != nil && t.orderedLeadIndex(col) != nil {
					score = 5
				}
			}
		}
	}
	return score
}

// inequalitySide checks `slot.col OP expr(bound sources)` in either
// direction and returns the column name on slot's side.
func inequalitySide(b *Binary, slot int, srcs []*source, bound []bool) (string, bool) {
	try := func(l, r Expr) (string, bool) {
		cr, ok := l.(*ColumnRef)
		if !ok || resolveSlot(cr, srcs) != slot {
			return "", false
		}
		for _, s := range refSlots(r, srcs) {
			if s == slot || !bound[s] {
				return "", false
			}
		}
		return cr.Name, true
	}
	if col, ok := try(b.L, b.R); ok {
		return col, ok
	}
	return try(b.R, b.L)
}

// equalitySide checks `slot.col = expr(bound sources)` in either direction
// and returns the column name on slot's side.
func equalitySide(b *Binary, slot int, srcs []*source, bound []bool) (string, bool) {
	try := func(l, r Expr) (string, bool) {
		cr, ok := l.(*ColumnRef)
		if !ok || resolveSlot(cr, srcs) != slot {
			return "", false
		}
		for _, s := range refSlots(r, srcs) {
			if s == slot || !bound[s] {
				return "", false
			}
		}
		return cr.Name, true
	}
	if col, ok := try(b.L, b.R); ok {
		return col, ok
	}
	return try(b.R, b.L)
}

// ---- expression rendering (EXPLAIN) ----

// exprString renders an expression as SQL-ish text for plan display.
func exprString(e Expr) string {
	switch x := e.(type) {
	case nil:
		return ""
	case *Literal:
		return FormatValue(x.Value)
	case *Param:
		return "?"
	case *ColumnRef:
		if x.Table != "" {
			return x.Table + "." + x.Name
		}
		return x.Name
	case *Binary:
		return fmt.Sprintf("%s %s %s", exprString(x.L), x.Op, exprString(x.R))
	case *Unary:
		if x.Op == "NOT" {
			return "NOT " + exprString(x.X)
		}
		return x.Op + exprString(x.X)
	case *IsNull:
		if x.Negate {
			return exprString(x.X) + " IS NOT NULL"
		}
		return exprString(x.X) + " IS NULL"
	case *InExpr:
		op := "IN"
		if x.Negate {
			op = "NOT IN"
		}
		if x.Select != nil {
			return fmt.Sprintf("%s %s (<subquery>)", exprString(x.X), op)
		}
		parts := make([]string, len(x.List))
		for i, l := range x.List {
			parts[i] = exprString(l)
		}
		return fmt.Sprintf("%s %s (%s)", exprString(x.X), op, strings.Join(parts, ", "))
	case *FuncCall:
		if x.Star {
			return x.Name + "(*)"
		}
		return fmt.Sprintf("%s(%s)", x.Name, exprString(x.Arg))
	default:
		return fmt.Sprintf("%T", e)
	}
}

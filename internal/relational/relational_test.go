package relational

import (
	"strings"
	"testing"
	"testing/quick"
)

// custSchema creates the paper's customer tables (Shared Inlining of the
// Figure 4 DTD) with id/parentId linkage and indexes.
func custSchema(t testing.TB) *DB {
	db := NewDB()
	stmts := []string{
		`CREATE TABLE Customer (id INTEGER, parentId INTEGER, Name VARCHAR(50), Address_City VARCHAR(50), Address_State VARCHAR(50))`,
		`CREATE TABLE Orders (id INTEGER, parentId INTEGER, Date VARCHAR(20), Status VARCHAR(20))`,
		`CREATE TABLE OrderLine (id INTEGER, parentId INTEGER, ItemName VARCHAR(50), Qty INTEGER)`,
		`CREATE INDEX idx_cust_id ON Customer (id)`,
		`CREATE INDEX idx_ord_id ON Orders (id)`,
		`CREATE INDEX idx_ord_parent ON Orders (parentId)`,
		`CREATE INDEX idx_ol_parent ON OrderLine (parentId)`,
	}
	for _, s := range stmts {
		if _, err := db.Exec(s); err != nil {
			t.Fatalf("%s: %v", s, err)
		}
	}
	return db
}

func loadCustData(t testing.TB, db *DB) {
	stmts := []string{
		`INSERT INTO Customer VALUES (1, 0, 'John', 'Seattle', 'WA'), (2, 0, 'Mary', 'Portland', 'OR'), (3, 0, 'John', 'Sacramento', 'CA')`,
		`INSERT INTO Orders VALUES (10, 1, '2000-05-01', 'ready'), (11, 1, '2000-06-12', 'shipped'), (12, 2, '2000-07-04', 'ready')`,
		`INSERT INTO OrderLine VALUES (100, 10, 'tire', 4), (101, 10, 'wrench', 1), (102, 11, 'tire', 2), (103, 12, 'hammer', 1)`,
	}
	for _, s := range stmts {
		if _, err := db.Exec(s); err != nil {
			t.Fatalf("%s: %v", s, err)
		}
	}
}

func TestCreateInsertSelect(t *testing.T) {
	db := custSchema(t)
	loadCustData(t, db)
	rows, err := db.Query(`SELECT Name, Address_City FROM Customer WHERE Name = 'John'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Data) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows.Data))
	}
	cities := map[string]bool{}
	for _, r := range rows.Data {
		cities[r[1].MustText()] = true
	}
	if !cities["Seattle"] || !cities["Sacramento"] {
		t.Errorf("cities = %v", cities)
	}
}

func TestDuplicateTableFails(t *testing.T) {
	db := NewDB()
	db.MustExec(`CREATE TABLE t (a INTEGER)`)
	if _, err := db.Exec(`CREATE TABLE t (a INTEGER)`); err == nil {
		t.Error("duplicate CREATE TABLE should fail")
	}
}

func TestTypeCoercion(t *testing.T) {
	db := NewDB()
	db.MustExec(`CREATE TABLE t (n INTEGER, s VARCHAR)`)
	db.MustExec(`INSERT INTO t VALUES ('42', 7)`)
	rows, err := db.Query(`SELECT n, s FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	if rows.Data[0][0] != Int(42) || rows.Data[0][1] != Text("7") {
		t.Errorf("coercion = %v", rows.Data[0])
	}
	if _, err := db.Exec(`INSERT INTO t VALUES ('abc', 'x')`); err == nil {
		t.Error("non-numeric string into INTEGER should fail")
	}
}

func TestJoinWithIndex(t *testing.T) {
	db := custSchema(t)
	loadCustData(t, db)
	rows, err := db.Query(`
SELECT C.Name, OL.ItemName
FROM Customer C, Orders O, OrderLine OL
WHERE O.parentId = C.id AND OL.parentId = O.id AND OL.ItemName = 'tire'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Data) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows.Data))
	}
	for _, r := range rows.Data {
		if r[0] != Text("John") {
			t.Errorf("tire buyer = %v", r[0])
		}
	}
}

func TestDeleteWithWhere(t *testing.T) {
	db := custSchema(t)
	loadCustData(t, db)
	n, err := db.Exec(`DELETE FROM Customer WHERE Name = 'John'`)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("deleted %d, want 2", n)
	}
	if db.Table("Customer").RowCount() != 1 {
		t.Errorf("rows left = %d", db.Table("Customer").RowCount())
	}
}

func TestUpdateArithmetic(t *testing.T) {
	db := custSchema(t)
	loadCustData(t, db)
	// The table-based insert's id remapping: id = id + offset.
	n, err := db.Exec(`UPDATE Orders SET id = id + 1000, parentId = parentId + 1000`)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Errorf("updated %d, want 3", n)
	}
	rows, _ := db.Query(`SELECT MIN(id), MAX(id) FROM Orders`)
	if rows.Data[0][0] != Int(1010) || rows.Data[0][1] != Int(1012) {
		t.Errorf("min/max = %v", rows.Data[0])
	}
}

func TestAggregates(t *testing.T) {
	db := custSchema(t)
	loadCustData(t, db)
	rows, err := db.Query(`SELECT COUNT(*), MIN(id), MAX(id), MAX(id) - MIN(id) + 1 FROM OrderLine`)
	if err != nil {
		t.Fatal(err)
	}
	r := rows.Data[0]
	if r[0] != Int(4) || r[1] != Int(100) || r[2] != Int(103) || r[3] != Int(4) {
		t.Errorf("aggregates = %v", r)
	}
	// Aggregates over an empty set.
	db.MustExec(`DELETE FROM OrderLine`)
	rows, err = db.Query(`SELECT COUNT(*), MIN(id) FROM OrderLine`)
	if err != nil {
		t.Fatal(err)
	}
	if rows.Data[0][0] != Int(0) || !rows.Data[0][1].IsNull() {
		t.Errorf("empty aggregates = %v", rows.Data[0])
	}
}

func TestNotInSubquery(t *testing.T) {
	db := custSchema(t)
	loadCustData(t, db)
	// Delete the parent, then orphan cleanup — the cascading delete shape.
	db.MustExec(`DELETE FROM Customer WHERE Name = 'John'`)
	n, err := db.Exec(`DELETE FROM Orders WHERE parentId NOT IN (SELECT id FROM Customer)`)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("orphaned orders deleted = %d, want 2", n)
	}
	n, err = db.Exec(`DELETE FROM OrderLine WHERE parentId NOT IN (SELECT id FROM Orders)`)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Errorf("orphaned lines deleted = %d, want 3", n)
	}
}

func TestInList(t *testing.T) {
	db := custSchema(t)
	loadCustData(t, db)
	rows, err := db.Query(`SELECT id FROM Orders WHERE id IN (10, 12)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Data) != 2 {
		t.Errorf("IN list matched %d", len(rows.Data))
	}
	rows, err = db.Query(`SELECT id FROM Orders WHERE id NOT IN (10, 12)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Data) != 1 || rows.Data[0][0] != Int(11) {
		t.Errorf("NOT IN = %v", rows.Data)
	}
}

func TestIsNull(t *testing.T) {
	db := NewDB()
	db.MustExec(`CREATE TABLE t (a INTEGER, b VARCHAR)`)
	db.MustExec(`INSERT INTO t VALUES (1, 'x'), (2, NULL)`)
	rows, _ := db.Query(`SELECT a FROM t WHERE b IS NULL`)
	if len(rows.Data) != 1 || rows.Data[0][0] != Int(2) {
		t.Errorf("IS NULL = %v", rows.Data)
	}
	rows, _ = db.Query(`SELECT a FROM t WHERE b IS NOT NULL`)
	if len(rows.Data) != 1 || rows.Data[0][0] != Int(1) {
		t.Errorf("IS NOT NULL = %v", rows.Data)
	}
	// NULL never equals anything.
	rows, _ = db.Query(`SELECT a FROM t WHERE b = NULL`)
	if len(rows.Data) != 0 {
		t.Errorf("= NULL matched %d rows", len(rows.Data))
	}
}

// TestOuterUnionShape runs the paper's Figure 5 query shape: WITH CTEs,
// UNION ALL, NULL padding, ORDER BY with NULLs sorting first so parents
// precede children.
func TestOuterUnionShape(t *testing.T) {
	db := custSchema(t)
	loadCustData(t, db)
	rows, err := db.Query(`
WITH Q1(C1, C2, C3, C4, C5, C6, C7, C8, C9) AS (
  SELECT id, Name, Address_City, Address_State, NULL, NULL, NULL, NULL, NULL
  FROM Customer
  WHERE Name = 'John'
), Q2(C1, C2, C3, C4, C5, C6, C7, C8, C9) AS (
  SELECT Q1.C1, NULL, NULL, NULL, O.id, O.Status, NULL, NULL, NULL
  FROM Q1, Orders O
  WHERE O.parentId = Q1.C1
), Q3(C1, C2, C3, C4, C5, C6, C7, C8, C9) AS (
  SELECT Q2.C1, NULL, NULL, NULL, Q2.C5, NULL, OL.id, OL.ItemName, OL.Qty
  FROM Q2, OrderLine OL
  WHERE OL.parentId = Q2.C5
) (
  SELECT * FROM Q1
) UNION ALL (
  SELECT * FROM Q2
) UNION ALL (
  SELECT * FROM Q3
)
ORDER BY C1, C5, C7`)
	if err != nil {
		t.Fatal(err)
	}
	// John(1): customer row, 2 orders, 3 lines; John(3): customer row only.
	if len(rows.Data) != 7 {
		t.Fatalf("got %d rows, want 7", len(rows.Data))
	}
	// Parent-before-child: first row is customer 1 (C5 NULL), then its
	// orders and their lines, then customer 3.
	r0 := rows.Data[0]
	if r0[0] != Int(1) || !r0[4].IsNull() || r0[1] != Text("John") {
		t.Errorf("row 0 = %v", r0)
	}
	r1 := rows.Data[1]
	if r1[4] != Int(10) || !r1[6].IsNull() {
		t.Errorf("row 1 = %v (want order 10 header)", r1)
	}
	r2 := rows.Data[2]
	if r2[6] != Int(100) {
		t.Errorf("row 2 = %v (want line 100)", r2)
	}
	last := rows.Data[6]
	if last[0] != Int(3) || !last[4].IsNull() {
		t.Errorf("last row = %v (want customer 3)", last)
	}
}

func TestPerRowTriggerCascade(t *testing.T) {
	db := custSchema(t)
	loadCustData(t, db)
	db.MustExec(`CREATE TRIGGER cust_del AFTER DELETE ON Customer FOR EACH ROW DELETE FROM Orders WHERE parentId = OLD.id`)
	db.MustExec(`CREATE TRIGGER ord_del AFTER DELETE ON Orders FOR EACH ROW DELETE FROM OrderLine WHERE parentId = OLD.id`)

	db.ResetStats()
	n, err := db.Exec(`DELETE FROM Customer WHERE Name = 'John'`)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("deleted %d customers", n)
	}
	if got := db.Table("Orders").RowCount(); got != 1 {
		t.Errorf("orders left = %d, want 1", got)
	}
	if got := db.Table("OrderLine").RowCount(); got != 1 {
		t.Errorf("lines left = %d, want 1", got)
	}
	st := db.Stats()
	if st.Statements != 1 {
		t.Errorf("client statements = %d, want 1 (cascade is inside the DBMS)", st.Statements)
	}
	if st.TriggerFirings < 3 { // 2 customer rows + 2 orders (one per row)
		t.Errorf("trigger firings = %d", st.TriggerFirings)
	}
	if st.RowsDeleted != 7 { // 2 customers + 2 orders + 3 lines
		t.Errorf("rows deleted = %d, want 7", st.RowsDeleted)
	}
}

func TestPerStatementTriggerCascade(t *testing.T) {
	db := custSchema(t)
	loadCustData(t, db)
	db.MustExec(`CREATE TRIGGER cust_del AFTER DELETE ON Customer FOR EACH STATEMENT DELETE FROM Orders WHERE parentId NOT IN (SELECT id FROM Customer)`)
	db.MustExec(`CREATE TRIGGER ord_del AFTER DELETE ON Orders FOR EACH STATEMENT DELETE FROM OrderLine WHERE parentId NOT IN (SELECT id FROM Orders)`)

	n, err := db.Exec(`DELETE FROM Customer WHERE Name = 'John'`)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("deleted %d customers", n)
	}
	if got := db.Table("Orders").RowCount(); got != 1 {
		t.Errorf("orders left = %d, want 1", got)
	}
	if got := db.Table("OrderLine").RowCount(); got != 1 {
		t.Errorf("lines left = %d, want 1", got)
	}
}

func TestPerStatementTriggerNotFiredOnZeroRows(t *testing.T) {
	db := custSchema(t)
	loadCustData(t, db)
	db.MustExec(`CREATE TRIGGER cust_del AFTER DELETE ON Customer FOR EACH STATEMENT DELETE FROM Orders WHERE parentId NOT IN (SELECT id FROM Customer)`)
	db.ResetStats()
	db.MustExec(`DELETE FROM Customer WHERE Name = 'Nobody'`)
	if st := db.Stats(); st.TriggerFirings != 0 {
		t.Errorf("trigger fired %d times on empty delete", st.TriggerFirings)
	}
}

func TestRecursiveSchemaTriggerTerminates(t *testing.T) {
	db := NewDB()
	db.MustExec(`CREATE TABLE Node (id INTEGER, parentId INTEGER)`)
	db.MustExec(`CREATE INDEX idx_node_parent ON Node (parentId)`)
	db.MustExec(`CREATE TRIGGER node_del AFTER DELETE ON Node FOR EACH ROW DELETE FROM Node WHERE parentId = OLD.id`)
	// Chain 1 → 2 → 3 → 4.
	db.MustExec(`INSERT INTO Node VALUES (1, 0), (2, 1), (3, 2), (4, 3)`)
	n, err := db.Exec(`DELETE FROM Node WHERE id = 1`)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("client delete = %d", n)
	}
	if db.Table("Node").RowCount() != 0 {
		t.Errorf("recursive cascade left %d rows", db.Table("Node").RowCount())
	}
}

func TestDropTrigger(t *testing.T) {
	db := custSchema(t)
	loadCustData(t, db)
	db.MustExec(`CREATE TRIGGER cust_del AFTER DELETE ON Customer FOR EACH ROW DELETE FROM Orders WHERE parentId = OLD.id`)
	db.MustExec(`DROP TRIGGER cust_del`)
	db.MustExec(`DELETE FROM Customer WHERE Name = 'John'`)
	if got := db.Table("Orders").RowCount(); got != 3 {
		t.Errorf("orders = %d; dropped trigger still fired", got)
	}
	if _, err := db.Exec(`DROP TRIGGER cust_del`); err == nil {
		t.Error("double drop should fail")
	}
}

func TestInsertSelect(t *testing.T) {
	db := custSchema(t)
	loadCustData(t, db)
	db.MustExec(`CREATE TABLE temp_ord (id INTEGER, parentId INTEGER, Date VARCHAR(20), Status VARCHAR(20))`)
	n, err := db.Exec(`INSERT INTO temp_ord SELECT * FROM Orders WHERE parentId = 1`)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("inserted %d, want 2", n)
	}
	// Remap and insert back — the table-based insert shape.
	db.MustExec(`UPDATE temp_ord SET id = id + 100, parentId = 3`)
	db.MustExec(`INSERT INTO Orders SELECT * FROM temp_ord`)
	rows, _ := db.Query(`SELECT id FROM Orders WHERE parentId = 3`)
	if len(rows.Data) != 2 {
		t.Errorf("remapped rows = %d", len(rows.Data))
	}
}

func TestInsertWithColumnList(t *testing.T) {
	db := custSchema(t)
	db.MustExec(`INSERT INTO Customer (id, Name) VALUES (9, 'Zoe')`)
	rows, _ := db.Query(`SELECT id, Name, Address_City FROM Customer`)
	r := rows.Data[0]
	if r[0] != Int(9) || r[1] != Text("Zoe") || !r[2].IsNull() {
		t.Errorf("row = %v", r)
	}
}

func TestSelectDistinct(t *testing.T) {
	db := custSchema(t)
	loadCustData(t, db)
	rows, err := db.Query(`SELECT DISTINCT Name FROM Customer`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Data) != 2 {
		t.Errorf("distinct names = %d, want 2", len(rows.Data))
	}
}

func TestOrderByDesc(t *testing.T) {
	db := custSchema(t)
	loadCustData(t, db)
	rows, err := db.Query(`SELECT id FROM Orders ORDER BY id DESC`)
	if err != nil {
		t.Fatal(err)
	}
	if rows.Data[0][0] != Int(12) || rows.Data[2][0] != Int(10) {
		t.Errorf("desc order = %v", rows.Data)
	}
}

func TestDropTable(t *testing.T) {
	db := NewDB()
	db.MustExec(`CREATE TABLE t (a INTEGER)`)
	db.MustExec(`DROP TABLE t`)
	if db.Table("t") != nil {
		t.Error("table still present")
	}
	if _, err := db.Exec(`DROP TABLE t`); err == nil {
		t.Error("dropping missing table should fail")
	}
	db.MustExec(`DROP TABLE IF EXISTS t`)
}

func TestParseErrors(t *testing.T) {
	db := NewDB()
	bad := []string{
		``,
		`SELEC 1`,
		`CREATE TABLE`,
		`CREATE TABLE t (a BOGUS)`,
		`INSERT INTO`,
		`DELETE t`,
		`UPDATE t SET`,
		`SELECT FROM t`,
		`SELECT * FROM t WHERE`,
		`SELECT * FROM t UNION SELECT * FROM t`, // only UNION ALL
		`CREATE TRIGGER x AFTER INSERT ON t FOR EACH ROW DELETE FROM t`,
	}
	for _, s := range bad {
		if _, err := db.Exec(s); err == nil {
			t.Errorf("Exec(%q) succeeded, want error", s)
		}
	}
}

func TestUnknownTableAndColumnErrors(t *testing.T) {
	db := NewDB()
	db.MustExec(`CREATE TABLE t (a INTEGER)`)
	if _, err := db.Query(`SELECT * FROM nosuch`); err == nil {
		t.Error("unknown table should fail")
	}
	if _, err := db.Query(`SELECT nosuch FROM t`); err == nil {
		t.Error("unknown column should fail")
	}
	if _, err := db.Exec(`INSERT INTO t (nosuch) VALUES (1)`); err == nil {
		t.Error("unknown insert column should fail")
	}
}

func TestStringEscaping(t *testing.T) {
	db := NewDB()
	db.MustExec(`CREATE TABLE t (s VARCHAR)`)
	db.MustExec(`INSERT INTO t VALUES ('it''s')`)
	rows, _ := db.Query(`SELECT s FROM t WHERE s = 'it''s'`)
	if len(rows.Data) != 1 || rows.Data[0][0] != Text("it's") {
		t.Errorf("escaped string = %v", rows.Data)
	}
	if got := FormatValue(Text("it's")); got != "'it''s'" {
		t.Errorf("FormatValue = %s", got)
	}
}

func TestStatsCounters(t *testing.T) {
	db := custSchema(t)
	loadCustData(t, db)
	db.ResetStats()
	db.MustExec(`DELETE FROM OrderLine WHERE ItemName = 'tire'`)
	st := db.Stats()
	if st.Statements != 1 || st.RowsDeleted != 2 {
		t.Errorf("stats = %+v", st)
	}
	if st.RowsScanned < 4 {
		t.Errorf("scan count = %d, want full scan of 4", st.RowsScanned)
	}
}

func TestIndexProbeScansLess(t *testing.T) {
	db := custSchema(t)
	loadCustData(t, db)
	db.ResetStats()
	// parentId is indexed: the probe should not scan the whole table.
	db.MustExec(`DELETE FROM OrderLine WHERE parentId = 10`)
	st := db.Stats()
	if st.RowsScanned > 2 {
		t.Errorf("indexed delete scanned %d rows, want ≤ 2", st.RowsScanned)
	}
}

// TestPropertyInsertDeleteCount checks that inserting n rows and deleting
// them all always empties the table regardless of key distribution.
func TestPropertyInsertDeleteCount(t *testing.T) {
	f := func(keys []uint8) bool {
		db := NewDB()
		db.MustExec(`CREATE TABLE t (k INTEGER, v VARCHAR)`)
		db.MustExec(`CREATE INDEX idx_k ON t (k)`)
		for _, k := range keys {
			if _, err := db.Exec(`INSERT INTO t VALUES (` + FormatValue(Int(int64(k))) + `, 'x')`); err != nil {
				return false
			}
		}
		if db.Table("t").RowCount() != len(keys) {
			return false
		}
		n, err := db.Exec(`DELETE FROM t`)
		if err != nil || n != len(keys) {
			return false
		}
		return db.Table("t").RowCount() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestPropertyIndexEquivalence checks that indexed and unindexed equality
// scans return identical results.
func TestPropertyIndexEquivalence(t *testing.T) {
	f := func(keys []uint8, probe uint8) bool {
		plain := NewDB()
		plain.MustExec(`CREATE TABLE t (k INTEGER)`)
		indexed := NewDB()
		indexed.MustExec(`CREATE TABLE t (k INTEGER)`)
		indexed.MustExec(`CREATE INDEX i ON t (k)`)
		for _, k := range keys {
			v := FormatValue(Int(int64(k)))
			plain.MustExec(`INSERT INTO t VALUES (` + v + `)`)
			indexed.MustExec(`INSERT INTO t VALUES (` + v + `)`)
		}
		q := `SELECT k FROM t WHERE k = ` + FormatValue(Int(int64(probe)))
		a, err1 := plain.Query(q)
		b, err2 := indexed.Query(q)
		if err1 != nil || err2 != nil {
			return false
		}
		return len(a.Data) == len(b.Data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestNullSortsFirst(t *testing.T) {
	db := NewDB()
	db.MustExec(`CREATE TABLE t (a INTEGER)`)
	db.MustExec(`INSERT INTO t VALUES (2), (NULL), (1)`)
	rows, _ := db.Query(`SELECT a FROM t ORDER BY a`)
	if !rows.Data[0][0].IsNull() || rows.Data[1][0] != Int(1) || rows.Data[2][0] != Int(2) {
		t.Errorf("order = %v (NULL must sort first for Sorted Outer Union)", rows.Data)
	}
}

func TestComments(t *testing.T) {
	db := NewDB()
	db.MustExec("CREATE TABLE t (a INTEGER) -- trailing comment")
	db.MustExec("-- leading comment\nINSERT INTO t VALUES (1)")
	rows, _ := db.Query(`SELECT a FROM t`)
	if len(rows.Data) != 1 {
		t.Error("comments broke execution")
	}
}

func TestQueryRejectsNonSelect(t *testing.T) {
	db := NewDB()
	db.MustExec(`CREATE TABLE t (a INTEGER)`)
	if _, err := db.Query(`DELETE FROM t`); err == nil || !strings.Contains(err.Error(), "SELECT") {
		t.Errorf("Query of DELETE: %v", err)
	}
}

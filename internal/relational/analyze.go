package relational

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// EXPLAIN ANALYZE: instrumented execution. The statement runs for real —
// through the same compile and iterator construction as any other execution
// — but with env.an set, so buildBodyIter/buildSelectIter thread thin
// instrumented wrappers between operators and every levelIter folds its
// batched counters into a per-operator record on Close. The ordinary path
// pays nothing: env.an is nil on every non-ANALYZE execution, the wrappers
// are never constructed, and the per-operator map never exists.
//
// Per-operator actuals are keyed by the compiled structures themselves
// (*bodyCompiled for body operators, *selectCompiled for the statement-top
// operators, the DML plan slot for match access paths), so the renderer —
// which walks the same compiled tree EXPLAIN renders — finds each
// operator's record by identity, with no name matching.

// anKey addresses one operator of an analyze run: the compiled structure it
// belongs to plus its position. Non-negative positions are join levels
// (plan.levels index); negative positions are the singleton operators.
type anKey struct {
	owner any
	pos   int
}

const (
	anProject  = -1 // projection / aggregation (also the values body)
	anDistinct = -2
	anExchange = -3 // parallel fan-out (ordered exchange or parallel agg)
	anSort     = -4
	anMerge    = -5
	anUnion    = -6
	anMatch    = -7 // DML row-match access path
)

// opMetrics is one operator's actuals. Atomics because parallel CTE waves
// build and drain sibling pipelines concurrently, and worker pipelines fold
// their scan counters from worker goroutines. workers/parts are written
// once, from the goroutine constructing the parallel body, before any
// worker runs.
type opMetrics struct {
	rows    atomic.Int64 // rows produced (consumer side for exchanges)
	loops   atomic.Int64 // times the operator was opened
	ns      atomic.Int64 // inclusive wall time across Open/Next/Close
	scanned atomic.Int64 // source rows visited (levelIter counter fold)
	probes  atomic.Int64 // index + range probes issued
	workers int
	parts   int
}

// suffix renders the operator's actuals for appending to its plan line.
// Nil-safe: operators the run never instrumented render nothing. Worker
// pipeline levels carry no timing (summing wall time across concurrent
// goroutines would overstate it), so a levels-only record renders its scan
// counters alone.
func (m *opMetrics) suffix() string {
	if m == nil {
		return ""
	}
	var parts []string
	if l := m.loops.Load(); l > 0 {
		parts = append(parts, fmt.Sprintf("rows=%d", m.rows.Load()))
		if l > 1 {
			parts = append(parts, fmt.Sprintf("loops=%d", l))
		}
		parts = append(parts, "time="+fmtAnDur(time.Duration(m.ns.Load())))
	}
	if s := m.scanned.Load(); s > 0 {
		parts = append(parts, fmt.Sprintf("scanned=%d", s))
	}
	if p := m.probes.Load(); p > 0 {
		parts = append(parts, fmt.Sprintf("probes=%d", p))
	}
	if m.workers > 1 {
		parts = append(parts, fmt.Sprintf("workers=%d", m.workers), fmt.Sprintf("parts=%d", m.parts))
	}
	if len(parts) == 0 {
		return " (actual rows=0)"
	}
	return " (actual " + strings.Join(parts, " ") + ")"
}

// fmtAnDur renders a duration with enough precision to be useful and few
// enough digits to be readable.
func fmtAnDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(time.Microsecond).String()
	case d >= time.Microsecond:
		return d.Round(100 * time.Nanosecond).String()
	}
	return d.String()
}

// analyzeRun collects one EXPLAIN ANALYZE execution's per-operator actuals
// and the compiled form of every SELECT that ran, keyed by AST node so the
// renderer can recurse statement → CTEs exactly as EXPLAIN does.
type analyzeRun struct {
	mu      sync.Mutex
	ops     map[anKey]*opMetrics
	selects map[*SelectStmt]*selectCompiled
}

func newAnalyzeRun() *analyzeRun {
	return &analyzeRun{
		ops:     make(map[anKey]*opMetrics),
		selects: make(map[*SelectStmt]*selectCompiled),
	}
}

// op returns the operator's record, creating it on first use.
func (an *analyzeRun) op(owner any, pos int) *opMetrics {
	k := anKey{owner, pos}
	an.mu.Lock()
	defer an.mu.Unlock()
	m := an.ops[k]
	if m == nil {
		m = &opMetrics{}
		an.ops[k] = m
	}
	return m
}

// find returns the operator's record, or nil if the operator never ran.
func (an *analyzeRun) find(owner any, pos int) *opMetrics {
	an.mu.Lock()
	defer an.mu.Unlock()
	return an.ops[anKey{owner, pos}]
}

func (an *analyzeRun) noteSelect(s *SelectStmt, cs *selectCompiled) {
	an.mu.Lock()
	an.selects[s] = cs
	an.mu.Unlock()
}

func (an *analyzeRun) selectFor(s *SelectStmt) *selectCompiled {
	an.mu.Lock()
	defer an.mu.Unlock()
	return an.selects[s]
}

// instrBind wraps a binding-space iterator, recording open count, rows
// produced, and inclusive wall time. The wrapped level also holds a direct
// anm reference for its counter fold, so scan/probe counts arrive even when
// the pipeline is abandoned mid-stream.
type instrBind struct {
	in bindIter
	m  *opMetrics
}

func (ib *instrBind) Open() error {
	ib.m.loops.Add(1)
	t0 := time.Now()
	err := ib.in.Open()
	ib.m.ns.Add(int64(time.Since(t0)))
	return err
}

func (ib *instrBind) Next() (bool, error) {
	t0 := time.Now()
	ok, err := ib.in.Next()
	ib.m.ns.Add(int64(time.Since(t0)))
	if ok {
		ib.m.rows.Add(1)
	}
	return ok, err
}

func (ib *instrBind) Close() {
	t0 := time.Now()
	ib.in.Close()
	ib.m.ns.Add(int64(time.Since(t0)))
}

// instrRow is instrBind's row-space twin.
type instrRow struct {
	in rowIter
	m  *opMetrics
}

func (ir *instrRow) Open() error {
	ir.m.loops.Add(1)
	t0 := time.Now()
	err := ir.in.Open()
	ir.m.ns.Add(int64(time.Since(t0)))
	return err
}

func (ir *instrRow) Next() ([]Value, bool, error) {
	t0 := time.Now()
	row, ok, err := ir.in.Next()
	ir.m.ns.Add(int64(time.Since(t0)))
	if ok {
		ir.m.rows.Add(1)
	}
	return row, ok, err
}

func (ir *instrRow) Close() {
	t0 := time.Now()
	ir.in.Close()
	ir.m.ns.Add(int64(time.Since(t0)))
}

// ExplainAnalyze executes a statement with per-operator instrumentation and
// returns the EXPLAIN tree annotated with actuals: rows produced, open
// count, inclusive wall time, and source rows scanned / probes issued per
// join level, plus worker and partition counts where the parallel executor
// engaged. The statement runs for real: a DML statement mutates the
// database and appends its redo record exactly as Exec would. Also
// reachable through the SQL path as `EXPLAIN ANALYZE <stmt>` (or the
// shorthand `ANALYZE <stmt>`) via Query.
func (db *DB) ExplainAnalyze(sql string) (string, error) {
	stmt, err := ParseSQL(sql)
	if err != nil {
		return "", err
	}
	switch stmt.(type) {
	case *SelectStmt, *InsertStmt, *UpdateStmt, *DeleteStmt:
	default:
		return "", fmt.Errorf("relational: EXPLAIN ANALYZE supports SELECT and DML statements, got %T", stmt)
	}
	an := newAnalyzeRun()
	base := db.Stats()
	start := time.Now()
	qt := db.traceBegin("analyze", sql)
	var rowsOut int
	switch s := stmt.(type) {
	case *SelectStmt:
		err = func() error {
			var lockStart time.Time
			if qt != nil {
				lockStart = time.Now()
			}
			db.mu.RLock()
			defer db.mu.RUnlock()
			if qt != nil {
				qt.LockWait = time.Since(lockStart)
			}
			db.stats.Statements.Add(1)
			env := newEnv(nil)
			env.an = an
			var execStart time.Time
			if qt != nil {
				execStart = time.Now()
			}
			rows, err := db.execSelect(s, env)
			if qt != nil {
				qt.Execute = time.Since(execStart)
			}
			if err != nil {
				return err
			}
			rowsOut = len(rows.Data)
			return nil
		}()
	default:
		// DML: a real autocommit execution under the writer lock, with the
		// analyze run threaded through the environment. Joins no open
		// SQL-level transaction — like an autocommit statement it waits
		// behind (rather than inside) one.
		var lsn uint64
		rowsOut, lsn, err = func() (int, uint64, error) {
			lockStart := time.Now()
			db.mu.Lock()
			db.met.lockWait.ObserveSince(lockStart)
			defer db.mu.Unlock()
			if qt != nil {
				qt.LockWait = time.Since(lockStart)
			}
			db.stats.Statements.Add(1)
			return db.runAutocommit(stmt, nil, sql, nil, qt, an)
		}()
		if err == nil {
			err = db.afterCommit(lsn, qt)
		}
		if err == nil {
			db.met.commit.ObserveSince(start)
		}
	}
	total := time.Since(start)
	db.traceFinish(qt, rowsOut, err)
	if err != nil {
		return "", err
	}
	delta := statsSub(db.Stats(), base)
	db.mu.RLock()
	defer db.mu.RUnlock()
	var b strings.Builder
	if err := db.renderAnalyzeStmt(&b, stmt, an, 0); err != nil {
		return "", err
	}
	fmt.Fprintf(&b, "Execution: rows=%d time=%s\n", rowsOut, fmtAnDur(total))
	writeStatsDelta(&b, delta)
	return strings.TrimRight(b.String(), "\n"), nil
}

// dispatchExplain routes `EXPLAIN ...`, `EXPLAIN ANALYZE ...`, and
// `ANALYZE ...` statements arriving through the SQL query path. handled is
// false for everything else, and Query proceeds normally.
func (db *DB) dispatchExplain(sql string) (rows *Rows, handled bool, err error) {
	if rest, ok := cutKeyword(sql, "EXPLAIN"); ok {
		if rest2, ok2 := cutKeyword(rest, "ANALYZE"); ok2 {
			text, err := db.ExplainAnalyze(rest2)
			return planRows(text), true, err
		}
		text, err := db.Explain(rest)
		return planRows(text), true, err
	}
	if rest, ok := cutKeyword(sql, "ANALYZE"); ok {
		text, err := db.ExplainAnalyze(rest)
		return planRows(text), true, err
	}
	return nil, false, nil
}

// cutKeyword strips one leading (case-insensitive) keyword followed by
// whitespace, reporting whether it matched.
func cutKeyword(s, kw string) (string, bool) {
	t := strings.TrimLeft(s, " \t\r\n")
	if len(t) <= len(kw) || !strings.EqualFold(t[:len(kw)], kw) {
		return "", false
	}
	switch t[len(kw)] {
	case ' ', '\t', '\r', '\n':
		return strings.TrimLeft(t[len(kw)+1:], " \t\r\n"), true
	}
	return "", false
}

// planRows shapes a rendered plan as a one-column result set.
func planRows(text string) *Rows {
	rows := &Rows{Cols: []string{"plan"}}
	if text == "" {
		return rows
	}
	for _, line := range strings.Split(text, "\n") {
		rows.Data = append(rows.Data, []Value{Text(line)})
	}
	return rows
}

// renderAnalyzeStmt mirrors explainStmt, reading actuals off the run.
func (db *DB) renderAnalyzeStmt(b *strings.Builder, stmt Stmt, an *analyzeRun, depth int) error {
	switch s := stmt.(type) {
	case *SelectStmt:
		return db.renderAnalyzeSelect(b, s, an, depth)
	case *DeleteStmt:
		t := db.tables[strings.ToLower(s.Table)]
		if t == nil {
			return fmt.Errorf("relational: no table %q", s.Table)
		}
		indentLine(b, depth, fmt.Sprintf("Delete %s", t.Name))
		db.renderAnalyzeMatch(b, s.Table, t, s.Where, &s.plan, an, depth+1)
		return nil
	case *UpdateStmt:
		t := db.tables[strings.ToLower(s.Table)]
		if t == nil {
			return fmt.Errorf("relational: no table %q", s.Table)
		}
		sets := make([]string, len(s.Set))
		for i, sc := range s.Set {
			sets[i] = fmt.Sprintf("%s = %s", sc.Col, exprString(sc.Val))
		}
		indentLine(b, depth, fmt.Sprintf("Update %s [%s]", t.Name, strings.Join(sets, ", ")))
		db.renderAnalyzeMatch(b, s.Table, t, s.Where, &s.plan, an, depth+1)
		return nil
	case *InsertStmt:
		if s.Select != nil {
			indentLine(b, depth, fmt.Sprintf("Insert %s", s.Table))
			return db.renderAnalyzeSelect(b, s.Select, an, depth+1)
		}
		indentLine(b, depth, fmt.Sprintf("Insert %s (%d rows of values)", s.Table, len(s.Rows)))
		return nil
	default:
		indentLine(b, depth, fmt.Sprintf("%T", stmt))
		return nil
	}
}

// renderAnalyzeMatch renders the DML row-match access line with its
// actuals. The plan comes from the statement's compiled slot — the same
// matchPlanFor the execution used — so the rendered access path is the one
// that ran.
func (db *DB) renderAnalyzeMatch(b *strings.Builder, name string, t *Table, where Expr, slot **levelPlan, an *analyzeRun, depth int) {
	lp := db.matchPlanFor(slot, name, t, where)
	src := &source{name: name, table: t}
	ap := chooseAccessPlan(lp, src, 0, nil, true)
	m := an.find(slot, anMatch)
	par := 1
	if m != nil && m.workers > 1 {
		par = m.workers
	}
	indentLine(b, depth, levelLine(lp, src, ap, par)+m.suffix())
}

// renderAnalyzeSelect mirrors renderSelectTree over the compiled forms the
// execution recorded (an.selects), annotating each operator line. A
// sub-statement the execution never reached falls back to the predicted
// plan, unannotated.
func (db *DB) renderAnalyzeSelect(b *strings.Builder, s *SelectStmt, an *analyzeRun, depth int) error {
	cs := an.selectFor(s)
	if cs == nil {
		return db.explainSelect(b, s, newEnv(nil), depth, nil)
	}
	if cs.explicit {
		keys := make([]string, len(s.OrderBy))
		for i, k := range s.OrderBy {
			keys[i] = exprString(k.Expr)
			if k.Desc {
				keys[i] += " DESC"
			}
		}
		switch {
		case cs.elide && len(cs.bodies) > 1:
			indentLine(b, depth, fmt.Sprintf("MergeAll [%s]%s", strings.Join(keys, ", "), an.find(cs, anMerge).suffix()))
			depth++
		case cs.elide:
			// Single ordered branch: the sort disappears entirely.
		default:
			indentLine(b, depth, fmt.Sprintf("Sort [%s]%s", strings.Join(keys, ", "), an.find(cs, anSort).suffix()))
			depth++
		}
	}
	if len(s.Body) > 1 && !(cs.explicit && cs.elide) {
		indentLine(b, depth, "UnionAll"+an.find(cs, anUnion).suffix())
		depth++
	}
	for _, bc := range cs.bodies {
		db.renderAnalyzeBody(b, bc, an, depth)
	}
	for _, cte := range s.With {
		indentLine(b, depth, fmt.Sprintf("CTE %s", cte.Name))
		if err := db.renderAnalyzeSelect(b, cte.Select, an, depth+1); err != nil {
			return err
		}
	}
	return nil
}

// renderAnalyzeBody mirrors explainBody. The parallel decision is read off
// the recorded exchange operator rather than recomputed, so the rendered
// fan-out is the one that actually ran even if table cardinalities have
// moved since.
func (db *DB) renderAnalyzeBody(b *strings.Builder, bc *bodyCompiled, an *analyzeRun, depth int) {
	s := bc.sel
	if s.Distinct {
		indentLine(b, depth, "Distinct"+an.find(bc, anDistinct).suffix())
		depth++
	}
	var exprs []string
	if s.Star {
		exprs = []string{"*"}
	} else {
		for _, se := range s.Exprs {
			exprs = append(exprs, exprString(se.Expr))
		}
	}
	head := "Project"
	if bc.aggregate {
		head = "Aggregate"
	}
	indentLine(b, depth, fmt.Sprintf("%s [%s]%s", head, strings.Join(exprs, ", "), an.find(bc, anProject).suffix()))
	depth++
	if len(bc.srcs) == 0 {
		indentLine(b, depth, "Values")
		return
	}
	par := 1
	if xm := an.find(bc, anExchange); xm != nil {
		par = xm.workers
		indentLine(b, depth, fmt.Sprintf("Exchange (workers=%d, ordered)%s", par, xm.suffix()))
		depth++
	}
	for pos := len(bc.plan.levels) - 1; pos >= 0; pos-- {
		lp := bc.plan.levels[pos]
		lpar := 1
		if par > 1 && (pos == 0 || bc.access[pos].kind == accessHashJoin) {
			lpar = par
		}
		indentLine(b, depth, levelLine(lp, bc.srcs[lp.slot], bc.access[pos], lpar)+an.find(bc, pos).suffix())
		depth++
	}
}

// writeStatsDelta appends the non-zero engine counter movements of the
// analyzed execution. Deltas are computed against the global Stats
// snapshot, so concurrent statements can leak into them; for the debugging
// workflow ANALYZE serves, that imprecision is acceptable.
func writeStatsDelta(b *strings.Builder, d Stats) {
	fields := []struct {
		name string
		v    int64
	}{
		{"statements", d.Statements},
		{"triggerFirings", d.TriggerFirings},
		{"rowsScanned", d.RowsScanned},
		{"rowsInserted", d.RowsInserted},
		{"rowsDeleted", d.RowsDeleted},
		{"rowsUpdated", d.RowsUpdated},
		{"indexProbes", d.IndexProbes},
		{"fullScans", d.FullScans},
		{"rangeProbes", d.RangeProbes},
		{"sortPasses", d.SortPasses},
		{"rowsSorted", d.RowsSorted},
		{"hashJoinBuilds", d.HashJoinBuilds},
		{"planCacheHits", d.PlanCacheHits},
		{"planCacheMisses", d.PlanCacheMisses},
		{"internHits", d.InternHits},
		{"internMisses", d.InternMisses},
		{"parallelWorkers", d.ParallelWorkers},
		{"partitionsScanned", d.PartitionsScanned},
		{"exchangeBatches", d.ExchangeBatches},
		{"snapshotsTaken", d.SnapshotsTaken},
		{"versionChainHops", d.VersionChainHops},
		{"writeConflicts", d.WriteConflicts},
		{"versionsVacuumed", d.VersionsVacuumed},
		{"pageReads", d.PageReads},
		{"pageWrites", d.PageWrites},
		{"poolHits", d.PoolHits},
		{"poolMisses", d.PoolMisses},
		{"evictions", d.Evictions},
		{"dirtyFlushes", d.DirtyFlushes},
	}
	var parts []string
	for _, f := range fields {
		if f.v != 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", f.name, f.v))
		}
	}
	if len(parts) > 0 {
		fmt.Fprintf(b, "Stats: %s\n", strings.Join(parts, " "))
	}
}

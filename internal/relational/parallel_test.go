package relational

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
)

// Serial≡parallel equivalence: every query must return the byte-identical
// row sequence under SetParallelism(k) that it returns serially — not just
// the same multiset. Partitioned pipelines concatenate contiguous chunks of
// the serial enumeration in chunk order (parallel.go), so exact equality is
// the contract, and these tests hold it across randomized documents, every
// partitionable access kind, shared hash joins, parallel aggregation, CTE
// waves, and the DML read phase.

// buildParDoc loads a parent/child document big enough to clear the
// parMinRows fan-out gate: ~40 parents, 300-600 kids. grp is deliberately
// unindexed (transient hash joins); (parentId, pos) and (id) carry ordered
// indexes (elided sorts, range scans); parentId carries a hash index
// (indexed probes).
func buildParDoc(t testing.TB, seed int64) *DB {
	t.Helper()
	db := NewDB()
	db.MustExec(`CREATE TABLE Par (id INTEGER, grp INTEGER, name VARCHAR(20))`)
	db.MustExec(`CREATE TABLE Kid (id INTEGER, parentId INTEGER, grp INTEGER, pos INTEGER, val VARCHAR(20))`)
	db.MustExec(`CREATE INDEX pk_pid ON Kid (parentId)`)
	db.MustExec(`CREATE ORDERED INDEX ok_id ON Kid (id)`)
	db.MustExec(`CREATE ORDERED INDEX ok_pp ON Kid (parentId, pos)`)
	rng := rand.New(rand.NewSource(seed))
	nPar := 32 + rng.Intn(16)
	for p := 1; p <= nPar; p++ {
		db.MustExec(fmt.Sprintf(`INSERT INTO Par VALUES (%d, %d, 'p%d')`, p, rng.Intn(6), p))
	}
	nKid := 300 + rng.Intn(300)
	ids := rng.Perm(nKid)
	for _, i := range ids {
		val := fmt.Sprintf("'v%d'", rng.Intn(8))
		if rng.Intn(9) == 0 {
			val = "NULL"
		}
		db.MustExec(fmt.Sprintf(`INSERT INTO Kid VALUES (%d, %d, %d, %d, %s)`,
			1000+i, 1+rng.Intn(nPar), rng.Intn(6), rng.Intn(10), val))
	}
	// Holes in the rowid space: partitions must skip dead rows exactly the
	// way the serial scan does.
	for i := 0; i < 30; i++ {
		db.MustExec(fmt.Sprintf(`DELETE FROM Kid WHERE id = %d`, 1000+rng.Intn(nKid)))
	}
	return db
}

// parallelQueries covers every shape the fan-out touches: partitioned heap
// scans, range and ordered scans (elided sorts), indexed and transient hash
// joins, parallel aggregation, DISTINCT, merges, CTE chains, IN-subqueries.
var parallelQueries = []string{
	`SELECT id, pos, val FROM Kid WHERE pos >= 2`,
	`SELECT id, parentId FROM Kid`,
	`SELECT id FROM Kid WHERE id > 1100 AND id <= 1400 ORDER BY id`,
	`SELECT parentId, pos, id FROM Kid ORDER BY parentId, pos`,
	`SELECT parentId, pos, id FROM Kid ORDER BY parentId DESC, pos DESC`,
	`SELECT pos, val, id FROM Kid ORDER BY val, id`,
	`SELECT P.name, K.id FROM Par P, Kid K WHERE K.parentId = P.id AND K.pos < 4`,
	`SELECT P.id, K.id FROM Par P, Kid K WHERE K.grp = P.grp ORDER BY 1, 2`,
	`SELECT COUNT(id), MIN(pos), MAX(id) FROM Kid WHERE pos >= 1`,
	`SELECT COUNT(id) + MIN(id) FROM Kid`,
	`SELECT DISTINCT grp FROM Kid ORDER BY grp`,
	`SELECT DISTINCT val FROM Kid WHERE pos > 1`,
	`SELECT id FROM Kid WHERE pos = 1 UNION ALL SELECT id FROM Kid WHERE pos = 2 ORDER BY id`,
	`WITH a(id, grp) AS (SELECT id, grp FROM Kid WHERE pos >= 1),
	      b(id) AS (SELECT a.id FROM a, Par P WHERE a.grp = P.grp)
	 SELECT id FROM b ORDER BY id`,
	`SELECT id FROM Kid WHERE parentId IN (SELECT id FROM Par WHERE grp = 2) ORDER BY id`,
	`SELECT K.parentId, COUNT(K.id) FROM Kid K, Par P WHERE K.parentId = P.id AND P.grp < 4`,
}

func TestParallelSerialEquivalence(t *testing.T) {
	for _, seed := range []int64{3, 7, 19, 41} {
		db := buildParDoc(t, seed)
		for _, sql := range parallelQueries {
			db.SetParallelism(1)
			want, err := db.Query(sql)
			if err != nil {
				t.Fatalf("seed %d serial: %q: %v", seed, sql, err)
			}
			for _, k := range []int{2, 4, 8} {
				db.SetParallelism(k)
				got, err := db.Query(sql)
				if err != nil {
					t.Fatalf("seed %d k=%d: %q: %v", seed, k, sql, err)
				}
				if rowsString(got) != rowsString(want) {
					t.Errorf("seed %d k=%d: %q diverges from serial\nserial:\n%s\nparallel:\n%s",
						seed, k, sql, rowsString(want), rowsString(got))
				}
			}
		}
	}
}

// TestParallelUpdateDeleteEquivalence runs the same randomized DML script
// against a serial and a parallel copy of the same document; final table
// contents must match exactly, including after a mid-statement unique
// violation rolls an UPDATE back.
func TestParallelUpdateDeleteEquivalence(t *testing.T) {
	for _, seed := range []int64{5, 13} {
		serial := buildParDoc(t, seed)
		paral := buildParDoc(t, seed)
		paral.SetParallelism(4)
		script := []string{
			`UPDATE Kid SET pos = pos + 1 WHERE pos >= 3`,
			`UPDATE Kid SET val = 'bumped' WHERE grp = 2 AND pos < 5`,
			`UPDATE Kid SET grp = grp + 10 WHERE parentId IN (SELECT id FROM Par WHERE grp = 1)`,
			`DELETE FROM Kid WHERE pos > 8`,
			`DELETE FROM Kid WHERE grp = 13`,
		}
		for _, sql := range script {
			ns, err := serial.Exec(sql)
			if err != nil {
				t.Fatalf("seed %d serial: %q: %v", seed, sql, err)
			}
			np, err := paral.Exec(sql)
			if err != nil {
				t.Fatalf("seed %d parallel: %q: %v", seed, sql, err)
			}
			if ns != np {
				t.Fatalf("seed %d: %q affected %d rows serial, %d parallel", seed, sql, ns, np)
			}
		}
		// A full-scan UPDATE that violates id uniqueness partway through:
		// both copies must report the error and roll the statement back.
		bad := `UPDATE Kid SET id = 77 WHERE pos >= 0`
		if _, err := serial.Exec(bad); err == nil || !strings.Contains(err.Error(), "duplicate") {
			t.Fatalf("seed %d serial: expected duplicate error, got %v", seed, err)
		}
		if _, err := paral.Exec(bad); err == nil || !strings.Contains(err.Error(), "duplicate") {
			t.Fatalf("seed %d parallel: expected duplicate error, got %v", seed, err)
		}
		dump := `SELECT id, parentId, grp, pos, val FROM Kid ORDER BY id`
		a, err := serial.Query(dump)
		if err != nil {
			t.Fatal(err)
		}
		b, err := paral.Query(dump)
		if err != nil {
			t.Fatal(err)
		}
		if rowsString(a) != rowsString(b) {
			t.Errorf("seed %d: table contents diverge after DML script\nserial:\n%s\nparallel:\n%s",
				seed, rowsString(a), rowsString(b))
		}
	}
}

func TestParallelStatsCounters(t *testing.T) {
	db := buildParDoc(t, 9)
	db.SetParallelism(4)
	db.ResetStats()
	if _, err := db.Query(`SELECT id, pos FROM Kid WHERE pos >= 0`); err != nil {
		t.Fatal(err)
	}
	st := db.Stats()
	if st.ParallelWorkers < 2 {
		t.Errorf("ParallelWorkers = %d, want >= 2", st.ParallelWorkers)
	}
	if st.PartitionsScanned < st.ParallelWorkers {
		t.Errorf("PartitionsScanned = %d, want >= workers (%d)", st.PartitionsScanned, st.ParallelWorkers)
	}
	if st.ExchangeBatches < st.PartitionsScanned {
		t.Errorf("ExchangeBatches = %d, want >= partitions (%d)", st.ExchangeBatches, st.PartitionsScanned)
	}
}

// TestParallelSmallInputStaysSerial: inputs under parMinRows must not fan
// out regardless of the configured budget.
func TestParallelSmallInputStaysSerial(t *testing.T) {
	db := NewDB()
	db.MustExec(`CREATE TABLE t (id INTEGER, x INTEGER)`)
	for i := 0; i < parMinRows-1; i++ {
		db.MustExec(fmt.Sprintf(`INSERT INTO t VALUES (%d, %d)`, i, i%7))
	}
	db.SetParallelism(8)
	db.ResetStats()
	if _, err := db.Query(`SELECT id FROM t WHERE x > 2`); err != nil {
		t.Fatal(err)
	}
	if st := db.Stats(); st.ParallelWorkers != 0 {
		t.Errorf("small input fanned out: ParallelWorkers = %d", st.ParallelWorkers)
	}
}

func TestParallelExplainRendering(t *testing.T) {
	db := buildParDoc(t, 11)
	db.SetParallelism(4)
	plan, err := db.Explain(`SELECT id, pos FROM Kid WHERE pos >= 2`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "Exchange (workers=4, ordered)") {
		t.Errorf("plan missing Exchange line:\n%s", plan)
	}
	if !strings.Contains(plan, "ParallelScan(k=4) Kid") {
		t.Errorf("plan missing ParallelScan line:\n%s", plan)
	}
	plan, err = db.Explain(`UPDATE Kid SET pos = 0 WHERE val = 'v1'`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "ParallelScan(k=") {
		t.Errorf("DML plan missing parallel match line:\n%s", plan)
	}
	// Serial budget renders the serial plan.
	db.SetParallelism(1)
	plan, err = db.Explain(`SELECT id, pos FROM Kid WHERE pos >= 2`)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(plan, "Exchange") || strings.Contains(plan, "Parallel") {
		t.Errorf("serial plan shows parallel operators:\n%s", plan)
	}
}

// TestConcurrentParallelReaders drives parallel queries from several client
// goroutines at once — the fan-out spawns workers under a shared db.mu, and
// the race detector checks the whole arrangement.
func TestConcurrentParallelReaders(t *testing.T) {
	db := buildParDoc(t, 17)
	db.SetParallelism(4)
	want := make([]string, len(parallelQueries))
	db.SetParallelism(1)
	for i, sql := range parallelQueries {
		r, err := db.Query(sql)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = rowsString(r)
	}
	db.SetParallelism(4)
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < len(parallelQueries); i++ {
				q := (i + g) % len(parallelQueries)
				r, err := db.Query(parallelQueries[q])
				if err != nil {
					errs <- fmt.Errorf("reader %d: %q: %v", g, parallelQueries[q], err)
					return
				}
				if got := rowsString(r); got != want[q] {
					errs <- fmt.Errorf("reader %d: %q diverged under concurrency", g, parallelQueries[q])
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

package relational

import (
	"errors"
	"fmt"
)

// Multi-version concurrency control. The PR 3 design held the writer lock
// from BEGIN to COMMIT, so one open transaction stalled every concurrent
// reconstruction. Now the exclusive lock covers only individual statements
// and the commit critical section; between them an open transaction's
// uncommitted writes stay in the tables as *marked* versions that no other
// snapshot can see, with the pre-images threaded onto per-row version
// chains (the undo log doubles as the chain builder). Readers take the
// shared lock per query and evaluate visibility against a snapshot
// timestamp; they never wait for an open transaction, only for the short
// statement/commit critical sections.
//
// Mode rule: version chains exist only while someone could observe an
// intermediate state — that is, while at least one transaction snapshot is
// registered (every explicit transaction registers its own at Begin). With
// no snapshots registered, writes take the original physical path
// (mutate-in-place + undo pre-images) untouched: serial workloads keep
// byte-identical behavior and the 0 allocs/row read pins, because every
// table's version counter stays at zero and readers never call into the
// visibility slow path.
//
// Stamps: begin/end fields hold either a committed stamp (an allocation of
// db.commitTS under the writer lock) or an uncommitted mark, markBit|txnID.
// A snapshot {ts, self} sees a version iff its begin is committed ≤ ts or
// is self's own mark, and its end is unset, committed > ts, or a foreign
// mark. Default readers use ts = allTS (every committed stamp) because the
// shared lock they hold excludes commits for the duration of their query.

// markBit distinguishes an uncommitted mark (markBit|txnID) from a
// committed stamp in a version's begin/end field.
const markBit = uint64(1) << 63

// allTS is the highest committed timestamp: a snapshot at allTS sees every
// committed version and no foreign marks.
const allTS = markBit - 1

// rowMeta is the version metadata of a heap row (the newest version lives
// in t.rows[rid] itself). The zero value means "plain committed row":
// begin 0 = born visible to everyone, end 0 = never deleted, no chain.
type rowMeta struct {
	begin uint64
	end   uint64
	older *rowVersion
}

// rowVersion is one superseded version on a row's chain, newest first. row
// is a detached pre-image copy; begin/end bound its visibility window
// (end is the stamp of the transaction that superseded or deleted it).
type rowVersion struct {
	begin uint64
	end   uint64
	row   []Value
	older *rowVersion
}

// snapshot is a reader's view: every version committed at or before ts,
// plus the uncommitted marks of transaction self (0 = none).
type snapshot struct {
	ts   uint64
	self uint64
}

// sees reports whether a version bounded by (begin, end) is visible.
func (sn snapshot) sees(begin, end uint64) bool {
	if begin != 0 {
		if begin&markBit != 0 {
			if begin != markBit|sn.self {
				return false // someone else's uncommitted write
			}
		} else if begin > sn.ts {
			return false // committed after the snapshot
		}
	}
	if end != 0 {
		if end&markBit != 0 {
			if end == markBit|sn.self {
				return false // deleted/superseded by self
			}
		} else if end <= sn.ts {
			return false // deleted/superseded before the snapshot
		}
	}
	return true
}

// isMark reports whether a begin/end field holds an uncommitted mark.
func isMark(v uint64) bool { return v&markBit != 0 }

// visibleRow returns the version of row rid visible to sn, or nil. The
// single-version fast path (t.vers == 0) is a plain slice load; hot loops
// gate on t.vers themselves and only call in here when chains can exist.
// Chain hops are counted into VersionChainHops — structurally zero for
// single-version tables.
func (t *Table) visibleRow(rid int, sn snapshot) []Value {
	if rid < 0 || rid >= len(t.rows) {
		return nil
	}
	if t.vers == 0 {
		if t.pg != nil {
			return t.pg.rowRef(rid)
		}
		return t.rows[rid]
	}
	var m rowMeta
	if rid < len(t.meta) {
		m = t.meta[rid]
	}
	if sn.sees(m.begin, m.end) {
		if t.pg != nil {
			return t.pg.rowRef(rid)
		}
		return t.rows[rid]
	}
	hops := int64(0)
	for v := m.older; v != nil; v = v.older {
		hops++
		if sn.sees(v.begin, v.end) {
			if t.db != nil {
				t.db.stats.VersionChainHops.Add(hops)
			}
			return v.row
		}
	}
	if hops > 0 && t.db != nil {
		t.db.stats.VersionChainHops.Add(hops)
	}
	return nil
}

// visKeep returns the scanRangeVis entry filter enforcing snapshot
// visibility over a versioned table's ordered index, or nil for a
// single-version table (no filtering, no closure allocation). An entry
// survives when the snapshot-visible version of its row actually carries
// the entry's key — which simultaneously hides invisible rows and
// deduplicates rows indexed under both old and new keys.
func (t *Table) visKeep(oidx *orderedIndex, sn snapshot) func(k bkey) bool {
	if t.vers == 0 {
		return nil
	}
	return func(k bkey) bool {
		row := t.visibleRow(k.rid, sn)
		return row != nil && compareBVals(k, oidx.keyFor(k.rid, row)) == 0
	}
}

// ensureMeta grows the metadata slice to cover every current row.
func (t *Table) ensureMeta() {
	n := len(t.rows)
	if len(t.meta) >= n {
		return
	}
	if cap(t.meta) >= n {
		// Slots past the old length may hold stale metadata from a
		// rolled-back insert suffix; clear before exposing them.
		old := len(t.meta)
		t.meta = t.meta[:n]
		clear(t.meta[old:])
		return
	}
	// Doubling growth: a bulk insert loop extends meta once per row, so an
	// exact-length reallocation here would be quadratic in table size.
	m := make([]rowMeta, n, max(2*cap(t.meta), n, 16))
	copy(m, t.meta)
	t.meta = m
}

// ErrWriteConflict is returned when first-committer-wins conflict detection
// aborts a statement: the table was written by a transaction that committed
// after this transaction's snapshot (or holds an uncommitted intent on it).
// The failed statement is rolled back; the transaction itself stays open.
var ErrWriteConflict = errors.New("relational: write conflict (first committer wins)")

// errIntentBusy makes an autocommit statement wait: the table is claimed by
// an open explicit transaction. The statement rolls back, releases the
// writer lock, waits for the holder to finish, and retries.
var errIntentBusy = errors.New("relational: table claimed by an open transaction")

// writeCtx is the active statement's writer identity while versioned mode
// is on (db.writer is nil during physical-mode statements). claimed
// accumulates the tables this transaction holds write intents on; for an
// explicit transaction it spans statements until commit/rollback.
type writeCtx struct {
	txnID    uint64
	snapTS   uint64
	explicit bool
	claimed  []*Table
}

// snap returns the snapshot the writer's statements read under.
func (w *writeCtx) snap() snapshot { return snapshot{ts: w.snapTS, self: w.txnID} }

// claimIntentLocked takes (or validates) the active writer's intent on t,
// enforcing first-committer-wins. Explicit transactions never wait: a
// foreign intent or a commit to t after their snapshot is an immediate
// ErrWriteConflict (no-wait keeps the scheme deadlock-free). Autocommit
// statements return errIntentBusy on a foreign intent and retry after the
// holder finishes; they read at allTS, so a prior commit is not a conflict.
// Caller holds the writer lock; a nil db.writer (physical mode) is a no-op.
func (db *DB) claimIntentLocked(t *Table) error {
	w := db.writer
	if w == nil {
		return nil
	}
	if t.intentTxn == w.txnID {
		return nil
	}
	if t.intentTxn != 0 {
		db.stats.WriteConflicts.Add(1)
		db.met.conflicts.Add(1)
		if w.explicit {
			return fmt.Errorf("%w: table %s is claimed by a concurrent transaction", ErrWriteConflict, t.Name)
		}
		return errIntentBusy
	}
	if w.explicit && t.lastCommit > w.snapTS {
		db.stats.WriteConflicts.Add(1)
		db.met.conflicts.Add(1)
		return fmt.Errorf("%w: table %s was modified after this transaction began", ErrWriteConflict, t.Name)
	}
	t.intentTxn = w.txnID
	w.claimed = append(w.claimed, t)
	return nil
}

// releaseIntentsLocked drops the writer's table intents and wakes every
// autocommit statement parked on one. Caller holds the writer lock.
func (db *DB) releaseIntentsLocked(w *writeCtx) {
	if len(w.claimed) == 0 {
		return
	}
	for _, t := range w.claimed {
		if t.intentTxn == w.txnID {
			t.intentTxn = 0
		}
	}
	w.claimed = w.claimed[:0]
	close(db.intentCh)
	db.intentCh = make(chan struct{})
}

// stampCommitLocked allocates the next commit stamp, flips the undo log's
// uncommitted marks to it, records it as the touched tables' last commit,
// and queues the touched rows for vacuum. Physical-mode commits (no
// versioned entries) still get a stamp and lastCommit update, keeping
// first-committer-wins exact across mode transitions. Caller holds the
// writer lock.
func (db *DB) stampCommitLocked(log *undoLog, w *writeCtx) uint64 {
	db.commitTS++
	stamp := db.commitTS
	if w != nil {
		mark := markBit | w.txnID
		for i := range log.entries {
			e := &log.entries[i]
			if e.v == nil {
				continue
			}
			t := e.t
			if e.rid < len(t.meta) {
				m := &t.meta[e.rid]
				if m.begin == mark {
					m.begin = stamp
				}
				if m.end == mark {
					m.end = stamp
				}
			}
			for v := e.v.node; v != nil; v = v.older {
				flipped := false
				if v.begin == mark {
					v.begin = stamp
					flipped = true
				}
				if v.end == mark {
					v.end = stamp
					flipped = true
				}
				if !flipped {
					break // older nodes predate this transaction
				}
			}
			db.pendingVac = append(db.pendingVac, vacRec{t: t, rid: e.rid})
		}
	}
	for t := range log.touched {
		t.lastCommit = stamp
	}
	return stamp
}

// vacRec queues one row for version-chain truncation.
type vacRec struct {
	t   *Table
	rid int
}

// vacuumHorizonLocked returns the oldest registered snapshot timestamp —
// versions whose end precedes it are invisible to every current and future
// reader. With no snapshots registered the horizon is allTS: everything
// committed is current, so all chains collapse.
func (db *DB) vacuumHorizonLocked() uint64 {
	h := allTS
	for _, ts := range db.snaps {
		if ts < h {
			h = ts
		}
	}
	return h
}

// vacuumPendingLocked truncates version chains no live snapshot can see,
// retrying rows still pinned (open marks, or a horizon behind their
// stamps) on the next pass. Runs at commit, rollback, and snapshot
// unregistration — when the last snapshot goes away, every table returns
// to vers == 0 and the single-version fast paths resume. Caller holds the
// writer lock.
func (db *DB) vacuumPendingLocked() {
	if len(db.pendingVac) == 0 {
		return
	}
	before := db.stats.VersionsVacuumed.Load()
	horizon := db.vacuumHorizonLocked()
	keep := db.pendingVac[:0]
	for _, r := range db.pendingVac {
		if !r.t.vacuumRow(r.rid, horizon, db) {
			keep = append(keep, r)
		}
	}
	for i := len(keep); i < len(db.pendingVac); i++ {
		db.pendingVac[i] = vacRec{}
	}
	db.pendingVac = keep
	if n := db.stats.VersionsVacuumed.Load() - before; n > 0 {
		db.met.vacuumReclaim.Observe(n)
	}
}

// vacuumRow truncates what the horizon allows of row rid's version state,
// returning true when the row is back to plain committed form (nothing
// left to vacuum). Caller holds the writer lock.
func (t *Table) vacuumRow(rid int, horizon uint64, db *DB) bool {
	if rid >= len(t.meta) {
		return true
	}
	m := &t.meta[rid]
	if m.begin == 0 && m.end == 0 && m.older == nil {
		return true
	}
	if isMark(m.begin) || isMark(m.end) {
		return false // owned by an open transaction
	}
	if m.end != 0 && m.end <= horizon {
		// Committed delete behind the horizon: physically remove the row
		// and its whole chain, exactly as a physical-mode delete would have.
		// Paged: fault the row in, dirty its page (so the nil slot written
		// below cannot be undone by an eviction/refault cycle), then kill
		// the directory entry — the page file drops the record at the next
		// checkpoint.
		if row := t.curRow(rid); row != nil {
			t.pgMark(rid)
			for _, idx := range t.index {
				if v := row[idx.col]; !v.IsNull() {
					idx.remove(v, rid)
				}
			}
			for _, oidx := range t.orderedList {
				oidx.tree.remove(oidx.keyFor(rid, row))
			}
			t.rows[rid] = nil
			t.pgDrop(rid)
		}
		n := int64(1)
		for v := m.older; v != nil; v = v.older {
			t.dropVersionKeys(rid, v.row, nil)
			n++
		}
		*m = rowMeta{}
		t.vers--
		db.stats.VersionsVacuumed.Add(n)
		return true
	}
	// Prune the chain suffix no snapshot can see. Chain ends decrease going
	// older (each node was superseded before the one in front of it), so
	// everything past the first prunable node goes with it. A pruned
	// version's index keys come out only when no surviving version — the
	// current row or a retained chain node — still carries them.
	var cut *rowVersion
	for link := &m.older; *link != nil; link = &(*link).older {
		if v := *link; v.end <= horizon {
			cut, *link = v, nil
			break
		}
	}
	if cut != nil {
		survivors := [][]Value{t.curRow(rid)}
		for v := m.older; v != nil; v = v.older {
			survivors = append(survivors, v.row)
		}
		n := int64(0)
		for v := cut; v != nil; v = v.older {
			t.dropVersionKeys(rid, v.row, survivors)
			n++
		}
		db.stats.VersionsVacuumed.Add(n)
	}
	if m.begin != 0 && m.begin <= horizon && m.older == nil && m.end == 0 {
		// Every snapshot sees this version: finalize to plain form.
		*m = rowMeta{}
		t.vers--
		return true
	}
	return m.begin == 0 && m.end == 0 && m.older == nil
}

// dropVersionKeys removes the index entries that belong only to a pruned
// version: keys no surviving version of the row still carries (survivors
// nil = the row is gone entirely). Removals tolerate already-absent
// entries, so values shared across pruned versions come out exactly once.
func (t *Table) dropVersionKeys(rid int, old []Value, survivors [][]Value) {
	if old == nil {
		return
	}
	for _, idx := range t.index {
		v := old[idx.col]
		if v.IsNull() {
			continue
		}
		carried := false
		for _, s := range survivors {
			if s != nil && compareValues(v, s[idx.col]) == 0 {
				carried = true
				break
			}
		}
		if !carried {
			idx.remove(v, rid)
		}
	}
	for _, oidx := range t.orderedList {
		k := oidx.keyFor(rid, old)
		carried := false
		for _, s := range survivors {
			if s != nil && compareBKeys(k, oidx.keyFor(rid, s)) == 0 {
				carried = true
				break
			}
		}
		if !carried {
			oidx.tree.remove(k)
		}
	}
}

// Vacuum forces a full vacuum pass outside the commit path — test and
// maintenance surface; commits piggyback the same pass automatically.
func (db *DB) Vacuum() {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.vacuumPendingLocked()
}

package relational

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
)

// Parallel execution. The serial Volcano pipeline (iter.go) is the reference
// semantics; everything here is an opt-in fan-out that must reproduce its
// output stream exactly. The one idea that makes that cheap: partition the
// driving level into contiguous chunks of its serial enumeration (ascending
// rowid windows for heap scans, contiguous slices of the once-walked B+tree
// bucket for ordered access), run a full clone of the pipeline per chunk,
// and concatenate the per-chunk outputs in chunk order. The concatenation
// IS the serial stream, row for row — so ORDER BY elision, merge contracts,
// DISTINCT first-occurrence semantics, and the randomized equivalence tests
// all hold by construction, with no re-sorting merge step to get wrong.
//
// Workers run on goroutines spawned by the statement's executing goroutine,
// which holds db.mu (shared for queries, exclusive for DML); workers take
// no locks of their own and only read shared structures (tables, indexes,
// plans, the intern table), so the lock discipline is unchanged.

const (
	// parMinRows: driving inputs smaller than this stay serial — goroutine
	// and channel setup costs more than the scan itself.
	parMinRows = 64
	// parChunkRows: minimum rows per partition; the fan-out never splits
	// finer than this.
	parChunkRows = 32
	// parBatchRows: rows per exchange batch — one channel operation
	// amortizes across this many rows.
	parBatchRows = 128
	// parChanBatches: batches buffered per partition channel before its
	// producer blocks.
	parChanBatches = 4
)

// SetParallelism sets the per-statement worker budget: statements may fan
// out to at most n goroutines. n <= 1 (the default) keeps every statement
// on its calling goroutine. Parallel plans produce byte-identical result
// streams to serial ones, so this is purely a throughput knob. Must not be
// called while a transaction is open on the same handle (it takes the
// writer lock).
func (db *DB) SetParallelism(n int) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if n < 1 {
		n = 1
	}
	db.parallelism = n
}

// par returns the configured worker budget. Callers hold db.mu (any mode).
func (db *DB) par() int {
	if db.parallelism < 1 {
		return 1
	}
	return db.parallelism
}

// parWorkersFor sizes a fan-out over n driving rows; 1 means stay serial.
// Small inputs stay serial, each partition must get a useful chunk, and
// workers already running are subtracted so nested constructs (a CTE body
// inside a parallel wave, a subquery inside a worker) degrade to serial
// instead of oversubscribing the budget.
func (db *DB) parWorkersFor(n int) int {
	k := db.par()
	if k <= 1 || n < parMinRows {
		return 1
	}
	if max := n / parChunkRows; k > max {
		k = max
	}
	if active := int(db.parActive.Load()); active > 0 {
		k -= active
	}
	if k < 2 {
		return 1
	}
	return k
}

// buildWorkersFor sizes the parallel phase of a shared hash-join build.
// Unlike parWorkersFor it ignores parActive: the build runs inside a
// sync.Once while every other worker of the query blocks on it, so the
// budget is idle and free to spend.
func (db *DB) buildWorkersFor(n int) int {
	k := db.par()
	if k <= 1 || n < parMinRows {
		return 1
	}
	if max := n / parChunkRows; k > max {
		k = max
	}
	if k < 2 {
		return 1
	}
	return k
}

// cteWorkers sizes the fan-out for CTE materialization: up to one worker
// per CTE in a dependency wave. CTE bodies are whole queries of unknown
// cost, so there is no row-count gate — but a single CTE (or budget 1)
// stays serial.
func (db *DB) cteWorkers(n int) int {
	k := db.par()
	if k <= 1 || n < 2 {
		return 1
	}
	if active := int(db.parActive.Load()); active > 0 {
		k -= active
	}
	if k < 2 {
		return 1
	}
	if k > n {
		k = n
	}
	return k
}

// levelPart is one partition of a driving level's enumeration: a [lo, hi)
// window over the heap/CTE row slice, or a pre-walked chunk of a B+tree
// bucket (key-ordered rowids). Partitions are contiguous and ordered —
// concatenating their outputs in partition order reproduces the serial
// enumeration exactly, which is what preserves every ordering contract.
type levelPart struct {
	lo, hi int
	bucket []int
}

// bodyWorker is one worker's private clone of a body pipeline: its own
// binding, evaluator, and iterator chain. Per the rowIter buffer-reuse
// contract every buffer in the chain is single-consumer, so cloning the
// chain per worker is exactly what makes the contract hold across
// goroutines.
type bodyWorker struct {
	sel   *SimpleSelect
	bind  *binding
	ev    *exprEval
	chain bindIter
	out   rowIter // projection over chain; nil for aggregate bodies
}

// buildBodyWorker clones the serial pipeline construction of buildBodyIter
// for one partition, with hash-join levels sharing the query-wide sharded
// table instead of building private ones.
func (db *DB) buildBodyWorker(bc *bodyCompiled, env *execEnv, part *levelPart, shared []*parHashTable) *bodyWorker {
	ev := newEval(db, env)
	bind := &binding{
		names: make([]string, len(bc.srcs)),
		srcs:  bc.srcs,
		rows:  make([][]Value, len(bc.srcs)),
	}
	for i, src := range bc.srcs {
		bind.names[i] = strings.ToLower(src.name)
	}
	var chain bindIter = &oneIter{}
	for pos, lp := range bc.plan.levels {
		li := &levelIter{
			db:    db,
			ev:    ev,
			bind:  bind,
			src:   bc.srcs[lp.slot],
			lp:    lp,
			ap:    bc.access[pos],
			input: chain,
			sn:    env.snap,
		}
		switch li.ap.kind {
		case accessHashJoin:
			li.skipCond = li.ap.probe.cond
		case accessIndexProbe:
			// Same visibility rule as buildBodyIter: persistent-index
			// buckets on versioned tables may hold superseded entries.
			if li.src.table == nil || li.src.table.vers == 0 {
				li.skipCond = li.ap.probe.cond
			}
		}
		if pos == 0 {
			li.part = part
		}
		li.shared = shared[pos]
		if an := env.an; an != nil {
			// Workers fold scan/probe counts only (atomic, shared across the
			// K clones); no timing wrappers — summing wall time across
			// concurrent goroutines would overstate the level's cost.
			li.anm = an.op(bc, pos)
		}
		chain = li
	}
	w := &bodyWorker{sel: bc.sel, bind: bind, ev: ev, chain: chain}
	if !bc.aggregate {
		w.out = &projectIter{ev: ev, sel: bc.sel, bind: bind, input: chain}
	}
	return w
}

// buildParallelBody assembles the parallel form of a compiled body: K
// pipeline clones over K driving-level partitions, feeding an ordered
// exchange (or, for aggregate bodies, per-worker accumulators merged at
// the end). Called only when bodyWorkers chose k > 1.
func (db *DB) buildParallelBody(bc *bodyCompiled, env *execEnv, k int) rowIter {
	shared := make([]*parHashTable, len(bc.plan.levels))
	for pos := range bc.plan.levels {
		if bc.access[pos].kind == accessHashJoin {
			shared[pos] = &parHashTable{db: db, sn: env.snap}
			if an := env.an; an != nil {
				shared[pos].anm = an.op(bc, pos)
			}
		}
	}
	parts := make([]*levelPart, k)
	workers := make([]*bodyWorker, k)
	for w := 0; w < k; w++ {
		parts[w] = &levelPart{}
		workers[w] = db.buildBodyWorker(bc, env, parts[w], shared)
	}
	// Partitions are computed at Open time (bucket walks can error and the
	// data may change between statement executions of a cached plan).
	prep := func() error { return db.partitionDriving(bc, env, parts) }
	var it rowIter
	if bc.aggregate {
		it = &parallelAggIter{db: db, sel: bc.sel, prep: prep, workers: workers}
	} else {
		it = &exchangeIter{db: db, prep: prep, workers: workers}
	}
	if an := env.an; an != nil {
		m := an.op(bc, anExchange)
		m.workers, m.parts = k, len(parts)
		it = &instrRow{in: it, m: m}
	}
	if bc.sel.Distinct {
		// The exchange emits the exact serial stream, so streaming first
		// occurrences above it preserves serial DISTINCT semantics.
		it = &distinctIter{input: it, it: db.intern}
		if an := env.an; an != nil {
			it = &instrRow{in: it, m: an.op(bc, anDistinct)}
		}
	}
	return it
}

// partitionDriving fills the per-worker partitions of the driving level:
// heap and CTE scans split into contiguous index windows; B+tree kinds walk
// their window once — driving-level bounds are necessarily uncorrelated
// (probe/range candidates only reference earlier-bound sources, and there
// are none) — and split the key-ordered bucket into contiguous chunks.
// Per-query access counters are charged here, once, exactly as the serial
// enumeration would charge them; per-row counters stay with the workers.
func (db *DB) partitionDriving(bc *bodyCompiled, env *execEnv, parts []*levelPart) error {
	lvl0 := bc.plan.levels[0]
	src := bc.srcs[lvl0.slot]
	ap := bc.access[0]
	var ctr levelCounters
	defer ctr.flush(db)
	if an := env.an; an != nil {
		// Registered after the flush defer, so it runs first (LIFO) while
		// the batch still holds the partition-cut charges.
		m := an.op(bc, 0)
		defer func() {
			m.scanned.Add(ctr.rowsScanned)
			m.probes.Add(ctr.indexProbes + ctr.rangeProbes)
		}()
	}
	if ap.kind == accessScan {
		ctr.fullScans++
		n := 0
		if src.table != nil {
			n = len(src.table.rows)
		} else {
			n = len(src.rows.Data)
		}
		spans := partitionSpans(n, len(parts))
		for w, p := range parts {
			p.lo, p.hi, p.bucket = spans[w][0], spans[w][1], nil
		}
		return nil
	}
	ev := newEval(db, env)
	bind := &binding{
		names: make([]string, len(bc.srcs)),
		srcs:  bc.srcs,
		rows:  make([][]Value, len(bc.srcs)),
	}
	for i, s := range bc.srcs {
		bind.names[i] = strings.ToLower(s.name)
	}
	bucket, err := orderedBucketFor(&ctr, ev, &ap, src.table, bind, env.snap, nil)
	if err != nil {
		return err
	}
	chunks := splitBucket(bucket, len(parts))
	for w, p := range parts {
		p.lo, p.hi, p.bucket = 0, 0, chunks[w]
	}
	return nil
}

// startPartition begins the driving level's slice of a partitioned
// enumeration. The per-query access counters (full scan, range probe) were
// charged when the partitions were cut; workers charge only per-row work.
func (li *levelIter) startPartition() error {
	switch li.ap.kind {
	case accessScan:
		li.scanPos = li.part.lo
	default:
		li.bucket = li.part.bucket
		li.bucketPos = 0
	}
	return nil
}

// ---- ordered exchange ----

// rowBatch is one vector of rows in flight from a worker to the exchange
// consumer: values live contiguously in arena, offs marks row boundaries
// (len(offs) = rows+1). Batches recycle through the exchange's free list,
// so a steady stream reaches a high-water mark and stops allocating.
type rowBatch struct {
	arena []Value
	offs  []int
}

func (b *rowBatch) reset() {
	b.arena = b.arena[:0]
	b.offs = append(b.offs[:0], 0)
}

func (b *rowBatch) rows() int { return len(b.offs) - 1 }

func (b *rowBatch) row(i int) []Value { return b.arena[b.offs[i]:b.offs[i+1]] }

func (b *rowBatch) add(row []Value) {
	b.arena = append(b.arena, row...)
	b.offs = append(b.offs, len(b.arena))
}

// exchangeIter is the ordered exchange operator: K workers drain their
// partition's pipeline clone into bounded channels of row batches, and the
// consumer concatenates the partition streams in partition order. Workers
// produce concurrently — partition 1 fills its channel while partition 0
// streams out — and because partitions are contiguous slices of the serial
// driving enumeration, the concatenated output is row-for-row the serial
// pipeline's. Each worker copies its pipeline's reused row buffer into the
// batch (no buffer crosses goroutines); the consumer hands rows out
// straight from the current batch's arena, valid until the next Next per
// the rowIter contract.
type exchangeIter struct {
	db      *DB
	prep    func() error
	workers []*bodyWorker

	chans []chan *rowBatch
	errs  []error
	quit  chan struct{}
	free  chan *rowBatch
	wg    sync.WaitGroup

	cur   int
	batch *rowBatch
	pos   int

	open    bool
	batches int64
}

func (x *exchangeIter) Open() error {
	if x.open {
		x.shutdown()
	}
	x.cur, x.batch, x.pos, x.batches = 0, nil, 0, 0
	if err := x.prep(); err != nil {
		return err
	}
	k := len(x.workers)
	x.db.parActive.Add(int64(k))
	x.chans = make([]chan *rowBatch, k)
	x.errs = make([]error, k)
	x.quit = make(chan struct{})
	if x.free == nil {
		x.free = make(chan *rowBatch, k*(parChanBatches+2))
	}
	x.wg.Add(k)
	for w := 0; w < k; w++ {
		x.chans[w] = make(chan *rowBatch, parChanBatches)
		go x.run(w)
	}
	x.open = true
	return nil
}

// run drains one worker's pipeline into its partition channel. The error
// slot is written before the deferred close, so the consumer observing the
// closed channel also observes the error (channel close happens-before the
// receive that reports it closed).
func (x *exchangeIter) run(w int) {
	defer x.wg.Done()
	it := x.workers[w].out
	ch := x.chans[w]
	defer close(ch)
	if err := it.Open(); err != nil {
		// Close even though Open failed: a level may have opened (and
		// counted work) before a later one errored, and its batched
		// counters must still flush (iter.go).
		it.Close()
		x.errs[w] = err
		return
	}
	defer it.Close()
	batch := x.getBatch()
	for {
		row, ok, err := it.Next()
		if err != nil {
			x.errs[w] = err
			return
		}
		if !ok {
			break
		}
		batch.add(row)
		if batch.rows() >= parBatchRows {
			if !x.send(ch, batch) {
				return
			}
			batch = x.getBatch()
		}
	}
	if batch.rows() > 0 {
		x.send(ch, batch)
	}
}

// send delivers a batch unless the consumer has quit (early Close with the
// channel full — the select is what keeps producers from blocking forever).
func (x *exchangeIter) send(ch chan *rowBatch, b *rowBatch) bool {
	select {
	case ch <- b:
		return true
	case <-x.quit:
		return false
	}
}

func (x *exchangeIter) getBatch() *rowBatch {
	select {
	case b := <-x.free:
		b.reset()
		return b
	default:
	}
	b := &rowBatch{}
	b.reset()
	return b
}

func (x *exchangeIter) recycle(b *rowBatch) {
	select {
	case x.free <- b:
	default:
	}
}

func (x *exchangeIter) Next() ([]Value, bool, error) {
	for {
		if x.batch != nil {
			if x.pos < x.batch.rows() {
				row := x.batch.row(x.pos)
				x.pos++
				return row, true, nil
			}
			// The previous batch's rows are invalid as of this call (rowIter
			// contract), so it can go back to the producers.
			x.recycle(x.batch)
			x.batch = nil
		}
		if x.cur >= len(x.chans) {
			return nil, false, nil
		}
		b, ok := <-x.chans[x.cur]
		if !ok {
			if err := x.errs[x.cur]; err != nil {
				return nil, false, err
			}
			x.cur++
			continue
		}
		x.batches++
		x.batch, x.pos = b, 0
	}
}

func (x *exchangeIter) Close() { x.shutdown() }

// shutdown tears the fan-out down: signal quit, drain every channel so
// blocked producers unblock, join the workers, then flush the batched
// parallel counters — the levelCounters pattern, one atomic add per query
// rather than per batch.
func (x *exchangeIter) shutdown() {
	if !x.open {
		return
	}
	x.open = false
	close(x.quit)
	for _, ch := range x.chans {
		for range ch {
		}
	}
	x.wg.Wait()
	x.batch = nil
	k := int64(len(x.workers))
	x.db.parActive.Add(-k)
	x.db.stats.ParallelWorkers.Add(k)
	x.db.stats.PartitionsScanned.Add(k)
	if x.batches != 0 {
		x.db.stats.ExchangeBatches.Add(x.batches)
		x.batches = 0
	}
}

// ---- parallel aggregation ----

// parallelAggIter evaluates an aggregate body with per-worker accumulators
// merged at the end: each worker folds its partition of the join through
// its own accumulator set, and the merged leaves (COUNT sums, MIN/MAX
// combines) feed the same result renderer the serial aggIter uses.
// Aggregation is a barrier by nature, so this is aggregate algebra rather
// than row exchange — no batch traffic at all.
type parallelAggIter struct {
	db      *DB
	sel     *SimpleSelect
	prep    func() error
	workers []*bodyWorker
	buf     []Value
	done    bool
}

func (a *parallelAggIter) Open() error { a.done = false; return nil }
func (a *parallelAggIter) Close()      {}

func (a *parallelAggIter) Next() ([]Value, bool, error) {
	if a.done {
		return nil, false, nil
	}
	a.done = true
	if err := a.prep(); err != nil {
		return nil, false, err
	}
	k := len(a.workers)
	a.db.parActive.Add(int64(k))
	states := make([][]*aggAccumulator, k)
	errs := make([]error, k)
	var wg sync.WaitGroup
	for w := 0; w < k; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			states[w], errs[w] = a.workers[w].runAgg()
		}(w)
	}
	wg.Wait()
	a.db.parActive.Add(int64(-k))
	a.db.stats.ParallelWorkers.Add(int64(k))
	a.db.stats.PartitionsScanned.Add(int64(k))
	for _, err := range errs {
		if err != nil {
			return nil, false, err
		}
	}
	merged := make([]*aggAccumulator, len(a.sel.Exprs))
	for i := range merged {
		merged[i] = &aggAccumulator{}
	}
	for w := 0; w < k; w++ {
		for i, st := range states[w] {
			if st != nil {
				merged[i].merge(st)
			}
		}
	}
	ev := a.workers[0].ev
	if cap(a.buf) < len(a.sel.Exprs) {
		a.buf = make([]Value, len(a.sel.Exprs))
	}
	row := a.buf[:len(a.sel.Exprs)]
	for i, se := range a.sel.Exprs {
		row[i] = merged[i].result(ev, se.Expr)
	}
	return row, true, nil
}

// runAgg drains the worker's partition through private accumulators.
func (w *bodyWorker) runAgg() ([]*aggAccumulator, error) {
	if err := w.chain.Open(); err != nil {
		// Same as the exchange worker: flush whatever opened before the
		// error by closing the partial chain.
		w.chain.Close()
		return nil, err
	}
	defer w.chain.Close()
	state := make([]*aggAccumulator, len(w.sel.Exprs))
	for {
		ok, err := w.chain.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return state, nil
		}
		for i, se := range w.sel.Exprs {
			if state[i] == nil {
				state[i] = &aggAccumulator{}
			}
			if err := state[i].feed(w.ev, se.Expr, w.bind); err != nil {
				return nil, err
			}
		}
	}
}

// ---- shared hash-join table ----

// parHashTable is a query-wide transient hash-join table shared by every
// worker pipeline, sharded so the build itself parallelizes: build workers
// scan contiguous chunks of the source into per-(chunk, shard) sub-tables
// keyed by symKey, then one merge worker per shard concatenates the chunks
// in chunk order. Chunks are ascending index ranges, so every bucket's
// rowids come out ascending — bit-identical to the serial buildHash — and
// probe results are row-for-row the serial ones. After ensure the table is
// immutable; probes read without synchronization.
type parHashTable struct {
	db     *DB
	sn     snapshot // visibility snapshot for versioned build sources
	once   sync.Once
	shards []map[Value][]int
	err    error
	// anm, when non-nil, receives the build-side scan count for EXPLAIN
	// ANALYZE (analyze.go).
	anm *opMetrics
}

// ensure builds the table exactly once; every worker calls it and all but
// the first block until the build completes.
func (h *parHashTable) ensure(src *source, col string) error {
	h.once.Do(func() { h.err = h.build(src, col) })
	return h.err
}

// lookup returns the bucket for a non-NULL symKey-normalized probe value.
func (h *parHashTable) lookup(key Value) []int {
	return h.shards[int(shardOf(key)%uint64(len(h.shards)))][key]
}

func (h *parHashTable) build(src *source, col string) error {
	ci := src.columnIndex(col)
	if ci < 0 {
		return fmt.Errorf("relational: source %s has no column %q", src.name, col)
	}
	var rows [][]Value
	tbl := src.table
	vers := tbl != nil && tbl.vers > 0
	if tbl != nil {
		rows = tbl.rows
	} else {
		rows = src.rows.Data
	}
	it := h.db.intern
	var ctr levelCounters
	defer ctr.flush(h.db)
	if h.anm != nil {
		// Runs before the flush defer zeroes the batch (LIFO).
		defer func() { h.anm.scanned.Add(ctr.rowsScanned) }()
	}
	paged := tbl != nil && tbl.pg != nil
	k := h.db.buildWorkersFor(len(rows))
	if k <= 1 {
		// Small build side: one shard, built inline. Still shared — the
		// point is one build for all probing workers, not k duplicates.
		ht := make(map[Value][]int)
		var pc pageCursor
		for rid, row := range rows {
			if paged {
				row = pc.visibleAt(tbl, rid, h.sn)
			} else if vers {
				row = tbl.visibleRow(rid, h.sn)
			}
			if row == nil || row[ci].IsNull() {
				continue
			}
			ctr.rowsScanned++
			key := row[ci].symKey(it)
			ht[key] = append(ht[key], rid)
		}
		pc.release()
		ctr.hashJoinBuilds++
		h.shards = []map[Value][]int{ht}
		return nil
	}
	h.db.parActive.Add(int64(k))
	defer h.db.parActive.Add(int64(-k))
	spans := partitionSpans(len(rows), k)
	sub := make([][]map[Value][]int, k) // [chunk][shard]
	counts := make([]int64, k)
	var wg sync.WaitGroup
	for w := 0; w < k; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			local := make([]map[Value][]int, k)
			for s := range local {
				local[s] = make(map[Value][]int)
			}
			var scanned int64
			// Per-worker page cursor: workers fault and pin independently
			// under the pool mutex (paged tables only).
			var pc pageCursor
			for rid := spans[w][0]; rid < spans[w][1]; rid++ {
				var row []Value
				if paged {
					row = pc.visibleAt(tbl, rid, h.sn)
				} else {
					row = rows[rid]
					if vers {
						row = tbl.visibleRow(rid, h.sn)
					}
				}
				if row == nil || row[ci].IsNull() {
					continue
				}
				scanned++
				key := row[ci].symKey(it)
				s := int(shardOf(key) % uint64(k))
				local[s][key] = append(local[s][key], rid)
			}
			pc.release()
			sub[w] = local
			counts[w] = scanned
		}(w)
	}
	wg.Wait()
	shards := make([]map[Value][]int, k)
	for s := 0; s < k; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			m := make(map[Value][]int)
			for w := 0; w < k; w++ {
				for key, bucket := range sub[w][s] {
					m[key] = append(m[key], bucket...)
				}
			}
			shards[s] = m
		}(s)
	}
	wg.Wait()
	for _, c := range counts {
		ctr.rowsScanned += c
	}
	ctr.hashJoinBuilds++
	h.db.stats.ParallelWorkers.Add(int64(k))
	h.shards = shards
	return nil
}

// shardOf hashes a symKey-normalized value for shard routing. Quality only
// needs to spread keys across a handful of shards; correctness only needs
// determinism within one build, which holds because symKey normalization
// is a pure function of the value.
func shardOf(v Value) uint64 {
	if v.kind == KindText {
		// Uninterned text (interning disabled, or never-stored strings):
		// FNV-1a over the bytes.
		h := uint64(14695981039346656037)
		for i := 0; i < len(v.s); i++ {
			h ^= uint64(v.s[i])
			h *= 1099511628211
		}
		return h
	}
	// Int payloads (KindInt, interned-symbol keys): splitmix64 finisher.
	x := uint64(v.i) + 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// ---- parallel CTE materialization (concurrent SOU branches) ----

// materializeCTEsParallel evaluates a statement's CTEs in dependency
// waves: CTEs whose table references reach only already-published CTEs run
// concurrently — the Sorted Outer Union's sibling branches, which all hang
// off the same ancestor chain — and each wave publishes its results into
// env before the next starts, so workers only ever read the environment.
// Results are identical to the serial loop's: each CTE's evaluation
// depends only on its inputs, and publication order within a wave is a map
// insert.
func (db *DB) materializeCTEsParallel(s *SelectStmt, env *execEnv, wants map[string][]OrderKey, k int) error {
	n := len(s.With)
	// wave[i] = longest dependency chain below CTE i. Conservative: any
	// table name mentioned anywhere in the CTE's statement counts as a
	// use, so over-collection only costs wave width, never correctness.
	wave := make([]int, n)
	pos := make(map[string]int, n)
	maxWave := 0
	for i, cte := range s.With {
		refs := make(map[string]bool)
		collectTableRefs(cte.Select, refs)
		for name := range refs {
			if j, ok := pos[name]; ok && wave[j]+1 > wave[i] {
				wave[i] = wave[j] + 1
			}
		}
		if wave[i] > maxWave {
			maxWave = wave[i]
		}
		pos[strings.ToLower(cte.Name)] = i
	}
	results := make([]*Rows, n)
	for wv := 0; wv <= maxWave; wv++ {
		var idxs []int
		for i := range s.With {
			if wave[i] == wv {
				idxs = append(idxs, i)
			}
		}
		if err := db.runCTEWave(s, env, wants, idxs, k, results); err != nil {
			return err
		}
		for _, i := range idxs {
			env.ctes[strings.ToLower(s.With[i].Name)] = results[i]
		}
	}
	return nil
}

// runCTEWave materializes one wave of independent CTEs, fanning out to at
// most k workers pulling indexes off a shared cursor.
func (db *DB) runCTEWave(s *SelectStmt, env *execEnv, wants map[string][]OrderKey, idxs []int, k int, results []*Rows) error {
	if len(idxs) == 1 {
		i := idxs[0]
		cte := s.With[i]
		rows, err := db.materializeCTE(cte, env, wants[strings.ToLower(cte.Name)])
		if err != nil {
			return err
		}
		results[i] = rows
		return nil
	}
	if k > len(idxs) {
		k = len(idxs)
	}
	db.parActive.Add(int64(k))
	defer db.parActive.Add(int64(-k))
	errs := make([]error, len(idxs))
	var cursor atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	for g := 0; g < k; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				j := int(cursor.Add(1)) - 1
				if j >= len(idxs) || failed.Load() {
					return
				}
				cte := s.With[idxs[j]]
				rows, err := db.materializeCTE(cte, env, wants[strings.ToLower(cte.Name)])
				if err != nil {
					errs[j] = err
					failed.Store(true)
					return
				}
				results[idxs[j]] = rows
			}
		}()
	}
	wg.Wait()
	db.stats.ParallelWorkers.Add(int64(k))
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// collectTableRefs gathers every table or CTE name a statement could read:
// FROM items of every body, IN-subqueries in WHERE and select lists, and
// nested WITH statements.
func collectTableRefs(s *SelectStmt, out map[string]bool) {
	for _, cte := range s.With {
		collectTableRefs(cte.Select, out)
	}
	for _, body := range s.Body {
		for _, f := range body.From {
			out[strings.ToLower(f.Table)] = true
		}
		if body.Where != nil {
			collectExprRefs(body.Where, out)
		}
		for _, se := range body.Exprs {
			collectExprRefs(se.Expr, out)
		}
	}
}

func collectExprRefs(e Expr, out map[string]bool) {
	switch x := e.(type) {
	case *Binary:
		collectExprRefs(x.L, out)
		collectExprRefs(x.R, out)
	case *Unary:
		collectExprRefs(x.X, out)
	case *IsNull:
		collectExprRefs(x.X, out)
	case *InExpr:
		collectExprRefs(x.X, out)
		for _, l := range x.List {
			collectExprRefs(l, out)
		}
		if x.Select != nil {
			collectTableRefs(x.Select, out)
		}
	case *FuncCall:
		if x.Arg != nil {
			collectExprRefs(x.Arg, out)
		}
	}
}

// ---- parallel DML read phase ----

// matchScanParallel is the DML read phase's partitioned full scan: workers
// check the gated conjuncts over contiguous rowid windows with private
// evaluators and bindings, and the per-window match lists concatenate in
// window order — ascending rowids, exactly the serial scan's output. It
// runs under the exclusive statement lock; workers only read, and the
// mutation phase that follows applies serially under the undo log. On
// error, the lowest-window error is reported — the same error the serial
// ascending scan would have hit first.
func (db *DB) matchScanParallel(ctr *levelCounters, lp levelPlan, t *Table, name string, env *execEnv, k int) ([]int, error) {
	db.parActive.Add(int64(k))
	defer db.parActive.Add(int64(-k))
	spans := partitionSpans(len(t.rows), k)
	out := make([][]int, k)
	errs := make([]error, k)
	counts := make([]int64, k)
	var wg sync.WaitGroup
	for w := 0; w < k; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ev := newEval(db, env)
			bind := singleBinding(name, t, nil)
			var rids []int
			var scanned int64
			var pc pageCursor
			defer pc.release()
			for rid := spans[w][0]; rid < spans[w][1]; rid++ {
				var row []Value
				if t.pg != nil {
					row = pc.visibleAt(t, rid, env.snap)
				} else {
					row = t.rows[rid]
					if t.vers > 0 {
						row = t.visibleRow(rid, env.snap)
					}
				}
				if row == nil {
					continue
				}
				scanned++
				bind.rows[0] = row
				keep := true
				for _, c := range lp.conds {
					ok, err := ev.evalBool(c, bind)
					if err != nil {
						errs[w], counts[w] = err, scanned
						return
					}
					if !ok {
						keep = false
						break
					}
				}
				if keep {
					rids = append(rids, rid)
				}
			}
			out[w], counts[w] = rids, scanned
		}(w)
	}
	wg.Wait()
	db.stats.ParallelWorkers.Add(int64(k))
	db.stats.PartitionsScanned.Add(int64(k))
	for _, c := range counts {
		ctr.rowsScanned += c
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	var rids []int
	for _, part := range out {
		rids = append(rids, part...)
	}
	return rids, nil
}

// updateValsParallel computes an UPDATE's new values for every matched row
// before any mutation applies — the batched read phase. This is equivalent
// to the serial interleaved loop because SET expressions read only the
// current row (plus params and OLD), matched rowids are distinct, and the
// serial loop's IN-subquery memoization also snapshots pre-statement state
// (the subquery evaluates at the first row's SET, before any mutation).
// Mutations then apply serially under the undo log, so rollback semantics
// are untouched. On error nothing has mutated; the lowest-chunk error is
// reported, which is the error the serial ascending loop hits first.
func (db *DB) updateValsParallel(s *UpdateStmt, t *Table, rids []int, env *execEnv, k int) ([]Value, error) {
	db.parActive.Add(int64(k))
	defer db.parActive.Add(int64(-k))
	nset := len(s.Set)
	all := make([]Value, len(rids)*nset)
	spans := partitionSpans(len(rids), k)
	errs := make([]error, k)
	var wg sync.WaitGroup
	for w := 0; w < k; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ev := newEval(db, env)
			bind := singleBinding(s.Table, t, nil)
			for j := spans[w][0]; j < spans[w][1]; j++ {
				bind.rows[0] = t.visibleRow(rids[j], env.snap)
				for i, sc := range s.Set {
					v, err := ev.eval(sc.Val, bind)
					if err != nil {
						errs[w] = err
						return
					}
					all[j*nset+i] = v
				}
			}
		}(w)
	}
	wg.Wait()
	db.stats.ParallelWorkers.Add(int64(k))
	db.stats.PartitionsScanned.Add(int64(k))
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return all, nil
}

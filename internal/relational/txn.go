package relational

import (
	"fmt"
	"sync"
	"time"
)

// Transactions. The paper's §6.3 execution model requires an update
// statement to behave atomically: bindings are computed over the unmodified
// database, then sub-operations apply — so a failure discovered while a
// sub-operation executes must leave no trace of the ones before it. The
// engine gets that from this layer: an undo log records every row mutation
// (insert, delete, update) with enough of a pre-image to reverse it, and a
// transaction — explicit via Begin/BEGIN or the implicit one wrapping every
// top-level Exec — applies the log backwards on rollback, restoring rows,
// live counts, hash buckets, and B+tree entries.
//
// Undo logging was chosen over copy-on-write table versions: mutations stay
// in place (no per-statement table copies, so bulk loads and renumber
// UPDATEs keep their PR 1/PR 2 cost), and the log's size is proportional to
// the statement's write set, not the table. Readers must not observe a
// mutation epoch in progress; autocommit statements get that from the
// writer lock alone, while explicit transactions — which release the lock
// between statements — additionally mark their writes with their
// transaction id so concurrent snapshot readers resolve to the pre-image on
// the version chain instead (mvcc.go). The undo log doubles as the version
// chain's spine: rollback unmarks versions rather than replaying pre-images
// blindly, and commit flips the marks to the allocated commit stamp.

// errTxDone is returned by operations on a finished transaction.
var errTxDone = fmt.Errorf("relational: transaction has already been committed or rolled back")

// Session is the statement-execution surface shared by a DB in autocommit
// mode and an open Tx. Code that must run inside a caller-supplied
// transaction — the engine's §6.3 execution phase — takes a Session, so the
// same helpers serve both transactional and autocommit callers.
type Session interface {
	Exec(sql string) (int, error)
	Query(sql string) (*Rows, error)
	QueryEach(sql string, fn func(row []Value) error) ([]string, error)
	Prepare(sql string) (*Prepared, error)
	ExecPrepared(p *Prepared, args ...Value) (int, error)
	QueryPrepared(p *Prepared, args ...Value) (*Rows, error)
}

var (
	_ Session = (*DB)(nil)
	_ Session = (*Tx)(nil)
)

// ---- undo log ----

type undoKind uint8

const (
	// undoInsert reverses a row insertion: unindex and drop the row.
	undoInsert undoKind = iota
	// undoDelete reverses a tombstoning: relink the row and its index
	// entries.
	undoDelete
	// undoUpdate reverses an in-place overwrite from the recorded pre-image.
	undoUpdate
	// undoDDL reverses a schema change (create/drop of tables, indexes,
	// triggers) via a recorded closure. DDL is rare, so the per-entry
	// closure allocation stays off the row-mutation hot path.
	undoDDL
	// Versioned forms (mvcc.go): the mutation marked row versions instead of
	// (or in addition to) mutating physically, and undo must clear the marks
	// and restore the chain. Entries carry v != nil.
	undoInsertV
	undoDeleteV
	undoUpdateV
)

// undoEntry is one reversible mutation. For undoDelete, row is the removed
// row slice itself (detached from the table, never mutated afterwards); for
// undoUpdate it is a pre-image copy; for undoDDL, fn restores the schema.
type undoEntry struct {
	kind undoKind
	t    *Table
	rid  int
	row  []Value
	fn   func()
	// v carries the version-chain bookkeeping of a versioned mutation
	// (non-nil exactly for the *V kinds); commit stamping keys off it.
	v *vUndo
}

// vUndo is the versioned-mutation undo payload. node is the chain node an
// update pushed (its begin/older restore the pre-update metadata); wasVers
// reports whether the row already had non-trivial metadata before this
// mutation (false means undo returns the row to plain form and decrements
// the table's version count).
type vUndo struct {
	node    *rowVersion
	wasVers bool
}

// undoLog accumulates a transaction's reversible mutations in order.
type undoLog struct {
	entries []undoEntry
	// touched records mutated tables for commit-time ordered-index
	// compaction (deletes only tombstone B+tree entries; see commit).
	touched map[*Table]struct{}
	// redo collects the transaction's successful logged statements for the
	// commit record (durable.go). A statement's redo entry is appended only
	// after it succeeds, so statement-level rollback never needs to unwind
	// it; a whole-transaction rollback discards the log, redo included.
	redo []redoStmt
}

func newUndoLog() *undoLog { return &undoLog{} }

func (l *undoLog) note(t *Table) {
	if l.touched == nil {
		l.touched = make(map[*Table]struct{}, 4)
	}
	l.touched[t] = struct{}{}
}

func (l *undoLog) recordInsert(t *Table, rid int) {
	l.note(t)
	l.entries = append(l.entries, undoEntry{kind: undoInsert, t: t, rid: rid})
}

func (l *undoLog) recordDelete(t *Table, rid int, row []Value) {
	l.note(t)
	l.entries = append(l.entries, undoEntry{kind: undoDelete, t: t, rid: rid, row: row})
}

func (l *undoLog) recordUpdate(t *Table, rid int, row []Value) {
	l.note(t)
	pre := make([]Value, len(row))
	copy(pre, row)
	l.entries = append(l.entries, undoEntry{kind: undoUpdate, t: t, rid: rid, row: pre})
}

func (l *undoLog) recordDDL(fn func()) {
	l.entries = append(l.entries, undoEntry{kind: undoDDL, fn: fn})
}

func (l *undoLog) recordInsertV(t *Table, rid int) {
	l.note(t)
	l.entries = append(l.entries, undoEntry{kind: undoInsertV, t: t, rid: rid, v: &vUndo{}})
}

func (l *undoLog) recordDeleteV(t *Table, rid int, wasVers bool) {
	l.note(t)
	l.entries = append(l.entries, undoEntry{kind: undoDeleteV, t: t, rid: rid, v: &vUndo{wasVers: wasVers}})
}

func (l *undoLog) recordUpdateV(t *Table, rid int, node *rowVersion, wasVers bool) {
	l.note(t)
	l.entries = append(l.entries, undoEntry{kind: undoUpdateV, t: t, rid: rid, v: &vUndo{node: node, wasVers: wasVers}})
}

// mark returns a position to roll back to — the statement boundary inside a
// multi-statement transaction.
func (l *undoLog) mark() int { return len(l.entries) }

// rollbackTo applies entries beyond mark in reverse, restoring the tables
// to their state at the mark. Caller holds the writer lock.
func (l *undoLog) rollbackTo(mark int) {
	for i := len(l.entries) - 1; i >= mark; i-- {
		e := l.entries[i]
		switch e.kind {
		case undoInsert:
			row := e.t.rows[e.rid]
			for _, idx := range e.t.index {
				if v := row[idx.col]; !v.IsNull() {
					idx.remove(v, e.rid)
				}
			}
			for _, oidx := range e.t.orderedList {
				oidx.tree.remove(oidx.keyFor(e.rid, row))
			}
			e.t.rows[e.rid] = nil
			e.t.pgDrop(e.rid)
			e.t.live--
			// Inserts append, and reverse application reaches them in
			// reverse rid order, so truncating restores the exact rowid
			// sequence (future inserts reuse the same rids as if the
			// statement never ran).
			if e.rid == len(e.t.rows)-1 {
				e.t.rows = e.t.rows[:e.rid]
				e.t.pgTruncate(e.rid)
			}
		case undoDelete:
			e.t.rows[e.rid] = e.row
			// Re-register the resurrected rid with the paged directory (its
			// delete marked it dead); it lands on the current fill page.
			e.t.pgPlace(e.rid, e.row)
			e.t.live++
			for _, idx := range e.t.index {
				if v := e.row[idx.col]; !v.IsNull() {
					idx.add(v, e.rid)
				}
			}
			// Deletion tombstones B+tree entries lazily (the key usually
			// still sits in the tree). An index created mid-transaction is
			// the exception — it was built from live rows only — so probe
			// via remove-then-insert, which is exact either way.
			for _, oidx := range e.t.orderedList {
				k := oidx.keyFor(e.rid, e.row)
				present := oidx.tree.remove(k)
				oidx.tree.insert(k)
				if present && oidx.stale > 0 {
					oidx.stale--
				}
			}
		case undoUpdate:
			cur := e.t.rows[e.rid]
			for _, oidx := range e.t.orderedList {
				ck, pk := oidx.keyFor(e.rid, cur), oidx.keyFor(e.rid, e.row)
				if compareBKeys(ck, pk) != 0 {
					oidx.tree.remove(ck)
					oidx.tree.insert(pk)
				}
			}
			for _, idx := range e.t.index {
				cv, pv := cur[idx.col], e.row[idx.col]
				if cv == pv {
					continue
				}
				if !cv.IsNull() {
					idx.remove(cv, e.rid)
				}
				if !pv.IsNull() {
					idx.add(pv, e.rid)
				}
			}
			// Copy the pre-image back in place, preserving row identity.
			copy(cur, e.row)
		case undoInsertV:
			// A marked insert is physically present but visible only to its
			// own transaction; undo removes it exactly like undoInsert and
			// clears the version metadata.
			row := e.t.rows[e.rid]
			for _, idx := range e.t.index {
				if v := row[idx.col]; !v.IsNull() {
					idx.remove(v, e.rid)
				}
			}
			for _, oidx := range e.t.orderedList {
				oidx.tree.remove(oidx.keyFor(e.rid, row))
			}
			e.t.rows[e.rid] = nil
			e.t.pgDrop(e.rid)
			e.t.live--
			e.t.meta[e.rid] = rowMeta{}
			e.t.vers--
			if e.rid == len(e.t.rows)-1 {
				e.t.rows = e.t.rows[:e.rid]
				e.t.pgTruncate(e.rid)
				if len(e.t.meta) > len(e.t.rows) {
					e.t.meta = e.t.meta[:len(e.t.rows)]
				}
			}
		case undoDeleteV:
			// A versioned delete only marked the row's end; clearing the mark
			// resurrects it (row and index entries never moved).
			e.t.meta[e.rid].end = 0
			e.t.live++
			if !e.v.wasVers {
				e.t.vers--
			}
		case undoUpdateV:
			// Restore the pre-update metadata from the chain node the update
			// pushed, drop the index entries only the undone newest version
			// added (entries carried by a surviving version stay), and copy
			// the pre-image back in place, preserving row identity.
			cur := e.t.rows[e.rid]
			node := e.v.node
			survivors := [][]Value{node.row}
			for v := node.older; v != nil; v = v.older {
				survivors = append(survivors, v.row)
			}
			e.t.dropVersionKeys(e.rid, cur, survivors)
			copy(cur, node.row)
			e.t.meta[e.rid] = rowMeta{begin: node.begin, older: node.older}
			if !e.v.wasVers {
				e.t.vers--
			}
		case undoDDL:
			e.fn()
		}
	}
	l.entries = l.entries[:mark]
}

// commit discards the log and compacts the touched tables' ordered indexes
// whose lazy tombstones now outnumber live rows. Compaction used to run on
// the read path; it moved here because reads now run under a shared lock
// (mutating a tree there would race) and because compacting mid-transaction
// would drop tombstoned entries the undo log still counts on. Staleness only
// grows through deletes, and every delete touches its table, so the
// threshold is always observed at some commit. Caller holds the writer lock.
func (l *undoLog) commit() {
	for t := range l.touched {
		// Versioned tables defer compaction: rebuild() keeps live rows only,
		// which would drop chain-version keys open snapshots still probe.
		// Vacuum removes tree entries eagerly on such tables instead, so
		// stale never grows while versions exist (mvcc.go).
		if t.vers > 0 {
			continue
		}
		for _, oidx := range t.orderedList {
			if oidx.stale > t.live {
				oidx.rebuild(t)
			}
		}
	}
	l.entries = nil
}

// ---- transactions ----

// Tx is an open transaction. It takes an MVCC snapshot at Begin and holds
// the database's writer lock only per statement and for the commit critical
// section — never between statements — so concurrent DB.Query readers keep
// running against committed state while the transaction sits open
// (mvcc.go). Its reads observe the snapshot plus its own uncommitted
// writes; its writes take per-table write intents, and an overlapping
// writer aborts first-committer-wins. Tx methods serialize on an internal
// mutex, so goroutines that join a SQL-level transaction through
// DB.Exec/DB.Query cannot race the transaction's own statements — they
// interleave into it.
type Tx struct {
	db  *DB
	log *undoLog
	// id is the transaction's mark identity; snapTS the commit stamp its
	// snapshot was taken at. wctx is the write context installed as
	// db.writer for the duration of each statement.
	id     uint64
	snapTS uint64
	wctx   writeCtx
	// sqlLevel marks a transaction opened by a SQL BEGIN through DB.Exec:
	// subsequent DB.Exec/Query calls join it (single-session semantics,
	// like one SQLite connection) until COMMIT/ROLLBACK.
	sqlLevel bool
	// mu serializes the transaction's statements; done (guarded by mu)
	// marks it finished.
	mu   sync.Mutex
	done bool
}

// Begin opens an explicit transaction: a short critical section registers
// its snapshot, after which the writer lock is released — concurrent
// readers and other writers proceed, isolated from this transaction's
// writes by version visibility (mvcc.go).
func (db *DB) Begin() *Tx {
	db.mu.Lock()
	tx := db.beginLocked(false)
	db.mu.Unlock()
	return tx
}

// beginLocked installs a fresh transaction: allocates its id, snapshots the
// current commit stamp, and registers the snapshot (which switches writers
// into versioned mode until it unregisters). Caller holds the writer lock.
func (db *DB) beginLocked(sqlLevel bool) *Tx {
	db.nextTxn++
	tx := &Tx{db: db, log: newUndoLog(), sqlLevel: sqlLevel}
	tx.id = db.nextTxn
	tx.snapTS = db.commitTS
	tx.wctx = writeCtx{txnID: tx.id, snapTS: tx.snapTS, explicit: true}
	db.snaps[tx.id] = tx.snapTS
	db.stats.SnapshotsTaken.Add(1)
	if sqlLevel {
		db.sqlTx.Store(tx)
	}
	return tx
}

// Exec executes a statement inside the transaction. A statement that fails
// rolls back to its own start (statement atomicity); the transaction stays
// open. COMMIT and ROLLBACK statements finish the transaction.
func (tx *Tx) Exec(sql string) (int, error) {
	stmt, args, _, err := tx.db.prepared(sql)
	if err != nil {
		return 0, err
	}
	switch stmt.(type) {
	case *BeginStmt:
		// Check done first: a joiner racing the commit must get errTxDone
		// (which DB.Exec falls through on, opening a fresh transaction),
		// not a spurious already-open error.
		tx.mu.Lock()
		done := tx.done
		tx.mu.Unlock()
		if done {
			return 0, errTxDone
		}
		return 0, fmt.Errorf("relational: transaction already open")
	case *CommitStmt:
		return 0, tx.Commit()
	case *RollbackStmt:
		return 0, tx.Rollback()
	}
	return tx.execStmt(stmt, args, sql, nil)
}

// execStmt runs one parsed statement with statement-level atomicity inside
// the open transaction. src and logArgs are the statement's redo form: the
// raw text (logArgs nil) or the `?` shape plus its bound arguments.
func (tx *Tx) execStmt(stmt Stmt, args []Value, src string, logArgs []Value) (int, error) {
	qt := tx.db.traceBegin("tx-exec", src)
	n, err := tx.execStmtSpan(stmt, args, src, logArgs, qt)
	if err == errTxDone {
		// The caller falls through to a fresh autocommit execution, which
		// opens its own span; this one never ran a statement.
		return n, err
	}
	tx.db.traceFinish(qt, n, err)
	return n, err
}

// execStmtSpan is execStmt's lock-holding body; the trace dispatch stays
// outside it so hooks never run under tx.mu or the writer lock.
func (tx *Tx) execStmtSpan(stmt Stmt, args []Value, src string, logArgs []Value, qt *QueryTrace) (int, error) {
	tx.mu.Lock()
	defer tx.mu.Unlock()
	if tx.done {
		return 0, errTxDone
	}
	db := tx.db
	db.stats.Statements.Add(1)
	db.internArgs(args)
	// The writer lock is held per statement: the transaction's undo log and
	// write context install for the duration of execution, then come back
	// out so readers and other writers can run between this transaction's
	// statements.
	lockStart := time.Now()
	db.mu.Lock()
	db.met.lockWait.ObserveSince(lockStart)
	defer db.mu.Unlock()
	if qt != nil {
		qt.LockWait = time.Since(lockStart)
	}
	var execStart time.Time
	if qt != nil {
		execStart = time.Now()
	}
	mark := tx.log.mark()
	db.undo = tx.log
	db.writer = &tx.wctx
	env := newEnv(nil)
	env.args = args
	env.snap = snapshot{ts: tx.snapTS, self: tx.id}
	n, err := db.execStmt(stmt, env)
	db.undo = nil
	db.writer = nil
	if qt != nil {
		qt.Execute = time.Since(execStart)
	}
	if err != nil {
		tx.log.rollbackTo(mark)
		return 0, err
	}
	if tx.db.durable() {
		if logged, note := classifyStmt(stmt); logged {
			// Copy the argument slice: the commit record is only encoded at
			// Commit, and a caller reusing its args buffer between
			// ExecPrepared and Commit must not rewrite logged history.
			var cp []Value
			if len(logArgs) > 0 {
				cp = append(cp, logArgs...)
			}
			tx.log.redo = append(tx.log.redo, redoStmt{sql: src, args: cp, note: note})
		}
	}
	return n, nil
}

// Query executes a SELECT inside the transaction, observing its uncommitted
// writes.
func (tx *Tx) Query(sql string) (*Rows, error) {
	stmt, args, _, err := tx.db.prepared(sql)
	if err != nil {
		return nil, err
	}
	sel, ok := stmt.(*SelectStmt)
	if !ok {
		return nil, fmt.Errorf("relational: Query requires a SELECT, got %T", stmt)
	}
	tx.mu.Lock()
	defer tx.mu.Unlock()
	if tx.done {
		return nil, errTxDone
	}
	tx.db.stats.Statements.Add(1)
	tx.db.mu.RLock()
	defer tx.db.mu.RUnlock()
	env := newEnv(nil)
	env.args = args
	env.snap = snapshot{ts: tx.snapTS, self: tx.id}
	return tx.db.execSelect(sel, env)
}

// QueryEach streams a SELECT's rows inside the transaction. Like
// DB.QueryEach, the row slice is reused between fn calls; copy to retain.
func (tx *Tx) QueryEach(sql string, fn func(row []Value) error) ([]string, error) {
	stmt, args, _, err := tx.db.prepared(sql)
	if err != nil {
		return nil, err
	}
	sel, ok := stmt.(*SelectStmt)
	if !ok {
		return nil, fmt.Errorf("relational: QueryEach requires a SELECT, got %T", stmt)
	}
	tx.mu.Lock()
	defer tx.mu.Unlock()
	if tx.done {
		return nil, errTxDone
	}
	tx.db.stats.Statements.Add(1)
	tx.db.mu.RLock()
	defer tx.db.mu.RUnlock()
	env := newEnv(nil)
	env.args = args
	env.snap = snapshot{ts: tx.snapTS, self: tx.id}
	return tx.db.streamSelect(sel, env, fn)
}

// Prepare parses a statement for repeated execution. Parsing takes no data
// locks, so it is safe inside the transaction; execute the result through
// ExecPrepared/QueryPrepared to stay inside it.
func (tx *Tx) Prepare(sql string) (*Prepared, error) { return tx.db.Prepare(sql) }

// ExecPrepared runs a prepared statement inside the transaction.
func (tx *Tx) ExecPrepared(p *Prepared, args ...Value) (int, error) {
	if p.db != tx.db {
		return 0, fmt.Errorf("relational: prepared statement belongs to a different DB")
	}
	if len(args) != p.nparams {
		return 0, fmt.Errorf("relational: prepared statement takes %d args, got %d", p.nparams, len(args))
	}
	return tx.execStmt(p.stmt, args, p.src, args)
}

// QueryPrepared runs a prepared SELECT inside the transaction.
func (tx *Tx) QueryPrepared(p *Prepared, args ...Value) (*Rows, error) {
	if p.db != tx.db {
		return nil, fmt.Errorf("relational: prepared statement belongs to a different DB")
	}
	sel, ok := p.stmt.(*SelectStmt)
	if !ok {
		return nil, fmt.Errorf("relational: Query requires a SELECT, got %T", p.stmt)
	}
	if len(args) != p.nparams {
		return nil, fmt.Errorf("relational: prepared statement takes %d args, got %d", p.nparams, len(args))
	}
	tx.mu.Lock()
	defer tx.mu.Unlock()
	if tx.done {
		return nil, errTxDone
	}
	tx.db.stats.Statements.Add(1)
	tx.db.internArgs(args)
	tx.db.mu.RLock()
	defer tx.db.mu.RUnlock()
	env := newEnv(nil)
	env.args = args
	env.snap = snapshot{ts: tx.snapTS, self: tx.id}
	return tx.db.execSelect(sel, env)
}

// Commit makes the transaction's effects permanent. Under the writer lock
// it allocates the commit stamp, flips the transaction's uncommitted marks
// to it, releases its write intents, unregisters its snapshot, piggybacks a
// vacuum pass, and appends the stamped commit record (log order = commit
// order); the fsync wait happens after release, so readers unblocked by the
// commit never wait for the disk.
func (tx *Tx) Commit() error {
	start := time.Now()
	qt := tx.db.traceBegin("tx-commit", "COMMIT")
	err := tx.commitSpan(qt, start)
	if err == errTxDone {
		return err
	}
	tx.db.traceFinish(qt, 0, err)
	return err
}

// commitSpan is Commit's body; trace dispatch stays outside the locks.
func (tx *Tx) commitSpan(qt *QueryTrace, start time.Time) error {
	tx.mu.Lock()
	defer tx.mu.Unlock()
	if tx.done {
		return errTxDone
	}
	tx.done = true
	db := tx.db
	lockStart := time.Now()
	db.mu.Lock()
	db.met.lockWait.ObserveSince(lockStart)
	if qt != nil {
		qt.LockWait = time.Since(lockStart)
	}
	commitStart := time.Now()
	stamp := db.stampCommitLocked(tx.log, &tx.wctx)
	db.releaseIntentsLocked(&tx.wctx)
	delete(db.snaps, tx.id)
	db.vacuumPendingLocked()
	tx.log.commit()
	lsn, werr := db.applyRedoLocked(tx.log.redo, stamp)
	if tx.sqlLevel {
		db.sqlTx.Store(nil)
	}
	if qt != nil {
		qt.Commit = time.Since(commitStart)
	}
	db.mu.Unlock()
	if werr != nil {
		return fmt.Errorf("relational: logging commit: %w", werr)
	}
	err := db.afterCommit(lsn, qt)
	if err == nil {
		db.met.commit.ObserveSince(start)
	}
	return err
}

// Rollback reverses every effect of the transaction: marked versions come
// back out of the chains (restoring pre-images in place), write intents
// release, and the snapshot unregisters — with the last snapshot gone, a
// vacuum pass returns every table to single-version form.
func (tx *Tx) Rollback() error {
	tx.mu.Lock()
	defer tx.mu.Unlock()
	if tx.done {
		return errTxDone
	}
	tx.done = true
	db := tx.db
	db.mu.Lock()
	tx.log.rollbackTo(0)
	db.releaseIntentsLocked(&tx.wctx)
	delete(db.snaps, tx.id)
	db.vacuumPendingLocked()
	if tx.sqlLevel {
		db.sqlTx.Store(nil)
	}
	db.mu.Unlock()
	return nil
}

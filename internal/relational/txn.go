package relational

import (
	"fmt"
	"sync"
)

// Transactions. The paper's §6.3 execution model requires an update
// statement to behave atomically: bindings are computed over the unmodified
// database, then sub-operations apply — so a failure discovered while a
// sub-operation executes must leave no trace of the ones before it. The
// engine gets that from this layer: an undo log records every row mutation
// (insert, delete, update) with enough of a pre-image to reverse it, and a
// transaction — explicit via Begin/BEGIN or the implicit one wrapping every
// top-level Exec — applies the log backwards on rollback, restoring rows,
// live counts, hash buckets, and B+tree entries.
//
// Undo logging was chosen over copy-on-write table versions: mutations stay
// in place (no per-statement table copies, so bulk loads and renumber
// UPDATEs keep their PR 1/PR 2 cost), and the log's size is proportional to
// the statement's write set, not the table. The price is that readers must
// not observe a mutation epoch in progress — which the DB's reader/writer
// lock already guarantees: a transaction holds the writer lock from BEGIN
// to COMMIT/ROLLBACK, so shared-lock readers only ever see committed state
// (see db.go).

// errTxDone is returned by operations on a finished transaction.
var errTxDone = fmt.Errorf("relational: transaction has already been committed or rolled back")

// Session is the statement-execution surface shared by a DB in autocommit
// mode and an open Tx. Code that must run inside a caller-supplied
// transaction — the engine's §6.3 execution phase — takes a Session, so the
// same helpers serve both transactional and autocommit callers.
type Session interface {
	Exec(sql string) (int, error)
	Query(sql string) (*Rows, error)
	QueryEach(sql string, fn func(row []Value) error) ([]string, error)
	Prepare(sql string) (*Prepared, error)
	ExecPrepared(p *Prepared, args ...Value) (int, error)
	QueryPrepared(p *Prepared, args ...Value) (*Rows, error)
}

var (
	_ Session = (*DB)(nil)
	_ Session = (*Tx)(nil)
)

// ---- undo log ----

type undoKind uint8

const (
	// undoInsert reverses a row insertion: unindex and drop the row.
	undoInsert undoKind = iota
	// undoDelete reverses a tombstoning: relink the row and its index
	// entries.
	undoDelete
	// undoUpdate reverses an in-place overwrite from the recorded pre-image.
	undoUpdate
	// undoDDL reverses a schema change (create/drop of tables, indexes,
	// triggers) via a recorded closure. DDL is rare, so the per-entry
	// closure allocation stays off the row-mutation hot path.
	undoDDL
)

// undoEntry is one reversible mutation. For undoDelete, row is the removed
// row slice itself (detached from the table, never mutated afterwards); for
// undoUpdate it is a pre-image copy; for undoDDL, fn restores the schema.
type undoEntry struct {
	kind undoKind
	t    *Table
	rid  int
	row  []Value
	fn   func()
}

// undoLog accumulates a transaction's reversible mutations in order.
type undoLog struct {
	entries []undoEntry
	// touched records mutated tables for commit-time ordered-index
	// compaction (deletes only tombstone B+tree entries; see commit).
	touched map[*Table]struct{}
	// redo collects the transaction's successful logged statements for the
	// commit record (durable.go). A statement's redo entry is appended only
	// after it succeeds, so statement-level rollback never needs to unwind
	// it; a whole-transaction rollback discards the log, redo included.
	redo []redoStmt
}

func newUndoLog() *undoLog { return &undoLog{} }

func (l *undoLog) note(t *Table) {
	if l.touched == nil {
		l.touched = make(map[*Table]struct{}, 4)
	}
	l.touched[t] = struct{}{}
}

func (l *undoLog) recordInsert(t *Table, rid int) {
	l.note(t)
	l.entries = append(l.entries, undoEntry{kind: undoInsert, t: t, rid: rid})
}

func (l *undoLog) recordDelete(t *Table, rid int, row []Value) {
	l.note(t)
	l.entries = append(l.entries, undoEntry{kind: undoDelete, t: t, rid: rid, row: row})
}

func (l *undoLog) recordUpdate(t *Table, rid int, row []Value) {
	l.note(t)
	pre := make([]Value, len(row))
	copy(pre, row)
	l.entries = append(l.entries, undoEntry{kind: undoUpdate, t: t, rid: rid, row: pre})
}

func (l *undoLog) recordDDL(fn func()) {
	l.entries = append(l.entries, undoEntry{kind: undoDDL, fn: fn})
}

// mark returns a position to roll back to — the statement boundary inside a
// multi-statement transaction.
func (l *undoLog) mark() int { return len(l.entries) }

// rollbackTo applies entries beyond mark in reverse, restoring the tables
// to their state at the mark. Caller holds the writer lock.
func (l *undoLog) rollbackTo(mark int) {
	for i := len(l.entries) - 1; i >= mark; i-- {
		e := l.entries[i]
		switch e.kind {
		case undoInsert:
			row := e.t.rows[e.rid]
			for _, idx := range e.t.index {
				if v := row[idx.col]; !v.IsNull() {
					idx.remove(v, e.rid)
				}
			}
			for _, oidx := range e.t.orderedList {
				oidx.tree.remove(oidx.keyFor(e.rid, row))
			}
			e.t.rows[e.rid] = nil
			e.t.live--
			// Inserts append, and reverse application reaches them in
			// reverse rid order, so truncating restores the exact rowid
			// sequence (future inserts reuse the same rids as if the
			// statement never ran).
			if e.rid == len(e.t.rows)-1 {
				e.t.rows = e.t.rows[:e.rid]
			}
		case undoDelete:
			e.t.rows[e.rid] = e.row
			e.t.live++
			for _, idx := range e.t.index {
				if v := e.row[idx.col]; !v.IsNull() {
					idx.add(v, e.rid)
				}
			}
			// Deletion tombstones B+tree entries lazily (the key usually
			// still sits in the tree). An index created mid-transaction is
			// the exception — it was built from live rows only — so probe
			// via remove-then-insert, which is exact either way.
			for _, oidx := range e.t.orderedList {
				k := oidx.keyFor(e.rid, e.row)
				present := oidx.tree.remove(k)
				oidx.tree.insert(k)
				if present && oidx.stale > 0 {
					oidx.stale--
				}
			}
		case undoUpdate:
			cur := e.t.rows[e.rid]
			for _, oidx := range e.t.orderedList {
				ck, pk := oidx.keyFor(e.rid, cur), oidx.keyFor(e.rid, e.row)
				if compareBKeys(ck, pk) != 0 {
					oidx.tree.remove(ck)
					oidx.tree.insert(pk)
				}
			}
			for _, idx := range e.t.index {
				cv, pv := cur[idx.col], e.row[idx.col]
				if cv == pv {
					continue
				}
				if !cv.IsNull() {
					idx.remove(cv, e.rid)
				}
				if !pv.IsNull() {
					idx.add(pv, e.rid)
				}
			}
			// Copy the pre-image back in place, preserving row identity.
			copy(cur, e.row)
		case undoDDL:
			e.fn()
		}
	}
	l.entries = l.entries[:mark]
}

// commit discards the log and compacts the touched tables' ordered indexes
// whose lazy tombstones now outnumber live rows. Compaction used to run on
// the read path; it moved here because reads now run under a shared lock
// (mutating a tree there would race) and because compacting mid-transaction
// would drop tombstoned entries the undo log still counts on. Staleness only
// grows through deletes, and every delete touches its table, so the
// threshold is always observed at some commit. Caller holds the writer lock.
func (l *undoLog) commit() {
	for t := range l.touched {
		for _, oidx := range t.orderedList {
			if oidx.stale > t.live {
				oidx.rebuild(t)
			}
		}
	}
	l.entries = nil
}

// ---- transactions ----

// Tx is an open transaction. It holds the database's writer lock from Begin
// until Commit or Rollback, so its statements never interleave with other
// writers and shared-lock readers only ever observe committed state (the
// snapshot-read guarantee). Tx methods serialize on an internal mutex, so
// goroutines that join a SQL-level transaction through DB.Exec/DB.Query
// cannot race the transaction's own statements — they interleave into it.
type Tx struct {
	db  *DB
	log *undoLog
	// sqlLevel marks a transaction opened by a SQL BEGIN through DB.Exec:
	// subsequent DB.Exec/Query calls join it (single-session semantics,
	// like one SQLite connection) until COMMIT/ROLLBACK.
	sqlLevel bool
	// mu serializes the transaction's statements; done (guarded by mu)
	// marks it finished.
	mu   sync.Mutex
	done bool
}

// Begin opens an explicit transaction, acquiring the writer lock until
// Commit or Rollback. While the transaction is open, DB.Query and DB.Exec
// from other goroutines block (they would otherwise observe or interleave
// with uncommitted state); the transaction's own reads and writes go
// through the Tx methods.
func (db *DB) Begin() *Tx {
	db.mu.Lock()
	return db.beginLocked(false)
}

// beginLocked installs a fresh transaction; caller holds the writer lock
// and keeps holding it on behalf of the returned Tx.
func (db *DB) beginLocked(sqlLevel bool) *Tx {
	tx := &Tx{db: db, log: newUndoLog(), sqlLevel: sqlLevel}
	db.undo = tx.log
	if sqlLevel {
		db.sqlTx.Store(tx)
	}
	return tx
}

// Exec executes a statement inside the transaction. A statement that fails
// rolls back to its own start (statement atomicity); the transaction stays
// open. COMMIT and ROLLBACK statements finish the transaction.
func (tx *Tx) Exec(sql string) (int, error) {
	stmt, args, err := tx.db.prepared(sql)
	if err != nil {
		return 0, err
	}
	switch stmt.(type) {
	case *BeginStmt:
		// Check done first: a joiner racing the commit must get errTxDone
		// (which DB.Exec falls through on, opening a fresh transaction),
		// not a spurious already-open error.
		tx.mu.Lock()
		done := tx.done
		tx.mu.Unlock()
		if done {
			return 0, errTxDone
		}
		return 0, fmt.Errorf("relational: transaction already open")
	case *CommitStmt:
		return 0, tx.Commit()
	case *RollbackStmt:
		return 0, tx.Rollback()
	}
	return tx.execStmt(stmt, args, sql, nil)
}

// execStmt runs one parsed statement with statement-level atomicity inside
// the open transaction. src and logArgs are the statement's redo form: the
// raw text (logArgs nil) or the `?` shape plus its bound arguments.
func (tx *Tx) execStmt(stmt Stmt, args []Value, src string, logArgs []Value) (int, error) {
	tx.mu.Lock()
	defer tx.mu.Unlock()
	if tx.done {
		return 0, errTxDone
	}
	tx.db.stats.Statements.Add(1)
	tx.db.internArgs(args)
	mark := tx.log.mark()
	env := newEnv(nil)
	env.args = args
	n, err := tx.db.execStmt(stmt, env)
	if err != nil {
		tx.log.rollbackTo(mark)
		return 0, err
	}
	if tx.db.durable() {
		if logged, note := classifyStmt(stmt); logged {
			// Copy the argument slice: the commit record is only encoded at
			// Commit, and a caller reusing its args buffer between
			// ExecPrepared and Commit must not rewrite logged history.
			var cp []Value
			if len(logArgs) > 0 {
				cp = append(cp, logArgs...)
			}
			tx.log.redo = append(tx.log.redo, redoStmt{sql: src, args: cp, note: note})
		}
	}
	return n, nil
}

// Query executes a SELECT inside the transaction, observing its uncommitted
// writes.
func (tx *Tx) Query(sql string) (*Rows, error) {
	stmt, args, err := tx.db.prepared(sql)
	if err != nil {
		return nil, err
	}
	sel, ok := stmt.(*SelectStmt)
	if !ok {
		return nil, fmt.Errorf("relational: Query requires a SELECT, got %T", stmt)
	}
	tx.mu.Lock()
	defer tx.mu.Unlock()
	if tx.done {
		return nil, errTxDone
	}
	tx.db.stats.Statements.Add(1)
	env := newEnv(nil)
	env.args = args
	return tx.db.execSelect(sel, env)
}

// QueryEach streams a SELECT's rows inside the transaction. Like
// DB.QueryEach, the row slice is reused between fn calls; copy to retain.
func (tx *Tx) QueryEach(sql string, fn func(row []Value) error) ([]string, error) {
	stmt, args, err := tx.db.prepared(sql)
	if err != nil {
		return nil, err
	}
	sel, ok := stmt.(*SelectStmt)
	if !ok {
		return nil, fmt.Errorf("relational: QueryEach requires a SELECT, got %T", stmt)
	}
	tx.mu.Lock()
	defer tx.mu.Unlock()
	if tx.done {
		return nil, errTxDone
	}
	tx.db.stats.Statements.Add(1)
	env := newEnv(nil)
	env.args = args
	return tx.db.streamSelect(sel, env, fn)
}

// Prepare parses a statement for repeated execution. Parsing takes no data
// locks, so it is safe inside the transaction; execute the result through
// ExecPrepared/QueryPrepared to stay inside it.
func (tx *Tx) Prepare(sql string) (*Prepared, error) { return tx.db.Prepare(sql) }

// ExecPrepared runs a prepared statement inside the transaction.
func (tx *Tx) ExecPrepared(p *Prepared, args ...Value) (int, error) {
	if p.db != tx.db {
		return 0, fmt.Errorf("relational: prepared statement belongs to a different DB")
	}
	if len(args) != p.nparams {
		return 0, fmt.Errorf("relational: prepared statement takes %d args, got %d", p.nparams, len(args))
	}
	return tx.execStmt(p.stmt, args, p.src, args)
}

// QueryPrepared runs a prepared SELECT inside the transaction.
func (tx *Tx) QueryPrepared(p *Prepared, args ...Value) (*Rows, error) {
	if p.db != tx.db {
		return nil, fmt.Errorf("relational: prepared statement belongs to a different DB")
	}
	sel, ok := p.stmt.(*SelectStmt)
	if !ok {
		return nil, fmt.Errorf("relational: Query requires a SELECT, got %T", p.stmt)
	}
	if len(args) != p.nparams {
		return nil, fmt.Errorf("relational: prepared statement takes %d args, got %d", p.nparams, len(args))
	}
	tx.mu.Lock()
	defer tx.mu.Unlock()
	if tx.done {
		return nil, errTxDone
	}
	tx.db.stats.Statements.Add(1)
	tx.db.internArgs(args)
	env := newEnv(nil)
	env.args = args
	return tx.db.execSelect(sel, env)
}

// Commit makes the transaction's effects permanent and releases the writer
// lock. On a durable DB the transaction's commit record is appended while
// the lock is still held (log order = commit order) and the fsync wait
// happens after release, so readers unblocked by the commit never wait for
// the disk.
func (tx *Tx) Commit() error {
	tx.mu.Lock()
	defer tx.mu.Unlock()
	if tx.done {
		return errTxDone
	}
	tx.done = true
	db := tx.db
	db.undo = nil
	tx.log.commit()
	lsn, werr := db.applyRedoLocked(tx.log.redo)
	if tx.sqlLevel {
		db.sqlTx.Store(nil)
	}
	db.mu.Unlock()
	if werr != nil {
		return fmt.Errorf("relational: logging commit: %w", werr)
	}
	return db.afterCommit(lsn)
}

// Rollback reverses every effect of the transaction and releases the writer
// lock.
func (tx *Tx) Rollback() error {
	tx.mu.Lock()
	defer tx.mu.Unlock()
	if tx.done {
		return errTxDone
	}
	tx.done = true
	db := tx.db
	tx.log.rollbackTo(0)
	db.undo = nil
	if tx.sqlLevel {
		db.sqlTx.Store(nil)
	}
	db.mu.Unlock()
	return nil
}

package relational

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// Tests for the intern table and for the end-to-end invariant it must
// uphold: interning is a pure performance layer, so every query answers
// identically with it on, off, or half-applied.

// TestInternBijection: distinct strings get distinct ids, equal strings get
// the same id, and str() inverts the mapping — across the promotion
// boundary (first few inserts live only in the dirty map).
func TestInternBijection(t *testing.T) {
	it := &internTable{}
	const n = 500
	ids := make(map[uint32]string, n)
	for i := 0; i < n; i++ {
		s := fmt.Sprintf("str-%d", i)
		id, canon := it.getOrInsert(s)
		if id == 0 {
			t.Fatalf("getOrInsert(%q) returned 0", s)
		}
		if canon != s {
			t.Fatalf("canonical %q != %q", canon, s)
		}
		if prev, dup := ids[id]; dup {
			t.Fatalf("id %d assigned to both %q and %q", id, prev, s)
		}
		ids[id] = s
	}
	for i := 0; i < n; i++ {
		s := fmt.Sprintf("str-%d", i)
		id, _ := it.getOrInsert(s)
		if ids[id] != s {
			t.Fatalf("re-insert of %q gave id %d (%q)", s, id, ids[id])
		}
		if got := it.lookup(s); got != id {
			t.Fatalf("lookup(%q) = %d, want %d", s, got, id)
		}
		if got := it.str(id); got != s {
			t.Fatalf("str(%d) = %q, want %q", id, got, s)
		}
	}
	if it.lookup("never-interned") != 0 {
		t.Error("lookup of absent string returned a symbol")
	}
	if it.size() != n {
		t.Errorf("size = %d, want %d", it.size(), n)
	}
	if h, m := it.hits.Load(), it.misses.Load(); h != n || m != n {
		t.Errorf("hits/misses = %d/%d, want %d/%d", h, m, n, n)
	}
}

// TestInternCanonicalSharing: interning a string that aliases a larger
// buffer stores a trimmed clone, and later inserts of equal content return
// that same canonical (so duplicate column values share one backing array).
func TestInternCanonicalSharing(t *testing.T) {
	it := &internTable{}
	big := []byte("xxxxhelloxxxx")
	id1, c1 := it.getOrInsert(string(big[4:9]))
	id2, c2 := it.getOrInsert("hello")
	if id1 != id2 {
		t.Fatalf("equal strings got ids %d and %d", id1, id2)
	}
	if c1 != "hello" || c2 != "hello" {
		t.Fatalf("canonicals %q, %q", c1, c2)
	}
}

// TestInternLookupSeesCompletedInserts: the consistency contract — a
// lookup started after getOrInsert returns must see the symbol, under a
// concurrent writer stream that keeps promotions churning. Run with -race.
func TestInternLookupSeesCompletedInserts(t *testing.T) {
	it := &internTable{}
	const writers, perWriter = 4, 300
	var wg sync.WaitGroup
	errs := make(chan string, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				s := fmt.Sprintf("w%d-%d", w, i)
				id, _ := it.getOrInsert(s)
				// The insert completed; every subsequent lookup must
				// observe it, from this or any other goroutine.
				if got := it.lookup(s); got != id {
					errs <- fmt.Sprintf("lookup(%q) = %d after insert returned %d", s, got, id)
					return
				}
				// Re-read a string some other writer plausibly owns; the
				// answer must be stable (0 or a fixed id, never changing
				// back).
				other := fmt.Sprintf("w%d-%d", (w+1)%writers, i/2)
				a := it.lookup(other)
				b := it.lookup(other)
				if a != 0 && b != a {
					errs <- fmt.Sprintf("lookup(%q) went %d -> %d", other, a, b)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
	if it.size() != writers*perWriter {
		t.Errorf("size = %d, want %d", it.size(), writers*perWriter)
	}
}

// TestInternReadersAgainstWriter: lock-free readers hammer lookup/str on a
// stable prefix while a writer extends the table — the reader-visible
// prefix must never change. Run with -race to exercise the snapshot
// publication ordering.
func TestInternReadersAgainstWriter(t *testing.T) {
	it := &internTable{}
	const stable = 200
	want := make([]uint32, stable)
	for i := range want {
		want[i], _ = it.getOrInsert(fmt.Sprintf("stable-%d", i))
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			i := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := fmt.Sprintf("stable-%d", i%stable)
				if got := it.lookup(s); got != want[i%stable] {
					t.Errorf("lookup(%q) = %d, want %d", s, got, want[i%stable])
					return
				}
				if got := it.str(want[i%stable]); got != s {
					t.Errorf("str(%d) = %q, want %q", want[i%stable], got, s)
					return
				}
				i++
			}
		}()
	}
	for i := 0; i < 5000; i++ {
		it.getOrInsert(fmt.Sprintf("churn-%d", i))
	}
	close(stop)
	wg.Wait()
}

// FuzzIntern drives concurrent get-or-insert over a small derived
// vocabulary and checks the table stays a bijection.
func FuzzIntern(f *testing.F) {
	f.Add("seed", uint8(3))
	f.Add("", uint8(0))
	f.Add("a\x00b", uint8(7))
	f.Fuzz(func(t *testing.T, base string, n uint8) {
		it := &internTable{}
		vocab := make([]string, int(n)+1)
		for i := range vocab {
			vocab[i] = fmt.Sprintf("%s|%d", base, i)
		}
		var wg sync.WaitGroup
		results := make([][]uint32, 4)
		for g := range results {
			results[g] = make([]uint32, len(vocab))
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for pass := 0; pass < 3; pass++ {
					for i, s := range vocab {
						id, canon := it.getOrInsert(s)
						if canon != s {
							t.Errorf("canon %q != %q", canon, s)
							return
						}
						if prev := results[g][i]; prev != 0 && prev != id {
							t.Errorf("%q id changed %d -> %d", s, prev, id)
							return
						}
						results[g][i] = id
					}
				}
			}(g)
		}
		wg.Wait()
		// All goroutines must agree on every id, and ids must be distinct.
		seen := make(map[uint32]bool, len(vocab))
		for i := range vocab {
			id := results[0][i]
			for g := 1; g < len(results); g++ {
				if results[g][i] != id {
					t.Fatalf("goroutines disagree on %q: %d vs %d", vocab[i], id, results[g][i])
				}
			}
			if id == 0 || seen[id] {
				t.Fatalf("id %d for %q invalid or duplicated", id, vocab[i])
			}
			seen[id] = true
		}
		if it.size() != len(vocab) {
			t.Fatalf("size = %d, want %d", it.size(), len(vocab))
		}
	})
}

// TestInternedMatchesAblated: the property test behind the whole PR —
// randomized queries over TEXT columns must answer identically on an
// interning database and on one with interning disabled. Covers equality
// scans, indexed probes, hash joins, IN-subqueries, DISTINCT, and ORDER BY
// (ordering must stay on string bytes, never on symbol ids).
func TestInternedMatchesAblated(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	vocab := []string{"alpha", "beta", "gamma", "delta", "", "1", "01", "Alpha", "beta ", "δ"}
	word := func() string { return vocab[rng.Intn(len(vocab))] }

	on, off := NewDB(), NewDB()
	off.DisableInterning()
	for _, db := range []*DB{on, off} {
		db.MustExec(`CREATE TABLE l (id INTEGER, a VARCHAR(16), b VARCHAR(16))`)
		db.MustExec(`CREATE TABLE r (id INTEGER, a VARCHAR(16))`)
		db.MustExec(`CREATE INDEX il ON l (a)`)
	}
	// Same pseudo-random rows into both (two passes over one rng stream
	// would diverge, so generate once and replay).
	type row struct {
		id   int
		a, b string
	}
	var lrows []row
	for i := 0; i < 120; i++ {
		lrows = append(lrows, row{i, word(), word()})
	}
	var rrows []row
	for i := 0; i < 40; i++ {
		rrows = append(rrows, row{i, word(), ""})
	}
	for _, db := range []*DB{on, off} {
		ins, err := db.Prepare(`INSERT INTO l VALUES (?, ?, ?)`)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range lrows {
			if _, err := ins.Exec(Int(int64(r.id)), Text(r.a), Text(r.b)); err != nil {
				t.Fatal(err)
			}
		}
		for _, r := range rrows {
			db.MustExec(fmt.Sprintf(`INSERT INTO r VALUES (%d, '%s')`, r.id, r.a))
		}
	}

	queries := []string{
		`SELECT id FROM l WHERE a = '%s' ORDER BY id`,
		`SELECT id FROM l WHERE a = '%s' AND b != '%s' ORDER BY id`,
		`SELECT l.id, r.id FROM l, r WHERE l.a = r.a ORDER BY l.id, r.id`,
		`SELECT id FROM l WHERE a IN (SELECT a FROM r) ORDER BY id`,
		`SELECT DISTINCT a FROM l ORDER BY a`,
		`SELECT DISTINCT a, b FROM l ORDER BY a, b`,
		`SELECT a, id FROM l ORDER BY a, id`,
		`SELECT id FROM l WHERE a = b ORDER BY id`,
		`SELECT COUNT(*) FROM l WHERE a < '%s'`,
	}
	for round := 0; round < 30; round++ {
		tmpl := queries[rng.Intn(len(queries))]
		w1, w2 := word(), word()
		q := tmpl
		switch countPct(tmpl) {
		case 1:
			q = fmt.Sprintf(tmpl, w1)
		case 2:
			q = fmt.Sprintf(tmpl, w1, w2)
		}
		a, err := on.Query(q)
		if err != nil {
			t.Fatalf("interned %s: %v", q, err)
		}
		b, err := off.Query(q)
		if err != nil {
			t.Fatalf("ablated %s: %v", q, err)
		}
		if len(a.Data) != len(b.Data) {
			t.Fatalf("%s: %d rows interned vs %d ablated", q, len(a.Data), len(b.Data))
		}
		for i := range a.Data {
			for c := range a.Data[i] {
				if a.Data[i][c] != b.Data[i][c] {
					t.Fatalf("%s row %d col %d: %v interned vs %v ablated",
						q, i, c, a.Data[i][c], b.Data[i][c])
				}
			}
		}
	}
}

func countPct(s string) int {
	n := 0
	for i := 0; i+1 < len(s); i++ {
		if s[i] == '%' && s[i+1] == 's' {
			n++
		}
	}
	return n
}

// TestInternStatsOnInsert: storing repeated TEXT mints each distinct string
// once (misses) and hits thereafter; Stats surfaces both and ResetStats
// clears them.
func TestInternStatsOnInsert(t *testing.T) {
	db := NewDB()
	db.MustExec(`CREATE TABLE t (v VARCHAR(8))`)
	for i := 0; i < 10; i++ {
		db.MustExec(fmt.Sprintf(`INSERT INTO t VALUES ('v%d')`, i%3))
	}
	st := db.Stats()
	if st.InternMisses != 3 {
		t.Errorf("InternMisses = %d, want 3", st.InternMisses)
	}
	if st.InternHits < 7 {
		t.Errorf("InternHits = %d, want >= 7", st.InternHits)
	}
	db.ResetStats()
	if st := db.Stats(); st.InternHits != 0 || st.InternMisses != 0 {
		t.Errorf("after reset: hits=%d misses=%d", st.InternHits, st.InternMisses)
	}
}

// TestDisableInterningIsSticky: after DisableInterning, new strings never
// intern, but symbols minted earlier stay valid (the append-only table is
// frozen, not dropped) — queries keep answering identically.
func TestDisableInterningIsSticky(t *testing.T) {
	db := NewDB()
	db.MustExec(`CREATE TABLE t (v VARCHAR(8))`)
	db.MustExec(`INSERT INTO t VALUES ('early')`)
	db.DisableInterning()
	db.MustExec(`INSERT INTO t VALUES ('late'), ('early')`)
	rows, err := db.Query(`SELECT COUNT(*) FROM t WHERE v = 'early'`)
	if err != nil {
		t.Fatal(err)
	}
	if n := rows.Data[0][0].MustInt(); n != 2 {
		t.Errorf("matched %d rows, want 2 (pre- and post-disable 'early')", n)
	}
	before := db.Stats().InternMisses
	db.MustExec(`INSERT INTO t VALUES ('never-interned')`)
	if after := db.Stats().InternMisses; after != before {
		t.Errorf("insert after disable minted a symbol (misses %d -> %d)", before, after)
	}
}

package relational

import "testing"

func TestSnapshotRestore(t *testing.T) {
	db := NewDB()
	db.MustExec(`CREATE TABLE t (k INTEGER, v VARCHAR)`)
	db.MustExec(`CREATE INDEX idx_k ON t (k)`)
	db.MustExec(`INSERT INTO t VALUES (1, 'a'), (2, 'b'), (3, 'c')`)

	snap := db.Snapshot()

	db.MustExec(`DELETE FROM t WHERE k = 2`)
	db.MustExec(`INSERT INTO t VALUES (9, 'z')`)
	db.MustExec(`UPDATE t SET v = 'changed' WHERE k = 1`)
	if db.Table("t").RowCount() != 3 {
		t.Fatalf("precondition: rows = %d", db.Table("t").RowCount())
	}

	db.Restore(snap)
	if got := db.Table("t").RowCount(); got != 3 {
		t.Errorf("restored rows = %d, want 3", got)
	}
	rows, _ := db.Query(`SELECT v FROM t WHERE k = 1`)
	if len(rows.Data) != 1 || rows.Data[0][0] != Text("a") {
		t.Errorf("restored value = %v", rows.Data)
	}
	rows, _ = db.Query(`SELECT v FROM t WHERE k = 2`)
	if len(rows.Data) != 1 {
		t.Errorf("deleted row not restored")
	}
	rows, _ = db.Query(`SELECT v FROM t WHERE k = 9`)
	if len(rows.Data) != 0 {
		t.Errorf("inserted row survived restore")
	}
}

func TestSnapshotIndexesRebuilt(t *testing.T) {
	db := NewDB()
	db.MustExec(`CREATE TABLE t (k INTEGER)`)
	db.MustExec(`CREATE INDEX idx_k ON t (k)`)
	for i := 0; i < 100; i++ {
		db.MustExec(`INSERT INTO t VALUES (` + FormatValue(Int(int64(i%10))) + `)`)
	}
	snap := db.Snapshot()
	db.MustExec(`DELETE FROM t`)
	db.Restore(snap)

	// The index must answer correctly and cheaply after restore.
	db.ResetStats()
	rows, err := db.Query(`SELECT k FROM t WHERE k = 7`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Data) != 10 {
		t.Errorf("index probe found %d rows, want 10", len(rows.Data))
	}
	if st := db.Stats(); st.RowsScanned > 10 {
		t.Errorf("probe scanned %d rows; index not rebuilt", st.RowsScanned)
	}
}

func TestSnapshotDropsLaterTables(t *testing.T) {
	db := NewDB()
	db.MustExec(`CREATE TABLE t (k INTEGER)`)
	snap := db.Snapshot()
	db.MustExec(`CREATE TABLE later (k INTEGER)`)
	db.Restore(snap)
	if db.Table("later") != nil {
		t.Error("table created after snapshot survived restore")
	}
	if db.Table("t") == nil {
		t.Error("snapshotted table lost")
	}
}

func TestSnapshotIsolation(t *testing.T) {
	// Mutations after restore must not leak into the snapshot.
	db := NewDB()
	db.MustExec(`CREATE TABLE t (s VARCHAR)`)
	db.MustExec(`INSERT INTO t VALUES ('orig')`)
	snap := db.Snapshot()
	db.MustExec(`UPDATE t SET s = 'first'`)
	db.Restore(snap)
	db.MustExec(`UPDATE t SET s = 'second'`)
	db.Restore(snap)
	rows, _ := db.Query(`SELECT s FROM t`)
	if rows.Data[0][0] != Text("orig") {
		t.Errorf("snapshot contaminated: %v", rows.Data[0][0])
	}
}

package relational

import (
	"fmt"
	"sort"
	"strings"
)

// Volcano-style streaming execution. A SELECT body compiles into a pipeline
// of Open/Next/Close operators: binding-space iterators advance a shared
// binding through join tuples (table scan, index probe, hash join), and
// row-space iterators above them produce output rows (projection, streaming
// aggregation, distinct, union, sort). Nothing below a sort materializes.

type accessKind int

const (
	accessScan accessKind = iota
	accessIndexProbe
	accessHashJoin
)

// bindIter advances a shared binding through successive join tuples.
type bindIter interface {
	Open() error
	Next() (bool, error)
	Close()
}

// oneIter emits a single empty outer tuple: the input of the first join
// level.
type oneIter struct{ done bool }

func (o *oneIter) Open() error { o.done = false; return nil }
func (o *oneIter) Next() (bool, error) {
	if o.done {
		return false, nil
	}
	o.done = true
	return true, nil
}
func (o *oneIter) Close() {}

// levelIter binds one FROM slot per input tuple: for every tuple of its
// input it enumerates the matching rows of its own source — via index
// probe, transient hash join, or scan — and yields each combination that
// passes the level's gated conjuncts.
type levelIter struct {
	db    *DB
	ev    *exprEval
	bind  *binding
	src   *source
	lp    levelPlan
	pos   int // execution position in the pipeline (0 = first bound)
	input bindIter

	access accessKind
	probe  probeCand
	idx    *hashIndex
	ht     map[string][]int // transient hash table (rowids / row indexes)

	outerLive bool
	scanPos   int
	bucket    []int
	bucketPos int
}

// chooseAccess picks the physical access path for a level against the live
// database: the first candidate with a persistent index wins; otherwise a
// correlated equality on a non-first level builds a hash join; otherwise
// the source is scanned. Shared with EXPLAIN so the displayed plan is the
// executed plan.
func chooseAccess(lp levelPlan, src *source, pos int) (accessKind, probeCand, *hashIndex) {
	for _, c := range lp.cands {
		if src.table != nil {
			if idx := src.table.lookupIndex(c.col); idx != nil {
				return accessIndexProbe, c, idx
			}
		}
	}
	if pos > 0 {
		for _, c := range lp.cands {
			if c.correlated {
				return accessHashJoin, c, nil
			}
		}
	}
	return accessScan, probeCand{}, nil
}

func (li *levelIter) Open() error {
	li.access, li.probe, li.idx = chooseAccess(li.lp, li.src, li.pos)
	li.ht = nil
	li.outerLive = false
	li.bind.rows[li.lp.slot] = nil
	return li.input.Open()
}

func (li *levelIter) Close() { li.input.Close() }

func (li *levelIter) Next() (bool, error) {
	for {
		if !li.outerLive {
			ok, err := li.input.Next()
			if err != nil || !ok {
				li.bind.rows[li.lp.slot] = nil
				return false, err
			}
			li.outerLive = true
			if err := li.startInner(); err != nil {
				return false, err
			}
		}
		ok, err := li.advanceInner()
		if err != nil {
			return false, err
		}
		if ok {
			return true, nil
		}
		li.outerLive = false
	}
}

// startInner begins enumerating the level's own source for the current
// input tuple.
func (li *levelIter) startInner() error {
	switch li.access {
	case accessIndexProbe:
		li.db.stats.IndexProbes++
		v, err := li.ev.eval(li.probe.expr, li.bind)
		if err != nil {
			return err
		}
		li.bucket = li.idx.probe(v)
		li.bucketPos = 0
	case accessHashJoin:
		if li.ht == nil {
			if err := li.buildHash(); err != nil {
				return err
			}
		}
		v, err := li.ev.eval(li.probe.expr, li.bind)
		if err != nil {
			return err
		}
		if v == nil {
			li.bucket = nil
		} else {
			li.bucket = li.ht[valueString(v)]
		}
		li.bucketPos = 0
	default:
		li.db.stats.FullScans++
		li.scanPos = 0
	}
	return nil
}

// buildHash drains the level's source once into a transient hash table on
// the probe column. Keys use valueString so hash equality matches SQL
// equality across the int/string comparison the engine supports.
func (li *levelIter) buildHash() error {
	li.ht = make(map[string][]int)
	ci := li.src.columnIndex(li.probe.col)
	if ci < 0 {
		return fmt.Errorf("relational: source %s has no column %q", li.src.name, li.probe.col)
	}
	if t := li.src.table; t != nil {
		for rid, row := range t.rows {
			if row == nil || row[ci] == nil {
				continue
			}
			li.db.stats.RowsScanned++
			k := valueString(row[ci])
			li.ht[k] = append(li.ht[k], rid)
		}
	} else {
		for i, row := range li.src.rows.Data {
			if row[ci] == nil {
				continue
			}
			li.db.stats.RowsScanned++
			k := valueString(row[ci])
			li.ht[k] = append(li.ht[k], i)
		}
	}
	li.db.stats.HashJoinBuilds++
	return nil
}

// advanceInner yields the next row of the level's own source that passes
// the gated conjuncts, or reports exhaustion for the current input tuple.
func (li *levelIter) advanceInner() (bool, error) {
	for {
		var row []Value
		switch li.access {
		case accessIndexProbe, accessHashJoin:
			if li.bucketPos >= len(li.bucket) {
				return false, nil
			}
			rid := li.bucket[li.bucketPos]
			li.bucketPos++
			if t := li.src.table; t != nil {
				row = t.Row(rid)
			} else {
				row = li.src.rows.Data[rid]
			}
			if row == nil {
				continue
			}
		default:
			if t := li.src.table; t != nil {
				for li.scanPos < len(t.rows) && t.rows[li.scanPos] == nil {
					li.scanPos++
				}
				if li.scanPos >= len(t.rows) {
					return false, nil
				}
				row = t.rows[li.scanPos]
				li.scanPos++
			} else {
				if li.scanPos >= len(li.src.rows.Data) {
					return false, nil
				}
				row = li.src.rows.Data[li.scanPos]
				li.scanPos++
			}
		}
		li.db.stats.RowsScanned++
		li.bind.rows[li.lp.slot] = row
		ok, err := li.checkConds()
		if err != nil {
			return false, err
		}
		if ok {
			return true, nil
		}
	}
}

func (li *levelIter) checkConds() (bool, error) {
	for _, c := range li.lp.conds {
		ok, err := li.ev.evalBool(c, li.bind)
		if err != nil {
			return false, err
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}

// ---- row-space iterators ----

// rowIter produces output rows.
type rowIter interface {
	Open() error
	Next() ([]Value, bool, error)
	Close()
}

// valuesIter evaluates a FROM-less select list once.
type valuesIter struct {
	ev    *exprEval
	exprs []SelectExpr
	done  bool
}

func (v *valuesIter) Open() error { v.done = false; return nil }
func (v *valuesIter) Close()      {}
func (v *valuesIter) Next() ([]Value, bool, error) {
	if v.done {
		return nil, false, nil
	}
	v.done = true
	row := make([]Value, len(v.exprs))
	for i, se := range v.exprs {
		val, err := v.ev.eval(se.Expr, nil)
		if err != nil {
			return nil, false, err
		}
		row[i] = val
	}
	return row, true, nil
}

// projectIter evaluates the select list over each join tuple.
type projectIter struct {
	ev    *exprEval
	sel   *SimpleSelect
	bind  *binding
	input bindIter
}

func (p *projectIter) Open() error { return p.input.Open() }
func (p *projectIter) Close()      { p.input.Close() }
func (p *projectIter) Next() ([]Value, bool, error) {
	ok, err := p.input.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	if p.sel.Star {
		var row []Value
		for i := range p.bind.srcs {
			row = append(row, p.bind.rows[i]...)
		}
		return row, true, nil
	}
	row := make([]Value, len(p.sel.Exprs))
	for i, se := range p.sel.Exprs {
		v, err := p.ev.eval(se.Expr, p.bind)
		if err != nil {
			return nil, false, err
		}
		row[i] = v
	}
	return row, true, nil
}

// aggIter folds the whole input through the aggregate accumulators and
// emits a single row — streaming aggregation, nothing buffered.
type aggIter struct {
	ev    *exprEval
	sel   *SimpleSelect
	bind  *binding
	input bindIter
	done  bool
}

func (a *aggIter) Open() error { a.done = false; return a.input.Open() }
func (a *aggIter) Close()      { a.input.Close() }
func (a *aggIter) Next() ([]Value, bool, error) {
	if a.done {
		return nil, false, nil
	}
	a.done = true
	state := make([]*aggAccumulator, len(a.sel.Exprs))
	for {
		ok, err := a.input.Next()
		if err != nil {
			return nil, false, err
		}
		if !ok {
			break
		}
		for i, se := range a.sel.Exprs {
			if state[i] == nil {
				state[i] = &aggAccumulator{}
			}
			if err := state[i].feed(a.ev, se.Expr, a.bind); err != nil {
				return nil, false, err
			}
		}
	}
	row := make([]Value, len(a.sel.Exprs))
	for i, se := range a.sel.Exprs {
		if state[i] == nil {
			state[i] = &aggAccumulator{}
		}
		row[i] = state[i].result(a.ev, se.Expr)
	}
	return row, true, nil
}

// distinctIter streams the first occurrence of each distinct row.
type distinctIter struct {
	input rowIter
	seen  map[string]bool
}

func (d *distinctIter) Open() error {
	d.seen = make(map[string]bool)
	return d.input.Open()
}
func (d *distinctIter) Close() { d.input.Close() }
func (d *distinctIter) Next() ([]Value, bool, error) {
	for {
		row, ok, err := d.input.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		key := rowKey(row)
		if d.seen[key] {
			continue
		}
		d.seen[key] = true
		return row, true, nil
	}
}

// unionIter concatenates its branch streams (UNION ALL).
type unionIter struct {
	parts []rowIter
	cur   int
}

func (u *unionIter) Open() error {
	u.cur = 0
	if len(u.parts) == 0 {
		return nil
	}
	return u.parts[0].Open()
}
func (u *unionIter) Close() {
	for i := u.cur; i < len(u.parts); i++ {
		u.parts[i].Close()
	}
}
func (u *unionIter) Next() ([]Value, bool, error) {
	for u.cur < len(u.parts) {
		row, ok, err := u.parts[u.cur].Next()
		if err != nil {
			return nil, false, err
		}
		if ok {
			return row, true, nil
		}
		u.parts[u.cur].Close()
		u.cur++
		if u.cur < len(u.parts) {
			if err := u.parts[u.cur].Open(); err != nil {
				return nil, false, err
			}
		}
	}
	return nil, false, nil
}

// sortSpec is one resolved ORDER BY key: an output column position.
type sortSpec struct {
	col  int
	desc bool
}

// sortIter materializes its input and emits it in key order. Sorting is the
// only blocking operator in the pipeline.
type sortIter struct {
	input rowIter
	keys  []sortSpec
	buf   [][]Value
	pos   int
}

func (s *sortIter) Open() error {
	s.buf = nil
	s.pos = 0
	if err := s.input.Open(); err != nil {
		return err
	}
	for {
		row, ok, err := s.input.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		s.buf = append(s.buf, row)
	}
	sort.SliceStable(s.buf, func(a, b int) bool {
		for _, k := range s.keys {
			c := compareValues(s.buf[a][k.col], s.buf[b][k.col])
			if c == 0 {
				continue
			}
			if k.desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	return nil
}
func (s *sortIter) Close() { s.input.Close() }
func (s *sortIter) Next() ([]Value, bool, error) {
	if s.pos >= len(s.buf) {
		return nil, false, nil
	}
	row := s.buf[s.pos]
	s.pos++
	return row, true, nil
}

// resolveOrderKeys maps ORDER BY expressions (column names or 1-based
// positions) onto output column indexes.
func resolveOrderKeys(orderBy []OrderKey, cols []string) ([]sortSpec, error) {
	keys := make([]sortSpec, len(orderBy))
	for i, k := range orderBy {
		switch e := k.Expr.(type) {
		case *ColumnRef:
			found := -1
			for ci, c := range cols {
				if strings.EqualFold(c, e.Name) {
					found = ci
					break
				}
			}
			if found < 0 {
				return nil, fmt.Errorf("relational: ORDER BY column %q not in result", e.Name)
			}
			keys[i] = sortSpec{col: found, desc: k.Desc}
		case *Literal:
			n, ok := e.Value.(int64)
			if !ok || n < 1 || int(n) > len(cols) {
				return nil, fmt.Errorf("relational: bad positional ORDER BY")
			}
			keys[i] = sortSpec{col: int(n) - 1, desc: k.Desc}
		default:
			return nil, fmt.Errorf("relational: ORDER BY supports column references only")
		}
	}
	return keys, nil
}

// ---- pipeline assembly ----

// resolveSources maps FROM items to base tables or CTE result sets. Caller
// holds db.mu.
func (db *DB) resolveSources(s *SimpleSelect, env *execEnv) ([]*source, error) {
	srcs := make([]*source, len(s.From))
	for i, f := range s.From {
		if rows, ok := env.lookupCTE(f.Table); ok {
			srcs[i] = &source{name: f.Name(), rows: rows}
			continue
		}
		t := db.tables[strings.ToLower(f.Table)]
		if t == nil {
			return nil, fmt.Errorf("relational: no table or CTE %q", f.Table)
		}
		srcs[i] = &source{name: f.Name(), table: t}
	}
	return srcs, nil
}

// outputColumns names the result columns of a select body.
func outputColumns(s *SimpleSelect, srcs []*source) []string {
	var cols []string
	if s.Star {
		for _, src := range srcs {
			cols = append(cols, src.columns()...)
		}
		return cols
	}
	for i, se := range s.Exprs {
		switch {
		case se.Alias != "":
			cols = append(cols, se.Alias)
		default:
			if cr, ok := se.Expr.(*ColumnRef); ok {
				cols = append(cols, cr.Name)
			} else {
				cols = append(cols, fmt.Sprintf("c%d", i+1))
			}
		}
	}
	return cols
}

// buildSimpleIter compiles one SELECT body into a row iterator. Caller
// holds db.mu.
func (db *DB) buildSimpleIter(s *SimpleSelect, env *execEnv) (rowIter, []string, error) {
	srcs, err := db.resolveSources(s, env)
	if err != nil {
		return nil, nil, err
	}
	cols := outputColumns(s, srcs)

	// Validate column references eagerly so errors surface even when no
	// rows flow through the join.
	if !s.Star {
		for _, se := range s.Exprs {
			if err := validateRefs(se.Expr, srcs); err != nil {
				return nil, nil, err
			}
		}
	}
	if s.Where != nil {
		if err := validateRefs(s.Where, srcs); err != nil {
			return nil, nil, err
		}
	}

	ev := newEval(db, env)
	if len(srcs) == 0 {
		var it rowIter = &valuesIter{ev: ev, exprs: s.Exprs}
		if s.Distinct {
			it = &distinctIter{input: it}
		}
		return it, cols, nil
	}

	plan := db.planFor(s, srcs)
	bind := &binding{
		names: make([]string, len(srcs)),
		srcs:  srcs,
		rows:  make([][]Value, len(srcs)),
	}
	for i, src := range srcs {
		bind.names[i] = strings.ToLower(src.name)
	}
	var chain bindIter = &oneIter{}
	for pos, lp := range plan.levels {
		chain = &levelIter{
			db:    db,
			ev:    ev,
			bind:  bind,
			src:   srcs[lp.slot],
			lp:    lp,
			pos:   pos,
			input: chain,
		}
	}

	aggregate := false
	if !s.Star {
		for _, se := range s.Exprs {
			if containsAggregate(se.Expr) {
				aggregate = true
				break
			}
		}
	}
	var it rowIter
	if aggregate {
		it = &aggIter{ev: ev, sel: s, bind: bind, input: chain}
	} else {
		it = &projectIter{ev: ev, sel: s, bind: bind, input: chain}
	}
	if s.Distinct {
		it = &distinctIter{input: it}
	}
	return it, cols, nil
}

// buildSelectIter compiles a full SELECT (whose CTEs are already
// materialized in env) into its top-level row iterator.
func (db *DB) buildSelectIter(s *SelectStmt, env *execEnv) (rowIter, []string, error) {
	var parts []rowIter
	var cols []string
	for i, body := range s.Body {
		it, bcols, err := db.buildSimpleIter(body, env)
		if err != nil {
			return nil, nil, err
		}
		if i == 0 {
			cols = bcols
		} else if len(bcols) != len(cols) {
			return nil, nil, fmt.Errorf("relational: UNION ALL branches have %d vs %d columns", len(cols), len(bcols))
		}
		parts = append(parts, it)
	}
	var top rowIter
	if len(parts) == 1 {
		top = parts[0]
	} else {
		top = &unionIter{parts: parts}
	}
	if len(s.OrderBy) > 0 {
		keys, err := resolveOrderKeys(s.OrderBy, cols)
		if err != nil {
			return nil, nil, err
		}
		top = &sortIter{input: top, keys: keys}
	}
	return top, cols, nil
}

package relational

import (
	"fmt"
	"sort"
	"strings"
)

// Volcano-style streaming execution. A SELECT body compiles into a pipeline
// of Open/Next/Close operators: binding-space iterators advance a shared
// binding through join tuples (table scan, index probe, hash join), and
// row-space iterators above them produce output rows (projection, streaming
// aggregation, distinct, union, sort). Nothing below a sort materializes.

type accessKind int

const (
	accessScan accessKind = iota
	accessIndexProbe
	accessHashJoin
	// accessOrderedProbe probes a B+tree index on an equality prefix,
	// enumerating each group in remaining-key order.
	accessOrderedProbe
	// accessRangeScan walks a B+tree index between bounds (equality prefix
	// plus an inequality window on the next key column).
	accessRangeScan
	// accessOrderedScan walks an entire B+tree index, streaming the source
	// in key order — a scan that buys sort elision.
	accessOrderedScan
	// accessSortedProbe probes a hash index and sorts each (small) bucket
	// by the wanted columns — order without maintaining a B+tree for it.
	accessSortedProbe
)

// bindIter advances a shared binding through successive join tuples.
type bindIter interface {
	Open() error
	Next() (bool, error)
	Close()
}

// oneIter emits a single empty outer tuple: the input of the first join
// level.
type oneIter struct{ done bool }

func (o *oneIter) Open() error { o.done = false; return nil }
func (o *oneIter) Next() (bool, error) {
	if o.done {
		return false, nil
	}
	o.done = true
	return true, nil
}
func (o *oneIter) Close() {}

// levelIter binds one FROM slot per input tuple: for every tuple of its
// input it enumerates the matching rows of its own source — via index
// probe, ordered probe, range scan, transient hash join, or scan — and
// yields each combination that passes the level's gated conjuncts. The
// access path is chosen at compile time (order.go) and shared with EXPLAIN.
type levelIter struct {
	db    *DB
	ev    *exprEval
	bind  *binding
	src   *source
	lp    levelPlan
	ap    accessPlan
	input bindIter

	ht map[Value][]int // transient hash table (rowids / row indexes)

	// part, when non-nil, restricts this (driving) level to one partition
	// of its enumeration: a rowid window for heap/CTE scans, a pre-walked
	// key-ordered rowid chunk for B+tree access (parallel.go).
	part *levelPart
	// shared, when non-nil, replaces the level's private transient hash
	// table with the query-wide sharded one built once and probed by every
	// worker pipeline (parallel.go).
	shared *parHashTable

	// skipCond is the gated conjunct the access path's hash probe already
	// enforces (the probe candidate's source equality); checkConds skips
	// it. Nil for non-hash access kinds, whose windows are re-checked — and
	// nil for persistent-index probes on versioned tables, where a bucket
	// entry may belong to a superseded version and the equality must be
	// re-evaluated against the visible row (mvcc.go).
	skipCond Expr

	// sn is the snapshot this pipeline's row visibility is evaluated
	// against (mvcc.go); {ts: allTS} outside transactions.
	sn snapshot

	outerLive bool
	scanPos   int
	bucket    []int
	bucketPos int

	// pgc pins the page under this level's current row when the source is
	// a paged table: reads through it are lock-free until the level
	// crosses a page boundary, and the pin releases at Close — the paged
	// form of the rowIter buffer-reuse contract (a yielded row is valid
	// until the next Next/Close).
	pgc pageCursor

	// ctr batches the level's per-row and per-probe work counters locally
	// and flushes them to the shared atomics on Close: with N concurrent
	// readers, an atomic add per scanned row turns the stats cache line
	// into a serialization point and erases the reader-parallel speedup.
	ctr levelCounters

	// anm, when non-nil, is this level's EXPLAIN ANALYZE record
	// (analyze.go); Close folds the batched counters into it before they
	// flush. Nil on every ordinary execution.
	anm *opMetrics
}

// levelCounters accumulates hot-path statistics locally during one
// pipeline execution.
type levelCounters struct {
	rowsScanned    int64
	indexProbes    int64
	fullScans      int64
	rangeProbes    int64
	hashJoinBuilds int64
}

// flush adds the batched counts to the DB's shared counters and zeroes the
// batch (Close may run more than once).
func (c *levelCounters) flush(db *DB) {
	if c.rowsScanned != 0 {
		db.stats.RowsScanned.Add(c.rowsScanned)
	}
	if c.indexProbes != 0 {
		db.stats.IndexProbes.Add(c.indexProbes)
	}
	if c.fullScans != 0 {
		db.stats.FullScans.Add(c.fullScans)
	}
	if c.rangeProbes != 0 {
		db.stats.RangeProbes.Add(c.rangeProbes)
	}
	if c.hashJoinBuilds != 0 {
		db.stats.HashJoinBuilds.Add(c.hashJoinBuilds)
	}
	*c = levelCounters{}
}

func (li *levelIter) Open() error {
	li.ht = nil
	li.outerLive = false
	li.bind.rows[li.lp.slot] = nil
	return li.input.Open()
}

func (li *levelIter) Close() {
	if li.anm != nil {
		// Fold before flush: flush zeroes the batch, so a second Close
		// (compound iterators may re-close abandoned children) adds nothing.
		li.anm.scanned.Add(li.ctr.rowsScanned)
		li.anm.probes.Add(li.ctr.indexProbes + li.ctr.rangeProbes)
	}
	li.ctr.flush(li.db)
	li.pgc.release()
	li.input.Close()
}

func (li *levelIter) Next() (bool, error) {
	for {
		if !li.outerLive {
			ok, err := li.input.Next()
			if err != nil || !ok {
				li.bind.rows[li.lp.slot] = nil
				return false, err
			}
			li.outerLive = true
			if err := li.startInner(); err != nil {
				return false, err
			}
		}
		ok, err := li.advanceInner()
		if err != nil {
			return false, err
		}
		if ok {
			return true, nil
		}
		li.outerLive = false
	}
}

// startInner begins enumerating the level's own source for the current
// input tuple.
func (li *levelIter) startInner() error {
	if li.part != nil {
		return li.startPartition()
	}
	switch li.ap.kind {
	case accessIndexProbe:
		li.ctr.indexProbes++
		v, err := li.ev.eval(li.ap.probe.expr, li.bind)
		if err != nil {
			return err
		}
		li.bucket = li.ap.idx.probe(v)
		li.bucketPos = 0
	case accessHashJoin:
		if li.shared != nil {
			// Worker pipelines share one sharded build (parallel.go) —
			// probe semantics (symKey, NULLs excluded) match buildHash.
			if err := li.shared.ensure(li.src, li.ap.probe.col); err != nil {
				return err
			}
		} else if li.ht == nil {
			if err := li.buildHash(); err != nil {
				return err
			}
		}
		v, err := li.ev.eval(li.ap.probe.expr, li.bind)
		if err != nil {
			return err
		}
		switch {
		case v.IsNull():
			li.bucket = nil
		case li.shared != nil:
			li.bucket = li.shared.lookup(v.symKey(li.db.intern))
		default:
			li.bucket = li.ht[v.symKey(li.db.intern)]
		}
		li.bucketPos = 0
	case accessOrderedProbe, accessRangeScan, accessOrderedScan:
		bucket, err := li.orderedBucket()
		if err != nil {
			return err
		}
		li.bucket = bucket
		li.bucketPos = 0
	case accessSortedProbe:
		li.ctr.indexProbes++
		v, err := li.ev.eval(li.ap.probe.expr, li.bind)
		if err != nil {
			return err
		}
		li.bucket = append(li.bucket[:0], li.ap.idx.probe(v)...)
		li.bucketPos = 0
		t := li.src.table
		if t.vers > 0 {
			// Versioned table: drop entries with no visible row, then sort
			// by the visible versions' values — the in-place row may carry
			// a foreign uncommitted write.
			kept := li.bucket[:0]
			for _, rid := range li.bucket {
				if t.visibleRow(rid, li.sn) != nil {
					kept = append(kept, rid)
				}
			}
			li.bucket = kept
			sort.SliceStable(li.bucket, func(a, b int) bool {
				ra := t.visibleRow(li.bucket[a], li.sn)
				rb := t.visibleRow(li.bucket[b], li.sn)
				return li.lessByInner(ra, rb, a, b)
			})
			return nil
		}
		sort.SliceStable(li.bucket, func(a, b int) bool {
			ra, rb := t.Row(li.bucket[a]), t.Row(li.bucket[b])
			return li.lessByInner(ra, rb, a, b)
		})
	default:
		li.ctr.fullScans++
		li.scanPos = 0
	}
	return nil
}

// lessByInner compares two bucket rows by the access path's innerOrder
// terms, tiebreaking on bucket position to reproduce the stable sort's
// tie order.
func (li *levelIter) lessByInner(ra, rb []Value, a, b int) bool {
	for _, ot := range li.ap.innerOrder {
		c := compareValues(ra[ot.col], rb[ot.col])
		if c == 0 {
			continue
		}
		if ot.desc {
			return c > 0
		}
		return c < 0
	}
	return li.bucket[a] < li.bucket[b]
}

// orderedBucket walks the level's B+tree index for the current input
// tuple, collecting matching rowids in key order.
func (li *levelIter) orderedBucket() ([]int, error) {
	return orderedBucketFor(&li.ctr, li.ev, &li.ap, li.src.table, li.bind, li.sn, li.bucket[:0])
}

// orderedBucketFor evaluates an ordered access path's prefix and bounds
// against the current binding and walks the B+tree window. A NULL prefix or
// bound value matches nothing (SQL comparison semantics). A free function —
// not a levelIter method — so the DML path can call it without building an
// iterator (which would force its stack-allocated binding to escape). The
// prefix array and bounds stay on the stack: a range probe per outer row
// allocates nothing beyond the caller's reused bucket.
func orderedBucketFor(ctr *levelCounters, ev *exprEval, ap *accessPlan, t *Table, bind *binding, sn snapshot, buf []int) ([]int, error) {
	// Deletions only tombstone B+tree entries; readers skip entries whose
	// row is gone. Compaction happens at transaction commit (txn.go): this
	// path now runs under the shared lock, where rebuilding the tree would
	// race with other readers.
	var parr [btreeMaxCols]Value
	prefix := parr[:len(ap.eqPrefix)]
	for i, c := range ap.eqPrefix {
		v, err := ev.eval(c.expr, bind)
		if err != nil {
			return nil, err
		}
		if v.IsNull() {
			return nil, nil
		}
		prefix[i] = v
	}
	var lo, hi rangeBound
	if ap.lo != nil {
		v, err := ev.eval(ap.lo.expr, bind)
		if err != nil {
			return nil, err
		}
		if v.IsNull() {
			return nil, nil
		}
		lo = rangeBound{val: v, incl: ap.lo.op == ">=", set: true}
	}
	if ap.hi != nil {
		v, err := ev.eval(ap.hi.expr, bind)
		if err != nil {
			return nil, err
		}
		if v.IsNull() {
			return nil, nil
		}
		hi = rangeBound{val: v, incl: ap.hi.op == "<=", set: true}
	}
	switch ap.kind {
	case accessRangeScan:
		ctr.rangeProbes++
	case accessOrderedScan:
		ctr.fullScans++
	default:
		ctr.indexProbes++
	}
	// visKeep is nil on single-version tables (the common case): the walk
	// takes the zero-overhead path. On versioned tables it both hides
	// entries whose visible row doesn't carry the entry's key (superseded
	// versions, uncommitted foreign writes) and dedups rows indexed under
	// old and new keys at once.
	return ap.oidx.scanRangeVis(prefix, lo, hi, ap.desc, buf, t.visKeep(ap.oidx, sn)), nil
}

// buildHash drains the level's source once into a transient hash table on
// the probe column. Keys are symKey-normalized Values — interned text keys
// on its symbol, so a TEXT-equality join hashes 8 fixed bytes per row — and
// hash equality matches SQL equality across the int/string comparison the
// engine supports while probes pay a struct hash, not interface hashing or
// string formatting.
func (li *levelIter) buildHash() error {
	li.ht = make(map[Value][]int)
	it := li.db.intern
	ci := li.src.columnIndex(li.ap.probe.col)
	if ci < 0 {
		return fmt.Errorf("relational: source %s has no column %q", li.src.name, li.ap.probe.col)
	}
	if t := li.src.table; t != nil {
		if t.pg != nil {
			// Local cursor: the build drains the whole table here, while
			// li.pgc stays on the probe side's position.
			var c pageCursor
			defer c.release()
			for rid := range t.rows {
				row := c.visibleAt(t, rid, li.sn)
				if row == nil || row[ci].IsNull() {
					continue
				}
				li.ctr.rowsScanned++
				k := row[ci].symKey(it)
				li.ht[k] = append(li.ht[k], rid)
			}
			li.ctr.hashJoinBuilds++
			return nil
		}
		for rid, row := range t.rows {
			if t.vers > 0 {
				row = t.visibleRow(rid, li.sn)
			}
			if row == nil || row[ci].IsNull() {
				continue
			}
			li.ctr.rowsScanned++
			k := row[ci].symKey(it)
			li.ht[k] = append(li.ht[k], rid)
		}
	} else {
		for i, row := range li.src.rows.Data {
			if row[ci].IsNull() {
				continue
			}
			li.ctr.rowsScanned++
			k := row[ci].symKey(it)
			li.ht[k] = append(li.ht[k], i)
		}
	}
	li.ctr.hashJoinBuilds++
	return nil
}

// advanceInner yields the next row of the level's own source that passes
// the gated conjuncts, or reports exhaustion for the current input tuple.
func (li *levelIter) advanceInner() (bool, error) {
	for {
		var row []Value
		switch li.ap.kind {
		case accessIndexProbe, accessHashJoin, accessOrderedProbe, accessRangeScan, accessOrderedScan, accessSortedProbe:
			if li.bucketPos >= len(li.bucket) {
				return false, nil
			}
			rid := li.bucket[li.bucketPos]
			li.bucketPos++
			if t := li.src.table; t != nil {
				if t.pg != nil {
					row = li.pgc.visibleAt(t, rid, li.sn)
				} else if t.vers == 0 {
					row = t.Row(rid)
				} else {
					row = t.visibleRow(rid, li.sn)
				}
			} else {
				row = li.src.rows.Data[rid]
			}
			if row == nil {
				continue
			}
		default:
			if t := li.src.table; t != nil {
				end := len(t.rows)
				if li.part != nil {
					end = li.part.hi
				}
				if t.pg != nil {
					row = nil
					for li.scanPos < end {
						r := li.pgc.visibleAt(t, li.scanPos, li.sn)
						li.scanPos++
						if r != nil {
							row = r
							break
						}
					}
					if row == nil {
						return false, nil
					}
				} else if t.vers == 0 {
					for li.scanPos < end && t.rows[li.scanPos] == nil {
						li.scanPos++
					}
					if li.scanPos >= end {
						return false, nil
					}
					row = t.rows[li.scanPos]
					li.scanPos++
				} else {
					row = nil
					for li.scanPos < end {
						row = t.visibleRow(li.scanPos, li.sn)
						li.scanPos++
						if row != nil {
							break
						}
					}
					if row == nil {
						return false, nil
					}
				}
			} else {
				end := len(li.src.rows.Data)
				if li.part != nil {
					end = li.part.hi
				}
				if li.scanPos >= end {
					return false, nil
				}
				row = li.src.rows.Data[li.scanPos]
				li.scanPos++
			}
		}
		li.ctr.rowsScanned++
		li.bind.rows[li.lp.slot] = row
		ok, err := li.checkConds()
		if err != nil {
			return false, err
		}
		if ok {
			return true, nil
		}
	}
}

func (li *levelIter) checkConds() (bool, error) {
	for _, c := range li.lp.conds {
		if c == li.skipCond {
			// Already enforced by the hash-keyed probe: bucket membership
			// coincides with SQL equality (symKey), and NULL probe values
			// yield no bucket.
			continue
		}
		ok, err := li.ev.evalBool(c, li.bind)
		if err != nil {
			return false, err
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}

// ---- row-space iterators ----

// rowIter produces output rows.
//
// Buffer-reuse contract: the slice returned by Next is valid only until the
// next Next or Close call on the same iterator — producers overwrite one
// per-iterator buffer instead of allocating per row. Consumers that retain
// rows (materialization, sorting, merge heads) copy them; streaming
// consumers read and move on, which is what makes the conventional-path
// pipeline allocation-free per row.
type rowIter interface {
	Open() error
	Next() ([]Value, bool, error)
	Close()
}

// valuesIter evaluates a FROM-less select list once.
type valuesIter struct {
	ev    *exprEval
	exprs []SelectExpr
	buf   []Value
	done  bool
}

func (v *valuesIter) Open() error { v.done = false; return nil }
func (v *valuesIter) Close()      {}
func (v *valuesIter) Next() ([]Value, bool, error) {
	if v.done {
		return nil, false, nil
	}
	v.done = true
	if cap(v.buf) < len(v.exprs) {
		v.buf = make([]Value, len(v.exprs))
	}
	row := v.buf[:len(v.exprs)]
	for i, se := range v.exprs {
		val, err := v.ev.eval(se.Expr, nil)
		if err != nil {
			return nil, false, err
		}
		row[i] = val
	}
	return row, true, nil
}

// projectIter evaluates the select list over each join tuple into one
// reused output buffer (see the rowIter contract) — the per-row make that
// used to dominate scan allocations is gone.
type projectIter struct {
	ev    *exprEval
	sel   *SimpleSelect
	bind  *binding
	input bindIter
	buf   []Value
}

func (p *projectIter) Open() error { return p.input.Open() }
func (p *projectIter) Close()      { p.input.Close() }
func (p *projectIter) Next() ([]Value, bool, error) {
	ok, err := p.input.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	if p.sel.Star {
		row := p.buf[:0]
		for i := range p.bind.srcs {
			row = append(row, p.bind.rows[i]...)
		}
		p.buf = row
		return row, true, nil
	}
	if cap(p.buf) < len(p.sel.Exprs) {
		p.buf = make([]Value, len(p.sel.Exprs))
	}
	row := p.buf[:len(p.sel.Exprs)]
	for i, se := range p.sel.Exprs {
		v, err := p.ev.eval(se.Expr, p.bind)
		if err != nil {
			return nil, false, err
		}
		row[i] = v
	}
	return row, true, nil
}

// aggIter folds the whole input through the aggregate accumulators and
// emits a single row — streaming aggregation, nothing buffered.
type aggIter struct {
	ev    *exprEval
	sel   *SimpleSelect
	bind  *binding
	input bindIter
	buf   []Value
	done  bool
}

func (a *aggIter) Open() error { a.done = false; return a.input.Open() }
func (a *aggIter) Close()      { a.input.Close() }
func (a *aggIter) Next() ([]Value, bool, error) {
	if a.done {
		return nil, false, nil
	}
	a.done = true
	state := make([]*aggAccumulator, len(a.sel.Exprs))
	for {
		ok, err := a.input.Next()
		if err != nil {
			return nil, false, err
		}
		if !ok {
			break
		}
		for i, se := range a.sel.Exprs {
			if state[i] == nil {
				state[i] = &aggAccumulator{}
			}
			if err := state[i].feed(a.ev, se.Expr, a.bind); err != nil {
				return nil, false, err
			}
		}
	}
	if cap(a.buf) < len(a.sel.Exprs) {
		a.buf = make([]Value, len(a.sel.Exprs))
	}
	row := a.buf[:len(a.sel.Exprs)]
	for i, se := range a.sel.Exprs {
		if state[i] == nil {
			state[i] = &aggAccumulator{}
		}
		row[i] = state[i].result(a.ev, se.Expr)
	}
	return row, true, nil
}

// distinctIter streams the first occurrence of each distinct row. Keys are
// the tagged byte encoding of the row built in a reused buffer — the
// map[string] lookup on a []byte conversion does not allocate, so duplicate
// rows cost no allocation and only the first occurrence pays one key copy.
// Interned text contributes its ≤6-byte symbol encoding instead of its
// string bytes (appendValueKeySym), shrinking both the key build and the
// retained first-occurrence copies on TEXT-heavy DISTINCTs.
type distinctIter struct {
	input rowIter
	it    *internTable
	seen  map[string]bool
	kbuf  []byte
}

func (d *distinctIter) Open() error {
	d.seen = make(map[string]bool)
	return d.input.Open()
}
func (d *distinctIter) Close() { d.input.Close() }
func (d *distinctIter) Next() ([]Value, bool, error) {
	for {
		row, ok, err := d.input.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		d.kbuf = appendRowKeySym(d.kbuf[:0], row, d.it)
		if d.seen[string(d.kbuf)] {
			continue
		}
		d.seen[string(d.kbuf)] = true
		return row, true, nil
	}
}

// unionIter concatenates its branch streams (UNION ALL).
type unionIter struct {
	parts []rowIter
	cur   int
}

func (u *unionIter) Open() error {
	u.cur = 0
	if len(u.parts) == 0 {
		return nil
	}
	return u.parts[0].Open()
}
func (u *unionIter) Close() {
	for i := u.cur; i < len(u.parts); i++ {
		u.parts[i].Close()
	}
}
func (u *unionIter) Next() ([]Value, bool, error) {
	for u.cur < len(u.parts) {
		row, ok, err := u.parts[u.cur].Next()
		if err != nil {
			return nil, false, err
		}
		if ok {
			return row, true, nil
		}
		u.parts[u.cur].Close()
		u.cur++
		if u.cur < len(u.parts) {
			if err := u.parts[u.cur].Open(); err != nil {
				return nil, false, err
			}
		}
	}
	return nil, false, nil
}

// sortSpec is one resolved ORDER BY key: an output column position.
type sortSpec struct {
	col  int
	desc bool
}

// sortScratch is the reusable backing store of one blocking sort: every
// buffered row's values live contiguously in arena, rows holds the slice
// headers the sort permutes, and offs records row boundaries during the
// fill (arena may relocate as it grows, so headers are cut only after the
// input is drained). Instances recycle through DB.sortPool, so a steady
// stream of sorted queries reaches a high-water mark once and then copies
// rows without allocating.
type sortScratch struct {
	arena []Value
	offs  []int
	rows  [][]Value
}

// sortIter materializes its input and emits it in key order. Sorting is the
// only blocking operator in the pipeline; when the input already streams in
// key order the compiler elides this operator entirely (order.go).
type sortIter struct {
	db      *DB
	input   rowIter
	keys    []sortSpec
	scratch *sortScratch
	buf     [][]Value
	pos     int
}

func (s *sortIter) Open() error {
	s.buf = nil
	s.pos = 0
	if s.scratch == nil {
		if s.db != nil {
			s.scratch, _ = s.db.sortPool.Get().(*sortScratch)
		}
		if s.scratch == nil {
			s.scratch = &sortScratch{}
		}
	}
	sc := s.scratch
	sc.arena = sc.arena[:0]
	sc.offs = sc.offs[:0]
	if err := s.input.Open(); err != nil {
		return err
	}
	for {
		row, ok, err := s.input.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		// The producer reuses its row buffer (rowIter contract); a blocking
		// sort retains every row, so it copies each one — into the shared
		// arena, not a per-row allocation.
		sc.offs = append(sc.offs, len(sc.arena))
		sc.arena = append(sc.arena, row...)
	}
	sc.offs = append(sc.offs, len(sc.arena))
	sc.rows = sc.rows[:0]
	for i := 0; i+1 < len(sc.offs); i++ {
		sc.rows = append(sc.rows, sc.arena[sc.offs[i]:sc.offs[i+1]:sc.offs[i+1]])
	}
	s.buf = sc.rows
	if s.db != nil {
		s.db.stats.SortPasses.Add(1)
		s.db.stats.RowsSorted.Add(int64(len(s.buf)))
	}
	sort.SliceStable(s.buf, func(a, b int) bool {
		return compareRows(s.buf[a], s.buf[b], s.keys) < 0
	})
	return nil
}

// Close returns the scratch to the pool: rows handed out by Next point into
// its arena, which the rowIter contract already declares invalid past Close.
func (s *sortIter) Close() {
	if s.scratch != nil && s.db != nil {
		s.db.sortPool.Put(s.scratch)
	}
	s.scratch = nil
	s.buf = nil
	s.input.Close()
}
func (s *sortIter) Next() ([]Value, bool, error) {
	if s.pos >= len(s.buf) {
		return nil, false, nil
	}
	row := s.buf[s.pos]
	s.pos++
	return row, true, nil
}

// compareRows orders two rows under the sort keys.
func compareRows(a, b []Value, keys []sortSpec) int {
	for _, k := range keys {
		c := compareValues(a[k.col], b[k.col])
		if c == 0 {
			continue
		}
		if k.desc {
			return -c
		}
		return c
	}
	return 0
}

// mergeIter merges UNION ALL branches that each already stream in key
// order, emitting the globally sorted sequence without materializing.
// Ties prefer the earliest branch, then that branch's stream order — the
// sequence a stable sort of the concatenated branches would produce,
// modulo each branch's own resolution of key ties (see btree.go: an index
// walk consuming only a prefix of its key orders ties by the trailing
// columns, where the sorted path would keep heap order).
type mergeIter struct {
	parts []rowIter
	keys  []sortSpec
	heads [][]Value
	// hbufs are per-branch copies of each head row (branch iterators reuse
	// their buffers, and a head outlives its branch's next Next call); out
	// is the returned row's buffer, copied before the winning branch
	// advances over it.
	hbufs [][]Value
	out   []Value
}

// setHead copies a branch's current row into its per-branch buffer.
func (m *mergeIter) setHead(i int, row []Value) {
	if cap(m.hbufs[i]) < len(row) {
		m.hbufs[i] = make([]Value, len(row))
	}
	m.hbufs[i] = m.hbufs[i][:len(row)]
	copy(m.hbufs[i], row)
	m.heads[i] = m.hbufs[i]
}

func (m *mergeIter) Open() error {
	m.heads = make([][]Value, len(m.parts))
	m.hbufs = make([][]Value, len(m.parts))
	for i, p := range m.parts {
		if err := p.Open(); err != nil {
			return err
		}
		row, ok, err := p.Next()
		if err != nil {
			return err
		}
		if ok {
			m.setHead(i, row)
		}
	}
	return nil
}

func (m *mergeIter) Close() {
	for _, p := range m.parts {
		p.Close()
	}
}

func (m *mergeIter) Next() ([]Value, bool, error) {
	best := -1
	for i, h := range m.heads {
		if h == nil {
			continue
		}
		if best < 0 || compareRows(h, m.heads[best], m.keys) < 0 {
			best = i
		}
	}
	if best < 0 {
		return nil, false, nil
	}
	head := m.heads[best]
	if cap(m.out) < len(head) {
		m.out = make([]Value, len(head))
	}
	m.out = m.out[:len(head)]
	copy(m.out, head)
	next, ok, err := m.parts[best].Next()
	if err != nil {
		return nil, false, err
	}
	if ok {
		m.setHead(best, next)
	} else {
		m.heads[best] = nil
	}
	return m.out, true, nil
}

// resolveOrderKeys maps ORDER BY expressions (column names or 1-based
// positions) onto output column indexes.
func resolveOrderKeys(orderBy []OrderKey, cols []string) ([]sortSpec, error) {
	keys := make([]sortSpec, len(orderBy))
	for i, k := range orderBy {
		switch e := k.Expr.(type) {
		case *ColumnRef:
			found := -1
			for ci, c := range cols {
				if strings.EqualFold(c, e.Name) {
					found = ci
					break
				}
			}
			if found < 0 {
				return nil, fmt.Errorf("relational: ORDER BY column %q not in result", e.Name)
			}
			keys[i] = sortSpec{col: found, desc: k.Desc}
		case *Literal:
			n, ok := e.Value.Int()
			if !ok || n < 1 || int(n) > len(cols) {
				return nil, fmt.Errorf("relational: bad positional ORDER BY")
			}
			keys[i] = sortSpec{col: int(n) - 1, desc: k.Desc}
		default:
			return nil, fmt.Errorf("relational: ORDER BY supports column references only")
		}
	}
	return keys, nil
}

// ---- pipeline assembly ----

// resolveSources maps FROM items to base tables or CTE result sets. Caller
// holds db.mu.
func (db *DB) resolveSources(s *SimpleSelect, env *execEnv) ([]*source, error) {
	srcs := make([]*source, len(s.From))
	for i, f := range s.From {
		if rows, ok := env.lookupCTE(f.Table); ok {
			srcs[i] = &source{name: f.Name(), rows: rows}
			continue
		}
		t := db.tables[strings.ToLower(f.Table)]
		if t == nil {
			return nil, fmt.Errorf("relational: no table or CTE %q", f.Table)
		}
		srcs[i] = &source{name: f.Name(), table: t}
	}
	return srcs, nil
}

// outputColumns names the result columns of a select body.
func outputColumns(s *SimpleSelect, srcs []*source) []string {
	var cols []string
	if s.Star {
		for _, src := range srcs {
			cols = append(cols, src.columns()...)
		}
		return cols
	}
	for i, se := range s.Exprs {
		switch {
		case se.Alias != "":
			cols = append(cols, se.Alias)
		default:
			if cr, ok := se.Expr.(*ColumnRef); ok {
				cols = append(cols, cr.Name)
			} else {
				cols = append(cols, fmt.Sprintf("c%d", i+1))
			}
		}
	}
	return cols
}

// bodyCompiled is one SELECT body's compiled form: resolved sources, the
// logical plan, the physical access path per level, and whether the body's
// stream satisfies the requested keys. EXPLAIN renders it; the executor
// builds iterators from it — one decision, two consumers.
type bodyCompiled struct {
	sel       *SimpleSelect
	srcs      []*source
	plan      *simplePlan
	access    []accessPlan
	aggregate bool
	satisfied bool
	// pinned: the stream's order tuple is unique per row (order.go).
	pinned bool
}

// compileSimple compiles one SELECT body against keys it would like the
// stream ordered by (possibly none). srcs may carry pre-resolved sources
// (nil to resolve here). Caller holds db.mu.
func (db *DB) compileSimple(s *SimpleSelect, env *execEnv, keys []sortSpec, srcs []*source) (*bodyCompiled, error) {
	if srcs == nil {
		var err error
		if srcs, err = db.resolveSources(s, env); err != nil {
			return nil, err
		}
	}
	// Validate column references eagerly so errors surface even when no
	// rows flow through the join.
	if !s.Star {
		for _, se := range s.Exprs {
			if err := validateRefs(se.Expr, srcs); err != nil {
				return nil, err
			}
		}
	}
	if s.Where != nil {
		if err := validateRefs(s.Where, srcs); err != nil {
			return nil, err
		}
	}
	bc := &bodyCompiled{sel: s, srcs: srcs}
	if !s.Star {
		for _, se := range s.Exprs {
			if containsAggregate(se.Expr) {
				bc.aggregate = true
				break
			}
		}
	}
	if len(srcs) == 0 || bc.aggregate {
		// A single output row satisfies any order and is trivially unique.
		bc.satisfied = true
		bc.pinned = true
		if len(srcs) > 0 {
			bc.plan = db.planFor(s, srcs)
			bc.access, _, _ = db.planPhysical(bc.plan, srcs, nil)
		}
		return bc, nil
	}
	bc.plan = db.planFor(s, srcs)
	want, mappable := mapWantTerms(s, srcs, keys)
	if !mappable {
		bc.access, _, _ = db.planPhysical(bc.plan, srcs, nil)
		return bc, nil
	}
	bc.access, bc.satisfied, bc.pinned = db.planPhysical(bc.plan, srcs, want)
	return bc, nil
}

// buildBodyIter turns a compiled body into its streaming iterator.
func (db *DB) buildBodyIter(bc *bodyCompiled, env *execEnv) rowIter {
	s := bc.sel
	ev := newEval(db, env)
	an := env.an
	if len(bc.srcs) == 0 {
		var it rowIter = &valuesIter{ev: ev, exprs: s.Exprs}
		if an != nil {
			it = &instrRow{in: it, m: an.op(bc, anProject)}
		}
		if s.Distinct {
			it = &distinctIter{input: it, it: db.intern}
			if an != nil {
				it = &instrRow{in: it, m: an.op(bc, anDistinct)}
			}
		}
		return it
	}
	if k := db.bodyWorkers(bc); k > 1 {
		return db.buildParallelBody(bc, env, k)
	}
	bind := &binding{
		names: make([]string, len(bc.srcs)),
		srcs:  bc.srcs,
		rows:  make([][]Value, len(bc.srcs)),
	}
	for i, src := range bc.srcs {
		bind.names[i] = strings.ToLower(src.name)
	}
	var chain bindIter = &oneIter{}
	for pos, lp := range bc.plan.levels {
		li := &levelIter{
			db:    db,
			ev:    ev,
			bind:  bind,
			src:   bc.srcs[lp.slot],
			lp:    lp,
			ap:    bc.access[pos],
			input: chain,
			sn:    env.snap,
		}
		switch li.ap.kind {
		case accessHashJoin:
			li.skipCond = li.ap.probe.cond
		case accessIndexProbe:
			// A persistent hash index on a versioned table may hold
			// entries for superseded versions; keep the probe conjunct so
			// checkConds re-validates equality against the visible row.
			if li.src.table == nil || li.src.table.vers == 0 {
				li.skipCond = li.ap.probe.cond
			}
		}
		chain = li
		if an != nil {
			m := an.op(bc, pos)
			li.anm = m
			chain = &instrBind{in: li, m: m}
		}
	}
	var it rowIter
	if bc.aggregate {
		it = &aggIter{ev: ev, sel: s, bind: bind, input: chain}
	} else {
		it = &projectIter{ev: ev, sel: s, bind: bind, input: chain}
	}
	if an != nil {
		it = &instrRow{in: it, m: an.op(bc, anProject)}
	}
	if s.Distinct {
		// distinctIter streams first occurrences, preserving input order.
		it = &distinctIter{input: it, it: db.intern}
		if an != nil {
			it = &instrRow{in: it, m: an.op(bc, anDistinct)}
		}
	}
	return it
}

// selectCompiled is a full SELECT's compiled form (CTEs are the caller's
// concern — materialized rows or EXPLAIN stubs live in env).
type selectCompiled struct {
	bodies []*bodyCompiled
	cols   []string
	// keys are the resolved ORDER BY positions (explicit, or the advisory
	// want propagated from an enclosing statement).
	keys     []sortSpec
	explicit bool // statement has its own ORDER BY
	// elide reports that every branch streams in key order already: no
	// sort runs — a single branch passes through, branches merge.
	elide bool
	// singleRow predicts the statement yields at most one row (aggregate
	// body, no FROM, or every level pinned by a unique-column equality).
	singleRow bool
}

// compileSelect compiles a SELECT whose CTEs are already bound in env.
// extWant is the advisory order an enclosing statement would like (CTE
// materialization); it steers access paths but never adds a sort.
func (db *DB) compileSelect(s *SelectStmt, env *execEnv, extWant []OrderKey) (*selectCompiled, error) {
	cs := &selectCompiled{explicit: len(s.OrderBy) > 0}
	orderKeys := s.OrderBy
	if !cs.explicit {
		orderKeys = extWant
	}
	// Keys resolve against the first branch's output columns.
	srcs0, err := db.resolveSources(s.Body[0], env)
	if err != nil {
		return nil, err
	}
	cs.cols = outputColumns(s.Body[0], srcs0)
	if len(orderKeys) > 0 {
		keys, err := resolveOrderKeys(orderKeys, cs.cols)
		if err != nil {
			if cs.explicit {
				return nil, err
			}
			keys = nil // unresolvable advisory want: ignore
		}
		cs.keys = keys
	}
	for i, body := range s.Body {
		if i > 0 {
			srcs0 = nil
		}
		bc, err := db.compileSimple(body, env, cs.keys, srcs0)
		if err != nil {
			return nil, err
		}
		if i > 0 {
			if bcols := outputColumns(body, bc.srcs); len(bcols) != len(cs.cols) {
				return nil, fmt.Errorf("relational: UNION ALL branches have %d vs %d columns", len(cs.cols), len(bcols))
			}
		}
		cs.bodies = append(cs.bodies, bc)
	}
	if len(cs.keys) > 0 {
		cs.elide = true
		for _, bc := range cs.bodies {
			if !bc.satisfied {
				cs.elide = false
				break
			}
		}
	}
	if len(cs.bodies) == 1 {
		bc := cs.bodies[0]
		cs.singleRow = bc.aggregate || len(bc.srcs) == 0
		if !cs.singleRow && bc.plan != nil {
			cs.singleRow = true
			for _, lp := range bc.plan.levels {
				if !singleRowLevel(lp, bc.srcs[lp.slot]) {
					cs.singleRow = false
					break
				}
			}
		}
	}
	return cs, nil
}

// achievedOrder reports the output order the compiled statement's rows will
// stream (and so materialize) in, plus the output columns known constant —
// the properties recorded on CTE Rows for consumers to inherit.
func (cs *selectCompiled) achievedOrder() (order []sortSpec, consts []int, unique bool) {
	// Constants matter only next to a recorded order (consumers skip them
	// between order terms); keyless results skip the computation.
	if len(cs.bodies) == 1 && len(cs.keys) > 0 {
		consts = cs.bodies[0].outputConsts()
	}
	satisfied := cs.explicit || (len(cs.bodies) == 1 && len(cs.keys) > 0 && cs.elide)
	if !satisfied {
		return nil, consts, false
	}
	constSet := make(map[int]bool, len(consts))
	for _, c := range consts {
		constSet[c] = true
	}
	for _, k := range cs.keys {
		if !constSet[k.col] {
			order = append(order, k)
		}
	}
	// The order tuple is unique per row only for a single elided branch
	// whose every level is pinned; a sorted or merged stream gives no such
	// guarantee.
	unique = len(cs.bodies) == 1 && cs.elide && (cs.bodies[0].pinned || cs.singleRow)
	return order, consts, unique
}

// outputConsts lists output positions that hold one value across all rows:
// literal select expressions and columns pinned by an uncorrelated equality
// or constant in the source CTE.
func (bc *bodyCompiled) outputConsts() []int {
	if bc.plan == nil && len(bc.srcs) > 0 {
		return nil
	}
	var binds map[[2]int]bool
	if bc.plan != nil {
		binds = constBindCols(bc.plan, bc.srcs)
	}
	var out []int
	if bc.sel.Star {
		pos := 0
		for si, src := range bc.srcs {
			for ci := range src.columns() {
				if binds[[2]int{si, ci}] {
					out = append(out, pos)
				}
				pos++
			}
		}
		return out
	}
	for i, se := range bc.sel.Exprs {
		switch e := se.Expr.(type) {
		case *Literal, *Param:
			out = append(out, i)
		case *ColumnRef:
			slot := resolveSlot(e, bc.srcs)
			if slot < 0 {
				continue
			}
			if ci := bc.srcs[slot].columnIndex(e.Name); ci >= 0 && binds[[2]int{slot, ci}] {
				out = append(out, i)
			}
		}
	}
	return out
}

// buildSelectIter compiles a full SELECT (whose CTEs are already
// materialized in env) into its top-level row iterator, reporting the
// achieved output order for Rows annotation.
func (db *DB) buildSelectIter(s *SelectStmt, env *execEnv, extWant []OrderKey) (rowIter, *selectCompiled, error) {
	cs, err := db.compileSelect(s, env, extWant)
	if err != nil {
		return nil, nil, err
	}
	an := env.an
	if an != nil {
		an.noteSelect(s, cs)
	}
	parts := make([]rowIter, len(cs.bodies))
	for i, bc := range cs.bodies {
		parts[i] = db.buildBodyIter(bc, env)
	}
	var top rowIter
	switch {
	case cs.explicit && cs.elide && len(parts) > 1:
		top = &mergeIter{parts: parts, keys: cs.keys}
		if an != nil {
			top = &instrRow{in: top, m: an.op(cs, anMerge)}
		}
	case len(parts) == 1:
		top = parts[0]
	default:
		top = &unionIter{parts: parts}
		if an != nil {
			top = &instrRow{in: top, m: an.op(cs, anUnion)}
		}
	}
	if cs.explicit && !cs.elide {
		top = &sortIter{db: db, input: top, keys: cs.keys}
		if an != nil {
			top = &instrRow{in: top, m: an.op(cs, anSort)}
		}
	}
	return top, cs, nil
}

package relational

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// mvccSeedDB builds the oracle-stress schema: 100 base rows plus one
// "marker" row whose id encodes the committed generation. Every committed
// state k is fully determined: base ids 1..100 and marker id 1000+k, all
// with val = k.
const (
	mvccBaseRows = 100
	mvccMarker   = 1000
)

func mvccSeedDB(t testing.TB) *DB {
	t.Helper()
	db := NewDB()
	db.MustExec("CREATE TABLE acct (id INTEGER, val INTEGER)")
	db.MustExec("CREATE ORDERED INDEX acct_id ON acct (id)")
	for i := 1; i <= mvccBaseRows; i++ {
		db.MustExec(fmt.Sprintf("INSERT INTO acct VALUES (%d, 0)", i))
	}
	db.MustExec(fmt.Sprintf("INSERT INTO acct VALUES (%d, 0)", mvccMarker))
	return db
}

// mvccCommitGen advances the database from committed generation k-1 to k in
// one transaction: rewrite every row's val (split across two statements so
// an interleaved reader would observe a torn state if isolation broke),
// insert the new marker, delete the old one.
func mvccCommitGen(db *DB, k int) error {
	tx := db.Begin()
	mid := mvccBaseRows / 2
	stmts := []string{
		fmt.Sprintf("UPDATE acct SET val = %d WHERE id <= %d", k, mid),
		fmt.Sprintf("UPDATE acct SET val = %d WHERE id > %d", k, mid),
		fmt.Sprintf("INSERT INTO acct VALUES (%d, %d)", mvccMarker+k, k),
		fmt.Sprintf("DELETE FROM acct WHERE id = %d", mvccMarker+k-1),
	}
	for _, s := range stmts {
		if _, err := tx.Exec(s); err != nil {
			tx.Rollback()
			return fmt.Errorf("%s: %w", s, err)
		}
	}
	return tx.Commit()
}

// checkMvccState verifies an observed ordered result set reconstructs some
// committed generation exactly, and returns that generation.
func checkMvccState(rows *Rows) (int, error) {
	if n := len(rows.Data); n != mvccBaseRows+1 {
		return 0, fmt.Errorf("observed %d rows, want %d", n, mvccBaseRows+1)
	}
	last := rows.Data[len(rows.Data)-1]
	k := int(last[1].MustInt())
	wantMarker := int64(mvccMarker + k)
	if last[0].MustInt() != wantMarker {
		return 0, fmt.Errorf("marker id %d does not match generation %d", last[0].MustInt(), k)
	}
	prev := int64(0)
	for i, row := range rows.Data {
		id, val := row[0].MustInt(), row[1].MustInt()
		if id <= prev {
			return 0, fmt.Errorf("ids out of order at %d: %d after %d", i, id, prev)
		}
		prev = id
		if i < mvccBaseRows && id != int64(i+1) {
			return 0, fmt.Errorf("base id drifted at %d: got %d", i, id)
		}
		if val != int64(k) {
			return 0, fmt.Errorf("torn state: row id=%d has val=%d, generation %d", id, val, k)
		}
	}
	return k, nil
}

// TestMVCCSnapshotOracle stresses N readers against a live, continuously
// committing writer. Every observed result set must equal the full
// reconstruction at some committed generation — never a torn mix of two —
// and generations must advance monotonically per reader.
func TestMVCCSnapshotOracle(t *testing.T) {
	const (
		readers = 4
		cycles  = 150
	)
	db := mvccSeedDB(t)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan error, readers+1)

	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		for k := 1; k <= cycles; k++ {
			if err := mvccCommitGen(db, k); err != nil {
				errs <- err
				return
			}
		}
	}()

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			lastK := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				rows, err := db.Query("SELECT id, val FROM acct ORDER BY id")
				if err != nil {
					errs <- err
					return
				}
				k, err := checkMvccState(rows)
				if err != nil {
					errs <- err
					return
				}
				if k < lastK {
					errs <- fmt.Errorf("snapshot went backwards: %d after %d", k, lastK)
					return
				}
				lastK = k
			}
		}()
	}

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	// Final state is the last committed generation.
	rows, err := db.Query("SELECT id, val FROM acct ORDER BY id")
	if err != nil {
		t.Fatal(err)
	}
	k, err := checkMvccState(rows)
	if err != nil {
		t.Fatal(err)
	}
	if k != cycles {
		t.Errorf("final generation %d, want %d", k, cycles)
	}
}

// TestReaderNotBlockedByOpenTransaction pins the point of the whole design:
// a reader completes (bounded latency) while a write transaction is open,
// and sees the pre-transaction state.
func TestReaderNotBlockedByOpenTransaction(t *testing.T) {
	db := mvccSeedDB(t)
	if err := mvccCommitGen(db, 1); err != nil {
		t.Fatal(err)
	}
	tx := db.Begin()
	if _, err := tx.Exec("UPDATE acct SET val = 99"); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec(fmt.Sprintf("DELETE FROM acct WHERE id = %d", mvccBaseRows)); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		rows, err := db.Query("SELECT id, val FROM acct ORDER BY id")
		if err != nil {
			done <- err
			return
		}
		k, err := checkMvccState(rows)
		if err == nil && k != 1 {
			err = fmt.Errorf("reader saw generation %d during open transaction, want 1", k)
		}
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Error(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("reader blocked behind an open write transaction")
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	rows, err := db.Query("SELECT id, val FROM acct ORDER BY id")
	if err != nil {
		t.Fatal(err)
	}
	if k, err := checkMvccState(rows); err != nil || k != 1 {
		t.Errorf("state after rollback: generation %d, err %v", k, err)
	}
}

// TestFirstCommitterWins covers both conflict detections: an intent held by
// a concurrent transaction, and a commit that landed after the loser's
// snapshot. The loser aborts cleanly; the final state carries only the
// winner's write.
func TestFirstCommitterWins(t *testing.T) {
	db := NewDB()
	db.MustExec("CREATE TABLE kv (k INTEGER, v INTEGER)")
	db.MustExec("INSERT INTO kv VALUES (1, 10)")
	db.MustExec("INSERT INTO kv VALUES (2, 20)")

	// Intent collision: tx2 touches a table tx1 has written.
	tx1 := db.Begin()
	tx2 := db.Begin()
	if _, err := tx1.Exec("UPDATE kv SET v = 11 WHERE k = 1"); err != nil {
		t.Fatal(err)
	}
	if _, err := tx2.Exec("UPDATE kv SET v = 22 WHERE k = 2"); !errors.Is(err, ErrWriteConflict) {
		t.Fatalf("overlapping writer got %v, want ErrWriteConflict", err)
	}
	if err := tx2.Rollback(); err != nil {
		t.Fatal(err)
	}
	if err := tx1.Commit(); err != nil {
		t.Fatal(err)
	}
	rows, err := db.Query("SELECT k, v FROM kv ORDER BY k")
	if err != nil {
		t.Fatal(err)
	}
	if rows.Data[0][1].MustInt() != 11 || rows.Data[1][1].MustInt() != 20 {
		t.Errorf("final state %v, want winner-only (11, 20)", rows.Data)
	}

	// Stale snapshot: tx3 began before tx4's commit, so its later write to
	// the same table loses even though no intent is held anymore.
	tx3 := db.Begin()
	tx4 := db.Begin()
	if _, err := tx4.Exec("UPDATE kv SET v = 40 WHERE k = 2"); err != nil {
		t.Fatal(err)
	}
	if err := tx4.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := tx3.Exec("UPDATE kv SET v = 30 WHERE k = 1"); !errors.Is(err, ErrWriteConflict) {
		t.Fatalf("stale-snapshot writer got %v, want ErrWriteConflict", err)
	}
	if err := tx3.Rollback(); err != nil {
		t.Fatal(err)
	}
	if got := db.Stats().WriteConflicts; got < 2 {
		t.Errorf("WriteConflicts = %d, want >= 2", got)
	}
	rows, err = db.Query("SELECT k, v FROM kv ORDER BY k")
	if err != nil {
		t.Fatal(err)
	}
	if rows.Data[0][1].MustInt() != 11 || rows.Data[1][1].MustInt() != 40 {
		t.Errorf("final state %v, want (11, 40)", rows.Data)
	}
}

// TestAutocommitWaitsForIntent: an autocommit statement colliding with an
// open transaction's intent parks until the intent releases, then applies
// on top of the committed state instead of failing.
func TestAutocommitWaitsForIntent(t *testing.T) {
	db := NewDB()
	db.MustExec("CREATE TABLE kv (k INTEGER, v INTEGER)")
	db.MustExec("INSERT INTO kv VALUES (1, 10)")
	tx := db.Begin()
	if _, err := tx.Exec("UPDATE kv SET v = 20 WHERE k = 1"); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := db.Exec("UPDATE kv SET v = v + 1 WHERE k = 1")
		done <- err
	}()
	// The autocommit writer must still be parked while the intent is held.
	select {
	case err := <-done:
		t.Fatalf("autocommit write finished during open transaction (err=%v)", err)
	case <-time.After(50 * time.Millisecond):
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("autocommit write never unparked")
	}
	rows, err := db.Query("SELECT v FROM kv")
	if err != nil {
		t.Fatal(err)
	}
	if got := rows.Data[0][0].MustInt(); got != 21 {
		t.Errorf("v = %d, want 21 (committed 20, then +1)", got)
	}
}

// TestSingleVersionStatsAndVacuum pins the fast-path invariants: queries
// against tables that were never written under a registered snapshot report
// zero chain hops and zero snapshots; a commit with no live readers
// vacuums its superseded versions back to single-version state.
func TestSingleVersionStatsAndVacuum(t *testing.T) {
	db := mvccSeedDB(t)
	db.ResetStats()
	for i := 0; i < 5; i++ {
		for _, q := range []string{"SELECT id, val FROM acct ORDER BY id", "SELECT COUNT(*) FROM acct WHERE id > 10"} {
			if _, err := db.Query(q); err != nil {
				t.Fatal(err)
			}
		}
	}
	st := db.Stats()
	if st.VersionChainHops != 0 {
		t.Errorf("single-version reads walked %d chain hops, want 0", st.VersionChainHops)
	}
	if st.SnapshotsTaken != 0 {
		t.Errorf("autocommit-only workload took %d snapshots, want 0", st.SnapshotsTaken)
	}

	// One committed transaction with no concurrent readers: versions are
	// reclaimed at commit and the table returns to single-version state.
	if err := mvccCommitGen(db, 1); err != nil {
		t.Fatal(err)
	}
	st = db.Stats()
	if st.SnapshotsTaken != 1 {
		t.Errorf("SnapshotsTaken = %d, want 1", st.SnapshotsTaken)
	}
	if st.VersionsVacuumed == 0 {
		t.Error("commit with no live snapshots vacuumed nothing")
	}
	if tab := db.Table("acct"); tab.vers != 0 {
		t.Errorf("table still versioned after vacuum: vers = %d", tab.vers)
	}
	// And the fast path is back: fresh reads still walk no chains.
	db.ResetStats()
	if _, err := db.Query("SELECT id, val FROM acct ORDER BY id"); err != nil {
		t.Fatal(err)
	}
	if st := db.Stats(); st.VersionChainHops != 0 {
		t.Errorf("post-vacuum reads walked %d chain hops, want 0", st.VersionChainHops)
	}
}

// TestExplainPredictsCTEFanOut pins EXPLAIN/runtime agreement for bodies
// driven by a CTE: the stub's predicted cardinality (Rows.est) sizes the
// fan-out, so the rendered plan shows the Exchange the executor runs.
func TestExplainPredictsCTEFanOut(t *testing.T) {
	db := NewDB()
	db.MustExec("CREATE TABLE big (id INTEGER, x INTEGER)")
	for i := 0; i < 8*parMinRows; i++ {
		db.MustExec(fmt.Sprintf("INSERT INTO big VALUES (%d, %d)", i, i%7))
	}
	db.SetParallelism(4)
	const q = "WITH c AS (SELECT id, x FROM big) SELECT id FROM c WHERE x > 2"
	plan, err := db.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	// Both the CTE body (table-driven) and the outer body (CTE-driven)
	// fan out; before Rows.est the CTE-driven body predicted serial.
	if got := strings.Count(plan, "Exchange (workers=4, ordered)"); got != 2 {
		t.Errorf("plan has %d Exchange lines, want 2 (CTE body and outer body):\n%s", got, plan)
	}
	// And the executor agrees: the run fans out both bodies.
	db.ResetStats()
	if _, err := db.Query(q); err != nil {
		t.Fatal(err)
	}
	if st := db.Stats(); st.ParallelWorkers < 8 {
		t.Errorf("runtime ParallelWorkers = %d, want >= 8", st.ParallelWorkers)
	}
}

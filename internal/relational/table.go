package relational

import (
	"fmt"
	"strings"
)

// Column describes one table column.
type Column struct {
	Name string
	Type Type
}

// Schema is an ordered column list.
type Schema struct {
	Columns []Column
	byName  map[string]int
}

// NewSchema builds a schema, rejecting duplicate column names
// (case-insensitively, like SQL identifiers). byName carries both the
// declared spelling and the lower-case form, so the common exact-spelling
// lookup needs no ToLower (which allocates for mixed-case names like
// parentId — a per-row cost when column references resolve during a scan).
func NewSchema(cols []Column) (*Schema, error) {
	s := &Schema{Columns: cols, byName: make(map[string]int, 2*len(cols))}
	for i, c := range cols {
		key := strings.ToLower(c.Name)
		if _, dup := s.byName[key]; dup {
			return nil, fmt.Errorf("relational: duplicate column %q", c.Name)
		}
		s.byName[key] = i
		s.byName[c.Name] = i
	}
	return s, nil
}

// ColumnIndex returns the position of the named column, or -1. The map
// covers declared and lower-case spellings; other casings fall back to an
// allocation-free EqualFold scan (schemas are a handful of columns).
func (s *Schema) ColumnIndex(name string) int {
	if i, ok := s.byName[name]; ok {
		return i
	}
	for i := range s.Columns {
		if strings.EqualFold(s.Columns[i].Name, name) {
			return i
		}
	}
	return -1
}

// Table is a heap table: a row slice with tombstoned deletions and hash
// indexes. Row identity (rowid) is positional and stable for the lifetime of
// the row.
type Table struct {
	Name   string
	Schema *Schema

	// db points back at the owning database so mutations record undo
	// entries into its active transaction log (txn.go). Tables built
	// directly via NewTable (outside any DB) have no owner and are not
	// transaction-tracked.
	db *DB

	rows  [][]Value // nil entry = deleted
	live  int
	index map[string]*hashIndex // keyed by lower-case column name
	// ordered holds the B+tree indexes, keyed by their canonical
	// comma-joined column list; orderedList caches them sorted by that key
	// for allocation-free iteration on the planning path (index.go).
	ordered     map[string]*orderedIndex
	orderedList []*orderedIndex
	// uniqueCols marks columns holding at most one row per value — the
	// auto-indexed tuple-id column, whose uniqueness the shredder
	// guarantees. An equality on a unique column pins a join level to a
	// single row, which order planning exploits (order.go).
	uniqueCols map[int]bool
	// indexEpoch increments whenever the table's index set (or an index's
	// identity, as on snapshot restore) changes. Cached physical access
	// plans validate against the sum of their sources' epochs.
	indexEpoch int64
	// noIntern opts the table out of string interning (temp work areas:
	// written once, offset, and drained — the symbol would never be probed
	// before the table is dropped). Lazy symKey lookups keep such rows
	// keying identically to interned copies of the same strings.
	noIntern bool

	// MVCC state (mvcc.go), guarded by the DB writer lock. meta holds
	// per-row version metadata (allocated lazily, only once versioned writes
	// happen); vers counts rows whose metadata is non-trivial — the
	// single-version fast paths gate on vers == 0. intentTxn is the open
	// transaction holding a write intent on the table (0 = none), and
	// lastCommit is the stamp of the last commit that touched it, which
	// first-committer-wins checks against a claimer's snapshot.
	meta       []rowMeta
	vers       int
	intentTxn  uint64
	lastCommit uint64

	// pg, when non-nil, is the table's paged-storage state (paged.go): rows
	// live on buffer-pool-managed heap pages, a nil t.rows slot means
	// "evicted, refault on demand" rather than "deleted", and pg.dir is the
	// liveness authority. Every direct t.rows access on a hot path either
	// gates on pg == nil or routes through curRow/liveAt/pageCursor.
	pg *pagedTable
}

// writerCtx returns the active write context when this table's mutations
// must take the versioned form (an open snapshot could observe intermediate
// state), nil for plain physical writes. db.writer is set for every explicit
// transaction statement, and for autocommit statements only while explicit
// snapshots are registered.
func (t *Table) writerCtx() *writeCtx {
	if t.db == nil {
		return nil
	}
	return t.db.writer
}

// writeSnap is the snapshot the executing writer statement reads at — its
// write context's view when one is active, latest-committed otherwise.
func (t *Table) writeSnap() snapshot {
	if w := t.writerCtx(); w != nil {
		return w.snap()
	}
	return snapshot{ts: allTS}
}

// internRowValue interns a stored TEXT value into the owning DB's table,
// returning the value with its symbol id set and its string rewritten to
// the canonical copy (so duplicate attribute values across millions of rows
// share one backing array). Insert and Update both route every stored text
// through here — interning at the storage chokepoint is what makes a
// column's symbol state uniform, wherever the row came from (bulk shred
// load, SQL INSERT, WAL replay, snapshot restore).
func (t *Table) internRowValue(v Value) Value {
	if v.kind != KindText || t.noIntern || t.db == nil {
		return v
	}
	it := t.db.intern
	if it == nil {
		return v
	}
	v.sym, v.s = it.getOrInsert(v.s)
	return v
}

// NewTable creates an empty table.
func NewTable(name string, schema *Schema) *Table {
	return &Table{
		Name:    name,
		Schema:  schema,
		index:   make(map[string]*hashIndex),
		ordered: make(map[string]*orderedIndex),
	}
}

// RowCount returns the number of live rows.
func (t *Table) RowCount() int { return t.live }

// Insert appends a row, coercing values to column types, and returns its
// rowid.
func (t *Table) Insert(vals []Value) (int, error) {
	if len(vals) != len(t.Schema.Columns) {
		return 0, fmt.Errorf("relational: table %s expects %d values, got %d", t.Name, len(t.Schema.Columns), len(vals))
	}
	w := t.writerCtx()
	if w != nil {
		if err := t.db.claimIntentLocked(t); err != nil {
			return 0, err
		}
	}
	row := make([]Value, len(vals))
	for i, v := range vals {
		cv, err := coerce(v, t.Schema.Columns[i].Type)
		if err != nil {
			return 0, fmt.Errorf("relational: table %s column %s: %w", t.Name, t.Schema.Columns[i].Name, err)
		}
		row[i] = t.internRowValue(cv)
	}
	// Unique key columns are enforced, not assumed: order planning elides
	// sorts on the premise that an id equality pins one row, so a
	// duplicate must fail loudly here rather than corrupt orderings later.
	for ci := range t.uniqueCols {
		if v := row[ci]; !v.IsNull() && t.uniqueViolated(ci, v, -1) {
			return 0, fmt.Errorf("relational: duplicate value %s for unique column %s.%s",
				valueString(v), t.Name, t.Schema.Columns[ci].Name)
		}
	}
	rid := len(t.rows)
	if err := t.pgRowFits(rid, row); err != nil {
		return 0, err
	}
	t.rows = append(t.rows, row)
	t.live++
	t.pgPlace(rid, row)
	if w != nil {
		// Versioned insert: the row is physically present but marked, so
		// only its own transaction sees it until commit.
		t.ensureMeta()
		t.meta[rid].begin = markBit | w.txnID
		t.vers++
		if t.db.undo != nil {
			t.db.undo.recordInsertV(t, rid)
		}
	} else if t.db != nil && t.db.undo != nil {
		t.db.undo.recordInsert(t, rid)
	}
	for _, idx := range t.index {
		if v := row[idx.col]; !v.IsNull() {
			idx.add(v, rid)
		}
	}
	for _, oidx := range t.orderedList {
		oidx.tree.insert(oidx.keyFor(rid, row))
	}
	return rid, nil
}

// Delete tombstones a row and unindexes it. It returns the deleted row's
// values for trigger OLD bindings. In versioned mode the row and its index
// entries stay physically in place — only the version metadata records the
// deletion, and vacuum removes the row once no snapshot can see it.
func (t *Table) Delete(rid int) ([]Value, error) {
	if rid < 0 || rid >= len(t.rows) {
		return nil, fmt.Errorf("relational: table %s has no row %d", t.Name, rid)
	}
	row := t.curRow(rid)
	if row == nil {
		return nil, fmt.Errorf("relational: table %s has no row %d", t.Name, rid)
	}
	if w := t.writerCtx(); w != nil {
		if err := t.db.claimIntentLocked(t); err != nil {
			return nil, err
		}
		t.ensureMeta()
		m := &t.meta[rid]
		wasVers := m.begin != 0 || m.end != 0 || m.older != nil
		m.end = markBit | w.txnID
		if !wasVers {
			t.vers++
		}
		t.live--
		if t.db.undo != nil {
			t.db.undo.recordDeleteV(t, rid, wasVers)
		}
		return row, nil
	}
	// Dirty the page before touching the slot (paged mode): a dirty page
	// cannot evict, so the nil written below stays the slot's value.
	t.pgMark(rid)
	if t.db != nil && t.db.undo != nil {
		t.db.undo.recordDelete(t, rid, row)
	}
	for _, idx := range t.index {
		if v := row[idx.col]; !v.IsNull() {
			idx.remove(v, rid)
		}
	}
	t.rows[rid] = nil
	t.pgDrop(rid)
	t.live--
	// Ordered indexes tombstone lazily: readers skip entries whose row is
	// gone, and the next ordered read compacts the tree once stale entries
	// outnumber live ones (index.go) — bulk deletes never pay a descent.
	for _, oidx := range t.orderedList {
		oidx.stale++
	}
	return row, nil
}

// Update overwrites the given columns of a row, maintaining indexes.
// Ordered-index keys are unlinked before the row mutates and re-inserted
// after, so a multi-column assignment moves each B+tree entry exactly once.
func (t *Table) Update(rid int, cols []int, vals []Value) error {
	if rid < 0 || rid >= len(t.rows) || t.curRow(rid) == nil {
		return fmt.Errorf("relational: table %s has no row %d", t.Name, rid)
	}
	if w := t.writerCtx(); w != nil {
		return t.updateVersioned(rid, cols, vals, w)
	}
	row := t.rows[rid]
	// Dirty the page before mutating in place: unique probes below can
	// fault other pages in, and the eviction pressure they apply must not
	// take the page under this row (dirty pages never evict).
	t.pgMark(rid)
	if t.db != nil && t.db.undo != nil {
		// The pre-image restores every assigned column on rollback — a
		// coercion error partway through the SET list leaves earlier
		// assignments applied here, and the statement-level rollback is
		// what reverses them.
		t.db.undo.recordUpdate(t, rid, row)
	}
	var touched []*orderedIndex
	for _, oidx := range t.orderedList {
		for _, ci := range cols {
			if oidx.covers(ci) {
				oidx.tree.remove(oidx.keyFor(rid, row))
				touched = append(touched, oidx)
				break
			}
		}
	}
	// Re-key under whatever state the row ends up in — a coercion error
	// leaves earlier assignments applied, and the index must track the row.
	defer func() {
		for _, oidx := range touched {
			oidx.tree.insert(oidx.keyFor(rid, row))
		}
	}()
	for i, ci := range cols {
		cv, err := coerce(vals[i], t.Schema.Columns[ci].Type)
		if err != nil {
			return fmt.Errorf("relational: table %s column %s: %w", t.Name, t.Schema.Columns[ci].Name, err)
		}
		cv = t.internRowValue(cv)
		if t.uniqueCols[ci] && !cv.IsNull() && t.uniqueViolated(ci, cv, rid) {
			return fmt.Errorf("relational: duplicate value %s for unique column %s.%s",
				valueString(cv), t.Name, t.Schema.Columns[ci].Name)
		}
		for _, idx := range t.index {
			if idx.col != ci {
				continue
			}
			if old := row[ci]; !old.IsNull() {
				idx.remove(old, rid)
			}
			if !cv.IsNull() {
				idx.add(cv, rid)
			}
		}
		row[ci] = cv
	}
	// Paged: a row that grew past page capacity can never be flushed.
	// The undo pre-image recorded above restores the row on the
	// statement-level rollback this error triggers.
	if err := t.pgRowFits(rid, row); err != nil {
		return err
	}
	return nil
}

// updateVersioned is Update's MVCC form: instead of overwriting in place
// behind the reader lock, it pushes the pre-image onto the row's version
// chain, marks the current row with the writer's transaction id, and adds
// (never removes) index entries — old-value entries stay live for snapshot
// readers until vacuum reclaims them.
func (t *Table) updateVersioned(rid int, cols []int, vals []Value, w *writeCtx) error {
	if err := t.db.claimIntentLocked(t); err != nil {
		return err
	}
	row := t.curRow(rid)
	t.pgMark(rid)
	t.ensureMeta()
	m := &t.meta[rid]
	wasVers := m.begin != 0 || m.end != 0 || m.older != nil
	mark := markBit | w.txnID
	pre := make([]Value, len(row))
	copy(pre, row)
	node := &rowVersion{begin: m.begin, end: mark, row: pre, older: m.older}
	m.begin = mark
	m.older = node
	if !wasVers {
		t.vers++
	}
	if t.db.undo != nil {
		t.db.undo.recordUpdateV(t, rid, node, wasVers)
	}
	for i, ci := range cols {
		cv, err := coerce(vals[i], t.Schema.Columns[ci].Type)
		if err != nil {
			return fmt.Errorf("relational: table %s column %s: %w", t.Name, t.Schema.Columns[ci].Name, err)
		}
		cv = t.internRowValue(cv)
		if t.uniqueCols[ci] && !cv.IsNull() && t.uniqueViolated(ci, cv, rid) {
			return fmt.Errorf("relational: duplicate value %s for unique column %s.%s",
				valueString(cv), t.Name, t.Schema.Columns[ci].Name)
		}
		for _, idx := range t.index {
			if idx.col != ci {
				continue
			}
			if !cv.IsNull() && compareValues(cv, row[ci]) != 0 {
				idx.addIfAbsent(cv, rid)
			}
		}
		row[ci] = cv
	}
	// The old B+tree keys stay for snapshot readers; insert the row's new
	// key unless some version already carries it (remove-then-insert keeps
	// the entry set exact — a key can appear only once).
	for _, oidx := range t.orderedList {
		nk := oidx.keyFor(rid, row)
		if compareBKeys(nk, oidx.keyFor(rid, pre)) != 0 {
			oidx.tree.remove(nk)
			oidx.tree.insert(nk)
		}
	}
	// Paged: a row that grew past page capacity can never be flushed; the
	// undo record above reverses the version push on rollback.
	if err := t.pgRowFits(rid, row); err != nil {
		return err
	}
	return nil
}

// uniqueViolated reports whether a live row other than exclude already
// holds v in column ci. Uniqueness is a data invariant, not an index
// property — order planning's single-row and pinning elisions keep trusting
// uniqueCols after DropIndex (explicitly supported for ablation) — so
// enforcement must survive ablation too: it prefers the hash index, falls
// back to an ordered index led by the column, and finally scans the heap.
// Versioned tables route through the visibility-aware form: index entries
// can belong to superseded versions or to rows another snapshot deleted.
func (t *Table) uniqueViolated(ci int, v Value, exclude int) bool {
	if t.vers > 0 {
		return t.uniqueViolatedVers(ci, v, exclude)
	}
	return t.uniqueViolatedPhys(ci, v, exclude)
}

func (t *Table) uniqueViolatedVers(ci int, v Value, exclude int) bool {
	sn := t.writeSnap()
	hit := func(rid int) bool {
		if rid == exclude {
			return false
		}
		row := t.visibleRow(rid, sn)
		return row != nil && compareValues(row[ci], v) == 0
	}
	for _, idx := range t.index {
		if idx.col != ci {
			continue
		}
		for _, rid := range idx.probe(v) {
			if hit(rid) {
				return true
			}
		}
		return false
	}
	for _, oidx := range t.orderedList {
		if oidx.cols[0] != ci {
			continue
		}
		b := rangeBound{val: v, incl: true, set: true}
		for _, rid := range oidx.scanRange(nil, b, b, false, nil) {
			if hit(rid) {
				return true
			}
		}
		return false
	}
	for rid := range t.rows {
		if hit(rid) {
			return true
		}
	}
	return false
}

func (t *Table) uniqueViolatedPhys(ci int, v Value, exclude int) bool {
	for _, idx := range t.index {
		if idx.col != ci {
			continue
		}
		for _, rid := range idx.probe(v) {
			if rid != exclude {
				return true
			}
		}
		return false
	}
	for _, oidx := range t.orderedList {
		if oidx.cols[0] != ci {
			continue
		}
		b := rangeBound{val: v, incl: true, set: true}
		for _, rid := range oidx.scanRange(nil, b, b, false, nil) {
			// The tree tombstones lazily; skip entries whose row is gone.
			if rid != exclude && t.liveAt(rid) {
				return true
			}
		}
		return false
	}
	if t.pg != nil {
		for rid := range t.rows {
			if rid == exclude {
				continue
			}
			if row := t.curRow(rid); row != nil && compareValues(row[ci], v) == 0 {
				return true
			}
		}
		return false
	}
	for rid, row := range t.rows {
		if rid != exclude && row != nil && compareValues(row[ci], v) == 0 {
			return true
		}
	}
	return false
}

// Row returns the values of a live row, or nil.
func (t *Table) Row(rid int) []Value {
	if rid < 0 || rid >= len(t.rows) {
		return nil
	}
	if t.pg != nil {
		return t.pg.rowRef(rid)
	}
	return t.rows[rid]
}

// Scan calls fn for every live row in rowid order; fn returning false stops
// the scan. It reports the number of rows visited.
func (t *Table) Scan(fn func(rid int, row []Value) bool) int {
	visited := 0
	if t.pg != nil {
		var c pageCursor
		defer c.release()
		// rows and dir grow in lockstep (pgPlace), but bound on both as
		// pagedScanAll does rather than trust the invariant.
		for rid := 0; rid < len(t.rows) && rid < len(t.pg.dir); rid++ {
			pid := t.pg.dir[rid]
			if pid < 0 {
				continue
			}
			if c.pi == nil || c.pi.id != pid {
				if !c.repin(t, pid) {
					break
				}
			}
			row := t.rows[rid]
			if row == nil {
				continue
			}
			visited++
			if !fn(rid, row) {
				break
			}
		}
		return visited
	}
	for rid, row := range t.rows {
		if row == nil {
			continue
		}
		visited++
		if !fn(rid, row) {
			break
		}
	}
	return visited
}

// partitionSpans splits the half-open span [0, n) into k contiguous
// windows, the remainder spread one row at a time over the leading
// windows. Driving-level partitioning slices the serial enumeration with
// these windows — ascending rowids for heap scans, positions for CTE
// replays — so concatenating the windows in order reproduces the serial
// walk exactly.
func partitionSpans(n, k int) [][2]int {
	spans := make([][2]int, 0, k)
	lo := 0
	for w := 0; w < k; w++ {
		size := n / k
		if w < n%k {
			size++
		}
		spans = append(spans, [2]int{lo, lo + size})
		lo += size
	}
	return spans
}

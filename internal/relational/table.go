package relational

import (
	"fmt"
	"strings"
)

// Column describes one table column.
type Column struct {
	Name string
	Type Type
}

// Schema is an ordered column list.
type Schema struct {
	Columns []Column
	byName  map[string]int
}

// NewSchema builds a schema, rejecting duplicate column names
// (case-insensitively, like SQL identifiers).
func NewSchema(cols []Column) (*Schema, error) {
	s := &Schema{Columns: cols, byName: make(map[string]int, len(cols))}
	for i, c := range cols {
		key := strings.ToLower(c.Name)
		if _, dup := s.byName[key]; dup {
			return nil, fmt.Errorf("relational: duplicate column %q", c.Name)
		}
		s.byName[key] = i
	}
	return s, nil
}

// ColumnIndex returns the position of the named column, or -1.
func (s *Schema) ColumnIndex(name string) int {
	if i, ok := s.byName[strings.ToLower(name)]; ok {
		return i
	}
	return -1
}

// Table is a heap table: a row slice with tombstoned deletions and hash
// indexes. Row identity (rowid) is positional and stable for the lifetime of
// the row.
type Table struct {
	Name   string
	Schema *Schema

	rows  [][]Value // nil entry = deleted
	live  int
	index map[string]*hashIndex // keyed by lower-case column name
}

// NewTable creates an empty table.
func NewTable(name string, schema *Schema) *Table {
	return &Table{Name: name, Schema: schema, index: make(map[string]*hashIndex)}
}

// RowCount returns the number of live rows.
func (t *Table) RowCount() int { return t.live }

// Insert appends a row, coercing values to column types, and returns its
// rowid.
func (t *Table) Insert(vals []Value) (int, error) {
	if len(vals) != len(t.Schema.Columns) {
		return 0, fmt.Errorf("relational: table %s expects %d values, got %d", t.Name, len(t.Schema.Columns), len(vals))
	}
	row := make([]Value, len(vals))
	for i, v := range vals {
		cv, err := coerce(v, t.Schema.Columns[i].Type)
		if err != nil {
			return 0, fmt.Errorf("relational: table %s column %s: %w", t.Name, t.Schema.Columns[i].Name, err)
		}
		row[i] = cv
	}
	rid := len(t.rows)
	t.rows = append(t.rows, row)
	t.live++
	for _, idx := range t.index {
		if v := row[idx.col]; v != nil {
			idx.entries[v] = append(idx.entries[v], rid)
		}
	}
	return rid, nil
}

// Delete tombstones a row and unindexes it. It returns the deleted row's
// values for trigger OLD bindings.
func (t *Table) Delete(rid int) ([]Value, error) {
	if rid < 0 || rid >= len(t.rows) || t.rows[rid] == nil {
		return nil, fmt.Errorf("relational: table %s has no row %d", t.Name, rid)
	}
	row := t.rows[rid]
	for _, idx := range t.index {
		if v := row[idx.col]; v != nil {
			idx.remove(v, rid)
		}
	}
	t.rows[rid] = nil
	t.live--
	return row, nil
}

// Update overwrites the given columns of a row, maintaining indexes.
func (t *Table) Update(rid int, cols []int, vals []Value) error {
	if rid < 0 || rid >= len(t.rows) || t.rows[rid] == nil {
		return fmt.Errorf("relational: table %s has no row %d", t.Name, rid)
	}
	row := t.rows[rid]
	for i, ci := range cols {
		cv, err := coerce(vals[i], t.Schema.Columns[ci].Type)
		if err != nil {
			return fmt.Errorf("relational: table %s column %s: %w", t.Name, t.Schema.Columns[ci].Name, err)
		}
		for _, idx := range t.index {
			if idx.col != ci {
				continue
			}
			if old := row[ci]; old != nil {
				idx.remove(old, rid)
			}
			if cv != nil {
				idx.entries[cv] = append(idx.entries[cv], rid)
			}
		}
		row[ci] = cv
	}
	return nil
}

// Row returns the values of a live row, or nil.
func (t *Table) Row(rid int) []Value {
	if rid < 0 || rid >= len(t.rows) {
		return nil
	}
	return t.rows[rid]
}

// Scan calls fn for every live row in rowid order; fn returning false stops
// the scan. It reports the number of rows visited.
func (t *Table) Scan(fn func(rid int, row []Value) bool) int {
	visited := 0
	for rid, row := range t.rows {
		if row == nil {
			continue
		}
		visited++
		if !fn(rid, row) {
			break
		}
	}
	return visited
}

package relational

import (
	"fmt"
	"strings"
)

// Explain returns the physical plan the executor would run for a statement,
// as an indented operator tree. Plans come from the same compileSelect /
// chooseAccessPlan the executor uses — including interesting-order
// propagation into CTEs — so what Explain prints is what runs: an elided
// sort shows as MergeAll (or nothing for a single ordered branch), ordered
// access paths show as OrderedScan/OrderedProbe/RangeScan.
func (db *DB) Explain(sql string) (string, error) {
	stmt, err := ParseSQL(sql)
	if err != nil {
		return "", err
	}
	// Explain is a read: it parses a private AST and compiles it through
	// the same (planMu-guarded) machinery the executor uses.
	db.mu.RLock()
	defer db.mu.RUnlock()
	var b strings.Builder
	if err := db.explainStmt(&b, stmt, 0); err != nil {
		return "", err
	}
	return strings.TrimRight(b.String(), "\n"), nil
}

func indentLine(b *strings.Builder, depth int, line string) {
	for i := 0; i < depth; i++ {
		b.WriteString("  ")
	}
	b.WriteString(line)
	b.WriteByte('\n')
}

func (db *DB) explainStmt(b *strings.Builder, stmt Stmt, depth int) error {
	switch s := stmt.(type) {
	case *SelectStmt:
		return db.explainSelect(b, s, newEnv(nil), depth, nil)
	case *DeleteStmt:
		t := db.tables[strings.ToLower(s.Table)]
		if t == nil {
			return fmt.Errorf("relational: no table %q", s.Table)
		}
		indentLine(b, depth, fmt.Sprintf("Delete %s", t.Name))
		db.explainMatch(b, s.Table, t, s.Where, depth+1)
		return nil
	case *UpdateStmt:
		t := db.tables[strings.ToLower(s.Table)]
		if t == nil {
			return fmt.Errorf("relational: no table %q", s.Table)
		}
		sets := make([]string, len(s.Set))
		for i, sc := range s.Set {
			sets[i] = fmt.Sprintf("%s = %s", sc.Col, exprString(sc.Val))
		}
		indentLine(b, depth, fmt.Sprintf("Update %s [%s]", t.Name, strings.Join(sets, ", ")))
		db.explainMatch(b, s.Table, t, s.Where, depth+1)
		return nil
	case *InsertStmt:
		if s.Select != nil {
			indentLine(b, depth, fmt.Sprintf("Insert %s", s.Table))
			return db.explainSelect(b, s.Select, newEnv(nil), depth+1, nil)
		}
		indentLine(b, depth, fmt.Sprintf("Insert %s (%d rows of values)", s.Table, len(s.Rows)))
		return nil
	default:
		indentLine(b, depth, fmt.Sprintf("%T", stmt))
		return nil
	}
}

// explainMatch renders the DML row-matching access path.
func (db *DB) explainMatch(b *strings.Builder, name string, t *Table, where Expr, depth int) {
	lp := planMatch(name, t, where)
	src := &source{name: name, table: t}
	ap := chooseAccessPlan(lp, src, 0, nil, true)
	par := 1
	if ap.kind == accessScan {
		// The DML read phase parallelizes only the full-scan match
		// (matchScanParallel); indexed matches stay serial.
		par = db.parWorkersFor(t.live)
	}
	indentLine(b, depth, levelLine(lp, src, ap, par))
}

// explainTree is a statement's compiled form plus its CTEs' compiled
// forms: one compileSelect per (sub)statement, shared between stub
// prediction and rendering.
type explainTree struct {
	stmt *SelectStmt
	cs   *selectCompiled
	kids map[string]*explainTree // by lower-case CTE name
}

// predictSelect compiles a statement the way execution would, with EXPLAIN
// stubs standing in for CTE result sets (column names plus the predicted
// order/constant annotations), so order propagation matches the real run.
// env gains the statement's CTE stubs as a side effect; each CTE compiles
// exactly once, and its compiled form rides along for rendering.
func (db *DB) predictSelect(s *SelectStmt, env *execEnv, extWant []OrderKey) (*explainTree, error) {
	et := &explainTree{stmt: s}
	wants := db.cteWants(s, env, wantKeysOf(s, extWant))
	if len(s.With) > 0 {
		et.kids = make(map[string]*explainTree, len(s.With))
	}
	for _, cte := range s.With {
		key := strings.ToLower(cte.Name)
		kid, err := db.predictSelect(cte.Select, newEnvFrom(env), wants[key])
		if err != nil {
			return nil, fmt.Errorf("relational: CTE %s: %w", cte.Name, err)
		}
		stub := &Rows{Cols: cteColumns(cte)}
		stub.order, stub.consts, stub.orderUnique = kid.cs.achievedOrder()
		stub.single = kid.cs.singleRow
		stub.est = kid.cs.estRows()
		env.ctes[key] = stub
		et.kids[key] = kid
	}
	cs, err := db.compileSelect(s, env, extWant)
	if err != nil {
		return nil, err
	}
	et.cs = cs
	return et, nil
}

// estRows predicts a compiled statement's output cardinality so EXPLAIN's
// fan-out sizing of CTE consumers agrees with the executor, which sizes
// against the materialized row count (bodyWorkers). The estimate is coarse
// — each body contributes its driving source's row count, single-row
// statements contribute one — but the fan-out decision only needs the
// right side of the parMinRows/parChunkRows thresholds, not an exact
// cardinality.
func (cs *selectCompiled) estRows() int {
	if cs.singleRow {
		return 1
	}
	n := 0
	for _, bc := range cs.bodies {
		switch {
		case bc.aggregate || len(bc.srcs) == 0:
			n++
		case bc.plan != nil && len(bc.plan.levels) > 0:
			src := bc.srcs[bc.plan.levels[0].slot]
			if src.table != nil {
				n += src.table.live
			} else if src.rows != nil {
				if len(src.rows.Data) > 0 {
					n += len(src.rows.Data)
				} else {
					n += src.rows.est
				}
			}
		}
	}
	return n
}

func (db *DB) explainSelect(b *strings.Builder, s *SelectStmt, env *execEnv, depth int, extWant []OrderKey) error {
	et, err := db.predictSelect(s, newEnvFrom(env), extWant)
	if err != nil {
		return err
	}
	db.renderSelectTree(b, et, depth)
	return nil
}

func (db *DB) renderSelectTree(b *strings.Builder, et *explainTree, depth int) {
	s, cs := et.stmt, et.cs
	if cs.explicit {
		keys := make([]string, len(s.OrderBy))
		for i, k := range s.OrderBy {
			keys[i] = exprString(k.Expr)
			if k.Desc {
				keys[i] += " DESC"
			}
		}
		switch {
		case cs.elide && len(cs.bodies) > 1:
			// The branches already stream in key order; they merge instead
			// of sorting.
			indentLine(b, depth, fmt.Sprintf("MergeAll [%s]", strings.Join(keys, ", ")))
			depth++
		case cs.elide:
			// Single ordered branch: the sort disappears entirely.
		default:
			indentLine(b, depth, fmt.Sprintf("Sort [%s]", strings.Join(keys, ", ")))
			depth++
		}
	}
	if len(s.Body) > 1 && !(cs.explicit && cs.elide) {
		indentLine(b, depth, "UnionAll")
		depth++
	}
	for _, bc := range cs.bodies {
		db.explainBody(b, bc, depth)
	}
	for _, cte := range s.With {
		indentLine(b, depth, fmt.Sprintf("CTE %s", cte.Name))
		db.renderSelectTree(b, et.kids[strings.ToLower(cte.Name)], depth+1)
	}
}

func (db *DB) explainBody(b *strings.Builder, bc *bodyCompiled, depth int) {
	s := bc.sel
	if s.Distinct {
		indentLine(b, depth, "Distinct")
		depth++
	}
	var exprs []string
	if s.Star {
		exprs = []string{"*"}
	} else {
		for _, se := range s.Exprs {
			exprs = append(exprs, exprString(se.Expr))
		}
	}
	head := "Project"
	if bc.aggregate {
		head = "Aggregate"
	}
	indentLine(b, depth, fmt.Sprintf("%s [%s]", head, strings.Join(exprs, ", ")))
	depth++
	if len(bc.srcs) == 0 {
		indentLine(b, depth, "Values")
		return
	}
	// bodyWorkers is the same eligibility decision the executor makes, so
	// the rendered plan matches what runs; CTE-driven bodies size against
	// the stub's predicted cardinality (Rows.est).
	par := db.bodyWorkers(bc)
	if par > 1 {
		indentLine(b, depth, fmt.Sprintf("Exchange (workers=%d, ordered)", par))
		depth++
	}
	for pos := len(bc.plan.levels) - 1; pos >= 0; pos-- {
		lp := bc.plan.levels[pos]
		lpar := 1
		if par > 1 && (pos == 0 || bc.access[pos].kind == accessHashJoin) {
			// The driving level partitions; hash-join levels share one
			// parallel-built table across workers. Other inner levels
			// replicate per worker unchanged.
			lpar = par
		}
		indentLine(b, depth, levelLine(lp, bc.srcs[lp.slot], bc.access[pos], lpar))
		depth++
	}
}

// levelLine renders one join level: its access path and gated filters.
// par > 1 prefixes the operator name with Parallel(k=n).
func levelLine(lp levelPlan, src *source, ap accessPlan, par int) string {
	label := src.name
	if src.table != nil && !strings.EqualFold(src.table.Name, src.name) {
		label = src.table.Name + " AS " + src.name
	}
	var line string
	switch ap.kind {
	case accessIndexProbe:
		line = fmt.Sprintf("IndexProbe %s (%s = %s)", label, ap.probe.col, exprString(ap.probe.expr))
	case accessHashJoin:
		line = fmt.Sprintf("HashJoin %s (%s = %s)", label, ap.probe.col, exprString(ap.probe.expr))
	case accessOrderedProbe:
		line = fmt.Sprintf("OrderedProbe %s (%s) ordered [%s]", label, eqString(ap.eqPrefix), orderedColsString(ap, src))
	case accessRangeScan:
		line = fmt.Sprintf("RangeScan %s (%s)", label, rangeString(ap))
	case accessOrderedScan:
		line = fmt.Sprintf("OrderedScan %s ordered [%s]", label, orderedColsString(ap, src))
	case accessSortedProbe:
		var cols []string
		for _, ot := range ap.innerOrder {
			name := fmt.Sprintf("#%d", ot.col)
			if src.table != nil {
				name = src.table.Schema.Columns[ot.col].Name
			}
			if ot.desc {
				name += " DESC"
			}
			cols = append(cols, name)
		}
		line = fmt.Sprintf("SortedProbe %s (%s = %s) ordered [%s]", label, ap.probe.col, exprString(ap.probe.expr), strings.Join(cols, ", "))
	default:
		line = fmt.Sprintf("Scan %s", label)
	}
	if par > 1 {
		if i := strings.IndexByte(line, ' '); i > 0 {
			line = "Parallel" + line[:i] + fmt.Sprintf("(k=%d)", par) + line[i:]
		}
	}
	if len(lp.conds) > 0 {
		parts := make([]string, len(lp.conds))
		for i, c := range lp.conds {
			parts[i] = exprString(c)
		}
		line += fmt.Sprintf(" filter [%s]", strings.Join(parts, " AND "))
	}
	return line
}

// eqString renders an equality prefix (parentId = Q1.C1, pos = 2).
func eqString(eqs []probeCand) string {
	parts := make([]string, len(eqs))
	for i, c := range eqs {
		parts[i] = fmt.Sprintf("%s = %s", c.col, exprString(c.expr))
	}
	return strings.Join(parts, ", ")
}

// rangeString renders a range window: the equality prefix plus bounds.
func rangeString(ap accessPlan) string {
	var parts []string
	for _, c := range ap.eqPrefix {
		parts = append(parts, fmt.Sprintf("%s = %s", c.col, exprString(c.expr)))
	}
	if ap.lo != nil {
		parts = append(parts, fmt.Sprintf("%s %s %s", ap.lo.col, ap.lo.op, exprString(ap.lo.expr)))
	}
	if ap.hi != nil {
		parts = append(parts, fmt.Sprintf("%s %s %s", ap.hi.col, ap.hi.op, exprString(ap.hi.expr)))
	}
	return strings.Join(parts, " AND ")
}

// orderedColsString renders the key columns an ordered access streams in.
func orderedColsString(ap accessPlan, src *source) string {
	var parts []string
	for i := len(ap.eqPrefix); i < len(ap.oidx.cols); i++ {
		ci := ap.oidx.cols[i]
		if src.table != nil {
			parts = append(parts, src.table.Schema.Columns[ci].Name)
		} else {
			parts = append(parts, fmt.Sprintf("#%d", ci))
		}
	}
	if ap.desc {
		return strings.Join(parts, ", ") + " DESC"
	}
	return strings.Join(parts, ", ")
}

// cteColumns derives a CTE's output columns without executing it.
func cteColumns(cte CTE) []string {
	if len(cte.Cols) > 0 {
		return cte.Cols
	}
	if len(cte.Select.Body) > 0 && !cte.Select.Body[0].Star {
		return outputColumns(cte.Select.Body[0], nil)
	}
	return nil
}

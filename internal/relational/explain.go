package relational

import (
	"fmt"
	"strings"
)

// Explain returns the physical plan the executor would run for a statement,
// as an indented operator tree. The access-path choice goes through the
// same chooseAccess the executor uses, so what Explain prints is what runs.
func (db *DB) Explain(sql string) (string, error) {
	stmt, err := ParseSQL(sql)
	if err != nil {
		return "", err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	var b strings.Builder
	if err := db.explainStmt(&b, stmt, 0); err != nil {
		return "", err
	}
	return strings.TrimRight(b.String(), "\n"), nil
}

func indentLine(b *strings.Builder, depth int, line string) {
	for i := 0; i < depth; i++ {
		b.WriteString("  ")
	}
	b.WriteString(line)
	b.WriteByte('\n')
}

func (db *DB) explainStmt(b *strings.Builder, stmt Stmt, depth int) error {
	switch s := stmt.(type) {
	case *SelectStmt:
		return db.explainSelect(b, s, newEnv(nil), depth)
	case *DeleteStmt:
		t := db.tables[strings.ToLower(s.Table)]
		if t == nil {
			return fmt.Errorf("relational: no table %q", s.Table)
		}
		indentLine(b, depth, fmt.Sprintf("Delete %s", t.Name))
		db.explainMatch(b, s.Table, t, s.Where, depth+1)
		return nil
	case *UpdateStmt:
		t := db.tables[strings.ToLower(s.Table)]
		if t == nil {
			return fmt.Errorf("relational: no table %q", s.Table)
		}
		sets := make([]string, len(s.Set))
		for i, sc := range s.Set {
			sets[i] = fmt.Sprintf("%s = %s", sc.Col, exprString(sc.Val))
		}
		indentLine(b, depth, fmt.Sprintf("Update %s [%s]", t.Name, strings.Join(sets, ", ")))
		db.explainMatch(b, s.Table, t, s.Where, depth+1)
		return nil
	case *InsertStmt:
		if s.Select != nil {
			indentLine(b, depth, fmt.Sprintf("Insert %s", s.Table))
			return db.explainSelect(b, s.Select, newEnv(nil), depth+1)
		}
		indentLine(b, depth, fmt.Sprintf("Insert %s (%d rows of values)", s.Table, len(s.Rows)))
		return nil
	default:
		indentLine(b, depth, fmt.Sprintf("%T", stmt))
		return nil
	}
}

// explainMatch renders the DML row-matching access path.
func (db *DB) explainMatch(b *strings.Builder, name string, t *Table, where Expr, depth int) {
	lp := planMatch(name, t, where)
	src := &source{name: name, table: t}
	indentLine(b, depth, levelLine(lp, src, 0))
}

func (db *DB) explainSelect(b *strings.Builder, s *SelectStmt, env *execEnv, depth int) error {
	env = newEnvFrom(env)
	// CTE result sets are not materialized for EXPLAIN; schema stubs stand
	// in so planning resolves their columns.
	for _, cte := range s.With {
		env.ctes[strings.ToLower(cte.Name)] = &Rows{Cols: cteColumns(cte)}
	}
	if len(s.OrderBy) > 0 {
		keys := make([]string, len(s.OrderBy))
		for i, k := range s.OrderBy {
			keys[i] = exprString(k.Expr)
			if k.Desc {
				keys[i] += " DESC"
			}
		}
		indentLine(b, depth, fmt.Sprintf("Sort [%s]", strings.Join(keys, ", ")))
		depth++
	}
	if len(s.Body) > 1 {
		indentLine(b, depth, "UnionAll")
		depth++
	}
	for _, body := range s.Body {
		if err := db.explainSimple(b, body, env, depth); err != nil {
			return err
		}
	}
	for _, cte := range s.With {
		indentLine(b, depth, fmt.Sprintf("CTE %s", cte.Name))
		if err := db.explainSelect(b, cte.Select, env, depth+1); err != nil {
			return err
		}
	}
	return nil
}

func (db *DB) explainSimple(b *strings.Builder, s *SimpleSelect, env *execEnv, depth int) error {
	srcs, err := db.resolveSources(s, env)
	if err != nil {
		return err
	}
	if s.Distinct {
		indentLine(b, depth, "Distinct")
		depth++
	}
	aggregate := false
	if !s.Star {
		for _, se := range s.Exprs {
			if containsAggregate(se.Expr) {
				aggregate = true
				break
			}
		}
	}
	var exprs []string
	if s.Star {
		exprs = []string{"*"}
	} else {
		for _, se := range s.Exprs {
			exprs = append(exprs, exprString(se.Expr))
		}
	}
	head := "Project"
	if aggregate {
		head = "Aggregate"
	}
	indentLine(b, depth, fmt.Sprintf("%s [%s]", head, strings.Join(exprs, ", ")))
	depth++
	if len(srcs) == 0 {
		indentLine(b, depth, "Values")
		return nil
	}
	plan := db.planFor(s, srcs)
	for pos := len(plan.levels) - 1; pos >= 0; pos-- {
		lp := plan.levels[pos]
		indentLine(b, depth, levelLine(lp, srcs[lp.slot], pos))
		depth++
	}
	return nil
}

// levelLine renders one join level: its access path and gated filters.
func levelLine(lp levelPlan, src *source, pos int) string {
	access, probe, _ := chooseAccess(lp, src, pos)
	label := src.name
	if src.table != nil && !strings.EqualFold(src.table.Name, src.name) {
		label = src.table.Name + " AS " + src.name
	}
	var line string
	switch access {
	case accessIndexProbe:
		line = fmt.Sprintf("IndexProbe %s (%s = %s)", label, probe.col, exprString(probe.expr))
	case accessHashJoin:
		line = fmt.Sprintf("HashJoin %s (%s = %s)", label, probe.col, exprString(probe.expr))
	default:
		line = fmt.Sprintf("Scan %s", label)
	}
	if len(lp.conds) > 0 {
		parts := make([]string, len(lp.conds))
		for i, c := range lp.conds {
			parts[i] = exprString(c)
		}
		line += fmt.Sprintf(" filter [%s]", strings.Join(parts, " AND "))
	}
	return line
}

// cteColumns derives a CTE's output columns without executing it.
func cteColumns(cte CTE) []string {
	if len(cte.Cols) > 0 {
		return cte.Cols
	}
	if len(cte.Select.Body) > 0 && !cte.Select.Body[0].Star {
		return outputColumns(cte.Select.Body[0], nil)
	}
	return nil
}

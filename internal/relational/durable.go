package relational

import (
	"encoding/binary"
	"fmt"
	"strings"
	"time"

	"repro/internal/wal"
)

// Durability. A DB opened with Open(dir, …) keeps a logical redo log: every
// committed transaction — the implicit one wrapping a top-level Exec, or an
// explicit BEGIN…COMMIT — appends one record holding the SQL text (raw for
// Exec, the `?` shape plus bound arguments for prepared statements) of its
// successful mutating statements. Recovery loads the latest checkpoint
// (schema history + data snapshot) and re-executes the log tail in commit
// order. Logical logging was chosen over physical page logging because the
// engine's "pages" are Go heap structures with no stable byte layout, and
// because statement replay reuses the exact execution paths the engine
// already tests — determinism is inherited from the executor, not
// re-implemented in a redo interpreter.
//
// Commit protocol: the record is appended to the log (an OS write, no
// fsync) while the committer still holds the writer lock — so log order is
// commit order — and the fsync wait happens after the lock is released.
// Readers therefore never block on the disk: a reader blocked on db.mu
// waits only for the in-memory commit, and group-commit fsync latency is
// paid by committers alone.

// SyncMode re-exports the log's fsync policies.
type SyncMode = wal.SyncMode

// Fsync policies for Options.Sync.
const (
	SyncGroup  = wal.SyncGroup
	SyncAlways = wal.SyncAlways
	SyncOff    = wal.SyncOff
)

// Options configures a persistent DB.
type Options struct {
	// Sync is the fsync policy: SyncGroup (default; batched fsync shared by
	// concurrent committers), SyncAlways, or SyncOff.
	Sync SyncMode
	// GroupWindow is the SyncGroup batching window (default 2ms).
	GroupWindow time.Duration
	// SegmentSize is the log rotation threshold (default 4 MiB).
	SegmentSize int64
	// CheckpointBytes triggers an automatic checkpoint once that many log
	// bytes accumulate past the previous checkpoint. 0 means the 16 MiB
	// default; negative disables auto-checkpointing (crash tests need the
	// log to stay put).
	CheckpointBytes int64
	// Parallelism is the per-statement worker budget for query execution
	// (see SetParallelism); <= 1 means serial, the default.
	Parallelism int
	// SlowQuery, when positive, arms the slow-query log: statements whose
	// total latency reaches the threshold are traced and retained in the
	// recent-statements ring (see DB.SetSlowQuery / DB.TraceLog). Zero
	// leaves tracing off.
	SlowQuery time.Duration
	// Storage selects the row-storage backend: StorageMemory (default)
	// keeps every table on the heap and checkpoints whole snapshots;
	// StoragePaged keeps tables on checksummed heap pages behind a buffer
	// pool and checkpoints only dirty pages (paged.go). Either mode can
	// open a directory last written by the other.
	Storage StorageKind
	// PoolPages bounds resident pages for StoragePaged (default 256);
	// PageSize sets the page size (default pager.DefaultPageSize). Both
	// are ignored by StorageMemory. PageSize must match across reopens of
	// the same directory.
	PoolPages int
	PageSize  int
}

func (o Options) checkpointBytes() int64 {
	if o.CheckpointBytes == 0 {
		return 16 << 20
	}
	return o.CheckpointBytes
}

// walOptions derives the log's configuration, wiring the DB's metrics
// registry into the log's append/fsync/batch observation points.
func (o Options) walOptions(met *engineMetrics) wal.Options {
	w := wal.Options{Sync: o.Sync, GroupWindow: o.GroupWindow, SegmentSize: o.SegmentSize}
	if met != nil {
		w.AppendHist = met.reg.Histogram("wal_append_ns")
		w.FsyncHist = met.reg.Histogram("wal_fsync_ns")
		w.BatchHist = met.reg.Histogram("wal_batch_commits")
	}
	return w
}

// ddlKind classifies a schema statement for history compaction.
type ddlKind uint8

const (
	ddlNone ddlKind = iota
	ddlCreateTable
	ddlDropTable
	ddlCreateIndex
	ddlCreateTrigger
	ddlDropTrigger
)

// ddlNote carries the compaction key of a DDL statement: the object it
// creates or drops, and the table it hangs off (for indexes and triggers).
type ddlNote struct {
	kind ddlKind
	name string // lower-cased object name (table or trigger)
	tbl  string // lower-cased owning table for indexes/triggers
}

// redoStmt is one statement captured for the active transaction's commit
// record. sql is replayable as-is when args is nil; otherwise it is a `?`
// shape executed with args bound.
type redoStmt struct {
	sql  string
	args []Value
	note ddlNote
}

// classifyStmt decides whether a statement belongs in the redo log and, for
// DDL, extracts its compaction note. Reads and transaction control are
// never logged.
func classifyStmt(stmt Stmt) (bool, ddlNote) {
	switch s := stmt.(type) {
	case *InsertStmt, *DeleteStmt, *UpdateStmt:
		return true, ddlNote{}
	case *CreateTableStmt:
		return true, ddlNote{kind: ddlCreateTable, name: strings.ToLower(s.Name)}
	case *DropTableStmt:
		return true, ddlNote{kind: ddlDropTable, name: strings.ToLower(s.Name)}
	case *CreateIndexStmt:
		return true, ddlNote{kind: ddlCreateIndex, tbl: strings.ToLower(s.Table)}
	case *CreateTriggerStmt:
		return true, ddlNote{kind: ddlCreateTrigger, name: strings.ToLower(s.Name), tbl: strings.ToLower(s.Table)}
	case *DropTriggerStmt:
		return true, ddlNote{kind: ddlDropTrigger, name: strings.ToLower(s.Name)}
	default:
		return false, ddlNote{}
	}
}

// ddlEntry is one line of the schema history a checkpoint must carry:
// replaying these statements against an empty DB reproduces the schema the
// snapshot's data belongs to.
type ddlEntry struct {
	sql  string
	note ddlNote
}

// noteDDLLocked folds one committed DDL statement into the schema history.
// Dropping an object removes its creation (and its dependents' creations)
// from the history instead of appending the drop — this is what keeps the
// temp-table churn of the §6.2.2 table-based insert method from growing
// checkpoints without bound. The one divergence: a trigger whose table is
// dropped vanishes from the history even though the live DB still remembers
// it (it would re-arm if a same-named table were created later); the engine
// never drops a data table, so the trade is history boundedness for an
// anomaly nothing exercises. Caller holds the writer lock.
func (db *DB) noteDDLLocked(e redoStmt) {
	switch e.note.kind {
	case ddlNone:
		return
	case ddlCreateTable, ddlCreateIndex, ddlCreateTrigger:
		db.ddlHist = append(db.ddlHist, ddlEntry{sql: e.sql, note: e.note})
	case ddlDropTable:
		found := false
		for _, h := range db.ddlHist {
			if h.note.kind == ddlCreateTable && h.note.name == e.note.name {
				found = true
				break
			}
		}
		if !found {
			db.ddlHist = append(db.ddlHist, ddlEntry{sql: e.sql, note: e.note})
			return
		}
		keep := db.ddlHist[:0]
		for _, h := range db.ddlHist {
			switch {
			case h.note.kind == ddlCreateTable && h.note.name == e.note.name:
			case h.note.kind == ddlCreateIndex && h.note.tbl == e.note.name:
			case h.note.kind == ddlCreateTrigger && h.note.tbl == e.note.name:
			default:
				keep = append(keep, h)
			}
		}
		db.ddlHist = keep
	case ddlDropTrigger:
		for i, h := range db.ddlHist {
			if h.note.kind == ddlCreateTrigger && h.note.name == e.note.name {
				db.ddlHist = append(db.ddlHist[:i], db.ddlHist[i+1:]...)
				return
			}
		}
		db.ddlHist = append(db.ddlHist, ddlEntry{sql: e.sql, note: e.note})
	}
}

// durable reports whether commits must be captured for redo. True for any
// DB opened from a directory, including while it is replaying its own log.
func (db *DB) durable() bool { return db.wal != nil }

// applyRedoLocked folds a committed transaction's statements into the
// schema history and appends its commit record to the log, returning the
// LSN the caller must wait on after releasing the writer lock (0 when
// nothing was logged). stamp is the MVCC commit stamp the transaction
// committed under; it rides in the record so recovery restores the stamp
// counter past every replayed transaction. Caller holds the writer lock.
func (db *DB) applyRedoLocked(redo []redoStmt, stamp uint64) (uint64, error) {
	if len(redo) == 0 || !db.durable() {
		return 0, nil
	}
	if db.redoErr != nil {
		// A previous commit's record was lost after its in-memory effects
		// became visible; the log no longer describes the data. Fail-stop
		// every later commit rather than append records that would replay
		// against a state missing the lost transaction.
		return 0, db.redoErr
	}
	for _, e := range redo {
		db.noteDDLLocked(e)
	}
	if db.replaying {
		return 0, nil
	}
	stmts := make([]wal.Stmt, len(redo))
	for i, e := range redo {
		ws := wal.Stmt{SQL: e.sql}
		if len(e.args) > 0 {
			ws.Args = make([]wal.Value, len(e.args))
			for j, a := range e.args {
				ws.Args[j] = walVal(a)
			}
		}
		stmts[i] = ws
	}
	lsn, err := db.wal.Append(stmts, stamp)
	if err != nil {
		// The in-memory commit already happened (the undo log is gone), so
		// the caller sees an error for work that is visible in memory —
		// and from here on the log is missing a transaction later records
		// may depend on. Poison further commits; reads stay available.
		db.redoErr = fmt.Errorf("relational: commit record lost (log and memory diverged): %w", err)
		return 0, db.redoErr
	}
	return lsn, nil
}

// afterCommit completes a commit after the writer lock is released: it
// waits for the record to reach stable storage under the configured policy
// and runs the auto-checkpoint trigger. qt, when non-nil, receives the
// durability wait as its FsyncWait span.
func (db *DB) afterCommit(lsn uint64, qt *QueryTrace) error {
	if lsn == 0 || db.wal == nil {
		return nil
	}
	waitStart := time.Now()
	err := db.wal.WaitDurable(lsn)
	db.met.fsyncWait.ObserveSince(waitStart)
	if qt != nil {
		qt.FsyncWait = time.Since(waitStart)
	}
	if err != nil {
		return fmt.Errorf("relational: commit not durable: %w", err)
	}
	db.maybeCheckpoint()
	return nil
}

// maybeCheckpoint starts a checkpoint when the log has outgrown the
// threshold. It runs on a background goroutine — the committer that
// crossed the threshold should not absorb a full-database snapshot and
// fsync in its own latency — with at most one in flight; errors are
// remembered and surfaced by Close rather than failing an unrelated
// commit. A checkpoint racing Close aborts harmlessly inside the log
// (operations on a closed log error out).
func (db *DB) maybeCheckpoint() {
	cb := db.walOpts.checkpointBytes()
	if cb <= 0 || db.wal.SizeSinceCheckpoint() < cb {
		return
	}
	db.ckptMu.Lock()
	if db.ckptBusy || db.closing {
		db.ckptMu.Unlock()
		return
	}
	db.ckptBusy = true
	db.ckptWG.Add(1)
	db.ckptMu.Unlock()
	go func() {
		defer func() {
			db.ckptMu.Lock()
			db.ckptBusy = false
			db.ckptMu.Unlock()
			db.ckptWG.Done()
		}()
		// An open explicit transaction defers a paged checkpoint rather
		// than failing it; the trigger fires again after the next commit.
		if err := db.Checkpoint(); err != nil && err != errCkptOpenTxn {
			db.ckptErr.Store(&err)
		}
	}()
}

// Open opens (or creates) a durable database rooted at dir: it recovers the
// latest checkpoint, replays the intact log tail (truncating a torn tail at
// the first bad CRC), and returns a DB whose future commits append to the
// log. The directory admits one live DB at a time — opening it from two
// processes concurrently is caller misuse (the embedded-database model,
// like SQLite without its file locks).
func Open(dir string, opts Options) (*DB, error) {
	// The DB (and its metrics registry) exists before the log so the log's
	// append/fsync observation points can ride wal.Options.
	db := NewDB()
	db.met.useSyncMode(opts.Sync)
	l, err := wal.Open(dir, opts.walOptions(db.met))
	if err != nil {
		return nil, err
	}
	db.SetParallelism(opts.Parallelism)
	db.wal = l
	db.walOpts = opts
	db.pagedDir = dir
	if opts.Storage == StoragePaged {
		// The pool exists before any DDL replays so createTable attaches
		// paged state to every recovered table.
		db.pool = newPagePool(opts.PoolPages, opts.PageSize)
	}
	db.replaying = true
	ok := false
	defer func() {
		if !ok {
			db.auditPaged()
			l.Close()
		}
	}()

	// Complete a checkpoint that crashed between its doublewrite buffer
	// and its marker — after this, every intact page file byte is the
	// checkpoint's, and any page still failing its checksum is real
	// corruption. Runs in either storage mode: the pending images belong
	// to the directory, not to the mode opening it.
	if err := db.recoverDoublewrite(l); err != nil {
		return nil, err
	}

	payload, _, has, err := l.ReadCheckpoint()
	if err != nil {
		return nil, err
	}
	if has {
		ddl, snapBytes, pageSize, metas, v2, err := dispatchCheckpointPayload(payload)
		if err != nil {
			return nil, err
		}
		for _, sql := range ddl {
			if _, err := db.Exec(sql); err != nil {
				return nil, fmt.Errorf("relational: recovering schema: %q: %w", sql, err)
			}
		}
		if v2 {
			if db.pool != nil && db.pool.pageSize != pageSize {
				return nil, fmt.Errorf("relational: configured page size %d, checkpoint written with %d", db.pool.pageSize, pageSize)
			}
			if err := db.attachPagedTables(pageSize, metas); err != nil {
				return nil, err
			}
		} else {
			snap, err := DecodeSnapshot(snapBytes)
			if err != nil {
				return nil, err
			}
			db.Restore(snap)
		}
	}
	if err := l.Replay(func(stamp uint64, stmts []wal.Stmt) error {
		return db.replayCommit(stamp, stmts)
	}); err != nil {
		return nil, err
	}
	db.replaying = false
	if db.pool != nil {
		// A long replay can leave the pool holding far more dirty pages
		// than its budget; one checkpoint makes them clean and evictable,
		// and the explicit sweep brings residency back under the limit.
		if db.pool.overLimit() {
			if err := db.Checkpoint(); err != nil {
				return nil, err
			}
			db.pool.mu.Lock()
			db.pool.evictPressureLocked()
			db.pool.mu.Unlock()
		}
	}
	// Armed after replay so recovery re-execution does not pollute the
	// slow-query log.
	if opts.SlowQuery > 0 {
		db.SetSlowQuery(opts.SlowQuery)
	}
	ok = true
	return db, nil
}

// RecoveredCommits reports how many log-tail commit records the Open that
// produced this DB replayed (excluding state loaded from the checkpoint).
func (db *DB) RecoveredCommits() int {
	if db.wal == nil {
		return 0
	}
	return db.wal.RecoveredCommits
}

// replayCommit re-executes one logged transaction. Replay runs
// single-threaded before the DB is shared, each record holds a fully
// committed transaction, and statement execution is deterministic, so
// statements re-run through the ordinary autocommit path. Replay itself is
// unversioned (no snapshot is registered on a recovering DB, so every
// replayed statement takes the physical single-version path); the logged
// stamp only advances the stamp counter, keeping post-recovery stamps
// monotonic with the pre-crash history.
func (db *DB) replayCommit(stamp uint64, stmts []wal.Stmt) error {
	if stamp > db.commitTS {
		db.commitTS = stamp
	}
	for _, s := range stmts {
		if len(s.Args) == 0 {
			if _, err := db.Exec(s.SQL); err != nil {
				return err
			}
			continue
		}
		p, err := db.Prepare(s.SQL)
		if err != nil {
			return err
		}
		args := make([]Value, len(s.Args))
		for i, a := range s.Args {
			var err error
			if args[i], err = fromWalVal(a); err != nil {
				return err
			}
		}
		if _, err := p.Exec(args...); err != nil {
			return err
		}
	}
	return nil
}

// logBulkChunk bounds one bulk record's statement bytes, comfortably under
// the log's frame limit while keeping huge document loads to a handful of
// records.
const logBulkChunk = 8 << 20

// LogBulk appends redo records for mutations performed outside the SQL
// layer — the shredder's bulk document load and the ASR build both insert
// rows directly for speed. The statements are not executed; they are the
// given mutations' SQL equivalent, recorded so recovery can reproduce the
// bulk state even before the first checkpoint exists. Large loads split
// into multiple records (a crash between them is covered by the
// initialization protocol: engine.OpenDir wipes and redoes a
// half-initialized directory). Call it immediately after the bulk
// mutation, before other writers exist.
func (db *DB) LogBulk(sqls []string) error {
	if !db.durable() || db.replaying || len(sqls) == 0 {
		return nil
	}
	var lsn uint64
	for len(sqls) > 0 {
		size, n := 0, 0
		for n < len(sqls) && (n == 0 || size+len(sqls[n]) <= logBulkChunk) {
			size += len(sqls[n])
			n++
		}
		stmts := make([]wal.Stmt, n)
		for i, s := range sqls[:n] {
			stmts[i] = wal.Stmt{SQL: s}
		}
		sqls = sqls[n:]
		var err error
		func() {
			db.mu.Lock()
			defer db.mu.Unlock()
			// Bulk loads are commits too: each record gets its own stamp so
			// the recovered stamp counter covers them.
			db.commitTS++
			lsn, err = db.wal.Append(stmts, db.commitTS)
		}()
		if err != nil {
			return err
		}
	}
	return db.afterCommit(lsn, nil)
}

// Checkpoint serializes the schema history and a data snapshot into a
// checkpoint file and truncates the log segments it supersedes. It runs
// under the shared lock — concurrent readers proceed; writers wait exactly
// as they would for any reader.
func (db *DB) Checkpoint() error {
	if db.wal == nil {
		return fmt.Errorf("relational: Checkpoint requires a DB opened with Open(dir, …)")
	}
	if db.pool != nil {
		return db.checkpointPaged()
	}
	db.mu.RLock()
	snap := db.snapshotLocked()
	ddl := make([]string, len(db.ddlHist))
	for i, e := range db.ddlHist {
		ddl[i] = e.sql
	}
	lsn := db.wal.LastLSN()
	db.mu.RUnlock()
	snapBytes, err := EncodeSnapshot(snap)
	if err != nil {
		return err
	}
	return db.wal.WriteCheckpoint(lsn, encodeCheckpointPayload(ddl, snapBytes))
}

// Close waits for any in-flight auto-checkpoint, flushes the log to stable
// storage, and releases it. Further commits on the handle fail. In-memory
// DBs (NewDB) close as a no-op.
func (db *DB) Close() error {
	if db.wal == nil {
		return nil
	}
	// Stop new auto-checkpoints and join the in-flight one first: closing
	// the log under it would abort it mid-write, and its error would land
	// after we read ckptErr.
	db.ckptMu.Lock()
	db.closing = true
	db.ckptMu.Unlock()
	db.ckptWG.Wait()
	err := db.wal.Close()
	if p := db.ckptErr.Load(); err == nil && p != nil {
		err = *p
	}
	// Paged: audit that no page is still pinned (a leaked cursor) and
	// release the page files. Dirty pages need no flush — the WAL tail
	// replays them on the next Open.
	db.mu.Lock()
	auditErr := db.auditPaged()
	db.mu.Unlock()
	if err == nil {
		err = auditErr
	}
	if err == nil {
		err = db.pagedErr()
	}
	return err
}

// Checkpoint payload: "RCKP1", uvarint DDL count, per-statement uvarint
// length + SQL text, then the snapshot bytes.
const ckptMagic = "RCKP1"

func encodeCheckpointPayload(ddl []string, snap []byte) []byte {
	b := []byte(ckptMagic)
	b = binary.AppendUvarint(b, uint64(len(ddl)))
	for _, sql := range ddl {
		b = binary.AppendUvarint(b, uint64(len(sql)))
		b = append(b, sql...)
	}
	return append(b, snap...)
}

// dispatchCheckpointPayload decodes either checkpoint generation by its
// magic: v2 ("RCKP2", paged — DDL plus page-file metadata) or v1
// ("RCKP1", snapshot). v2 fields are zero for a v1 payload and vice
// versa; v2 reports which was found.
func dispatchCheckpointPayload(payload []byte) (ddl []string, snap []byte, pageSize int, metas []pagedTableMeta, v2 bool, err error) {
	if len(payload) >= len(ckptMagicV2) && string(payload[:len(ckptMagicV2)]) == ckptMagicV2 {
		pageSize, ddl, metas, err = decodePagedPayload(payload)
		return ddl, nil, pageSize, metas, true, err
	}
	ddl, snap, err = decodeCheckpointPayload(payload)
	return ddl, snap, 0, nil, false, err
}

func decodeCheckpointPayload(data []byte) (ddl []string, snap []byte, err error) {
	if len(data) < len(ckptMagic) || string(data[:len(ckptMagic)]) != ckptMagic {
		return nil, nil, fmt.Errorf("relational: bad checkpoint magic")
	}
	b := data[len(ckptMagic):]
	count, n := binary.Uvarint(b)
	if n <= 0 || count > uint64(len(b)) {
		return nil, nil, fmt.Errorf("relational: bad checkpoint DDL count")
	}
	b = b[n:]
	for i := uint64(0); i < count; i++ {
		ln, n := binary.Uvarint(b)
		if n <= 0 || ln > uint64(len(b)-n) {
			return nil, nil, fmt.Errorf("relational: bad checkpoint DDL entry")
		}
		ddl = append(ddl, string(b[n:n+int(ln)]))
		b = b[n+int(ln):]
	}
	return ddl, b, nil
}

// walVal converts a relational value to the log's tagged form — a field
// copy, no boxing. The kind numbering is shared by construction.
func walVal(v Value) wal.Value {
	return wal.Value{Kind: wal.Kind(v.kind), Int: v.i, Str: v.s}
}

// fromWalVal converts a decoded log value back, rejecting kinds outside the
// canonical domain (a decoder bug or hand-edited log must fail recovery
// loudly, not smuggle an undefined value into the heap).
func fromWalVal(w wal.Value) (Value, error) {
	switch w.Kind {
	case wal.KindNull:
		return Null, nil
	case wal.KindInt:
		return Int(w.Int), nil
	case wal.KindText:
		return Text(w.Str), nil
	default:
		return Null, fmt.Errorf("relational: log value with unknown kind %d", uint8(w.Kind))
	}
}

package relational

import (
	"strings"
	"testing"

	"fmt"
)

// Access-path regression pins for the three paper-shaped statements: the
// conventional path query (index probes), Sorted Outer Union reconstruction
// (ordered access, merged branches, no Sort operator), and the §8
// pos-renumbering UPDATE (a B+tree range probe). These are the plans §7's
// numbers depend on; a planner change that silently loses one shows up here
// rather than as a benchmark regression.

// paperSchema loads the shred-shaped two-level schema with the ordered
// indexes CreateTablesSQL declares.
func paperSchema(t testing.TB) *DB {
	t.Helper()
	db := NewDB()
	for _, sql := range []string{
		`CREATE TABLE Customer (id INTEGER, parentId INTEGER, name VARCHAR(40))`,
		`CREATE TABLE Orders (id INTEGER, parentId INTEGER, pos INTEGER, d VARCHAR(40))`,
		`CREATE ORDERED INDEX oidx_cust_id ON Customer (id)`,
		`CREATE ORDERED INDEX oidx_ord_id ON Orders (id)`,
		`CREATE ORDERED INDEX oidx_ord_pos ON Orders (parentId, pos)`,
	} {
		db.MustExec(sql)
	}
	for i := 1; i <= 5; i++ {
		db.MustExec(fmt.Sprintf(`INSERT INTO Customer VALUES (%d, NULL, 'c%d')`, i, i))
		for j := 0; j < 3; j++ {
			db.MustExec(fmt.Sprintf(`INSERT INTO Orders VALUES (%d, %d, %d, 'o')`, 100+i*10+j, i, j))
		}
	}
	return db
}

// TestExplainConventionalPathProbes: the conventional path query's child
// join runs as index probes, not scans.
func TestExplainConventionalPathProbes(t *testing.T) {
	db := paperSchema(t)
	out, err := db.Explain(`SELECT C.name FROM Customer C, Orders O WHERE O.parentId = C.id AND O.d = 'o'`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "IndexProbe") {
		t.Errorf("conventional path query should probe:\n%s", out)
	}
	if strings.Contains(out, "HashJoin") {
		t.Errorf("conventional path query fell back to a hash join:\n%s", out)
	}
}

// souStatement is the two-level Sorted Outer Union reconstruction statement
// (§5.2 shape: NULL-padded branches, ancestor key propagation, ORDER BY over
// the id columns).
const souStatement = `WITH Q1(C1, C2, C3, C4) AS (SELECT T.id, T.name, NULL, NULL FROM Customer T), ` +
	`Q2(C1, C2, C3, C4) AS (SELECT Q1.C1, NULL, T.id, T.d FROM Q1, Orders T WHERE T.parentId = Q1.C1) ` +
	`(SELECT * FROM Q1) UNION ALL (SELECT * FROM Q2) ORDER BY C1, C3`

// TestExplainSOUElidesSort: the SOU reconstruction statement shows no Sort
// operator — branches stream ordered (OrderedScan / OrderedProbe) and merge.
func TestExplainSOUElidesSort(t *testing.T) {
	db := paperSchema(t)
	out, err := db.Explain(souStatement)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "Sort [") {
		t.Errorf("SOU reconstruction should elide its sort:\n%s", out)
	}
	for _, want := range []string{"MergeAll [C1, C3]", "OrderedScan Customer AS T ordered [id]", "SortedProbe Orders AS T (parentId = Q1.C1) ordered [id]"} {
		if !strings.Contains(out, want) {
			t.Errorf("SOU plan missing %q:\n%s", want, out)
		}
	}
	// The elided plan is the executed plan: no sort pass runs, and the
	// stream arrives in document order.
	db.ResetStats()
	rows, err := db.Query(souStatement)
	if err != nil {
		t.Fatal(err)
	}
	if st := db.Stats(); st.SortPasses != 0 || st.RowsSorted != 0 {
		t.Errorf("SOU executed a sort: %+v", st)
	}
	keys := []sortSpec{{col: 0}, {col: 2}}
	for i := 1; i < len(rows.Data); i++ {
		if compareRows(rows.Data[i-1], rows.Data[i], keys) > 0 {
			t.Fatalf("merged SOU stream out of document order at row %d", i)
		}
	}
}

// TestExplainPosRenumberRangeScan: the §8 position-renumbering UPDATE runs
// as a B+tree range probe over (parentId, pos), not a scan.
func TestExplainPosRenumberRangeScan(t *testing.T) {
	db := paperSchema(t)
	out, err := db.Explain(`UPDATE Orders SET pos = pos + 1 WHERE parentId = 3 AND pos >= 1`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "RangeScan Orders (parentId = 3 AND pos >= 1)") {
		t.Errorf("pos renumbering should range-probe:\n%s", out)
	}
	db.ResetStats()
	if n := db.MustExec(`UPDATE Orders SET pos = pos + 1 WHERE parentId = 3 AND pos >= 1`); n != 2 {
		t.Errorf("renumbered %d rows, want 2", n)
	}
	st := db.Stats()
	if st.RangeProbes == 0 {
		t.Errorf("renumbering did not range-probe: %+v", st)
	}
	if st.FullScans != 0 {
		t.Errorf("renumbering fell back to a scan: %+v", st)
	}
}

// TestExplainDescElision: a DESC-ordered single-table query elides its sort
// via a descending index walk.
func TestExplainDescElision(t *testing.T) {
	db := paperSchema(t)
	out, err := db.Explain(`SELECT id FROM Orders ORDER BY id DESC`)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "Sort [") || !strings.Contains(out, "OrderedScan Orders ordered [id DESC]") {
		t.Errorf("DESC scan should walk the index backwards:\n%s", out)
	}
	rows, err := db.Query(`SELECT id FROM Orders ORDER BY id DESC`)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(rows.Data); i++ {
		if compareValues(rows.Data[i-1][0], rows.Data[i][0]) < 0 {
			t.Fatalf("descending stream ascends at %d", i)
		}
	}
}

package relational

import (
	"strings"
	"testing"
)

func TestUniqueIDEnforced(t *testing.T) {
	db := NewDB()
	db.MustExec(`CREATE TABLE t (id INTEGER, x INTEGER)`)
	db.MustExec(`INSERT INTO t VALUES (5, 3)`)
	if _, err := db.Exec(`INSERT INTO t VALUES (5, 1)`); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("duplicate id accepted: %v", err)
	}
	db.MustExec(`INSERT INTO t VALUES (6, 1)`)
	if _, err := db.Exec(`UPDATE t SET id = 5 WHERE id = 6`); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("duplicate id via UPDATE accepted: %v", err)
	}
	// Self-assignment and fresh values stay legal.
	db.MustExec(`UPDATE t SET id = 6 WHERE id = 6`)
	db.MustExec(`UPDATE t SET id = 7 WHERE id = 6`)
}

package relational

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// pagedOpts is the crash-test configuration of the paged backend: a tiny
// pool over tiny pages so that eviction, faulting, and relocation all fire
// under modest workloads, with auto-checkpointing off so tests control
// exactly what the recovery sources hold.
func pagedOpts() Options {
	return Options{Sync: SyncOff, CheckpointBytes: -1, SegmentSize: 512,
		Storage: StoragePaged, PoolPages: 4, PageSize: 512}
}

// TestPagedMemoryEquivalenceRandom runs randomized workloads (inserts,
// updates, deletes, failing statements, DDL, transactions, prepared
// statements) against a paged DB and an in-memory shadow and requires
// byte-identical dumps — with a checkpoint dropped in the middle so flushed
// and still-dirty pages mix, and a reopen at the end so the recovered state
// is held to the same standard.
func TestPagedMemoryEquivalenceRandom(t *testing.T) {
	for i := 0; i < 6; i++ {
		r := rand.New(rand.NewSource(int64(100 + i)))
		dir := t.TempDir()
		// A two-page pool: even the smallest workload in the seed range
		// spills past it, so faulting and eviction churn constantly.
		opts := pagedOpts()
		opts.PoolPages = 2
		db := mustOpenDB(t, dir, opts)
		shadow := NewDB()
		ops := genWorkload(r, 200)
		for j, op := range ops {
			applyOp(t, db, op)
			applyOp(t, shadow, op)
			// Periodic checkpoints turn dirty pages clean so the pool can
			// actually evict them; later scans then fault them back in.
			if j%30 == 29 {
				if err := db.Checkpoint(); err != nil {
					t.Fatalf("iter %d: checkpoint at op %d: %v", i, j, err)
				}
			}
		}
		want := dbDump(shadow)
		if got := dbDump(db); got != want {
			t.Fatalf("iter %d: paged dump diverges from memory shadow\n got:\n%s\nwant:\n%s", i, got, want)
		}
		if ev := db.Stats().Evictions; ev == 0 {
			t.Fatalf("iter %d: workload never evicted (pool too large for the test to mean anything)", i)
		}
		if err := db.Close(); err != nil {
			t.Fatalf("iter %d: Close: %v", i, err)
		}

		rec := mustOpenDB(t, dir, pagedOpts())
		if got := dbDump(rec); got != want {
			t.Fatalf("iter %d: recovered paged dump diverges\n got:\n%s\nwant:\n%s", i, got, want)
		}
		if err := rec.Close(); err != nil {
			t.Fatalf("iter %d: Close after recovery: %v", i, err)
		}
	}
}

// TestPagedOversizedRowRejected verifies that a row whose encoded record
// cannot fit an empty page is rejected at Insert and Update time (in and
// out of explicit transactions) instead of being accepted and wedging the
// checkpoint's relocation loop, and that the rejecting statement rolls
// back cleanly — the DB keeps working and still checkpoints.
func TestPagedOversizedRowRejected(t *testing.T) {
	dir := t.TempDir()
	db := mustOpenDB(t, dir, pagedOpts()) // 512-byte pages
	defer db.Close()
	mustExec := func(sql string) {
		t.Helper()
		if _, err := db.Exec(sql); err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
	}
	mustExec("CREATE TABLE big (id INTEGER, body TEXT)")
	huge := strings.Repeat("x", 600) // > pageSize - header
	if _, err := db.Exec(fmt.Sprintf("INSERT INTO big VALUES (1, '%s')", huge)); err == nil {
		t.Fatal("oversized INSERT accepted")
	}
	mustExec("INSERT INTO big VALUES (1, 'small')")
	if _, err := db.Exec(fmt.Sprintf("UPDATE big SET body = '%s' WHERE id = 1", huge)); err == nil {
		t.Fatal("oversized UPDATE accepted")
	}
	mustExec("BEGIN")
	if _, err := db.Exec(fmt.Sprintf("UPDATE big SET body = '%s' WHERE id = 1", huge)); err == nil {
		t.Fatal("oversized versioned UPDATE accepted")
	}
	mustExec("COMMIT")
	rows, err := db.Query("SELECT body FROM big WHERE id = 1")
	if err != nil {
		t.Fatalf("query after rejections: %v", err)
	}
	if len(rows.Data) != 1 {
		t.Fatalf("got %d rows after rejected updates, want 1", len(rows.Data))
	}
	if s, _ := rows.Data[0][0].Text(); s != "small" {
		t.Fatalf("row not restored after rejected updates: body = %q", s)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatalf("checkpoint after rejections: %v", err)
	}
}

// TestPagedLargerThanRAMScan loads a dataset several times the pool budget,
// checkpoints it so pages are clean and evictable, and verifies that scans,
// joins, and point reads stream through the bounded pool byte-identically
// with the memory backend — with evictions actually happening and residency
// staying within the limit.
func TestPagedLargerThanRAMScan(t *testing.T) {
	dir := t.TempDir()
	db := mustOpenDB(t, dir, pagedOpts())
	shadow := NewDB()
	both := func(sql string) {
		t.Helper()
		db.MustExec(sql)
		shadow.MustExec(sql)
	}
	both("CREATE TABLE item (id INTEGER, parentId INTEGER, pos INTEGER, name VARCHAR(64))")
	both("CREATE ORDERED INDEX ip ON item (parentId, pos)")
	const n = 400
	for i := 0; i < n; i++ {
		both(fmt.Sprintf("INSERT INTO item VALUES (%d, %d, %d, 'name-%04d-%s')",
			i+1, i%7, i/7, i, strings.Repeat("x", 10+i%13)))
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	_, _, limit := db.PagedPoolStats()
	// The dataset must dwarf the pool: at least 4x as many pages on disk as
	// the pool admits.
	if np := pageFileCount(t, dir, "item"); np < 4*limit {
		t.Fatalf("dataset spans %d pages, want >= 4x pool limit %d — grow the workload", np, limit)
	}

	queries := []string{
		"SELECT pos, id, name FROM item WHERE parentId = 3 ORDER BY pos",
		"SELECT COUNT(*) FROM item WHERE parentId = 5",
		"SELECT a.id, b.id FROM item a, item b WHERE a.parentId = b.parentId AND a.pos = 0 AND b.pos = 1 ORDER BY a.id, b.id",
		"SELECT id FROM item WHERE name = 'name-0123-" + strings.Repeat("x", 10+123%13) + "'",
	}
	for _, q := range queries {
		want := queryDump(t, shadow, q)
		got := queryDump(t, db, q)
		if got != want {
			t.Fatalf("query %q diverges\n got:\n%s\nwant:\n%s", q, got, want)
		}
	}
	st := db.Stats()
	if st.Evictions == 0 || st.PageReads == 0 || st.PoolMisses == 0 {
		t.Fatalf("larger-than-RAM scan did not exercise the pool: %+v", st)
	}
	// The EXPLAIN ANALYZE footer reports the statement's page I/O.
	plan, err := db.ExplainAnalyze("SELECT COUNT(*) FROM item WHERE pos >= 0")
	if err != nil {
		t.Fatalf("ExplainAnalyze: %v", err)
	}
	// Zero-valued counters are omitted from the footer, and a cyclic scan
	// over a pool smaller than the file is all misses — so assert on the
	// counters this workload must drive, not on poolHits.
	if !strings.Contains(plan, "pageReads=") || !strings.Contains(plan, "poolMisses=") {
		t.Fatalf("EXPLAIN ANALYZE footer lacks pool counters:\n%s", plan)
	}
	if resident, _, limit := db.PagedPoolStats(); resident > limit {
		t.Fatalf("resident pages %d exceed pool limit %d after scans", resident, limit)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func queryDump(t *testing.T, db *DB, sql string) string {
	t.Helper()
	rows, err := db.Query(sql)
	if err != nil {
		t.Fatalf("Query(%s): %v", sql, err)
	}
	var b strings.Builder
	for _, r := range rows.Data {
		for _, v := range r {
			fmt.Fprintf(&b, " %s", FormatValue(v))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func pageFileCount(t *testing.T, dir, table string) int {
	t.Helper()
	st, err := os.Stat(filepath.Join(dir, pagedFileName(table)))
	if err != nil {
		t.Fatalf("page file: %v", err)
	}
	return int(st.Size()) / 512
}

// TestPagedCheckpointIncremental is the perf claim behind the v2 protocol:
// after a small update batch, a paged checkpoint writes only the dirty
// pages (twice: doublewrite + in place) plus a small marker — under 10% of
// what the v1 whole-snapshot checkpoint would serialize.
func TestPagedCheckpointIncremental(t *testing.T) {
	dir := t.TempDir()
	opts := pagedOpts()
	opts.PoolPages = 64 // plenty; this test measures bytes, not eviction
	db := mustOpenDB(t, dir, opts)
	db.MustExec("CREATE TABLE item (id INTEGER, parentId INTEGER, pos INTEGER, name VARCHAR(64))")
	for i := 0; i < 1500; i++ {
		db.MustExec(fmt.Sprintf("INSERT INTO item VALUES (%d, %d, %d, 'name-%04d-padpadpad')", i+1, i%7, i/7, i))
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatalf("full checkpoint: %v", err)
	}

	// A small update batch touching adjacent rids — a handful of pages.
	db.MustExec("UPDATE item SET name = 'renamed' WHERE id >= 10 AND id < 20")

	var dwBytes int64
	db.ckptHook = func(stage string) error {
		if stage == "dw-durable" {
			if st, err := os.Stat(filepath.Join(dir, dwFileName)); err == nil {
				dwBytes = st.Size()
			}
		}
		return nil
	}
	before := db.Stats()
	if err := db.Checkpoint(); err != nil {
		t.Fatalf("incremental checkpoint: %v", err)
	}
	db.ckptHook = nil
	delta := db.Stats().PageWrites - before.PageWrites
	if delta == 0 || dwBytes == 0 {
		t.Fatalf("incremental checkpoint wrote nothing (delta=%d dw=%d)", delta, dwBytes)
	}

	snapBytes, err := EncodeSnapshot(db.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	// Every image is written twice (doublewrite + in place); the dw file
	// additionally carries the marker payload and framing.
	incremental := 2 * dwBytes
	if full := int64(len(snapBytes)); incremental >= full/10 {
		t.Fatalf("incremental checkpoint wrote %d bytes (%d pages), want < 10%% of the %d-byte full snapshot",
			incremental, delta/2, full)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// TestPagedReopenModes proves the storage modes can open each other's
// directories: paged→paged, paged directory reopened by the memory backend
// (v2 checkpoint, full heap load), and a memory directory (v1 snapshot
// checkpoint) adopted by the paged backend.
func TestPagedReopenModes(t *testing.T) {
	run := func(db *DB) string {
		db.MustExec("CREATE TABLE item (id INTEGER, parentId INTEGER, name VARCHAR(64))")
		for i := 0; i < 60; i++ {
			db.MustExec(fmt.Sprintf("INSERT INTO item VALUES (%d, %d, 'n%d')", i+1, i%3, i))
		}
		if err := db.Checkpoint(); err != nil {
			panic(err)
		}
		// A post-checkpoint tail so recovery replays WAL on top of pages.
		db.MustExec("DELETE FROM item WHERE parentId = 1")
		db.MustExec("UPDATE item SET name = 'tail' WHERE id = 6")
		return dbDump(db)
	}

	// paged → paged and paged → memory.
	dir := t.TempDir()
	db := mustOpenDB(t, dir, pagedOpts())
	want := run(db)
	if err := db.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	for _, opts := range []Options{pagedOpts(), noAutoCkpt()} {
		re := mustOpenDB(t, dir, opts)
		if got := dbDump(re); got != want {
			t.Fatalf("reopen with %+v diverges\n got:\n%s\nwant:\n%s", opts.Storage, got, want)
		}
		if err := re.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
	}

	// memory (v1 checkpoint) → paged, then checkpoint and reopen paged again
	// (the migrated directory now carries a v2 checkpoint).
	dir2 := t.TempDir()
	mem := mustOpenDB(t, dir2, noAutoCkpt())
	want2 := run(mem)
	if err := mem.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	pg := mustOpenDB(t, dir2, pagedOpts())
	if got := dbDump(pg); got != want2 {
		t.Fatalf("paged open of memory directory diverges\n got:\n%s\nwant:\n%s", got, want2)
	}
	if err := pg.Checkpoint(); err != nil {
		t.Fatalf("migrating checkpoint: %v", err)
	}
	if err := pg.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	pg2 := mustOpenDB(t, dir2, pagedOpts())
	if got := dbDump(pg2); got != want2 {
		t.Fatalf("reopen of migrated directory diverges\n got:\n%s\nwant:\n%s", got, want2)
	}
	if err := pg2.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// TestPagedCrashInjectionRandomKillPoints extends the PR 4 crash suite to
// the paged backend: randomized workloads with a mid-workload paged
// checkpoint, a crash losing a random byte suffix of the log, and recovery
// (checkpointed pages + WAL tail) that must match the shadow's state after
// exactly the commits that survived.
func TestPagedCrashInjectionRandomKillPoints(t *testing.T) {
	const killPoints = 25
	for i := 0; i < killPoints; i++ {
		r := rand.New(rand.NewSource(int64(500 + i)))
		dir := t.TempDir()
		db := mustOpenDB(t, dir, pagedOpts())
		shadow := NewDB()
		ops := genWorkload(r, 40+r.Intn(20))
		ckptAt := 5 + r.Intn(len(ops)-5)

		var dumps []string
		base := 0 // commits already folded into the checkpoint
		for j, op := range ops {
			before := db.wal.LastLSN()
			applyOp(t, db, op)
			applyOp(t, shadow, op)
			after := db.wal.LastLSN()
			switch after - before {
			case 0:
			case 1:
				dumps = append(dumps, dbDump(shadow))
			default:
				t.Fatalf("op produced %d records", after-before)
			}
			if j == ckptAt {
				if err := db.Checkpoint(); err != nil {
					t.Fatalf("iter %d: checkpoint: %v", i, err)
				}
				base = len(dumps)
			}
		}
		// Crash image: abandon without Close, lose a random tail of the log.
		var total int64
		for _, seg := range segFiles(t, dir) {
			st, _ := os.Stat(seg)
			total += st.Size()
		}
		killAt(t, dir, r.Int63n(total+1))

		rec := mustOpenDB(t, dir, pagedOpts())
		k := base + rec.RecoveredCommits()
		want := ""
		if k > 0 {
			if k > len(dumps) {
				t.Fatalf("iter %d: recovered past the end (%d of %d commits)", i, k, len(dumps))
			}
			want = dumps[k-1]
		}
		if got := dbDump(rec); got != want {
			t.Fatalf("iter %d (ckpt after commit %d, %d/%d commits): paged recovery diverges\n got:\n%s\nwant:\n%s",
				i, base, k, len(dumps), got, want)
		}
		if err := rec.Close(); err != nil {
			t.Fatalf("iter %d: Close: %v", i, err)
		}
	}
}

// errInjected simulates a crash inside the checkpoint's durable phase.
var errInjected = fmt.Errorf("injected checkpoint crash")

// TestPagedCheckpointCrashStages kills the checkpoint at every stage of its
// durable protocol — doublewrite just landed, a page write torn one third
// of the way through, pages durable but the marker missing, and everything
// durable with the doublewrite buffer left behind — and requires recovery
// to reproduce the full committed state every time. The torn-page stage is
// the one the doublewrite buffer exists for: the page file holds a
// checksum-failing page, and recovery must rebuild it from the buffer
// rather than ever serving it.
func TestPagedCheckpointCrashStages(t *testing.T) {
	stages := []string{"dw-durable", "page-write:0", "pages-durable", "marked"}
	for _, stage := range stages {
		t.Run(stage, func(t *testing.T) {
			dir := t.TempDir()
			db := mustOpenDB(t, dir, pagedOpts())
			shadow := NewDB()
			r := rand.New(rand.NewSource(42))
			ops := genWorkload(r, 50)
			for j, op := range ops {
				applyOp(t, db, op)
				applyOp(t, shadow, op)
				if j == 20 {
					if err := db.Checkpoint(); err != nil {
						t.Fatalf("first checkpoint: %v", err)
					}
				}
			}
			want := dbDump(shadow)

			db.ckptHook = func(s string) error {
				if s == stage {
					return errInjected
				}
				return nil
			}
			if err := db.Checkpoint(); err != errInjected {
				t.Fatalf("Checkpoint with %s kill = %v, want injected crash", stage, err)
			}
			// Abandon db (crash); the directory is the recovery image.
			rec := mustOpenDB(t, dir, pagedOpts())
			if got := dbDump(rec); got != want {
				t.Fatalf("recovery after %s crash diverges\n got:\n%s\nwant:\n%s", stage, got, want)
			}
			// The interrupted checkpoint must leave no doublewrite debris.
			if _, err := os.Stat(filepath.Join(dir, dwFileName)); !os.IsNotExist(err) {
				t.Fatalf("dw.buf survives recovery (err=%v)", err)
			}
			if err := rec.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
		})
	}
}

// TestPagedCorruptPageFailsOpen: a page that fails its checksum with no
// doublewrite buffer to rebuild it from is real corruption; Open must fail
// loudly rather than serve the page.
func TestPagedCorruptPageFailsOpen(t *testing.T) {
	dir := t.TempDir()
	db := mustOpenDB(t, dir, pagedOpts())
	db.MustExec("CREATE TABLE item (id INTEGER, name VARCHAR(64))")
	for i := 0; i < 50; i++ {
		db.MustExec(fmt.Sprintf("INSERT INTO item VALUES (%d, 'n%d')", i+1, i))
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	path := filepath.Join(dir, pagedFileName("item"))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[100] ^= 0xff // inside the first page's records
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if db, err := Open(dir, pagedOpts()); err == nil {
		db.Close()
		t.Fatal("Open served a corrupt page file")
	}
}

// TestPagedMVCC drives the paged backend through version-chain territory:
// an explicit transaction updates and deletes under its snapshot while
// concurrent readers must keep seeing the pre-transaction state (versioned
// rows and versioned deletes on paged tables), the open transaction blocks
// a paged checkpoint (errCkptOpenTxn), and after commit the checkpoint
// vacuums the chains so the pages carry exactly the committed state — which
// recovery must reproduce, matching a memory shadow of the same schedule.
func TestPagedMVCC(t *testing.T) {
	dir := t.TempDir()
	db := mustOpenDB(t, dir, pagedOpts())
	shadow := NewDB()
	run := func(d *DB) {
		d.MustExec("CREATE TABLE item (id INTEGER, parentId INTEGER, name VARCHAR(64))")
		for i := 0; i < 80; i++ {
			d.MustExec(fmt.Sprintf("INSERT INTO item VALUES (%d, %d, 'n%d')", i+1, i%5, i))
		}
		tx := d.Begin()
		if _, err := tx.Exec("UPDATE item SET name = 'txn' WHERE parentId = 2"); err != nil {
			t.Fatal(err)
		}
		if _, err := tx.Exec("DELETE FROM item WHERE parentId = 4"); err != nil {
			t.Fatal(err)
		}
		// A concurrent reader still sees the pre-transaction state: no
		// 'txn' names, and every parentId=4 row alive — even when serving
		// superseded versions requires faulting their pages back in.
		if got := queryDump(t, d, "SELECT id FROM item WHERE name = 'txn' ORDER BY id"); got != "" {
			t.Fatalf("uncommitted update visible outside the transaction:\n%s", got)
		}
		want := queryDump(t, d, "SELECT id FROM item WHERE parentId = 4 ORDER BY id")
		if strings.Count(want, "\n") != 16 {
			t.Fatalf("reader lost uncommitted-deleted rows: %q", want)
		}
		if d == db {
			if err := d.Checkpoint(); err != errCkptOpenTxn {
				t.Fatalf("Checkpoint under open txn = %v, want errCkptOpenTxn", err)
			}
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	run(db)
	run(shadow)
	if err := db.Checkpoint(); err != nil {
		t.Fatalf("post-commit checkpoint: %v", err)
	}
	want := dbDump(shadow)
	if got := dbDump(db); got != want {
		t.Fatalf("paged MVCC dump diverges\n got:\n%s\nwant:\n%s", got, want)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	rec := mustOpenDB(t, dir, pagedOpts())
	if got := dbDump(rec); got != want {
		t.Fatalf("recovered paged MVCC dump diverges\n got:\n%s\nwant:\n%s", got, want)
	}
	if err := rec.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// TestPagedConcurrentStress runs parallel-executor scans and joins from
// many reader goroutines against a two-page pool — so the readers
// constantly fault and evict each other's pages through the pool mutex —
// while a writer churns rows and checkpoints. Run under -race this is the
// paged backend's concurrency proof; the final state must still match a
// serial shadow of the same writes.
func TestPagedConcurrentStress(t *testing.T) {
	dir := t.TempDir()
	opts := pagedOpts()
	opts.PoolPages = 2
	opts.Parallelism = 4
	db := mustOpenDB(t, dir, opts)
	shadow := NewDB()
	writes := []string{
		"CREATE TABLE item (id INTEGER, parentId INTEGER, pos INTEGER, name VARCHAR(64))",
		"CREATE ORDERED INDEX ip ON item (parentId, pos)",
	}
	for i := 0; i < 300; i++ {
		writes = append(writes, fmt.Sprintf("INSERT INTO item VALUES (%d, %d, %d, 'name-%04d')", i+1, i%5, i/5, i))
	}
	for i := 0; i < 60; i++ {
		switch i % 3 {
		case 0:
			writes = append(writes, fmt.Sprintf("UPDATE item SET name = 'u%d' WHERE id = %d", i, i*4+1))
		case 1:
			writes = append(writes, fmt.Sprintf("DELETE FROM item WHERE id = %d", i*4+2))
		default:
			writes = append(writes, fmt.Sprintf("INSERT INTO item VALUES (%d, %d, %d, 'late-%d')", 1000+i, i%5, 99, i))
		}
	}
	// Setup phase so the readers have data from the start.
	for _, s := range writes[:150] {
		db.MustExec(s)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}

	stop := make(chan struct{})
	errc := make(chan error, 8)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, q := range []string{
					"SELECT COUNT(*) FROM item WHERE parentId = 3",
					"SELECT pos, id FROM item WHERE parentId = 2 ORDER BY pos",
					"SELECT a.id, b.id FROM item a, item b WHERE a.parentId = b.parentId AND a.pos = 7 AND b.pos = 8",
				} {
					if _, err := db.Query(q); err != nil {
						select {
						case errc <- fmt.Errorf("query %q: %w", q, err):
						default:
						}
						return
					}
				}
			}
		}()
	}
	for i, s := range writes[150:] {
		db.MustExec(s)
		if i%40 == 39 {
			// Concurrent readers hold snapshots; a blocked checkpoint just
			// reports errCkptOpenTxn and the next one retries.
			if err := db.Checkpoint(); err != nil && err != errCkptOpenTxn {
				t.Fatalf("checkpoint under readers: %v", err)
			}
		}
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}

	for _, s := range writes {
		shadow.MustExec(s)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatalf("final checkpoint: %v", err)
	}
	want := dbDump(shadow)
	if got := dbDump(db); got != want {
		t.Fatalf("stressed paged dump diverges\n got:\n%s\nwant:\n%s", got, want)
	}
	if db.Stats().Evictions == 0 {
		t.Fatal("stress never evicted")
	}
	if err := db.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

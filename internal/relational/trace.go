package relational

import (
	"io"
	"sync"
	"time"

	"repro/internal/metrics"
)

// Query tracing. Every client-visible statement path (Exec, Query,
// QueryEach, Prepared.Exec, Tx statements, Tx.Commit) can emit one
// QueryTrace describing where the statement spent its time: parse+plan or
// plan-cache hit, lock wait, execution, in-memory commit, fsync wait, and
// the Stats counters it moved. Tracing is opt-in and off by default — the
// enabled check is a single atomic pointer load and the disabled path
// allocates nothing, which is what keeps the 0 allocs/row executor pins
// green while the hooks exist.
//
// Alongside the per-statement traces, the DB always maintains a small set
// of engine latency histograms (engineMetrics): commit latency by fsync
// mode, statement-lock wait, intent wait, fsync wait, WAL append/fsync
// timing and group-commit batch size, MVCC conflicts and vacuum reclaim.
// These cost a few time.Now calls per statement — never per row — and are
// exposed through Metrics / WriteMetrics.

// QueryTrace is the span record of one executed statement. Durations not
// applicable to the statement's path (FsyncWait on an in-memory DB,
// Commit on a read) stay zero.
type QueryTrace struct {
	// SQL is the statement text (the `?` shape for prepared statements).
	SQL string
	// Kind names the path that ran the statement: "exec", "query",
	// "query-each", "prepared-exec", "prepared-query", "tx-exec",
	// "tx-commit", or "analyze".
	Kind string
	// Start is when the statement entered the engine; Total the wall time
	// until its result (including durability) was ready.
	Start time.Time
	Total time.Duration
	// Parse is time spent parsing and planning; zero when CacheHit, the
	// statement template came from the shape-keyed plan cache.
	Parse    time.Duration
	CacheHit bool
	// LockWait is time spent waiting for the statement's data-plane lock
	// (exclusive for writes, shared for reads).
	LockWait time.Duration
	// Execute is time inside the executor proper, summed across
	// first-committer-wins retries.
	Execute time.Duration
	// Commit is the in-memory commit: stamping, intent release, vacuum,
	// undo discard, and the redo-log append (an OS write, no fsync).
	Commit time.Duration
	// FsyncWait is time blocked on durability after the lock was released.
	FsyncWait time.Duration
	// IntentWait is time parked behind an explicit transaction's write
	// intent; Retries counts the re-executions that followed.
	IntentWait time.Duration
	Retries    int
	// Rows is the statement's result: rows affected for writes, rows
	// returned for reads.
	Rows int
	// Slow marks traces that crossed the slow-query threshold.
	Slow bool
	// Err is the failure message, empty on success.
	Err string
	// Stats is the delta of the DB's work counters over this statement.
	// Under concurrent statements the delta includes their overlap (the
	// counters are DB-global); it is exact when statements run one at a
	// time.
	Stats Stats

	statsBase Stats
}

// traceHook is one registered OnTrace callback with its cancellation id.
type traceHook struct {
	id uint64
	fn func(*QueryTrace)
}

// obsState is the immutable published form of the DB's tracing
// configuration. The hot path loads it once per statement; OnTrace,
// EnableTraceLog, and SetSlowQuery publish a fresh copy under obsMu.
// A nil obsState means tracing is fully off.
type obsState struct {
	hooks []traceHook
	ring  *traceRing
	slow  time.Duration
}

// traceRing is a fixed-capacity ring of recent traces.
type traceRing struct {
	mu   sync.Mutex
	buf  []*QueryTrace
	next int
	full bool
}

func newTraceRing(n int) *traceRing {
	return &traceRing{buf: make([]*QueryTrace, n)}
}

func (r *traceRing) add(qt *QueryTrace) {
	r.mu.Lock()
	r.buf[r.next] = qt
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
	r.mu.Unlock()
}

// entries returns the ring's contents, oldest first.
func (r *traceRing) entries() []*QueryTrace {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []*QueryTrace
	if r.full {
		out = append(out, r.buf[r.next:]...)
	}
	out = append(out, r.buf[:r.next]...)
	return out
}

// defaultTraceRing is the ring capacity SetSlowQuery installs when no
// explicit EnableTraceLog size was chosen.
const defaultTraceRing = 64

// updateObs copies the current observability state, applies f, and
// publishes the result — or publishes nil when the result is empty, so
// the per-statement check degrades back to "one atomic load, off".
func (db *DB) updateObs(f func(s *obsState)) {
	db.obsMu.Lock()
	defer db.obsMu.Unlock()
	var s obsState
	if cur := db.obs.Load(); cur != nil {
		s.hooks = append([]traceHook(nil), cur.hooks...)
		s.ring = cur.ring
		s.slow = cur.slow
	}
	f(&s)
	if len(s.hooks) == 0 && s.ring == nil && s.slow == 0 {
		db.obs.Store(nil)
		return
	}
	db.obs.Store(&s)
}

// OnTrace registers fn to receive a QueryTrace for every statement the DB
// executes, and returns a function that unregisters it. Hooks run
// synchronously on the statement's goroutine after its locks are
// released; a hook must not issue statements on the same DB handle it is
// observing a transaction path of, and should hand slow work to another
// goroutine.
func (db *DB) OnTrace(fn func(*QueryTrace)) (cancel func()) {
	var id uint64
	db.updateObs(func(s *obsState) {
		id = db.nextHookID.Add(1)
		s.hooks = append(s.hooks, traceHook{id: id, fn: fn})
	})
	return func() {
		db.updateObs(func(s *obsState) {
			for i, h := range s.hooks {
				if h.id == id {
					s.hooks = append(s.hooks[:i], s.hooks[i+1:]...)
					break
				}
			}
		})
	}
}

// EnableTraceLog keeps the last n traces in a ring buffer readable via
// TraceLog. n <= 0 turns the log off. While a slow-query threshold is set
// (SetSlowQuery), only traces crossing it enter the log.
func (db *DB) EnableTraceLog(n int) {
	db.updateObs(func(s *obsState) {
		if n <= 0 {
			s.ring = nil
			return
		}
		s.ring = newTraceRing(n)
	})
}

// TraceLog returns the ring-buffered recent traces, oldest first. Empty
// when no trace log is enabled.
func (db *DB) TraceLog() []*QueryTrace {
	if obs := db.obs.Load(); obs != nil && obs.ring != nil {
		return obs.ring.entries()
	}
	return nil
}

// SetSlowQuery sets the slow-query threshold: statements whose total time
// reaches d are marked Slow and recorded in the trace log (created at a
// default capacity if not already enabled). d <= 0 clears the threshold;
// the log, if any, reverts to recording every statement.
func (db *DB) SetSlowQuery(d time.Duration) {
	db.updateObs(func(s *obsState) {
		if d <= 0 {
			s.slow = 0
			return
		}
		s.slow = d
		if s.ring == nil {
			s.ring = newTraceRing(defaultTraceRing)
		}
	})
}

// traceBegin opens a trace span for one statement, or returns nil when
// tracing is off — the nil *QueryTrace is threaded through the statement
// path and every recording site checks it, so the disabled path costs
// this one atomic load.
func (db *DB) traceBegin(kind, sql string) *QueryTrace {
	if db.obs.Load() == nil {
		return nil
	}
	return &QueryTrace{SQL: sql, Kind: kind, Start: time.Now(), statsBase: db.Stats()}
}

// traceFinish completes the span and dispatches it to hooks and the trace
// log. Callers invoke it after releasing engine locks: hooks run user
// code.
func (db *DB) traceFinish(qt *QueryTrace, rows int, err error) {
	if qt == nil {
		return
	}
	qt.Total = time.Since(qt.Start)
	qt.Rows = rows
	if err != nil {
		qt.Err = err.Error()
	}
	qt.Stats = statsSub(db.Stats(), qt.statsBase)
	obs := db.obs.Load()
	if obs == nil {
		// Tracing was turned off mid-statement; drop the span.
		return
	}
	qt.Slow = obs.slow > 0 && qt.Total >= obs.slow
	for _, h := range obs.hooks {
		h.fn(qt)
	}
	if obs.ring != nil && (obs.slow <= 0 || qt.Slow) {
		obs.ring.add(qt)
	}
}

// statsSub returns a−b, field by field.
func statsSub(a, b Stats) Stats {
	return Stats{
		Statements:      a.Statements - b.Statements,
		TriggerFirings:  a.TriggerFirings - b.TriggerFirings,
		RowsScanned:     a.RowsScanned - b.RowsScanned,
		RowsInserted:    a.RowsInserted - b.RowsInserted,
		RowsDeleted:     a.RowsDeleted - b.RowsDeleted,
		RowsUpdated:     a.RowsUpdated - b.RowsUpdated,
		IndexProbes:     a.IndexProbes - b.IndexProbes,
		FullScans:       a.FullScans - b.FullScans,
		RangeProbes:     a.RangeProbes - b.RangeProbes,
		SortPasses:      a.SortPasses - b.SortPasses,
		RowsSorted:      a.RowsSorted - b.RowsSorted,
		HashJoinBuilds:  a.HashJoinBuilds - b.HashJoinBuilds,
		PlanCacheHits:   a.PlanCacheHits - b.PlanCacheHits,
		PlanCacheMisses: a.PlanCacheMisses - b.PlanCacheMisses,
		InternHits:      a.InternHits - b.InternHits,
		InternMisses:    a.InternMisses - b.InternMisses,

		ParallelWorkers:   a.ParallelWorkers - b.ParallelWorkers,
		PartitionsScanned: a.PartitionsScanned - b.PartitionsScanned,
		ExchangeBatches:   a.ExchangeBatches - b.ExchangeBatches,

		SnapshotsTaken:   a.SnapshotsTaken - b.SnapshotsTaken,
		VersionChainHops: a.VersionChainHops - b.VersionChainHops,
		WriteConflicts:   a.WriteConflicts - b.WriteConflicts,
		VersionsVacuumed: a.VersionsVacuumed - b.VersionsVacuumed,

		PageReads:    a.PageReads - b.PageReads,
		PageWrites:   a.PageWrites - b.PageWrites,
		PoolHits:     a.PoolHits - b.PoolHits,
		PoolMisses:   a.PoolMisses - b.PoolMisses,
		Evictions:    a.Evictions - b.Evictions,
		DirtyFlushes: a.DirtyFlushes - b.DirtyFlushes,
	}
}

// engineMetrics bundles the always-on latency histograms. Fields are the
// hot-path handles (resolved once at construction, so recording skips the
// registry map); reg backs Metrics()/WriteMetrics().
type engineMetrics struct {
	reg *metrics.Registry
	// commit observes full commit latency — statement entry to durable —
	// under the name "commit_ns_<mode>" ("mem" for in-memory DBs; Open
	// re-points it at the configured fsync mode's name).
	commit *metrics.Histogram
	// lockWait observes the exclusive-lock acquisition wait of write
	// statements; fsyncWait the post-lock durability wait; intentWait time
	// parked behind an explicit transaction's write intent.
	lockWait   *metrics.Histogram
	fsyncWait  *metrics.Histogram
	intentWait *metrics.Histogram
	// vacuumReclaim observes row versions reclaimed per vacuum pass (only
	// passes that reclaimed something).
	vacuumReclaim *metrics.Histogram
	// conflicts counts first-committer-wins aborts and intent collisions;
	// intentRetries counts autocommit park-and-retry rounds.
	conflicts     *metrics.Counter
	intentRetries *metrics.Counter
	// Buffer-pool counters, mirrored from statCounters for paged-storage
	// DBs (paged.go); flat zero on the memory backend.
	pageReads    *metrics.Counter
	pageWrites   *metrics.Counter
	poolHits     *metrics.Counter
	poolMisses   *metrics.Counter
	evictions    *metrics.Counter
	dirtyFlushes *metrics.Counter
}

func newEngineMetrics() *engineMetrics {
	reg := metrics.NewRegistry()
	return &engineMetrics{
		reg:           reg,
		commit:        reg.Histogram("commit_ns_mem"),
		lockWait:      reg.Histogram("stmt_lock_wait_ns"),
		fsyncWait:     reg.Histogram("fsync_wait_ns"),
		intentWait:    reg.Histogram("intent_wait_ns"),
		vacuumReclaim: reg.Histogram("vacuum_reclaimed_rows"),
		conflicts:     reg.Counter("write_conflicts"),
		intentRetries: reg.Counter("intent_retries"),
		pageReads:     reg.Counter("page_reads"),
		pageWrites:    reg.Counter("page_writes"),
		poolHits:      reg.Counter("pool_hits"),
		poolMisses:    reg.Counter("pool_misses"),
		evictions:     reg.Counter("pool_evictions"),
		dirtyFlushes:  reg.Counter("dirty_flushes"),
	}
}

// useSyncMode renames the commit-latency histogram for the configured
// fsync policy. Called once from Open, before the DB is shared.
func (m *engineMetrics) useSyncMode(mode SyncMode) {
	m.commit = m.reg.Histogram("commit_ns_" + mode.String())
}

// Metrics returns a snapshot of the engine's latency histograms and
// counters (commit latency by fsync mode, WAL append/fsync, group-commit
// batch size, lock and intent waits, vacuum reclaim).
func (db *DB) Metrics() metrics.Snapshot {
	return db.met.reg.Snapshot()
}

// WriteMetrics dumps the engine metrics to w as one flat JSON object in
// expvar's style: counters and gauges as numbers, histograms as
// {count, sum, min, max, mean, p50, p99}.
func (db *DB) WriteMetrics(w io.Writer) error {
	return db.met.reg.WriteJSON(w)
}

package relational

import "strings"

// Interesting-order planning. The executor's pipelines can produce rows in
// a known order without sorting: an ordered-index walk streams a relation
// in key order, a nested-loop level refines its outer's order with its own
// per-group enumeration order, and a scan over a CTE materialized in a
// known order inherits it. This file decides, per SELECT body, the physical
// access path of every join level — preferring paths whose order helps the
// enclosing ORDER BY — and reports whether the resulting stream already
// satisfies the requested keys, in which case the blocking sortIter is
// elided (per branch; a UNION ALL of satisfied branches merges instead).
// Both the executor and EXPLAIN consume these decisions, so the displayed
// plan is the executed plan.

// orderTerm is one element of a stream's ordering, in binding coordinates:
// the FROM slot and the column within that slot's source.
type orderTerm struct {
	slot, col int
	desc      bool
}

// wantTerm is one desired ORDER BY key mapped into binding coordinates.
// Constant keys (literal output columns, columns pinned by an uncorrelated
// equality, constant CTE columns) are satisfied by any stream.
type wantTerm struct {
	constant  bool
	slot, col int
	desc      bool
}

// accessPlan is the physical access path chosen for one join level.
type accessPlan struct {
	kind accessKind

	// hash access (accessIndexProbe, accessHashJoin)
	probe probeCand
	idx   *hashIndex

	// ordered access (accessOrderedProbe, accessRangeScan, accessOrderedScan)
	oidx     *orderedIndex
	eqPrefix []probeCand // equality bindings for oidx.cols[:len(eqPrefix)]
	lo, hi   *rangeCand  // bounds on oidx.cols[len(eqPrefix)]
	desc     bool        // walk direction

	// innerOrder is the per-group enumeration order this level contributes
	// to the stream, in binding coordinates.
	innerOrder []orderTerm
}

// mapWantTerms resolves ORDER BY keys (output column positions) to binding
// coordinates through the body's select list. ok is false when a key maps
// to something order planning cannot reason about (an arithmetic output,
// an OLD reference), in which case the sort must run.
func mapWantTerms(s *SimpleSelect, srcs []*source, keys []sortSpec) ([]wantTerm, bool) {
	if len(keys) == 0 {
		return nil, true
	}
	terms := make([]wantTerm, len(keys))
	for i, k := range keys {
		if s.Star {
			pos := k.col
			slot := -1
			for si, src := range srcs {
				n := len(src.columns())
				if pos < n {
					slot = si
					break
				}
				pos -= n
			}
			if slot < 0 {
				return nil, false
			}
			terms[i] = wantTerm{slot: slot, col: pos, desc: k.desc}
			continue
		}
		if k.col >= len(s.Exprs) {
			return nil, false
		}
		switch e := s.Exprs[k.col].Expr.(type) {
		case *Literal:
			terms[i] = wantTerm{constant: true}
		case *Param:
			terms[i] = wantTerm{constant: true}
		case *ColumnRef:
			slot := resolveSlot(e, srcs)
			if slot < 0 {
				return nil, false
			}
			col := srcs[slot].columnIndex(e.Name)
			if col < 0 {
				return nil, false
			}
			terms[i] = wantTerm{slot: slot, col: col, desc: k.desc}
		default:
			return nil, false
		}
	}
	return terms, true
}

// constBindCols collects the binding columns pinned to a constant: columns
// with an uncorrelated equality candidate, and constant columns of CTE
// sources (propagated from their materialization). Order satisfaction may
// skip over them.
func constBindCols(plan *simplePlan, srcs []*source) map[[2]int]bool {
	consts := make(map[[2]int]bool)
	for _, lp := range plan.levels {
		src := srcs[lp.slot]
		for _, c := range lp.cands {
			if c.correlated {
				continue
			}
			if ci := src.columnIndex(c.col); ci >= 0 {
				consts[[2]int{lp.slot, ci}] = true
			}
		}
		if src.rows != nil {
			for _, ci := range src.rows.consts {
				consts[[2]int{lp.slot, ci}] = true
			}
		}
	}
	return consts
}

// planPhysical chooses every level's access path, preferring order-carrying
// paths where they help the wanted keys. It reports whether the stream
// satisfies them (satisfied), and whether the stream's order tuple is
// additionally unique per row (pinned) — every level pinned by a unique
// streamed column or single-row — which downstream joins over a
// materialized CTE need before refining its order further. It is pure — no
// execution state beyond the access cache, which planMu guards because the
// plan rides on a shared AST — so EXPLAIN shares it.
func (db *DB) planPhysical(plan *simplePlan, srcs []*source, want []wantTerm) ([]accessPlan, bool, bool) {
	if len(want) == 0 {
		// No order interest: per-level choice alone, no satisfaction walk.
		// The choice depends only on the live index set, so it caches on
		// the plan (table sources only; CTE results differ per execution).
		epoch := int64(0)
		cacheable := true
		for _, src := range srcs {
			if src.table == nil {
				cacheable = false
				break
			}
			epoch += src.table.indexEpoch
		}
		db.planMu.Lock()
		defer db.planMu.Unlock()
		if cacheable && plan.accessValid && plan.accessEpoch == epoch {
			return plan.access, true, false
		}
		access := make([]accessPlan, len(plan.levels))
		for pos, lp := range plan.levels {
			access[pos] = chooseAccessPlan(lp, srcs[lp.slot], pos, nil, true)
		}
		if cacheable {
			plan.access = access
			plan.accessEpoch = epoch
			plan.accessValid = true
		}
		return access, true, false
	}
	consts := constBindCols(plan, srcs)
	// A level pinned to at most one row — an uncorrelated equality on a
	// unique column, or a CTE that materialized ≤ 1 row — makes every
	// column of its slot a stream constant and cannot disturb order.
	singleSlot := make(map[int]bool)
	for _, lp := range plan.levels {
		if singleRowLevel(lp, srcs[lp.slot]) {
			singleSlot[lp.slot] = true
		}
	}
	isConst := func(w wantTerm) bool {
		return w.constant || singleSlot[w.slot] || consts[[2]int{w.slot, w.col}]
	}
	wi := 0
	alive := true
	pinned := true
	skip := func() {
		for wi < len(want) && isConst(want[wi]) {
			wi++
		}
	}
	access := make([]accessPlan, len(plan.levels))
	for pos, lp := range plan.levels {
		skip()
		// upcoming collects the same-slot prefix of the unconsumed keys;
		// wantEnds records whether that prefix runs to the end of want —
		// order terms beyond it are then harmless — or stops at another
		// slot's key, which any trailing term would fail to match.
		var upcoming []wantTerm
		wantEnds := true
		if alive && !singleSlot[lp.slot] {
			for j := wi; j < len(want); j++ {
				if isConst(want[j]) {
					continue
				}
				if want[j].slot != lp.slot {
					wantEnds = false
					break
				}
				upcoming = append(upcoming, want[j])
			}
		}
		ap := chooseAccessPlan(lp, srcs[lp.slot], pos, upcoming, wantEnds)
		access[pos] = ap
		if singleSlot[lp.slot] {
			continue
		}
		if !alive {
			pinned = false
			continue
		}
		// Consume the level's enumeration order against the wanted keys. A
		// level whose rows arrive in an order the keys do not continue with
		// (or in no order at all, while keys remain) breaks satisfaction:
		// every later level re-enumerates per row, restarting its order.
		matched := true
		consumed := 0
		for _, ot := range ap.innerOrder {
			skip()
			if wi >= len(want) {
				break
			}
			w := want[wi]
			if w.slot == ot.slot && w.col == ot.col && w.desc == ot.desc {
				wi++
				consumed++
				continue
			}
			matched = false
			break
		}
		skip()
		if !matched {
			alive = false
			pinned = false
			continue
		}
		if !levelPinsUnique(srcs[lp.slot], ap, consumed) {
			pinned = false
			// Later keys refine rows *within* this level's groups. That is
			// only the lexicographic continuation if the consumed keys pin
			// the level to one row per key combination — equal-key rows
			// would each restart the deeper order. Without a unique pin,
			// satisfaction ends at the keys consumed so far.
			if wi < len(want) {
				alive = false
			}
		}
	}
	skip()
	return access, alive && wi >= len(want), pinned
}

// levelPinsUnique reports whether the order terms the satisfaction walk
// actually consumed (innerOrder[:consumed]) identify the level's rows
// uniquely: a consumed key column that is unique in the source table, or a
// CTE whose unique recorded order was consumed in full. Terms beyond
// consumed do not pin — they never made it into the stream's recorded
// order, so equal consumed-key rows may still interleave (a trailing
// unique id orders rows *within* a duplicate-key group; it does not make
// the consumed prefix unique). Equality-bound columns cannot pin either —
// they are equal within a group by construction.
func levelPinsUnique(src *source, ap accessPlan, consumed int) bool {
	if src.rows != nil {
		return src.rows.orderUnique && consumed > 0 && consumed == len(ap.innerOrder)
	}
	t := src.table
	if t == nil || len(t.uniqueCols) == 0 {
		return false
	}
	for _, ot := range ap.innerOrder[:consumed] {
		if t.uniqueCols[ot.col] {
			return true
		}
	}
	return false
}

// singleRowLevel reports whether a join level is guaranteed to bind at most
// one row: an uncorrelated equality candidate on a unique column, or a CTE
// whose materialization recorded a single row.
func singleRowLevel(lp levelPlan, src *source) bool {
	if src.rows != nil {
		return src.rows.single
	}
	t := src.table
	if t == nil || len(t.uniqueCols) == 0 {
		return false
	}
	for _, c := range lp.cands {
		if c.correlated {
			continue
		}
		if ci := t.Schema.ColumnIndex(c.col); ci >= 0 && t.uniqueCols[ci] {
			return true
		}
	}
	return false
}

// partitionableKind reports whether an access kind may drive a partitioned
// pipeline. These are exactly the kinds whose enumeration at the driving
// level is computed once per query — a heap/CTE scan's rowid walk, or a
// single ordered-index bucket (range scan, full ordered walk, ordered
// probe whose driving-level bounds are necessarily uncorrelated).
// Contiguous slices of that enumeration concatenated in partition order
// reproduce the serial stream row for row, so every downstream contract —
// sort elision, DISTINCT, merge inputs, ORDER BY determinism — holds
// without further gating. Kinds that rebuild their bucket per outer tuple
// (hash/index/sorted probes) and hash joins stay serial at the driving
// level; they still parallelize as inner levels of a partitioned pipeline.
func partitionableKind(k accessKind) bool {
	switch k {
	case accessScan, accessOrderedScan, accessRangeScan, accessOrderedProbe:
		return true
	}
	return false
}

// chooseAccessPlan picks one level's physical access path against the live
// database. Candidate order: an ordered index serving both an equality
// prefix and a range bound (the tightest window), an ordered index whose
// remaining key columns continue the wanted order (sort elision), a hash
// probe, an ordered index serving plain equality, a transient hash join, a
// bounded range walk, a full ordered walk that buys the wanted order, and
// finally the heap scan. wantEnds reports that upcoming reaches the end of
// the wanted keys (see planPhysical).
func chooseAccessPlan(lp levelPlan, src *source, pos int, upcoming []wantTerm, wantEnds bool) accessPlan {
	t := src.table
	if t == nil {
		// CTE source: a scan replays the materialized rows, inheriting
		// whatever order the producing pipeline recorded (constant columns
		// are dropped — they carry no ordering information).
		ap := accessPlan{kind: accessScan}
		if src.rows != nil {
			constSet := make(map[int]bool, len(src.rows.consts))
			for _, ci := range src.rows.consts {
				constSet[ci] = true
			}
			for _, o := range src.rows.order {
				if constSet[o.col] {
					continue
				}
				ap.innerOrder = append(ap.innerOrder, orderTerm{slot: lp.slot, col: o.col, desc: o.desc})
			}
		}
		// At an inner join level the scan replays the CTE once per outer
		// row; a correlated equality is served by the transient hash join
		// instead (one build, bucket probes — the PR 1 path). The scan only
		// earns its keep when the satisfaction walk will actually consume
		// its recorded order: every upcoming key matched term-for-term,
		// with trailing order terms tolerable only when the wanted keys
		// end inside this slot (otherwise they mismatch the next slot's
		// key and elision dies anyway, leaving the worst of both paths).
		ordersHelp := len(upcoming) > 0 && len(ap.innerOrder) >= len(upcoming)
		for i, ot := range ap.innerOrder {
			if !ordersHelp {
				break
			}
			if i >= len(upcoming) {
				ordersHelp = wantEnds
				break
			}
			if upcoming[i].col != ot.col || upcoming[i].desc != ot.desc {
				ordersHelp = false
			}
		}
		if pos > 0 && !ordersHelp {
			for _, c := range lp.cands {
				if c.correlated {
					return accessPlan{kind: accessHashJoin, probe: c}
				}
			}
		}
		return ap
	}

	// Fast path: with no range conjuncts and no wanted order, the decision
	// reduces to the PR 1 ladder (hash probe, equality via an ordered
	// index, hash join, scan) — skip option enumeration entirely. Trigger
	// bodies and orderless queries hit this per execution.
	if len(lp.ranges) == 0 && len(upcoming) == 0 {
		for _, c := range lp.cands {
			if idx := t.lookupIndex(c.col); idx != nil {
				return accessPlan{kind: accessIndexProbe, probe: c, idx: idx}
			}
		}
		if len(t.orderedList) > 0 {
			for i := range lp.cands {
				if oidx := t.orderedLeadIndex(lp.cands[i].col); oidx != nil {
					// Degenerate single-column prefix: selective enough for
					// an orderless probe, and the gated conjuncts re-check.
					return accessPlan{kind: accessOrderedProbe, oidx: oidx, eqPrefix: lp.cands[i : i+1 : i+1]}
				}
			}
		}
		if pos > 0 {
			for _, c := range lp.cands {
				if c.correlated {
					return accessPlan{kind: accessHashJoin, probe: c}
				}
			}
		}
		return accessPlan{kind: accessScan}
	}

	type option struct {
		oidx   *orderedIndex
		eq     []probeCand
		lo, hi *rangeCand
		gain   int
		desc   bool
	}
	var opts []option
	for _, oidx := range t.orderedIndexList() {
		o := option{oidx: oidx}
		for _, ci := range oidx.cols {
			var found *probeCand
			for i := range lp.cands {
				if t.Schema.ColumnIndex(lp.cands[i].col) == ci {
					found = &lp.cands[i]
					break
				}
			}
			if found == nil {
				break
			}
			o.eq = append(o.eq, *found)
		}
		if len(o.eq) < len(oidx.cols) {
			nextCi := oidx.cols[len(o.eq)]
			for i := range lp.ranges {
				rc := &lp.ranges[i]
				if t.Schema.ColumnIndex(rc.col) != nextCi {
					continue
				}
				switch rc.op {
				case ">", ">=":
					if o.lo == nil {
						o.lo = rc
					}
				case "<", "<=":
					if o.hi == nil {
						o.hi = rc
					}
				}
			}
		}
		if len(upcoming) > 0 {
			d := upcoming[0].desc
			for i := len(o.eq); i < len(oidx.cols) && o.gain < len(upcoming); i++ {
				w := upcoming[o.gain]
				if w.slot == lp.slot && w.col == oidx.cols[i] && w.desc == d {
					o.gain++
					continue
				}
				break
			}
			if o.gain > 0 {
				o.desc = d
			}
		}
		opts = append(opts, o)
	}
	pick := func(filter func(option) bool) *option {
		var best *option
		for i := range opts {
			o := &opts[i]
			if !filter(*o) {
				continue
			}
			if best == nil ||
				len(o.eq) > len(best.eq) ||
				(len(o.eq) == len(best.eq) && o.gain > best.gain) {
				best = o
			}
		}
		return best
	}
	mk := func(o *option, kind accessKind) accessPlan {
		ap := accessPlan{kind: kind, oidx: o.oidx, eqPrefix: o.eq, desc: o.desc}
		if kind == accessRangeScan {
			ap.lo, ap.hi = o.lo, o.hi
		}
		start := len(o.eq)
		for i := start; i < len(o.oidx.cols); i++ {
			ap.innerOrder = append(ap.innerOrder, orderTerm{slot: lp.slot, col: o.oidx.cols[i], desc: o.desc})
		}
		return ap
	}

	// 1. Equality prefix plus a range bound: the tightest window.
	if o := pick(func(o option) bool { return len(o.eq) > 0 && (o.lo != nil || o.hi != nil) }); o != nil {
		return mk(o, accessRangeScan)
	}
	// 2. Equality prefix whose remaining key columns continue the wanted
	// order: probe ordered, enabling sort elision.
	if o := pick(func(o option) bool { return len(o.eq) > 0 && o.gain > 0 }); o != nil {
		return mk(o, accessOrderedProbe)
	}
	// 3. Hash probe sorting each bucket by the wanted columns: order
	// without a dedicated B+tree. Groups are child lists — small — so the
	// per-group sort is cheaper than maintaining (parentId, id) trees on
	// every write; this is the Sorted Outer Union's child-branch path.
	if len(upcoming) > 0 {
		for _, c := range lp.cands {
			if idx := t.lookupIndex(c.col); idx != nil {
				ap := accessPlan{kind: accessSortedProbe, probe: c, idx: idx}
				for _, w := range upcoming {
					ap.innerOrder = append(ap.innerOrder, orderTerm{slot: w.slot, col: w.col, desc: w.desc})
				}
				return ap
			}
		}
	}
	// 4. Plain hash probe (the PR 1 fast path).
	for _, c := range lp.cands {
		if idx := t.lookupIndex(c.col); idx != nil {
			return accessPlan{kind: accessIndexProbe, probe: c, idx: idx}
		}
	}
	// 5. Equality served by an ordered index when no hash index exists.
	if o := pick(func(o option) bool { return len(o.eq) > 0 }); o != nil {
		return mk(o, accessOrderedProbe)
	}
	// 6. Correlated equality with no index: transient hash join.
	if pos > 0 {
		for _, c := range lp.cands {
			if c.correlated {
				return accessPlan{kind: accessHashJoin, probe: c}
			}
		}
	}
	// 7. Bounded range walk with no equality prefix.
	if o := pick(func(o option) bool { return o.lo != nil || o.hi != nil }); o != nil {
		return mk(o, accessRangeScan)
	}
	// 8. Full ordered walk, only when it buys the wanted order.
	if o := pick(func(o option) bool { return o.gain > 0 }); o != nil {
		return mk(o, accessOrderedScan)
	}
	return accessPlan{kind: accessScan}
}

// ---- desired-order propagation into CTEs ----

// cteWants derives, for each CTE of a statement, the order its consumers
// would like it materialized in, as positional ORDER BY keys over the CTE's
// columns. The Sorted Outer Union is the motivating shape: the top-level
// ORDER BY over the union branches pulls document order down through the
// WITH chain, so every Qi materializes pre-sorted and the final sort
// disappears. The wants are advisory — materialization never adds a sort
// for them; they only steer access-path choice.
func (db *DB) cteWants(s *SelectStmt, env *execEnv, topKeys []OrderKey) map[string][]OrderKey {
	if len(topKeys) == 0 || len(s.With) == 0 {
		return nil
	}
	// The translation depends only on the statement and the schema; cache
	// it on the AST for the statement's own ORDER BY (the shape-cache hot
	// path), guarded by planMu like the other AST-resident caches.
	// Propagated wants from an enclosing statement recompute.
	own := len(s.OrderBy) > 0
	if own {
		db.planMu.Lock()
		if s.wantsValid && s.wantsVer == db.schemaVer {
			w := s.wants
			db.planMu.Unlock()
			return w
		}
		db.planMu.Unlock()
	}
	wants := db.cteWantsUncached(s, env, topKeys)
	if own {
		db.planMu.Lock()
		s.wants = wants
		s.wantsVer = db.schemaVer
		s.wantsValid = true
		db.planMu.Unlock()
	}
	return wants
}

func (db *DB) cteWantsUncached(s *SelectStmt, env *execEnv, topKeys []OrderKey) map[string][]OrderKey {
	ctes := make(map[string]*CTE, len(s.With))
	for i := range s.With {
		ctes[strings.ToLower(s.With[i].Name)] = &s.With[i]
	}
	// Stub environment: column names only, enough to resolve sources.
	stubEnv := newEnvFrom(env)
	for _, cte := range s.With {
		stubEnv.ctes[strings.ToLower(cte.Name)] = &Rows{Cols: cteColumns(cte)}
	}
	wants := make(map[string][]OrderKey)
	type task struct {
		body *SimpleSelect
		keys []OrderKey
	}
	queue := make([]task, 0, len(s.Body))
	for _, b := range s.Body {
		queue = append(queue, task{b, topKeys})
	}
	for len(queue) > 0 {
		tk := queue[0]
		queue = queue[1:]
		b := tk.body
		srcs, err := db.resolveSources(b, stubEnv)
		if err != nil {
			continue
		}
		keys, err := resolveOrderKeys(tk.keys, outputColumns(b, srcs))
		if err != nil {
			continue
		}
		for fi, f := range b.From {
			cte, ok := ctes[strings.ToLower(f.Table)]
			if !ok || srcs[fi].rows == nil {
				continue
			}
			tw := translateWant(b, srcs, fi, keys)
			name := strings.ToLower(cte.Name)
			if len(tw) == 0 || len(tw) <= len(wants[name]) {
				continue
			}
			wants[name] = tw
			for _, bb := range cte.Select.Body {
				queue = append(queue, task{bb, tw})
			}
		}
	}
	return wants
}

// translateWant maps resolved order keys through body b's select list onto
// the FROM slot fi, producing positional keys over that source's columns.
// Constant keys are dropped (any order satisfies them); translation stops
// at the first key that belongs to another slot — later keys refine groups
// the source cannot see.
func translateWant(b *SimpleSelect, srcs []*source, fi int, keys []sortSpec) []OrderKey {
	// keyCol classifies output position pos: the source-column index on
	// slot fi, a body-level constant, or neither.
	keyCol := func(pos int) (col int, constant, ok bool) {
		if b.Star {
			for si, src := range srcs {
				n := len(src.columns())
				if pos < n {
					if si != fi {
						return 0, false, false
					}
					return pos, false, true
				}
				pos -= n
			}
			return 0, false, false
		}
		if pos >= len(b.Exprs) {
			return 0, false, false
		}
		switch e := b.Exprs[pos].Expr.(type) {
		case *Literal, *Param:
			return 0, true, true
		case *ColumnRef:
			if resolveSlot(e, srcs) != fi {
				return 0, false, false
			}
			ci := srcs[fi].columnIndex(e.Name)
			if ci < 0 {
				return 0, false, false
			}
			return ci, false, true
		default:
			return 0, false, false
		}
	}
	var out []OrderKey
	for _, k := range keys {
		col, constant, ok := keyCol(k.col)
		if !ok {
			break
		}
		if constant {
			continue
		}
		out = append(out, OrderKey{Expr: &Literal{Value: Int(int64(col + 1))}, Desc: k.desc})
	}
	return out
}

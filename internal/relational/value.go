// Package relational implements the embedded relational database substrate
// the reproduction uses in place of IBM DB2 UDB 7.1 (the paper's backend).
//
// It provides heap tables with hash indexes, per-tuple and per-statement
// triggers, and a SQL subset sufficient for every statement the XML update
// middleware generates: CREATE TABLE/INDEX/TRIGGER, INSERT (VALUES and
// SELECT forms), DELETE, UPDATE, and SELECT with multi-table joins, WITH
// common table expressions, UNION ALL, ORDER BY, IN/NOT IN subqueries, and
// MIN/MAX/COUNT aggregates.
//
// The engine models the cost structure the paper measures: statement
// dispatch overhead, index lookups versus full scans, and trigger firing
// granularity. Counters expose statements executed and rows scanned so
// benchmarks can report the paper's explanatory variables.
package relational

import (
	"fmt"
	"strconv"
)

// Value is a SQL value: int64, string, or nil (SQL NULL).
type Value any

// Type is a column type.
type Type int

// Column types. VARCHAR length limits are accepted syntactically but not
// enforced, matching the paper's usage.
const (
	Integer Type = iota
	Varchar
)

func (t Type) String() string {
	switch t {
	case Integer:
		return "INTEGER"
	case Varchar:
		return "VARCHAR"
	default:
		return fmt.Sprintf("Type(%d)", int(t))
	}
}

// coerce converts v to the column type, returning an error for impossible
// conversions. NULL passes through any type.
func coerce(v Value, t Type) (Value, error) {
	if v == nil {
		return nil, nil
	}
	switch t {
	case Integer:
		switch x := v.(type) {
		case int64:
			return x, nil
		case int:
			return int64(x), nil
		case string:
			n, err := strconv.ParseInt(x, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("cannot store %q in INTEGER column", x)
			}
			return n, nil
		}
	case Varchar:
		switch x := v.(type) {
		case string:
			return x, nil
		case int64:
			return strconv.FormatInt(x, 10), nil
		case int:
			return strconv.Itoa(x), nil
		}
	}
	return nil, fmt.Errorf("cannot store %T in %s column", v, t)
}

// compareValues orders two values: NULL sorts before everything (so Sorted
// Outer Union streams place parents, whose child-id columns are NULL, ahead
// of their children); integers compare numerically; strings lexically.
// Mixed int/string compares the string forms.
func compareValues(a, b Value) int {
	switch {
	case a == nil && b == nil:
		return 0
	case a == nil:
		return -1
	case b == nil:
		return 1
	}
	ai, aok := a.(int64)
	bi, bok := b.(int64)
	if aok && bok {
		switch {
		case ai < bi:
			return -1
		case ai > bi:
			return 1
		default:
			return 0
		}
	}
	as := valueString(a)
	bs := valueString(b)
	switch {
	case as < bs:
		return -1
	case as > bs:
		return 1
	default:
		return 0
	}
}

// valuesEqual implements SQL equality: NULL equals nothing (including NULL).
func valuesEqual(a, b Value) (bool, bool) {
	if a == nil || b == nil {
		return false, false // unknown
	}
	return compareValues(a, b) == 0, true
}

func valueString(v Value) string {
	switch x := v.(type) {
	case nil:
		return "NULL"
	case string:
		return x
	case int64:
		return strconv.FormatInt(x, 10)
	default:
		return fmt.Sprint(x)
	}
}

// FormatValue renders a value as a SQL literal.
func FormatValue(v Value) string {
	switch x := v.(type) {
	case nil:
		return "NULL"
	case string:
		return "'" + escapeSQLString(x) + "'"
	case int64:
		return strconv.FormatInt(x, 10)
	case int:
		return strconv.Itoa(x)
	default:
		return fmt.Sprint(x)
	}
}

func escapeSQLString(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		if s[i] == '\'' {
			out = append(out, '\'', '\'')
		} else {
			out = append(out, s[i])
		}
	}
	return string(out)
}

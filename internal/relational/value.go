// Package relational implements the embedded relational database substrate
// the reproduction uses in place of IBM DB2 UDB 7.1 (the paper's backend).
//
// It provides heap tables with hash indexes, per-tuple and per-statement
// triggers, and a SQL subset sufficient for every statement the XML update
// middleware generates: CREATE TABLE/INDEX/TRIGGER, INSERT (VALUES and
// SELECT forms), DELETE, UPDATE, and SELECT with multi-table joins, WITH
// common table expressions, UNION ALL, ORDER BY, IN/NOT IN subqueries, and
// MIN/MAX/COUNT aggregates.
//
// The engine models the cost structure the paper measures: statement
// dispatch overhead, index lookups versus full scans, and trigger firing
// granularity. Counters expose statements executed and rows scanned so
// benchmarks can report the paper's explanatory variables.
package relational

import (
	"encoding/binary"
	"fmt"
	"strconv"
)

// Kind tags a Value's type.
type Kind uint8

// Value kinds. The zero kind is NULL, so the zero Value is SQL NULL.
const (
	KindNull Kind = iota
	KindInt
	KindText
)

// Value is a SQL value: an unboxed tagged union of NULL, int64, and string.
// The struct is comparable (it keys the hash indexes directly) and carries
// no pointers beyond the string header, so rows of Values hold integers
// inline instead of one heap-boxed interface per column — the scan, probe,
// and join loops touch values without allocating.
//
// Construct Values with Int, Text, or the zero value / Null for NULL; the
// fields are unexported so every Value in the system is canonical (unused
// fields zero), which is what makes == and map-key equality coincide with
// same-kind SQL equality.
//
// sym is the optional intern-table symbol id of a TEXT value (intern.go):
// nonzero only on values interned by their owning DB, where equal syms
// guarantee equal strings — the equality fast paths below exploit it, and
// ordering always stays on the string bytes (sym order is insertion order,
// meaningless for comparison). sym never leaves the engine: results
// returned to callers are stripped (exec.go), so the public == contract is
// unchanged, and sym is never serialized (the intern table is runtime-only).
type Value struct {
	kind Kind
	sym  uint32
	i    int64
	s    string
}

// Null is the SQL NULL value (the Value zero value).
var Null Value

// Int returns an INTEGER value.
func Int(v int64) Value { return Value{kind: KindInt, i: v} }

// Text returns a VARCHAR value.
func Text(s string) Value { return Value{kind: KindText, s: s} }

// Bool returns integer 1 or 0, the engine's boolean encoding.
func Bool(b bool) Value {
	if b {
		return Value{kind: KindInt, i: 1}
	}
	return Value{kind: KindInt}
}

// Bind converts a caller-supplied Go value to the canonical Value domain.
// Only nil, Value, int64, int, and string are accepted; anything else is
// rejected with an explicit error — an unknown type must fail at the API
// boundary rather than be formatted lossily into, say, an unreplayable
// redo-log literal.
func Bind(v any) (Value, error) {
	switch x := v.(type) {
	case nil:
		return Null, nil
	case Value:
		return x, nil
	case int64:
		return Int(x), nil
	case int:
		return Int(int64(x)), nil
	case string:
		return Text(x), nil
	default:
		return Null, fmt.Errorf("relational: unsupported value type %T (want int64, int, string, or nil)", v)
	}
}

// Kind returns the value's type tag.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is SQL NULL.
func (v Value) IsNull() bool { return v.kind == KindNull }

// Int returns the integer payload; ok is false for non-INTEGER values.
func (v Value) Int() (int64, bool) { return v.i, v.kind == KindInt }

// Text returns the string payload; ok is false for non-VARCHAR values.
func (v Value) Text() (string, bool) { return v.s, v.kind == KindText }

// MustInt returns the integer payload, panicking on any other kind — the
// unboxed analogue of a bare .(int64) assertion for values whose type the
// schema guarantees.
func (v Value) MustInt() int64 {
	if v.kind != KindInt {
		panic(fmt.Sprintf("relational: MustInt on %s value", v.kind))
	}
	return v.i
}

// MustText returns the string payload, panicking on any other kind.
func (v Value) MustText() string {
	if v.kind != KindText {
		panic(fmt.Sprintf("relational: MustText on %s value", v.kind))
	}
	return v.s
}

func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindInt:
		return "INTEGER"
	case KindText:
		return "VARCHAR"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Type is a column type.
type Type int

// Column types. VARCHAR length limits are accepted syntactically but not
// enforced, matching the paper's usage.
const (
	Integer Type = iota
	Varchar
)

func (t Type) String() string {
	switch t {
	case Integer:
		return "INTEGER"
	case Varchar:
		return "VARCHAR"
	default:
		return fmt.Sprintf("Type(%d)", int(t))
	}
}

// coerce converts v to the column type, returning an error for impossible
// conversions. NULL passes through any type.
func coerce(v Value, t Type) (Value, error) {
	if v.kind == KindNull {
		return Null, nil
	}
	switch t {
	case Integer:
		switch v.kind {
		case KindInt:
			return v, nil
		case KindText:
			n, err := strconv.ParseInt(v.s, 10, 64)
			if err != nil {
				return Null, fmt.Errorf("cannot store %q in INTEGER column", v.s)
			}
			return Int(n), nil
		}
	case Varchar:
		switch v.kind {
		case KindText:
			return v, nil
		case KindInt:
			return Text(strconv.FormatInt(v.i, 10)), nil
		}
	}
	return Null, fmt.Errorf("cannot store %s value in %s column", v.kind, t)
}

// compareValues orders two values: NULL sorts before everything (so Sorted
// Outer Union streams place parents, whose child-id columns are NULL, ahead
// of their children); integers compare numerically; strings lexically.
// Mixed int/string compares the string forms — rendered into a stack buffer,
// so the hot comparison paths never allocate.
func compareValues(a, b Value) int {
	switch {
	case a.kind == KindNull && b.kind == KindNull:
		return 0
	case a.kind == KindNull:
		return -1
	case b.kind == KindNull:
		return 1
	}
	if a.kind == KindInt && b.kind == KindInt {
		switch {
		case a.i < b.i:
			return -1
		case a.i > b.i:
			return 1
		default:
			return 0
		}
	}
	if a.kind == KindText && b.kind == KindText {
		// Interned text with matching symbols is equal without touching the
		// string bytes. Differing symbols say nothing about order (ids are
		// insertion-ordered), so everything else falls to the byte compare.
		if a.sym != 0 && a.sym == b.sym {
			return 0
		}
		switch {
		case a.s < b.s:
			return -1
		case a.s > b.s:
			return 1
		default:
			return 0
		}
	}
	// Mixed: exactly one side is an integer.
	var buf [20]byte
	if a.kind == KindInt {
		return compareBytesString(strconv.AppendInt(buf[:0], a.i, 10), b.s)
	}
	return -compareBytesString(strconv.AppendInt(buf[:0], b.i, 10), a.s)
}

// compareBytesString is bytes.Compare(b, []byte(s)) without the conversion.
func compareBytesString(b []byte, s string) int {
	n := len(b)
	if len(s) < n {
		n = len(s)
	}
	for i := 0; i < n; i++ {
		if b[i] != s[i] {
			if b[i] < s[i] {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(b) < len(s):
		return -1
	case len(b) > len(s):
		return 1
	default:
		return 0
	}
}

// valuesEqual implements SQL equality: NULL equals nothing (including NULL).
func valuesEqual(a, b Value) (bool, bool) {
	if a.kind == KindNull || b.kind == KindNull {
		return false, false // unknown
	}
	// Two interned TEXT values decide equality on their 4-byte symbols:
	// both come from the same DB's intern table (the sym invariant), where
	// id equality is string equality. Mixed interned/uninterned pairs fall
	// back to the byte compare, keeping answers identical either way.
	if a.kind == KindText && b.kind == KindText && a.sym != 0 && b.sym != 0 {
		return a.sym == b.sym, true
	}
	return compareValues(a, b) == 0, true
}

// joinKey normalizes a value for transient hash-join keying so that map
// equality coincides with compareValues equality: a VARCHAR holding the
// canonical decimal rendering of an integer maps to that integer (1 joins
// '1', matching the mixed compare of their string forms), while
// non-canonical text ('01', '+1', 'abc') stays text. The normalization is
// a pure field rewrite — probing allocates nothing.
func (v Value) joinKey() Value {
	if v.kind == KindText {
		if n, ok := canonInt(v.s); ok {
			return Value{kind: KindInt, i: n}
		}
		if v.sym != 0 {
			// Drop the symbol so interned and uninterned spellings of the
			// same string key identically when no intern table is in play
			// (standalone tables; ablated DBs).
			return Value{kind: KindText, s: v.s}
		}
	}
	return v
}

// kindSym is the internal map-key kind of an interned TEXT value. It exists
// only inside hash-bucket keys and DISTINCT byte encodings — never in rows,
// results, or serialized forms — so it needs no ordering, formatting, or
// coercion rules.
const kindSym Kind = 0xFF

// symKey extends joinKey with symbol folding: TEXT whose string is interned
// in it keys on the 4-byte id (an int-payload Value, so the map hashes 8
// bytes instead of the string). Uninterned text is looked up lazily, which
// is what keeps the normalization a pure function of the string across
// mixed sources — a temp-table copy or an unlifted literal keys exactly
// like the interned base-table row it equals. Canonical-integer text still
// folds to the integer first (1 must keep joining '1'), and a nil table
// degrades to joinKey exactly.
func (v Value) symKey(it *internTable) Value {
	if v.kind != KindText {
		return v
	}
	if n, ok := canonInt(v.s); ok {
		return Value{kind: KindInt, i: n}
	}
	if it != nil {
		id := v.sym
		if id == 0 {
			id = it.lookup(v.s)
		}
		if id != 0 {
			return Value{kind: kindSym, i: int64(id)}
		}
	}
	return Value{kind: KindText, s: v.s}
}

// canonInt parses s as a canonically formatted int64 — exactly the output
// of strconv.FormatInt: optional '-', no leading zeros (except "0"), no
// '+', no "-0", within range. ok is false for anything else.
func canonInt(s string) (int64, bool) {
	if s == "" {
		return 0, false
	}
	neg := false
	i := 0
	if s[0] == '-' {
		neg = true
		i = 1
		if len(s) == 1 {
			return 0, false
		}
	}
	if s[i] == '0' && len(s)-i > 1 {
		return 0, false // leading zero
	}
	var n uint64
	for ; i < len(s); i++ {
		c := s[i]
		if c < '0' || c > '9' {
			return 0, false
		}
		d := uint64(c - '0')
		if n > (1<<64-1-d)/10 {
			return 0, false
		}
		n = n*10 + d
	}
	if neg {
		if n == 0 || n > 1<<63 {
			return 0, false // "-0" is not canonical; below -2^63 overflows
		}
		return -int64(n), true // n == 1<<63 wraps to MinInt64, which negates to itself
	}
	if n > 1<<63-1 {
		return 0, false
	}
	return int64(n), true
}

// appendValueKey appends a self-delimiting byte encoding of v to b. The
// encoding distinguishes kinds and is injective, so byte equality is Value
// equality — DISTINCT and row-key deduplication build keys by appending
// into a reused buffer instead of formatting strings per row.
func appendValueKey(b []byte, v Value) []byte {
	switch v.kind {
	case KindNull:
		return append(b, byte(KindNull))
	case KindInt:
		b = append(b, byte(KindInt))
		var tmp [binary.MaxVarintLen64]byte
		n := binary.PutVarint(tmp[:], v.i)
		return append(b, tmp[:n]...)
	default:
		b = append(b, byte(KindText))
		b = binary.AppendUvarint(b, uint64(len(v.s)))
		return append(b, v.s...)
	}
}

// appendRowKey appends the concatenated value keys of a row. Length
// prefixes make each element self-delimiting, so rows collide only when
// they are column-for-column equal.
func appendRowKey(b []byte, row []Value) []byte {
	for _, v := range row {
		b = appendValueKey(b, v)
	}
	return b
}

// appendValueKeySym is appendValueKey with symbol folding: interned TEXT
// (inline sym, or found by the lazy lookup) encodes as the kindSym tag plus
// the uvarint id — at most 6 bytes regardless of string length. The same
// determinism argument as symKey keeps the encoding injective: a string is
// either interned (every occurrence encodes as its id) or not (every
// occurrence encodes as bytes), never both within one table's streams.
func appendValueKeySym(b []byte, v Value, it *internTable) []byte {
	if v.kind == KindText && it != nil {
		id := v.sym
		if id == 0 {
			id = it.lookup(v.s)
		}
		if id != 0 {
			b = append(b, byte(kindSym))
			return binary.AppendUvarint(b, uint64(id))
		}
	}
	return appendValueKey(b, v)
}

// appendRowKeySym is appendRowKey over appendValueKeySym.
func appendRowKeySym(b []byte, row []Value, it *internTable) []byte {
	for _, v := range row {
		b = appendValueKeySym(b, v, it)
	}
	return b
}

// String renders the bare form fmt verbs print — the same text the old
// interface representation produced ("5", "abc", "NULL") — so %v/%s
// formatting of a Value never leaks struct internals.
func (v Value) String() string { return valueString(v) }

// valueString renders a value for error messages and display: the bare
// string form (no quotes), "NULL" for NULL.
func valueString(v Value) string {
	switch v.kind {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	default:
		return v.s
	}
}

// FormatValue renders a value as a replayable SQL literal. The Value domain
// is closed — every kind a constructor can produce has a quoted, lossless
// rendering — so unlike the old any-typed representation there is no
// fmt.Sprint fallback that could smuggle an unparsable literal into the
// redo log. A corrupted kind (impossible through the public API) panics
// rather than emitting garbage.
func FormatValue(v Value) string {
	switch v.kind {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindText:
		return "'" + escapeSQLString(v.s) + "'"
	default:
		panic(fmt.Sprintf("relational: FormatValue on corrupt kind %d", uint8(v.kind)))
	}
}

func escapeSQLString(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		if s[i] == '\'' {
			out = append(out, '\'', '\'')
		} else {
			out = append(out, s[i])
		}
	}
	return string(out)
}

package relational

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// ---- DML execution ----

func (db *DB) execInsert(s *InsertStmt, env *execEnv) (int, error) {
	t := db.tables[strings.ToLower(s.Table)]
	if t == nil {
		return 0, fmt.Errorf("relational: no table %q", s.Table)
	}
	// Column mapping: with an explicit column list, unspecified columns get
	// NULL; otherwise values are positional across the whole schema.
	colIdx := make([]int, 0, len(s.Cols))
	for _, c := range s.Cols {
		ci := t.Schema.ColumnIndex(c)
		if ci < 0 {
			return 0, fmt.Errorf("relational: table %s has no column %q", t.Name, c)
		}
		colIdx = append(colIdx, ci)
	}
	buildRow := func(vals []Value) ([]Value, error) {
		if len(s.Cols) == 0 {
			if len(vals) != len(t.Schema.Columns) {
				return nil, fmt.Errorf("relational: table %s expects %d values, got %d", t.Name, len(t.Schema.Columns), len(vals))
			}
			return vals, nil
		}
		if len(vals) != len(colIdx) {
			return nil, fmt.Errorf("relational: %d columns but %d values", len(colIdx), len(vals))
		}
		row := make([]Value, len(t.Schema.Columns))
		for i, ci := range colIdx {
			row[ci] = vals[i]
		}
		return row, nil
	}

	n := 0
	if s.Select != nil {
		rows, err := db.execSelect(s.Select, env)
		if err != nil {
			return 0, err
		}
		for _, r := range rows.Data {
			row, err := buildRow(r)
			if err != nil {
				return 0, err
			}
			if _, err := t.Insert(row); err != nil {
				return 0, err
			}
			n++
		}
	} else {
		ev := newEval(db, env)
		for _, exprRow := range s.Rows {
			vals := make([]Value, len(exprRow))
			for i, e := range exprRow {
				v, err := ev.eval(e, nil)
				if err != nil {
					return 0, err
				}
				vals[i] = v
			}
			row, err := buildRow(vals)
			if err != nil {
				return 0, err
			}
			if _, err := t.Insert(row); err != nil {
				return 0, err
			}
			n++
		}
	}
	db.stats.RowsInserted.Add(int64(n))
	return n, nil
}

func (db *DB) execDelete(s *DeleteStmt, env *execEnv) (int, error) {
	t := db.tables[strings.ToLower(s.Table)]
	if t == nil {
		return 0, fmt.Errorf("relational: no table %q", s.Table)
	}
	rids, err := db.matchRows(&s.plan, t, s.Table, s.Where, env)
	if err != nil {
		return 0, err
	}
	deleted := make([][]Value, 0, len(rids))
	for _, rid := range rids {
		old, err := t.Delete(rid)
		if err != nil {
			return 0, err
		}
		deleted = append(deleted, old)
	}
	db.stats.RowsDeleted.Add(int64(len(deleted)))
	if err := db.fireDeleteTriggers(t, deleted, env); err != nil {
		return 0, err
	}
	return len(deleted), nil
}

func (db *DB) execUpdate(s *UpdateStmt, env *execEnv) (int, error) {
	t := db.tables[strings.ToLower(s.Table)]
	if t == nil {
		return 0, fmt.Errorf("relational: no table %q", s.Table)
	}
	rids, err := db.matchRows(&s.plan, t, s.Table, s.Where, env)
	if err != nil {
		return 0, err
	}
	cols := make([]int, len(s.Set))
	for i, sc := range s.Set {
		ci := t.Schema.ColumnIndex(sc.Col)
		if ci < 0 {
			return 0, fmt.Errorf("relational: table %s has no column %q", t.Name, sc.Col)
		}
		cols[i] = ci
	}
	if k := db.parWorkersFor(len(rids)); k > 1 {
		// Batched intra-update parallelism: compute every row's new values
		// first (parallel read phase), then apply mutations serially under
		// the undo log. See updateValsParallel for why this is equivalent
		// to the interleaved serial loop.
		all, err := db.updateValsParallel(s, t, rids, env, k)
		if err != nil {
			return 0, err
		}
		nset := len(s.Set)
		for j, rid := range rids {
			if err := t.Update(rid, cols, all[j*nset:(j+1)*nset]); err != nil {
				return 0, err
			}
		}
		db.stats.RowsUpdated.Add(int64(len(rids)))
		return len(rids), nil
	}
	ev := newEval(db, env)
	vals := make([]Value, len(s.Set))
	for _, rid := range rids {
		binding := singleBinding(s.Table, t, t.visibleRow(rid, env.snap))
		for i, sc := range s.Set {
			v, err := ev.eval(sc.Val, binding)
			if err != nil {
				return 0, err
			}
			vals[i] = v
		}
		if err := t.Update(rid, cols, vals); err != nil {
			return 0, err
		}
	}
	db.stats.RowsUpdated.Add(int64(len(rids)))
	return len(rids), nil
}

// matchRows returns rowids of t satisfying where, in ascending order. The
// access path — hash probe, B+tree range scan, or full scan — is chosen by
// the same chooseAccessPlan the SELECT pipeline uses; the plan is compiled
// into the statement node. The loop itself is direct rather than an
// iterator chain: trigger bodies run it once per firing, so it stays lean.
func (db *DB) matchRows(planSlot **levelPlan, t *Table, name string, where Expr, env *execEnv) (rids []int, err error) {
	lp := db.matchPlanFor(planSlot, name, t, where)
	ev := newEval(db, env)
	bind := singleBinding(name, t, nil)
	check := func(row []Value) (bool, error) {
		bind.rows[0] = row
		for _, c := range lp.conds {
			ok, err := ev.evalBool(c, bind)
			if err != nil || !ok {
				return false, err
			}
		}
		return true, nil
	}
	var ctr levelCounters
	defer ctr.flush(db)
	if an := env.an; an != nil {
		// EXPLAIN ANALYZE record for the DML access path, keyed by the
		// statement's plan slot. Registered after the flush defer so the
		// fold (LIFO) sees the batch before it zeroes.
		m := an.op(planSlot, anMatch)
		m.loops.Add(1)
		t0 := time.Now()
		defer func() {
			m.rows.Add(int64(len(rids)))
			m.scanned.Add(ctr.rowsScanned)
			m.probes.Add(ctr.indexProbes + ctr.rangeProbes)
			m.ns.Add(int64(time.Since(t0)))
		}()
	}
	ap := chooseAccessPlan(lp, bind.srcs[0], 0, nil, true)
	switch ap.kind {
	case accessIndexProbe:
		ctr.indexProbes++
		v, err := ev.eval(ap.probe.expr, bind)
		if err != nil {
			return nil, err
		}
		for _, rid := range ap.idx.probe(v) {
			row := t.visibleRow(rid, env.snap)
			if row == nil {
				continue
			}
			ctr.rowsScanned++
			keep, err := check(row)
			if err != nil {
				return nil, err
			}
			if keep {
				rids = append(rids, rid)
			}
		}
		sort.Ints(rids)
		return rids, nil
	case accessOrderedProbe, accessRangeScan:
		// Walk the B+tree window; bound expressions are constants or OLD
		// references here (single-table DML), evaluated once.
		bucket, err := orderedBucketFor(&ctr, ev, &ap, t, bind, env.snap, nil)
		if err != nil {
			return nil, err
		}
		for _, rid := range bucket {
			row := t.visibleRow(rid, env.snap)
			if row == nil {
				continue
			}
			ctr.rowsScanned++
			keep, err := check(row)
			if err != nil {
				return nil, err
			}
			if keep {
				rids = append(rids, rid)
			}
		}
		sort.Ints(rids)
		return rids, nil
	}
	ctr.fullScans++
	if k := db.parWorkersFor(t.live); k > 1 {
		if an := env.an; an != nil {
			m := an.op(planSlot, anMatch)
			m.workers, m.parts = k, k
		}
		// Partitioned read phase: window match lists concatenate in rowid
		// order, reproducing this loop's output exactly (parallel.go).
		return db.matchScanParallel(&ctr, lp, t, name, env, k)
	}
	if t.pg != nil {
		var c pageCursor
		defer c.release()
		for rid := range t.rows {
			row := c.visibleAt(t, rid, env.snap)
			if row == nil {
				continue
			}
			ctr.rowsScanned++
			keep, err := check(row)
			if err != nil {
				return nil, err
			}
			if keep {
				rids = append(rids, rid)
			}
		}
		return rids, nil
	}
	for rid, row := range t.rows {
		if t.vers > 0 {
			row = t.visibleRow(rid, env.snap)
		}
		if row == nil {
			continue
		}
		ctr.rowsScanned++
		keep, err := check(row)
		if err != nil {
			return nil, err
		}
		if keep {
			rids = append(rids, rid)
		}
	}
	return rids, nil
}

func splitAnd(e Expr) []Expr {
	if b, ok := e.(*Binary); ok && b.Op == "AND" {
		return append(splitAnd(b.L), splitAnd(b.R)...)
	}
	return []Expr{e}
}

// ---- SELECT execution ----

// source is a joinable input: a base table or a materialized row set.
type source struct {
	name  string
	table *Table // non-nil for base tables
	rows  *Rows  // non-nil for CTEs
}

func (s *source) columns() []string {
	if s.table != nil {
		out := make([]string, len(s.table.Schema.Columns))
		for i, c := range s.table.Schema.Columns {
			out[i] = c.Name
		}
		return out
	}
	return s.rows.Cols
}

func (s *source) columnIndex(name string) int {
	if s.table != nil {
		return s.table.Schema.ColumnIndex(name)
	}
	for i, c := range s.rows.Cols {
		if strings.EqualFold(c, name) {
			return i
		}
	}
	return -1
}

// binding maps source names (lower-cased) to current rows.
type binding struct {
	names []string
	srcs  []*source
	rows  [][]Value
}

func singleBinding(name string, t *Table, row []Value) *binding {
	return &binding{
		names: []string{strings.ToLower(name)},
		srcs:  []*source{{name: name, table: t}},
		rows:  [][]Value{row},
	}
}

// locate finds the (source, column) indexes of a reference; src is -1 when
// it does not resolve. For a given binding the answer is fixed — names and
// schemas never change after construction — which is what lets the
// evaluator memoize it per reference instead of re-running the
// case-insensitive scans on every row.
func (b *binding) locate(table, col string) (src, ci int, err error) {
	if table != "" {
		for i, n := range b.names {
			if strings.EqualFold(n, table) {
				ci := b.srcs[i].columnIndex(col)
				if ci < 0 {
					return -1, -1, fmt.Errorf("relational: source %s has no column %q", table, col)
				}
				return i, ci, nil
			}
		}
		return -1, -1, nil
	}
	src, ci = -1, -1
	for i := range b.names {
		c := b.srcs[i].columnIndex(col)
		if c < 0 {
			continue
		}
		if src >= 0 {
			return -1, -1, fmt.Errorf("relational: ambiguous column %q", col)
		}
		src, ci = i, c
	}
	return src, ci, nil
}

// resolve finds the value of a column reference in the binding.
func (b *binding) resolve(table, col string) (Value, bool, error) {
	if b == nil {
		return Null, false, nil
	}
	si, ci, err := b.locate(table, col)
	if err != nil || si < 0 {
		return Null, false, err
	}
	if b.rows[si] == nil {
		// A qualified reference to an unbound source is "not found" (the
		// evaluator reports it); an unqualified one reads as NULL.
		return Null, table == "", nil
	}
	return b.rows[si][ci], true, nil
}

// execSelect materializes a SELECT: CTEs are evaluated into the
// environment, each body branch compiles into a streaming pipeline, and the
// drained rows form the result. Result values are sym-stripped: symbols are
// an engine-internal annotation, and the documented Value contract — == and
// map-key equality coincide with same-kind SQL equality — must hold for
// everything a caller receives. (CTE materialization goes through
// execSelectWant directly and keeps its symbols for downstream operators.)
func (db *DB) execSelect(s *SelectStmt, env *execEnv) (*Rows, error) {
	rows, err := db.execSelectWant(s, env, nil)
	if rows != nil {
		for _, r := range rows.Data {
			stripSyms(r)
		}
	}
	return rows, err
}

// stripSyms clears the intern symbols of a row in place.
func stripSyms(row []Value) {
	for i := range row {
		row[i].sym = 0
	}
}

// materializeCTEs evaluates a statement's CTEs into env, each steered by
// the order its consumers want (cteWants). With parallelism configured and
// more than one CTE, independent CTEs of the WITH chain — the Sorted Outer
// Union's sibling branches — evaluate concurrently in dependency waves
// (parallel.go).
func (db *DB) materializeCTEs(s *SelectStmt, env *execEnv, extWant []OrderKey) error {
	wants := db.cteWants(s, env, wantKeysOf(s, extWant))
	if k := db.cteWorkers(len(s.With)); k > 1 {
		return db.materializeCTEsParallel(s, env, wants, k)
	}
	for _, cte := range s.With {
		key := strings.ToLower(cte.Name)
		rows, err := db.materializeCTE(cte, env, wants[key])
		if err != nil {
			return err
		}
		env.ctes[key] = rows
	}
	return nil
}

// materializeCTE evaluates one CTE, applying its declared column renames.
func (db *DB) materializeCTE(cte CTE, env *execEnv, want []OrderKey) (*Rows, error) {
	rows, err := db.execSelectWant(cte.Select, env, want)
	if err != nil {
		return nil, fmt.Errorf("relational: CTE %s: %w", cte.Name, err)
	}
	if len(cte.Cols) > 0 {
		if len(cte.Cols) != len(rows.Cols) {
			return nil, fmt.Errorf("relational: CTE %s declares %d columns, query yields %d", cte.Name, len(cte.Cols), len(rows.Cols))
		}
		rows = &Rows{Cols: cte.Cols, Data: rows.Data, order: rows.order, consts: rows.consts, single: rows.single, orderUnique: rows.orderUnique}
	}
	return rows, nil
}

// execSelectWant materializes a SELECT with an advisory desired order (the
// want an enclosing statement propagated into this CTE). The want steers
// access paths; it never adds a sort.
func (db *DB) execSelectWant(s *SelectStmt, env *execEnv, extWant []OrderKey) (*Rows, error) {
	if err := db.pagedErr(); err != nil {
		return nil, err
	}
	env = newEnvFrom(env)
	if err := db.materializeCTEs(s, env, extWant); err != nil {
		return nil, err
	}
	it, cs, err := db.buildSelectIter(s, env, extWant)
	if err != nil {
		return nil, err
	}
	if err := it.Open(); err != nil {
		// Close even though Open failed: a compound iterator (merge, sort)
		// may have opened some children before erroring, and an opened
		// exchange has worker goroutines to join (parallel.go).
		it.Close()
		return nil, err
	}
	defer it.Close()
	out := &Rows{Cols: cs.cols}
	out.order, out.consts, out.orderUnique = cs.achievedOrder()
	for {
		row, ok, err := it.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			out.single = len(out.Data) <= 1
			return out, nil
		}
		// The pipeline reuses its row buffer (rowIter contract); a
		// materialized result owns its rows, so copy each one out.
		out.Data = append(out.Data, append(make([]Value, 0, len(row)), row...))
	}
}

// streamSelect drives a SELECT's pipeline row by row into fn without
// materializing the top-level result (CTEs still materialize). fn must not
// issue further statements on the same DB. Rows are sym-stripped before fn
// sees them, like execSelect's materialized results (the pipeline's reused
// buffer is rewritten every row, so stripping in place is safe).
func (db *DB) streamSelect(s *SelectStmt, env *execEnv, fn func([]Value) error) ([]string, error) {
	if err := db.pagedErr(); err != nil {
		return nil, err
	}
	env = newEnvFrom(env)
	if err := db.materializeCTEs(s, env, nil); err != nil {
		return nil, err
	}
	it, cs, err := db.buildSelectIter(s, env, nil)
	if err != nil {
		return nil, err
	}
	if err := it.Open(); err != nil {
		it.Close() // join any partially-opened parallel workers
		return nil, err
	}
	defer it.Close()
	for {
		row, ok, err := it.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return cs.cols, nil
		}
		stripSyms(row)
		if err := fn(row); err != nil {
			return cs.cols, err
		}
	}
}

// wantKeysOf returns the order keys that describe a statement's output: its
// own ORDER BY, or the advisory want handed down by its consumer.
func wantKeysOf(s *SelectStmt, extWant []OrderKey) []OrderKey {
	if len(s.OrderBy) > 0 {
		return s.OrderBy
	}
	return extWant
}

func newEnvFrom(parent *execEnv) *execEnv {
	if parent == nil {
		return newEnv(nil)
	}
	return newEnv(parent)
}

// validateRefs checks that every non-OLD column reference resolves against
// exactly one source. Subquery internals validate when they execute.
func validateRefs(e Expr, srcs []*source) error {
	switch x := e.(type) {
	case *ColumnRef:
		if strings.EqualFold(x.Table, "OLD") {
			return nil
		}
		matches := 0
		for _, src := range srcs {
			if x.Table != "" && !strings.EqualFold(src.name, x.Table) {
				continue
			}
			if src.columnIndex(x.Name) >= 0 {
				matches++
			}
		}
		if matches == 0 {
			if x.Table != "" {
				return fmt.Errorf("relational: unknown column %s.%s", x.Table, x.Name)
			}
			return fmt.Errorf("relational: unknown column %q", x.Name)
		}
		if matches > 1 && x.Table == "" {
			return fmt.Errorf("relational: ambiguous column %q", x.Name)
		}
		return nil
	case *Binary:
		if err := validateRefs(x.L, srcs); err != nil {
			return err
		}
		return validateRefs(x.R, srcs)
	case *Unary:
		return validateRefs(x.X, srcs)
	case *IsNull:
		return validateRefs(x.X, srcs)
	case *InExpr:
		if err := validateRefs(x.X, srcs); err != nil {
			return err
		}
		for _, l := range x.List {
			if err := validateRefs(l, srcs); err != nil {
				return err
			}
		}
		return nil
	case *FuncCall:
		if x.Arg != nil {
			return validateRefs(x.Arg, srcs)
		}
		return nil
	default:
		return nil
	}
}

func containsAggregate(e Expr) bool {
	switch x := e.(type) {
	case *FuncCall:
		return true
	case *Binary:
		return containsAggregate(x.L) || containsAggregate(x.R)
	case *Unary:
		return containsAggregate(x.X)
	default:
		return false
	}
}

// aggAccumulator folds MIN/MAX/COUNT across joined tuples. The top-level
// expression may combine aggregates arithmetically (e.g. MAX(id)-MIN(id)+1);
// accumulation happens at the FuncCall leaves.
type aggAccumulator struct {
	leaves map[*FuncCall]*aggLeaf
}

type aggLeaf struct {
	count int64
	min   Value // NULL until the first non-NULL input (aggregates skip NULLs)
	max   Value
}

func (a *aggAccumulator) feed(ev *exprEval, e Expr, bind *binding) error {
	if a.leaves == nil {
		a.leaves = make(map[*FuncCall]*aggLeaf)
	}
	var walk func(e Expr) error
	walk = func(e Expr) error {
		switch x := e.(type) {
		case *FuncCall:
			leaf := a.leaves[x]
			if leaf == nil {
				leaf = &aggLeaf{}
				a.leaves[x] = leaf
			}
			if x.Star {
				leaf.count++
				return nil
			}
			v, err := ev.eval(x.Arg, bind)
			if err != nil {
				return err
			}
			if v.IsNull() {
				return nil // NULLs are ignored by aggregates
			}
			leaf.count++
			if leaf.min.IsNull() || compareValues(v, leaf.min) < 0 {
				leaf.min = v
			}
			if leaf.max.IsNull() || compareValues(v, leaf.max) > 0 {
				leaf.max = v
			}
			return nil
		case *Binary:
			if err := walk(x.L); err != nil {
				return err
			}
			return walk(x.R)
		case *Unary:
			return walk(x.X)
		default:
			return nil
		}
	}
	return walk(e)
}

// merge folds another accumulator's partial state into a: COUNTs add,
// MIN/MAX combine by comparison (NULL means "no input yet" and loses to
// any value). Leaves key on the shared FuncCall AST nodes, so per-worker
// accumulators fed from the same compiled expression merge exactly — the
// reduction step of parallel aggregation (parallel.go).
func (a *aggAccumulator) merge(b *aggAccumulator) {
	if b.leaves == nil {
		return
	}
	if a.leaves == nil {
		a.leaves = make(map[*FuncCall]*aggLeaf, len(b.leaves))
	}
	for fc, leaf := range b.leaves {
		dst := a.leaves[fc]
		if dst == nil {
			dst = &aggLeaf{}
			a.leaves[fc] = dst
		}
		dst.count += leaf.count
		if !leaf.min.IsNull() && (dst.min.IsNull() || compareValues(leaf.min, dst.min) < 0) {
			dst.min = leaf.min
		}
		if !leaf.max.IsNull() && (dst.max.IsNull() || compareValues(leaf.max, dst.max) > 0) {
			dst.max = leaf.max
		}
	}
}

func (a *aggAccumulator) result(ev *exprEval, e Expr) Value {
	var eval func(e Expr) Value
	eval = func(e Expr) Value {
		switch x := e.(type) {
		case *FuncCall:
			leaf := a.leaves[x]
			if leaf == nil {
				leaf = &aggLeaf{}
			}
			switch x.Name {
			case "COUNT":
				return Int(leaf.count)
			case "MIN":
				return leaf.min
			case "MAX":
				return leaf.max
			}
			return Null
		case *Binary:
			l := eval(x.L)
			r := eval(x.R)
			v, _ := arith(x.Op, l, r)
			return v
		case *Unary:
			v := eval(x.X)
			if x.Op == "-" {
				if n, ok := v.Int(); ok {
					return Int(-n)
				}
			}
			return v
		case *Literal:
			return x.Value
		case *Param:
			if ev != nil && x.Index >= 0 && x.Index < len(ev.args) {
				return ev.args[x.Index]
			}
			return Null
		default:
			return Null
		}
	}
	return eval(e)
}

// ---- expression evaluation ----

type exprEval struct {
	db   *DB
	env  *execEnv
	args []Value
	// inCache memoizes uncorrelated IN-subquery result sets per statement.
	inCache map[*SelectStmt]map[Value]bool
	// refs memoizes column-reference resolution per AST node and binding:
	// the (source, column) indexes are fixed for a binding's lifetime, so
	// after the first row each reference is two slice indexes instead of
	// case-insensitive name scans. Keyed by node pointer — the cache lives
	// per execution while AST nodes are shared read-only via the plan
	// cache, so nothing is written to shared state.
	refs map[*ColumnRef]refSlot
}

// refSlot is one memoized column-reference resolution.
type refSlot struct {
	bind     *binding
	src, col int
}

// newEval builds an evaluator for one statement execution, binding the
// environment's prepared-statement arguments.
func newEval(db *DB, env *execEnv) *exprEval {
	return &exprEval{db: db, env: env, args: env.lookupArgs()}
}

func (ev *exprEval) eval(e Expr, bind *binding) (Value, error) {
	switch x := e.(type) {
	case *Literal:
		return x.Value, nil
	case *Param:
		if x.Index < 0 || x.Index >= len(ev.args) {
			return Null, fmt.Errorf("relational: unbound parameter ?%d", x.Index+1)
		}
		return ev.args[x.Index], nil
	case *ColumnRef:
		if strings.EqualFold(x.Table, "OLD") {
			old, t := ev.env.oldRow()
			if old == nil {
				return Null, fmt.Errorf("relational: OLD reference outside a row trigger")
			}
			ci := t.Schema.ColumnIndex(x.Name)
			if ci < 0 {
				return Null, fmt.Errorf("relational: OLD has no column %q", x.Name)
			}
			return old[ci], nil
		}
		if slot, ok := ev.refs[x]; ok && slot.bind == bind {
			if row := bind.rows[slot.src]; row != nil {
				return row[slot.col], nil
			}
		}
		v, ok, err := bind.resolve(x.Table, x.Name)
		if err != nil {
			return Null, err
		}
		if !ok {
			if x.Table != "" {
				return Null, fmt.Errorf("relational: unknown column %s.%s", x.Table, x.Name)
			}
			return Null, fmt.Errorf("relational: unknown column %q", x.Name)
		}
		if bind != nil {
			if si, ci, lerr := bind.locate(x.Table, x.Name); lerr == nil && si >= 0 {
				if ev.refs == nil {
					ev.refs = make(map[*ColumnRef]refSlot, 8)
				}
				ev.refs[x] = refSlot{bind: bind, src: si, col: ci}
			}
		}
		return v, nil
	case *Binary:
		switch x.Op {
		case "AND", "OR":
			l, err := ev.evalBool(x.L, bind)
			if err != nil {
				return Null, err
			}
			if x.Op == "AND" && !l {
				return Bool(false), nil
			}
			if x.Op == "OR" && l {
				return Bool(true), nil
			}
			r, err := ev.evalBool(x.R, bind)
			if err != nil {
				return Null, err
			}
			return Bool(r), nil
		case "=", "!=", "<", "<=", ">", ">=":
			l, err := ev.eval(x.L, bind)
			if err != nil {
				return Null, err
			}
			r, err := ev.eval(x.R, bind)
			if err != nil {
				return Null, err
			}
			if l.IsNull() || r.IsNull() {
				return Bool(false), nil // SQL UNKNOWN behaves as false here
			}
			return Bool(cmpSQL(x.Op, l, r)), nil
		case "+", "-", "*", "/":
			l, err := ev.eval(x.L, bind)
			if err != nil {
				return Null, err
			}
			r, err := ev.eval(x.R, bind)
			if err != nil {
				return Null, err
			}
			return arith(x.Op, l, r)
		default:
			return Null, fmt.Errorf("relational: unknown operator %q", x.Op)
		}
	case *Unary:
		switch x.Op {
		case "NOT":
			b, err := ev.evalBool(x.X, bind)
			if err != nil {
				return Null, err
			}
			return Bool(!b), nil
		case "-":
			v, err := ev.eval(x.X, bind)
			if err != nil {
				return Null, err
			}
			if v.IsNull() {
				return Null, nil
			}
			n, ok := v.Int()
			if !ok {
				return Null, fmt.Errorf("relational: unary minus on %s value", v.Kind())
			}
			return Int(-n), nil
		default:
			return Null, fmt.Errorf("relational: unknown unary %q", x.Op)
		}
	case *IsNull:
		v, err := ev.eval(x.X, bind)
		if err != nil {
			return Null, err
		}
		isNull := v.IsNull()
		if x.Negate {
			isNull = !isNull
		}
		return Bool(isNull), nil
	case *InExpr:
		v, err := ev.eval(x.X, bind)
		if err != nil {
			return Null, err
		}
		if v.IsNull() {
			return Bool(x.Negate), nil
		}
		if x.Select != nil {
			set, err := ev.subquerySet(x.Select)
			if err != nil {
				return Null, err
			}
			found := set[v.symKey(ev.db.intern)]
			return Bool(found != x.Negate), nil
		}
		found := false
		for _, le := range x.List {
			lv, err := ev.eval(le, bind)
			if err != nil {
				return Null, err
			}
			if eq, known := valuesEqual(v, lv); known && eq {
				found = true
				break
			}
		}
		return Bool(found != x.Negate), nil
	case *FuncCall:
		return Null, fmt.Errorf("relational: aggregate %s outside SELECT list", x.Name)
	default:
		return Null, fmt.Errorf("relational: unknown expression %T", e)
	}
}

// subquerySet evaluates an uncorrelated IN-subquery once per statement and
// memoizes the result set. This is what makes `NOT IN (SELECT id FROM
// parent)` scans linear in the child table rather than quadratic — the cost
// model behind the per-statement-trigger curves. Sets key on symKey-
// normalized Values — membership probes hash the tagged value with no
// literal formatting per row, interned text probes on its symbol, and mixed
// int/text membership agrees with the IN-list path's compareValues
// semantics.
func (ev *exprEval) subquerySet(sel *SelectStmt) (map[Value]bool, error) {
	if ev.inCache == nil {
		ev.inCache = make(map[*SelectStmt]map[Value]bool)
	}
	if set, ok := ev.inCache[sel]; ok {
		return set, nil
	}
	rows, err := ev.db.execSelect(sel, ev.env)
	if err != nil {
		return nil, err
	}
	if len(rows.Cols) != 1 {
		return nil, fmt.Errorf("relational: IN subquery must return one column, got %d", len(rows.Cols))
	}
	set := make(map[Value]bool, len(rows.Data))
	for _, r := range rows.Data {
		if !r[0].IsNull() {
			set[r[0].symKey(ev.db.intern)] = true
		}
	}
	ev.inCache[sel] = set
	return set, nil
}

func (ev *exprEval) evalBool(e Expr, bind *binding) (bool, error) {
	v, err := ev.eval(e, bind)
	if err != nil {
		return false, err
	}
	switch v.kind {
	case KindNull:
		return false, nil
	case KindInt:
		return v.i != 0, nil
	default:
		return v.s != "", nil
	}
}

func cmpSQL(op string, l, r Value) bool {
	// Equality between interned TEXT values is a 4-byte id compare — the
	// scan-predicate analogue of the sym-keyed hash paths. Ordering ops
	// still need the byte compare (symbol ids carry no order).
	if l.kind == KindText && r.kind == KindText && l.sym != 0 && r.sym != 0 {
		switch op {
		case "=":
			return l.sym == r.sym
		case "!=":
			return l.sym != r.sym
		}
	}
	c := compareValues(l, r)
	switch op {
	case "=":
		return c == 0
	case "!=":
		return c != 0
	case "<":
		return c < 0
	case "<=":
		return c <= 0
	case ">":
		return c > 0
	case ">=":
		return c >= 0
	default:
		return false
	}
}

func arith(op string, l, r Value) (Value, error) {
	if l.IsNull() || r.IsNull() {
		return Null, nil
	}
	ln, lok := l.Int()
	rn, rok := r.Int()
	if !lok || !rok {
		return Null, fmt.Errorf("relational: arithmetic on non-integers (%s %s %s)", l.Kind(), op, r.Kind())
	}
	switch op {
	case "+":
		return Int(ln + rn), nil
	case "-":
		return Int(ln - rn), nil
	case "*":
		return Int(ln * rn), nil
	case "/":
		if rn == 0 {
			return Null, fmt.Errorf("relational: division by zero")
		}
		return Int(ln / rn), nil
	default:
		return Null, fmt.Errorf("relational: unknown arithmetic operator %q", op)
	}
}

package relational

import (
	"fmt"
	"sort"
	"strings"
)

// ---- DML execution ----

func (db *DB) execInsert(s *InsertStmt, env *execEnv) (int, error) {
	t := db.tables[strings.ToLower(s.Table)]
	if t == nil {
		return 0, fmt.Errorf("relational: no table %q", s.Table)
	}
	// Column mapping: with an explicit column list, unspecified columns get
	// NULL; otherwise values are positional across the whole schema.
	colIdx := make([]int, 0, len(s.Cols))
	for _, c := range s.Cols {
		ci := t.Schema.ColumnIndex(c)
		if ci < 0 {
			return 0, fmt.Errorf("relational: table %s has no column %q", t.Name, c)
		}
		colIdx = append(colIdx, ci)
	}
	buildRow := func(vals []Value) ([]Value, error) {
		if len(s.Cols) == 0 {
			if len(vals) != len(t.Schema.Columns) {
				return nil, fmt.Errorf("relational: table %s expects %d values, got %d", t.Name, len(t.Schema.Columns), len(vals))
			}
			return vals, nil
		}
		if len(vals) != len(colIdx) {
			return nil, fmt.Errorf("relational: %d columns but %d values", len(colIdx), len(vals))
		}
		row := make([]Value, len(t.Schema.Columns))
		for i, ci := range colIdx {
			row[ci] = vals[i]
		}
		return row, nil
	}

	n := 0
	if s.Select != nil {
		rows, err := db.execSelect(s.Select, env)
		if err != nil {
			return 0, err
		}
		for _, r := range rows.Data {
			row, err := buildRow(r)
			if err != nil {
				return 0, err
			}
			if _, err := t.Insert(row); err != nil {
				return 0, err
			}
			n++
		}
	} else {
		ev := &exprEval{db: db, env: env}
		for _, exprRow := range s.Rows {
			vals := make([]Value, len(exprRow))
			for i, e := range exprRow {
				v, err := ev.eval(e, nil)
				if err != nil {
					return 0, err
				}
				vals[i] = v
			}
			row, err := buildRow(vals)
			if err != nil {
				return 0, err
			}
			if _, err := t.Insert(row); err != nil {
				return 0, err
			}
			n++
		}
	}
	db.stats.RowsInserted += int64(n)
	return n, nil
}

func (db *DB) execDelete(s *DeleteStmt, env *execEnv) (int, error) {
	t := db.tables[strings.ToLower(s.Table)]
	if t == nil {
		return 0, fmt.Errorf("relational: no table %q", s.Table)
	}
	rids, err := db.matchRows(t, s.Table, s.Where, env)
	if err != nil {
		return 0, err
	}
	deleted := make([][]Value, 0, len(rids))
	for _, rid := range rids {
		old, err := t.Delete(rid)
		if err != nil {
			return 0, err
		}
		deleted = append(deleted, old)
	}
	db.stats.RowsDeleted += int64(len(deleted))
	if err := db.fireDeleteTriggers(t, deleted, env); err != nil {
		return 0, err
	}
	return len(deleted), nil
}

func (db *DB) execUpdate(s *UpdateStmt, env *execEnv) (int, error) {
	t := db.tables[strings.ToLower(s.Table)]
	if t == nil {
		return 0, fmt.Errorf("relational: no table %q", s.Table)
	}
	rids, err := db.matchRows(t, s.Table, s.Where, env)
	if err != nil {
		return 0, err
	}
	cols := make([]int, len(s.Set))
	for i, sc := range s.Set {
		ci := t.Schema.ColumnIndex(sc.Col)
		if ci < 0 {
			return 0, fmt.Errorf("relational: table %s has no column %q", t.Name, sc.Col)
		}
		cols[i] = ci
	}
	ev := &exprEval{db: db, env: env}
	for _, rid := range rids {
		binding := singleBinding(s.Table, t, t.Row(rid))
		vals := make([]Value, len(s.Set))
		for i, sc := range s.Set {
			v, err := ev.eval(sc.Val, binding)
			if err != nil {
				return 0, err
			}
			vals[i] = v
		}
		if err := t.Update(rid, cols, vals); err != nil {
			return 0, err
		}
	}
	db.stats.RowsUpdated += int64(len(rids))
	return len(rids), nil
}

// matchRows returns rowids of t satisfying where. A top-level equality
// conjunct on an indexed column is used as the access path; otherwise a
// full scan filters every row.
func (db *DB) matchRows(t *Table, name string, where Expr, env *execEnv) ([]int, error) {
	ev := &exprEval{db: db, env: env}
	if where == nil {
		var rids []int
		db.stats.RowsScanned += int64(t.Scan(func(rid int, _ []Value) bool {
			rids = append(rids, rid)
			return true
		}))
		return rids, nil
	}
	// Try an index probe: find conjunct col = constExpr where col is
	// indexed and constExpr does not reference the table.
	conjs := splitAnd(where)
	for _, c := range conjs {
		b, ok := c.(*Binary)
		if !ok || b.Op != "=" {
			continue
		}
		col, val := equalityProbe(b, name, t)
		if col == "" {
			continue
		}
		idx := t.lookupIndex(col)
		if idx == nil {
			continue
		}
		v, err := ev.eval(val, nil)
		if err != nil {
			// Not a constant under this env; try the next conjunct.
			continue
		}
		var rids []int
		for _, rid := range idx.probe(v) {
			row := t.Row(rid)
			if row == nil {
				continue
			}
			db.stats.RowsScanned++
			keep, err := ev.evalBool(where, singleBinding(name, t, row))
			if err != nil {
				return nil, err
			}
			if keep {
				rids = append(rids, rid)
			}
		}
		sort.Ints(rids)
		return rids, nil
	}
	// Full scan.
	var rids []int
	var scanErr error
	visited := t.Scan(func(rid int, row []Value) bool {
		keep, err := ev.evalBool(where, singleBinding(name, t, row))
		if err != nil {
			scanErr = err
			return false
		}
		if keep {
			rids = append(rids, rid)
		}
		return true
	})
	db.stats.RowsScanned += int64(visited)
	if scanErr != nil {
		return nil, scanErr
	}
	return rids, nil
}

// equalityProbe checks whether b is `col = expr` (or mirrored) with col
// belonging to the table and expr free of the table's columns; it returns
// the column name and the probe expression.
func equalityProbe(b *Binary, name string, t *Table) (string, Expr) {
	try := func(l, r Expr) (string, Expr) {
		cr, ok := l.(*ColumnRef)
		if !ok {
			return "", nil
		}
		if cr.Table != "" && !strings.EqualFold(cr.Table, name) {
			return "", nil
		}
		if t.Schema.ColumnIndex(cr.Name) < 0 {
			return "", nil
		}
		if referencesTable(r, name, t) {
			return "", nil
		}
		return cr.Name, r
	}
	if col, e := try(b.L, b.R); col != "" {
		return col, e
	}
	return try(b.R, b.L)
}

func referencesTable(e Expr, name string, t *Table) bool {
	switch x := e.(type) {
	case *ColumnRef:
		if strings.EqualFold(x.Table, "OLD") {
			return false
		}
		if x.Table != "" {
			return strings.EqualFold(x.Table, name)
		}
		return t.Schema.ColumnIndex(x.Name) >= 0
	case *Binary:
		return referencesTable(x.L, name, t) || referencesTable(x.R, name, t)
	case *Unary:
		return referencesTable(x.X, name, t)
	case *IsNull:
		return referencesTable(x.X, name, t)
	case *InExpr:
		if referencesTable(x.X, name, t) {
			return true
		}
		for _, l := range x.List {
			if referencesTable(l, name, t) {
				return true
			}
		}
		return false
	case *FuncCall:
		return x.Arg != nil && referencesTable(x.Arg, name, t)
	default:
		return false
	}
}

func splitAnd(e Expr) []Expr {
	if b, ok := e.(*Binary); ok && b.Op == "AND" {
		return append(splitAnd(b.L), splitAnd(b.R)...)
	}
	return []Expr{e}
}

// ---- SELECT execution ----

// source is a joinable input: a base table or a materialized row set.
type source struct {
	name  string
	table *Table // non-nil for base tables
	rows  *Rows  // non-nil for CTEs
}

func (s *source) columns() []string {
	if s.table != nil {
		out := make([]string, len(s.table.Schema.Columns))
		for i, c := range s.table.Schema.Columns {
			out[i] = c.Name
		}
		return out
	}
	return s.rows.Cols
}

func (s *source) columnIndex(name string) int {
	if s.table != nil {
		return s.table.Schema.ColumnIndex(name)
	}
	for i, c := range s.rows.Cols {
		if strings.EqualFold(c, name) {
			return i
		}
	}
	return -1
}

// binding maps source names (lower-cased) to current rows.
type binding struct {
	names []string
	srcs  []*source
	rows  [][]Value
}

func singleBinding(name string, t *Table, row []Value) *binding {
	return &binding{
		names: []string{strings.ToLower(name)},
		srcs:  []*source{{name: name, table: t}},
		rows:  [][]Value{row},
	}
}

// resolve finds the value of a column reference in the binding.
func (b *binding) resolve(table, col string) (Value, bool, error) {
	if b == nil {
		return nil, false, nil
	}
	if table != "" {
		for i, n := range b.names {
			if strings.EqualFold(n, table) {
				ci := b.srcs[i].columnIndex(col)
				if ci < 0 {
					return nil, false, fmt.Errorf("relational: source %s has no column %q", table, col)
				}
				if b.rows[i] == nil {
					return nil, false, nil
				}
				return b.rows[i][ci], true, nil
			}
		}
		return nil, false, nil
	}
	found := false
	var val Value
	for i := range b.names {
		ci := b.srcs[i].columnIndex(col)
		if ci < 0 {
			continue
		}
		if found {
			return nil, false, fmt.Errorf("relational: ambiguous column %q", col)
		}
		found = true
		if b.rows[i] != nil {
			val = b.rows[i][ci]
		}
	}
	return val, found, nil
}

func (db *DB) execSelect(s *SelectStmt, env *execEnv) (*Rows, error) {
	env = newEnvFrom(env)
	for _, cte := range s.With {
		rows, err := db.execSelect(cte.Select, env)
		if err != nil {
			return nil, fmt.Errorf("relational: CTE %s: %w", cte.Name, err)
		}
		if len(cte.Cols) > 0 {
			if len(cte.Cols) != len(rows.Cols) {
				return nil, fmt.Errorf("relational: CTE %s declares %d columns, query yields %d", cte.Name, len(cte.Cols), len(rows.Cols))
			}
			rows = &Rows{Cols: cte.Cols, Data: rows.Data}
		}
		env.ctes[strings.ToLower(cte.Name)] = rows
	}

	var out *Rows
	for _, body := range s.Body {
		rows, err := db.execSimpleSelect(body, env)
		if err != nil {
			return nil, err
		}
		if out == nil {
			out = rows
			continue
		}
		if len(rows.Cols) != len(out.Cols) {
			return nil, fmt.Errorf("relational: UNION ALL branches have %d vs %d columns", len(out.Cols), len(rows.Cols))
		}
		out.Data = append(out.Data, rows.Data...)
	}
	if out == nil {
		return &Rows{}, nil
	}

	if len(s.OrderBy) > 0 {
		keyIdx := make([]int, len(s.OrderBy))
		for i, k := range s.OrderBy {
			switch e := k.Expr.(type) {
			case *ColumnRef:
				found := -1
				for ci, c := range out.Cols {
					if strings.EqualFold(c, e.Name) {
						found = ci
						break
					}
				}
				if found < 0 {
					return nil, fmt.Errorf("relational: ORDER BY column %q not in result", e.Name)
				}
				keyIdx[i] = found
			case *Literal:
				n, ok := e.Value.(int64)
				if !ok || n < 1 || int(n) > len(out.Cols) {
					return nil, fmt.Errorf("relational: bad positional ORDER BY")
				}
				keyIdx[i] = int(n) - 1
			default:
				return nil, fmt.Errorf("relational: ORDER BY supports column references only")
			}
		}
		sort.SliceStable(out.Data, func(a, b int) bool {
			for i, ci := range keyIdx {
				c := compareValues(out.Data[a][ci], out.Data[b][ci])
				if c == 0 {
					continue
				}
				if s.OrderBy[i].Desc {
					return c > 0
				}
				return c < 0
			}
			return false
		})
	}
	return out, nil
}

func newEnvFrom(parent *execEnv) *execEnv {
	if parent == nil {
		return newEnv(nil)
	}
	return newEnv(parent)
}

func (db *DB) execSimpleSelect(s *SimpleSelect, env *execEnv) (*Rows, error) {
	// Resolve sources.
	srcs := make([]*source, len(s.From))
	for i, f := range s.From {
		if rows, ok := env.lookupCTE(f.Table); ok {
			srcs[i] = &source{name: f.Name(), rows: rows}
			continue
		}
		t := db.tables[strings.ToLower(f.Table)]
		if t == nil {
			return nil, fmt.Errorf("relational: no table or CTE %q", f.Table)
		}
		srcs[i] = &source{name: f.Name(), table: t}
	}

	// Output schema.
	var cols []string
	if s.Star {
		for _, src := range srcs {
			cols = append(cols, src.columns()...)
		}
	} else {
		for i, se := range s.Exprs {
			switch {
			case se.Alias != "":
				cols = append(cols, se.Alias)
			default:
				if cr, ok := se.Expr.(*ColumnRef); ok {
					cols = append(cols, cr.Name)
				} else {
					cols = append(cols, fmt.Sprintf("c%d", i+1))
				}
			}
		}
	}

	// Validate column references eagerly so errors surface even when no
	// rows flow through the join.
	if !s.Star {
		for _, se := range s.Exprs {
			if err := validateRefs(se.Expr, srcs); err != nil {
				return nil, err
			}
		}
	}
	if s.Where != nil {
		if err := validateRefs(s.Where, srcs); err != nil {
			return nil, err
		}
	}

	ev := &exprEval{db: db, env: env}
	aggregate := false
	if !s.Star {
		for _, se := range s.Exprs {
			if containsAggregate(se.Expr) {
				aggregate = true
				break
			}
		}
	}

	out := &Rows{Cols: cols}
	var aggState []*aggAccumulator
	if aggregate {
		aggState = make([]*aggAccumulator, len(s.Exprs))
	}

	conjs := []Expr(nil)
	if s.Where != nil {
		conjs = splitAnd(s.Where)
	}

	// No FROM clause: evaluate expressions once.
	if len(srcs) == 0 {
		row := make([]Value, len(s.Exprs))
		for i, se := range s.Exprs {
			v, err := ev.eval(se.Expr, nil)
			if err != nil {
				return nil, err
			}
			row[i] = v
		}
		out.Data = append(out.Data, row)
		return out, nil
	}

	bind := &binding{
		names: make([]string, len(srcs)),
		srcs:  srcs,
		rows:  make([][]Value, len(srcs)),
	}
	for i, src := range srcs {
		bind.names[i] = strings.ToLower(src.name)
	}

	emit := func() error {
		if aggregate {
			for i, se := range s.Exprs {
				if aggState[i] == nil {
					aggState[i] = &aggAccumulator{}
				}
				if err := aggState[i].feed(ev, se.Expr, bind); err != nil {
					return err
				}
			}
			return nil
		}
		var row []Value
		if s.Star {
			for i := range srcs {
				row = append(row, bind.rows[i]...)
			}
		} else {
			row = make([]Value, len(s.Exprs))
			for i, se := range s.Exprs {
				v, err := ev.eval(se.Expr, bind)
				if err != nil {
					return err
				}
				row[i] = v
			}
		}
		out.Data = append(out.Data, row)
		return nil
	}

	// conjApplicable reports whether a conjunct references only the first
	// k+1 sources (by qualified name) — unqualified refs resolve against
	// all sources, so they gate at the last source that has the column.
	applicableAt := func(c Expr, level int) bool {
		maxLevel := 0
		var walk func(e Expr)
		walk = func(e Expr) {
			switch x := e.(type) {
			case *ColumnRef:
				if strings.EqualFold(x.Table, "OLD") {
					return
				}
				lvl := -1
				if x.Table != "" {
					for i, n := range bind.names {
						if strings.EqualFold(n, x.Table) {
							lvl = i
							break
						}
					}
				} else {
					for i := len(srcs) - 1; i >= 0; i-- {
						if srcs[i].columnIndex(x.Name) >= 0 {
							lvl = i
							break
						}
					}
				}
				if lvl > maxLevel {
					maxLevel = lvl
				}
			case *Binary:
				walk(x.L)
				walk(x.R)
			case *Unary:
				walk(x.X)
			case *IsNull:
				walk(x.X)
			case *InExpr:
				walk(x.X)
				for _, l := range x.List {
					walk(l)
				}
			case *FuncCall:
				if x.Arg != nil {
					walk(x.Arg)
				}
			}
		}
		walk(c)
		return maxLevel == level
	}

	var join func(level int) error
	join = func(level int) error {
		if level == len(srcs) {
			return emit()
		}
		src := srcs[level]
		var levelConjs []Expr
		for _, c := range conjs {
			if applicableAt(c, level) {
				levelConjs = append(levelConjs, c)
			}
		}
		check := func() (bool, error) {
			for _, c := range levelConjs {
				ok, err := ev.evalBool(c, bind)
				if err != nil {
					return false, err
				}
				if !ok {
					return false, nil
				}
			}
			return true, nil
		}

		// Index acceleration: find `src.col = expr(previous sources)`.
		if src.table != nil {
			for _, c := range levelConjs {
				b, ok := c.(*Binary)
				if !ok || b.Op != "=" {
					continue
				}
				col, probeExpr := equalityProbe(b, src.name, src.table)
				if col == "" {
					continue
				}
				idx := src.table.lookupIndex(col)
				if idx == nil {
					continue
				}
				// The probe must be computable from earlier bindings.
				v, err := ev.eval(probeExpr, bind)
				if err != nil {
					continue
				}
				for _, rid := range idx.probe(v) {
					row := src.table.Row(rid)
					if row == nil {
						continue
					}
					db.stats.RowsScanned++
					bind.rows[level] = row
					ok, err := check()
					if err != nil {
						return err
					}
					if ok {
						if err := join(level + 1); err != nil {
							return err
						}
					}
				}
				bind.rows[level] = nil
				return nil
			}
		}

		// Fallback: scan.
		iterate := func(row []Value) error {
			db.stats.RowsScanned++
			bind.rows[level] = row
			ok, err := check()
			if err != nil {
				return err
			}
			if ok {
				return join(level + 1)
			}
			return nil
		}
		if src.table != nil {
			var scanErr error
			src.table.Scan(func(_ int, row []Value) bool {
				if err := iterate(row); err != nil {
					scanErr = err
					return false
				}
				return true
			})
			if scanErr != nil {
				return scanErr
			}
		} else {
			for _, row := range src.rows.Data {
				if err := iterate(row); err != nil {
					return err
				}
			}
		}
		bind.rows[level] = nil
		return nil
	}
	if err := join(0); err != nil {
		return nil, err
	}

	if aggregate {
		row := make([]Value, len(s.Exprs))
		for i, se := range s.Exprs {
			if aggState[i] == nil {
				aggState[i] = &aggAccumulator{}
			}
			row[i] = aggState[i].result(se.Expr)
		}
		out.Data = append(out.Data, row)
	}
	if s.Distinct {
		seen := make(map[string]bool, len(out.Data))
		kept := out.Data[:0]
		for _, r := range out.Data {
			key := rowKey(r)
			if !seen[key] {
				seen[key] = true
				kept = append(kept, r)
			}
		}
		out.Data = kept
	}
	return out, nil
}

// validateRefs checks that every non-OLD column reference resolves against
// exactly one source. Subquery internals validate when they execute.
func validateRefs(e Expr, srcs []*source) error {
	switch x := e.(type) {
	case *ColumnRef:
		if strings.EqualFold(x.Table, "OLD") {
			return nil
		}
		matches := 0
		for _, src := range srcs {
			if x.Table != "" && !strings.EqualFold(src.name, x.Table) {
				continue
			}
			if src.columnIndex(x.Name) >= 0 {
				matches++
			}
		}
		if matches == 0 {
			if x.Table != "" {
				return fmt.Errorf("relational: unknown column %s.%s", x.Table, x.Name)
			}
			return fmt.Errorf("relational: unknown column %q", x.Name)
		}
		if matches > 1 && x.Table == "" {
			return fmt.Errorf("relational: ambiguous column %q", x.Name)
		}
		return nil
	case *Binary:
		if err := validateRefs(x.L, srcs); err != nil {
			return err
		}
		return validateRefs(x.R, srcs)
	case *Unary:
		return validateRefs(x.X, srcs)
	case *IsNull:
		return validateRefs(x.X, srcs)
	case *InExpr:
		if err := validateRefs(x.X, srcs); err != nil {
			return err
		}
		for _, l := range x.List {
			if err := validateRefs(l, srcs); err != nil {
				return err
			}
		}
		return nil
	case *FuncCall:
		if x.Arg != nil {
			return validateRefs(x.Arg, srcs)
		}
		return nil
	default:
		return nil
	}
}

func rowKey(r []Value) string {
	var b strings.Builder
	for _, v := range r {
		b.WriteString(FormatValue(v))
		b.WriteByte('\x00')
	}
	return b.String()
}

func containsAggregate(e Expr) bool {
	switch x := e.(type) {
	case *FuncCall:
		return true
	case *Binary:
		return containsAggregate(x.L) || containsAggregate(x.R)
	case *Unary:
		return containsAggregate(x.X)
	default:
		return false
	}
}

// aggAccumulator folds MIN/MAX/COUNT across joined tuples. The top-level
// expression may combine aggregates arithmetically (e.g. MAX(id)-MIN(id)+1);
// accumulation happens at the FuncCall leaves.
type aggAccumulator struct {
	leaves map[*FuncCall]*aggLeaf
}

type aggLeaf struct {
	count int64
	min   Value
	max   Value
}

func (a *aggAccumulator) feed(ev *exprEval, e Expr, bind *binding) error {
	if a.leaves == nil {
		a.leaves = make(map[*FuncCall]*aggLeaf)
	}
	var walk func(e Expr) error
	walk = func(e Expr) error {
		switch x := e.(type) {
		case *FuncCall:
			leaf := a.leaves[x]
			if leaf == nil {
				leaf = &aggLeaf{}
				a.leaves[x] = leaf
			}
			if x.Star {
				leaf.count++
				return nil
			}
			v, err := ev.eval(x.Arg, bind)
			if err != nil {
				return err
			}
			if v == nil {
				return nil // NULLs are ignored by aggregates
			}
			leaf.count++
			if leaf.min == nil || compareValues(v, leaf.min) < 0 {
				leaf.min = v
			}
			if leaf.max == nil || compareValues(v, leaf.max) > 0 {
				leaf.max = v
			}
			return nil
		case *Binary:
			if err := walk(x.L); err != nil {
				return err
			}
			return walk(x.R)
		case *Unary:
			return walk(x.X)
		default:
			return nil
		}
	}
	return walk(e)
}

func (a *aggAccumulator) result(e Expr) Value {
	var eval func(e Expr) Value
	eval = func(e Expr) Value {
		switch x := e.(type) {
		case *FuncCall:
			leaf := a.leaves[x]
			if leaf == nil {
				leaf = &aggLeaf{}
			}
			switch x.Name {
			case "COUNT":
				return leaf.count
			case "MIN":
				return leaf.min
			case "MAX":
				return leaf.max
			}
			return nil
		case *Binary:
			l := eval(x.L)
			r := eval(x.R)
			v, _ := arith(x.Op, l, r)
			return v
		case *Unary:
			v := eval(x.X)
			if x.Op == "-" {
				if n, ok := v.(int64); ok {
					return -n
				}
			}
			return v
		case *Literal:
			return x.Value
		default:
			return nil
		}
	}
	return eval(e)
}

// ---- expression evaluation ----

type exprEval struct {
	db  *DB
	env *execEnv
	// inCache memoizes uncorrelated IN-subquery result sets per statement.
	inCache map[*SelectStmt]map[string]bool
}

func (ev *exprEval) eval(e Expr, bind *binding) (Value, error) {
	switch x := e.(type) {
	case *Literal:
		return x.Value, nil
	case *ColumnRef:
		if strings.EqualFold(x.Table, "OLD") {
			old, t := ev.env.oldRow()
			if old == nil {
				return nil, fmt.Errorf("relational: OLD reference outside a row trigger")
			}
			ci := t.Schema.ColumnIndex(x.Name)
			if ci < 0 {
				return nil, fmt.Errorf("relational: OLD has no column %q", x.Name)
			}
			return old[ci], nil
		}
		v, ok, err := bind.resolve(x.Table, x.Name)
		if err != nil {
			return nil, err
		}
		if !ok {
			if x.Table != "" {
				return nil, fmt.Errorf("relational: unknown column %s.%s", x.Table, x.Name)
			}
			return nil, fmt.Errorf("relational: unknown column %q", x.Name)
		}
		return v, nil
	case *Binary:
		switch x.Op {
		case "AND", "OR":
			l, err := ev.evalBool(x.L, bind)
			if err != nil {
				return nil, err
			}
			if x.Op == "AND" && !l {
				return int64(0), nil
			}
			if x.Op == "OR" && l {
				return int64(1), nil
			}
			r, err := ev.evalBool(x.R, bind)
			if err != nil {
				return nil, err
			}
			return boolValue(r), nil
		case "=", "!=", "<", "<=", ">", ">=":
			l, err := ev.eval(x.L, bind)
			if err != nil {
				return nil, err
			}
			r, err := ev.eval(x.R, bind)
			if err != nil {
				return nil, err
			}
			if l == nil || r == nil {
				return int64(0), nil // SQL UNKNOWN behaves as false here
			}
			return boolValue(cmpSQL(x.Op, l, r)), nil
		case "+", "-", "*", "/":
			l, err := ev.eval(x.L, bind)
			if err != nil {
				return nil, err
			}
			r, err := ev.eval(x.R, bind)
			if err != nil {
				return nil, err
			}
			return arith(x.Op, l, r)
		default:
			return nil, fmt.Errorf("relational: unknown operator %q", x.Op)
		}
	case *Unary:
		switch x.Op {
		case "NOT":
			b, err := ev.evalBool(x.X, bind)
			if err != nil {
				return nil, err
			}
			return boolValue(!b), nil
		case "-":
			v, err := ev.eval(x.X, bind)
			if err != nil {
				return nil, err
			}
			if v == nil {
				return nil, nil
			}
			n, ok := v.(int64)
			if !ok {
				return nil, fmt.Errorf("relational: unary minus on %T", v)
			}
			return -n, nil
		default:
			return nil, fmt.Errorf("relational: unknown unary %q", x.Op)
		}
	case *IsNull:
		v, err := ev.eval(x.X, bind)
		if err != nil {
			return nil, err
		}
		isNull := v == nil
		if x.Negate {
			isNull = !isNull
		}
		return boolValue(isNull), nil
	case *InExpr:
		v, err := ev.eval(x.X, bind)
		if err != nil {
			return nil, err
		}
		if v == nil {
			return boolValue(x.Negate), nil
		}
		if x.Select != nil {
			set, err := ev.subquerySet(x.Select)
			if err != nil {
				return nil, err
			}
			found := set[FormatValue(v)]
			return boolValue(found != x.Negate), nil
		}
		found := false
		for _, le := range x.List {
			lv, err := ev.eval(le, bind)
			if err != nil {
				return nil, err
			}
			if eq, known := valuesEqual(v, lv); known && eq {
				found = true
				break
			}
		}
		return boolValue(found != x.Negate), nil
	case *FuncCall:
		return nil, fmt.Errorf("relational: aggregate %s outside SELECT list", x.Name)
	default:
		return nil, fmt.Errorf("relational: unknown expression %T", e)
	}
}

// subquerySet evaluates an uncorrelated IN-subquery once per statement and
// memoizes the result set. This is what makes `NOT IN (SELECT id FROM
// parent)` scans linear in the child table rather than quadratic — the cost
// model behind the per-statement-trigger curves.
func (ev *exprEval) subquerySet(sel *SelectStmt) (map[string]bool, error) {
	if ev.inCache == nil {
		ev.inCache = make(map[*SelectStmt]map[string]bool)
	}
	if set, ok := ev.inCache[sel]; ok {
		return set, nil
	}
	rows, err := ev.db.execSelect(sel, ev.env)
	if err != nil {
		return nil, err
	}
	if len(rows.Cols) != 1 {
		return nil, fmt.Errorf("relational: IN subquery must return one column, got %d", len(rows.Cols))
	}
	set := make(map[string]bool, len(rows.Data))
	for _, r := range rows.Data {
		if r[0] != nil {
			set[FormatValue(r[0])] = true
		}
	}
	ev.inCache[sel] = set
	return set, nil
}

func (ev *exprEval) evalBool(e Expr, bind *binding) (bool, error) {
	v, err := ev.eval(e, bind)
	if err != nil {
		return false, err
	}
	switch x := v.(type) {
	case nil:
		return false, nil
	case int64:
		return x != 0, nil
	case string:
		return x != "", nil
	default:
		return false, fmt.Errorf("relational: non-boolean predicate value %T", v)
	}
}

func boolValue(b bool) Value {
	if b {
		return int64(1)
	}
	return int64(0)
}

func cmpSQL(op string, l, r Value) bool {
	c := compareValues(l, r)
	switch op {
	case "=":
		return c == 0
	case "!=":
		return c != 0
	case "<":
		return c < 0
	case "<=":
		return c <= 0
	case ">":
		return c > 0
	case ">=":
		return c >= 0
	default:
		return false
	}
}

func arith(op string, l, r Value) (Value, error) {
	if l == nil || r == nil {
		return nil, nil
	}
	ln, lok := l.(int64)
	rn, rok := r.(int64)
	if !lok || !rok {
		return nil, fmt.Errorf("relational: arithmetic on non-integers (%T %s %T)", l, op, r)
	}
	switch op {
	case "+":
		return ln + rn, nil
	case "-":
		return ln - rn, nil
	case "*":
		return ln * rn, nil
	case "/":
		if rn == 0 {
			return nil, fmt.Errorf("relational: division by zero")
		}
		return ln / rn, nil
	default:
		return nil, fmt.Errorf("relational: unknown arithmetic operator %q", op)
	}
}

package relational

import (
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/wal"
)

// DBSnapshot serialization. The encoding is deterministic — tables in
// sorted key order, rows in rowid order, values in the WAL's tagged value
// encoding — so two snapshots of identical state encode to identical bytes.
// Checkpoints embed this encoding; it also stands alone as a backup format
// (EncodeSnapshot on a live DB's Snapshot, DecodeSnapshot + Restore to roll
// back to it).
//
// Ordered B+tree index contents are intentionally not encoded: a restore
// rebuilds each tree from the decoded rows (the entries are a pure function
// of the live rows), which keeps the format independent of tree layout.

const snapMagic = "XSNP1"

// EncodeSnapshot renders a snapshot as bytes.
func EncodeSnapshot(s *DBSnapshot) ([]byte, error) {
	names := make([]string, 0, len(s.tables))
	for name := range s.tables {
		names = append(names, name)
	}
	sort.Strings(names)
	b := []byte(snapMagic)
	b = binary.AppendUvarint(b, uint64(len(names)))
	var err error
	for _, name := range names {
		snap := s.tables[name]
		b = binary.AppendUvarint(b, uint64(len(name)))
		b = append(b, name...)
		b = binary.AppendUvarint(b, uint64(snap.live))
		b = binary.AppendUvarint(b, uint64(len(snap.rows)))
		for _, row := range snap.rows {
			if row == nil {
				b = append(b, 0)
				continue
			}
			b = append(b, 1)
			b = binary.AppendUvarint(b, uint64(len(row)))
			for _, v := range row {
				if b, err = wal.AppendValue(b, walVal(v)); err != nil {
					return nil, err
				}
			}
		}
	}
	return b, nil
}

// DecodeSnapshot parses EncodeSnapshot's output. Corrupt input returns an
// error (all lengths are validated against the remaining buffer).
func DecodeSnapshot(data []byte) (*DBSnapshot, error) {
	if len(data) < len(snapMagic) || string(data[:len(snapMagic)]) != snapMagic {
		return nil, fmt.Errorf("relational: not a snapshot (bad magic)")
	}
	b := data[len(snapMagic):]
	ntables, n := binary.Uvarint(b)
	if n <= 0 || ntables > uint64(len(b)) {
		return nil, fmt.Errorf("relational: snapshot: bad table count")
	}
	b = b[n:]
	s := &DBSnapshot{tables: make(map[string]tableSnap, ntables)}
	for i := uint64(0); i < ntables; i++ {
		nameLen, n := binary.Uvarint(b)
		if n <= 0 || nameLen > uint64(len(b)-n) {
			return nil, fmt.Errorf("relational: snapshot: bad table name")
		}
		name := string(b[n : n+int(nameLen)])
		b = b[n+int(nameLen):]
		live, n := binary.Uvarint(b)
		if n <= 0 {
			return nil, fmt.Errorf("relational: snapshot: bad live count")
		}
		b = b[n:]
		nrows, n := binary.Uvarint(b)
		if n <= 0 || nrows > uint64(len(b)) {
			return nil, fmt.Errorf("relational: snapshot: bad row count")
		}
		b = b[n:]
		snap := tableSnap{live: int(live), rows: make([][]Value, nrows)}
		for r := uint64(0); r < nrows; r++ {
			if len(b) == 0 {
				return nil, fmt.Errorf("relational: snapshot: truncated rows")
			}
			present := b[0]
			b = b[1:]
			if present == 0 {
				continue
			}
			ncols, n := binary.Uvarint(b)
			if n <= 0 || ncols > uint64(len(b)) {
				return nil, fmt.Errorf("relational: snapshot: bad column count")
			}
			b = b[n:]
			row := make([]Value, ncols)
			for c := uint64(0); c < ncols; c++ {
				wv, rest, err := wal.ReadValue(b)
				if err != nil {
					return nil, fmt.Errorf("relational: snapshot: %w", err)
				}
				if row[c], err = fromWalVal(wv); err != nil {
					return nil, fmt.Errorf("relational: snapshot: %w", err)
				}
				b = rest
			}
			snap.rows[r] = row
		}
		s.tables[name] = snap
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("relational: snapshot: %d trailing bytes", len(b))
	}
	return s, nil
}

package relational

import (
	"fmt"
	"sync"
	"testing"
)

// TestConcurrentReadersWithWriter races N document-order reader goroutines
// against a writer doing pos-renumber updates, failing statements, and
// explicit rollbacks. Because transactions hold the writer lock from BEGIN
// to COMMIT/ROLLBACK and every committed state in this workload equals the
// seed state, each read must observe exactly the seed multiset — a torn
// statement or a lost undo shows up as a wrong row count or wrong pos sum.
// Run under -race this also proves the lock discipline over the stats
// counters, the shape cache, and the AST plan caches.
func TestConcurrentReadersWithWriter(t *testing.T) {
	const (
		parents = 8
		perPar  = 25
		rows    = parents * perPar
		readers = 4
		cycles  = 120
	)
	db := NewDB()
	db.MustExec("CREATE TABLE item (id INTEGER, parentId INTEGER, pos INTEGER, name VARCHAR(64))")
	db.MustExec("CREATE ORDERED INDEX ip ON item (parentId, pos)")
	wantPosSum := int64(0)
	for i := 0; i < rows; i++ {
		pos := i % perPar
		wantPosSum += int64(pos)
		db.MustExec(fmt.Sprintf("INSERT INTO item VALUES (%d, %d, %d, 'n%d')", i+1, i/perPar, pos, i+1))
	}
	before := dbDump(db)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan error, readers+1)

	// Writer: every committed state equals the seed state.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		for i := 0; i < cycles; i++ {
			par := i % parents
			// Explicit transaction, rolled back: pos-renumber plus a delete.
			tx := db.Begin()
			if _, err := tx.Exec(fmt.Sprintf("UPDATE item SET pos = pos + 1000 WHERE parentId = %d", par)); err != nil {
				errs <- err
				tx.Rollback()
				return
			}
			if _, err := tx.Exec(fmt.Sprintf("DELETE FROM item WHERE parentId = %d AND pos >= 1010", par)); err != nil {
				errs <- err
				tx.Rollback()
				return
			}
			if err := tx.Rollback(); err != nil {
				errs <- err
				return
			}
			// Implicit statement transaction, failing mid-statement: the
			// shift collides with an existing id after moving earlier rows.
			if _, err := db.Exec("UPDATE item SET id = id + 1"); err == nil {
				errs <- fmt.Errorf("expected unique violation")
				return
			}
			// Committed transaction whose net effect is zero.
			tx = db.Begin()
			if _, err := tx.Exec(fmt.Sprintf("UPDATE item SET pos = pos + 500 WHERE parentId = %d", par)); err != nil {
				errs <- err
				tx.Rollback()
				return
			}
			if _, err := tx.Exec(fmt.Sprintf("UPDATE item SET pos = pos - 500 WHERE parentId = %d", par)); err != nil {
				errs <- err
				tx.Rollback()
				return
			}
			if err := tx.Commit(); err != nil {
				errs <- err
				return
			}
		}
	}()

	// Readers: streaming document-order scans; every observed version must
	// be the seed multiset, in (parentId, pos) order.
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				n, posSum := 0, int64(0)
				lastPar, lastPos := int64(-1), int64(-1)
				_, err := db.QueryEach("SELECT parentId, pos FROM item ORDER BY parentId, pos", func(row []Value) error {
					par, pos := row[0].MustInt(), row[1].MustInt()
					if par < lastPar || (par == lastPar && pos < lastPos) {
						return fmt.Errorf("out of order: (%d,%d) after (%d,%d)", par, pos, lastPar, lastPos)
					}
					lastPar, lastPos = par, pos
					n++
					posSum += pos
					return nil
				})
				if err != nil {
					errs <- err
					return
				}
				if n != rows || posSum != wantPosSum {
					errs <- fmt.Errorf("reader observed uncommitted state: %d rows (want %d), pos sum %d (want %d)",
						n, rows, posSum, wantPosSum)
					return
				}
			}
		}()
	}

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got := dbDump(db); got != before {
		t.Errorf("state drifted across the stress run:\n--- before ---\n%s--- after ---\n%s", before, got)
	}
	// Snapshot/Restore still round-trips after the transaction history.
	snap := db.Snapshot()
	db.MustExec("DELETE FROM item WHERE parentId = 0")
	db.Restore(snap)
	if got := dbDump(db); got != before {
		t.Errorf("Snapshot/Restore after stress run:\n--- before ---\n%s--- after ---\n%s", before, got)
	}
}

// TestConcurrentReadersOnly: pure readers scale without tripping the race
// detector over the plan caches and stats (regression guard for the shared
// shape-cached AST).
func TestConcurrentReadersOnly(t *testing.T) {
	db := txnTestDB(t)
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for r := 0; r < 8; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				rows, err := db.Query("SELECT id, pos FROM item WHERE parentId = 2 ORDER BY pos")
				if err != nil {
					errs <- err
					return
				}
				if len(rows.Data) != 5 {
					errs <- fmt.Errorf("got %d rows, want 5", len(rows.Data))
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

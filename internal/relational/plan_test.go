package relational

import (
	"strings"
	"testing"
)

// TestExplainIndexScanSelection: an equality predicate on an indexed column
// must plan as an index probe, both for SELECT and for DML row matching.
func TestExplainIndexScanSelection(t *testing.T) {
	db := NewDB()
	db.MustExec(`CREATE TABLE t (k INTEGER, v VARCHAR)`)
	db.MustExec(`CREATE INDEX idx_k ON t (k)`)

	out, err := db.Explain(`SELECT v FROM t WHERE k = 7`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "IndexProbe t (k = 7)") {
		t.Errorf("equality on indexed column should plan an index probe:\n%s", out)
	}

	out, err = db.Explain(`DELETE FROM t WHERE k = 7`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "IndexProbe t (k = 7)") {
		t.Errorf("DML equality on indexed column should plan an index probe:\n%s", out)
	}

	// Unindexed column: full scan.
	out, err = db.Explain(`SELECT v FROM t WHERE v = 'x'`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Scan t") || strings.Contains(out, "IndexProbe") {
		t.Errorf("equality on unindexed column should plan a scan:\n%s", out)
	}
}

// TestExplainJoinOrdering: the greedy orderer seeds at the constant
// equality and follows indexed join edges, so a parent-child-grandchild
// join with a leaf predicate plans bottom-up as index probes.
func TestExplainJoinOrdering(t *testing.T) {
	db := NewDB()
	db.MustExec(`CREATE TABLE P (id INTEGER, Name VARCHAR)`)
	db.MustExec(`CREATE TABLE C (id INTEGER, parentId INTEGER, k VARCHAR)`)
	out, err := db.Explain(`SELECT P.Name FROM P, C WHERE C.parentId = P.id AND C.k = 'x'`)
	if err != nil {
		t.Fatal(err)
	}
	// C (holding the constant predicate) seeds; P is probed on its id.
	scanAt := strings.Index(out, "Scan C")
	probeAt := strings.Index(out, "IndexProbe P (id = C.parentId)")
	if scanAt < 0 || probeAt < 0 {
		t.Fatalf("expected leaf-first scan of C and id-probe of P:\n%s", out)
	}
	if probeAt > scanAt {
		t.Errorf("probe of P should be above (before) the scan of C in the pipeline:\n%s", out)
	}
}

// TestExplainHashJoin: an equality join with no supporting index plans as a
// hash join rather than a repeated scan.
func TestExplainHashJoin(t *testing.T) {
	db := NewDB()
	db.MustExec(`CREATE TABLE a (x INTEGER)`)
	db.MustExec(`CREATE TABLE b (y INTEGER)`)
	out, err := db.Explain(`SELECT a.x FROM a, b WHERE b.y = a.x`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "HashJoin b (y = a.x)") {
		t.Errorf("unindexed equality join should plan a hash join:\n%s", out)
	}
}

// TestAutoIndexOnKeyColumns: CREATE TABLE indexes declared key/parent-ID
// columns automatically.
func TestAutoIndexOnKeyColumns(t *testing.T) {
	db := NewDB()
	db.MustExec(`CREATE TABLE n (id INTEGER, parentId INTEGER, v VARCHAR)`)
	cols := db.Table("n").IndexedColumns()
	if len(cols) != 2 || cols[0] != "id" || cols[1] != "parentId" {
		t.Errorf("auto-indexed columns = %v, want [id parentId]", cols)
	}
	db.MustExec(`CREATE TABLE plain (a INTEGER, b VARCHAR)`)
	if cols := db.Table("plain").IndexedColumns(); len(cols) != 0 {
		t.Errorf("plain table should have no auto-indexes, got %v", cols)
	}
}

// TestPlanCacheHitMiss: statements differing only in literals share one
// cached plan.
func TestPlanCacheHitMiss(t *testing.T) {
	db := NewDB()
	db.MustExec(`CREATE TABLE t (k INTEGER, v VARCHAR)`)
	db.ResetStats()
	db.MustExec(`INSERT INTO t VALUES (1, 'a')`)
	db.MustExec(`INSERT INTO t VALUES (2, 'b')`)
	db.MustExec(`INSERT INTO t VALUES (3, 'c')`)
	st := db.Stats()
	if st.PlanCacheMisses != 1 || st.PlanCacheHits != 2 {
		t.Errorf("insert template: hits=%d misses=%d, want 2/1", st.PlanCacheHits, st.PlanCacheMisses)
	}
	db.ResetStats()
	for _, k := range []string{"1", "2", "3"} {
		if _, err := db.Query(`SELECT v FROM t WHERE k = ` + k); err != nil {
			t.Fatal(err)
		}
	}
	st = db.Stats()
	if st.PlanCacheMisses != 1 || st.PlanCacheHits != 2 {
		t.Errorf("select template: hits=%d misses=%d, want 2/1", st.PlanCacheHits, st.PlanCacheMisses)
	}
}

// TestPreparedStatements: the explicit Prepare/Exec/Query API with `?`
// parameters.
func TestPreparedStatements(t *testing.T) {
	db := NewDB()
	db.MustExec(`CREATE TABLE t (k INTEGER, v VARCHAR)`)
	ins, err := db.Prepare(`INSERT INTO t VALUES (?, ?)`)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if _, err := ins.Exec(Int(int64(i)), Text("v")); err != nil {
			t.Fatal(err)
		}
	}
	sel, err := db.Prepare(`SELECT v FROM t WHERE k = ?`)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := sel.Query(Int(int64(2)))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Data) != 1 || rows.Data[0][0] != Text("v") {
		t.Errorf("prepared query = %v", rows.Data)
	}
	if _, err := sel.Query(); err == nil {
		t.Error("arg count mismatch should fail")
	}
	if _, err := ins.Query(Int(int64(1)), Text("x")); err == nil {
		t.Error("Query on a non-SELECT should fail")
	}
}

// TestHashJoinMatchesIndexJoin: the same equality join must return the same
// multiset whether executed by index probe, hash join, or plain scans.
func TestHashJoinMatchesIndexJoin(t *testing.T) {
	db := NewDB()
	db.MustExec(`CREATE TABLE P (id INTEGER, tag VARCHAR)`)
	db.MustExec(`CREATE TABLE C (id INTEGER, parentId INTEGER)`)
	for i := 1; i <= 20; i++ {
		db.MustExec(`INSERT INTO P VALUES (` + FormatValue(Int(int64(i))) + `, 'p')`)
	}
	for i := 1; i <= 60; i++ {
		db.MustExec(`INSERT INTO C VALUES (` + FormatValue(Int(int64(100+i))) + `, ` + FormatValue(Int(int64(i%20+1))) + `)`)
	}
	const q = `SELECT P.id, C.id FROM P, C WHERE C.parentId = P.id ORDER BY 1, 2`

	db.ResetStats()
	indexed, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if st := db.Stats(); st.IndexProbes == 0 {
		t.Error("indexed join should use index probes")
	}

	db.Table("P").DropIndex("id")
	db.Table("C").DropIndex("parentId")
	db.ResetStats()
	hashed, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if st := db.Stats(); st.HashJoinBuilds == 0 {
		t.Error("unindexed equality join should build a hash table")
	}

	if len(indexed.Data) != 60 || len(hashed.Data) != len(indexed.Data) {
		t.Fatalf("row counts: indexed=%d hashed=%d, want 60", len(indexed.Data), len(hashed.Data))
	}
	for i := range indexed.Data {
		if string(appendRowKey(nil, indexed.Data[i])) != string(appendRowKey(nil, hashed.Data[i])) {
			t.Fatalf("row %d differs: indexed=%v hashed=%v", i, indexed.Data[i], hashed.Data[i])
		}
	}
}

// TestIndexMaintenance: secondary indexes stay consistent across insert,
// update, delete, and trigger-driven cascades.
func TestIndexMaintenance(t *testing.T) {
	db := NewDB()
	db.MustExec(`CREATE TABLE parent (id INTEGER)`)
	db.MustExec(`CREATE TABLE child (id INTEGER, parentId INTEGER)`)
	db.MustExec(`CREATE TRIGGER tr AFTER DELETE ON parent FOR EACH ROW DELETE FROM child WHERE parentId = OLD.id`)

	probeIDs := func(pid int64) string {
		rows, err := db.Query(`SELECT id FROM child WHERE parentId = ` + FormatValue(Int(pid)) + ` ORDER BY id`)
		if err != nil {
			t.Fatal(err)
		}
		var parts []string
		for _, r := range rows.Data {
			parts = append(parts, FormatValue(r[0]))
		}
		return strings.Join(parts, ",")
	}

	db.MustExec(`INSERT INTO parent VALUES (1), (2)`)
	db.MustExec(`INSERT INTO child VALUES (10, 1), (11, 1), (12, 2)`)
	if got := probeIDs(1); got != "10,11" {
		t.Errorf("after insert, probe(1) = %s", got)
	}

	// Update moves a child between buckets.
	db.MustExec(`UPDATE child SET parentId = 2 WHERE id = 11`)
	if got := probeIDs(1); got != "10" {
		t.Errorf("after update, probe(1) = %s", got)
	}
	if got := probeIDs(2); got != "11,12" {
		t.Errorf("after update, probe(2) = %s", got)
	}

	// Trigger-driven cascade unindexes the deleted children.
	db.ResetStats()
	db.MustExec(`DELETE FROM parent WHERE id = 2`)
	if st := db.Stats(); st.TriggerFirings != 1 {
		t.Errorf("trigger firings = %d", st.TriggerFirings)
	}
	if got := probeIDs(2); got != "" {
		t.Errorf("after cascade, probe(2) = %s", got)
	}
	if n := db.Table("child").RowCount(); n != 1 {
		t.Errorf("children left = %d, want 1", n)
	}
}

// TestPlanInvalidatedBySchemaChange: a cached statement template must
// replan after DROP/CREATE TABLE moves a column between tables — stale
// unqualified-name resolution would gate the predicate at the wrong join
// level and silently drop rows.
func TestPlanInvalidatedBySchemaChange(t *testing.T) {
	db := NewDB()
	db.MustExec(`CREATE TABLE p (id INTEGER, name VARCHAR)`)
	db.MustExec(`CREATE TABLE c (id INTEGER, parentId INTEGER)`)
	db.MustExec(`INSERT INTO p VALUES (1, 'a')`)
	db.MustExec(`INSERT INTO c VALUES (10, 1)`)
	const q = `SELECT c.id FROM p, c WHERE parentId = p.id AND name = 'a'`
	rows, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Data) != 1 {
		t.Fatalf("before schema change: %d rows, want 1", len(rows.Data))
	}
	// Recreate with `name` moved from p to c; the same SQL hits the shape
	// cache but must be replanned against the new schema.
	db.MustExec(`DROP TABLE p`)
	db.MustExec(`DROP TABLE c`)
	db.MustExec(`CREATE TABLE p (id INTEGER)`)
	db.MustExec(`CREATE TABLE c (id INTEGER, parentId INTEGER, name VARCHAR)`)
	db.MustExec(`INSERT INTO p VALUES (1)`)
	db.MustExec(`INSERT INTO c VALUES (10, 1, 'a')`)
	rows, err = db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Data) != 1 {
		t.Fatalf("after schema change: %d rows, want 1 (stale plan?)", len(rows.Data))
	}
}

// TestOrderByPositionalSurvivesCache: positional ORDER BY keys are plan
// structure and must not be lifted into parameters.
func TestOrderByPositionalSurvivesCache(t *testing.T) {
	db := NewDB()
	db.MustExec(`CREATE TABLE t (a INTEGER, b INTEGER)`)
	db.MustExec(`INSERT INTO t VALUES (2, 1), (1, 2)`)
	rows, err := db.Query(`SELECT a, b FROM t ORDER BY 2`)
	if err != nil {
		t.Fatal(err)
	}
	if rows.Data[0][0] != Int(2) || rows.Data[1][0] != Int(1) {
		t.Errorf("positional order = %v", rows.Data)
	}
	// Same shape with a different WHERE literal must still order by column
	// 2, not by a lifted parameter.
	rows, err = db.Query(`SELECT a, b FROM t WHERE a > 0 ORDER BY 2 DESC`)
	if err != nil {
		t.Fatal(err)
	}
	if rows.Data[0][0] != Int(1) {
		t.Errorf("positional desc order = %v", rows.Data)
	}
}

package relational

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
	"unicode/utf8"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokSymbol // punctuation and operators
	tokParam  // `?` placeholder
)

type token struct {
	kind tokenKind
	text string // upper-cased for idents' keyword matching happens via equalFold
	num  int64
	pos  int
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

// lexSQL tokenizes a SQL string.
func lexSQL(src string) ([]token, error) {
	l := &lexer{src: src, toks: make([]token, 0, len(src)/5+4)}
	for {
		l.skipSpace()
		if l.pos >= len(l.src) {
			l.toks = append(l.toks, token{kind: tokEOF, pos: l.pos})
			return l.toks, nil
		}
		start := l.pos
		c := l.src[l.pos]
		switch {
		case c == '\'':
			l.pos++
			var b strings.Builder
			for {
				if l.pos >= len(l.src) {
					return nil, fmt.Errorf("relational: unterminated string literal at %d", start)
				}
				if l.src[l.pos] == '\'' {
					if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
						b.WriteByte('\'')
						l.pos += 2
						continue
					}
					l.pos++
					break
				}
				b.WriteByte(l.src[l.pos])
				l.pos++
			}
			l.toks = append(l.toks, token{kind: tokString, text: b.String(), pos: start})
		case c >= '0' && c <= '9':
			for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
				l.pos++
			}
			n, err := strconv.ParseInt(l.src[start:l.pos], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("relational: bad number at %d: %v", start, err)
			}
			l.toks = append(l.toks, token{kind: tokNumber, num: n, text: l.src[start:l.pos], pos: start})
		case isSQLIdentStart(rune(c)):
			for l.pos < len(l.src) {
				r, size := utf8.DecodeRuneInString(l.src[l.pos:])
				if !isSQLIdentChar(r) {
					break
				}
				l.pos += size
			}
			l.toks = append(l.toks, token{kind: tokIdent, text: l.src[start:l.pos], pos: start})
		default:
			// Multi-char operators first.
			for _, op := range []string{"<>", "!=", "<=", ">="} {
				if strings.HasPrefix(l.src[l.pos:], op) {
					l.toks = append(l.toks, token{kind: tokSymbol, text: op, pos: start})
					l.pos += len(op)
					goto next
				}
			}
			switch c {
			case '?':
				l.toks = append(l.toks, token{kind: tokParam, text: "?", pos: start})
				l.pos++
			case '(', ')', ',', '.', '*', '=', '<', '>', '+', '-', '/', ';':
				l.toks = append(l.toks, token{kind: tokSymbol, text: string(c), pos: start})
				l.pos++
			default:
				return nil, fmt.Errorf("relational: unexpected character %q at %d", c, start)
			}
		next:
		}
	}
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == ' ' || c == '\t' || c == '\r' || c == '\n' {
			l.pos++
			continue
		}
		// -- line comments
		if c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-' {
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
			continue
		}
		return
	}
}

func isSQLIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isSQLIdentChar(r rune) bool {
	return r == '_' || r == '$' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

package relational

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/pager"
	"repro/internal/wal"
)

// Paged storage backend. A DB opened with Options.Storage == StoragePaged
// keeps each non-temp table's rows on fixed-size slotted heap pages
// (internal/pager) behind a shared buffer pool: a bounded number of pages
// are resident (decoded into t.rows slots) at a time, clean unpinned pages
// evict under a CLOCK sweep, and a dataset several times the pool size
// scans and joins under bounded memory. t.rows keeps its full rid-indexed
// length in paged mode — a nil slot means "not resident here" and the
// per-table directory (rid → page) distinguishes evicted from deleted —
// so every len(t.rows) rid-space invariant the memory backend relies on
// holds unchanged.
//
// Locking: the directory, page list, and page metadata are mutated only
// under the DB writer lock (mutations) or the pool mutex (residency
// transitions: fault, evict, pin). Readers run under the shared DB lock
// and may fault and evict concurrently, so every residency-sensitive slot
// access takes the pool mutex — except reads through a pageCursor, whose
// pinned page cannot evict, making its slots stable lock-free for the
// duration of the pin (the iterator pin/unpin contract: a levelIter pins
// the page under its position across Next and unpins at Close/abandon,
// mirroring the rowIter buffer-reuse rule that a row is only valid until
// the next Next/Close).
//
// Dirty pages are never evicted (no-steal) and are only written at
// checkpoint time, so the page files always hold exactly the state of the
// last checkpoint and the logical WAL tail replays on top of them with no
// double-apply hazard. See checkpointPaged for the dirty-flush protocol.

// StorageKind selects a row-storage backend for Open.
type StorageKind uint8

const (
	// StorageMemory keeps every table fully in memory (the default);
	// checkpoints serialize a whole-database snapshot.
	StorageMemory StorageKind = iota
	// StoragePaged stores non-temp tables on checksummed heap pages behind
	// the buffer pool; checkpoints write only dirty pages.
	StoragePaged
)

// defaultPoolPages bounds resident pages when Options.PoolPages is zero:
// 256 × 16 KiB = 4 MiB of hot rows, small enough that the
// larger-than-RAM tests actually evict, large enough that metadata fits.
const defaultPoolPages = 256

// pgDead marks a rid with no page — deleted (or never placed).
const pgDead = int32(-1)

// errCkptOpenTxn reports a paged checkpoint skipped because explicit
// transactions were open: the no-steal flush requires every resident page
// to hold only committed rows. The auto-checkpoint retries after the next
// commit; an explicit Checkpoint call surfaces it to the caller.
var errCkptOpenTxn = errors.New("relational: paged checkpoint requires no open transactions")

// pageInfo is the in-memory state of one heap page.
type pageInfo struct {
	id       int32
	resident bool
	dirty    bool
	// flushing marks pages whose checkpoint image has been captured but
	// not yet durably applied to the page file: they must not evict (a
	// refault would read the stale on-disk image) until the writes land.
	flushing bool
	pins     int32
	ref      bool
	// rids lists every rid ever placed on this page; dir[rid] == id
	// filters the ones that still live here (deletes and relocations
	// leave stale entries behind rather than compacting per mutation).
	rids []int32
	// est tracks the estimated encoded size (header included) driving
	// fill decisions; flush recomputes it exactly.
	est int
}

// pagedTable is the paged backend of one table.
type pagedTable struct {
	t   *Table
	db  *DB
	key string // lower-case table name; pool sweeps detect dropped tables
	// file is the backing page file; nil until the first flush (a table
	// that never checkpointed lives purely in dirty resident pages).
	file  *pager.File
	dir   []int32 // rid → page id, pgDead when the row is deleted
	pages []*pageInfo
	fill  *pageInfo // current insert target
	// gone marks the table dropped from db.tables (set under the DB writer
	// lock at drop time, cleared on rollback resurrection). Atomic because
	// pool sweeps and the checkpoint durable phase consult it without
	// holding the writer lock — reading db.tables there would race DDL.
	gone atomic.Bool
}

// pagePool is the DB-wide buffer pool: it bounds how many pages are
// resident across all paged tables and runs the CLOCK eviction sweep.
type pagePool struct {
	mu       sync.Mutex
	limit    int
	pageSize int
	resident int
	dirty    int
	clock    []poolFrame
	hand     int
	iobuf    []byte // fault read buffer, reused under mu
}

type poolFrame struct {
	pt *pagedTable
	pi *pageInfo
}

func newPagePool(limit, pageSize int) *pagePool {
	if limit <= 0 {
		limit = defaultPoolPages
	}
	if pageSize == 0 {
		pageSize = pager.DefaultPageSize
	}
	return &pagePool{limit: limit, pageSize: pageSize, iobuf: make([]byte, pageSize)}
}

func newPagedTable(db *DB, t *Table) *pagedTable {
	return &pagedTable{t: t, db: db, key: strings.ToLower(t.Name)}
}

// pagedFileName maps a table name to its page file, escaping bytes that
// are not portable filename characters.
func pagedFileName(key string) string {
	var b strings.Builder
	for i := 0; i < len(key); i++ {
		c := key[i]
		if c >= 'a' && c <= 'z' || c >= '0' && c <= '9' || c == '_' || c == '-' {
			b.WriteByte(c)
		} else {
			fmt.Fprintf(&b, "%%%02x", c)
		}
	}
	return b.String() + ".pages"
}

func (pg *pagedTable) filePath() string {
	return filepath.Join(pg.db.pagedDir, pagedFileName(pg.key))
}

// detached reports whether the table was dropped out from under its pool
// frames (DROP TABLE keeps the paged state intact so a transaction
// rollback can resurrect the table; the pool reaps frames lazily). It
// reads the atomic drop marker, not db.tables — callers run outside the
// DB writer lock.
func (pg *pagedTable) detached() bool {
	return pg.gone.Load()
}

// ---- residency: fault, evict, pin ----

// pagedFail records the first paged-storage I/O failure; every later
// statement on the DB fails rather than serve rows that may be missing.
func (db *DB) pagedFail(err error) {
	if db.pageErr.Load() == nil {
		e := fmt.Errorf("relational: paged storage failed (DB is poisoned): %w", err)
		db.pageErr.CompareAndSwap(nil, &e)
	}
}

// pagedErr returns the sticky paged-storage error, or nil.
func (db *DB) pagedErr() error {
	if p := db.pageErr.Load(); p != nil {
		return *p
	}
	return nil
}

// faultLocked reads one page from the table's file and re-populates its
// row slots. Caller holds pool.mu and has pinned pi against the eviction
// pressure the admission below can trigger.
func (p *pagePool) faultLocked(pg *pagedTable, pi *pageInfo) error {
	if pg.file == nil {
		return fmt.Errorf("relational: table %s page %d non-resident with no backing file", pg.t.Name, pi.id)
	}
	if err := pg.file.ReadPage(uint32(pi.id), p.iobuf); err != nil {
		return err
	}
	err := pager.DecodePage(p.iobuf, uint32(pi.id), func(rid uint64, payload []byte) error {
		r := int(rid)
		if r >= len(pg.dir) || pg.dir[r] != pi.id {
			// The rid moved or died since this image was written; its
			// current page owns it now.
			return nil
		}
		row, err := decodeRowBytes(payload)
		if err != nil {
			return err
		}
		pg.t.rows[r] = row
		return nil
	})
	if err != nil {
		return err
	}
	pg.db.stats.PageReads.Add(1)
	pg.db.met.pageReads.Add(1)
	p.admitLocked(pg, pi)
	return nil
}

// admitLocked marks a page resident, registers its clock frame, and
// applies eviction pressure. Caller holds pool.mu.
func (p *pagePool) admitLocked(pg *pagedTable, pi *pageInfo) {
	if pi.resident {
		return
	}
	pi.resident = true
	p.resident++
	p.clock = append(p.clock, poolFrame{pt: pg, pi: pi})
	p.evictPressureLocked()
}

// evictPressureLocked evicts clean unpinned pages until the pool is back
// within its limit or no victim exists (everything pinned or dirty — the
// pool then runs over budget rather than blocking; dirty pressure is what
// the checkpoint trigger relieves).
func (p *pagePool) evictPressureLocked() {
	for p.resident > p.limit {
		if !p.evictOneLocked() {
			return
		}
	}
}

// evictOneLocked runs one CLOCK sweep: a referenced page gets a second
// chance (ref cleared), a pinned, dirty, or flushing page is skipped, and
// the first cold clean page found is evicted — its row slots nil out and
// the decoded rows become garbage once no reader still references them.
func (p *pagePool) evictOneLocked() bool {
	attempts := 2*len(p.clock) + 2
	for i := 0; i < attempts && len(p.clock) > 0; i++ {
		if p.hand >= len(p.clock) {
			p.hand = 0
		}
		fr := p.clock[p.hand]
		pi := fr.pi
		switch {
		case !pi.resident || fr.pt.detached():
			// Stale frame (already evicted, or its table was dropped):
			// unregister in place.
			if fr.pt.detached() && pi.resident {
				p.releaseFrameLocked(fr)
			}
			last := len(p.clock) - 1
			p.clock[p.hand] = p.clock[last]
			p.clock = p.clock[:last]
		case pi.pins > 0 || pi.dirty || pi.flushing:
			p.hand++
		case pi.ref:
			pi.ref = false
			p.hand++
		default:
			for _, rid := range pi.rids {
				if int(rid) < len(fr.pt.dir) && fr.pt.dir[rid] == pi.id {
					fr.pt.t.rows[rid] = nil
				}
			}
			pi.resident = false
			p.resident--
			fr.pt.db.stats.Evictions.Add(1)
			fr.pt.db.met.evictions.Add(1)
			last := len(p.clock) - 1
			p.clock[p.hand] = p.clock[last]
			p.clock = p.clock[:last]
			return true
		}
	}
	return false
}

// releaseFrameLocked force-drops a dropped table's page from the pool
// accounting (slots and dirtiness no longer matter — the table is gone).
func (p *pagePool) releaseFrameLocked(fr poolFrame) {
	if fr.pi.resident {
		fr.pi.resident = false
		p.resident--
	}
	if fr.pi.dirty {
		fr.pi.dirty = false
		p.dirty--
	}
}

// rowRef returns the current row slot for rid, faulting its page in if
// needed. The returned slice stays valid after the page evicts (readers
// hold it; the garbage collector settles lifetime) — only the slot itself
// is unstable, which is why this accessor re-reads it under the pool
// mutex.
func (pg *pagedTable) rowRef(rid int) []Value {
	if rid < 0 || rid >= len(pg.dir) {
		return nil
	}
	pid := pg.dir[rid]
	if pid < 0 {
		return nil
	}
	pi := pg.pages[pid]
	p := pg.db.pool
	p.mu.Lock()
	if !pi.resident {
		pi.pins++
		err := p.faultLocked(pg, pi)
		pi.pins--
		if err != nil {
			p.mu.Unlock()
			pg.db.pagedFail(err)
			return nil
		}
		pg.db.stats.PoolMisses.Add(1)
		pg.db.met.poolMisses.Add(1)
	} else {
		pg.db.stats.PoolHits.Add(1)
		pg.db.met.poolHits.Add(1)
	}
	pi.ref = true
	row := pg.t.rows[rid]
	p.mu.Unlock()
	return row
}

// pageCursor pins one page at a time for a sequential or probing reader.
// While the pin is held, the pinned page's slots are stable without
// taking the pool mutex; crossing a page boundary re-pins. Abandoning a
// cursor without release would leak the pin — Close paths release, and
// DB.Close audits that no pins remain.
type pageCursor struct {
	t  *Table
	pi *pageInfo
}

// repin swaps the cursor's pin to page pid, faulting it in if needed.
func (c *pageCursor) repin(t *Table, pid int32) bool {
	pg := t.pg
	p := pg.db.pool
	p.mu.Lock()
	pi := pg.pages[pid]
	pi.pins++
	if !pi.resident {
		if err := p.faultLocked(pg, pi); err != nil {
			pi.pins--
			p.mu.Unlock()
			pg.db.pagedFail(err)
			return false
		}
		pg.db.stats.PoolMisses.Add(1)
		pg.db.met.poolMisses.Add(1)
	} else {
		pg.db.stats.PoolHits.Add(1)
		pg.db.met.poolHits.Add(1)
	}
	pi.ref = true
	if c.pi != nil {
		c.pi.pins--
	}
	p.mu.Unlock()
	c.t, c.pi = t, pi
	return true
}

// release drops the cursor's pin. Safe to call repeatedly.
func (c *pageCursor) release() {
	if c.pi == nil {
		return
	}
	p := c.t.pg.db.pool
	p.mu.Lock()
	c.pi.pins--
	p.mu.Unlock()
	c.t, c.pi = nil, nil
}

// visibleAt returns the version of row rid visible to sn, pinning the
// row's page through the cursor. The common path — same page as the last
// call — is a bounds check and two compares, no lock.
func (c *pageCursor) visibleAt(t *Table, rid int, sn snapshot) []Value {
	pg := t.pg
	if rid < 0 || rid >= len(pg.dir) {
		return nil
	}
	pid := pg.dir[rid]
	if pid < 0 {
		return nil
	}
	if c.pi == nil || c.t != t || c.pi.id != pid {
		if !c.repin(t, pid) {
			return nil
		}
	}
	if t.vers == 0 {
		return t.rows[rid]
	}
	return t.visibleRowPinned(rid, sn)
}

// ---- table mutation hooks ----
// All run under the DB writer lock; they take the pool mutex for the
// fields concurrent readers observe.

// pgPlace assigns a newly inserted (or rollback-restored) row to a page.
// The fill page is always dirty and therefore resident and unevictable,
// so the row's slot is stable for the rest of the statement.
func (t *Table) pgPlace(rid int, row []Value) {
	pg := t.pg
	if pg == nil {
		return
	}
	sz := pager.RecordSize(uint64(rid), encodedRowSize(row))
	p := pg.db.pool
	p.mu.Lock()
	for len(pg.dir) <= rid {
		pg.dir = append(pg.dir, pgDead)
	}
	pi := pg.fill
	if pi == nil || !pi.resident || pi.flushing || pi.est+sz > p.pageSize {
		pi = pg.newPageLocked()
		pg.fill = pi
	}
	if !pi.dirty {
		pi.dirty = true
		p.dirty++
	}
	pi.rids = append(pi.rids, int32(rid))
	pi.est += sz
	pg.dir[rid] = pi.id
	p.mu.Unlock()
}

// newPageLocked appends a fresh resident page. It is born dirty — a page
// only comes into existence to receive a row, and marking it dirty before
// admission keeps the eviction pressure admission triggers from evicting
// the page out from under its first insert. Caller holds pool.mu.
func (pg *pagedTable) newPageLocked() *pageInfo {
	p := pg.db.pool
	pi := &pageInfo{id: int32(len(pg.pages)), est: pager.HeaderSize, dirty: true}
	p.dirty++
	pg.pages = append(pg.pages, pi)
	p.admitLocked(pg, pi)
	return pi
}

// pgRowFits rejects a row whose encoded record cannot fit an empty page.
// pgPlace would happily admit one (fill accounting just opens a fresh
// page), but no flush could ever pack it: the checkpoint's relocation
// loop would allocate pages forever without making progress. Mutations
// must check before committing the row to the table.
func (t *Table) pgRowFits(rid int, row []Value) error {
	pg := t.pg
	if pg == nil {
		return nil
	}
	limit := pg.db.pool.pageSize - pager.HeaderSize
	if sz := pager.RecordSize(uint64(rid), encodedRowSize(row)); sz > limit {
		return fmt.Errorf("relational: table %s row encodes to %d bytes, exceeding the %d-byte record capacity of a %d-byte page",
			t.Name, sz, limit, pg.db.pool.pageSize)
	}
	return nil
}

// pgMark dirties the page under rid before its row mutates in place.
// Call it immediately after the residency-establishing read: once dirty,
// the page cannot evict, so the mutation and the slot stay coherent.
func (t *Table) pgMark(rid int) {
	pg := t.pg
	if pg == nil {
		return
	}
	if rid < 0 || rid >= len(pg.dir) || pg.dir[rid] < 0 {
		return
	}
	pi := pg.pages[pg.dir[rid]]
	p := pg.db.pool
	p.mu.Lock()
	if !pi.dirty {
		pi.dirty = true
		p.dirty++
	}
	p.mu.Unlock()
}

// pgDrop marks rid's row physically deleted: the directory entry dies
// and the page (which still holds the stale record until the next flush
// rewrites it) goes dirty.
func (t *Table) pgDrop(rid int) {
	pg := t.pg
	if pg == nil {
		return
	}
	if rid < 0 || rid >= len(pg.dir) || pg.dir[rid] < 0 {
		return
	}
	pi := pg.pages[pg.dir[rid]]
	p := pg.db.pool
	p.mu.Lock()
	pg.dir[rid] = pgDead
	if !pi.dirty {
		pi.dirty = true
		p.dirty++
	}
	p.mu.Unlock()
}

// pgTruncate shrinks the rid space after a rolled-back insert suffix.
func (t *Table) pgTruncate(n int) {
	pg := t.pg
	if pg == nil || len(pg.dir) <= n {
		return
	}
	pg.dir = pg.dir[:n]
}

// pagedScanAll walks every live physical row through a page cursor;
// index builds and other whole-table passes use it (no visibility
// filtering — the physical current rows).
func (t *Table) pagedScanAll(fn func(rid int, row []Value)) {
	var c pageCursor
	defer c.release()
	pg := t.pg
	for rid := 0; rid < len(t.rows) && rid < len(pg.dir); rid++ {
		pid := pg.dir[rid]
		if pid < 0 {
			continue
		}
		if c.pi == nil || c.pi.id != pid {
			if !c.repin(t, pid) {
				return
			}
		}
		if row := t.rows[rid]; row != nil {
			fn(rid, row)
		}
	}
}

// liveAt reports whether rid refers to a live row without requiring its
// page to be resident.
func (t *Table) liveAt(rid int) bool {
	if t.pg != nil {
		return rid >= 0 && rid < len(t.pg.dir) && t.pg.dir[rid] >= 0
	}
	return rid >= 0 && rid < len(t.rows) && t.rows[rid] != nil
}

// curRow returns the current row slot, faulting the page in paged mode.
// Memory mode is a plain slice load.
func (t *Table) curRow(rid int) []Value {
	if t.pg != nil {
		return t.pg.rowRef(rid)
	}
	return t.rows[rid]
}

// ---- row record codec ----
// One heap-page record is the row's column count followed by the log's
// tagged value encoding — the same closed NULL/int/string domain the WAL
// and snapshot codecs share.

func encodeRowInto(b []byte, row []Value) ([]byte, error) {
	b = binary.AppendUvarint(b, uint64(len(row)))
	var err error
	for _, v := range row {
		if b, err = wal.AppendValue(b, walVal(v)); err != nil {
			return nil, err
		}
	}
	return b, nil
}

func decodeRowBytes(b []byte) ([]Value, error) {
	n, sz := binary.Uvarint(b)
	if sz <= 0 || n > uint64(len(b)) {
		return nil, fmt.Errorf("relational: bad page record column count")
	}
	b = b[sz:]
	row := make([]Value, n)
	for i := range row {
		wv, rest, err := wal.ReadValue(b)
		if err != nil {
			return nil, err
		}
		b = rest
		if row[i], err = fromWalVal(wv); err != nil {
			return nil, err
		}
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("relational: %d trailing bytes in page record", len(b))
	}
	return row, nil
}

// encodedRowSize returns the record payload size encodeRowInto would
// produce, allocation-free (fill decisions run per insert).
func encodedRowSize(row []Value) int {
	n := uvarintSize(uint64(len(row)))
	for _, v := range row {
		switch v.kind {
		case KindInt:
			// Zigzag varint, as binary.AppendVarint encodes.
			n += 1 + uvarintSize(uint64(v.i)<<1^uint64(v.i>>63))
		case KindText:
			n += 1 + uvarintSize(uint64(len(v.s))) + len(v.s)
		default:
			n++
		}
	}
	return n
}

func uvarintSize(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// ---- checkpoint v2: dirty-page flush with doublewrite ----

// pagedImage is one captured page image bound for the table's page file.
type pagedImage struct {
	pg  *pagedTable
	pid int32
	img []byte
}

// pagedTableMeta is one table's line in the v2 checkpoint payload.
type pagedTableMeta struct {
	name   string
	nrows  int // rid space (len(t.rows)), preserving trailing tombstones
	npages int
}

// capturePagedLocked encodes every dirty page's current rows into
// images, relocating rows that outgrew their page, and marks the pages
// clean+flushing. Caller holds the writer lock with no open snapshots,
// so every captured row is committed state. Returns the images and the
// per-table metadata the checkpoint payload carries.
func (db *DB) capturePagedLocked() ([]pagedImage, []pagedTableMeta, error) {
	p := db.pool
	p.mu.Lock()
	defer p.mu.Unlock()
	var images []pagedImage
	names := make([]string, 0, len(db.tables))
	for key := range db.tables {
		names = append(names, key)
	}
	// Deterministic order keeps the doublewrite layout reproducible.
	sort.Strings(names)
	metas := make([]pagedTableMeta, 0, len(names))
	var scratch []byte
	for _, key := range names {
		t := db.tables[key]
		pg := t.pg
		if pg == nil {
			continue
		}
		b := pager.NewBuilder(p.pageSize, 0)
		// pg.pages can grow mid-loop (relocations append); index explicitly.
		for i := 0; i < len(pg.pages); i++ {
			pi := pg.pages[i]
			if !pi.dirty {
				continue
			}
			b.Reset(uint32(pi.id))
			live := pi.rids[:0:0]
			est := pager.HeaderSize
			var overflow []int32
			for _, rid := range pi.rids {
				if int(rid) >= len(pg.dir) || pg.dir[rid] != pi.id {
					continue // deleted or relocated away
				}
				row := t.rows[rid]
				if row == nil {
					return nil, nil, fmt.Errorf("relational: dirty page %s/%d lost row %d", t.Name, pi.id, rid)
				}
				var err error
				scratch, err = encodeRowInto(scratch[:0], row)
				if err != nil {
					return nil, nil, err
				}
				if !b.Fits(uint64(rid), len(scratch)) {
					if pager.RecordSize(uint64(rid), len(scratch)) > p.pageSize-pager.HeaderSize {
						// The record cannot fit any page: relocating it
						// would allocate fresh pages forever. Mutations
						// reject such rows (pgRowFits), so reaching this is
						// a bug or an unchecked bulk-load path — fail the
						// checkpoint rather than spin.
						return nil, nil, fmt.Errorf("relational: table %s row %d record of %d bytes exceeds page capacity %d",
							t.Name, rid, len(scratch), p.pageSize-pager.HeaderSize)
					}
					// The row grew past this page's free space: relocate
					// it to a fresh page, captured later in this loop.
					overflow = append(overflow, rid)
					continue
				}
				b.Add(uint64(rid), scratch)
				live = append(live, rid)
				est += pager.RecordSize(uint64(rid), len(scratch))
			}
			for _, rid := range overflow {
				npi := pg.fill
				sz := pager.RecordSize(uint64(rid), encodedRowSize(t.rows[rid]))
				if npi == nil || !npi.dirty || npi.est+sz > p.pageSize {
					npi = pg.newPageLocked() // born dirty
					pg.fill = npi
				}
				npi.rids = append(npi.rids, rid)
				npi.est += sz
				pg.dir[rid] = npi.id
			}
			img := make([]byte, p.pageSize)
			copy(img, b.Seal())
			images = append(images, pagedImage{pg: pg, pid: pi.id, img: img})
			pi.rids = live
			pi.est = est
			pi.dirty = false
			p.dirty--
			pi.flushing = true
		}
		metas = append(metas, pagedTableMeta{name: t.Name, nrows: len(t.rows), npages: len(pg.pages)})
	}
	return images, metas, nil
}

// finishFlushLocked clears the flushing marks after the images are
// durable (ok) or re-dirties the pages after a failed flush so the next
// checkpoint recaptures them (a page mutated meanwhile is already dirty
// again and stays so).
func (db *DB) finishFlush(images []pagedImage, ok bool) {
	p := db.pool
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, im := range images {
		pi := im.pg.pages[im.pid]
		pi.flushing = false
		if !ok && !pi.dirty {
			pi.dirty = true
			p.dirty++
		}
	}
}

// overLimit reports whether resident pages exceed the pool budget —
// after a bulk recovery replay this is the signal to checkpoint so dirty
// pages become clean and evictable.
func (p *pagePool) overLimit() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.resident > p.limit
}

// checkpointPaged is Checkpoint's paged form: capture dirty-page images
// under the writer lock, then — outside the lock — make them durable via
// the doublewrite buffer, apply them in place, and write the (small) v2
// checkpoint marker. Crash at any point recovers: before the doublewrite
// rename the old checkpoint plus the intact WAL cover everything; after
// it, recovery re-applies the complete doublewrite (fixing torn page
// writes) and re-stamps the marker.
func (db *DB) checkpointPaged() error {
	// One paged checkpoint at a time, and never concurrent with a Restore:
	// the durable phase below runs outside db.mu, and finishFlush's page
	// lookups assume pg.pages kept the captured layout.
	db.pagedCkptMu.Lock()
	defer db.pagedCkptMu.Unlock()
	db.mu.Lock()
	if len(db.snaps) > 0 || db.sqlTx.Load() != nil {
		db.mu.Unlock()
		return errCkptOpenTxn
	}
	if err := db.pagedErr(); err != nil {
		db.mu.Unlock()
		return err
	}
	// Collapse committed version chains first: with no snapshots open the
	// vacuum horizon is unbounded, so committed-deleted rows come out of
	// their pages (dirtying them) and every captured page carries exactly
	// the committed current state — page files never need version metadata.
	db.vacuumPendingLocked()
	images, metas, err := db.capturePagedLocked()
	if err != nil {
		db.mu.Unlock()
		return err
	}
	ddl := make([]string, len(db.ddlHist))
	for i, e := range db.ddlHist {
		ddl[i] = e.sql
	}
	lsn := db.wal.LastLSN()
	db.mu.Unlock()

	err = db.writePagedCheckpoint(lsn, ddl, metas, images)
	db.finishFlush(images, err == nil)
	if err == nil {
		// The flush is what makes an over-budget pool shrinkable again
		// (dirty pages pin themselves in memory); sweep now rather than
		// waiting for the next admission to notice.
		db.pool.mu.Lock()
		db.pool.evictPressureLocked()
		db.pool.mu.Unlock()
	}
	return err
}

func (db *DB) testCkptHook(stage string) error {
	if db.ckptHook != nil {
		return db.ckptHook(stage)
	}
	return nil
}

// writePagedCheckpoint runs the durable phase: doublewrite file, in-place
// page writes, WAL checkpoint marker, doublewrite removal. On error the
// doublewrite file is left in place when it was already durable — the
// next recovery completes the checkpoint from it.
func (db *DB) writePagedCheckpoint(lsn uint64, ddl []string, metas []pagedTableMeta, images []pagedImage) error {
	payload := encodePagedPayload(db.pool.pageSize, ddl, metas)
	if err := db.writeDoublewrite(lsn, payload, images); err != nil {
		return err
	}
	if err := db.testCkptHook("dw-durable"); err != nil {
		return err
	}
	// Doublewrite is durable: in-place writes are now safe against tears.
	p := db.pool
	var files []*pager.File
	for i, im := range images {
		p.mu.Lock()
		dropped := im.pg.detached()
		if !dropped && im.pg.file == nil {
			f, err := pager.CreateFile(im.pg.filePath(), p.pageSize)
			if err != nil {
				p.mu.Unlock()
				return err
			}
			im.pg.file = f
		}
		f := im.pg.file
		p.mu.Unlock()
		if dropped {
			continue
		}
		if err := db.testCkptHook(fmt.Sprintf("page-write:%d", i)); err != nil {
			// A test-injected tear: write a partial image, then fail as a
			// crash would.
			f.WriteAt(im.img[:p.pageSize/3], int64(im.pid)*int64(p.pageSize))
			return err
		}
		if err := f.WritePage(uint32(im.pid), im.img); err != nil {
			return err
		}
		db.stats.PageWrites.Add(1)
		db.met.pageWrites.Add(1)
		db.stats.DirtyFlushes.Add(1)
		db.met.dirtyFlushes.Add(1)
		files = append(files, f)
	}
	seen := map[*pager.File]bool{}
	for _, f := range files {
		if seen[f] {
			continue
		}
		seen[f] = true
		if err := f.Sync(); err != nil {
			return err
		}
	}
	if err := db.testCkptHook("pages-durable"); err != nil {
		return err
	}
	if err := db.wal.WriteCheckpoint(lsn, payload); err != nil {
		return err
	}
	if err := db.testCkptHook("marked"); err != nil {
		return err
	}
	os.Remove(filepath.Join(db.pagedDir, dwFileName))
	return nil
}

// ---- doublewrite buffer ----
// dw.buf is a complete pending checkpoint: the marker payload plus every
// page image, CRC-framed as one unit via write-to-temp + fsync + rename.
// Recovery finding a valid dw.buf finishes the checkpoint (idempotently:
// images re-apply byte-identically); a torn dw.tmp or missing dw.buf
// means the checkpoint never started mattering.

const dwFileName = "dw.buf"
const dwMagic = "XDW1"

func encodeDoublewrite(lsn uint64, payload []byte, images []pagedImage) []byte {
	b := []byte(dwMagic)
	b = binary.BigEndian.AppendUint64(b, lsn)
	b = binary.AppendUvarint(b, uint64(len(payload)))
	b = append(b, payload...)
	b = binary.AppendUvarint(b, uint64(len(images)))
	for _, im := range images {
		b = binary.AppendUvarint(b, uint64(len(im.pg.key)))
		b = append(b, im.pg.key...)
		b = binary.AppendUvarint(b, uint64(im.pid))
		b = append(b, im.img...)
	}
	// Whole-file checksum after the magic, stamped into a trailer.
	return binary.BigEndian.AppendUint32(b, crcOf(b[len(dwMagic):]))
}

type dwImage struct {
	table string
	pid   int32
	img   []byte
}

// decodeDoublewrite validates and parses a doublewrite file. Any
// corruption (including a torn page image inside) fails the whole file.
func decodeDoublewrite(b []byte, pageSize int) (lsn uint64, payload []byte, images []dwImage, err error) {
	bad := func(why string) (uint64, []byte, []dwImage, error) {
		return 0, nil, nil, fmt.Errorf("relational: invalid doublewrite buffer: %s", why)
	}
	if len(b) < len(dwMagic)+12 || string(b[:len(dwMagic)]) != dwMagic {
		return bad("short or bad magic")
	}
	body, trailer := b[len(dwMagic):len(b)-4], b[len(b)-4:]
	if crcOf(body) != binary.BigEndian.Uint32(trailer) {
		return bad("checksum mismatch")
	}
	lsn = binary.BigEndian.Uint64(body)
	body = body[8:]
	pl, n := binary.Uvarint(body)
	if n <= 0 || pl > uint64(len(body)-n) {
		return bad("payload length")
	}
	payload = body[n : n+int(pl)]
	body = body[n+int(pl):]
	count, n := binary.Uvarint(body)
	if n <= 0 || count > uint64(len(body)) {
		return bad("image count")
	}
	body = body[n:]
	for i := uint64(0); i < count; i++ {
		nl, n := binary.Uvarint(body)
		if n <= 0 || nl > uint64(len(body)-n) {
			return bad("table name")
		}
		name := string(body[n : n+int(nl)])
		body = body[n+int(nl):]
		pid, n := binary.Uvarint(body)
		if n <= 0 || len(body)-n < pageSize {
			return bad("page image")
		}
		images = append(images, dwImage{table: name, pid: int32(pid), img: body[n : n+pageSize]})
		body = body[n+pageSize:]
	}
	if len(body) != 0 {
		return bad("trailing bytes")
	}
	return lsn, payload, images, nil
}

func (db *DB) writeDoublewrite(lsn uint64, payload []byte, images []pagedImage) error {
	data := encodeDoublewrite(lsn, payload, images)
	tmp := filepath.Join(db.pagedDir, "dw.tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, filepath.Join(db.pagedDir, dwFileName)); err != nil {
		os.Remove(tmp)
		return err
	}
	syncDirBestEffort(db.pagedDir)
	for range images {
		db.stats.PageWrites.Add(1)
		db.met.pageWrites.Add(1)
	}
	return nil
}

// recoverDoublewrite completes a checkpoint interrupted between its
// doublewrite rename and its marker: re-apply every page image, fsync,
// re-stamp the marker, and remove the buffer. A torn or absent buffer
// means nothing to do (the old checkpoint + WAL cover recovery).
func (db *DB) recoverDoublewrite(l *wal.Log) error {
	path := filepath.Join(db.pagedDir, dwFileName)
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		os.Remove(filepath.Join(db.pagedDir, "dw.tmp"))
		return nil
	}
	if err != nil {
		return err
	}
	// Page size rides in the payload; peek it before decoding images.
	ps := peekPagedPageSize(data)
	if ps == 0 {
		// Torn buffer: the checkpoint never became the recovery source.
		os.Remove(path)
		return nil
	}
	lsn, payload, images, err := decodeDoublewrite(data, ps)
	if err != nil {
		os.Remove(path)
		return nil
	}
	files := map[string]*pager.File{}
	defer func() {
		for _, f := range files {
			f.Close()
		}
	}()
	for _, im := range images {
		f := files[im.table]
		if f == nil {
			f, err = pager.OpenFile(filepath.Join(db.pagedDir, pagedFileName(im.table)), ps)
			if err != nil {
				return err
			}
			files[im.table] = f
		}
		if err := f.WritePage(uint32(im.pid), im.img); err != nil {
			return err
		}
	}
	for _, f := range files {
		if err := f.Sync(); err != nil {
			return err
		}
	}
	if err := l.WriteCheckpoint(lsn, payload); err != nil {
		return err
	}
	os.Remove(path)
	syncDirBestEffort(db.pagedDir)
	return nil
}

// peekPagedPageSize extracts the page size from a doublewrite file's
// embedded v2 payload without full validation (0 when unreadable).
func peekPagedPageSize(b []byte) int {
	if len(b) < len(dwMagic)+12 {
		return 0
	}
	body := b[len(dwMagic)+8:]
	pl, n := binary.Uvarint(body)
	if n <= 0 || pl > uint64(len(body)-n) {
		return 0
	}
	payload := body[n : n+int(pl)]
	ps, _, _, err := decodePagedPayload(payload)
	if err != nil {
		return 0
	}
	return ps
}

// ---- checkpoint payload v2 ----
// "RCKP2", uvarint page size, uvarint DDL count + entries (as v1), then
// uvarint table count and per table: name, rid-space size, page count.
// The page data itself lives in the page files — this marker stays small
// no matter how large the database is.

const ckptMagicV2 = "RCKP2"

func encodePagedPayload(pageSize int, ddl []string, metas []pagedTableMeta) []byte {
	b := []byte(ckptMagicV2)
	b = binary.AppendUvarint(b, uint64(pageSize))
	b = binary.AppendUvarint(b, uint64(len(ddl)))
	for _, sql := range ddl {
		b = binary.AppendUvarint(b, uint64(len(sql)))
		b = append(b, sql...)
	}
	b = binary.AppendUvarint(b, uint64(len(metas)))
	for _, m := range metas {
		b = binary.AppendUvarint(b, uint64(len(m.name)))
		b = append(b, m.name...)
		b = binary.AppendUvarint(b, uint64(m.nrows))
		b = binary.AppendUvarint(b, uint64(m.npages))
	}
	return b
}

func decodePagedPayload(data []byte) (pageSize int, ddl []string, metas []pagedTableMeta, err error) {
	bad := func(why string) (int, []string, []pagedTableMeta, error) {
		return 0, nil, nil, fmt.Errorf("relational: bad v2 checkpoint payload: %s", why)
	}
	if len(data) < len(ckptMagicV2) || string(data[:len(ckptMagicV2)]) != ckptMagicV2 {
		return bad("magic")
	}
	b := data[len(ckptMagicV2):]
	ps, n := binary.Uvarint(b)
	if n <= 0 || ps < uint64(pager.MinPageSize) || ps > 1<<26 {
		return bad("page size")
	}
	b = b[n:]
	count, n := binary.Uvarint(b)
	if n <= 0 || count > uint64(len(b)) {
		return bad("DDL count")
	}
	b = b[n:]
	for i := uint64(0); i < count; i++ {
		ln, n := binary.Uvarint(b)
		if n <= 0 || ln > uint64(len(b)-n) {
			return bad("DDL entry")
		}
		ddl = append(ddl, string(b[n:n+int(ln)]))
		b = b[n+int(ln):]
	}
	count, n = binary.Uvarint(b)
	if n <= 0 || count > uint64(len(b)) {
		return bad("table count")
	}
	b = b[n:]
	for i := uint64(0); i < count; i++ {
		nl, n := binary.Uvarint(b)
		if n <= 0 || nl > uint64(len(b)-n) {
			return bad("table name")
		}
		m := pagedTableMeta{name: string(b[n : n+int(nl)])}
		b = b[n+int(nl):]
		v, n := binary.Uvarint(b)
		if n <= 0 {
			return bad("row count")
		}
		m.nrows = int(v)
		b = b[n:]
		v, n = binary.Uvarint(b)
		if n <= 0 {
			return bad("page count")
		}
		m.npages = int(v)
		b = b[n:]
		metas = append(metas, m)
	}
	if len(b) != 0 {
		return bad("trailing bytes")
	}
	return int(ps), ddl, metas, nil
}

// ---- recovery attach ----

// attachPagedTables loads the checkpointed page files described by metas
// into the (already schema-recovered) tables: directories and page
// metadata rebuild from the files, rows stream through the pool — which
// evicts as it fills, so attaching a database much larger than the pool
// stays bounded — and indexes rebuild incrementally. A page failing its
// checksum here fails recovery loudly: with the doublewrite buffer
// already replayed, a bad page is real corruption, and it must never be
// served as data.
//
// With a nil pool (a memory-storage DB opening a directory last run as
// paged), every row simply loads into the heap — the storage modes can
// reopen each other's directories freely.
func (db *DB) attachPagedTables(pageSize int, metas []pagedTableMeta) error {
	for _, m := range metas {
		key := strings.ToLower(m.name)
		t := db.tables[key]
		if t == nil {
			return fmt.Errorf("relational: checkpoint references unknown table %q", m.name)
		}
		t.rows = make([][]Value, m.nrows)
		t.live = 0
		if m.npages == 0 {
			if t.pg != nil {
				t.pg.dir = make([]int32, m.nrows)
				for i := range t.pg.dir {
					t.pg.dir[i] = pgDead
				}
			}
			continue
		}
		f, err := pager.OpenFile(filepath.Join(db.pagedDir, pagedFileName(key)), pageSize)
		if err != nil {
			return err
		}
		if f.NumPages() < m.npages {
			f.Close()
			return fmt.Errorf("relational: table %s page file holds %d pages, checkpoint expects %d", m.name, f.NumPages(), m.npages)
		}
		pg := t.pg
		if pg != nil {
			pg.file = f
			pg.dir = make([]int32, m.nrows)
			for i := range pg.dir {
				pg.dir[i] = pgDead
			}
			pg.pages = make([]*pageInfo, 0, m.npages)
			pg.fill = nil
		}
		buf := make([]byte, pageSize)
		for pid := 0; pid < m.npages; pid++ {
			if err := f.ReadPage(uint32(pid), buf); err != nil {
				if pg == nil {
					f.Close()
				}
				return fmt.Errorf("relational: recovering table %s: %w", m.name, err)
			}
			db.stats.PageReads.Add(1)
			db.met.pageReads.Add(1)
			var pi *pageInfo
			if pg != nil {
				pi = &pageInfo{id: int32(pid), est: pager.HeaderSize}
				pg.pages = append(pg.pages, pi)
			}
			err := pager.DecodePage(buf, uint32(pid), func(rid uint64, payload []byte) error {
				r := int(rid)
				if r >= m.nrows {
					return fmt.Errorf("rid %d beyond rid space %d", rid, m.nrows)
				}
				row, err := decodeRowBytes(payload)
				if err != nil {
					return err
				}
				t.rows[r] = row
				t.live++
				if pg != nil {
					pg.dir[r] = pi.id
					pi.rids = append(pi.rids, int32(r))
					pi.est += pager.RecordSize(rid, len(payload))
				}
				for _, idx := range t.index {
					if v := row[idx.col]; !v.IsNull() {
						idx.add(v, r)
					}
				}
				for _, oidx := range t.orderedList {
					oidx.tree.insert(oidx.keyFor(r, row))
				}
				return nil
			})
			if err != nil {
				if pg == nil {
					f.Close()
				}
				return fmt.Errorf("relational: recovering table %s: %w", m.name, err)
			}
			if pg != nil {
				// Stream through the pool: admitting each page applies
				// eviction pressure, so a huge table attaches under the
				// pool budget (evicted rows refault on demand later).
				p := db.pool
				p.mu.Lock()
				p.admitLocked(pg, pi)
				p.mu.Unlock()
			}
		}
		if pg == nil {
			f.Close()
		}
	}
	return nil
}

// rebuildPagedFromRows re-places every row of a freshly Restored table
// into new dirty pages (the v1-checkpoint fallback and the benchmark
// Restore path both rebuild t.rows wholesale). Caller holds the DB writer
// lock and — when checkpoints can be in flight — pagedCkptMu, so no pool
// sweep (reader faults need the shared DB lock, checkpoint sweeps need
// pagedCkptMu) observes pg.pages/dir mid-truncation; only the pool's
// residency/dirty counters need pool.mu here.
func (pg *pagedTable) rebuildFromRows() {
	p := pg.db.pool
	p.mu.Lock()
	for _, pi := range pg.pages {
		if pi.resident {
			pi.resident = false
			p.resident--
		}
		if pi.dirty {
			pi.dirty = false
			p.dirty--
		}
		pi.flushing = false
	}
	p.mu.Unlock()
	t := pg.t
	pg.pages = pg.pages[:0]
	pg.fill = nil
	pg.dir = pg.dir[:0]
	// The old file's pages are now stale; the next checkpoint rewrites
	// every page from scratch.
	if pg.file != nil {
		pg.file.Remove()
		pg.file = nil
	}
	for rid, row := range t.rows {
		if row == nil {
			if len(pg.dir) <= rid {
				pg.dir = append(pg.dir, pgDead)
			}
			continue
		}
		t.pgPlace(rid, row)
	}
	for len(pg.dir) < len(t.rows) {
		pg.dir = append(pg.dir, pgDead)
	}
}

// auditPaged verifies at Close that no page is still pinned (a leaked
// cursor would have made eviction silently impossible) and closes the
// page files.
func (db *DB) auditPaged() error {
	var leak error
	for _, t := range db.tables {
		pg := t.pg
		if pg == nil {
			continue
		}
		for _, pi := range pg.pages {
			if pi.pins != 0 && leak == nil {
				leak = fmt.Errorf("relational: pinned-frame leak: table %s page %d closed with %d pins", t.Name, pi.id, pi.pins)
			}
		}
		if pg.file != nil {
			pg.file.Close()
			pg.file = nil
		}
	}
	return leak
}

// pagedCastagnoli is the paged layer's checksum table (same polynomial as
// the WAL and the page codec).
var pagedCastagnoli = crc32.MakeTable(crc32.Castagnoli)

func crcOf(b []byte) uint32 { return crc32.Checksum(b, pagedCastagnoli) }

// syncDirBestEffort fsyncs a directory; the doublewrite protocol treats
// failure as acceptable (a lost rename means recovering from the
// previous checkpoint, which is always valid).
func syncDirBestEffort(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}

// PagedPoolStats reports the pool's occupancy for tests and benchmarks.
func (db *DB) PagedPoolStats() (resident, dirty, limit int) {
	if db.pool == nil {
		return 0, 0, 0
	}
	db.pool.mu.Lock()
	defer db.pool.mu.Unlock()
	return db.pool.resident, db.pool.dirty, db.pool.limit
}

// visibleRowPinned is visibleRow for a caller whose pageCursor pins the
// page under rid: the slot read is stable without the pool mutex. Version
// chain metadata and superseded versions always live on the heap, so only
// the current-row load differs from the memory backend.
func (t *Table) visibleRowPinned(rid int, sn snapshot) []Value {
	var m rowMeta
	if rid < len(t.meta) {
		m = t.meta[rid]
	}
	if sn.sees(m.begin, m.end) {
		return t.rows[rid]
	}
	hops := int64(0)
	for v := m.older; v != nil; v = v.older {
		hops++
		if sn.sees(v.begin, v.end) {
			t.db.stats.VersionChainHops.Add(hops)
			return v.row
		}
	}
	if hops > 0 {
		t.db.stats.VersionChainHops.Add(hops)
	}
	return nil
}

package relational

import (
	"strings"
	"sync"
	"sync/atomic"
)

// String interning. TEXT values in the shredded-XML workload repeat heavily
// (attribute values, flag text, reference ids), so the DB maintains an
// append-only table mapping each distinct stored string to a dense uint32
// symbol id. Rows carry the id inline in their Values (value.go), letting
// equality predicates, hash-index buckets, join builds, IN-sets, and
// DISTINCT keys work on 4 bytes instead of string contents.
//
// Concurrency: reads are lock-free against an atomically published
// snapshot; appends serialize on a mutex and maintain a dirty map that is
// promoted to a fresh snapshot once enough entries (or enough read misses)
// accumulate — the sync.Map recipe, specialized to an append-only string
// table so ids are dense and promotion never copies the promoted map.
//
// Consistency contract: lookup(s) observes every getOrInsert that completed
// before it started (reads fall back to the dirty map while unpromoted
// entries exist), so within one database the symbol state of a string is a
// pure function of the committed intern set — which is what keeps sym-keyed
// and byte-keyed hash buckets from diverging on equal strings.

// internSnap is one immutable published state: ids maps string → symbol id,
// strs maps id-1 → canonical string. strs may share its backing array with
// newer states (appends past its length never touch indexes a holder reads).
type internSnap struct {
	ids  map[string]uint32
	strs []string
}

type internTable struct {
	// read is the lock-free snapshot. Nil until the first promotion.
	read atomic.Pointer[internSnap]
	// pending counts entries present in dirty but not yet in read; readers
	// that miss the snapshot skip the locked fallback when it is zero.
	pending atomic.Int64

	mu sync.Mutex
	// dirty is a superset of read.ids, cloned lazily on the first append
	// after a promotion; nil while read is complete. Guarded by mu.
	dirty map[string]uint32
	// strs is the append-only id → string backing, guarded by mu for
	// writes; published prefixes are immutable and read without the lock.
	strs []string
	// rmiss counts locked read-path misses since the last promotion;
	// promotion happens once they exceed the unpromoted entry count, so a
	// stream of absent-string lookups cannot get stuck on the mutex.
	rmiss int

	// hits counts lookups that found an existing symbol on the intern
	// (get-or-insert) path; misses counts new symbols minted. The read-only
	// lookup path deliberately does not count: it runs per probed row under
	// concurrent readers, where a shared atomic add would serialize them.
	hits   atomic.Int64
	misses atomic.Int64
}

// maxSyms caps the id space; 0 is reserved for "not interned".
const maxSyms = 1<<32 - 1

// lookup returns the symbol id for s, or 0 when s has never been interned.
// Lock-free whenever s is in the published snapshot or nothing is pending.
func (t *internTable) lookup(s string) uint32 {
	snap := t.read.Load()
	if snap != nil {
		if id, ok := snap.ids[s]; ok {
			return id
		}
	}
	if t.pending.Load() == 0 {
		// Everything is promoted; the first load may have been stale, so
		// re-check the current snapshot before declaring a miss.
		if cur := t.read.Load(); cur != snap && cur != nil {
			return cur.ids[s]
		}
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.dirty == nil {
		// A promotion slipped in between the pending check and the lock;
		// the current snapshot is complete.
		if cur := t.read.Load(); cur != nil {
			return cur.ids[s]
		}
		return 0
	}
	id := t.dirty[s]
	if id == 0 {
		t.rmiss++
		if t.rmiss > int(t.pending.Load()) {
			t.promoteLocked()
		}
	}
	return id
}

// getOrInsert interns s, returning its symbol id and the canonical stored
// string (callers keep the canonical so duplicate values share one backing
// array). A full id space reports 0 and the caller's own string — values
// simply stay uninterned past 2^32-1 distinct strings.
func (t *internTable) getOrInsert(s string) (uint32, string) {
	if snap := t.read.Load(); snap != nil {
		if id, ok := snap.ids[s]; ok {
			t.hits.Add(1)
			return id, snap.strs[id-1]
		}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.dirty != nil {
		if id, ok := t.dirty[s]; ok {
			t.hits.Add(1)
			return id, t.strs[id-1]
		}
	} else if snap := t.read.Load(); snap != nil {
		// The unlocked check raced a promotion; re-check the current state.
		if id, ok := snap.ids[s]; ok {
			t.hits.Add(1)
			return id, snap.strs[id-1]
		}
	}
	if len(t.strs) >= maxSyms {
		return 0, s
	}
	t.misses.Add(1)
	if t.dirty == nil {
		t.cloneReadLocked()
	}
	// Clone so the table never pins a caller's larger backing buffer (XML
	// attribute values alias the parsed document).
	canon := strings.Clone(s)
	t.strs = append(t.strs, canon)
	id := uint32(len(t.strs))
	t.dirty[canon] = id
	n := t.pending.Add(1)
	// Promote once unpromoted entries reach a quarter of the table: the
	// occasional re-clone in cloneReadLocked amortizes to O(1) per insert,
	// and read misses between promotions stay bounded by the same fraction.
	if n >= int64(len(t.strs))/4+16 {
		t.promoteLocked()
	}
	return id, canon
}

// cloneReadLocked seeds dirty from the published snapshot. Caller holds mu.
func (t *internTable) cloneReadLocked() {
	snap := t.read.Load()
	size := 16
	if snap != nil {
		size = len(snap.ids)*2 + 16
	}
	t.dirty = make(map[string]uint32, size)
	if snap != nil {
		for k, v := range snap.ids {
			t.dirty[k] = v
		}
	}
}

// promoteLocked publishes dirty as the new read snapshot. The promoted map
// is never mutated again (the next append clones it), so readers hold it
// safely without the lock. Caller holds mu.
func (t *internTable) promoteLocked() {
	if t.dirty == nil {
		return
	}
	t.read.Store(&internSnap{ids: t.dirty, strs: t.strs[:len(t.strs)]})
	t.dirty = nil
	t.rmiss = 0
	// Order matters: the snapshot must be visible before pending drops to
	// zero, so a reader observing pending == 0 finds every insert in it.
	t.pending.Store(0)
}

// str returns the canonical string for a symbol id, or "" for 0 / unknown.
func (t *internTable) str(id uint32) string {
	if id == 0 {
		return ""
	}
	if snap := t.read.Load(); snap != nil && int(id) <= len(snap.strs) {
		return snap.strs[id-1]
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if int(id) <= len(t.strs) {
		return t.strs[id-1]
	}
	return ""
}

// size returns the number of interned strings.
func (t *internTable) size() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.strs)
}

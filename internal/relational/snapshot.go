package relational

import "strings"

// DBSnapshot is a copy-on-write-free snapshot of a database's table
// contents. Benchmarks use it to reset state between iterations without
// re-shredding documents; values are immutable (int64/string), so copying
// row slices suffices.
type DBSnapshot struct {
	tables map[string]tableSnap
	// src remembers which DB captured the snapshot: restoring into the same
	// DB keeps row symbols as-is (its intern table is append-only, so they
	// are still valid), while restoring into any other DB — or restoring a
	// decoded on-disk snapshot, which has no symbols at all — re-interns
	// every stored text so the sym invariant holds in the target.
	src *DB
}

type tableSnap struct {
	rows [][]Value
	live int
	// ordered captures each B+tree index's live entries in key order
	// (entry values are immutable, so they are shared, not copied). A
	// restore bulk-rebuilds the tree from this without re-sorting or
	// per-key allocation — benchmarks restore between every iteration.
	ordered map[string][]bkey
}

// Snapshot captures the current contents of every table. Schema objects
// (tables, indexes, triggers) are shared, not copied: Restore assumes the
// schema is unchanged since the snapshot.
func (db *DB) Snapshot() *DBSnapshot {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.snapshotLocked()
}

// snapshotLocked is Snapshot's body; the caller holds db.mu in either mode
// (Checkpoint captures snapshot and log position under one shared-lock
// acquisition so no commit can slip between them).
func (db *DB) snapshotLocked() *DBSnapshot {
	s := &DBSnapshot{tables: make(map[string]tableSnap, len(db.tables)), src: db}
	for key, t := range db.tables {
		// Versioned tables (an open transaction's marks, or chains kept
		// alive for a registered reader) are captured at the latest
		// committed state: uncommitted inserts become holes, uncommitted
		// deletes keep their committed version.
		vers := t.vers > 0
		rows := make([][]Value, len(t.rows))
		live := 0
		for i, r := range t.rows {
			if vers {
				r = t.visibleRow(i, snapshot{ts: allTS})
			} else if t.pg != nil {
				// Paged: a nil slot can be an evicted row; fault by rid.
				r = t.curRow(i)
			}
			if r == nil {
				continue
			}
			cp := make([]Value, len(r))
			copy(cp, r)
			rows[i] = cp
			live++
		}
		if !vers {
			live = t.live
		}
		snap := tableSnap{rows: rows, live: live}
		if len(t.ordered) > 0 && !vers {
			// Single-version fast path only: versioned trees may hold
			// entries for superseded versions, so Restore rebuilds those
			// from the captured rows instead.
			snap.ordered = make(map[string][]bkey, len(t.ordered))
			for name, oidx := range t.ordered {
				snap.ordered[name] = oidx.tree.collectLive(t, make([]bkey, 0, t.live))
			}
		}
		s.tables[key] = snap
	}
	return s
}

// Restore resets every snapshotted table to its captured contents and
// rebuilds its indexes. Tables created after the snapshot are dropped.
func (db *DB) Restore(s *DBSnapshot) {
	if db.pool != nil {
		// Exclude an in-flight paged checkpoint: its durable phase runs
		// outside db.mu and indexes pg.pages by captured page id, which
		// rebuildFromRows below invalidates wholesale.
		db.pagedCkptMu.Lock()
		defer db.pagedCkptMu.Unlock()
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	for key, t := range db.tables {
		if _, ok := s.tables[key]; !ok {
			delete(db.tables, key)
			if t.pg != nil {
				t.pg.gone.Store(true)
			}
		}
	}
	reintern := s.src != db
	for key, snap := range s.tables {
		t := db.tables[key]
		if t == nil {
			continue // table was dropped since the snapshot; leave dropped
		}
		rows := make([][]Value, len(snap.rows))
		for i, r := range snap.rows {
			if r == nil {
				continue
			}
			cp := make([]Value, len(r))
			copy(cp, r)
			if reintern {
				// Foreign symbols mean nothing here; clear them, then intern
				// into this DB so restored rows key like inserted ones.
				for ci := range cp {
					if cp[ci].kind == KindText {
						cp[ci].sym = 0
						cp[ci] = t.internRowValue(cp[ci])
					}
				}
			}
			rows[i] = cp
		}
		t.rows = rows
		t.live = snap.live
		if t.pg != nil {
			// Paged: the row slice was replaced wholesale; rebuild the
			// directory and re-place every row onto fresh (dirty) pages.
			t.pg.rebuildFromRows()
		}
		// Restored rows are single-version by construction; drop any
		// version metadata left over from the restored-over state.
		t.meta = nil
		t.vers = 0
		t.intentTxn = 0
		t.lastCommit = 0
		for col, idx := range t.index {
			rebuilt := &hashIndex{col: idx.col, entries: make(map[Value][]int, len(idx.entries)), it: idx.it}
			for rid, row := range t.rows {
				if row == nil || row[idx.col].IsNull() {
					continue
				}
				rebuilt.add(row[idx.col], rid)
			}
			t.index[strings.ToLower(col)] = rebuilt
		}
		for name, oidx := range t.ordered {
			// Captured entries hold the source DB's Values (and so its
			// symbols); they are only reusable when restoring into that DB.
			if entries, ok := snap.ordered[name]; ok && !reintern {
				oidx.tree = newBTreeFromSorted(entries)
				oidx.stale = 0
				continue
			}
			// Index created after the snapshot (or a cross-DB restore):
			// rebuild from the rows.
			oidx.rebuild(t)
		}
		// Hash index objects were replaced above; invalidate access plans
		// caching pointers to them.
		t.indexEpoch++
	}
}

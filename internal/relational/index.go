package relational

import (
	"fmt"
	"sort"
	"strings"
)

// Secondary hash indexes. Shared Inlining joins every child relation to its
// parent on (id, parentId), so those key columns are indexed automatically
// at CREATE TABLE; additional indexes come from CREATE INDEX. Indexes are
// maintained incrementally by Insert/Delete/Update (see table.go), which is
// what turns the paper's update translations and ASR lookups into probes
// instead of scans.

// hashIndex maps a column value to the rowids holding it. NULLs are not
// indexed (SQL equality never matches them). Entries key on the symKey
// normalization (value.go) — a VARCHAR holding canonical integer text
// shares a bucket with that integer, and interned text keys on its 4-byte
// symbol id — so probe hits coincide with compareValues equality and an
// indexed query returns the same rows the scan path would.
type hashIndex struct {
	col     int
	entries map[Value][]int
	// it is the owning DB's intern table (nil for standalone tables or an
	// ablated DB): interned TEXT keys as its symbol, and uninterned probe
	// values resolve against it so equal strings cannot split buckets.
	it *internTable
}

// autoIndexColumns are the declared key/parent-ID column names that get a
// hash index the moment their table is created.
var autoIndexColumns = []string{"id", "parentId"}

// CreateIndex builds a hash index on the named column. Creating an index
// that already exists is a no-op, matching repeated schema setup.
func (t *Table) CreateIndex(col string) error {
	key := strings.ToLower(col)
	if _, ok := t.index[key]; ok {
		return nil
	}
	ci := t.Schema.ColumnIndex(col)
	if ci < 0 {
		return fmt.Errorf("relational: no column %q in table %s", col, t.Name)
	}
	idx := &hashIndex{col: ci, entries: make(map[Value][]int)}
	// noIntern tables key on bytes always: their stored values never carry
	// symbols, and a string interned elsewhere *after* rows were indexed
	// here must not make remove compute a different key than add did. For
	// interning tables the add-time key is stable by construction — every
	// stored text is interned at Insert, and the intern table is
	// append-only — so capturing the intern handle is safe.
	if t.db != nil && !t.noIntern {
		idx.it = t.db.intern
	}
	if t.pg != nil {
		t.pagedScanAll(func(rid int, row []Value) {
			if !row[ci].IsNull() {
				idx.add(row[ci], rid)
			}
		})
	} else {
		for rid, row := range t.rows {
			if row == nil || row[ci].IsNull() {
				continue
			}
			idx.add(row[ci], rid)
		}
	}
	// Versioned tables: superseded chain versions are still visible to open
	// snapshots, so their values must be probeable too (mvcc.go).
	if t.vers > 0 {
		for rid := range t.meta {
			for v := t.meta[rid].older; v != nil; v = v.older {
				if val := v.row[ci]; !val.IsNull() {
					idx.addIfAbsent(val, rid)
				}
			}
		}
	}
	t.index[key] = idx
	t.indexEpoch++
	return nil
}

// DropIndex removes the hash index on the named column and every ordered
// index led by it, if present. It is used by ablation benchmarks and tests
// to measure what an access path buys: dropping "parentId" removes the hash
// index and the (parentId, …) B+trees together, so the ablated run really
// falls back to scans and sorts. A dropped auto-index is not recreated.
func (t *Table) DropIndex(col string) bool {
	key := strings.ToLower(col)
	dropped := false
	if _, ok := t.index[key]; ok {
		delete(t.index, key)
		dropped = true
	}
	for name, oidx := range t.ordered {
		lead := t.Schema.Columns[oidx.cols[0]].Name
		if strings.EqualFold(lead, col) {
			delete(t.ordered, name)
			dropped = true
		}
	}
	t.refreshOrderedList()
	t.indexEpoch++
	return dropped
}

// IndexedColumns returns the names of the table's indexed columns, sorted by
// schema position. Plan introspection and tests use it.
func (t *Table) IndexedColumns() []string {
	var cols []string
	for i, c := range t.Schema.Columns {
		if idx := t.index[strings.ToLower(c.Name)]; idx != nil && idx.col == i {
			cols = append(cols, c.Name)
		}
	}
	return cols
}

// lookupIndex returns the index on the column, if any.
func (t *Table) lookupIndex(col string) *hashIndex {
	return t.index[strings.ToLower(col)]
}

// orderedLeadIndex returns an ordered index whose leading key column is
// col, if any — the indexes a range predicate on col can walk. Ties pick
// the canonically first index, keeping plans deterministic.
func (t *Table) orderedLeadIndex(col string) *orderedIndex {
	ci := t.Schema.ColumnIndex(col)
	if ci < 0 {
		return nil
	}
	var best *orderedIndex
	for _, oidx := range t.ordered {
		if oidx.cols[0] != ci {
			continue
		}
		if best == nil || oidx.name < best.name {
			best = oidx
		}
	}
	return best
}

// autoIndex creates the automatic key-column indexes on a fresh table and
// marks the tuple-id column unique (the shredder assigns ids uniquely).
func (t *Table) autoIndex() {
	for _, col := range autoIndexColumns {
		if t.Schema.ColumnIndex(col) >= 0 {
			// Cannot fail: the column exists and the table is new.
			_ = t.CreateIndex(col)
		}
	}
	if ci := t.Schema.ColumnIndex("id"); ci >= 0 {
		if t.uniqueCols == nil {
			t.uniqueCols = make(map[int]bool, 1)
		}
		t.uniqueCols[ci] = true
	}
}

// add indexes rid under v. All maintenance goes through add/remove so the
// symKey normalization cannot be skipped on any path (insert, update,
// undo, rebuild).
func (idx *hashIndex) add(v Value, rid int) {
	k := v.symKey(idx.it)
	idx.entries[k] = append(idx.entries[k], rid)
}

// addIfAbsent indexes rid under v unless that exact entry already exists.
// Versioned updates keep old-value entries alive for snapshot readers, so a
// value flipped away and back again must not double-index the row (mvcc.go).
func (idx *hashIndex) addIfAbsent(v Value, rid int) {
	k := v.symKey(idx.it)
	for _, r := range idx.entries[k] {
		if r == rid {
			return
		}
	}
	idx.entries[k] = append(idx.entries[k], rid)
}

func (idx *hashIndex) remove(v Value, rid int) {
	k := v.symKey(idx.it)
	rids := idx.entries[k]
	for i, r := range rids {
		if r == rid {
			rids[i] = rids[len(rids)-1]
			rids = rids[:len(rids)-1]
			break
		}
	}
	if len(rids) == 0 {
		delete(idx.entries, k)
	} else {
		idx.entries[k] = rids
	}
}

// probe returns rowids of live rows whose indexed column equals v (in the
// compareValues sense — the symKey normalization on both sides makes the
// probe exactly as selective as the scan path's equality filter).
func (idx *hashIndex) probe(v Value) []int {
	if v.IsNull() {
		return nil
	}
	return idx.entries[v.symKey(idx.it)]
}

// ---- ordered (B+tree) indexes ----

// orderedIndex is a B+tree index over one or more columns. Unlike the hash
// indexes it stores NULL keys too (NULLs sort first, matching ORDER BY), so
// a full walk enumerates every live row in key order — that is what lets
// the executor elide sorts and serve range predicates. Equality probes
// still honour SQL semantics: a NULL probe value matches nothing.
type orderedIndex struct {
	name string // canonical lower-case "col1,col2" form
	cols []int
	tree *btree
	// stale counts tombstoned entries left in the tree: deletion unlinks
	// the heap row but leaves the B+tree entry, and readers skip entries
	// whose row is gone. Removal-by-descent on every DELETE would double
	// the paper's delete-path cost; instead the tree rebuilds from live
	// rows once stale entries outnumber live ones (amortized O(1) per
	// delete). Updates DO unlink eagerly — a moved key must not appear
	// twice.
	stale int
}

// orderedKeyName canonicalizes a column list for index lookup.
func orderedKeyName(cols []string) string {
	return strings.ToLower(strings.Join(cols, ","))
}

// CreateOrderedIndex builds a B+tree index over the named columns, in key
// order. Creating an existing ordered index is a no-op.
func (t *Table) CreateOrderedIndex(cols ...string) error {
	if len(cols) == 0 {
		return fmt.Errorf("relational: ordered index on %s needs at least one column", t.Name)
	}
	if len(cols) > btreeMaxCols {
		return fmt.Errorf("relational: ordered index on %s: at most %d key columns", t.Name, btreeMaxCols)
	}
	key := orderedKeyName(cols)
	if _, ok := t.ordered[key]; ok {
		return nil
	}
	idx := &orderedIndex{name: key, cols: make([]int, len(cols)), tree: newBTree()}
	for i, c := range cols {
		ci := t.Schema.ColumnIndex(c)
		if ci < 0 {
			return fmt.Errorf("relational: no column %q in table %s", c, t.Name)
		}
		idx.cols[i] = ci
	}
	if t.pg != nil {
		t.pagedScanAll(func(rid int, row []Value) {
			idx.tree.insert(idx.keyFor(rid, row))
		})
	} else {
		for rid, row := range t.rows {
			if row == nil {
				continue
			}
			idx.tree.insert(idx.keyFor(rid, row))
		}
	}
	// Versioned tables: index superseded chain versions' keys as well, so
	// snapshot readers can reach them (remove-then-insert keeps each key
	// unique; see mvcc.go).
	if t.vers > 0 {
		for rid := range t.meta {
			for v := t.meta[rid].older; v != nil; v = v.older {
				k := idx.keyFor(rid, v.row)
				idx.tree.remove(k)
				idx.tree.insert(k)
			}
		}
	}
	t.ordered[key] = idx
	t.refreshOrderedList()
	t.indexEpoch++
	return nil
}

// refreshOrderedList recomputes the cached canonical-order index slice the
// hot planning path iterates (allocating and sorting per query would cost
// more than the probe it plans).
func (t *Table) refreshOrderedList() {
	names := make([]string, 0, len(t.ordered))
	for name := range t.ordered {
		names = append(names, name)
	}
	sort.Strings(names)
	t.orderedList = t.orderedList[:0]
	for _, name := range names {
		t.orderedList = append(t.orderedList, t.ordered[name])
	}
}

// OrderedIndexes returns the key-column lists of the table's ordered
// indexes, sorted by canonical name. Plan introspection and tests use it.
func (t *Table) OrderedIndexes() [][]string {
	out := make([][]string, len(t.orderedList))
	for i, idx := range t.orderedList {
		cols := make([]string, len(idx.cols))
		for j, ci := range idx.cols {
			cols[j] = t.Schema.Columns[ci].Name
		}
		out[i] = cols
	}
	return out
}

// orderedIndexList returns the ordered indexes in deterministic (canonical
// name) order, so access-path choice is stable between Explain and runs.
func (t *Table) orderedIndexList() []*orderedIndex { return t.orderedList }

// rebuild recreates the tree from the table's live rows, dropping
// tombstoned entries.
func (idx *orderedIndex) rebuild(t *Table) {
	idx.tree = newBTree()
	idx.stale = 0
	if t.pg != nil {
		t.pagedScanAll(func(rid int, row []Value) {
			idx.tree.insert(idx.keyFor(rid, row))
		})
		return
	}
	for rid, row := range t.rows {
		if row == nil {
			continue
		}
		idx.tree.insert(idx.keyFor(rid, row))
	}
}

// keyFor builds the index entry for a row.
func (idx *orderedIndex) keyFor(rid int, row []Value) bkey {
	k := bkey{rid: rid}
	for i, ci := range idx.cols {
		k.vals[i] = row[ci]
	}
	return k
}

// covers reports whether the index key includes the column position.
func (idx *orderedIndex) covers(ci int) bool {
	for _, c := range idx.cols {
		if c == ci {
			return true
		}
	}
	return false
}

// scanRange appends to out the rowids whose key has the given equality
// prefix and whose next key column lies within [lo, hi] (either bound may
// be absent), walking in ascending or descending key order. A NULL equality
// prefix value matches nothing (SQL equality); rows whose range column is
// NULL are excluded by bounds but included by full walks, mirroring how a
// WHERE conjunct would reject them while ORDER BY keeps them.
func (idx *orderedIndex) scanRange(prefix []Value, lo, hi rangeBound, desc bool, out []int) []int {
	return idx.scanRangeVis(prefix, lo, hi, desc, out, nil)
}

// scanRangeVis is scanRange with an entry filter: keep (when non-nil) is
// consulted per entry before emission. Versioned tables pass a visibility
// filter — a rowid can sit in the tree under both its old and new keys, and
// only the entry matching the snapshot-visible row's key may be emitted
// (mvcc.go); the filter runs inside the walk so group-boundary detection in
// descending scans only sees surviving entries.
func (idx *orderedIndex) scanRangeVis(prefix []Value, lo, hi rangeBound, desc bool, out []int, keep func(k bkey) bool) []int {
	for _, v := range prefix {
		if v.IsNull() {
			return out
		}
	}
	p := len(prefix)
	// start/stop predicates over the (prefix, range-column) portion of keys.
	afterLow := func(k bkey) bool {
		if c := comparePrefix(k, prefix); c != 0 {
			return c > 0
		}
		if !lo.set {
			return true
		}
		c := compareValues(k.vals[p], lo.val)
		return c > 0 || (c == 0 && lo.incl)
	}
	pastHigh := func(k bkey) bool {
		if c := comparePrefix(k, prefix); c != 0 {
			return c > 0
		}
		if !hi.set {
			return false
		}
		c := compareValues(k.vals[p], hi.val)
		return c > 0 || (c == 0 && !hi.incl)
	}
	if desc {
		// Descending must match what a stable descending sort produces:
		// key groups in reverse order, insertion (rowid) order within each
		// group. Walk ascending, record group boundaries, emit backwards.
		var tmp []int
		var starts []int
		var prev bkey
		c := idx.tree.seekFirst(afterLow)
		for {
			k, ok := c.entry()
			if !ok || pastHigh(k) {
				break
			}
			if keep != nil && !keep(k) {
				c.advance()
				continue
			}
			if len(tmp) == 0 || compareBVals(k, prev) != 0 {
				starts = append(starts, len(tmp))
			}
			prev = k
			tmp = append(tmp, k.rid)
			c.advance()
		}
		for gi := len(starts) - 1; gi >= 0; gi-- {
			end := len(tmp)
			if gi+1 < len(starts) {
				end = starts[gi+1]
			}
			out = append(out, tmp[starts[gi]:end]...)
		}
		return out
	}
	c := idx.tree.seekFirst(afterLow)
	for {
		k, ok := c.entry()
		if !ok || pastHigh(k) {
			return out
		}
		if keep == nil || keep(k) {
			out = append(out, k.rid)
		}
		c.advance()
	}
}

// compareBVals orders two index entries by key values alone (no rowid
// tiebreak) — group-boundary detection for descending scans.
func compareBVals(a, b bkey) int {
	for i := range a.vals {
		if c := compareValues(a.vals[i], b.vals[i]); c != 0 {
			return c
		}
	}
	return 0
}

// rangeBound is one endpoint of a range access path. The zero value is an
// absent bound — bounds travel by value (no per-probe pointer allocation),
// so set distinguishes "no bound" from "bound at NULL".
type rangeBound struct {
	val  Value
	incl bool
	set  bool
}

// splitBucket slices an ordered-index bucket into k contiguous chunks
// (partitionSpans windows). The chunks alias the bucket with capacity
// clamped to the window end, so a worker appending by mistake cannot
// clobber its neighbour's rows; concatenated in order they are the
// original bucket.
func splitBucket(bucket []int, k int) [][]int {
	spans := partitionSpans(len(bucket), k)
	chunks := make([][]int, k)
	for w, sp := range spans {
		chunks[w] = bucket[sp[0]:sp[1]:sp[1]]
	}
	return chunks
}

package relational

import (
	"fmt"
	"strings"
)

// Secondary hash indexes. Shared Inlining joins every child relation to its
// parent on (id, parentId), so those key columns are indexed automatically
// at CREATE TABLE; additional indexes come from CREATE INDEX. Indexes are
// maintained incrementally by Insert/Delete/Update (see table.go), which is
// what turns the paper's update translations and ASR lookups into probes
// instead of scans.

// hashIndex maps a column value to the rowids holding it. NULLs are not
// indexed (SQL equality never matches them).
type hashIndex struct {
	col     int
	entries map[Value][]int
}

// autoIndexColumns are the declared key/parent-ID column names that get a
// hash index the moment their table is created.
var autoIndexColumns = []string{"id", "parentId"}

// CreateIndex builds a hash index on the named column. Creating an index
// that already exists is a no-op, matching repeated schema setup.
func (t *Table) CreateIndex(col string) error {
	key := strings.ToLower(col)
	if _, ok := t.index[key]; ok {
		return nil
	}
	ci := t.Schema.ColumnIndex(col)
	if ci < 0 {
		return fmt.Errorf("relational: no column %q in table %s", col, t.Name)
	}
	idx := &hashIndex{col: ci, entries: make(map[Value][]int)}
	for rid, row := range t.rows {
		if row == nil || row[ci] == nil {
			continue
		}
		idx.entries[row[ci]] = append(idx.entries[row[ci]], rid)
	}
	t.index[key] = idx
	return nil
}

// DropIndex removes the hash index on the named column, if present. It is
// used by ablation benchmarks to measure what the parentId index buys each
// delete strategy. A dropped auto-index is not recreated.
func (t *Table) DropIndex(col string) bool {
	key := strings.ToLower(col)
	if _, ok := t.index[key]; !ok {
		return false
	}
	delete(t.index, key)
	return true
}

// IndexedColumns returns the names of the table's indexed columns, sorted by
// schema position. Plan introspection and tests use it.
func (t *Table) IndexedColumns() []string {
	var cols []string
	for i, c := range t.Schema.Columns {
		if idx := t.index[strings.ToLower(c.Name)]; idx != nil && idx.col == i {
			cols = append(cols, c.Name)
		}
	}
	return cols
}

// lookupIndex returns the index on the column, if any.
func (t *Table) lookupIndex(col string) *hashIndex {
	return t.index[strings.ToLower(col)]
}

// autoIndex creates the automatic key-column indexes on a fresh table.
func (t *Table) autoIndex() {
	for _, col := range autoIndexColumns {
		if t.Schema.ColumnIndex(col) >= 0 {
			// Cannot fail: the column exists and the table is new.
			_ = t.CreateIndex(col)
		}
	}
}

func (idx *hashIndex) remove(v Value, rid int) {
	rids := idx.entries[v]
	for i, r := range rids {
		if r == rid {
			rids[i] = rids[len(rids)-1]
			rids = rids[:len(rids)-1]
			break
		}
	}
	if len(rids) == 0 {
		delete(idx.entries, v)
	} else {
		idx.entries[v] = rids
	}
}

// probe returns rowids of live rows whose indexed column equals v.
func (idx *hashIndex) probe(v Value) []int {
	if v == nil {
		return nil
	}
	return idx.entries[v]
}

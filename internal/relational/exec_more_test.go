package relational

import (
	"strings"
	"testing"
)

// Additional executor coverage: CTE plumbing, expression corners, trigger
// bodies beyond the common cascades.

func TestCTEChaining(t *testing.T) {
	db := custSchema(t)
	loadCustData(t, db)
	rows, err := db.Query(`
WITH A(cid) AS (SELECT id FROM Customer WHERE Name = 'John'),
     B(oid) AS (SELECT O.id FROM A, Orders O WHERE O.parentId = A.cid)
SELECT COUNT(*) FROM B`)
	if err != nil {
		t.Fatal(err)
	}
	if rows.Data[0][0] != Int(2) {
		t.Errorf("chained CTE count = %v", rows.Data[0][0])
	}
}

func TestCTEColumnMismatch(t *testing.T) {
	db := custSchema(t)
	_, err := db.Query(`WITH A(x, y) AS (SELECT id FROM Customer) SELECT * FROM A`)
	if err == nil || !strings.Contains(err.Error(), "columns") {
		t.Errorf("expected column-count error, got %v", err)
	}
}

func TestCTEShadowsNothing(t *testing.T) {
	db := custSchema(t)
	loadCustData(t, db)
	// A CTE named like a table is resolved before the base table.
	rows, err := db.Query(`WITH Customer(id) AS (SELECT id FROM Orders) SELECT COUNT(*) FROM Customer`)
	if err != nil {
		t.Fatal(err)
	}
	if rows.Data[0][0] != Int(3) {
		t.Errorf("CTE did not take precedence: %v", rows.Data[0][0])
	}
}

func TestUnaryMinusAndArithmetic(t *testing.T) {
	db := NewDB()
	db.MustExec(`CREATE TABLE t (a INTEGER)`)
	db.MustExec(`INSERT INTO t VALUES (10)`)
	rows, err := db.Query(`SELECT a + 5, a - 3, a * 2, a / 4, -a FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	r := rows.Data[0]
	want := []int64{15, 7, 20, 2, -10}
	for i, w := range want {
		if r[i] != Int(w) {
			t.Errorf("expr %d = %v, want %d", i, r[i], w)
		}
	}
	if _, err := db.Query(`SELECT a / 0 FROM t`); err == nil {
		t.Error("division by zero should fail")
	}
	// Arithmetic with NULL yields NULL.
	db.MustExec(`CREATE TABLE n (a INTEGER)`)
	db.MustExec(`INSERT INTO n VALUES (NULL)`)
	rows, _ = db.Query(`SELECT a + 1 FROM n`)
	if !rows.Data[0][0].IsNull() {
		t.Errorf("NULL + 1 = %v", rows.Data[0][0])
	}
}

func TestNotAndParentheses(t *testing.T) {
	db := custSchema(t)
	loadCustData(t, db)
	rows, err := db.Query(`SELECT Name FROM Customer WHERE NOT (Name = 'John')`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Data) != 1 || rows.Data[0][0] != Text("Mary") {
		t.Errorf("NOT = %v", rows.Data)
	}
}

func TestUpdateTriggerBody(t *testing.T) {
	// A trigger whose body is an UPDATE (marking rather than cascading).
	db := custSchema(t)
	loadCustData(t, db)
	db.MustExec(`CREATE TABLE audit (n INTEGER)`)
	db.MustExec(`INSERT INTO audit VALUES (0)`)
	db.MustExec(`CREATE TRIGGER cust_audit AFTER DELETE ON Customer FOR EACH ROW UPDATE audit SET n = n + 1`)
	db.MustExec(`DELETE FROM Customer WHERE Name = 'John'`)
	rows, _ := db.Query(`SELECT n FROM audit`)
	if rows.Data[0][0] != Int(2) {
		t.Errorf("audit count = %v, want 2", rows.Data[0][0])
	}
}

func TestTriggerChainsAcrossTables(t *testing.T) {
	db := custSchema(t)
	loadCustData(t, db)
	// Mixed granularity: row trigger on Customer, statement trigger on
	// Orders.
	db.MustExec(`CREATE TRIGGER c AFTER DELETE ON Customer FOR EACH ROW DELETE FROM Orders WHERE parentId = OLD.id`)
	db.MustExec(`CREATE TRIGGER o AFTER DELETE ON Orders FOR EACH STATEMENT DELETE FROM OrderLine WHERE parentId NOT IN (SELECT id FROM Orders)`)
	db.MustExec(`DELETE FROM Customer`)
	if db.Table("OrderLine").RowCount() != 0 {
		t.Error("mixed-granularity cascade incomplete")
	}
}

func TestOrderByPositional(t *testing.T) {
	db := custSchema(t)
	loadCustData(t, db)
	rows, err := db.Query(`SELECT Date, id FROM Orders ORDER BY 2 DESC`)
	if err != nil {
		t.Fatal(err)
	}
	if rows.Data[0][1] != Int(12) {
		t.Errorf("positional order by = %v", rows.Data)
	}
	if _, err := db.Query(`SELECT id FROM Orders ORDER BY 9`); err == nil {
		t.Error("out-of-range positional key should fail")
	}
}

func TestSelectExprAliases(t *testing.T) {
	db := custSchema(t)
	loadCustData(t, db)
	rows, err := db.Query(`SELECT Name AS who, id ident FROM Customer WHERE Name = 'Mary'`)
	if err != nil {
		t.Fatal(err)
	}
	if rows.Cols[0] != "who" || rows.Cols[1] != "ident" {
		t.Errorf("aliases = %v", rows.Cols)
	}
}

func TestSelectWithoutFrom(t *testing.T) {
	db := NewDB()
	rows, err := db.Query(`SELECT 1 + 2, 'x'`)
	if err != nil {
		t.Fatal(err)
	}
	if rows.Data[0][0] != Int(3) || rows.Data[0][1] != Text("x") {
		t.Errorf("constant select = %v", rows.Data[0])
	}
}

func TestInsertSelectColumnSubset(t *testing.T) {
	db := custSchema(t)
	loadCustData(t, db)
	db.MustExec(`CREATE TABLE names (id INTEGER, who VARCHAR)`)
	n, err := db.Exec(`INSERT INTO names (id, who) SELECT id, Name FROM Customer`)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Errorf("inserted %d", n)
	}
}

func TestDeleteViaInSubqueryOnSameTable(t *testing.T) {
	// The ASR-insert pattern: WHERE id IN (SELECT DISTINCT … FROM other).
	db := custSchema(t)
	loadCustData(t, db)
	n, err := db.Exec(`DELETE FROM OrderLine WHERE parentId IN (SELECT id FROM Orders WHERE Status = 'ready')`)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Errorf("deleted %d, want 3", n)
	}
}

func TestAggregateWithJoin(t *testing.T) {
	db := custSchema(t)
	loadCustData(t, db)
	rows, err := db.Query(`
SELECT COUNT(*), MAX(OL.Qty) FROM Orders O, OrderLine OL
WHERE OL.parentId = O.id AND O.Status = 'ready'`)
	if err != nil {
		t.Fatal(err)
	}
	if rows.Data[0][0] != Int(3) || rows.Data[0][1] != Int(4) {
		t.Errorf("joined aggregate = %v", rows.Data[0])
	}
}

func TestEmptyInListNever(t *testing.T) {
	db := custSchema(t)
	loadCustData(t, db)
	// IN over an empty subquery result: nothing matches; NOT IN matches all.
	rows, _ := db.Query(`SELECT id FROM Orders WHERE parentId IN (SELECT id FROM Customer WHERE Name = 'Ghost')`)
	if len(rows.Data) != 0 {
		t.Errorf("IN empty = %d rows", len(rows.Data))
	}
	rows, _ = db.Query(`SELECT id FROM Orders WHERE parentId NOT IN (SELECT id FROM Customer WHERE Name = 'Ghost')`)
	if len(rows.Data) != 3 {
		t.Errorf("NOT IN empty = %d rows", len(rows.Data))
	}
}

func TestTableNamesListing(t *testing.T) {
	db := custSchema(t)
	names := db.TableNames()
	if len(names) != 3 {
		t.Fatalf("tables = %v", names)
	}
	if names[0] != "Customer" {
		t.Errorf("sorted order wrong: %v", names)
	}
}

func TestDropIndexFallsBackToScan(t *testing.T) {
	db := custSchema(t)
	loadCustData(t, db)
	tab := db.Table("OrderLine")
	if !tab.DropIndex("parentId") {
		t.Fatal("DropIndex failed")
	}
	if tab.DropIndex("parentId") {
		t.Error("second drop should report false")
	}
	db.ResetStats()
	db.MustExec(`DELETE FROM OrderLine WHERE parentId = 10`)
	if st := db.Stats(); st.RowsScanned < 4 {
		t.Errorf("expected full scan after index drop, scanned %d", st.RowsScanned)
	}
}

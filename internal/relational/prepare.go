package relational

import (
	"fmt"
	"strings"
	"time"
)

// Prepared statements and the shape-keyed plan cache. Every Exec/Query is
// routed through the cache: the statement's literals are lifted out into
// positional parameters, the remaining token sequence (its "shape") keys a
// cached AST, and the literal values are bound as arguments at execution.
// The XML update translator emits thousands of statements per document that
// differ only in id literals, so one parse and one plan serve them all.

// Prepared is a parsed statement bound to a DB, executable many times with
// different `?` arguments.
type Prepared struct {
	db      *DB
	stmt    Stmt
	nparams int
	// src is the statement text as given (with its `?` placeholders); it is
	// what the redo log records for a prepared execution, together with the
	// bound arguments.
	src string
}

// Prepare parses a statement once for repeated execution. `?` placeholders
// become positional parameters bound by Exec/Query arguments; literals are
// kept as written.
func (db *DB) Prepare(sql string) (*Prepared, error) {
	toks, err := lexSQL(sql)
	if err != nil {
		return nil, err
	}
	stmt, np, err := parseTokens(toks, sql)
	if err != nil {
		return nil, err
	}
	return &Prepared{db: db, stmt: stmt, nparams: np, src: sql}, nil
}

// Exec runs the prepared statement with the given parameter values,
// returning the number of affected rows. Like DB.Exec it runs in an
// implicit per-statement transaction, and joins an open SQL-level
// transaction.
func (p *Prepared) Exec(args ...Value) (int, error) {
	if len(args) != p.nparams {
		return 0, fmt.Errorf("relational: prepared statement takes %d args, got %d", p.nparams, len(args))
	}
	if tx := p.db.sqlTx.Load(); tx != nil {
		n, err := tx.ExecPrepared(p, args...)
		if err != errTxDone {
			return n, err
		}
	}
	start := time.Now()
	qt := p.db.traceBegin("prepared-exec", p.src)
	if qt != nil {
		qt.CacheHit = true // prepared statements are pre-parsed by definition
	}
	// The closure scopes the deferred unlock to the in-memory commit, so a
	// panic cannot strand the writer lock while the fsync wait below still
	// runs outside it.
	n, lsn, err := func() (int, uint64, error) {
		lockStart := time.Now()
		p.db.mu.Lock()
		p.db.met.lockWait.ObserveSince(lockStart)
		defer p.db.mu.Unlock()
		if qt != nil {
			qt.LockWait = time.Since(lockStart)
		}
		p.db.stats.Statements.Add(1)
		p.db.internArgs(args)
		return p.db.runAutocommit(p.stmt, args, p.src, args, qt, nil)
	}()
	if err != nil {
		p.db.traceFinish(qt, 0, err)
		return 0, err
	}
	err = p.db.afterCommit(lsn, qt)
	if err == nil {
		p.db.met.commit.ObserveSince(start)
	}
	p.db.traceFinish(qt, n, err)
	return n, err
}

// Query runs a prepared SELECT with the given parameter values, under the
// shared lock like DB.Query; it likewise joins an open SQL-level
// transaction.
func (p *Prepared) Query(args ...Value) (*Rows, error) {
	sel, ok := p.stmt.(*SelectStmt)
	if !ok {
		return nil, fmt.Errorf("relational: Query requires a SELECT, got %T", p.stmt)
	}
	if len(args) != p.nparams {
		return nil, fmt.Errorf("relational: prepared statement takes %d args, got %d", p.nparams, len(args))
	}
	if tx := p.db.sqlTx.Load(); tx != nil {
		rows, err := tx.QueryPrepared(p, args...)
		if err != errTxDone {
			return rows, err
		}
	}
	p.db.mu.RLock()
	defer p.db.mu.RUnlock()
	p.db.stats.Statements.Add(1)
	p.db.internArgs(args)
	env := newEnv(nil)
	env.args = args
	return p.db.execSelect(sel, env)
}

// cachedStmt is one shape-cache entry.
type cachedStmt struct {
	stmt    Stmt
	nparams int
}

// stmtCacheLimit bounds the shape cache. Most shapes are stable templates,
// but variable-length IN lists mint one shape per list length, so busy
// workloads do churn past the bound; eviction must therefore stay cheap
// and local (plans ride on the evicted AST, nothing else is touched).
const stmtCacheLimit = 512

// prepared resolves sql through the shape cache, parsing at most once per
// statement shape. It returns the (shared, read-only) AST, the literal
// values to bind, and whether the template came from the cache. The cache
// has its own lock (both shared-lock readers and exclusive writers populate
// it), so callers hold db.mu in either mode.
func (db *DB) prepared(sql string) (Stmt, []Value, bool, error) {
	toks, err := lexSQL(sql)
	if err != nil {
		return nil, nil, false, err
	}
	_, shape, args, ok := liftLiterals(toks, len(sql), false)
	if !ok {
		// Not parameterizable (DDL, explicit `?`): cache by raw text and
		// parse the original tokens.
		shape, args = sql, nil
	}
	db.stmtMu.Lock()
	c, hit := db.stmts[shape]
	db.stmtMu.Unlock()
	if hit && c.nparams == len(args) {
		db.stats.PlanCacheHits.Add(1)
		// Lifted TEXT literals resolve against the intern table (lookup
		// only — query literals never mint symbols): a literal naming a
		// stored string carries its id into every equality and probe below.
		db.internArgs(args)
		return c.stmt, args, true, nil
	}
	db.stats.PlanCacheMisses.Add(1)
	ptoks := toks
	if ok {
		// Cache miss: re-run the lift, now emitting the parameterized
		// token stream for parsing.
		ptoks, _, _, _ = liftLiterals(toks, len(sql), true)
	}
	stmt, np, err := parseTokens(ptoks, sql)
	if err != nil {
		return nil, nil, false, err
	}
	if np != len(args) {
		if len(args) == 0 && np > 0 {
			return nil, nil, false, fmt.Errorf("relational: statement contains ? placeholders; use Prepare")
		}
		return nil, nil, false, fmt.Errorf("relational: internal: %d params for %d lifted literals", np, len(args))
	}
	db.stmtMu.Lock()
	if len(db.stmts) >= stmtCacheLimit {
		// Evict an arbitrary template; its AST and the plans compiled into
		// it are garbage-collected together.
		for k := range db.stmts {
			delete(db.stmts, k)
			break
		}
	}
	db.stmts[shape] = &cachedStmt{stmt: stmt, nparams: np}
	db.stmtMu.Unlock()
	db.internArgs(args)
	return stmt, args, false, nil
}

// liftLiterals walks a token stream lifting literal tokens into `?`
// parameters: it computes the statement's shape string and the lifted
// values, and — when emitTokens is set — the parameterized token stream
// for parsing. One walker serves both the cache-hit path (shape only, no
// token allocation) and the miss path, so the lifting decisions cannot
// diverge. It declines (ok=false) for DDL — schema statements run once and
// CREATE TRIGGER bodies must keep their literals — and for statements
// already containing placeholders. Numbers inside ORDER BY stay literal:
// they are column positions, part of the plan, not data.
func liftLiterals(toks []token, srcLen int, emitTokens bool) ([]token, string, []Value, bool) {
	if len(toks) == 0 {
		return nil, "", nil, false
	}
	if first := toks[0]; first.kind == tokIdent &&
		(strings.EqualFold(first.text, "CREATE") || strings.EqualFold(first.text, "DROP")) {
		return nil, "", nil, false
	}
	var out []token
	if emitTokens {
		out = make([]token, 0, len(toks))
	}
	var b strings.Builder
	b.Grow(srcLen + 8)
	var args []Value
	inOrderBy := false
	for i, t := range toks {
		if i > 0 {
			b.WriteByte(' ')
		}
		lift := false
		switch t.kind {
		case tokEOF:
		case tokParam:
			return nil, "", nil, false
		case tokNumber:
			if !inOrderBy {
				lift = true
				args = append(args, Int(t.num))
			}
		case tokString:
			lift = true
			args = append(args, Text(t.text))
		case tokIdent:
			if strings.EqualFold(t.text, "ORDER") && i+1 < len(toks) &&
				toks[i+1].kind == tokIdent && strings.EqualFold(toks[i+1].text, "BY") {
				inOrderBy = true
			}
		default:
			// An ORDER BY list extends to the end of the (sub)query; any
			// closing symbol ends it.
			if t.text == ")" || t.text == ";" {
				inOrderBy = false
			}
		}
		if lift {
			b.WriteByte('?')
			if emitTokens {
				out = append(out, token{kind: tokParam, text: "?", pos: t.pos})
			}
		} else {
			b.WriteString(t.text)
			if emitTokens {
				out = append(out, t)
			}
		}
	}
	return out, b.String(), args, true
}

package relational

import "sort"

// An in-memory B+tree over composite-value keys, the ordered counterpart of
// the hash indexes in index.go. Interior nodes route, leaves hold entries and
// are doubly linked, so range scans are a descent plus a leaf walk in either
// direction. Keys order by compareValues column-wise with the rowid as the
// final tiebreak, which makes every key unique and — because rowids are
// assigned in insertion order — makes equal-key runs stream in the same
// order a stable sort of the heap would produce. When sort elision walks an
// index whose key columns are exactly the ORDER BY keys, the elided stream
// is therefore row-for-row identical to the sorted one; when the ORDER BY
// consumes only a prefix of the key, rows tied on the prefix stream in
// trailing-key order instead of heap order — a different (still valid)
// resolution of ties the ORDER BY leaves unspecified.

// btreeMaxKeys bounds the entries per node; nodes split at the bound. 64
// keeps the tree shallow for document-scale tables while splits stay cheap.
const btreeMaxKeys = 64

// btreeMaxCols bounds an ordered index's key arity. Key values live inline
// in the entry — no per-entry slice — which halves the live pointers the
// collector traces per index; every index the system declares ((id),
// (parentId, id), (parentId, pos)) fits.
const btreeMaxCols = 2

// bkey is one index entry: the indexed column values plus the owning rowid.
// Unused trailing value slots stay NULL uniformly across an index, so
// comparisons can always consider both (NULL == NULL). Values are unboxed
// tagged structs, so a bkey is one flat block of memory — building one from
// a row is plain field copies, no per-column boxing.
type bkey struct {
	vals [btreeMaxCols]Value
	rid  int
}

// compareBKeys orders entries column-wise (NULLs first, matching ORDER BY
// semantics) with the rowid as tiebreak.
func compareBKeys(a, b bkey) int {
	for i := 0; i < btreeMaxCols; i++ {
		if c := compareValues(a.vals[i], b.vals[i]); c != 0 {
			return c
		}
	}
	switch {
	case a.rid < b.rid:
		return -1
	case a.rid > b.rid:
		return 1
	default:
		return 0
	}
}

// comparePrefix orders an entry against a partial key covering only the
// leading columns; the entry's remaining columns and rowid are ignored.
func comparePrefix(k bkey, prefix []Value) int {
	for i, pv := range prefix {
		if c := compareValues(k.vals[i], pv); c != 0 {
			return c
		}
	}
	return 0
}

type bleaf struct {
	keys       []bkey
	next, prev *bleaf
	// shared marks a leaf whose keys slice aliases a snapshot's entry
	// array (newBTreeFromSorted): the first mutation copies it out, so a
	// restored tree costs node headers only and snapshots stay pristine.
	shared bool
}

// unshare gives the leaf its own backing array before an in-place mutation.
func (l *bleaf) unshare() {
	if !l.shared {
		return
	}
	l.keys = append(make([]bkey, 0, len(l.keys)+8), l.keys...)
	l.shared = false
}

type binner struct {
	// seps[i] is the smallest key reachable under kids[i+1]; kids has one
	// more element than seps.
	seps []bkey
	kids []bnode
}

type bnode interface{ isBNode() }

func (*bleaf) isBNode()  {}
func (*binner) isBNode() {}

type btree struct {
	root bnode
	// last points at the rightmost leaf for the ascending-insert fast path:
	// tuple ids (and per-parent positions) arrive mostly in key order, so
	// bulk loads and copies append without descending.
	last *bleaf
	size int
}

func newBTree() *btree {
	leaf := &bleaf{}
	return &btree{root: leaf, last: leaf}
}

// newBTreeFromSorted bulk-builds a tree from already-sorted entries, bottom
// up: leaves slice one shared backing array (full slices, so a later split
// reallocates instead of clobbering a sibling), inner levels group their
// children. Snapshot restore uses this — no per-key allocation, no descent.
func newBTreeFromSorted(entries []bkey) *btree {
	if len(entries) == 0 {
		return newBTree()
	}
	t := &btree{size: len(entries)}
	// Three-quarters fill leaves: room for later inserts before splitting.
	// Leaves alias the caller's entry array copy-on-write: the snapshot
	// array is never mutated (unshare copies a leaf out first), so repeated
	// restores allocate node headers only.
	per := btreeMaxKeys * 3 / 4
	var leaves []*bleaf
	for i := 0; i < len(entries); i += per {
		j := i + per
		if j > len(entries) {
			j = len(entries)
		}
		leaf := &bleaf{keys: entries[i:j:j], shared: true}
		if n := len(leaves); n > 0 {
			leaves[n-1].next = leaf
			leaf.prev = leaves[n-1]
		}
		leaves = append(leaves, leaf)
	}
	t.last = leaves[len(leaves)-1]
	type child struct {
		node bnode
		min  bkey
	}
	level := make([]child, len(leaves))
	for i, leaf := range leaves {
		level[i] = child{node: leaf, min: leaf.keys[0]}
	}
	for len(level) > 1 {
		var up []child
		for i := 0; i < len(level); i += per {
			j := i + per
			if j > len(level) {
				j = len(level)
			}
			group := level[i:j]
			inner := &binner{
				seps: make([]bkey, 0, len(group)-1),
				kids: make([]bnode, 0, len(group)),
			}
			for gi, c := range group {
				if gi > 0 {
					inner.seps = append(inner.seps, c.min)
				}
				inner.kids = append(inner.kids, c.node)
			}
			up = append(up, child{node: inner, min: group[0].min})
		}
		level = up
	}
	t.root = level[0].node
	return t
}

// collectLive appends the tree's entries, in key order, whose rowid refers
// to a live row of t.
func (tr *btree) collectLive(t *Table, out []bkey) []bkey {
	for c := tr.min(); ; c.advance() {
		k, ok := c.entry()
		if !ok {
			return out
		}
		if t.liveAt(k.rid) {
			out = append(out, k)
		}
	}
}

// insert adds an entry. Duplicate (vals, rid) pairs cannot occur: the rowid
// uniquifies every key.
func (t *btree) insert(k bkey) {
	t.size++
	// Fast path: a strictly-greater-than-max key appends to the rightmost
	// leaf without descending. The rightmost leaf has no upper separator, so
	// the append cannot violate routing invariants.
	if n := len(t.last.keys); n > 0 && n < btreeMaxKeys && compareBKeys(k, t.last.keys[n-1]) > 0 {
		t.last.unshare()
		t.last.keys = append(t.last.keys, k)
		return
	}
	sep, right := t.insertInto(t.root, k)
	if right != nil {
		t.root = &binner{seps: []bkey{sep}, kids: []bnode{t.root, right}}
	}
}

// insertInto descends to the leaf and inserts, returning split information
// when the child overflowed: the separator key and the new right sibling.
func (t *btree) insertInto(n bnode, k bkey) (bkey, bnode) {
	switch node := n.(type) {
	case *bleaf:
		i := sort.Search(len(node.keys), func(i int) bool { return compareBKeys(node.keys[i], k) >= 0 })
		node.unshare()
		node.keys = append(node.keys, bkey{})
		copy(node.keys[i+1:], node.keys[i:])
		node.keys[i] = k
		if len(node.keys) <= btreeMaxKeys {
			return bkey{}, nil
		}
		return t.splitLeaf(node)
	case *binner:
		ci := sort.Search(len(node.seps), func(i int) bool { return compareBKeys(node.seps[i], k) > 0 })
		sep, right := t.insertInto(node.kids[ci], k)
		if right == nil {
			return bkey{}, nil
		}
		node.seps = append(node.seps, bkey{})
		copy(node.seps[ci+1:], node.seps[ci:])
		node.seps[ci] = sep
		node.kids = append(node.kids, nil)
		copy(node.kids[ci+2:], node.kids[ci+1:])
		node.kids[ci+1] = right
		if len(node.kids) <= btreeMaxKeys {
			return bkey{}, nil
		}
		return t.splitInner(node)
	}
	return bkey{}, nil
}

func (t *btree) splitLeaf(node *bleaf) (bkey, bnode) {
	mid := len(node.keys) / 2
	right := &bleaf{keys: append([]bkey(nil), node.keys[mid:]...), next: node.next, prev: node}
	node.keys = node.keys[:mid:mid]
	if right.next != nil {
		right.next.prev = right
	} else {
		t.last = right
	}
	node.next = right
	return right.keys[0], right
}

func (t *btree) splitInner(node *binner) (bkey, bnode) {
	mid := len(node.seps) / 2
	sep := node.seps[mid]
	right := &binner{
		seps: append([]bkey(nil), node.seps[mid+1:]...),
		kids: append([]bnode(nil), node.kids[mid+1:]...),
	}
	node.seps = node.seps[:mid:mid]
	node.kids = node.kids[: mid+1 : mid+1]
	return sep, right
}

// remove deletes the entry, if present. Leaves may underflow — the tree is
// not rebalanced on deletion (deleted space is reclaimed when neighbouring
// inserts split again), which keeps removal a plain descent; empty leaves
// stay linked and are skipped by cursors.
func (t *btree) remove(k bkey) bool {
	n := t.root
	for {
		switch node := n.(type) {
		case *bleaf:
			i := sort.Search(len(node.keys), func(i int) bool { return compareBKeys(node.keys[i], k) >= 0 })
			if i >= len(node.keys) || compareBKeys(node.keys[i], k) != 0 {
				return false
			}
			node.unshare()
			copy(node.keys[i:], node.keys[i+1:])
			node.keys = node.keys[:len(node.keys)-1]
			t.size--
			return true
		case *binner:
			ci := sort.Search(len(node.seps), func(i int) bool { return compareBKeys(node.seps[i], k) > 0 })
			n = node.kids[ci]
		}
	}
}

// bcursor walks leaf entries in either direction.
type bcursor struct {
	leaf *bleaf
	i    int
	desc bool
}

// entry returns the current entry; ok is false when the cursor is exhausted.
func (c *bcursor) entry() (bkey, bool) {
	if c.leaf == nil {
		return bkey{}, false
	}
	return c.leaf.keys[c.i], true
}

// advance moves one entry in the cursor's direction, skipping empty leaves.
func (c *bcursor) advance() {
	if c.leaf == nil {
		return
	}
	if c.desc {
		c.i--
		for c.i < 0 {
			c.leaf = c.leaf.prev
			if c.leaf == nil {
				return
			}
			c.i = len(c.leaf.keys) - 1
		}
		return
	}
	c.i++
	for c.i >= len(c.leaf.keys) {
		c.leaf = c.leaf.next
		if c.leaf == nil {
			return
		}
		c.i = 0
	}
}

// seekFirst positions an ascending cursor at the first entry for which pred
// holds. pred must be monotone: false for a prefix of the key space, true
// for the rest.
func (t *btree) seekFirst(pred func(bkey) bool) bcursor {
	n := t.root
	for {
		switch node := n.(type) {
		case *bleaf:
			i := sort.Search(len(node.keys), func(i int) bool { return pred(node.keys[i]) })
			if i < len(node.keys) {
				return bcursor{leaf: node, i: i}
			}
			// The landing leaf holds no match. Separators are lower bounds
			// for their right siblings, so if any match exists past this
			// leaf it opens the next non-empty one.
			for next := node.next; next != nil; next = next.next {
				if len(next.keys) > 0 {
					if pred(next.keys[0]) {
						return bcursor{leaf: next, i: 0}
					}
					return bcursor{}
				}
			}
			return bcursor{}
		case *binner:
			ci := sort.Search(len(node.seps), func(i int) bool { return pred(node.seps[i]) })
			n = node.kids[ci]
		}
	}
}

// seekLast positions a descending cursor at the last entry for which pred
// does NOT hold — i.e. one before the first pred-true entry. pred must be
// monotone as in seekFirst.
func (t *btree) seekLast(pred func(bkey) bool) bcursor {
	c := t.seekFirst(pred)
	c.desc = true
	if c.leaf == nil {
		// Everything fails pred: last overall entry.
		c.leaf = t.last
		c.i = len(t.last.keys)
		c.advance()
		return c
	}
	c.advance()
	return c
}

// min returns the tree's smallest entry.
func (t *btree) min() bcursor {
	return t.seekFirst(func(bkey) bool { return true })
}

// max returns a descending cursor at the tree's largest entry.
func (t *btree) max() bcursor {
	return t.seekLast(func(bkey) bool { return false })
}

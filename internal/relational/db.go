package relational

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Stats counts the work a DB has performed. The paper's performance analysis
// hinges on statements issued and rows scanned, so both are tracked.
type Stats struct {
	// Statements counts client-issued statements (Exec and Query calls).
	// Trigger bodies run inside the engine and are not counted, matching
	// the paper's distinction between application-level cascading deletes
	// and trigger-based deletes.
	Statements int64
	// TriggerFirings counts trigger body executions.
	TriggerFirings int64
	// RowsScanned counts rows visited by scans, index probes, and hash
	// builds.
	RowsScanned  int64
	RowsInserted int64
	RowsDeleted  int64
	RowsUpdated  int64
	// IndexProbes counts persistent-index probe operations; FullScans
	// counts full relation scan passes. Together they expose which access
	// path the executor chose.
	IndexProbes int64
	FullScans   int64
	// RangeProbes counts bounded B+tree range scans — the access path of
	// pos-window UPDATEs and sibling-window queries.
	RangeProbes int64
	// SortPasses counts blocking sort operators actually run; RowsSorted
	// counts the rows they buffered. Sort elision drives both toward zero
	// on ordered access paths.
	SortPasses int64
	RowsSorted int64
	// HashJoinBuilds counts transient hash tables built for equality joins
	// with no supporting index.
	HashJoinBuilds int64
	// PlanCacheHits/Misses count shape-cache lookups: a hit reuses a parsed
	// and planned statement template, a miss pays parse + plan.
	PlanCacheHits   int64
	PlanCacheMisses int64
}

// DB is an embedded relational database.
type DB struct {
	mu       sync.Mutex
	tables   map[string]*Table
	triggers map[string]*trigger   // by lower-case name
	byTable  map[string][]*trigger // firing order = creation order
	stats    Stats

	// stmts caches parsed statement templates by shape (prepare.go).
	// Compiled plans live on the AST nodes themselves (plan.go), so they
	// share the template's lifetime; schemaVer invalidates them when DDL
	// changes what names resolve to.
	stmts     map[string]*cachedStmt
	schemaVer int64
}

type trigger struct {
	name   string
	table  string
	perRow bool
	body   Stmt
}

// NewDB returns an empty database.
func NewDB() *DB {
	return &DB{
		tables:   make(map[string]*Table),
		triggers: make(map[string]*trigger),
		byTable:  make(map[string][]*trigger),
		stmts:    make(map[string]*cachedStmt),
	}
}

// Stats returns a snapshot of the work counters.
func (db *DB) Stats() Stats {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.stats
}

// ResetStats zeroes the work counters.
func (db *DB) ResetStats() {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.stats = Stats{}
}

// Table returns the named table, or nil.
func (db *DB) Table(name string) *Table {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.tables[strings.ToLower(name)]
}

// TableNames returns all table names, sorted.
func (db *DB) TableNames() []string {
	db.mu.Lock()
	defer db.mu.Unlock()
	var names []string
	for _, t := range db.tables {
		names = append(names, t.Name)
	}
	sort.Strings(names)
	return names
}

// Exec executes a statement, returning the number of affected rows
// (inserted, deleted, or updated). Statements are resolved through the
// shape-keyed prepared-plan cache: repeated statement templates differing
// only in literal values parse and plan once.
func (db *DB) Exec(sql string) (int, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	stmt, args, err := db.preparedLocked(sql)
	if err != nil {
		return 0, err
	}
	db.stats.Statements++
	env := newEnv(nil)
	env.args = args
	return db.execStmt(stmt, env)
}

// Query executes a SELECT, returning its result rows. Like Exec, it reuses
// cached statement templates by shape.
func (db *DB) Query(sql string) (*Rows, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	stmt, args, err := db.preparedLocked(sql)
	if err != nil {
		return nil, err
	}
	sel, ok := stmt.(*SelectStmt)
	if !ok {
		return nil, fmt.Errorf("relational: Query requires a SELECT, got %T", stmt)
	}
	db.stats.Statements++
	env := newEnv(nil)
	env.args = args
	return db.execSelect(sel, env)
}

// QueryEach executes a SELECT, streaming each result row to fn as the
// pipeline produces it instead of materializing the result set — with sort
// elision, an ordered query's first row arrives before the last is read.
// fn must not issue statements on the same DB (the connection lock is
// held). It returns the output column names.
func (db *DB) QueryEach(sql string, fn func(row []Value) error) ([]string, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	stmt, args, err := db.preparedLocked(sql)
	if err != nil {
		return nil, err
	}
	sel, ok := stmt.(*SelectStmt)
	if !ok {
		return nil, fmt.Errorf("relational: QueryEach requires a SELECT, got %T", stmt)
	}
	db.stats.Statements++
	env := newEnv(nil)
	env.args = args
	return db.streamSelect(sel, env, fn)
}

// MustExec executes a statement and panics on error. For schema setup in
// tests and examples.
func (db *DB) MustExec(sql string) int {
	n, err := db.Exec(sql)
	if err != nil {
		panic(err)
	}
	return n
}

// Rows is a materialized query result.
type Rows struct {
	Cols []string
	Data [][]Value
	// order records the sort keys (output column positions) the Data slice
	// is known to be ordered by — set when the producing pipeline ran with
	// an explicit or propagated ORDER BY it could satisfy. Scans over a CTE
	// backed by ordered Rows inherit this property, which is how document
	// order flows through the Sorted Outer Union's WITH chain.
	order []sortSpec
	// consts records output column positions holding the same value in
	// every row (NULL-padded outer-union columns, equality-pinned columns).
	// Order satisfaction skips over them.
	consts []int
	// single marks a result known to hold at most one row — materialized
	// CTEs record their actual cardinality, EXPLAIN stubs a prediction —
	// so a join over it cannot disturb stream order.
	single bool
	// orderUnique marks the recorded order tuple as unique per row, which
	// a consumer joining below this result needs before refining its order
	// with deeper keys (equal-key rows would restart the deeper order).
	orderUnique bool
}

// execEnv carries named CTE results, the OLD row binding for trigger
// bodies, and the prepared-statement arguments of the enclosing execution.
type execEnv struct {
	ctes   map[string]*Rows
	old    []Value
	oldTab *Table
	args   []Value
	parent *execEnv
}

func newEnv(parent *execEnv) *execEnv {
	return &execEnv{ctes: make(map[string]*Rows), parent: parent}
}

// lookupArgs returns the nearest bound argument vector up the environment
// chain. Trigger bodies inherit their invoker's environment but contain no
// Param nodes, so inheritance is harmless.
func (e *execEnv) lookupArgs() []Value {
	for env := e; env != nil; env = env.parent {
		if env.args != nil {
			return env.args
		}
	}
	return nil
}

func (e *execEnv) lookupCTE(name string) (*Rows, bool) {
	for env := e; env != nil; env = env.parent {
		if r, ok := env.ctes[strings.ToLower(name)]; ok {
			return r, true
		}
	}
	return nil, false
}

func (e *execEnv) oldRow() ([]Value, *Table) {
	for env := e; env != nil; env = env.parent {
		if env.old != nil {
			return env.old, env.oldTab
		}
	}
	return nil, nil
}

// execStmt dispatches a statement under db.mu.
func (db *DB) execStmt(stmt Stmt, env *execEnv) (int, error) {
	if env == nil {
		env = newEnv(nil)
	}
	switch s := stmt.(type) {
	case *CreateTableStmt:
		db.schemaVer++
		return 0, db.createTable(s)
	case *DropTableStmt:
		key := strings.ToLower(s.Name)
		if _, ok := db.tables[key]; !ok {
			if s.IfExists {
				return 0, nil
			}
			return 0, fmt.Errorf("relational: no table %q", s.Name)
		}
		db.schemaVer++
		delete(db.tables, key)
		return 0, nil
	case *CreateIndexStmt:
		t := db.tables[strings.ToLower(s.Table)]
		if t == nil {
			return 0, fmt.Errorf("relational: no table %q", s.Table)
		}
		// New indexes change the preferred join order; bump so plans
		// reorder on next use.
		db.schemaVer++
		if s.Ordered || len(s.Columns) > 1 {
			return 0, t.CreateOrderedIndex(s.Columns...)
		}
		return 0, t.CreateIndex(s.Columns[0])
	case *CreateTriggerStmt:
		key := strings.ToLower(s.Name)
		if _, dup := db.triggers[key]; dup {
			return 0, fmt.Errorf("relational: trigger %q already exists", s.Name)
		}
		tkey := strings.ToLower(s.Table)
		if _, ok := db.tables[tkey]; !ok {
			return 0, fmt.Errorf("relational: no table %q for trigger %q", s.Table, s.Name)
		}
		tr := &trigger{name: s.Name, table: s.Table, perRow: s.PerRow, body: s.Body}
		db.triggers[key] = tr
		db.byTable[tkey] = append(db.byTable[tkey], tr)
		return 0, nil
	case *DropTriggerStmt:
		key := strings.ToLower(s.Name)
		tr, ok := db.triggers[key]
		if !ok {
			return 0, fmt.Errorf("relational: no trigger %q", s.Name)
		}
		delete(db.triggers, key)
		tkey := strings.ToLower(tr.table)
		list := db.byTable[tkey]
		for i, x := range list {
			if x == tr {
				db.byTable[tkey] = append(list[:i], list[i+1:]...)
				break
			}
		}
		return 0, nil
	case *InsertStmt:
		return db.execInsert(s, env)
	case *DeleteStmt:
		return db.execDelete(s, env)
	case *UpdateStmt:
		return db.execUpdate(s, env)
	case *SelectStmt:
		rows, err := db.execSelect(s, env)
		if err != nil {
			return 0, err
		}
		return len(rows.Data), nil
	default:
		return 0, fmt.Errorf("relational: unsupported statement %T", stmt)
	}
}

func (db *DB) createTable(s *CreateTableStmt) error {
	key := strings.ToLower(s.Name)
	if _, dup := db.tables[key]; dup {
		return fmt.Errorf("relational: table %q already exists", s.Name)
	}
	schema, err := NewSchema(s.Cols)
	if err != nil {
		return err
	}
	t := NewTable(s.Name, schema)
	// Key/parent-ID columns are what Shared Inlining always joins on; index
	// them from the start so generated joins probe instead of scan. Temp
	// work areas (table-based insert, §6.2.2) are written once, offset, and
	// drained — index maintenance there is pure overhead.
	if !s.Temp {
		t.autoIndex()
	}
	db.tables[key] = t
	return nil
}

// fireDeleteTriggers fires the table's triggers after a delete: per-row
// triggers once per deleted row (with OLD bound), then per-statement
// triggers once. Per-statement triggers fire only when rows were actually
// deleted, which both matches the cascading semantics the paper builds on
// them and guarantees termination on recursive schemas.
func (db *DB) fireDeleteTriggers(t *Table, deletedRows [][]Value, env *execEnv) error {
	trs := db.byTable[strings.ToLower(t.Name)]
	if len(trs) == 0 || len(deletedRows) == 0 {
		return nil
	}
	for _, tr := range trs {
		if tr.perRow {
			for _, old := range deletedRows {
				db.stats.TriggerFirings++
				tenv := newEnv(env)
				tenv.old = old
				tenv.oldTab = t
				if _, err := db.execStmt(tr.body, tenv); err != nil {
					return fmt.Errorf("relational: trigger %s: %w", tr.name, err)
				}
			}
		} else {
			db.stats.TriggerFirings++
			tenv := newEnv(env)
			if _, err := db.execStmt(tr.body, tenv); err != nil {
				return fmt.Errorf("relational: trigger %s: %w", tr.name, err)
			}
		}
	}
	return nil
}
